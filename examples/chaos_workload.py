#!/usr/bin/env python
"""Chaos-harness workload: geometric strip re-partitioning under faults.

A step-structured workload for ``python -m repro chaos``: every epoch
migrates each element to the part owning its centroid strip, alternating
between x-strips and y-strips.  The destination of every element is a pure
function of its *coordinates*, never of local indices or current ownership,
so the final partition is identical no matter how many times the run was
killed and restored from a checkpoint in between — exactly the property the
chaos harness asserts.

Run fault-free:

    python -m repro chaos examples/chaos_workload.py --out /tmp/chaos-base

Run with a mid-run injected rank crash (recovers via checkpoint/restart):

    python -m repro chaos examples/chaos_workload.py \
        --faults examples/chaos_plan.json --out /tmp/chaos-faulty

Both runs end with the same final partition statistics; compare the
``final_owned_totals`` / ``final_entity_counts`` fields of the two
``chaos_workload.resilience.json`` reports.
"""

import numpy as np

from repro import mesh, partition
from repro.parallel.perf import PerfCounters

NPARTS = 6
NSTEPS = 4


def build():
    """Initial distributed mesh: 128 triangles in x-centroid strips."""
    m = mesh.rect_tri(8)
    centroids = np.array([m.centroid(e) for e in m.entities(2)])
    assignment = np.minimum(
        (centroids[:, 0] * NPARTS).astype(int), NPARTS - 1
    )
    return partition.distribute(m, assignment, counters=PerfCounters())


def step(dmesh, i):
    """One epoch: migrate every element to its centroid-strip owner."""
    axis = i % 2  # alternate x-strips / y-strips
    plan = {}
    for part in dmesh:
        moves = {}
        for element in part.mesh.entities(2):
            if element in part.ghosts:
                continue
            c = part.mesh.centroid(element)
            dest = min(int(c[axis] * NPARTS), NPARTS - 1)
            if dest != part.pid:
                moves[element] = dest
        plan[part.pid] = moves
    partition.migrate(dmesh, plan)


if __name__ == "__main__":
    dm = build()
    for i in range(NSTEPS):
        step(dm, i)
    dm.verify()
    print(dm)
