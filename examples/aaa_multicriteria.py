#!/usr/bin/env python
"""Multi-criteria balancing of the AAA-surrogate vessel mesh (Table II flow).

Reproduces the structure of the paper's Section III-A experiment at laptop
scale: partition the vessel mesh with the hypergraph baseline (test T0),
then run the four ParMA configurations of Table I and report each entity
type's mean and imbalance, normalized by the T0 means exactly as the paper
does.

Run:  python examples/aaa_multicriteria.py  [--n 6] [--parts 16]
"""

import argparse
import time

import numpy as np

from repro.core import ParMA, balance_report, imbalances
from repro.partition import distribute
from repro.partitioners import partition
from repro.workloads import aaa_mesh

TESTS = [
    ("T1", "Vtx > Rgn"),
    ("T2", "Vtx = Edge > Rgn"),
    ("T3", "Edge > Rgn"),
    ("T4", "Edge = Face > Rgn"),
]


def row(label, counts, means):
    imb = imbalances(counts, means)
    cells = " ".join(
        f"{name}:{100 * (imb[d] - 1):6.2f}%"
        for d, name in [(3, "Rgn"), (2, "Face"), (1, "Edge"), (0, "Vtx")]
    )
    return f"  {label:<22} {cells}"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=6, help="mesh resolution")
    parser.add_argument("--parts", type=int, default=16)
    parser.add_argument("--tol", type=float, default=0.05)
    args = parser.parse_args()

    print(f"building AAA-surrogate mesh (n={args.n})...")
    mesh = aaa_mesh(n=args.n)
    print(f"  {mesh}")

    print(f"T0: hypergraph baseline to {args.parts} parts...")
    t0 = time.perf_counter()
    assignment = partition(mesh, args.parts, method="hypergraph", seed=1)
    t0_seconds = time.perf_counter() - t0
    dm0 = distribute(mesh, assignment)
    t0_counts = dm0.entity_counts()
    t0_means = t0_counts.astype(float).mean(axis=0)
    print(f"  done in {t0_seconds:.1f}s")
    print("imbalances (normalized by T0 means, as in Table II):")
    print(row("T0 (hypergraph)", t0_counts, t0_means))

    for label, priorities in TESTS:
        dm = distribute(mesh, assignment)  # fresh copy of the T0 partition
        balancer = ParMA(dm)
        start = time.perf_counter()
        stats = balancer.improve(priorities, tol=args.tol)
        seconds = time.perf_counter() - start
        counts = dm.entity_counts()
        print(row(f"{label} ({priorities})", counts, t0_means)
              + f"   [{seconds:.2f}s vs T0's {t0_seconds:.1f}s]")
        dm.verify()

    print("\nNote how each test drives its targeted entity types to the "
          "tolerance while region imbalance stays controlled — and in a "
          "fraction of the baseline's partitioning time (Table III).")


if __name__ == "__main__":
    main()
