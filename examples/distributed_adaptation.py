#!/usr/bin/env python
"""Distributed adaptation: parts refine coordinately across their boundaries.

The capability Section II-C's partition classification enables: mesh
modification on a *distributed* mesh.  Interior edges split locally; a
part-boundary edge is split by command of its owning part, so every copy
splits at the same snapped midpoint with the same new global vertex — the
mesh stays conforming across parts without ever assembling it in one place.

The demo distributes a box mesh, drives a shock right along a part
interface (the hard case), adapts in place, rebalances with ParMA, and
checkpoints the result.

Run:  python examples/distributed_adaptation.py  [--n 6] [--parts 4]
"""

import argparse
import tempfile

import numpy as np

from repro.core import ParMA
from repro.field import ShockPlaneSize
from repro.mesh import rect_tri
from repro.mesh.quality import measure
from repro.mesh.verify import verify
from repro.partition import (
    adapt_distributed,
    distribute,
    load_dmesh,
    save_dmesh,
)
from repro.partitioners import partition


def total_area(dm):
    return sum(measure(p.mesh, f) for p in dm for f in p.mesh.entities(2))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=6)
    parser.add_argument("--parts", type=int, default=4)
    args = parser.parse_args()

    mesh = rect_tri(args.n)
    dm = distribute(mesh, partition(mesh, args.parts, method="rcb"))
    print(f"distributed: {dm}")

    # A shock along x = 1/parts — exactly on the first RCB interface.
    interface = 1.0 / args.parts if args.parts > 1 else 0.5
    shock = ShockPlaneSize(
        [1, 0], interface,
        h_fine=(1 / args.n) / 4, h_coarse=2 / args.n, width=0.6 / args.n,
    )
    stats = adapt_distributed(dm, shock, max_passes=6)
    print(stats.summary())
    dm.verify()
    for part in dm:
        verify(part.mesh, check_classification=False, check_volumes=True)
    print(f"conforming across parts: total area = {total_area(dm):.12f}")
    print(f"elements per part after adaptation: "
          f"{dm.entity_counts()[:, 2].tolist()}")

    balancer = ParMA(dm)
    before = balancer.imbalances()[2]
    balancer.rebalance_spikes("Face", tol=0.08)
    after = balancer.imbalances()[2]
    print(f"ParMA: Face imbalance {100 * (before - 1):.0f}% -> "
          f"{100 * (after - 1):.0f}%")
    print(f"elements per part after balancing:  "
          f"{dm.entity_counts()[:, 2].tolist()}")

    with tempfile.TemporaryDirectory() as ckpt:
        save_dmesh(dm, ckpt)
        restored = load_dmesh(ckpt, model=mesh.model)
        restored.verify()
        print(f"checkpoint round-trip verified "
              f"({restored.entity_counts()[:, 2].sum()} elements)")


if __name__ == "__main__":
    main()
