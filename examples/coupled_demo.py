#!/usr/bin/env python
"""Co-simulation coupling demo: two meshes, one channel, one job graph.

Exercises the ``repro.couple`` hub end to end, the way the ``couple`` CLI
verb does:

1. build a job graph — a prep job, a coarse/fine solver pair coupled by a
   ``repro.couple/1`` field channel, and a downstream adapt-loop job that
   waits for both;
2. run it through :meth:`repro.svc.MeshJobService.serve_graph`: channel
   endpoints are co-scheduled into one round and exchange one transformed
   field frame per step, dependents run in later rounds;
3. run the distributed cross-mesh transfer directly and verify it matches
   the serial kernel bit-for-bit (the subsystem's parity gate).

Run:  python examples/coupled_demo.py  [--steps 4] [--parts 2]
"""

import argparse
import json

import numpy as np

from repro.couple import ChannelSpec, JobGraph, TransformSpec, transfer_between
from repro.field import Field, transfer_vertex_field
from repro.mesh import rect_tri
from repro.mesh.generate import delaunay_rect
from repro.partition import distribute
from repro.partition.fieldsync import DistributedField
from repro.partitioners import partition
from repro.svc import JobSpec, MeshJobService


def build_graph(steps: int, parts: int) -> JobGraph:
    channel = ChannelSpec(
        name="u-link",
        src="coarse",
        dst="fine",
        field="u",
        transforms=(
            TransformSpec(kind="scale", param=1.0),
            TransformSpec(kind="time-window", param=2),
        ),
    )
    jobs = (
        JobSpec(name="prep", workload="mesh-stats", parts=parts, mesh_n=8),
        JobSpec(
            name="coarse", workload="coupled", parts=parts, mesh_n=6,
            steps=steps, deps=("prep",), channels=("u-link",),
        ),
        JobSpec(
            name="fine", workload="coupled", parts=parts, mesh_n=6,
            steps=steps, deps=("prep",), channels=("u-link",),
        ),
        JobSpec(
            name="refine", workload="adapt-loop", parts=parts, mesh_n=6,
            steps=3, deps=("coarse", "fine"),
        ),
    )
    return JobGraph(jobs=jobs, channels=(channel,))


def parity_check(parts: int) -> bool:
    """Distributed transfer_between vs serial transfer, bit for bit."""

    def front(x):
        x = np.asarray(x, dtype=float)
        return float(np.sin(3 * x[0]) + np.cos(2 * x[1]))

    src = rect_tri(7)
    dst = delaunay_rect(9, seed=3)
    field = Field(src, "u", 0, 1)
    field.set_from_coords(front)
    serial = transfer_vertex_field(src, field, dst)

    src_d = distribute(src, partition(src, parts, method="rcb"))
    dst_d = distribute(dst, partition(dst, parts, method="rcb"))
    sfield = DistributedField(src_d, "u", 0, 1)
    sfield.set_from_coords(front)
    dfield, stats = transfer_between(src_d, sfield, dst_d)

    ok = True
    for part in dst_d:
        ids = part.mesh.core.live_ids(0)
        gids = part.gids_of(0, ids)
        if not np.array_equal(
            dfield.on(part.pid).get_many(ids), serial.get_many(gids)
        ):
            ok = False
    print(
        f"cross-mesh transfer at {parts}x{parts} parts: "
        f"{stats.points} points, {stats.messages} messages, "
        f"bit-equal={ok}"
    )
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=4)
    parser.add_argument("--parts", type=int, default=2)
    args = parser.parse_args()

    graph = build_graph(args.steps, args.parts)
    print("topological order:", " -> ".join(graph.topo_order()))
    print("peer groups:", graph.peer_groups())

    service = MeshJobService()
    report = service.serve_graph(graph)
    print(report.summary())
    doc = json.loads(report.to_json())
    for job in doc["jobs"]:
        out = job.get("output") or {}
        extra = ""
        if "checksum" in out:
            extra = f"  checksum={out['checksum']}"
        if "monotone_error" in out:
            extra = (
                f"  monotone_error={out['monotone_error']}"
                f"  est_max={out['est_max']}"
            )
        print(f"  {job['name']}: {job['status']}{extra}")

    ok = parity_check(args.parts)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
