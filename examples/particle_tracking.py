#!/usr/bin/env python
"""Particle tracking with repeated adaptation and rebalancing (Fig. 8).

The accelerator workload: a refined zone follows a particle bunch through a
waveguide.  Each step re-adapts the mesh (refining ahead, coarsening
behind) while every element *inherits its parent's part* — i.e. no
repartitioning happens, exactly the situation the paper's Section I
describes: "operations like mesh adaptation will change the mesh in general
ways thus requiring dynamic load balancing before any analysis operation is
carried out".  The demo then distributes by those inherited parts and lets
ParMA's diffusive improvement restore the balance.

Run:  python examples/particle_tracking.py  [--steps 3] [--parts 8]
"""

import argparse

import numpy as np

from repro.adapt import adapt, seed_ancestry
from repro.core import ParMA
from repro.mesh.verify import verify
from repro.partition import distribute
from repro.partitioners import partition
from repro.workloads import accelerator_mesh, particle_positions, particle_size


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=3)
    parser.add_argument("--parts", type=int, default=8)
    parser.add_argument("--n", type=int, default=6)
    args = parser.parse_args()

    mesh = accelerator_mesh(n=args.n)
    mesh_scale = 1.0 / args.n
    initial = partition(mesh, args.parts, method="rcb")
    tag = mesh.tag("part")
    for element, part in zip(mesh.entities(2), initial):
        tag.set(element, int(part))

    print(f"waveguide mesh: {mesh}, {args.parts} parts (assigned once)")
    for step, center in enumerate(particle_positions(args.steps)):
        size = particle_size(center, mesh_scale, refinement=3.5)
        stats = adapt(mesh, size, max_passes=6, ancestry_tag="part")
        verify(mesh, check_volumes=True)

        # Distribute by inherited part ids: adaptation's imbalance shows up.
        assignment = {e: int(tag.get(e)) for e in mesh.entities(2)}
        dm = distribute(mesh, assignment, nparts=args.parts)
        balancer = ParMA(dm)
        before = balancer.imbalances()
        # The paper's composed recipe: heavy part splitting knocks down the
        # big adaptation spikes, diffusion finishes to tolerance.
        split_stats, improve = balancer.rebalance_spikes("Vtx > Face", tol=0.05)
        after = balancer.imbalances()
        dm.verify()

        print(f"\nstep {step + 1}: particle at x={center[0]:.2f}  "
              f"({stats.summary()})")
        print(f"  after adaptation: Vtx imbalance {100 * (before[0] - 1):5.1f}%"
              f"  Face imbalance {100 * (before[2] - 1):5.1f}%")
        print(f"  after ParMA:      Vtx imbalance {100 * (after[0] - 1):5.1f}%"
              f"  Face imbalance {100 * (after[2] - 1):5.1f}%"
              f"   ({split_stats.splits_executed} splits,"
              f" {improve.total_migrated} elements diffused,"
              f" {split_stats.seconds + improve.seconds:.2f}s)")

        # Elements keep the part ParMA moved them to for the next step.
        for part in dm:
            for element in part.mesh.entities(2):
                gid = part.gid(element)
                tag.set(type(element)(2, gid), part.pid)


if __name__ == "__main__":
    main()
