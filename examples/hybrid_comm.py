#!/usr/bin/env python
"""Two-level (hybrid MPI/thread) communication demo (paper Section II-D).

PUMI's architecture-aware design maps one MPI process per node and one
thread per core, passing messages between threads on a node through shared
memory and coalescing inter-node traffic through node leaders.  This demo
runs the same all-to-all workload on a simulated 4-node x 8-core machine
two ways — flat (every rank pair a message) and hybrid (leader-routed) —
and compares off-node message counts and bytes.

Run:  python examples/hybrid_comm.py  [--nodes 4] [--cores 8]
"""

import argparse

from repro.parallel import (
    MachineTopology,
    PerfCounters,
    TwoLevelComm,
    neighbor_exchange,
    spmd,
)


ROUNDS = 10


def flat_program(comm):
    total = 0
    for _round in range(ROUNDS):
        outgoing = {
            dst: [f"payload-from-{comm.rank}"]
            for dst in range(comm.size)
            if dst != comm.rank
        }
        received = neighbor_exchange(comm, outgoing)
        total += sum(len(v) for v in received.values())
    return total


def hybrid_program(comm):
    hybrid = TwoLevelComm(comm)  # built once, reused every round
    total = 0
    for _round in range(ROUNDS):
        outgoing = {
            dst: [f"payload-from-{comm.rank}"]
            for dst in range(comm.size)
            if dst != comm.rank
        }
        received = hybrid.exchange(outgoing)
        total += sum(len(v) for v in received.values())
    return total


def run(label, program, topo):
    perf = PerfCounters()
    results = spmd(
        topo.total_cores, program, topology=topo, counters=perf, timeout=60.0
    )
    assert all(r == ROUNDS * (topo.total_cores - 1) for r in results), "message lost!"
    on = perf.get("comm.messages.on_node")
    off = perf.get("comm.messages.off_node")
    off_bytes = perf.get("comm.bytes.off_node")
    print(f"  {label:<8} on-node msgs: {on:6d}   off-node msgs: {off:6d}   "
          f"off-node bytes: {off_bytes:8d}")
    return off


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--cores", type=int, default=8)
    args = parser.parse_args()

    topo = MachineTopology(nodes=args.nodes, cores_per_node=args.cores)
    print(topo.describe())
    print(f"{ROUNDS} all-to-all rounds of {topo.total_cores} ranks "
          f"({ROUNDS * topo.total_cores * (topo.total_cores - 1)} payloads):")
    flat_off = run("flat", flat_program, topo)
    hybrid_off = run("hybrid", hybrid_program, topo)
    print(f"\noff-node message reduction: {flat_off / max(hybrid_off, 1):.1f}x"
          " — the benefit of routing through node leaders with shared-memory"
          " fan-out, as in PUMI's two-level partitioning.")


if __name__ == "__main__":
    main()
