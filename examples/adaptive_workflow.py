#!/usr/bin/env python
"""Adaptive workflow: shock adaptation with and without predictive balancing.

Reproduces the story of the paper's Fig. 13 at laptop scale on the scramjet
channel: adapt to a shock-train size field while tracking which part each
element descends from.

* Without balancing before adaptation, parts whose region is crossed by the
  shock balloon (the 400%-peak histogram of Fig. 13).
* With predictive load balancing (elements weighted by their estimated
  post-adaptation count) the resulting counts come out close to even.

Run:  python examples/adaptive_workflow.py  [--n 8] [--parts 8]
"""

import argparse

import numpy as np

from repro.adapt import adapt, ancestry_counts, estimate_counts_by_label, seed_ancestry
from repro.core import predicted_weights
from repro.mesh.verify import verify
from repro.partitioners import partition, rcb_points
from repro.partitioners.graph import element_centroids
from repro.workloads import scramjet_case


def histogram(counts, mean, bins=8):
    ratios = np.asarray(sorted(counts)) / mean
    edges = np.linspace(0, max(ratios.max(), 2.0), bins + 1)
    hist, _ = np.histogram(ratios, bins=edges)
    lines = []
    for i, n in enumerate(hist):
        bar = "#" * n
        lines.append(f"  {edges[i]:4.2f}-{edges[i+1]:4.2f}: {bar} ({n})")
    return "\n".join(lines)


def run_case(mesh, size, assignment, label):
    seed_ancestry(mesh, "part", None)
    tag = mesh.tag("part")
    for element, part in zip(mesh.entities(2), assignment):
        tag.set(element, int(part))
    stats = adapt(mesh, size, ancestry_tag="part", max_passes=8)
    verify(mesh, check_volumes=True)
    counts = ancestry_counts(mesh, "part")
    loads = np.array([counts.get(p, 0) for p in range(assignment.max() + 1)])
    mean = loads.mean()
    peak = loads.max() / mean
    print(f"\n{label}: {stats.summary()}")
    print(f"  per-part element counts: {loads.tolist()}")
    print(f"  peak imbalance: {100 * (peak - 1):.0f}%")
    print(histogram(loads, mean))
    return peak


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=8)
    parser.add_argument("--parts", type=int, default=8)
    args = parser.parse_args()

    # Case A: balance current elements only (what Fig. 13 shows going wrong).
    mesh, size = scramjet_case(n=args.n)
    naive = partition(mesh, args.parts, method="graph", seed=1)
    peak_naive = run_case(mesh, size, naive, "no predictive balancing")

    # Case B: weight elements by their predicted post-adaptation count.
    mesh, size = scramjet_case(n=args.n)
    weights = predicted_weights(mesh, size)
    _elements, centroids = element_centroids(mesh)
    predictive = rcb_points(centroids, args.parts, weights)
    peak_pred = run_case(mesh, size, predictive, "predictive balancing")

    print(f"\npeak imbalance: {100 * (peak_naive - 1):.0f}% (naive) vs "
          f"{100 * (peak_pred - 1):.0f}% (predictive)")


if __name__ == "__main__":
    main()
