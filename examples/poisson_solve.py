#!/usr/bin/env python
"""End-to-end PDE workflow: adaptive distributed Poisson solve.

The infrastructure exists "to support the full set of operations needed in
a simulation workflow" (paper, Section I).  This example runs one: a
distributed P1 finite-element Poisson solve whose assembly, shared-dof
accumulation, and conjugate-gradient reductions all go through the
partition layer — then adapts the mesh toward the solution's steep region,
rebalances with ParMA, and solves again on the refined distribution.

Problem: -Δu = 0 on the unit square, u = sin(πx)·sinh(πy)/sinh(π) on the
boundary (the classic Laplace benchmark with a sharp feature at y = 1).

Run:  python examples/poisson_solve.py  [--n 8] [--parts 4]
"""

import argparse
import math

import numpy as np

from repro.core import ParMA
from repro.field import AnalyticSize
from repro.field.fem import PoissonProblem, solution_error
from repro.mesh import rect_tri
from repro.partition import adapt_distributed, distribute
from repro.partitioners import partition


def exact(x):
    return math.sin(math.pi * x[0]) * math.sinh(math.pi * x[1]) / math.sinh(
        math.pi
    )


def solve_and_report(dm, label):
    problem = PoissonProblem(dm, dirichlet=exact)
    u, stats = problem.solve(tol=1e-10)
    err = solution_error(dm, u, exact)
    total = dm.entity_counts()[:, 0].sum()
    print(f"  {label}: {total} vertex dofs, CG {stats.iterations} its, "
          f"max nodal error {err:.2e}")
    return err


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=8)
    parser.add_argument("--parts", type=int, default=4)
    args = parser.parse_args()

    mesh = rect_tri(args.n)
    dm = distribute(mesh, partition(mesh, args.parts, method="rcb"))
    print(f"distributed Laplace solve on {dm.nparts} parts:")
    coarse_err = solve_and_report(dm, "initial mesh ")

    # The solution varies fastest near y=1: request resolution ~ gradient.
    h0 = 1.0 / args.n
    size = AnalyticSize(
        lambda x: h0 * (1.0 - 0.65 * math.exp(2.0 * (x[1] - 1.0)))
    )
    stats = adapt_distributed(dm, size, max_passes=5)
    print(f"  {stats.summary()}")
    ParMA(dm).rebalance_spikes("Vtx > Face", tol=0.10)
    dm.verify()

    fine_err = solve_and_report(dm, "adapted mesh ")
    print(f"\nadaptive refinement near the sharp layer cut the error "
          f"{coarse_err / fine_err:.1f}x "
          f"(element counts per part: {dm.entity_counts()[:, 2].tolist()})")


if __name__ == "__main__":
    main()
