#!/usr/bin/env python
"""Anisotropic boundary-layer adaptation with a metric field.

The paper's adaptation lineage is anisotropic (it cites "Parallel
anisotropic 3D mesh adaptation by mesh modification").  This example adapts
a channel mesh to a boundary-layer metric — fine spacing *across* the
bottom wall, coarse spacing *along* it — and reports the resulting element
anisotropy, then balances the refined distribution with ParMA.

Run:  python examples/boundary_layer.py  [--n 8] [--parts 4]
"""

import argparse

import numpy as np

from repro.adapt import adapt
from repro.core import ParMA
from repro.field import boundary_layer_metric, mean_metric_edge_length
from repro.mesh import rect_tri
from repro.mesh.verify import verify
from repro.partition import distribute
from repro.partitioners import partition


def wall_zone_aspect(mesh, band=0.1):
    """Mean |dx| / mean |dy| of edges near the wall (anisotropy measure)."""
    dxs, dys = [], []
    for edge in mesh.entities(1):
        a, b = mesh.verts_of(edge)
        pa, pb = mesh.coords(a), mesh.coords(b)
        if max(pa[1], pb[1]) > band:
            continue
        dx, dy = abs(pb[0] - pa[0]), abs(pb[1] - pa[1])
        if dx > 1e-12:
            dxs.append(dx)
        if dy > 1e-12:
            dys.append(dy)
    return (np.mean(dxs) / np.mean(dys)) if (dxs and dys) else 1.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=8)
    parser.add_argument("--parts", type=int, default=4)
    args = parser.parse_args()

    mesh = rect_tri(args.n)
    h0 = 1.0 / args.n
    metric = boundary_layer_metric(
        wall_normal=[0, 1], wall_offset=0.0,
        h_normal=h0 / 12, h_tangent=h0, growth=0.3,
    )
    print(f"initial mesh: {mesh.count(2)} triangles, "
          f"wall-zone aspect {wall_zone_aspect(mesh):.2f}, "
          f"mean metric edge length "
          f"{mean_metric_edge_length(mesh, metric):.2f}")

    stats = adapt(mesh, metric, max_passes=8)
    verify(mesh, check_volumes=True)
    print(f"adapted: {stats.summary()}")
    print(f"  wall-zone aspect {wall_zone_aspect(mesh):.2f} "
          f"(stretched along the wall)")
    print(f"  mean metric edge length "
          f"{mean_metric_edge_length(mesh, metric):.2f} (target ~1)")

    dm = distribute(mesh, partition(mesh, args.parts, method="rcb"))
    balancer = ParMA(dm)
    before = balancer.imbalances()[0]
    balancer.improve("Vtx > Face", tol=0.08)
    after = balancer.imbalances()[0]
    dm.verify()
    print(f"distributed to {args.parts} parts: Vtx imbalance "
          f"{100 * (before - 1):.1f}% -> {100 * (after - 1):.1f}%")


if __name__ == "__main__":
    main()
