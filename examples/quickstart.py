#!/usr/bin/env python
"""Quickstart: generate a mesh, partition it, balance it with ParMA.

The 60-second tour of the public API:

1. generate a classified tetrahedral box mesh,
2. partition it with the hypergraph (Zoltan-PHG-style) baseline,
3. build the distributed mesh and inspect its partition model,
4. run ParMA multi-criteria improvement and compare imbalances.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import core, mesh, partition, partitioners

NPARTS = 16


def main() -> None:
    # 1. A classified tet mesh of the unit box (6 * 10^3 = 6000 tets).
    m = mesh.box_tet(10)
    print(f"generated {m}")

    # 2. The baseline partitioner balances elements, nothing else.
    assignment = partitioners.partition(m, NPARTS, method="hypergraph", seed=1)
    print(f"partitioned into {NPARTS} parts "
          f"(edge cut = {partitioners.dual_graph(m).edge_cut(assignment)})")

    # 3. Distribute: per-part meshes + remote copies + partition model.
    dm = partition.distribute(m, assignment)
    dm.verify()
    pmodel = partition.build_partition_model(dm)
    print(f"distributed mesh: {dm}")
    print(f"partition model: {pmodel}")

    balancer = core.ParMA(dm)
    before = balancer.imbalances()
    print("imbalance before ParMA (% over mean):",
          np.round((before - 1) * 100, 2), "[Vtx Edge Face Rgn]")

    # 4. Balance vertices first (the FE dof balance), then regions.
    stats = balancer.improve("Vtx > Rgn", tol=0.05)
    print(stats.summary())

    after = balancer.imbalances()
    print("imbalance after ParMA  (% over mean):",
          np.round((after - 1) * 100, 2))
    dm.verify()
    print("distributed mesh verified — done.")


if __name__ == "__main__":
    main()
