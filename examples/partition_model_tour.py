#!/usr/bin/env python
"""A tour of the partition model, recreating Figs. 3 and 4 of the paper.

The paper illustrates its distributed-mesh concepts on a small 2D mesh
distributed to three parts (P0, P1, P2) where one vertex — M0_i — is shared
by all three parts and other boundary entities (like M0_j) by exactly two.
This script builds an equivalent situation, prints each concept next to the
paper's definition, and shows the derived partition model: partition faces
for part interiors, partition edges for pairwise boundaries, and the
partition vertex where all three parts meet (Fig. 4's P0_1).

Run:  python examples/partition_model_tour.py
"""

import numpy as np

from repro.mesh import rect_tri
from repro.parallel import MachineTopology
from repro.partition import build_partition_model, distribute


def main() -> None:
    # Three parts meeting at an interior point: split the unit square into
    # a left half and two right quadrants.
    mesh = rect_tri(4)
    assignment = []
    for element in mesh.entities(2):
        x, y, _z = mesh.centroid(element)
        if x < 0.5:
            assignment.append(0)
        elif y < 0.5:
            assignment.append(1)
        else:
            assignment.append(2)

    # Fig. 3 also distinguishes on-node and off-node boundaries: put P0 and
    # P1 on node i and P2 on node j, as in the paper's drawing.
    topo = MachineTopology(nodes=2, cores_per_node=2)
    dm = distribute(mesh, assignment, topology=topo)
    dm.verify()
    print("Fig. 3 — a 2D mesh distributed to three parts on two nodes")
    for part in dm:
        counts = part.entity_counts()
        print(f"  P{part.pid} (node {topo.node_of(part.pid)}): "
              f"{counts[2]} faces, {counts[1]} edges, {counts[0]} verts, "
              f"{sum(1 for e in part.remotes if e.dim == 0)} shared verts")

    # Residence parts: "the residence part of M0_i is {P0, P1, P2}".
    part0 = dm.part(0)
    tri_shared = [
        v for v in part0.shared_entities(0) if len(part0.residence(v)) == 3
    ]
    pair_shared = [
        v for v in part0.shared_entities(0) if len(part0.residence(v)) == 2
    ]
    m0i = tri_shared[0]
    m0j = pair_shared[0]
    print(f"\nresidence parts (Section II-B):")
    print(f"  M0_i = {m0i} at {part0.mesh.coords(m0i)[:2]}: "
          f"residence {part0.residence(m0i)}  (the three-part vertex)")
    print(f"  M0_j = {m0j} at {part0.mesh.coords(m0j)[:2]}: "
          f"residence {part0.residence(m0j)}")

    # Ownership: "one part is designated as owning part and the owning part
    # imbues the right to modify the part boundary entity".
    print(f"\nownership: owner of M0_i is P{part0.owner(m0i)}; "
          f"P0 {'owns' if part0.owns(m0i) else 'does not own'} it")

    # Fig. 4 — the partition model.
    pmodel = build_partition_model(dm)
    print(f"\nFig. 4 — partition model: {pmodel}")
    for pent in pmodel.entities():
        kind = {2: "partition face", 1: "partition edge",
                0: "partition vertex"}[pent.dim]
        print(f"  {pent}  ({kind}, residence {list(pent.residence)}, "
              f"owner P{pent.owner})")

    print("\npartition classification (Section II-C):")
    print(f"  M0_i classifies on {pmodel.classification(0, m0i)} "
          f"(the partition vertex, as in the paper)")
    print(f"  M0_j classifies on {pmodel.classification(0, m0j)} "
          f"(a partition edge)")
    interior = next(
        e for e in part0.mesh.entities(2) if not part0.is_shared(e)
    )
    print(f"  an interior face classifies on "
          f"{pmodel.classification(0, interior)} (a partition face)")

    # On-node vs off-node boundaries (Fig. 3's dashed vs solid lines).
    on = off = 0
    for ent in part0.remotes:
        for other in part0.remotes[ent]:
            if topo.same_node(0, other):
                on += 1
            else:
                off += 1
    print(f"\nP0's boundary links: {on} on-node (dashed in Fig. 3, shared "
          f"memory), {off} off-node (solid, distributed memory)")


if __name__ == "__main__":
    main()
