"""Drive the mesh-job service from Python: ``repro.svc`` end to end.

Equivalent to ``python -m repro serve --jobs examples/service_jobs.json``
but as a library caller: build the machine, submit a mixed-priority job
list (one job carries a deterministic fault plan and a retry budget),
run to idle, and inspect the typed outcomes plus the byte-deterministic
``repro.svc/1`` report.

Run with:  PYTHONPATH=src python examples/service_demo.py
"""

import json
from pathlib import Path

from repro.parallel import MachineTopology
from repro.svc import AdmissionError, JobSpec, MeshJobService, load_specs

HERE = Path(__file__).resolve().parent


def main() -> None:
    machine = MachineTopology(nodes=2, cores_per_node=4)
    service = MeshJobService(machine, capacity=16, seed=0)

    specs = load_specs(json.loads((HERE / "service_jobs.json").read_text()))
    for spec in specs:
        service.submit(spec)

    # Backpressure is typed: a submission beyond capacity raises
    # AdmissionError instead of silently queueing unbounded work.
    try:
        tiny = MeshJobService(machine, capacity=1, seed=0)
        tiny.submit(JobSpec(name="first", workload="noop"))
        tiny.submit(JobSpec(name="second", workload="noop"))
    except AdmissionError as exc:
        print(f"backpressure works: {exc}")

    rounds = service.run_until_idle()
    print(f"drained in {rounds} scheduling round(s)\n")

    for outcome in service.outcomes():
        tag = "ok " if outcome.ok else "FAIL"
        print(f"  [{tag}] {outcome.name}: {outcome.status} "
              f"(attempts {outcome.attempts})")

    flaky = service.outcome("flaky")
    assert flaky.ok and flaky.attempts == 2, "fault plan should cost a retry"

    report = service.report()
    print()
    print(report.summary())

    out = HERE.parent / "serve-out" / "service_report.json"
    report.write(out)
    print(f"\nreport written to {out}")
    print("same jobs + same seed => byte-identical report (CI-enforced)")


if __name__ == "__main__":
    main()
