"""Unit tests for the machine topology model (hwloc substitute)."""

import pytest

from repro.parallel.topology import MachineTopology, flat, single_node


def test_total_cores():
    topo = MachineTopology(nodes=4, cores_per_node=8)
    assert topo.total_cores == 32


def test_block_mapping():
    topo = MachineTopology(nodes=2, cores_per_node=4)
    assert topo.node_of(0) == 0
    assert topo.node_of(3) == 0
    assert topo.node_of(4) == 1
    assert topo.core_of(5) == 1


def test_same_node():
    topo = MachineTopology(nodes=2, cores_per_node=2)
    assert topo.same_node(0, 1)
    assert not topo.same_node(1, 2)
    assert topo.same_node(2, 3)


def test_ranks_on_node_and_leader():
    topo = MachineTopology(nodes=3, cores_per_node=4)
    assert list(topo.ranks_on_node(1)) == [4, 5, 6, 7]
    assert topo.node_leader(2) == 8
    assert topo.is_node_leader(8)
    assert not topo.is_node_leader(9)
    assert topo.leaders() == [0, 4, 8]


def test_iteration_covers_all_nodes():
    topo = MachineTopology(nodes=2, cores_per_node=3)
    pairs = list(topo)
    assert [node for node, _ in pairs] == [0, 1]
    assert [list(r) for _, r in pairs] == [[0, 1, 2], [3, 4, 5]]


def test_invalid_construction_rejected():
    with pytest.raises(ValueError):
        MachineTopology(nodes=0, cores_per_node=1)
    with pytest.raises(ValueError):
        MachineTopology(nodes=1, cores_per_node=0)


def test_rank_range_checked():
    topo = MachineTopology(nodes=1, cores_per_node=2)
    with pytest.raises(ValueError):
        topo.node_of(2)
    with pytest.raises(ValueError):
        topo.node_of(-1)
    with pytest.raises(ValueError):
        topo.ranks_on_node(1)


def test_single_node_everything_shared():
    topo = single_node(16)
    assert topo.nodes == 1
    assert all(topo.same_node(0, r) for r in range(16))


def test_flat_nothing_shared():
    topo = flat(5)
    assert topo.total_cores == 5
    assert not any(topo.same_node(0, r) for r in range(1, 5))


def test_describe_mentions_shape():
    text = MachineTopology(nodes=2, cores_per_node=4).describe()
    assert "2 node" in text and "4 core" in text
