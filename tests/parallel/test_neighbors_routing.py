"""Tests for sparse neighbor exchange, buffered routing, and node routing."""

import pytest

from repro.parallel import (
    BufferedRouter,
    MachineTopology,
    Network,
    NodeRouter,
    PerfCounters,
    TwoLevelComm,
    dense_exchange,
    neighbor_exchange,
    spmd,
)


def run(n, fn, *args, **kw):
    kw.setdefault("counters", PerfCounters())
    kw.setdefault("timeout", 20.0)
    return spmd(n, fn, *args, **kw)


# -- neighbor exchange -----------------------------------------------------


def test_neighbor_exchange_ring():
    def prog(comm):
        right = (comm.rank + 1) % comm.size
        got = neighbor_exchange(comm, {right: [f"from{comm.rank}"]})
        left = (comm.rank - 1) % comm.size
        return got == {left: [f"from{left}"]}

    assert all(run(5, prog))


def test_neighbor_exchange_no_messages():
    def prog(comm):
        return neighbor_exchange(comm, {})

    assert run(3, prog) == [{}, {}, {}]


def test_neighbor_exchange_multiple_payloads_preserve_order():
    def prog(comm):
        if comm.rank == 0:
            return neighbor_exchange(comm, {1: ["a", "b", "c"]})
        return neighbor_exchange(comm, {})

    assert run(2, prog)[1] == {0: ["a", "b", "c"]}


def test_neighbor_exchange_matches_dense_reference():
    def prog(comm):
        outgoing = {
            (comm.rank + 1) % comm.size: [comm.rank],
            (comm.rank + 2) % comm.size: [comm.rank * 10, comm.rank * 100],
        }
        sparse = neighbor_exchange(comm, outgoing)
        dense = dense_exchange(comm, outgoing)
        return sparse == dense

    assert all(run(6, prog))


def test_neighbor_exchange_rejects_bad_destination():
    from repro.parallel import SpmdError

    def prog(comm):
        neighbor_exchange(comm, {99: ["x"]})

    with pytest.raises(SpmdError):
        run(2, prog)


# -- buffered router ---------------------------------------------------------


def test_buffered_router_delivers_and_coalesces():
    perf = PerfCounters()
    net = Network(3, counters=perf)
    router = BufferedRouter(net)
    router.post(0, 1, 5, "a")
    router.post(0, 1, 6, "b")
    router.post(2, 1, 7, "c")
    inboxes = router.exchange()
    assert inboxes[1] == [(0, 5, "a"), (0, 6, "b"), (2, 7, "c")]
    # Two (src, dst) pairs -> exactly two wire messages despite 3 payloads.
    assert perf.get("net.messages.off_node") == 2


def test_buffered_router_empty_exchange():
    router = BufferedRouter(Network(2, counters=PerfCounters()))
    assert router.exchange() == {0: [], 1: []}


# -- node router -------------------------------------------------------------


def test_node_router_delivers_everything():
    topo = MachineTopology(nodes=2, cores_per_node=2)
    net = Network(4, topology=topo, counters=PerfCounters())
    router = NodeRouter(net)
    router.post(0, 1, 1, "on-node")
    router.post(0, 3, 2, "off-node")
    router.post(2, 1, 3, "off-node-2")
    inboxes = router.exchange()
    assert (0, 1, "on-node") in inboxes[1]
    assert (2, 3, "off-node-2") in inboxes[1]
    assert inboxes[3] == [(0, 2, "off-node")]


def test_node_router_coalesces_off_node_traffic():
    topo = MachineTopology(nodes=2, cores_per_node=4)
    perf = PerfCounters()
    net = Network(8, topology=topo, counters=perf)
    router = NodeRouter(net)
    # 16 cross-node messages from every core of node 0 to every core of node 1.
    for src in range(4):
        for dst in range(4, 8):
            router.post(src, dst, 0, (src, dst))
    inboxes = router.exchange()
    delivered = sum(len(v) for v in inboxes.values())
    assert delivered == 16
    # All 16 payloads crossed nodes inside ONE leader-to-leader message.
    assert perf.get("net.messages.off_node") == 1


def test_node_router_reserved_tag_rejected():
    net = Network(2, counters=PerfCounters())
    router = NodeRouter(net)
    with pytest.raises(ValueError):
        router.post(0, 1, NodeRouter.BUNDLE_TAG, "x")


# -- two-level comm ----------------------------------------------------------


def test_twolevel_exchange_matches_flat_semantics():
    topo = MachineTopology(nodes=2, cores_per_node=3)

    def prog(comm):
        hybrid = TwoLevelComm(comm)
        outgoing = {(comm.rank + 1) % comm.size: [f"p{comm.rank}"],
                    (comm.rank + 3) % comm.size: ["x", "y"]}
        got = hybrid.exchange(outgoing)
        return {src: sorted(msgs) for src, msgs in got.items()}

    results = spmd(6, prog, topology=topo, counters=PerfCounters(), timeout=20.0)
    for rank, got in enumerate(results):
        left = (rank - 1) % 6
        opposite = (rank - 3) % 6
        assert got[left] == [f"p{left}"] or opposite == left
        assert sorted(got[opposite]) == (
            sorted(["x", "y", f"p{left}"]) if opposite == left else ["x", "y"]
        )


def test_twolevel_reduces_off_node_messages():
    topo = MachineTopology(nodes=2, cores_per_node=4)

    def flat_prog(comm):
        outgoing = {dst: [comm.rank] for dst in range(comm.size) if dst != comm.rank}
        neighbor_exchange(comm, outgoing)

    def hybrid_prog(comm):
        hybrid = TwoLevelComm(comm)
        outgoing = {dst: [comm.rank] for dst in range(comm.size) if dst != comm.rank}
        hybrid.exchange(outgoing)

    flat_perf = PerfCounters()
    spmd(8, flat_prog, topology=topo, counters=flat_perf, timeout=20.0)
    hybrid_perf = PerfCounters()
    spmd(8, hybrid_prog, topology=topo, counters=hybrid_perf, timeout=20.0)

    flat_off = flat_perf.get("comm.messages.off_node")
    hybrid_off = hybrid_perf.get("comm.messages.off_node")
    assert hybrid_off < flat_off


def test_twolevel_identifies_leaders():
    topo = MachineTopology(nodes=2, cores_per_node=2)

    def prog(comm):
        hybrid = TwoLevelComm(comm)
        return (hybrid.node, hybrid.core, hybrid.is_leader)

    results = spmd(4, prog, topology=topo, counters=PerfCounters(), timeout=20.0)
    assert results == [(0, 0, True), (0, 1, False), (1, 0, True), (1, 1, False)]
