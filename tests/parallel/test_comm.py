"""Unit tests for the simulated MPI communicator and SPMD executor."""

import pytest

from repro.parallel import (
    ANY_SOURCE,
    ANY_TAG,
    MachineTopology,
    PerfCounters,
    SpmdError,
    spmd,
)


def run(n, fn, *args, **kw):
    kw.setdefault("counters", PerfCounters())
    kw.setdefault("timeout", 20.0)
    return spmd(n, fn, *args, **kw)


def test_rank_and_size():
    def prog(comm):
        assert comm.Get_size() == 4
        return comm.Get_rank()

    assert run(4, prog) == [0, 1, 2, 3]


def test_send_recv_roundtrip():
    def prog(comm):
        if comm.rank == 0:
            comm.send({"a": 7}, dest=1, tag=11)
            return None
        return comm.recv(source=0, tag=11)

    assert run(2, prog)[1] == {"a": 7}


def test_recv_any_source_any_tag():
    def prog(comm):
        if comm.rank == 0:
            got = [comm.recv(source=ANY_SOURCE, tag=ANY_TAG) for _ in range(2)]
            return sorted(got)
        comm.send(comm.rank * 10, dest=0, tag=comm.rank)
        return None

    assert run(3, prog)[0] == [10, 20]


def test_tag_matching_out_of_order():
    def prog(comm):
        if comm.rank == 0:
            comm.send("first", dest=1, tag=1)
            comm.send("second", dest=1, tag=2)
            return None
        second = comm.recv(source=0, tag=2)
        first = comm.recv(source=0, tag=1)
        return (first, second)

    assert run(2, prog)[1] == ("first", "second")


def test_isend_irecv():
    def prog(comm):
        if comm.rank == 0:
            req = comm.isend([1, 2], dest=1, tag=3)
            req.wait()
            return None
        req = comm.irecv(source=0, tag=3)
        done, _ = req.test()  # may or may not be ready; must not raise
        return req.wait()

    assert run(2, prog)[1] == [1, 2]


def test_sendrecv_ring_shift():
    def prog(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        return comm.sendrecv(comm.rank, dest=right, source=left)

    assert run(4, prog) == [3, 0, 1, 2]


def test_probe():
    def prog(comm):
        if comm.rank == 0:
            comm.send("x", dest=1, tag=5)
            comm.barrier()
            return None
        comm.barrier()
        assert comm.probe(source=0, tag=5)
        assert not comm.probe(source=0, tag=6)
        return comm.recv(source=0, tag=5)

    assert run(2, prog)[1] == "x"


def test_off_node_payloads_are_copied():
    def prog(comm, shared):
        if comm.rank == 0:
            comm.send(shared, dest=1)
            return None
        got = comm.recv(source=0)
        got.append(99)  # must not leak back to sender's object
        return got

    shared = [1, 2]
    results = run(2, prog, shared)
    assert results[1] == [1, 2, 99]
    assert shared == [1, 2]


def test_counters_classify_on_off_node():
    perf = PerfCounters()
    topo = MachineTopology(nodes=2, cores_per_node=2)

    def prog(comm):
        if comm.rank == 0:
            comm.send("a", dest=1)  # on-node
            comm.send("b", dest=2)  # off-node

    spmd(4, prog, topology=topo, counters=perf, timeout=20.0)
    assert perf.get("comm.messages.on_node") == 1
    assert perf.get("comm.messages.off_node") == 1
    assert perf.get("comm.bytes.off_node") > 0


def test_rank_failure_raises_spmd_error():
    def prog(comm):
        if comm.rank == 1:
            raise ValueError("deliberate")
        # Other ranks block; the abort must wake them up quickly.
        comm.recv(source=ANY_SOURCE)

    with pytest.raises(SpmdError) as info:
        run(3, prog)
    assert "deliberate" in str(info.value)


def test_single_rank_world():
    def prog(comm):
        assert comm.size == 1
        comm.barrier()
        return comm.bcast("solo", root=0)

    assert run(1, prog) == ["solo"]


def test_wildcard_recv_does_not_steal_collective_traffic():
    def prog(comm):
        # Rank 1 posts a wildcard irecv, then both ranks run a barrier and a
        # bcast; the wildcard must match only the user message.
        if comm.rank == 0:
            comm.barrier()
            value = comm.bcast("payload", root=0)
            comm.send("user", dest=1, tag=9)
            return value
        req = comm.irecv(source=ANY_SOURCE, tag=ANY_TAG)
        comm.barrier()
        value = comm.bcast(None, root=0)
        assert req.wait() == "user"
        return value

    assert run(2, prog) == ["payload", "payload"]
