"""Seeded fuzz tests for the binary wire codec.

Two properties under test:

1. **Round-trip stability**: random element bundles — mixed cell types,
   unicode tags, empty batches, max-gid edge values — survive
   encode → decode → re-encode *byte-identically* across 200 seeded cases
   (the re-encode equality is strictly stronger than value equality: it
   proves the interning tables and column layouts are pure functions of the
   decoded content).
2. **Corruption safety**: truncated or bit-flipped buffers raise the typed
   :class:`~repro.parallel.codec.CodecError` instead of unpickling garbage
   (the CRC is validated before any record is interpreted).
"""

import random

import numpy as np
import pytest

from repro.mesh.entity import Ent
from repro.mesh.topology import EDGE, HEX, PRISM, PYRAMID, QUAD, TET, TRI, type_info
from repro.parallel import codec

MAX_GID = 2**63 - 1

_ELEMENT_TYPES = {
    2: (TRI, QUAD),
    3: (TET, PYRAMID, PRISM, HEX),
}

_UNICODE_POOL = [
    "plain",
    "héllo",
    "✓ tick",
    "名前",
    "προσ",
    "",
    "a\x00b",
    "🙂" * 3,
]


def _random_gid(rng: random.Random) -> int:
    roll = rng.random()
    if roll < 0.05:
        return MAX_GID  # max-gid edge value
    if roll < 0.10:
        return 0
    return rng.randrange(0, 10_000_000)


def _random_coords(rng: random.Random):
    def component():
        roll = rng.random()
        if roll < 0.04:
            return float("nan")
        if roll < 0.08:
            return rng.choice([1e300, -1e300, 5e-324, -0.0])
        return rng.uniform(-100.0, 100.0)

    return (component(), component(), component())


def _random_class(rng: random.Random):
    if rng.random() < 0.3:
        return None
    return (rng.randrange(0, 4), rng.randrange(-5, 50))


def _random_tag_value(rng: random.Random):
    roll = rng.random()
    if roll < 0.25:
        return rng.choice(_UNICODE_POOL)
    if roll < 0.45:
        return rng.uniform(-1e6, 1e6)
    if roll < 0.60:
        return rng.randrange(-(2**40), 2**40)
    if roll < 0.75:
        return np.asarray(
            [rng.uniform(-1, 1) for _ in range(rng.randrange(1, 4))]
        )
    if roll < 0.85:
        return None
    return {rng.choice(_UNICODE_POOL): rng.randrange(0, 99)}


def _random_bundle(rng: random.Random, ghost: bool) -> dict:
    dim = rng.choice((2, 3))
    etype = rng.choice(_ELEMENT_TYPES[dim])
    nverts = type_info(etype).nverts
    vert_gids = []
    while len(vert_gids) < nverts:
        gid = _random_gid(rng)
        if gid not in vert_gids:
            vert_gids.append(gid)
    verts = [
        (gid, _random_coords(rng), _random_class(rng)) for gid in vert_gids
    ]
    mids = []
    for _ in range(rng.randrange(0, 6)):
        d = rng.randrange(1, dim)
        mid_type = EDGE if d == 1 else rng.choice((TRI, QUAD))
        mid_nverts = type_info(mid_type).nverts
        mids.append(
            (
                d,
                None if rng.random() < 0.5 else _random_gid(rng),
                mid_type,
                tuple(rng.choice(vert_gids) for _ in range(mid_nverts)),
                _random_class(rng),
            )
        )
    bundle = {
        "verts": verts,
        "mids": mids,
        "element": (
            dim,
            _random_gid(rng),
            etype,
            tuple(vert_gids),
            _random_class(rng),
        ),
    }
    if ghost:
        bundle["tags"] = {
            rng.choice(_UNICODE_POOL): _random_tag_value(rng)
            for _ in range(rng.randrange(0, 4))
        }
        bundle["home"] = (
            rng.randrange(0, 64),
            Ent(dim, rng.randrange(0, 10_000)),
        )
    return bundle


def _random_batch(rng: random.Random):
    # ~5% empty batches: the empty-part edge case.
    if rng.random() < 0.05:
        return []
    ghost = rng.random() < 0.5
    return [_random_bundle(rng, ghost) for _ in range(rng.randrange(1, 12))]


@pytest.mark.parametrize("seed", range(200))
def test_element_batch_round_trips_byte_identically(seed):
    rng = random.Random(seed)
    batch = _random_batch(rng)
    blob = codec.encode_element_batch(batch)
    decoded = codec.decode_element_batch(blob)
    assert len(decoded) == len(batch)
    for original, back in zip(batch, decoded):
        assert back["element"] == original["element"]
        assert back["mids"] == original["mids"]
        assert len(back["verts"]) == len(original["verts"])
        for (g1, c1, k1), (g2, c2, k2) in zip(
            original["verts"], back["verts"]
        ):
            assert g1 == g2 and k1 == k2
            for a, b in zip(c1, c2):
                assert (a != a and b != b) or a == b  # NaN-aware
        if "home" in original:
            assert back["home"] == original["home"]
            assert isinstance(back["home"][1], Ent)
    # Byte-identical re-encode: the layout is canonical.
    assert codec.encode_element_batch(decoded) == blob


@pytest.mark.parametrize("seed", range(40))
def test_generic_value_round_trips_byte_identically(seed):
    rng = random.Random(1000 + seed)

    def value(depth=0):
        roll = rng.random()
        if depth > 3 or roll < 0.45:
            return rng.choice(
                [
                    None,
                    True,
                    False,
                    rng.randrange(-MAX_GID, MAX_GID),
                    rng.uniform(-1e9, 1e9),
                    rng.choice(_UNICODE_POOL),
                    bytes(rng.randrange(256) for _ in range(rng.randrange(5))),
                    Ent(rng.randrange(4), rng.randrange(10**6)),
                ]
            )
        if roll < 0.60:
            return tuple(value(depth + 1) for _ in range(rng.randrange(4)))
        if roll < 0.75:
            return [value(depth + 1) for _ in range(rng.randrange(4))]
        if roll < 0.90:
            return {
                rng.choice(_UNICODE_POOL): value(depth + 1)
                for _ in range(rng.randrange(3))
            }
        return np.asarray(
            [rng.uniform(-10, 10) for _ in range(rng.randrange(1, 5))]
        )

    obj = value()
    blob = codec.dumps(obj)
    back = codec.loads(blob)
    assert codec.dumps(back) == blob


@pytest.mark.parametrize("seed", range(60))
def test_truncated_buffers_raise_codec_error(seed):
    rng = random.Random(2000 + seed)
    blob = codec.encode_element_batch(_random_batch(rng))
    cut = rng.randrange(0, len(blob))
    with pytest.raises(codec.CodecError):
        codec.decode_element_batch(blob[:cut])


@pytest.mark.parametrize("seed", range(60))
def test_bit_flipped_buffers_raise_codec_error(seed):
    rng = random.Random(3000 + seed)
    batch = _random_batch(rng)
    while not batch:  # need at least one byte beyond a fixed header
        batch = _random_batch(rng)
    blob = bytearray(codec.encode_element_batch(batch))
    pos = rng.randrange(len(blob))
    blob[pos] ^= 1 << rng.randrange(8)
    with pytest.raises(codec.CodecError):
        codec.decode_element_batch(bytes(blob))


def test_wrong_kind_is_rejected():
    blob = codec.encode_int_rows([(1, 2, 3)])
    with pytest.raises(codec.CodecError):
        codec.decode_element_batch(blob)
    with pytest.raises(codec.CodecError):
        codec.loads(blob)


def test_wrong_version_is_rejected():
    blob = bytearray(codec.dumps([1, 2]))
    blob[2] = codec.VERSION + 1
    with pytest.raises(codec.CodecError):
        codec.loads(bytes(blob))


def test_bad_magic_is_rejected():
    blob = b"ZZ" + codec.dumps("x")[2:]
    with pytest.raises(codec.CodecError):
        codec.loads(blob)


def test_gid_overflow_raises_codec_error():
    bundle = {
        "verts": [(2**63, (0.0, 0.0, 0.0), None)],
        "mids": [],
        "element": (2, 2**63, TRI, (2**63,), None),
    }
    with pytest.raises(codec.CodecError):
        codec.encode_element_batch([bundle])


def test_value_batch_round_trip_and_corruption():
    rng = random.Random(77)
    items = [
        (
            Ent(0, rng.randrange(10**6)),
            np.asarray([rng.uniform(-5, 5) for _ in range(3)]),
        )
        for _ in range(17)
    ]
    blob = codec.encode_value_batch(items)
    back = codec.decode_value_batch(blob)
    assert [e for e, _ in back] == [e for e, _ in items]
    for (_, v1), (_, v2) in zip(items, back):
        assert (v1 == v2).all()
        assert v2.flags.writeable
    assert codec.encode_value_batch(back) == blob
    with pytest.raises(codec.CodecError):
        codec.decode_value_batch(blob[:-3])


def test_int_rows_round_trip_includes_extremes():
    rows = [(0,), (), (1, -(2**62), 2**62, 5)]
    blob = codec.encode_int_rows(rows)
    assert codec.decode_int_rows(blob) == rows
    flipped = bytearray(blob)
    flipped[-1] ^= 0xFF
    with pytest.raises(codec.CodecError):
        codec.decode_int_rows(bytes(flipped))
