"""Property-based fuzzing of the communication substrate."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.parallel import (
    BufferedRouter,
    MachineTopology,
    Network,
    NodeRouter,
    PerfCounters,
    neighbor_exchange,
    spmd,
)

post_lists = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 9)),
    max_size=40,
)


@settings(max_examples=25, deadline=None)
@given(posts=post_lists)
def test_network_delivers_exactly_what_was_posted(posts):
    net = Network(6, counters=PerfCounters())
    for src, dst, tag in posts:
        net.post(src, dst, tag, (src, tag))
    inboxes = net.exchange()
    delivered = [
        (src, dst, tag)
        for dst, msgs in inboxes.items()
        for src, tag, _payload in msgs
    ]
    assert sorted(delivered) == sorted(posts)
    # Payload integrity.
    for dst, msgs in inboxes.items():
        for src, tag, payload in msgs:
            assert payload == (src, tag)


@settings(max_examples=20, deadline=None)
@given(posts=post_lists, nodes=st.integers(1, 3))
def test_routers_deliver_same_multiset_as_network(posts, nodes):
    topo = MachineTopology(nodes=nodes, cores_per_node=-(-6 // nodes))
    for router_cls in (BufferedRouter, NodeRouter):
        net = Network(6, topology=topo, counters=PerfCounters())
        router = router_cls(net)
        for src, dst, tag in posts:
            router.post(src, dst, tag, (src, dst, tag))
        inboxes = router.exchange()
        delivered = sorted(
            (src, dst, tag)
            for dst, msgs in inboxes.items()
            for src, tag, _payload in msgs
        )
        assert delivered == sorted(posts), router_cls.__name__


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    pattern=st.lists(
        st.lists(st.integers(0, 3), max_size=6), min_size=4, max_size=4
    )
)
def test_neighbor_exchange_arbitrary_patterns(pattern):
    """Sparse exchange delivers every payload for any traffic pattern."""

    def prog(comm):
        outgoing = {}
        for dst in pattern[comm.rank]:
            outgoing.setdefault(dst, []).append((comm.rank, dst))
        received = neighbor_exchange(comm, outgoing)
        return sorted(
            payload for msgs in received.values() for payload in msgs
        )

    results = spmd(4, prog, counters=PerfCounters(), timeout=30.0)
    for rank, got in enumerate(results):
        expected = sorted(
            (src, rank)
            for src in range(4)
            for dst in pattern[src]
            if dst == rank
        )
        assert got == expected


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    values=st.lists(st.integers(-1000, 1000), min_size=3, max_size=3),
    seed=st.integers(0, 99),
)
def test_collectives_agree_with_numpy(values, seed):
    def prog(comm):
        mine = values[comm.rank]
        return (
            comm.allreduce(mine),
            comm.allreduce(mine, op=max),
            comm.scan(mine),
            sorted(comm.allgather(mine)),
        )

    results = spmd(3, prog, counters=PerfCounters(), timeout=30.0)
    total = sum(values)
    for rank, (s, mx, scan, gathered) in enumerate(results):
        assert s == total
        assert mx == max(values)
        assert scan == sum(values[: rank + 1])
        assert gathered == sorted(values)
