"""Unit tests for the performance counter registry."""

import threading
import time

from repro.parallel.perf import PerfCounters


def test_counter_starts_at_zero():
    perf = PerfCounters()
    assert perf.get("nothing") == 0


def test_add_and_get():
    perf = PerfCounters()
    perf.add("msgs")
    perf.add("msgs", 4)
    assert perf.get("msgs") == 5
    assert perf.counters() == {"msgs": 5}


def test_timer_records_interval():
    perf = PerfCounters()
    with perf.timer("work"):
        time.sleep(0.01)
    stat = perf.timer_stat("work")
    assert stat is not None
    assert stat.count == 1
    assert stat.total >= 0.009
    assert stat.min <= stat.max


def test_timer_accumulates_and_mean():
    perf = PerfCounters()
    for _ in range(3):
        with perf.timer("t"):
            pass
    stat = perf.timer_stat("t")
    assert stat.count == 3
    assert abs(stat.mean - stat.total / 3) < 1e-12


def test_timer_records_on_exception():
    perf = PerfCounters()
    try:
        with perf.timer("boom"):
            raise RuntimeError("x")
    except RuntimeError:
        pass
    assert perf.timer_stat("boom").count == 1


def test_reset_clears_everything():
    perf = PerfCounters()
    perf.add("a")
    with perf.timer("t"):
        pass
    perf.reset()
    assert perf.counters() == {}
    assert perf.timer_stat("t") is None


def test_merge_combines_counters_and_timers():
    a = PerfCounters()
    b = PerfCounters()
    a.add("x", 2)
    b.add("x", 3)
    b.add("y", 1)
    with a.timer("t"):
        pass
    with b.timer("t"):
        pass
    a.merge(b)
    assert a.get("x") == 5
    assert a.get("y") == 1
    assert a.timer_stat("t").count == 2


def test_thread_safety_of_add():
    perf = PerfCounters()

    def worker():
        for _ in range(1000):
            perf.add("n")

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert perf.get("n") == 8000


def test_report_mentions_counters_and_timers():
    perf = PerfCounters()
    perf.add("alpha", 7)
    with perf.timer("beta"):
        pass
    text = perf.report()
    assert "alpha: 7" in text
    assert "beta:" in text
