"""Unit tests for the BSP network."""

import pytest

from repro.parallel.network import Network, wire_size
from repro.parallel.perf import PerfCounters
from repro.parallel.topology import MachineTopology, single_node


def make(nparts, **kw):
    return Network(nparts, counters=PerfCounters(), **kw)


def test_exchange_delivers_to_destination():
    net = make(3)
    net.post(0, 2, tag=7, payload="hello")
    inboxes = net.exchange()
    assert inboxes[2] == [(0, 7, "hello")]
    assert inboxes[0] == [] and inboxes[1] == []


def test_exchange_clears_outbox():
    net = make(2)
    net.post(0, 1, 0, "x")
    net.exchange()
    assert net.pending() == 0
    assert all(msgs == [] for msgs in net.exchange().values())


def test_delivery_order_is_posting_order():
    net = make(2)
    for i in range(5):
        net.post(0, 1, i, i)
    msgs = net.exchange()[1]
    assert [tag for _, tag, _ in msgs] == list(range(5))


def test_off_node_messages_are_copied():
    net = make(2)  # flat topology: 0 and 1 are on different nodes
    payload = {"k": [1, 2, 3]}
    net.post(0, 1, 0, payload)
    (src, tag, received), = net.exchange()[1]
    assert received == payload
    assert received is not payload  # pickled copy, MPI semantics


def test_on_node_messages_share_reference():
    # sanitize=False pins the unsanitized semantics even under REPRO_SANITIZE
    # (the alias sanitizer deliberately breaks this identity with a proxy).
    net = make(2, topology=single_node(2), sanitize=False)
    payload = {"k": [1, 2, 3]}
    net.post(0, 1, 0, payload)
    (_, _, received), = net.exchange()[1]
    assert received is payload  # shared memory, the paper's implicit rep


def test_traffic_classification():
    topo = MachineTopology(nodes=2, cores_per_node=2)
    perf = PerfCounters()
    net = Network(4, topology=topo, counters=perf)
    net.post(0, 1, 0, "on")   # same node
    net.post(0, 2, 0, "off")  # across nodes
    net.post(3, 3, 0, "self")
    net.exchange()
    assert perf.get("net.messages.on_node") == 1
    assert perf.get("net.messages.off_node") == 1
    assert perf.get("net.messages.self") == 1
    # The default network codec is binary; charged bytes match it exactly.
    assert perf.get("net.bytes.off_node") == wire_size("off", codec="binary")


def test_pickle_codec_escape_hatch_charges_pickle_bytes():
    topo = MachineTopology(nodes=2, cores_per_node=1)
    perf = PerfCounters()
    net = Network(2, topology=topo, counters=perf, codec="pickle")
    net.post(0, 1, 0, "off")
    net.exchange()
    assert perf.get("net.bytes.off_node") == wire_size("off", codec="pickle")


def test_bytes_payloads_charged_at_face_value():
    perf = PerfCounters()
    net = Network(2, counters=perf)  # flat topology: off-node pair
    blob = b"\x00" * 57
    net.post(0, 1, 0, blob)
    (_, _, received), = net.exchange()[1]
    assert received == blob
    assert perf.get("net.bytes.off_node") == len(blob)


def test_unknown_codec_rejected():
    with pytest.raises(ValueError):
        Network(2, counters=PerfCounters(), codec="json")


def test_stats_accumulate_across_exchanges():
    net = make(2)
    net.post(0, 1, 0, "a")
    net.exchange()
    net.post(1, 0, 0, "b")
    net.exchange()
    stats = net.stats()
    assert stats["exchanges"] == 2
    assert stats["messages_off_node"] == 2


def test_neighbor_counts_reports_pending():
    net = make(3)
    net.post(0, 1, 0, "x")
    net.post(0, 1, 0, "y")
    net.post(2, 0, 0, "z")
    assert net.neighbor_counts() == {1: 2, 0: 1}


def test_invalid_endpoints_rejected():
    net = make(2)
    with pytest.raises(ValueError):
        net.post(0, 2, 0, "x")
    with pytest.raises(ValueError):
        net.post(-1, 0, 0, "x")


def test_topology_must_cover_parts():
    with pytest.raises(ValueError):
        Network(8, topology=single_node(4), counters=PerfCounters())


def test_wire_size_positive_and_monotone_for_lists():
    small = wire_size([0] * 10)
    large = wire_size([0] * 1000)
    assert 0 < small < large


def test_delivery_sorted_by_source_then_posting_sequence():
    # Interleave posting across sources; delivery must come back grouped by
    # source part (ascending) with each source's messages in posting order.
    net = make(3)
    net.post(2, 0, 0, "c1")
    net.post(1, 0, 0, "b1")
    net.post(2, 0, 0, "c2")
    net.post(1, 0, 0, "b2")
    inbox = net.exchange()[0]
    assert [(src, payload) for src, _tag, payload in inbox] == [
        (1, "b1"),
        (1, "b2"),
        (2, "c1"),
        (2, "c2"),
    ]


def test_post_is_thread_safe_under_concurrent_hammering():
    import threading

    nparts, per_thread = 8, 200
    net = make(nparts)
    barrier = threading.Barrier(nparts)

    def hammer(src):
        barrier.wait()
        for i in range(per_thread):
            net.post(src, (src + 1) % nparts, i, (src, i))

    threads = [
        threading.Thread(target=hammer, args=(src,)) for src in range(nparts)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert net.pending() == nparts * per_thread
    inboxes = net.exchange()
    for dst in range(nparts):
        src = (dst - 1) % nparts
        # No message lost, and per-source posting order survived the race.
        assert [p for _s, _t, p in inboxes[dst]] == [
            (src, i) for i in range(per_thread)
        ]


def test_neighbor_counts_safe_while_posting():
    import threading

    net = make(4)
    stop = threading.Event()

    def poster():
        while not stop.is_set():
            net.post(0, 1, 0, "x")

    thread = threading.Thread(target=poster)
    thread.start()
    try:
        for _ in range(50):
            counts = net.neighbor_counts()  # must not raise mid-append
            assert set(counts) <= {1}
    finally:
        stop.set()
        thread.join()
    assert net.pending() == net.neighbor_counts().get(1, 0)
