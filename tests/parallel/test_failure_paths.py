"""Failure-path tests for the communication substrate."""

import pytest

from repro.parallel import (
    Comm,
    CommTimeoutError,
    CommWorld,
    PerfCounters,
    SpmdError,
    spmd,
)


def test_recv_timeout_raises():
    def prog(comm):
        if comm.rank == 0:
            comm.recv(source=1, tag=9)  # never sent

    with pytest.raises(SpmdError) as info:
        spmd(2, prog, counters=PerfCounters(), timeout=0.2)
    assert "timed out" in str(info.value)


def test_spmd_error_reports_every_failing_rank():
    def prog(comm):
        raise RuntimeError(f"rank {comm.rank} boom")

    with pytest.raises(SpmdError) as info:
        spmd(3, prog, counters=PerfCounters(), timeout=5.0)
    message = str(info.value)
    assert "3 rank(s) failed" in message
    for rank in range(3):
        assert f"rank {rank} boom" in message


def test_abort_wakes_blocked_ranks_quickly():
    import time

    def prog(comm):
        if comm.rank == 0:
            raise ValueError("dead on arrival")
        comm.recv(source=0)  # would block for the full timeout

    start = time.perf_counter()
    with pytest.raises(SpmdError) as info:
        spmd(3, prog, counters=PerfCounters(), timeout=30.0)
    elapsed = time.perf_counter() - start
    assert elapsed < 5.0  # abort cut through the 30s timeout
    # The root cause is reported, not the secondary aborts.
    assert "dead on arrival" in str(info.value)
    assert "CommAbortedError" not in str(info.value)


def test_send_to_invalid_rank():
    def prog(comm):
        comm.send("x", dest=99)

    with pytest.raises(SpmdError) as info:
        spmd(2, prog, counters=PerfCounters(), timeout=5.0)
    assert "out of range" in str(info.value)


def test_world_size_validated():
    with pytest.raises(ValueError):
        CommWorld(0)


def test_comm_requires_member_rank():
    world = CommWorld(2, counters=PerfCounters())
    with pytest.raises(ValueError):
        Comm(world, rank=1, group=[0])


def test_topology_capacity_validated():
    from repro.parallel import single_node

    with pytest.raises(ValueError):
        CommWorld(8, topology=single_node(2), counters=PerfCounters())


def test_alltoall_length_validated():
    def prog(comm):
        comm.alltoall([1])  # wrong length for size-2 world

    with pytest.raises(SpmdError) as info:
        spmd(2, prog, counters=PerfCounters(), timeout=5.0)
    assert "exactly" in str(info.value)


# -- SpmdError failure reporting (executor.py primary/secondary filtering) ---


def test_secondary_aborts_filtered_out_of_failures_attribute():
    from repro.parallel import CommAbortedError

    def prog(comm):
        if comm.rank == 1:
            raise ValueError("root cause")
        comm.recv(source=(comm.rank + 1) % comm.size)  # blocks until abort

    with pytest.raises(SpmdError) as info:
        spmd(3, prog, counters=PerfCounters(), timeout=30.0)
    failures = info.value.failures
    # Only the primary failure survives filtering; the ranks woken by the
    # abort (CommAbortedError) are dropped.
    assert [rank for rank, _exc, _tb in failures] == [1]
    assert not any(isinstance(exc, CommAbortedError) for _r, exc, _t in failures)


def test_all_aborted_failures_reported_when_no_primary():
    from repro.parallel import CommAbortedError

    def prog(comm):
        if comm.rank == 0:
            raise CommAbortedError("synthetic abort raised by the program")

    with pytest.raises(SpmdError) as info:
        spmd(2, prog, counters=PerfCounters(), timeout=5.0)
    # With no non-abort failure, the aborts themselves are the report —
    # an empty SpmdError would hide that the job died.
    assert any(
        isinstance(exc, CommAbortedError) for _r, exc, _t in info.value.failures
    )


def test_multi_rank_failures_sorted_by_rank():
    import time

    def prog(comm):
        if comm.rank == 2:
            raise RuntimeError("fast failure on rank 2")
        if comm.rank == 0:
            time.sleep(0.3)  # append out of rank order
            raise KeyError("slow failure on rank 0")

    with pytest.raises(SpmdError) as info:
        spmd(3, prog, counters=PerfCounters(), timeout=30.0)
    ranks = [rank for rank, _exc, _tb in info.value.failures]
    assert ranks == sorted(ranks) and ranks[0] == 0
    # The headline names the lowest-ranked primary failure, not the first
    # to be appended.
    assert "first: rank 0" in str(info.value)


def test_failures_carry_formatted_tracebacks():
    def prog(comm):
        if comm.rank == 1:
            raise RuntimeError("carry my traceback")

    with pytest.raises(SpmdError) as info:
        spmd(2, prog, counters=PerfCounters(), timeout=5.0)
    (rank, exc, tb), = info.value.failures
    assert rank == 1 and isinstance(exc, RuntimeError)
    assert "carry my traceback" in tb and "Traceback" in tb


def test_abort_wakeup_leaves_results_for_successful_ranks_unreported():
    # The wake-up path: rank 0 fails *after* rank 1 is already blocked in a
    # collective; the abort must cut rank 1 loose and the job must raise.
    def prog(comm):
        if comm.rank == 0:
            raise RuntimeError("fail before entering the collective")
        comm.barrier()  # noqa: SPMD001 - deliberately unmatched to test abort

    with pytest.raises(SpmdError) as info:
        spmd(2, prog, counters=PerfCounters(), timeout=30.0)
    assert "fail before entering the collective" in str(info.value)


# -- structured per-rank failure records (SpmdError.records) -----------------


def test_spmd_error_exposes_structured_records():
    """Recovery layers classify via typed records, never by string-parsing."""
    from repro.parallel import RankFailure

    def prog(comm):
        if comm.rank == 1:
            raise KeyError("structured")

    with pytest.raises(SpmdError) as info:
        spmd(2, prog, counters=PerfCounters(), timeout=5.0)
    (record,) = info.value.records
    assert isinstance(record, RankFailure)
    assert record.rank == 1
    assert record.exc_type == "KeyError"
    assert "structured" in record.message
    assert "Traceback" in record.traceback
    assert record.injected is False
    assert isinstance(record.exception, KeyError)
    # JSON-safe dict form carries no live exception object.
    d = record.to_dict()
    assert d["rank"] == 1 and d["exc_type"] == "KeyError"
    assert "exception" not in d
    # Legacy tuple view stays consistent with the records.
    (rank, exc, tb) = info.value.failures[0]
    assert (rank, exc, tb) == (record.rank, record.exception, record.traceback)


def test_records_carry_superstep_of_failure():
    def prog(comm):
        comm.barrier()  # superstep 0
        comm.barrier()  # superstep 1
        if comm.rank == 0:
            raise RuntimeError("after two collectives")
        comm.barrier()

    with pytest.raises(SpmdError) as info:
        spmd(2, prog, counters=PerfCounters(), timeout=30.0)
    record = info.value.records[0]
    assert record.rank == 0
    assert record.superstep == 2  # two collectives completed before death


def test_injected_only_false_for_ordinary_failures():
    def prog(comm):
        raise RuntimeError("plain")

    with pytest.raises(SpmdError) as info:
        spmd(2, prog, counters=PerfCounters(), timeout=5.0)
    assert info.value.injected_only is False
    assert all(not r.injected for r in info.value.records)
