"""Failure-path tests for the communication substrate."""

import pytest

from repro.parallel import (
    Comm,
    CommTimeoutError,
    CommWorld,
    PerfCounters,
    SpmdError,
    spmd,
)


def test_recv_timeout_raises():
    def prog(comm):
        if comm.rank == 0:
            comm.recv(source=1, tag=9)  # never sent

    with pytest.raises(SpmdError) as info:
        spmd(2, prog, counters=PerfCounters(), timeout=0.2)
    assert "timed out" in str(info.value)


def test_spmd_error_reports_every_failing_rank():
    def prog(comm):
        raise RuntimeError(f"rank {comm.rank} boom")

    with pytest.raises(SpmdError) as info:
        spmd(3, prog, counters=PerfCounters(), timeout=5.0)
    message = str(info.value)
    assert "3 rank(s) failed" in message
    for rank in range(3):
        assert f"rank {rank} boom" in message


def test_abort_wakes_blocked_ranks_quickly():
    import time

    def prog(comm):
        if comm.rank == 0:
            raise ValueError("dead on arrival")
        comm.recv(source=0)  # would block for the full timeout

    start = time.perf_counter()
    with pytest.raises(SpmdError) as info:
        spmd(3, prog, counters=PerfCounters(), timeout=30.0)
    elapsed = time.perf_counter() - start
    assert elapsed < 5.0  # abort cut through the 30s timeout
    # The root cause is reported, not the secondary aborts.
    assert "dead on arrival" in str(info.value)
    assert "CommAbortedError" not in str(info.value)


def test_send_to_invalid_rank():
    def prog(comm):
        comm.send("x", dest=99)

    with pytest.raises(SpmdError) as info:
        spmd(2, prog, counters=PerfCounters(), timeout=5.0)
    assert "out of range" in str(info.value)


def test_world_size_validated():
    with pytest.raises(ValueError):
        CommWorld(0)


def test_comm_requires_member_rank():
    world = CommWorld(2, counters=PerfCounters())
    with pytest.raises(ValueError):
        Comm(world, rank=1, group=[0])


def test_topology_capacity_validated():
    from repro.parallel import single_node

    with pytest.raises(ValueError):
        CommWorld(8, topology=single_node(2), counters=PerfCounters())


def test_alltoall_length_validated():
    def prog(comm):
        comm.alltoall([1])  # wrong length for size-2 world

    with pytest.raises(SpmdError) as info:
        spmd(2, prog, counters=PerfCounters(), timeout=5.0)
    assert "exactly" in str(info.value)
