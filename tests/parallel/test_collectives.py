"""Unit tests for collective operations, at several world sizes."""

import operator

import pytest

from repro.parallel import PerfCounters, spmd

SIZES = [1, 2, 3, 4, 7, 8]


def run(n, fn, *args):
    return spmd(n, fn, *args, counters=PerfCounters(), timeout=20.0)


@pytest.mark.parametrize("n", SIZES)
def test_barrier_completes(n):
    def prog(comm):
        for _ in range(3):
            comm.barrier()
        return True

    assert run(n, prog) == [True] * n


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast(n, root):
    root = n - 1 if root == "last" else 0

    def prog(comm):
        obj = {"v": 42} if comm.rank == root else None
        return comm.bcast(obj, root=root)

    assert run(n, prog) == [{"v": 42}] * n


@pytest.mark.parametrize("n", SIZES)
def test_gather(n):
    def prog(comm):
        return comm.gather(comm.rank ** 2, root=0)

    results = run(n, prog)
    assert results[0] == [r ** 2 for r in range(n)]
    assert all(r is None for r in results[1:])


@pytest.mark.parametrize("n", SIZES)
def test_scatter(n):
    def prog(comm):
        data = [f"item{i}" for i in range(comm.size)] if comm.rank == 0 else None
        return comm.scatter(data, root=0)

    assert run(n, prog) == [f"item{i}" for i in range(n)]


def test_scatter_wrong_length_raises():
    def prog(comm):
        data = [1] if comm.rank == 0 else None
        return comm.scatter(data, root=0)

    from repro.parallel import SpmdError

    with pytest.raises(SpmdError):
        run(2, prog)


@pytest.mark.parametrize("n", SIZES)
def test_allgather(n):
    def prog(comm):
        return comm.allgather(comm.rank + 1)

    expected = [list(range(1, n + 1))] * n
    assert run(n, prog) == expected


@pytest.mark.parametrize("n", SIZES)
def test_reduce_sum(n):
    def prog(comm):
        return comm.reduce(comm.rank, root=0)

    results = run(n, prog)
    assert results[0] == sum(range(n))


@pytest.mark.parametrize("n", SIZES)
def test_allreduce_max(n):
    def prog(comm):
        return comm.allreduce(comm.rank * 3, op=max)

    assert run(n, prog) == [(n - 1) * 3] * n


def test_reduce_is_rank_ordered_for_noncommutative_op():
    def prog(comm):
        return comm.reduce(str(comm.rank), op=operator.add, root=0)

    assert run(4, prog)[0] == "0123"


@pytest.mark.parametrize("n", SIZES)
def test_alltoall(n):
    def prog(comm):
        sendobjs = [(comm.rank, dst) for dst in range(comm.size)]
        return comm.alltoall(sendobjs)

    results = run(n, prog)
    for rank, got in enumerate(results):
        assert got == [(src, rank) for src in range(n)]


@pytest.mark.parametrize("n", SIZES)
def test_scan_inclusive(n):
    def prog(comm):
        return comm.scan(comm.rank + 1)

    expected = [sum(range(1, r + 2)) for r in range(n)]
    assert run(n, prog) == expected


@pytest.mark.parametrize("n", SIZES)
def test_exscan(n):
    def prog(comm):
        return comm.exscan(1)

    expected = [None] + list(range(1, n))
    assert run(n, prog) == expected


def test_back_to_back_collectives_do_not_cross_match():
    def prog(comm):
        a = comm.bcast("A" if comm.rank == 0 else None, root=0)
        b = comm.bcast("B" if comm.rank == 0 else None, root=0)
        c = comm.allreduce(1)
        return (a, b, c)

    n = 5
    assert run(n, prog) == [("A", "B", n)] * n


def test_split_forms_correct_subgroups():
    def prog(comm):
        color = comm.rank % 2
        sub = comm.split(color)
        total = sub.allreduce(comm.rank)
        return (sub.size, total)

    results = run(6, prog)
    # Evens: 0+2+4=6 in a size-3 comm; odds: 1+3+5=9.
    assert results[0] == (3, 6)
    assert results[1] == (3, 9)
    assert results[2] == (3, 6)


def test_split_orders_by_key():
    def prog(comm):
        # Reverse the ranks within one color group.
        sub = comm.split(color=0, key=-comm.rank)
        return sub.rank

    assert run(4, prog) == [3, 2, 1, 0]


def test_dup_is_independent_context():
    def prog(comm):
        dup = comm.dup()
        if comm.rank == 0:
            comm.send("orig", dest=1, tag=1)
            dup.send("dup", dest=1, tag=1)
            return None
        # Receive on dup first: the contexts must not cross-match.
        from_dup = dup.recv(source=0, tag=1)
        from_orig = comm.recv(source=0, tag=1)
        return (from_orig, from_dup)

    assert run(2, prog)[1] == ("orig", "dup")


def test_node_comm_groups_by_node():
    from repro.parallel import MachineTopology

    topo = MachineTopology(nodes=2, cores_per_node=2)

    def prog(comm):
        node = comm.node_comm()
        return sorted(node.allgather(comm.rank))

    results = spmd(4, prog, topology=topo, counters=PerfCounters(), timeout=20.0)
    assert results[0] == [0, 1]
    assert results[2] == [2, 3]


def test_leader_comm_contains_only_leaders():
    from repro.parallel import MachineTopology

    topo = MachineTopology(nodes=2, cores_per_node=2)

    def prog(comm):
        leaders = comm.leader_comm()
        if leaders is None:
            return None
        return sorted(leaders.allgather(comm.rank))

    results = spmd(4, prog, topology=topo, counters=PerfCounters(), timeout=20.0)
    assert results[0] == [0, 2]
    assert results[1] is None
    assert results[2] == [0, 2]
    assert results[3] is None
