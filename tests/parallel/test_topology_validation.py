"""Typed validation for machine specs, the core ledger, and placements."""

import pytest

from repro.parallel import (
    CoreLedger,
    MachineTopology,
    PlacedTopology,
    TopologyError,
)


@pytest.mark.parametrize("nodes,cores", [
    (0, 4), (-1, 4), (2, 0), (2, -3), (0, 0),
])
def test_degenerate_machine_specs_raise(nodes, cores):
    with pytest.raises(TopologyError):
        MachineTopology(nodes=nodes, cores_per_node=cores)


@pytest.mark.parametrize("nodes,cores", [
    (2.0, 4), ("2", 4), (2, 4.0), (True, 4), (2, True),
])
def test_non_int_machine_specs_raise(nodes, cores):
    with pytest.raises(TopologyError):
        MachineTopology(nodes=nodes, cores_per_node=cores)


def test_topology_error_is_a_value_error():
    # Callers that predate the typed error keep working.
    with pytest.raises(ValueError):
        MachineTopology(nodes=0, cores_per_node=1)


def test_ledger_reservation_lifecycle():
    ledger = MachineTopology(nodes=2, cores_per_node=3).ledger()
    assert isinstance(ledger, CoreLedger)
    assert ledger.free_cores() == 6
    slots = ledger.reserve_on(1, 2)
    assert slots == [(1, 0), (1, 1)]  # lowest cores first
    assert ledger.free_on(1) == 1
    assert ledger.used_cores() == 2
    ledger.release(slots)
    assert ledger.free_cores() == 6
    # Reservations re-use the lowest freed cores deterministically.
    assert ledger.reserve_on(1, 1) == [(1, 0)]


def test_ledger_rejects_bad_reservations():
    ledger = MachineTopology(nodes=2, cores_per_node=2).ledger()
    with pytest.raises(TopologyError):
        ledger.reserve_on(5, 1)  # no such node
    with pytest.raises(TopologyError):
        ledger.reserve_on(0, 3)  # over-subscribed
    with pytest.raises(TopologyError):
        ledger.reserve_on(0, 0)  # degenerate
    with pytest.raises(TopologyError):
        ledger.release([(0, 0)])  # never reserved
    with pytest.raises(TopologyError):
        ledger.free_on(9)


def test_placed_topology_validates_slots():
    machine = MachineTopology(nodes=2, cores_per_node=2)
    with pytest.raises(TopologyError):
        PlacedTopology(machine, [])
    with pytest.raises(TopologyError):
        PlacedTopology(machine, [(3, 0)])  # node out of range
    with pytest.raises(TopologyError):
        PlacedTopology(machine, [(0, 5)])  # core out of range
    with pytest.raises(TopologyError):
        PlacedTopology(machine, [(0, 0), (0, 0)])  # duplicate slot


def test_placed_topology_maps_ranks_through_slots():
    machine = MachineTopology(nodes=2, cores_per_node=2)
    topo = PlacedTopology(machine, [(1, 1), (0, 0), (1, 0)])
    assert topo.total_cores == 3
    assert topo.nodes == 2
    assert [topo.node_of(r) for r in range(3)] == [1, 0, 1]
    assert topo.same_node(0, 2) and not topo.same_node(0, 1)
    assert topo.ranks_on_node(1) == [0, 2]
    assert topo.node_leader(1) == 0
    assert topo.leaders() == [1, 0]
    with pytest.raises(TopologyError):
        topo.node_of(3)
