"""Tests for the star-forest primitive: forest algebra, ops, obs wiring."""

import numpy as np
import pytest

from repro import obs
from repro.mesh.entity import Ent
from repro.obs.stats import SFStats
from repro.parallel import PerfCounters
from repro.parallel.codec import CodecError
from repro.parallel.sf import (
    BUNDLES,
    GENERIC,
    INT_ROWS,
    OPS,
    VALUES,
    SFComm,
    StarForest,
)


def two_root_forest(comm):
    """Roots r0@0 and r1@1; three leaves spread over parts 1, 2 and 0."""
    sf = StarForest(comm, name="t")
    sf.add_leaf(1, "a", 0, "r0")
    sf.add_leaf(2, "b", 0, "r0")
    sf.add_leaf(0, "c", 1, "r1")
    return sf


# -- construction --------------------------------------------------------------


def test_add_leaf_validates_and_counts():
    comm = SFComm(3)
    sf = two_root_forest(comm)
    assert sf.nleaves == 3 and sf.nroots == 2
    with pytest.raises(ValueError):
        sf.add_leaf(3, "x", 0, "r0")
    with pytest.raises(ValueError):
        sf.add_leaf(0, "x", -1, "r0")
    # Identical re-add is idempotent; repointing a leaf is a caller bug.
    sf.add_leaf(1, "a", 0, "r0")
    assert sf.nleaves == 3
    with pytest.raises(ValueError):
        sf.add_leaf(1, "a", 0, "r1")


def test_leaves_listing_sorted():
    comm = SFComm(3)
    sf = two_root_forest(comm)
    assert sf.leaves() == [
        ((0, "c"), (1, "r1")),
        ((1, "a"), (0, "r0")),
        ((2, "b"), (0, "r0")),
    ]
    assert "roots=2" in repr(sf) and "leaves=3" in repr(sf)


def test_compose_chains_sharing():
    comm = SFComm(4)
    first = StarForest(comm, name="one")
    first.add_leaf(2, "y", 1, "x")
    first.add_leaf(3, "z", 1, "x")
    second = StarForest(comm, name="two")
    second.add_leaf(1, "x", 0, "root")
    composed = first.compose(second)
    assert composed.name == "one*two"
    assert composed.leaves() == [
        ((2, "y"), (0, "root")),
        ((3, "z"), (0, "root")),
    ]
    other = StarForest(SFComm(4), name="foreign")
    with pytest.raises(ValueError):
        first.compose(other)


# -- bcast ---------------------------------------------------------------------


@pytest.mark.parametrize("codec", ("binary", "pickle"))
def test_bcast_delivers_root_values(codec):
    comm = SFComm(3, codec=codec, counters=PerfCounters())
    sf = two_root_forest(comm)
    data = {(0, "r0"): 10, (1, "r1"): 20}
    got = {}
    stats = sf.bcast(
        lambda pid, h: data[(pid, h)],
        lambda pid, h, v: got.__setitem__((pid, h), v),
    )
    assert got == {(1, "a"): 10, (2, "b"): 10, (0, "c"): 20}
    assert isinstance(stats, SFStats)
    assert stats.op == "bcast" and stats.forest == "t"
    assert stats.records == 3 and stats.supersteps == 1
    assert stats.sf_ops == 1


def test_bcast_local_leaves_never_touch_the_wire():
    counters = PerfCounters()
    comm = SFComm(2, counters=counters)
    sf = StarForest(comm)
    sf.add_leaf(0, "copy", 0, "root")  # same-part sharing
    got = {}
    stats = sf.bcast(lambda pid, h: 42, lambda pid, h, v: got.update({h: v}))
    assert got == {"copy": 42}
    assert stats.messages == 0 and stats.encoded_bytes == 0
    assert stats.supersteps == 1  # the barrier still runs


def test_empty_forest_bcast_costs_one_superstep():
    """Fixed superstep counts regardless of data: empty still exchanges."""
    comm = SFComm(2, counters=PerfCounters())
    stats = StarForest(comm).bcast(lambda pid, h: None, lambda pid, h, v: None)
    assert stats.supersteps == 1 and stats.records == 0


def test_bcast_batch_set_receives_part_pairs():
    comm = SFComm(3, counters=PerfCounters())
    sf = two_root_forest(comm)
    batches = []
    sf.bcast(
        lambda pid, h: h.upper(),
        batch_set=lambda lpid, rpid, items: batches.append(
            (lpid, rpid, list(items))
        ),
    )
    assert sorted(batches) == [
        (0, 1, [("c", "R1")]),
        (1, 0, [("a", "R0")]),
        (2, 0, [("b", "R0")]),
    ]


# -- reduce --------------------------------------------------------------------


@pytest.mark.parametrize(
    "op,expected", (("sum", 5), ("min", 2), ("max", 3), ("replace", 3))
)
def test_reduce_ops(op, expected):
    comm = SFComm(3, counters=PerfCounters())
    sf = StarForest(comm)
    sf.add_leaf(1, "a", 0, "r")
    sf.add_leaf(2, "b", 0, "r")
    contributions = {(1, "a"): 2, (2, "b"): 3}
    roots = {}
    stats = sf.reduce(
        lambda pid, h: contributions[(pid, h)],
        lambda pid, h, v: roots.__setitem__((pid, h), v),
        op=op,
    )
    # Fold order is the sorted (root handle, leaf pid, leaf handle) order,
    # so "replace" deterministically keeps the last contribution.
    assert roots == {(0, "r"): expected}
    assert stats.op == f"reduce.{op}" and stats.supersteps == 1
    with pytest.raises(ValueError):
        sf.reduce(lambda p, h: 0, lambda p, h, v: None, op="prod")
    assert "replace" in OPS and len(OPS) == 4


def test_reduce_arrays_elementwise():
    comm = SFComm(2, counters=PerfCounters())
    sf = StarForest(comm)
    sf.add_leaf(1, Ent(0, 7), 0, Ent(0, 3))
    roots = {}
    sf.reduce(
        lambda pid, h: np.array([1.0, 5.0]),
        lambda pid, h, v: roots.__setitem__(h, v),
        op="max",
        datatype=VALUES,
    )
    assert np.array_equal(roots[Ent(0, 3)], [1.0, 5.0])


# -- fetch_and_op --------------------------------------------------------------


def test_fetch_and_add_allocates_disjoint_ranges():
    comm = SFComm(4, counters=PerfCounters())
    sf = StarForest(comm, name="alloc")
    for pid in (1, 2, 3):
        sf.add_leaf(pid, "want", 0, "counter")
    counter = {"value": 100}
    need = {1: 5, 2: 7, 3: 11}
    fetched, stats = sf.fetch_and_op(
        lambda pid, h: need[pid],
        lambda pid, h: counter["value"],
        lambda pid, h, v: counter.__setitem__("value", v),
        op="sum",
    )
    # Each leaf sees the pre-update value: disjoint [start, start+need) ranges.
    assert fetched == {(1, "want"): 100, (2, "want"): 105, (3, "want"): 112}
    assert counter["value"] == 123
    assert stats.supersteps == 2 and stats.sf_ops == 2
    assert stats.op == "fetch_and_op.sum"
    assert stats.records == 6  # three up, three back


# -- datatypes -----------------------------------------------------------------


def test_values_datatype_checks_wire_handles():
    comm = SFComm(2, counters=PerfCounters())
    sf = StarForest(comm)
    sf.add_leaf(1, Ent(0, 4), 0, Ent(0, 9))
    got = {}
    sf.bcast(
        lambda pid, h: np.array([2.5]),
        lambda pid, h, v: got.__setitem__(h, v),
        datatype=VALUES,
    )
    assert np.array_equal(got[Ent(0, 4)], [2.5])
    # Length mismatches are a codec error, not silent truncation.
    with pytest.raises(CodecError):
        VALUES.decode(
            VALUES.encode([(Ent(0, 1), np.array([1.0]))]),
            [Ent(0, 1), Ent(0, 2)],
        )
    with pytest.raises(CodecError):
        VALUES.decode(
            VALUES.encode([(Ent(0, 1), np.array([1.0]))]), [Ent(0, 2)]
        )


def test_int_rows_and_generic_datatypes_roundtrip():
    items = [("h0", (1, 2, 3)), ("h1", (4, 5))]
    assert INT_ROWS.decode(INT_ROWS.encode(items), ["h0", "h1"]) == items
    payloads = [("h0", {"k": [1, 2]}), ("h1", None)]
    assert GENERIC.decode(GENERIC.encode(payloads), ["h0", "h1"]) == payloads
    with pytest.raises(CodecError):
        GENERIC.decode(GENERIC.encode(payloads), ["h0"])
    assert {d.name for d in (GENERIC, VALUES, BUNDLES, INT_ROWS)} == {
        "generic", "values", "bundles", "int_rows",
    }


# -- comm validation -----------------------------------------------------------


def test_sfcomm_validates_arguments():
    with pytest.raises(ValueError):
        SFComm(0)
    with pytest.raises(ValueError):
        SFComm(2, codec="gzip")


# -- observability -------------------------------------------------------------


def test_sf_counters_and_spans():
    counters = PerfCounters()
    tracer = obs.Tracer(counters=counters)
    comm = SFComm(3, counters=counters, tracer=tracer)
    sf = two_root_forest(comm)
    sf.bcast(lambda pid, h: 1, lambda pid, h, v: None)
    sf.reduce(lambda pid, h: 1, lambda pid, h, v: None)
    assert counters.get("sf.ops.bcast") == 1
    assert counters.get("sf.ops.reduce") == 1
    assert counters.get("sf.records") == 6
    assert counters.get("sf.bytes.encoded") > 0
    # SF buffers are charged to the shared net.* counters too, so existing
    # dashboards see SF traffic without new plumbing.
    assert counters.get("net.bytes.encoded") == counters.get(
        "sf.bytes.encoded"
    )
    names = [s.name for root in tracer.roots for s in root.walk()]
    assert names == ["sf.bcast", "sf.reduce"]
    bcast_span = tracer.roots[0]
    assert bcast_span.args == {"sf": "t", "datatype": "generic"}
    assert bcast_span.supersteps == 1
    assert bcast_span.counter_deltas["sf.ops.bcast"] == 1


def test_sf_traffic_lands_in_comm_matrix():
    """Satellite: SF messages get part-to-part attribution per superstep."""
    counters = PerfCounters()
    tracer = obs.Tracer(counters=counters)
    comm = SFComm(3, counters=counters, tracer=tracer)
    sf = two_root_forest(comm)
    span = None
    sf.bcast(lambda pid, h: "payload", lambda pid, h, v: None)
    span = tracer.roots[0]
    matrix = tracer.comm_matrix(superstep=span.superstep_start)
    assert set(matrix) == {(0, 1), (0, 2), (1, 0)}
    for (_src, _dst), (nmsg, nbytes) in matrix.items():
        assert nmsg == 1 and nbytes > 0
