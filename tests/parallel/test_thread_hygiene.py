"""Executor thread hygiene: failed jobs must not leak rank threads."""

import threading
import time

import pytest

from repro.parallel import spmd
from repro.parallel.executor import SpmdError
from repro.parallel.perf import PerfCounters


def live_rank_threads():
    return [
        t for t in threading.enumerate()
        if t.name.startswith("spmd-rank-") and t.is_alive()
    ]


def wait_for_rank_threads_to_exit(deadline=5.0):
    end = time.monotonic() + deadline
    while live_rank_threads() and time.monotonic() < end:
        time.sleep(0.01)
    return live_rank_threads()


def test_failed_job_joins_all_rank_threads():
    def crash(comm):
        if comm.rank == 1:
            raise RuntimeError("boom")
        # The other ranks block in the comm layer and wake on abort.
        comm.barrier()

    baseline = len(live_rank_threads())
    for _ in range(3):
        with pytest.raises(SpmdError) as info:
            spmd(4, crash, timeout=10.0)
        assert info.value.leaked_threads == 0
    leftovers = wait_for_rank_threads_to_exit()
    assert len(leftovers) <= baseline, (
        f"rank threads leaked across failed jobs: {leftovers}"
    )


def test_rank_threads_are_daemons():
    seen = {}

    def snoop(comm):
        seen[comm.rank] = threading.current_thread().daemon

    spmd(2, snoop)
    assert seen == {0: True, 1: True}


def test_stuck_rank_is_abandoned_after_join_grace():
    release = threading.Event()

    def stuck(comm):
        if comm.rank == 1:
            raise RuntimeError("boom")
        # Rank 0 is busy outside the comm layer: it never observes the
        # abort, so the executor must give up joining it.
        release.wait(timeout=10.0)

    counters = PerfCounters()
    start = time.monotonic()
    with pytest.raises(SpmdError) as info:
        spmd(2, stuck, counters=counters, join_grace=0.2, timeout=10.0)
    elapsed = time.monotonic() - start
    try:
        assert elapsed < 5.0, "executor hung instead of abandoning the rank"
        assert info.value.leaked_threads == 1
        assert counters.counters()["spmd.threads.leaked"] == 1
        # The root cause is still the reported failure, not the leak.
        assert info.value.records[0].exc_type == "RuntimeError"
    finally:
        release.set()
    assert not wait_for_rank_threads_to_exit()


def test_cancel_aborts_blocked_ranks_without_leaks():
    def block(comm):
        comm.recv(tag=424242)  # never sent

    cancel = threading.Event()
    timer = threading.Timer(0.2, cancel.set)
    timer.daemon = True
    timer.start()
    with pytest.raises(SpmdError) as info:
        spmd(2, block, cancel=cancel, timeout=10.0, join_grace=2.0)
    timer.cancel()
    assert info.value.leaked_threads == 0
    assert all(r.exc_type == "CommAbortedError" for r in info.value.records)
    assert not wait_for_rank_threads_to_exit()
