"""Tests for architecture topology detection."""

import os

import pytest

from repro.parallel import MachineTopology, detect, virtual


def test_detect_returns_valid_topology():
    topo = detect()
    assert isinstance(topo, MachineTopology)
    assert topo.nodes >= 1
    assert topo.cores_per_node >= 1
    # Detection never claims more processing units than the OS exposes
    # (packages * cores-per-package <= logical CPUs by construction).
    assert topo.total_cores <= max(os.cpu_count() or 1, topo.nodes)


def test_virtual_explicit():
    topo = virtual(4, 8)
    assert topo.nodes == 4
    assert topo.cores_per_node == 8


def test_virtual_divides_host_cpus():
    topo = virtual(2)
    assert topo.nodes == 2
    assert topo.cores_per_node >= 1
    assert topo.cores_per_node == max((os.cpu_count() or 2) // 2, 1)


def test_virtual_more_nodes_than_cpus():
    topo = virtual(1024)
    assert topo.nodes == 1024
    assert topo.cores_per_node == 1


def test_detected_topology_usable_by_spmd():
    from repro.parallel import PerfCounters, spmd

    topo = detect()
    n = min(topo.total_cores, 4)
    results = spmd(
        n,
        lambda comm: comm.allreduce(1),
        topology=topo,
        counters=PerfCounters(),
        timeout=20.0,
    )
    assert results == [n] * n
