"""svc warm-starts: snapshot cache wiring and the ``mesh-warm`` workload."""

import pytest

from repro.parallel import MachineTopology
from repro.store import SnapshotCache, current_cache, uninstall_cache
from repro.svc import JobSpec, MeshJobService


@pytest.fixture(autouse=True)
def _no_leaked_cache():
    yield
    uninstall_cache()


def service(**kwargs):
    kwargs.setdefault("timeout", 20.0)
    return MeshJobService(
        MachineTopology(nodes=2, cores_per_node=4), **kwargs
    )


def warm_spec(name, parts=4, n=8):
    return JobSpec(
        name=name, workload="mesh-warm", parts=parts, mesh_n=n,
        tenant="cfd",
    )


def job_outputs(svc):
    return {
        job["name"]: job["output"]
        for job in svc.report().to_dict()["jobs"]
    }


def test_service_installs_cache_from_path(tmp_path):
    svc = service(snapshot_cache=tmp_path / "cache")
    assert isinstance(svc.snapshot_cache, SnapshotCache)
    assert current_cache() is svc.snapshot_cache


def test_cold_then_warm_job(tmp_path):
    svc = service(snapshot_cache=SnapshotCache(tmp_path / "cache"))
    # Separate scheduling rounds: the first job must publish its snapshot
    # before the second resolves the cache.
    svc.submit(warm_spec("cold"))
    svc.run_until_idle()
    svc.submit(warm_spec("warm"))
    svc.run_until_idle()
    outputs = job_outputs(svc)
    assert outputs["cold"]["warm"] is False
    assert outputs["warm"]["warm"] is True
    assert outputs["cold"]["elements"] == outputs["warm"]["elements"]
    assert svc.counters.get("store.cache.misses") >= 1
    assert svc.counters.get("store.cache.hits") >= 1


def test_warm_start_crosses_gang_sizes(tmp_path):
    """A snapshot published at one gang size warms a different one —
    that is the whole point of repartition-on-load."""
    svc = service(snapshot_cache=SnapshotCache(tmp_path / "cache"))
    svc.submit(warm_spec("seed4", parts=4))
    svc.run_until_idle()
    svc.submit(warm_spec("reuse2", parts=2))
    svc.run_until_idle()
    outputs = job_outputs(svc)
    assert outputs["seed4"]["warm"] is False
    assert outputs["reuse2"]["warm"] is True
    assert outputs["reuse2"]["parts"] == 2
    assert outputs["seed4"]["elements"] == outputs["reuse2"]["elements"]


def test_mesh_warm_runs_cold_without_cache():
    svc = service()
    assert svc.snapshot_cache is None
    svc.submit(warm_spec("solo"))
    svc.run_until_idle()
    outputs = job_outputs(svc)
    assert outputs["solo"]["warm"] is False
    assert outputs["solo"]["elements"] > 0


def test_distinct_params_do_not_collide(tmp_path):
    svc = service(snapshot_cache=SnapshotCache(tmp_path / "cache"))
    svc.submit(warm_spec("a8", n=8))
    svc.run_until_idle()
    svc.submit(warm_spec("b6", n=6))
    svc.run_until_idle()
    outputs = job_outputs(svc)
    assert outputs["b6"]["warm"] is False
    assert outputs["a8"]["elements"] != outputs["b6"]["elements"]
