"""Every registered job workload must run under the svc smoke harness.

The registry (:mod:`repro.workloads.jobs`) is the service's public workload
surface: anything listed there is addressable from a JSON jobs file, so
anything listed there must actually execute under the service.  This test
sweeps the registry so a newly registered workload cannot ship without a
harness configuration:

* plain workloads run as a single two-rank job and must complete;
* ``block`` runs under a deadline and must settle as ``deadline``;
* ``coupled`` needs a channel peer, so it runs as a two-job graph through
  ``serve_graph`` and both endpoints must complete.
"""

import json

from repro.couple import ChannelSpec, JobGraph
from repro.svc import JobSpec, MeshJobService
from repro.workloads.jobs import job_workload_names

#: Workloads needing a non-default harness, and how this test runs them.
SPECIAL = {"block", "coupled"}


def run_plain(name):
    service = MeshJobService()
    report = service.serve(
        [JobSpec(name=f"smoke-{name}", workload=name, parts=2,
                 mesh_n=4, steps=2)]
    )
    return json.loads(report.to_json())["jobs"][0]


def test_registry_covers_all_names():
    names = set(job_workload_names())
    assert SPECIAL <= names
    # Anchors: core workloads must stay registered.
    assert {"stencil", "allreduce", "mesh-stats", "noop",
            "adapt-loop"} <= names


def test_every_plain_workload_completes_under_the_service():
    for name in job_workload_names():
        if name in SPECIAL:
            continue
        job = run_plain(name)
        assert job["status"] == "completed", (name, job)
        assert job["output"]["workload"] == name


def test_block_settles_under_deadline():
    service = MeshJobService()
    report = service.serve(
        [JobSpec(name="smoke-block", workload="block", parts=1,
                 deadline=0.3)]
    )
    job = json.loads(report.to_json())["jobs"][0]
    assert job["status"] == "deadline"


def test_coupled_completes_under_serve_graph():
    graph = JobGraph(
        jobs=(
            JobSpec(name="smoke-src", workload="coupled", parts=1,
                    mesh_n=4, steps=2, channels=("smoke-link",)),
            JobSpec(name="smoke-dst", workload="coupled", parts=1,
                    mesh_n=4, steps=2, channels=("smoke-link",)),
        ),
        channels=(
            ChannelSpec(name="smoke-link", src="smoke-src", dst="smoke-dst"),
        ),
    )
    service = MeshJobService()
    report = json.loads(service.serve_graph(graph).to_json())
    assert all(j["status"] == "completed" for j in report["jobs"])
