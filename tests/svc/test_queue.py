"""Admission queue: backpressure, priority aging, fair share, cancellation."""

import pytest

from repro.svc import AdmissionError, AdmissionQueue, JobSpec


def spec(name, priority=0, tenant="default", parts=1):
    return JobSpec(
        name=name, workload="noop", parts=parts, priority=priority,
        tenant=tenant,
    )


def fits_all(_spec):
    return True


def test_submit_returns_monotonic_tickets():
    q = AdmissionQueue(capacity=4)
    assert q.submit(spec("a")) == 0
    assert q.submit(spec("b")) == 1
    assert q.depth == 2


def test_backpressure_raises_typed_admission_error():
    q = AdmissionQueue(capacity=2)
    q.submit(spec("a"))
    q.submit(spec("b"))
    with pytest.raises(AdmissionError) as info:
        q.submit(spec("c"))
    err = info.value
    assert err.capacity == 2
    assert err.depth == 2
    assert err.job == "c"
    assert "drain" in str(err)
    assert q.rejections == 1
    # The rejected job was not recorded; draining frees a slot.
    q.pop_schedulable(fits_all)
    assert q.submit(spec("c")) == 2


def test_pop_prefers_highest_effective_priority():
    q = AdmissionQueue(capacity=8)
    q.submit(spec("low", priority=0))
    q.submit(spec("high", priority=5))
    q.tick()
    assert q.pop_schedulable(fits_all).spec.name == "high"
    assert q.pop_schedulable(fits_all).spec.name == "low"
    assert q.pop_schedulable(fits_all) is None


def test_aging_lets_old_low_priority_job_outbid():
    q = AdmissionQueue(capacity=8, aging=1)
    q.submit(spec("old-low", priority=0))
    for _ in range(5):
        q.tick()
    # A fresh job 4 points higher still loses: 0 + 5 aging > 4 + 0 aging.
    q.submit(spec("new-high", priority=4))
    q.tick()
    assert q.pop_schedulable(fits_all).spec.name == "old-low"


def test_fair_share_prefers_least_served_tenant():
    q = AdmissionQueue(capacity=8, aging=0)
    q.submit(spec("a1", tenant="a"))
    q.submit(spec("a2", tenant="a"))
    q.submit(spec("b1", tenant="b"))
    # Equal priorities: first pop goes by ticket (a1), after which tenant
    # "a" has been served once so "b" wins the next tie.
    assert q.pop_schedulable(fits_all).spec.name == "a1"
    assert q.pop_schedulable(fits_all).spec.name == "b1"
    assert q.pop_schedulable(fits_all).spec.name == "a2"
    assert q.served_by_tenant() == {"a": 2, "b": 1}


def test_pop_skips_jobs_that_do_not_fit():
    q = AdmissionQueue(capacity=8)
    q.submit(spec("giant", priority=9, parts=6))
    q.submit(spec("small", priority=0, parts=1))
    popped = q.pop_schedulable(lambda s: s.parts <= 2)
    assert popped.spec.name == "small"
    assert q.pending_names() == ["giant"]


def test_cancel_removes_pending_job():
    q = AdmissionQueue(capacity=8)
    q.submit(spec("keep"))
    q.submit(spec("drop"))
    assert q.cancel("drop") is True
    assert q.cancel("drop") is False
    assert q.pending_names() == ["keep"]


def test_requeue_bypasses_capacity_and_keeps_ticket():
    q = AdmissionQueue(capacity=1)
    q.submit(spec("job"))
    entry = q.pop_schedulable(fits_all)
    q.submit(spec("filler"))  # queue is full again
    q.requeue(entry, attempt=2)  # retry is not new demand
    assert q.depth == 2
    names = {e.spec.name: e for e in [q.pop_schedulable(fits_all),
                                      q.pop_schedulable(fits_all)]}
    assert names["job"].ticket == entry.ticket
    assert names["job"].attempt == 2


def test_queue_validates_parameters():
    with pytest.raises(ValueError):
        AdmissionQueue(capacity=0)
    with pytest.raises(ValueError):
        AdmissionQueue(aging=-1)
