"""Gang scheduler: locality preference, spanning fallback, determinism."""

import pytest

from repro.parallel import MachineTopology, PlacedTopology
from repro.svc import GangScheduler, JobSpec, PlacementError


def spec(name, parts):
    return JobSpec(name=name, workload="noop", parts=parts)


def machine():
    return MachineTopology(nodes=2, cores_per_node=4)


def test_small_gang_is_node_local():
    sched = GangScheduler(machine(), seed=0)
    placement = sched.place(spec("j", 3))
    assert placement.node_local
    assert len(placement.slots) == 3
    assert len(placement.nodes) == 1


def test_best_fit_prefers_tightest_hosting_node():
    sched = GangScheduler(machine(), seed=0)
    first = sched.place(spec("first", 2))  # leaves one node with 2 free
    tight_node = first.nodes[0]
    second = sched.place(spec("second", 2))
    # Best-fit: the 2-free node hosts it, keeping the 4-free hole open.
    assert second.node_local
    assert second.nodes == [tight_node]
    third = sched.place(spec("third", 4))
    assert third.node_local  # the preserved hole fits the big gang


def test_spanning_fallback_when_no_node_fits():
    sched = GangScheduler(machine(), seed=0)
    placement = sched.place(spec("wide", 6))
    assert not placement.node_local
    assert placement.nodes == [0, 1]
    assert len(placement.slots) == 6
    assert len(set(placement.slots)) == 6


def test_place_returns_none_when_full_and_release_restores():
    sched = GangScheduler(machine(), seed=0)
    big = sched.place(spec("big", 8))
    assert sched.utilization() == (8, 8)
    assert not sched.fits(spec("more", 1))
    assert sched.place(spec("more", 1)) is None
    sched.release(big)
    assert sched.utilization() == (0, 8)
    assert sched.fits(spec("more", 1))


def test_impossible_gang_raises_placement_error():
    sched = GangScheduler(machine(), seed=0)
    with pytest.raises(PlacementError):
        sched.check(spec("huge", 9))
    with pytest.raises(PlacementError):
        sched.place(spec("huge", 9))


def test_identical_runs_produce_identical_traces():
    jobs = [spec("a", 2), spec("b", 4), spec("c", 6), spec("d", 1)]

    def run(seed):
        sched = GangScheduler(machine(), seed=seed)
        for job in jobs:
            placement = sched.place(job)
            if placement is not None and job.name == "b":
                sched.release(placement)
        return sched.trace

    assert run(0) == run(0)
    assert run(7) == run(7)


def test_placement_topology_matches_slots():
    sched = GangScheduler(machine(), seed=0)
    placement = sched.place(spec("wide", 6))
    topo = placement.topology(sched.machine)
    assert isinstance(topo, PlacedTopology)
    assert topo.total_cores == 6
    for rank, (node, _core) in enumerate(placement.slots):
        assert topo.node_of(rank) == node
