"""The service loop: determinism, retries, deadlines, backpressure, gauges."""

import json

import pytest

from repro.parallel import MachineTopology
from repro.resilience import FaultPlan
from repro.svc import (
    AdmissionError,
    JobFailure,
    JobResult,
    JobSpec,
    MeshJobService,
    RetryPolicy,
    load_report,
)


def crash_plan(rank=1):
    return FaultPlan.from_dict(
        {"seed": 11, "faults": [{"kind": "crash", "rank": rank}]}
    )


def mixed_jobs():
    """Eight mixed-priority, mixed-tenant jobs; one fault-injected."""
    return [
        JobSpec(name="halo-a", workload="stencil", parts=4, mesh_n=16,
                steps=2, tenant="cfd", priority=2),
        JobSpec(name="halo-b", workload="stencil", parts=4, mesh_n=16,
                steps=2, tenant="cfd", priority=1),
        JobSpec(name="red-lo", workload="allreduce", parts=2, mesh_n=8,
                steps=2, tenant="batch", priority=0),
        JobSpec(name="red-hi", workload="allreduce", parts=2, mesh_n=8,
                steps=2, tenant="batch", priority=5),
        JobSpec(name="scan", workload="mesh-stats", parts=4, mesh_n=6,
                tenant="adapt", priority=3),
        JobSpec(name="wide", workload="mesh-stats", parts=6, mesh_n=6,
                tenant="adapt", priority=0),
        JobSpec(name="warmup", workload="noop", parts=1, priority=9,
                tenant="ops"),
        JobSpec(name="flaky", workload="stencil", parts=2, mesh_n=12,
                steps=2, tenant="cfd", priority=4,
                retry=RetryPolicy(max_retries=2), fault_plan=crash_plan()),
    ]


def service(**kwargs):
    kwargs.setdefault("timeout", 20.0)
    return MeshJobService(MachineTopology(nodes=2, cores_per_node=4), **kwargs)


def test_mixed_wave_completes_with_fault_recovery():
    svc = service()
    report = svc.serve(mixed_jobs())
    assert report.totals["submitted"] == 8
    assert report.totals["completed"] == 8
    assert report.totals["failed"] == 0
    assert report.totals["retries"] == 1
    flaky = svc.outcome("flaky")
    assert isinstance(flaky, JobResult)
    assert flaky.attempts == 2
    assert flaky.injected_faults == 1
    # The spanning job really spanned, and its stats saw off-node traffic.
    wide = svc.outcome("wide")
    assert any(not p.node_local for p in wide.placements)


def test_same_seed_runs_are_byte_identical():
    first = service(seed=0).serve(mixed_jobs()).to_json()
    second = service(seed=0).serve(mixed_jobs()).to_json()
    assert first == second
    # And the document round-trips through the loader.
    report = load_report(first)
    assert report.totals["completed"] == 8


def test_deadline_cancels_blocked_job():
    svc = service()
    svc.submit(JobSpec(name="stuck", workload="block", parts=2, deadline=0.3))
    svc.run_until_idle()
    outcome = svc.outcome("stuck")
    assert isinstance(outcome, JobFailure)
    assert outcome.status == "deadline"
    assert outcome.exc_type == "DeadlineExceeded"
    assert svc.report().totals["deadline"] == 1


def test_real_failure_is_not_retried_by_default():
    def buggy(comm, _n, _steps):
        if comm.rank == 1:
            raise RuntimeError("genuine bug")
        comm.barrier()

    svc = service()
    svc.submit(JobSpec(name="bug", workload=buggy, parts=2,
                       retry=RetryPolicy(max_retries=3)))
    svc.run_until_idle()
    outcome = svc.outcome("bug")
    assert outcome.status == "failed"
    assert outcome.attempts == 1  # REAL failures fail fast
    assert 1 in outcome.failed_ranks


def test_retry_real_widens_the_policy():
    calls = []

    def flaky_once(comm, _n, _steps):
        if comm.rank == 0:
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("transient")
        comm.barrier()

    svc = service()
    svc.submit(JobSpec(name="transient", workload=flaky_once, parts=2,
                       retry=RetryPolicy(max_retries=1, retry_real=True)))
    svc.run_until_idle()
    outcome = svc.outcome("transient")
    assert outcome.ok
    assert outcome.attempts == 2


def test_backpressure_then_resubmit_after_drain():
    svc = service(capacity=2)
    svc.submit(JobSpec(name="a", workload="noop"))
    svc.submit(JobSpec(name="b", workload="noop"))
    with pytest.raises(AdmissionError) as info:
        svc.submit(JobSpec(name="c", workload="noop"))
    assert info.value.capacity == 2
    svc.run_round()  # drain
    svc.submit(JobSpec(name="c", workload="noop"))
    svc.run_until_idle()
    report = svc.report()
    assert report.totals["completed"] == 3
    assert report.totals["rejections"] == 1


def test_serve_drains_automatically_on_backpressure():
    jobs = [JobSpec(name=f"j{i}", workload="noop") for i in range(6)]
    report = service(capacity=2).serve(jobs)
    assert report.totals["completed"] == 6
    assert report.totals["rejections"] >= 1


def test_cancel_pending_job():
    svc = service()
    svc.submit(JobSpec(name="doomed", workload="noop"))
    assert svc.cancel("doomed") is True
    assert svc.cancel("doomed") is False
    svc.run_until_idle()
    assert svc.outcome("doomed").status == "cancelled"
    assert svc.report().totals["cancelled"] == 1


def test_duplicate_names_and_unknown_workloads_rejected():
    from repro.svc import JobSpecError

    svc = service()
    svc.submit(JobSpec(name="one", workload="noop"))
    with pytest.raises(JobSpecError):
        svc.submit(JobSpec(name="one", workload="noop"))
    with pytest.raises(JobSpecError):
        svc.submit(JobSpec(name="two", workload="no-such-workload"))


def test_service_gauges_and_metrics_export(tmp_path):
    svc = service()
    svc.serve(mixed_jobs())
    timelines = svc.tracer.timelines()
    for series in ("svc.queue.depth", "svc.running.jobs",
                   "svc.core.utilization"):
        assert series in timelines and timelines[series]
    counters = svc.counters.counters()
    assert counters["svc.jobs.submitted"] == 8
    assert counters["svc.jobs.completed"] == 8
    assert counters["svc.jobs.retried"] == 1

    path = tmp_path / "metrics.json"
    svc.write_metrics(path)
    doc = json.loads(path.read_text())
    assert "svc.queue.depth" in doc["timelines"]
    assert doc["service_latency"]["count"] == 8


def test_jobs_in_one_round_are_isolated():
    svc = service()
    svc.submit(JobSpec(name="quiet", workload="noop", parts=2))
    svc.submit(JobSpec(name="chatty", workload="stencil", parts=2,
                       mesh_n=16, steps=3))
    svc.run_round()
    quiet = svc.outcome("quiet")
    chatty = svc.outcome("chatty")
    assert chatty.stats.messages > quiet.stats.messages
    # Private per-job counter registries: running next to the chatty
    # stencil job charges the quiet job exactly what a solo run would.
    solo = service()
    solo.submit(JobSpec(name="quiet", workload="noop", parts=2))
    solo.run_round()
    assert solo.outcome("quiet").stats == quiet.stats
