"""Tests for ghosting and distributed field synchronization."""

import numpy as np
import pytest

from repro.mesh import box_tet, rect_tri
from repro.partition import (
    DistributedField,
    Overlap,
    accumulate,
    delete_ghosts,
    distribute,
    ghost_layer,
    node_entity_counts,
    parts_per_node,
    synchronize,
)


def strip(mesh, nparts, axis=0):
    return [
        min(int(mesh.centroid(e)[axis] * nparts), nparts - 1)
        for e in mesh.entities(mesh.dim())
    ]


@pytest.fixture
def dm():
    mesh = rect_tri(4)
    return distribute(mesh, strip(mesh, 4))


# -- ghosting ------------------------------------------------------------------


def test_ghost_layer_counts_excluded_from_load(dm):
    before = dm.entity_counts().copy()
    stats = ghost_layer(dm)
    created = stats.ghosts_created
    assert created > 0
    assert stats.per_dimension[2] == created  # 2D: faces are the elements
    assert stats.messages > 0
    assert np.array_equal(dm.entity_counts(), before)  # ghosts don't count
    # But the raw meshes did grow.
    raw = sum(part.mesh.count(2) for part in dm)
    assert raw == 32 + created
    dm.verify()


def test_ghost_elements_mirror_their_home(dm):
    ghost_layer(dm)
    for part in dm:
        for ghost in part.ghosts:
            if ghost.dim != 2:
                continue
            home_pid, home_ent = part.ghost_home[ghost]
            assert home_pid != part.pid
            home = dm.part(home_pid)
            assert home.gid(home_ent) == part.gid(ghost)
            assert not home.is_ghost(home_ent)
            assert part.owner(ghost) == home_pid


def test_ghost_layer_via_edges_smaller_than_via_vertices(dm):
    created_vtx = ghost_layer(dm).ghosts_created
    delete_ghosts(dm)
    created_edge = ghost_layer(dm, overlap=Overlap(bridge_dim=1)).ghosts_created
    delete_ghosts(dm)
    assert created_edge <= created_vtx
    dm.verify()


def test_delete_ghosts_restores_meshes(dm):
    raw_before = [part.mesh.count(2) for part in dm]
    created = ghost_layer(dm)
    removed = delete_ghosts(dm)
    # Deletion is purely local and removes at least every ghost element
    # that survived as a ghost (shared closure entities may stay).
    assert removed.entities_removed > 0
    assert removed.messages == 0 and removed.supersteps == 0
    assert [part.mesh.count(2) for part in dm] == raw_before
    assert all(not part.ghosts for part in dm)
    dm.verify()


def test_two_ghost_layers():
    # Strips two cells wide, so a second ring exists within the home part.
    mesh = rect_tri(8)
    dmesh = distribute(mesh, strip(mesh, 4))
    one = ghost_layer(dmesh, depth=1)
    delete_ghosts(dmesh)
    two = ghost_layer(dmesh, depth=2)
    assert two.ghosts_created > one.ghosts_created
    assert two.layers == 2 and one.layers == 1
    delete_ghosts(dmesh)
    dmesh.verify()


def test_ghost_tag_data_travels(dm):
    for part in dm:
        tag = part.mesh.tag("load")
        for e in part.mesh.entities(2):
            tag.set(e, part.pid * 100 + e.idx)
    ghost_layer(dm, tags=("load",))
    checked = 0
    for part in dm:
        tag = part.mesh.tag("load")
        for ghost in part.ghosts:
            if ghost.dim != 2:
                continue
            home_pid, home_ent = part.ghost_home[ghost]
            expected = dm.part(home_pid).mesh.tag("load").get(home_ent)
            assert tag.get(ghost) == expected
            checked += 1
    assert checked > 0


def test_ghost_bridge_dim_validated(dm):
    with pytest.raises(ValueError):
        ghost_layer(dm, overlap=Overlap(bridge_dim=2))


def test_ghosting_3d():
    mesh = box_tet(2)
    dmesh = distribute(mesh, strip(mesh, 2, axis=2))
    created = ghost_layer(dmesh, overlap=Overlap(bridge_dim=2))
    assert created.ghosts_created > 0
    assert created.per_dimension[3] == created.ghosts_created
    dmesh.verify()
    delete_ghosts(dmesh)
    dmesh.verify()
    assert dmesh.entity_counts()[:, 3].sum() == mesh.count(3)


# -- distributed fields ------------------------------------------------------------


def test_synchronize_owner_value_wins(dm):
    df = DistributedField(dm, "u")
    for part in dm:
        df.on(part.pid).set_from_coords(lambda x: float(part.pid))
    assert df.max_copy_disagreement() > 0
    synchronize(df)
    assert df.max_copy_disagreement() == 0
    # Copies hold the owner's (smallest pid's) value.
    part1 = dm.part(1)
    shared_with_0 = next(
        e for e in part1.remotes if e.dim == 0 and 0 in part1.remotes[e]
    )
    assert df.on(1).get_scalar(shared_with_0) == 0.0


def test_accumulate_sums_copies(dm):
    df = DistributedField(dm, "a")
    for part in dm:
        field = df.on(part.pid)
        for v in part.mesh.entities(0):
            field.set(v, 1.0)
    accumulate(df)
    part0 = dm.part(0)
    interior = next(v for v in part0.mesh.entities(0) if not part0.is_shared(v))
    shared = next(e for e in part0.remotes if e.dim == 0)
    assert df.on(0).get_scalar(interior) == 1.0
    expected = len(part0.residence(shared))
    assert df.on(0).get_scalar(shared) == float(expected)
    assert df.max_copy_disagreement() == 0


def test_field_set_from_coords_consistent_needs_no_sync(dm):
    df = DistributedField(dm, "x")
    df.set_from_coords(lambda x: x[0] + 2 * x[1])
    assert df.max_copy_disagreement() == 0
    sent = synchronize(df)
    assert sent.values_sent > 0  # values still travel; they just agree
    assert sent.messages > 0 and sent.entity_dim == 0
    assert df.max_copy_disagreement() == 0


def test_vector_field_sync(dm):
    df = DistributedField(dm, "v", shape=2)
    for part in dm:
        df.on(part.pid).set_all(lambda e: [part.pid, -part.pid])
    synchronize(df)
    assert df.max_copy_disagreement() == 0


# -- multiple parts per process ----------------------------------------------------


def test_parts_per_node_flat(dm):
    grouping = parts_per_node(dm)
    assert grouping == {0: [0], 1: [1], 2: [2], 3: [3]}


def test_parts_per_node_two_per_node():
    from repro.parallel import MachineTopology

    mesh = rect_tri(4)
    dmesh = distribute(
        mesh, strip(mesh, 4), topology=MachineTopology(nodes=2, cores_per_node=2)
    )
    assert parts_per_node(dmesh) == {0: [0, 1], 1: [2, 3]}
    node_counts = node_entity_counts(dmesh)
    assert node_counts.shape == (2, 4)
    assert node_counts[:, 2].sum() == 32
