"""Tests for initial mesh distribution and the Part bookkeeping."""

import numpy as np
import pytest

from repro.mesh import Ent, box_tet, rect_tri
from repro.partition import build_partition_model, distribute


def strip_assignment(mesh, nparts, axis=0):
    elems = list(mesh.entities(mesh.dim()))
    return [
        min(int(mesh.centroid(e)[axis] * nparts), nparts - 1) for e in elems
    ]


@pytest.fixture
def dmesh2d():
    mesh = rect_tri(4)
    return mesh, distribute(mesh, strip_assignment(mesh, 4))


def test_distribution_preserves_elements(dmesh2d):
    mesh, dm = dmesh2d
    assert dm.entity_counts()[:, 2].sum() == mesh.count(2)
    dm.verify()


def test_each_part_is_valid_serial_mesh(dmesh2d):
    from repro.mesh.verify import verify

    _, dm = dmesh2d
    for part in dm:
        verify(part.mesh, check_classification=True)


def test_owned_counts_partition_the_global_mesh(dmesh2d):
    mesh, dm = dmesh2d
    owned = dm.owned_counts()
    for dim in range(3):
        assert owned[:, dim].sum() == mesh.count(dim)


def test_shared_entities_have_symmetric_links(dmesh2d):
    _, dm = dmesh2d
    for part in dm:
        for ent, copies in part.remotes.items():
            for other_pid, other_ent in copies.items():
                back = dm.part(other_pid).remotes[other_ent]
                assert back[part.pid] == ent


def test_boundary_vertex_count_2d(dmesh2d):
    """Strip partition of a 4x4 grid: 3 internal interfaces x 5 vertices."""
    _, dm = dmesh2d
    shared_verts = set()
    for part in dm:
        for ent in part.remotes:
            if ent.dim == 0:
                shared_verts.add(part.gid(ent))
    assert len(shared_verts) == 15


def test_residence_and_ownership(dmesh2d):
    _, dm = dmesh2d
    part0 = dm.part(0)
    interface = [e for e in part0.remotes if e.dim == 0]
    assert interface
    for v in interface:
        res = part0.residence(v)
        assert res[0] == 0  # part 0 is the smallest residence part here
        assert part0.owns(v)
        # The copy on the other part must NOT consider itself owner.
        for other_pid, other_ent in part0.remotes[v].items():
            assert not dm.part(other_pid).owns(other_ent)


def test_classification_copied(dmesh2d):
    mesh, dm = dmesh2d
    for part in dm:
        for v in part.mesh.entities(0):
            expected = mesh.classification(Ent(0, part.gid(v)))
            assert part.mesh.classification(v) == expected


def test_gids_unique_per_part_and_consistent(dmesh2d):
    mesh, dm = dmesh2d
    for part in dm:
        for dim in range(3):
            gids = [part.gid(e) for e in part.mesh.entities(dim)]
            assert len(gids) == len(set(gids))


def test_assignment_dict_form():
    mesh = rect_tri(2)
    elems = list(mesh.entities(2))
    assign = {e: i % 2 for i, e in enumerate(elems)}
    dm = distribute(mesh, assign)
    dm.verify()
    assert dm.nparts == 2


def test_assignment_validation():
    mesh = rect_tri(2)
    with pytest.raises(ValueError):
        distribute(mesh, [0] * 3)  # wrong length
    with pytest.raises(ValueError):
        distribute(mesh, [-1] * mesh.count(2))
    with pytest.raises(ValueError):
        distribute(mesh, [5] * mesh.count(2), nparts=2)


def test_empty_parts_allowed():
    mesh = rect_tri(2)
    dm = distribute(mesh, [0] * mesh.count(2), nparts=3)
    assert dm.nparts == 3
    assert dm.part(1).mesh.count(2) == 0
    dm.verify()


def test_3d_distribution():
    mesh = box_tet(2)
    dm = distribute(mesh, strip_assignment(mesh, 2, axis=2))
    dm.verify()
    assert dm.entity_counts()[:, 3].sum() == mesh.count(3)
    owned = dm.owned_counts()
    for dim in range(4):
        assert owned[:, dim].sum() == mesh.count(dim)
    # The interface plane: 2x2 grid at z=0.5 has 9 verts, shared faces etc.
    shared_verts = {
        part.gid(e) for part in dm for e in part.remotes if e.dim == 0
    }
    assert len(shared_verts) == 9


def test_neighbors(dmesh2d):
    _, dm = dmesh2d
    assert dm.part(0).neighbors() == {1}
    assert dm.part(1).neighbors() == {0, 2}
    assert dm.part(1).neighbors(dim=0) == {0, 2}
    # Vertex-only diagonal neighbors are possible in general; here strips
    # share edges too.
    assert dm.part(1).neighbors(dim=1) == {0, 2}


def test_partition_model_strip(dmesh2d):
    _, dm = dmesh2d
    pm = build_partition_model(dm)
    # 4 interior partition faces + 3 interface partition edges, no corners.
    assert pm.count(2) == 4
    assert pm.count(1) == 3
    assert pm.count(0) == 0
    part0 = dm.part(0)
    interior = next(
        e for e in part0.mesh.entities(2) if not part0.is_shared(e)
    )
    assert pm.classification(0, interior).dim == 2
    shared = next(e for e in part0.remotes if e.dim == 0)
    pent = pm.classification(0, shared)
    assert pent.dim == 1
    assert pent.owner == 0


def test_partition_model_cross():
    """2x2 block partition: the center vertex lives on 4 parts."""
    mesh = rect_tri(4)
    elems = list(mesh.entities(2))
    assign = []
    for e in elems:
        c = mesh.centroid(e)
        assign.append((1 if c[0] > 0.5 else 0) + 2 * (1 if c[1] > 0.5 else 0))
    dm = distribute(mesh, assign)
    dm.verify()
    pm = build_partition_model(dm)
    # Residence sets: 4 singletons, 4 pair interfaces, 1 four-way center.
    assert pm.count(2) == 4
    assert pm.count(1) == 4
    # Center vertex: residence of size 4 -> dim max(2-3, 0) = 0.
    assert pm.count(0) == 1
    center = pm.entities(0)[0]
    assert center.residence == (0, 1, 2, 3)
    assert center.owner == 0


def test_partition_model_custom_owner_rule():
    mesh = rect_tri(2)
    assign = strip_assignment(mesh, 2)
    dm = distribute(mesh, assign)
    pm = build_partition_model(dm, owner_rule=max)
    shared = next(e for e in dm.part(0).remotes if e.dim == 0)
    assert pm.owner(0, shared) == 1
