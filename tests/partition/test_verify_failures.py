"""Failure injection: the distributed verifier must catch corruptions.

Each test corrupts one invariant behind the API's back and asserts
``DistributedMesh.verify`` reports it — the verifier is what every other
test trusts, so its own detection power needs proof.
"""

import numpy as np
import pytest

from repro.mesh import Ent, rect_tri
from repro.partition import distribute, ghost_layer
from repro.partition.migration import _remove_element


def strips(mesh, nparts):
    return [
        min(int(mesh.centroid(e)[0] * nparts), nparts - 1)
        for e in mesh.entities(2)
    ]


@pytest.fixture
def dm():
    mesh = rect_tri(4)
    return distribute(mesh, strips(mesh, 3))


def shared_vertex(part):
    return next(e for e in sorted(part.remotes) if e.dim == 0)


def test_clean_distribution_verifies(dm):
    dm.verify()


def test_detects_asymmetric_link(dm):
    part0 = dm.part(0)
    v = shared_vertex(part0)
    other_pid, other_ent = next(iter(part0.remotes[v].items()))
    del dm.part(other_pid).remotes[other_ent][0]
    with pytest.raises(AssertionError, match="not reciprocated|identity"):
        dm.verify()


def test_detects_dangling_link_to_dead_entity(dm):
    part0 = dm.part(0)
    # Kill an element on part 1 that a link points... links point at
    # boundary entities; kill a linked vertex's closure instead: remove
    # every element of part 1 touching its copy, then the vertex itself.
    v = shared_vertex(part0)
    other_pid, other_ent = next(iter(part0.remotes[v].items()))
    other = dm.part(other_pid)
    for element in list(other.mesh.adjacent(other_ent, 2)):
        _remove_element(other, element)
    # The vertex died with its cavity; part0's link now dangles.
    assert not other.mesh.has(other_ent)
    with pytest.raises(AssertionError, match="dead"):
        dm.verify()


def test_detects_identity_mismatch(dm):
    part0 = dm.part(0)
    v = shared_vertex(part0)
    # Re-gid the local copy: the link now joins different identities.
    part0.drop_gid(v)
    part0.set_gid(v, 999_999)
    with pytest.raises(AssertionError, match="identity mismatch"):
        dm.verify()


def test_detects_self_link(dm):
    part0 = dm.part(0)
    v = shared_vertex(part0)
    part0.remotes[v][0] = v
    with pytest.raises(AssertionError, match="self remote link"):
        dm.verify()


def test_detects_link_from_dead_entity(dm):
    part0 = dm.part(0)
    # Fabricate a link entry keyed by a never-created entity.
    part0.remotes[Ent(0, 10_000)] = {1: Ent(0, 0)}
    with pytest.raises(AssertionError, match="dead entity"):
        dm.verify()


def test_detects_dead_ghost(dm):
    ghost_layer(dm)
    part0 = dm.part(0)
    ghost = next(g for g in part0.ghosts if g.dim == 2)
    home = part0.ghost_home[ghost]
    # Destroying the ghost scrubs the registries via the destroy listener;
    # corrupt them back to simulate a stale entry.
    part0.mesh.destroy(ghost)
    part0.ghosts.add(ghost)
    part0.ghost_home[ghost] = home
    with pytest.raises(AssertionError, match="dead ghost"):
        dm.verify()


def test_detects_broken_part_mesh(dm):
    part0 = dm.part(0)
    # Corrupt the serial mesh itself: verify must propagate mesh checks.
    core = part0.mesh.core
    first_edge = int(core.live_ids(1)[0])
    core.nup[1][first_edge] = 0
    with pytest.raises(AssertionError):
        dm.verify()


def test_check_meshes_flag_skips_serial_checks(dm):
    part0 = dm.part(0)
    core = part0.mesh.core
    first_edge = int(core.live_ids(1)[0])
    core.nup[1][first_edge] = 0
    dm.verify(check_meshes=False)  # only link invariants checked
