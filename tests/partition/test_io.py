"""Tests for distributed-mesh checkpointing."""

import numpy as np
import pytest

from repro.mesh import box_tet, rect_tri
from repro.partition import (
    distribute,
    load_dmesh,
    migrate,
    save_dmesh,
)


def strips(mesh, nparts, axis=0):
    return [
        min(int(mesh.centroid(e)[axis] * nparts), nparts - 1)
        for e in mesh.entities(mesh.dim())
    ]


def test_roundtrip_counts_and_links(tmp_path):
    mesh = rect_tri(4)
    dm = distribute(mesh, strips(mesh, 4))
    save_dmesh(dm, tmp_path / "ckpt")
    restored = load_dmesh(tmp_path / "ckpt", model=mesh.model)
    restored.verify()
    assert np.array_equal(restored.entity_counts(), dm.entity_counts())
    # Remote-link structure identical (same residence sets per shared gid).
    for part in dm:
        other = restored.part(part.pid)
        mine = {
            part.gid(ent): part.residence(ent) for ent in part.remotes
            if ent.dim == 0
        }
        theirs = {
            other.gid(ent): other.residence(ent) for ent in other.remotes
            if ent.dim == 0
        }
        assert mine == theirs


def test_roundtrip_3d(tmp_path):
    mesh = box_tet(2)
    dm = distribute(mesh, strips(mesh, 2, axis=2))
    save_dmesh(dm, tmp_path / "c")
    restored = load_dmesh(tmp_path / "c", model=mesh.model)
    restored.verify()
    assert np.array_equal(restored.entity_counts(), dm.entity_counts())


def test_roundtrip_classification(tmp_path):
    mesh = rect_tri(3)
    dm = distribute(mesh, strips(mesh, 2))
    save_dmesh(dm, tmp_path / "c")
    restored = load_dmesh(tmp_path / "c", model=mesh.model)
    for part in restored:
        for v in part.mesh.entities(0):
            assert part.mesh.classification(v) is not None
        for e in part.mesh.entities(1):
            assert part.mesh.classification(e) is not None


def test_roundtrip_without_model(tmp_path):
    mesh = rect_tri(2)
    dm = distribute(mesh, strips(mesh, 2))
    save_dmesh(dm, tmp_path / "c")
    restored = load_dmesh(tmp_path / "c")
    restored.verify()
    assert np.array_equal(restored.entity_counts(), dm.entity_counts())


def test_roundtrip_with_empty_part(tmp_path):
    mesh = rect_tri(2)
    dm = distribute(mesh, [0] * mesh.count(2), nparts=3)
    save_dmesh(dm, tmp_path / "c")
    restored = load_dmesh(tmp_path / "c", model=mesh.model)
    restored.verify()
    assert restored.part(1).mesh.count(2) == 0


def test_restored_mesh_is_operational(tmp_path):
    """Migration works on a reloaded checkpoint (gid allocator restored)."""
    mesh = rect_tri(4)
    dm = distribute(mesh, strips(mesh, 4))
    save_dmesh(dm, tmp_path / "c")
    restored = load_dmesh(tmp_path / "c", model=mesh.model)
    element = next(restored.part(0).mesh.entities(2))
    migrate(restored, {0: {element: 1}})
    restored.verify()
    assert restored.entity_counts()[:, 2].sum() == mesh.count(2)


def test_checkpoint_after_adaptation(tmp_path):
    from repro.field import UniformSize
    from repro.partition import refine_distributed

    mesh = rect_tri(3)
    dm = distribute(mesh, strips(mesh, 3))
    refine_distributed(dm, UniformSize(0.15))
    save_dmesh(dm, tmp_path / "c")
    restored = load_dmesh(tmp_path / "c", model=mesh.model)
    restored.verify()
    assert np.array_equal(restored.entity_counts(), dm.entity_counts())
