"""Tests for distributed-mesh checkpointing."""

import numpy as np
import pytest

from repro.mesh import box_tet, rect_tri
from repro.partition import (
    CorruptCheckpointError,
    DistributedField,
    distribute,
    load_checkpoint,
    load_dmesh,
    migrate,
    save_dmesh,
)


def strips(mesh, nparts, axis=0):
    return [
        min(int(mesh.centroid(e)[axis] * nparts), nparts - 1)
        for e in mesh.entities(mesh.dim())
    ]


def test_roundtrip_counts_and_links(tmp_path):
    mesh = rect_tri(4)
    dm = distribute(mesh, strips(mesh, 4))
    save_dmesh(dm, tmp_path / "ckpt")
    restored = load_dmesh(tmp_path / "ckpt", model=mesh.model)
    restored.verify()
    assert np.array_equal(restored.entity_counts(), dm.entity_counts())
    # Remote-link structure identical (same residence sets per shared gid).
    for part in dm:
        other = restored.part(part.pid)
        mine = {
            part.gid(ent): part.residence(ent) for ent in part.remotes
            if ent.dim == 0
        }
        theirs = {
            other.gid(ent): other.residence(ent) for ent in other.remotes
            if ent.dim == 0
        }
        assert mine == theirs


def test_roundtrip_3d(tmp_path):
    mesh = box_tet(2)
    dm = distribute(mesh, strips(mesh, 2, axis=2))
    save_dmesh(dm, tmp_path / "c")
    restored = load_dmesh(tmp_path / "c", model=mesh.model)
    restored.verify()
    assert np.array_equal(restored.entity_counts(), dm.entity_counts())


def test_roundtrip_classification(tmp_path):
    mesh = rect_tri(3)
    dm = distribute(mesh, strips(mesh, 2))
    save_dmesh(dm, tmp_path / "c")
    restored = load_dmesh(tmp_path / "c", model=mesh.model)
    for part in restored:
        for v in part.mesh.entities(0):
            assert part.mesh.classification(v) is not None
        for e in part.mesh.entities(1):
            assert part.mesh.classification(e) is not None


def test_roundtrip_without_model(tmp_path):
    mesh = rect_tri(2)
    dm = distribute(mesh, strips(mesh, 2))
    save_dmesh(dm, tmp_path / "c")
    restored = load_dmesh(tmp_path / "c")
    restored.verify()
    assert np.array_equal(restored.entity_counts(), dm.entity_counts())


def test_roundtrip_with_empty_part(tmp_path):
    mesh = rect_tri(2)
    dm = distribute(mesh, [0] * mesh.count(2), nparts=3)
    save_dmesh(dm, tmp_path / "c")
    restored = load_dmesh(tmp_path / "c", model=mesh.model)
    restored.verify()
    assert restored.part(1).mesh.count(2) == 0


def test_restored_mesh_is_operational(tmp_path):
    """Migration works on a reloaded checkpoint (gid allocator restored)."""
    mesh = rect_tri(4)
    dm = distribute(mesh, strips(mesh, 4))
    save_dmesh(dm, tmp_path / "c")
    restored = load_dmesh(tmp_path / "c", model=mesh.model)
    element = next(restored.part(0).mesh.entities(2))
    migrate(restored, {0: {element: 1}})
    restored.verify()
    assert restored.entity_counts()[:, 2].sum() == mesh.count(2)


def test_checkpoint_after_adaptation(tmp_path):
    from repro.field import UniformSize
    from repro.partition import refine_distributed

    mesh = rect_tri(3)
    dm = distribute(mesh, strips(mesh, 3))
    refine_distributed(dm, UniformSize(0.15))
    save_dmesh(dm, tmp_path / "c")
    restored = load_dmesh(tmp_path / "c", model=mesh.model)
    restored.verify()
    assert np.array_equal(restored.entity_counts(), dm.entity_counts())


# -- v2 format: tags, fields, ghosts ------------------------------------------


def test_roundtrip_tags(tmp_path):
    mesh = rect_tri(3)
    dm = distribute(mesh, strips(mesh, 2))
    for part in dm:
        vtag = part.mesh.tag("vlabel")
        for v in part.mesh.entities(0):
            vtag.set(v, int(part.gid(v)) * 10)
        etag = part.mesh.tag("region")
        for e in part.mesh.entities(2):
            etag.set(e, f"r{part.gid(e) % 3}")
    save_dmesh(dm, tmp_path / "c")
    restored = load_dmesh(tmp_path / "c", model=mesh.model)
    for part in restored:
        vtag = part.mesh.tags.find("vlabel")
        assert vtag is not None
        for v in part.mesh.entities(0):
            assert vtag.get(v) == int(part.gid(v)) * 10
        etag = part.mesh.tags.find("region")
        assert etag is not None
        for e in part.mesh.entities(2):
            assert etag.get(e) == f"r{part.gid(e) % 3}"


def test_roundtrip_fields(tmp_path):
    mesh = rect_tri(3)
    dm = distribute(mesh, strips(mesh, 3))
    df = DistributedField(dm, "u")
    df.set_from_coords(lambda x: x[0] + 2.0 * x[1])
    save_dmesh(dm, tmp_path / "c", fields=[df])
    restored, fields, manifest = load_checkpoint(tmp_path / "c", model=mesh.model)
    assert manifest["format"] == "repro.dmesh/2"
    assert set(fields) == {"u"}
    ref = fields["u"]
    for part in restored:
        f = ref.fields[part.pid]
        for v in part.mesh.entities(0):
            x = part.mesh.coords(v)
            assert f.get(v) == pytest.approx(x[0] + 2.0 * x[1])


def test_all_entities_have_gids_after_restore(tmp_path):
    """The all-entities-carry-gids invariant survives the round-trip."""
    mesh = box_tet(2)
    dm = distribute(mesh, strips(mesh, 2, axis=2))
    save_dmesh(dm, tmp_path / "c")
    restored = load_dmesh(tmp_path / "c", model=mesh.model)
    for part in restored:
        for dim in range(4):
            for ent in part.mesh.entities(dim):
                assert part.has_gid(ent), (part.pid, ent)
    # Shared entities carry the same gid on every holder.
    for part in restored:
        for ent, copies in part.remotes.items():
            for other_pid, other_ent in copies.items():
                other = restored.part(other_pid)
                assert other.gid(other_ent) == part.gid(ent)


def test_ghosted_mesh_roundtrip_excludes_ghosts(tmp_path):
    from repro.partition import ghost_layer

    mesh = rect_tri(4)
    dm = distribute(mesh, strips(mesh, 3))
    pre_ghost = dm.entity_counts().copy()
    ghost_layer(dm)
    save_dmesh(dm, tmp_path / "c")
    restored = load_dmesh(tmp_path / "c", model=mesh.model)
    restored.verify()
    # Ghosts are runtime state: the snapshot holds only real entities.
    assert not any(part.ghosts for part in restored)
    assert np.array_equal(restored.entity_counts(), pre_ghost)
    # ...and ghosting is re-appliable on the restored mesh.
    ghost_layer(restored)
    restored.verify()
    assert np.array_equal(restored.entity_counts(), pre_ghost)


# -- restore at a different part count ----------------------------------------


@pytest.mark.parametrize("target", [4, 16])
def test_restore_8_parts_at_other_counts(tmp_path, target):
    """Checkpoint at 8 parts, restart at 4 and 16 (the DMPlex property)."""
    mesh = rect_tri(6)
    dm = distribute(mesh, strips(mesh, 8))
    save_dmesh(dm, tmp_path / "c")
    restored = load_dmesh(tmp_path / "c", model=mesh.model, nparts=target)
    restored.verify()
    assert restored.nparts == target
    for dim in range(3):
        assert restored.total_owned(dim) == dm.total_owned(dim)
    assert all(part.mesh.count(2) > 0 for part in restored)


def test_restore_other_count_keeps_tags_and_fields(tmp_path):
    mesh = rect_tri(4)
    dm = distribute(mesh, strips(mesh, 4))
    for part in dm:
        tag = part.mesh.tag("mark")
        for e in part.mesh.entities(2):
            tag.set(e, int(part.gid(e)))
    df = DistributedField(dm, "u")
    df.set_from_coords(lambda x: 5.0 * x[0])
    save_dmesh(dm, tmp_path / "c", fields=[df])
    restored, fields, _ = load_checkpoint(
        tmp_path / "c", model=mesh.model, nparts=2
    )
    restored.verify()
    for part in restored:
        tag = part.mesh.tags.find("mark")
        for e in part.mesh.entities(2):
            assert tag.get(e) == int(part.gid(e))
        f = fields["u"].fields[part.pid]
        for v in part.mesh.entities(0):
            assert f.get(v) == pytest.approx(5.0 * part.mesh.coords(v)[0])


def test_restored_regrouped_mesh_is_operational(tmp_path):
    mesh = rect_tri(4)
    dm = distribute(mesh, strips(mesh, 4))
    save_dmesh(dm, tmp_path / "c")
    restored = load_dmesh(tmp_path / "c", model=mesh.model, nparts=2)
    element = next(restored.part(0).mesh.entities(2))
    migrate(restored, {0: {element: 1}})
    restored.verify()
    assert restored.entity_counts()[:, 2].sum() == mesh.count(2)


# -- integrity: typed corruption errors ---------------------------------------


def make_checkpoint(tmp_path):
    mesh = rect_tri(3)
    dm = distribute(mesh, strips(mesh, 2))
    save_dmesh(dm, tmp_path / "c")
    return tmp_path / "c"


def test_missing_manifest_is_typed(tmp_path):
    path = make_checkpoint(tmp_path)
    (path / "manifest.json").unlink()
    with pytest.raises(CorruptCheckpointError, match="manifest"):
        load_dmesh(path)


def test_unparseable_manifest_is_typed(tmp_path):
    path = make_checkpoint(tmp_path)
    (path / "manifest.json").write_text("{nope")
    with pytest.raises(CorruptCheckpointError):
        load_dmesh(path)


def test_unsupported_format_is_typed(tmp_path):
    import json

    path = make_checkpoint(tmp_path)
    manifest = json.loads((path / "manifest.json").read_text())
    manifest["format"] = "repro.dmesh/99"
    (path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(CorruptCheckpointError, match="format"):
        load_dmesh(path)


def test_tampered_part_file_fails_hash_validation(tmp_path):
    path = make_checkpoint(tmp_path)
    part_file = path / "part0.npz"
    data = bytearray(part_file.read_bytes())
    data[len(data) // 2] ^= 0xFF
    part_file.write_bytes(bytes(data))
    with pytest.raises(CorruptCheckpointError, match="sha256"):
        load_dmesh(path)


def test_truncated_part_file_is_typed_not_badzipfile(tmp_path):
    path = make_checkpoint(tmp_path)
    part_file = path / "part1.npz"
    part_file.write_bytes(part_file.read_bytes()[:20])
    with pytest.raises(CorruptCheckpointError):
        load_dmesh(path)


def test_missing_part_file_is_typed(tmp_path):
    path = make_checkpoint(tmp_path)
    (path / "part0.npz").unlink()
    with pytest.raises(CorruptCheckpointError, match="missing"):
        load_dmesh(path)
