"""Tests for mesh migration and remote-link rebuilding."""

import numpy as np
import pytest

from repro.mesh import Ent, box_tet, rect_tri
from repro.partition import (
    distribute,
    merge_parts,
    migrate,
    move_elements_to_new_part,
    rebuild_links,
    surface_closure,
)


def strip(mesh, nparts, axis=0):
    return [
        min(int(mesh.centroid(e)[axis] * nparts), nparts - 1)
        for e in mesh.entities(mesh.dim())
    ]


@pytest.fixture
def dm():
    mesh = rect_tri(4)
    return distribute(mesh, strip(mesh, 4))


def total_faces(dm):
    return dm.entity_counts()[:, 2].sum()


def test_migrate_one_element(dm):
    before = dm.entity_counts()[:, 2]
    element = next(dm.part(0).mesh.entities(2))
    stats = migrate(dm, {0: {element: 1}})
    assert stats.elements_moved == 1
    assert stats.per_dimension[2] == 1  # the element itself rode along
    assert stats.messages > 0
    assert stats.supersteps > 0
    after = dm.entity_counts()[:, 2]
    assert after[0] == before[0] - 1
    assert after[1] == before[1] + 1
    dm.verify()


def test_migrate_preserves_owned_totals(dm):
    owned_before = dm.owned_counts().sum(axis=0)
    part0 = dm.part(0)
    moves = {e: 1 for e in list(part0.mesh.entities(2))[:4]}
    migrate(dm, {0: moves})
    dm.verify()
    assert np.array_equal(dm.owned_counts().sum(axis=0), owned_before)


def test_migrate_whole_part(dm):
    n = dm.part(0).mesh.count(2)
    assert merge_parts(dm, 0, 1) == n
    dm.verify()
    assert dm.part(0).mesh.count(2) == 0
    assert dm.part(0).mesh.count(0) == 0  # closure fully cleaned up
    assert not dm.part(0).remotes
    # Part 1 now borders part 2 only.
    assert dm.part(1).neighbors() == {2}


def test_migrate_self_destination_is_noop(dm):
    element = next(dm.part(0).mesh.entities(2))
    before = dm.entity_counts().copy()
    assert migrate(dm, {0: {element: 0}}).elements_moved == 0
    assert np.array_equal(dm.entity_counts(), before)


def test_migrate_round_trip_restores_counts(dm):
    before = dm.entity_counts().copy()
    element = sorted(dm.part(1).mesh.entities(2))[0]
    gid = dm.part(1).gid(element)
    migrate(dm, {1: {element: 3}})
    landed = dm.part(3).by_gid(2, gid)
    assert landed is not None
    migrate(dm, {3: {landed: 1}})
    dm.verify()
    assert np.array_equal(dm.entity_counts(), before)


def test_migrate_classification_travels(dm):
    part0 = dm.part(0)
    # Pick a boundary element (classified closure includes model edges).
    element = next(
        e
        for e in part0.mesh.entities(2)
        if any(
            part0.mesh.classification(v).dim < 2
            for v in part0.mesh.verts_of(e)
        )
    )
    gid = part0.gid(element)
    bclasses = {
        part0.gid(v): part0.mesh.classification(v)
        for v in part0.mesh.verts_of(element)
    }
    migrate(dm, {0: {element: 3}})
    landed = dm.part(3).by_gid(2, gid)
    for v in dm.part(3).mesh.verts_of(landed):
        assert dm.part(3).mesh.classification(v) == bclasses[dm.part(3).gid(v)]


def test_migrate_rejects_dead_element(dm):
    with pytest.raises(ValueError):
        migrate(dm, {0: {Ent(2, 10_000): 1}})


def test_migrate_rejects_bad_destination(dm):
    element = next(dm.part(0).mesh.entities(2))
    with pytest.raises(ValueError):
        migrate(dm, {0: {element: 99}})


def test_migrate_rejects_with_ghosts(dm):
    from repro.partition import ghost_layer

    ghost_layer(dm)
    element = next(
        e for e in dm.part(0).mesh.entities(2)
        if not dm.part(0).is_ghost(e)
    )
    with pytest.raises(ValueError):
        migrate(dm, {0: {element: 1}})


def test_concurrent_migrations_between_many_parts(dm):
    plan = {}
    for pid in range(4):
        part = dm.part(pid)
        elements = sorted(part.mesh.entities(2))[:2]
        plan[pid] = {e: (pid + 1) % 4 for e in elements}
    migrate(dm, plan)
    dm.verify()
    assert total_faces(dm) == 32


def test_migration_3d():
    mesh = box_tet(2)
    dmesh = distribute(mesh, strip(mesh, 2, axis=2))
    part0 = dmesh.part(0)
    moves = {e: 1 for e in sorted(part0.mesh.entities(3))[:6]}
    migrate(dmesh, {0: moves})
    dmesh.verify()
    assert dmesh.entity_counts()[:, 3].sum() == mesh.count(3)
    owned = dmesh.owned_counts()
    for dim in range(4):
        assert owned[:, dim].sum() == mesh.count(dim)


def test_move_elements_to_new_part(dm):
    part2 = dm.part(2)
    chosen = sorted(part2.mesh.entities(2))[:3]
    new_pid = move_elements_to_new_part(dm, 2, chosen)
    assert new_pid == 4
    assert dm.nparts == 5
    assert dm.part(new_pid).mesh.count(2) == 3
    dm.verify()


def test_surface_closure_is_shared_superset(dm):
    for part in dm:
        surface = set(surface_closure(part))
        for ent in part.remotes:
            assert ent in surface


def test_rebuild_links_is_idempotent(dm):
    snapshot = {
        part.pid: dict(part.remotes) for part in dm
    }
    rebuild_links(dm)
    for part in dm:
        assert part.remotes == snapshot[part.pid]
    dm.verify()


def test_empty_plan_is_noop(dm):
    before = dm.entity_counts().copy()
    assert migrate(dm, {}).elements_moved == 0
    assert np.array_equal(dm.entity_counts(), before)
