"""Tests for distributed mesh adaptation (coordinated boundary splits)."""

import numpy as np
import pytest

from repro.field import ShockPlaneSize, UniformSize
from repro.mesh import box_tet, rect_tri
from repro.mesh.quality import measure
from repro.mesh.verify import verify
from repro.partition import (
    adapt_distributed,
    coarsen_distributed,
    delete_ghosts,
    distribute,
    ghost_layer,
    migrate,
    refine_distributed,
)


def strips(mesh, nparts, axis=0):
    return [
        min(int(mesh.centroid(e)[axis] * nparts), nparts - 1)
        for e in mesh.entities(mesh.dim())
    ]


def total_measure(dm):
    dim = dm.element_dim()
    return sum(
        measure(p.mesh, e) for p in dm for e in p.mesh.entities(dim)
    )


def check_all(dm):
    dm.verify()
    for part in dm:
        if part.mesh.count(0):
            verify(part.mesh, check_classification=False, check_volumes=True)


@pytest.fixture
def dm2d():
    mesh = rect_tri(4)
    return distribute(mesh, strips(mesh, 4))


def test_uniform_refinement_2d(dm2d):
    before = dm2d.entity_counts()[:, 2].copy()
    stats = refine_distributed(dm2d, UniformSize(0.125))
    assert stats.splits > 0
    assert stats.boundary_splits > 0  # interfaces at x=0.25/0.5/0.75 refine
    after = dm2d.entity_counts()[:, 2]
    assert (after > before).all()
    check_all(dm2d)
    assert total_measure(dm2d) == pytest.approx(1.0)


def test_boundary_splits_keep_copies_conforming(dm2d):
    refine_distributed(dm2d, UniformSize(0.125))
    # Every shared edge's endpoints carry identical gids on both sides
    # (dm.verify checks this), and each side's copy has the same length.
    checked = 0
    for part in dm2d:
        for ent, copies in part.remotes.items():
            if ent.dim != 1:
                continue
            a, b = part.mesh.verts_of(ent)
            length = np.linalg.norm(part.mesh.coords(a) - part.mesh.coords(b))
            for other_pid, other_ent in copies.items():
                other = dm2d.part(other_pid)
                oa, ob = other.mesh.verts_of(other_ent)
                other_length = np.linalg.norm(
                    other.mesh.coords(oa) - other.mesh.coords(ob)
                )
                assert length == pytest.approx(other_length)
                checked += 1
    assert checked > 0


def test_shock_on_interface_2d(dm2d):
    shock = ShockPlaneSize([1, 0], 0.25, h_fine=0.06, h_coarse=0.3, width=0.08)
    stats = refine_distributed(dm2d, shock)
    assert stats.boundary_splits > 0
    check_all(dm2d)
    # Parts adjacent to the interface hold most of the new elements.
    counts = dm2d.entity_counts()[:, 2]
    assert counts[0] + counts[1] > counts[2] + counts[3]


def test_refinement_converges(dm2d):
    stats = refine_distributed(dm2d, UniformSize(0.2), max_passes=8)
    assert stats.converged
    from repro.field import edge_size_ratio

    for part in dm2d:
        for edge in part.mesh.entities(1):
            assert edge_size_ratio(part.mesh, UniformSize(0.2), edge) <= 1.5


def test_refinement_3d_interface():
    mesh = box_tet(3)
    dm = distribute(mesh, strips(mesh, 3, axis=2))
    shock = ShockPlaneSize(
        [0, 0, 1], 1 / 3, h_fine=0.16, h_coarse=0.5, width=0.1
    )
    stats = refine_distributed(dm, shock, max_passes=4)
    assert stats.boundary_splits > 0
    check_all(dm)
    assert total_measure(dm) == pytest.approx(1.0)


def test_coarsen_distributed_interior_only():
    mesh = rect_tri(8)
    dm = distribute(mesh, strips(mesh, 2))
    shared_before = {
        part.pid: sorted(part.remotes) for part in dm
    }
    stats = coarsen_distributed(dm, UniformSize(0.4))
    assert stats.collapses > 0
    check_all(dm)
    assert total_measure(dm) == pytest.approx(1.0)
    # The part boundary itself is untouched by interior coarsening.
    for part in dm:
        assert sorted(part.remotes) == shared_before[part.pid]


def test_adapt_distributed_full_cycle():
    mesh = rect_tri(6)
    dm = distribute(mesh, strips(mesh, 3))
    shock = ShockPlaneSize([1, 0], 1 / 3, h_fine=0.05, h_coarse=0.4, width=0.07)
    stats = adapt_distributed(dm, shock, max_passes=6)
    assert stats.splits > 0
    assert stats.collapses >= 0
    check_all(dm)
    assert total_measure(dm) == pytest.approx(1.0)


def test_refine_rejects_ghosts(dm2d):
    ghost_layer(dm2d)
    with pytest.raises(ValueError):
        refine_distributed(dm2d, UniformSize(0.1))
    delete_ghosts(dm2d)
    refine_distributed(dm2d, UniformSize(0.25))
    check_all(dm2d)


def test_migration_after_distributed_refinement(dm2d):
    """The adapted distributed mesh remains fully operational."""
    refine_distributed(dm2d, UniformSize(0.125))
    part0 = dm2d.part(0)
    elements = sorted(part0.mesh.entities(2))[:5]
    migrate(dm2d, {0: {e: 1 for e in elements}})
    check_all(dm2d)
    assert total_measure(dm2d) == pytest.approx(1.0)


def test_parma_after_distributed_refinement():
    """ParMA balances the imbalance distributed refinement created."""
    from repro.core import ParMA, imbalance_of

    mesh = rect_tri(6)
    dm = distribute(mesh, strips(mesh, 3))
    shock = ShockPlaneSize([1, 0], 0.15, h_fine=0.04, h_coarse=0.35, width=0.06)
    refine_distributed(dm, shock, max_passes=6)
    before = imbalance_of(dm.entity_counts(), 2)
    assert before > 1.2  # refinement concentrated in part 0
    ParMA(dm).rebalance_spikes("Face", tol=0.08)
    after = imbalance_of(dm.entity_counts(), 2)
    assert after < before
    check_all(dm)


def test_classification_preserved_by_boundary_split(dm2d):
    refine_distributed(dm2d, UniformSize(0.2))
    model = dm2d.model
    for part in dm2d:
        for v in part.mesh.entities(0):
            gent = part.mesh.classification(v)
            assert gent is not None
            if gent.dim < 2:
                # Boundary-classified vertices actually lie on the shape.
                shape = model.shape(gent)
                assert shape.contains(part.mesh.coords(v), tol=1e-9)
