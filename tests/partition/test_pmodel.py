"""Dedicated tests for the partition model."""

import pytest

from repro.mesh import box_tet, rect_tri
from repro.partition import (
    build_partition_model,
    distribute,
    migrate,
)


def strips(mesh, nparts, axis=0):
    return [
        min(int(mesh.centroid(e)[axis] * nparts), nparts - 1)
        for e in mesh.entities(mesh.dim())
    ]


def test_entities_deterministic_order():
    mesh = rect_tri(4)
    dm = distribute(mesh, strips(mesh, 4))
    pm1 = build_partition_model(dm)
    pm2 = build_partition_model(dm)
    assert [repr(p) for p in pm1.entities()] == [
        repr(p) for p in pm2.entities()
    ]
    tags = [p.tag for p in pm1.entities(1)]
    assert tags == sorted(tags)


def test_interior_entity_classification():
    mesh = rect_tri(4)
    dm = distribute(mesh, strips(mesh, 2))
    pm = build_partition_model(dm)
    part = dm.part(1)
    interior = next(
        v for v in part.mesh.entities(0) if not part.is_shared(v)
    )
    pent = pm.classification(1, interior)
    assert pent.dim == 2
    assert pent.residence == (1,)
    assert pent.owner == 1


def test_classification_stale_after_migration():
    """A partition model is a snapshot: migration invalidates it."""
    mesh = rect_tri(4)
    dm = distribute(mesh, strips(mesh, 4))
    pm = build_partition_model(dm)
    # Merge two parts' worth of elements into part 0 so a new residence
    # pattern appears somewhere.
    part1 = dm.part(1)
    elements = sorted(part1.mesh.entities(2))
    migrate(dm, {1: {e: 0 for e in elements[: len(elements) // 2]}})
    part2 = dm.part(2)
    moved_any = False
    for ent in sorted(part2.remotes):
        try:
            pm.classification(2, ent)
        except KeyError:
            moved_any = True
            break
    # Either some residence set is new (KeyError above) or the model still
    # covers everything — both are legal; rebuilding always works.
    fresh = build_partition_model(dm)
    for part in dm:
        for ent in part.remotes:
            assert fresh.classification(part.pid, ent) is not None


def test_3d_partition_model_dims():
    mesh = box_tet(2)
    dm = distribute(mesh, strips(mesh, 2, axis=2))
    pm = build_partition_model(dm)
    # Two parts: interior partition regions (dim 3) + one interface (dim 2).
    assert pm.count(3) == 2
    assert pm.count(2) == 1
    assert pm.count(1) == 0
    interface = pm.entities(2)[0]
    assert interface.residence == (0, 1)


def test_count_and_repr():
    mesh = rect_tri(2)
    dm = distribute(mesh, strips(mesh, 2))
    pm = build_partition_model(dm)
    assert pm.count() == pm.count(0) + pm.count(1) + pm.count(2) + pm.count(3)
    assert "PartitionModel" in repr(pm)


def test_owner_rule_applies_to_every_entity():
    mesh = rect_tri(4)
    dm = distribute(mesh, strips(mesh, 4))
    pm = build_partition_model(dm, owner_rule=max)
    for pent in pm.entities():
        assert pent.owner == max(pent.residence)
