"""Depth-k overlap semantics: exact regions, Overlap config, legacy shim."""

import warnings

import pytest

from repro.mesh import rect_tri
from repro.partition import Overlap, delete_ghosts, distribute, ghost_layer
from repro.partition.ghosting import _resolve_overlap


def strip(mesh, nparts, axis=0):
    return [
        min(int(mesh.centroid(e)[axis] * nparts), nparts - 1)
        for e in mesh.entities(mesh.dim())
    ]


def blocks(mesh, per_axis=2):
    """A per_axis × per_axis block partition — rings wrap part corners."""
    assignment = []
    for e in mesh.entities(mesh.dim()):
        c = mesh.centroid(e)
        ix = min(int(c[0] * per_axis), per_axis - 1)
        iy = min(int(c[1] * per_axis), per_axis - 1)
        assignment.append(ix * per_axis + iy)
    return assignment


def element_key(mesh, e):
    """Partition-independent element identity: its rounded centroid."""
    return tuple(round(float(c), 9) for c in mesh.centroid(e))


def expected_regions(mesh, assignment, nparts, depth, bridge_dim):
    """Serial reference: expand each part's elements ``depth`` rings.

    One ring adds every element sharing a bridge-dim entity with the
    current region.  Returns per part the *ghost* element key set (the
    expanded region minus the part's own elements).
    """
    dim = mesh.dim()
    elements = list(mesh.entities(dim))
    own = {pid: set() for pid in range(nparts)}
    for e, pid in zip(elements, assignment):
        own[pid].add(e)
    regions = {}
    for pid in range(nparts):
        region = set(own[pid])
        for _ring in range(depth):
            front = set()
            for e in region:
                front.update(mesh.adjacent(e, bridge_dim))
            grown = set(region)
            for b in front:
                grown.update(mesh.adjacent(b, dim))
            region = grown
        regions[pid] = {
            element_key(mesh, e) for e in region if e not in own[pid]
        }
    return regions


def actual_regions(dm):
    """Per part, the key set of its ghost elements."""
    dim = dm.element_dim()
    out = {}
    for part in dm:
        out[part.pid] = {
            element_key(part.mesh, g)
            for g in part.ghosts
            if g.dim == dim
        }
    return out


@pytest.mark.parametrize("depth", (1, 2, 3))
@pytest.mark.parametrize(
    "maker,nparts",
    (
        (lambda mesh: strip(mesh, 4), 4),
        (lambda mesh: strip(mesh, 8), 8),
        (lambda mesh: blocks(mesh, 2), 4),
    ),
    ids=("strip4", "strip8", "blocks2x2"),
)
def test_depth_k_region_is_exact(maker, nparts, depth):
    """The distributed overlap equals the serial ring expansion, exactly.

    The 2×2 block partition is the hard case: the second ring wraps part
    corners onto diagonal neighbors the first ring never talked to, which
    only the referral pass can reach.
    """
    mesh = rect_tri(8)
    assignment = maker(mesh)
    dm = distribute(mesh, assignment)
    stats = ghost_layer(dm, overlap=Overlap(depth=depth))
    dm.verify()
    assert stats.layers == depth
    expected = expected_regions(mesh, assignment, nparts, depth, bridge_dim=0)
    assert actual_regions(dm) == expected


def test_without_closure_is_subset_and_matches_at_depth_one():
    mesh = rect_tri(8)
    assignment = blocks(mesh, 2)
    dm = distribute(mesh, assignment)
    ghost_layer(dm, overlap=Overlap(depth=1, include_closure=False))
    shallow = actual_regions(dm)
    delete_ghosts(dm)
    ghost_layer(dm, overlap=Overlap(depth=1))
    assert actual_regions(dm) == shallow  # depth 1 needs no referrals
    delete_ghosts(dm)

    ghost_layer(dm, overlap=Overlap(depth=2, include_closure=False))
    truncated = actual_regions(dm)
    delete_ghosts(dm)
    ghost_layer(dm, overlap=Overlap(depth=2))
    full = actual_regions(dm)
    for pid in full:
        assert truncated[pid] <= full[pid]
    # On the corner-wrapping block partition the approximation really is
    # smaller somewhere — otherwise this test tests nothing.
    assert any(truncated[pid] < full[pid] for pid in full)


def test_depth_zero_is_a_noop():
    mesh = rect_tri(4)
    dm = distribute(mesh, strip(mesh, 2))
    stats = ghost_layer(dm, overlap=Overlap(depth=0))
    assert stats.ghosts_created == 0 and stats.supersteps == 0
    assert all(not part.ghosts for part in dm)


def test_overlap_validation_and_roundtrip():
    with pytest.raises(ValueError):
        Overlap(depth=-1)
    with pytest.raises(ValueError):
        Overlap(bridge_dim=3)
    ov = Overlap(depth=2, bridge_dim=1, include_closure=False)
    assert Overlap.coerce(ov) is ov
    assert Overlap.coerce(ov.to_dict()) == ov
    with pytest.raises(TypeError):
        Overlap.coerce(2)
    # Overlap above the element dimension is caught at the mesh.
    mesh = rect_tri(2)
    dm = distribute(mesh, strip(mesh, 2))
    with pytest.raises(ValueError):
        ghost_layer(dm, overlap=Overlap(bridge_dim=2))


def test_argument_spellings_are_exclusive():
    mesh = rect_tri(2)
    dm = distribute(mesh, strip(mesh, 2))
    with pytest.raises(ValueError):
        ghost_layer(dm, bridge_dim=0, overlap=Overlap())
    with pytest.raises(ValueError):
        ghost_layer(dm, layers=2, depth=2)
    with pytest.raises(ValueError):
        ghost_layer(dm, overlap=Overlap(), depth=1)


def test_legacy_kwargs_warn_once_and_still_work(monkeypatch):
    import repro.partition.ghosting as ghosting

    monkeypatch.setattr(ghosting, "_legacy_warned", False)
    mesh = rect_tri(4)
    dm = distribute(mesh, strip(mesh, 2))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        stats = ghost_layer(dm, bridge_dim=0, layers=2)
        delete_ghosts(dm)
        ghost_layer(dm, bridge_dim=0)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1  # once per process, not per call
    assert "Overlap" in str(deprecations[0].message)
    assert stats.layers == 2 and stats.ghosts_created > 0
    # The shim maps onto the identical Overlap.
    monkeypatch.setattr(ghosting, "_legacy_warned", True)
    assert _resolve_overlap(1, 2, None, None) == Overlap(depth=2, bridge_dim=1)
    assert _resolve_overlap(None, None, None, 3) == Overlap(depth=3)
    assert _resolve_overlap(None, None, None, None) == Overlap()
