"""Property-based tests: migration and distribution invariants under
randomized inputs (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mesh import box_tet, rect_tri
from repro.mesh.quality import measure
from repro.partition import distribute, migrate
from repro.partition.migration import surface_closure

NPARTS = 4

_BASE_MESH = rect_tri(4)
_NELEMS = _BASE_MESH.count(2)


def fresh_dmesh(assignment):
    # Meshes are immutable inputs here; distribution builds fresh parts.
    return distribute(_BASE_MESH, assignment, nparts=NPARTS)


assignments = st.lists(
    st.integers(0, NPARTS - 1), min_size=_NELEMS, max_size=_NELEMS
)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(assignment=assignments)
def test_any_assignment_distributes_validly(assignment):
    """Every element→part map yields a consistent distributed mesh."""
    dm = fresh_dmesh(assignment)
    dm.verify()
    counts = dm.entity_counts()
    assert counts[:, 2].sum() == _NELEMS
    expected = np.bincount(np.asarray(assignment), minlength=NPARTS)
    assert np.array_equal(counts[:, 2], expected)
    owned = dm.owned_counts()
    for dim in range(3):
        assert owned[:, dim].sum() == _BASE_MESH.count(dim)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    assignment=assignments,
    moves=st.lists(
        st.tuples(st.integers(0, NPARTS - 1), st.integers(0, 200),
                  st.integers(0, NPARTS - 1)),
        max_size=12,
    ),
)
def test_random_migrations_preserve_invariants(assignment, moves):
    """Arbitrary (valid) migration plans keep all invariants intact."""
    dm = fresh_dmesh(assignment)
    area_before = sum(
        measure(p.mesh, f) for p in dm for f in p.mesh.entities(2)
    )
    plan = {}
    for src, nth, dest in moves:
        part = dm.part(src)
        elements = sorted(part.mesh.entities(2))
        if not elements:
            continue
        element = elements[nth % len(elements)]
        already = plan.setdefault(src, {})
        already.setdefault(element, dest)
    migrate(dm, plan)
    dm.verify()
    assert dm.entity_counts()[:, 2].sum() == _NELEMS
    area_after = sum(
        measure(p.mesh, f) for p in dm for f in p.mesh.entities(2)
    )
    assert area_after == pytest.approx(area_before)
    owned = dm.owned_counts()
    for dim in range(3):
        assert owned[:, dim].sum() == _BASE_MESH.count(dim)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(assignment=assignments)
def test_shared_entities_subset_of_surface(assignment):
    """Every shared entity lies on its part's topological surface."""
    dm = fresh_dmesh(assignment)
    for part in dm:
        surface = set(surface_closure(part))
        for ent in part.remotes:
            assert ent in surface


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(assignment=assignments, seed=st.integers(0, 100))
def test_round_trip_migration_is_identity_on_counts(assignment, seed):
    """Moving elements out and straight back restores all counts."""
    dm = fresh_dmesh(assignment)
    before = dm.entity_counts().copy()
    rng = np.random.default_rng(seed)
    src = int(rng.integers(NPARTS))
    part = dm.part(src)
    elements = sorted(part.mesh.entities(2))
    if not elements:
        return
    element = elements[int(rng.integers(len(elements)))]
    gid = part.gid(element)
    dest = (src + 1) % NPARTS
    migrate(dm, {src: {element: dest}})
    landed = dm.part(dest).by_gid(2, gid)
    assert landed is not None
    migrate(dm, {dest: {landed: src}})
    dm.verify()
    assert np.array_equal(dm.entity_counts(), before)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 50))
def test_3d_random_migration(seed):
    mesh = box_tet(2)
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, 3, mesh.count(3))
    dm = distribute(mesh, assignment, nparts=3)
    dm.verify()
    # Move a random batch from the fullest part.
    counts = dm.entity_counts()[:, 3]
    src = int(np.argmax(counts))
    part = dm.part(src)
    elements = sorted(part.mesh.entities(3))[:5]
    migrate(dm, {src: {e: (src + 1) % 3 for e in elements}})
    dm.verify()
    volume = sum(
        measure(p.mesh, r) for p in dm for r in p.mesh.entities(3)
    )
    assert volume == pytest.approx(1.0)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    steps=st.lists(
        st.tuples(st.integers(0, NPARTS - 1), st.integers(0, 200),
                  st.integers(0, NPARTS - 1), st.integers(1, 6)),
        min_size=2,
        max_size=6,
    )
)
def test_sequential_migrations_keep_links_consistent(steps):
    """Chained migrations (the partial link-rebuild path) never desync.

    Regression guard for the affected-set computation: the neighbor
    snapshot must be taken before dying links are dropped, or a later
    partial rebuild misses parts and leaves stale links behind.
    """
    dm = fresh_dmesh([i % NPARTS for i in range(_NELEMS)])
    for src, nth, dest, batch in steps:
        part = dm.part(src)
        elements = sorted(part.mesh.entities(2))
        if not elements:
            continue
        start = nth % len(elements)
        moves = {e: dest for e in elements[start:start + batch]}
        migrate(dm, {src: moves})
        dm.verify()
    assert dm.entity_counts()[:, 2].sum() == _NELEMS


def test_emptying_and_refilling_part_through_chain():
    """Merge a part away, then split back into it, verifying each step."""
    from repro.partition import merge_parts, migrate as do_migrate

    dm = fresh_dmesh([i % NPARTS for i in range(_NELEMS)])
    merge_parts(dm, 1, 0)
    dm.verify()
    assert dm.part(1).mesh.count(2) == 0
    # Refill part 1 from part 0 in two waves.
    for _wave in range(2):
        part0 = dm.part(0)
        elements = sorted(part0.mesh.entities(2))[:4]
        do_migrate(dm, {0: {e: 1 for e in elements}})
        dm.verify()
    assert dm.part(1).mesh.count(2) == 8
