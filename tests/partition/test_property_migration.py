"""Property-based tests: migration and distribution invariants under
randomized inputs (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mesh import box_tet, rect_tri
from repro.mesh.quality import measure
from repro.partition import distribute, migrate
from repro.partition.migration import surface_closure

NPARTS = 4

_BASE_MESH = rect_tri(4)
_NELEMS = _BASE_MESH.count(2)


def fresh_dmesh(assignment):
    # Meshes are immutable inputs here; distribution builds fresh parts.
    return distribute(_BASE_MESH, assignment, nparts=NPARTS)


assignments = st.lists(
    st.integers(0, NPARTS - 1), min_size=_NELEMS, max_size=_NELEMS
)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(assignment=assignments)
def test_any_assignment_distributes_validly(assignment):
    """Every element→part map yields a consistent distributed mesh."""
    dm = fresh_dmesh(assignment)
    dm.verify()
    counts = dm.entity_counts()
    assert counts[:, 2].sum() == _NELEMS
    expected = np.bincount(np.asarray(assignment), minlength=NPARTS)
    assert np.array_equal(counts[:, 2], expected)
    owned = dm.owned_counts()
    for dim in range(3):
        assert owned[:, dim].sum() == _BASE_MESH.count(dim)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    assignment=assignments,
    moves=st.lists(
        st.tuples(st.integers(0, NPARTS - 1), st.integers(0, 200),
                  st.integers(0, NPARTS - 1)),
        max_size=12,
    ),
)
def test_random_migrations_preserve_invariants(assignment, moves):
    """Arbitrary (valid) migration plans keep all invariants intact."""
    dm = fresh_dmesh(assignment)
    area_before = sum(
        measure(p.mesh, f) for p in dm for f in p.mesh.entities(2)
    )
    plan = {}
    for src, nth, dest in moves:
        part = dm.part(src)
        elements = sorted(part.mesh.entities(2))
        if not elements:
            continue
        element = elements[nth % len(elements)]
        already = plan.setdefault(src, {})
        already.setdefault(element, dest)
    migrate(dm, plan)
    dm.verify()
    assert dm.entity_counts()[:, 2].sum() == _NELEMS
    area_after = sum(
        measure(p.mesh, f) for p in dm for f in p.mesh.entities(2)
    )
    assert area_after == pytest.approx(area_before)
    owned = dm.owned_counts()
    for dim in range(3):
        assert owned[:, dim].sum() == _BASE_MESH.count(dim)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(assignment=assignments)
def test_shared_entities_subset_of_surface(assignment):
    """Every shared entity lies on its part's topological surface."""
    dm = fresh_dmesh(assignment)
    for part in dm:
        surface = set(surface_closure(part))
        for ent in part.remotes:
            assert ent in surface


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(assignment=assignments, seed=st.integers(0, 100))
def test_round_trip_migration_is_identity_on_counts(assignment, seed):
    """Moving elements out and straight back restores all counts."""
    dm = fresh_dmesh(assignment)
    before = dm.entity_counts().copy()
    rng = np.random.default_rng(seed)
    src = int(rng.integers(NPARTS))
    part = dm.part(src)
    elements = sorted(part.mesh.entities(2))
    if not elements:
        return
    element = elements[int(rng.integers(len(elements)))]
    gid = part.gid(element)
    dest = (src + 1) % NPARTS
    migrate(dm, {src: {element: dest}})
    landed = dm.part(dest).by_gid(2, gid)
    assert landed is not None
    migrate(dm, {dest: {landed: src}})
    dm.verify()
    assert np.array_equal(dm.entity_counts(), before)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 50))
def test_3d_random_migration(seed):
    mesh = box_tet(2)
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, 3, mesh.count(3))
    dm = distribute(mesh, assignment, nparts=3)
    dm.verify()
    # Move a random batch from the fullest part.
    counts = dm.entity_counts()[:, 3]
    src = int(np.argmax(counts))
    part = dm.part(src)
    elements = sorted(part.mesh.entities(3))[:5]
    migrate(dm, {src: {e: (src + 1) % 3 for e in elements}})
    dm.verify()
    volume = sum(
        measure(p.mesh, r) for p in dm for r in p.mesh.entities(3)
    )
    assert volume == pytest.approx(1.0)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    steps=st.lists(
        st.tuples(st.integers(0, NPARTS - 1), st.integers(0, 200),
                  st.integers(0, NPARTS - 1), st.integers(1, 6)),
        min_size=2,
        max_size=6,
    )
)
def test_sequential_migrations_keep_links_consistent(steps):
    """Chained migrations (the partial link-rebuild path) never desync.

    Regression guard for the affected-set computation: the neighbor
    snapshot must be taken before dying links are dropped, or a later
    partial rebuild misses parts and leaves stale links behind.
    """
    dm = fresh_dmesh([i % NPARTS for i in range(_NELEMS)])
    for src, nth, dest, batch in steps:
        part = dm.part(src)
        elements = sorted(part.mesh.entities(2))
        if not elements:
            continue
        start = nth % len(elements)
        moves = {e: dest for e in elements[start:start + batch]}
        migrate(dm, {src: moves})
        dm.verify()
    assert dm.entity_counts()[:, 2].sum() == _NELEMS


def test_emptying_and_refilling_part_through_chain():
    """Merge a part away, then split back into it, verifying each step."""
    from repro.partition import merge_parts, migrate as do_migrate

    dm = fresh_dmesh([i % NPARTS for i in range(_NELEMS)])
    merge_parts(dm, 1, 0)
    dm.verify()
    assert dm.part(1).mesh.count(2) == 0
    # Refill part 1 from part 0 in two waves.
    for _wave in range(2):
        part0 = dm.part(0)
        elements = sorted(part0.mesh.entities(2))[:4]
        do_migrate(dm, {0: {e: 1 for e in elements}})
        dm.verify()
    assert dm.part(1).mesh.count(2) == 8


# -- randomized op-sequence differential vs serial replay -------------------
#
# Each seed draws one sequence of mesh-service operations — element destroy
# (with cascade of its unused closure), re-create of a destroyed element,
# migration, ghost layering, field synchronization — and replays it at 1, 2
# and 4 parts.  Operations are phrased in global ids, so the same sequence
# is meaningful at every part count; after the run the distributed states
# must agree with the 1-part replay on the owned gid sets (vertices and
# elements) and on a field checksum over owned vertices, and must pass
# ``verify`` after every step.  This is the behavioral lock on the SoA core:
# handle recycling, destroy listeners, lookup maintenance and batch sync all
# sit under these ops.

from repro.partition import DistributedField, delete_ghosts, ghost_layer
from repro.partition import synchronize as sync_field
from repro.partition.migration import _remove_element, rebuild_links

OPS_MESH_N = 3
OPS_PER_SEQ = 6
N_SEEDS = 34  # x3 part counts = 102 sequences


def _field_fn(xyz):
    return float(xyz[0] + 2.0 * xyz[1] + 0.5)


def _ops_dmesh(nparts):
    mesh = rect_tri(OPS_MESH_N)
    nelems = mesh.count(2)
    assignment = [i % nparts for i in range(nelems)]
    dm = distribute(mesh, assignment, nparts=nparts)
    dfield = DistributedField(dm, "u", entity_dim=0)
    dfield.set_from_coords(_field_fn)
    return dm, dfield


def _fill_missing_values(dm, dfield):
    # Migration and re-creation make vertex copies with no field value yet;
    # values are coordinate-determined, so refilling keeps replicas aligned.
    for part in dm:
        field = dfield.on(part.pid)
        mesh = part.mesh
        for v in mesh.entities(0):
            if not field.has(v):
                field.set(v, _field_fn(mesh.coords(v)))


def _global_element_gids(dm):
    dim = dm.element_dim()
    gids = set()
    for part in dm:
        for e in part.mesh.entities(dim):
            if not part.is_ghost(e):
                gids.add(part.gid(e))
    return sorted(gids)


def _holder_of(dm, gid):
    dim = dm.element_dim()
    for part in dm:
        ent = part.by_gid(dim, gid)
        if ent is not None and not part.is_ghost(ent):
            return part, ent
    raise AssertionError(f"element gid {gid} held nowhere")


def _apply_ops(nparts, seed):
    """Replay seed's op sequence at ``nparts``; return the final signature."""
    rng = np.random.default_rng(seed)
    dm, dfield = _ops_dmesh(nparts)
    graveyard = []  # records of destroyed elements, most recent last

    for _step in range(OPS_PER_SEQ):
        # All draws happen unconditionally and identically at every part
        # count, so the sequences stay comparable.
        op = ["destroy", "create", "migrate", "ghost", "sync"][
            int(rng.integers(5))
        ]
        pick = int(rng.integers(1_000_000))
        dest_draw = int(rng.integers(4))

        if op == "destroy":
            delete_ghosts(dm)
            gids = _global_element_gids(dm)
            if len(gids) <= 2:  # keep the mesh alive
                continue
            part, element = _holder_of(dm, gids[pick % len(gids)])
            verts = part.mesh.verts_of(element)
            edge_gids = {}
            for edge in part.mesh.down(element):
                key = tuple(sorted(
                    part.gid(v) for v in part.mesh.verts_of(edge)
                ))
                edge_gids[key] = part.gid(edge)
            graveyard.append({
                "etype": part.mesh.etype(element),
                "gid": part.gid(element),
                "vgids": [part.gid(v) for v in verts],
                "coords": [part.mesh.coords(v).tolist() for v in verts],
                "edge_gids": edge_gids,
            })
            _remove_element(part, element)
            rebuild_links(dm)
        elif op == "create":
            if not graveyard:
                continue
            delete_ghosts(dm)
            record = graveyard.pop()
            target = None
            for part in dm:
                if any(
                    part.by_gid(0, g) is not None for g in record["vgids"]
                ):
                    target = part
                    break
            if target is None:
                target = dm.part(sum(record["vgids"]) % dm.nparts)
            field = dfield.on(target.pid)
            local = []
            for g, xyz in zip(record["vgids"], record["coords"]):
                v = target.by_gid(0, g)
                if v is None:
                    v = target.mesh.create_vertex(xyz)
                    target.set_gid(v, g)
                    field.set(v, _field_fn(np.asarray(xyz)))
                local.append(v)
            element = target.mesh.create(record["etype"], local)
            target.set_gid(element, record["gid"])
            # Implicitly created boundary edges need their recorded gids
            # back, or the gid-keyed ghost registry won't track them.
            for edge in target.mesh.down(element):
                if not target.has_gid(edge):
                    key = tuple(sorted(
                        target.gid(v) for v in target.mesh.verts_of(edge)
                    ))
                    target.set_gid(edge, record["edge_gids"][key])
            rebuild_links(dm)
        elif op == "migrate":
            delete_ghosts(dm)
            gids = _global_element_gids(dm)
            part, element = _holder_of(dm, gids[pick % len(gids)])
            dest = dest_draw % dm.nparts
            if dest != part.pid:
                migrate(dm, {part.pid: {element: dest}})
                _fill_missing_values(dm, dfield)
        elif op == "ghost":
            if not any(part.ghosts for part in dm):
                ghost_layer(dm)
                _fill_missing_values(dm, dfield)
        elif op == "sync":
            sync_field(dfield)
            assert dfield.max_copy_disagreement() == 0.0
        dm.verify()

    owned = {}
    for dim in (0, dm.element_dim()):
        owned[dim] = set()
        for part in dm:
            for ent in part.mesh.entities(dim):
                if part.owns(ent):
                    gid = part.gid(ent)
                    assert gid not in owned[dim], (
                        f"gid {gid} owned twice (dim {dim})"
                    )
                    owned[dim].add(gid)
    checksum = 0.0
    for part in dm:
        field = dfield.on(part.pid)
        for v in part.mesh.entities(0):
            if part.owns(v) and field.has(v):
                checksum += float(field.get_scalar(v)) * (
                    1 + part.gid(v) % 5
                )
    return owned, checksum


_SERIAL_REPLAYS = {}


def _serial_replay(seed):
    if seed not in _SERIAL_REPLAYS:
        _SERIAL_REPLAYS[seed] = _apply_ops(1, seed)
    return _SERIAL_REPLAYS[seed]


@pytest.mark.parametrize("nparts", [1, 2, 4])
@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_op_sequence_matches_serial_replay(nparts, seed):
    owned, checksum = _apply_ops(nparts, seed)
    serial_owned, serial_checksum = _serial_replay(seed)
    assert owned == serial_owned
    assert checksum == pytest.approx(serial_checksum, rel=1e-12)
