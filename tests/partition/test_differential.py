"""Differential tests: serial vs 2/4/8 parts, binary codec vs pickle.

The same workload — distribute, a ring-migration round, a ghost layer,
ghost deletion, then field synchronize + accumulate — runs serially
(one part) and at 2/4/8 parts with both wire codecs.  Every configuration
must report *identical* global invariants:

* per-dimension owned entity counts,
* the owned-gid set for every dimension,
* the field checksum after :func:`synchronize` (coordinate-derived values,
  summed with :func:`math.fsum` so the result is order-independent),
* the field checksum after :func:`accumulate` (integer-valued element
  contributions, hence exact in floating point),

and ``dmesh.verify()`` must pass on every part after each migrate/ghost
round.  Any codec bug that corrupts an entity, drops a tag, or perturbs a
field value shows up as a cross-configuration mismatch here.
"""

import math

import pytest

from repro.mesh import rect_tri
from repro.partition import (
    DistributedField,
    Overlap,
    accumulate,
    delete_ghosts,
    distribute,
    ghost_layer,
    migrate,
    synchronize,
)

PART_COUNTS = (2, 4, 8)
CODECS = ("binary", "pickle")


def strip(mesh, nparts, axis=0):
    return [
        min(int(mesh.centroid(e)[axis] * nparts), nparts - 1)
        for e in mesh.entities(mesh.dim())
    ]


def _coord_value(xyz):
    return 1.0 + xyz[0] + 2.0 * xyz[1]


def owned_gids(dm):
    """Owned-gid set per dimension — the partition-independent identity."""
    sets = {dim: set() for dim in range(dm.element_dim() + 1)}
    for part in dm:
        for dim in sets:
            for ent in part.mesh.entities(dim):
                if part.owns(ent) and not part.is_ghost(ent):
                    sets[dim].add(part.gid(ent))
    return {dim: frozenset(gids) for dim, gids in sets.items()}


def owned_field_checksum(dm, dfield):
    """fsum of (owned vertices only) field values, order-independent."""
    values = []
    for part in dm:
        field = dfield.on(part.pid)
        for v in part.mesh.entities(0):
            if part.owns(v) and not part.is_ghost(v) and field.has(v):
                values.append(field.get_scalar(v))
    return math.fsum(values)


def run_workload(nparts, codec):
    """Distribute → migrate ring → ghost → unghost → sync/accumulate."""
    mesh = rect_tri(8)
    if nparts == 1:
        assignment = [0] * mesh.count(2)
    else:
        assignment = strip(mesh, nparts)
    dm = distribute(mesh, assignment, codec=codec)

    # Ring migration: each part ships its two lowest elements onward.
    plan = {}
    for part in dm:
        chosen = sorted(part.mesh.entities(2))[:2]
        plan[part.pid] = {e: (part.pid + 1) % nparts for e in chosen}
    migrate(dm, plan)
    dm.verify()

    ghost_layer(dm)
    dm.verify()
    delete_ghosts(dm)
    dm.verify()

    sync_field = DistributedField(dm, "u")
    sync_field.set_from_coords(_coord_value)
    synchronize(sync_field)
    assert sync_field.max_copy_disagreement() == 0

    # Finite-element-style assembly: each element (which lives on exactly
    # one part) adds 1 to each of its vertices; integer-valued, so exact.
    accum_field = DistributedField(dm, "a")
    for part in dm:
        field = accum_field.on(part.pid)
        for v in part.mesh.entities(0):
            field.set(v, 0.0)
        for e in part.mesh.entities(2):
            for v in part.mesh.verts_of(e):
                field.set(v, field.get(v) + 1.0)
    accumulate(accum_field)
    assert accum_field.max_copy_disagreement() == 0

    counts = dm.owned_counts().sum(axis=0)
    return {
        "owned_counts": tuple(int(c) for c in counts),
        "owned_gids": owned_gids(dm),
        "sync_checksum": owned_field_checksum(dm, sync_field),
        "accum_checksum": owned_field_checksum(dm, accum_field),
    }


@pytest.fixture(scope="module")
def serial_baseline():
    return run_workload(1, "binary")


@pytest.mark.parametrize("codec", CODECS)
@pytest.mark.parametrize("nparts", PART_COUNTS)
def test_parallel_matches_serial(nparts, codec, serial_baseline):
    result = run_workload(nparts, codec)
    assert result["owned_counts"] == serial_baseline["owned_counts"]
    assert result["owned_gids"] == serial_baseline["owned_gids"]
    assert result["sync_checksum"] == serial_baseline["sync_checksum"]
    assert result["accum_checksum"] == serial_baseline["accum_checksum"]


@pytest.mark.parametrize("nparts", PART_COUNTS)
def test_binary_and_pickle_agree_exactly(nparts):
    """The codec must be invisible: bitwise-equal invariants either way."""
    binary = run_workload(nparts, "binary")
    legacy = run_workload(nparts, "pickle")
    assert binary == legacy


def test_serial_counts_match_source_mesh(serial_baseline):
    mesh = rect_tri(8)
    assert serial_baseline["owned_counts"] == tuple(
        mesh.count(d) for d in range(3)
    ) + (0,)


def run_overlap_workload(nparts, codec, depth):
    """Distribute → depth-k ghost overlap → sync/accumulate *with* ghosts.

    Unlike :func:`run_workload`, the overlap stays in place while the field
    services run, so a wrong or truncated depth-k region that corrupts
    bookkeeping (remote links, ownership, gids) breaks the invariants.
    """
    mesh = rect_tri(8)
    if nparts == 1:
        assignment = [0] * mesh.count(2)
    else:
        assignment = strip(mesh, nparts)
    dm = distribute(mesh, assignment, codec=codec)

    gstats = ghost_layer(dm, overlap=Overlap(depth=depth))
    dm.verify()
    assert gstats.layers == depth and gstats.sf_ops == depth
    if nparts > 1:
        assert gstats.ghosts_created > 0

    sync_field = DistributedField(dm, "u")
    sync_field.set_from_coords(_coord_value)
    synchronize(sync_field)
    assert sync_field.max_copy_disagreement() == 0

    # Assembly over *real* elements only: ghosts are read-only copies of
    # elements assembled on their home part, counting them would double up.
    accum_field = DistributedField(dm, "a")
    for part in dm:
        field = accum_field.on(part.pid)
        for v in part.mesh.entities(0):
            field.set(v, 0.0)
        for e in part.mesh.entities(2):
            if part.is_ghost(e):
                continue
            for v in part.mesh.verts_of(e):
                field.set(v, field.get(v) + 1.0)
    accumulate(accum_field)
    assert accum_field.max_copy_disagreement() == 0

    counts = dm.owned_counts().sum(axis=0)
    return {
        "owned_counts": tuple(int(c) for c in counts),
        "owned_gids": owned_gids(dm),
        "sync_checksum": owned_field_checksum(dm, sync_field),
        "accum_checksum": owned_field_checksum(dm, accum_field),
    }


@pytest.fixture(scope="module")
def serial_overlap_baseline():
    return run_overlap_workload(1, "binary", depth=1)


@pytest.mark.parametrize("depth", (1, 2, 3))
@pytest.mark.parametrize("codec", CODECS)
@pytest.mark.parametrize("nparts", PART_COUNTS)
def test_overlap_matches_serial(nparts, codec, depth, serial_overlap_baseline):
    result = run_overlap_workload(nparts, codec, depth)
    assert result["owned_counts"] == serial_overlap_baseline["owned_counts"]
    assert result["owned_gids"] == serial_overlap_baseline["owned_gids"]
    assert result["sync_checksum"] == serial_overlap_baseline["sync_checksum"]
    assert (
        result["accum_checksum"] == serial_overlap_baseline["accum_checksum"]
    )


@pytest.mark.parametrize("depth", (2, 3))
def test_overlap_codecs_agree(depth):
    """Depth-k ghosting must be codec-invisible too."""
    assert run_overlap_workload(4, "binary", depth) == run_overlap_workload(
        4, "pickle", depth
    )


def test_binary_codec_actually_engaged():
    """Guard against silently running pickle everywhere: the binary run must
    report coalesced batches and encoded bytes through the stats plumbing."""
    mesh = rect_tri(8)
    dm = distribute(mesh, strip(mesh, 4), codec="binary")
    part0 = dm.part(0)
    plan = {0: {e: 1 for e in sorted(part0.mesh.entities(2))[:2]}}
    stats = migrate(dm, plan)
    assert stats.encoded_bytes > 0
    assert stats.messages_coalesced >= 2
    gstats = ghost_layer(dm)
    assert gstats.encoded_bytes > 0
    assert gstats.messages_coalesced > 0
    delete_ghosts(dm)
    df = DistributedField(dm, "u")
    df.set_from_coords(_coord_value)
    sstats = synchronize(df)
    assert sstats.encoded_bytes > 0
    assert sstats.messages_coalesced == sstats.values_sent
