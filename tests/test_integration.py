"""End-to-end integration tests: the full simulation-workflow loop.

Each test strings several subsystems together the way an application would,
mirroring the workflow the paper's introduction describes: mesh generation →
partitioning → distribution → fields/ghosts for analysis → adaptation →
dynamic load balancing → (checkpoint) → repeat.
"""

import numpy as np
import pytest

from repro.adapt import adapt, seed_ancestry
from repro.core import ParMA, imbalance_of, imbalances
from repro.field import ShockPlaneSize, UniformSize
from repro.mesh import box_tet, rect_tri
from repro.mesh.quality import measure
from repro.mesh.verify import verify
from repro.partition import (
    DistributedField,
    Overlap,
    accumulate,
    adapt_distributed,
    build_partition_model,
    delete_ghosts,
    distribute,
    ghost_layer,
    load_dmesh,
    refine_distributed,
    save_dmesh,
    synchronize,
)
from repro.partitioners import partition


def total_measure(dm):
    dim = dm.element_dim()
    return sum(measure(p.mesh, e) for p in dm for e in p.mesh.entities(dim))


def check_all(dm):
    dm.verify()
    for part in dm:
        if part.mesh.count(0):
            verify(part.mesh, check_classification=False, check_volumes=True)


def test_analysis_step_workflow_2d():
    """Generate → partition → distribute → ghost → FE-style assembly."""
    mesh = rect_tri(8)
    assignment = partition(mesh, 4, method="hypergraph", seed=2)
    dm = distribute(mesh, assignment)
    pmodel = build_partition_model(dm)
    assert pmodel.count() > 0

    # One ghost layer for element loops, a dof field, an assembly pass.
    ghost_layer(dm, overlap=Overlap(depth=1, bridge_dim=0))
    dm.verify()
    dof = DistributedField(dm, "u")
    for part in dm:
        field = dof.on(part.pid)
        for v in part.mesh.entities(0):
            field.set(v, 0.0)
    # Each part adds 1 per adjacent local (non-ghost) element to each
    # vertex — a mass-lumping-style assembly.
    for part in dm:
        field = dof.on(part.pid)
        for element in part.mesh.entities(2):
            if part.is_ghost(element):
                continue
            for v in part.mesh.verts_of(element):
                field.set(v, field.get_scalar(v) + 1.0)
    delete_ghosts(dm)
    accumulate(dof)

    # Every vertex's assembled value equals its global element valence.
    for part in dm:
        field = dof.on(part.pid)
        for v in part.mesh.entities(0):
            gid = part.gid(v)
            from repro.mesh import Ent

            expected = len(mesh.adjacent(Ent(0, gid), 2))
            assert field.get_scalar(v) == pytest.approx(expected)
    assert dof.max_copy_disagreement() == 0


def test_adaptive_loop_with_balancing_2d():
    """Distribute → distributed adapt → ParMA → verify, twice."""
    mesh = rect_tri(6)
    dm = distribute(mesh, partition(mesh, 3, method="rcb"))
    for offset in (0.3, 0.7):
        shock = ShockPlaneSize(
            [1, 0], offset, h_fine=0.05, h_coarse=0.35, width=0.07
        )
        adapt_distributed(dm, shock, max_passes=5)
        check_all(dm)
        balancer = ParMA(dm)
        balancer.rebalance_spikes("Face", tol=0.08)
        check_all(dm)
        assert total_measure(dm) == pytest.approx(1.0)
    final = imbalance_of(dm.entity_counts(), 2)
    assert final <= 1.30


def test_checkpoint_restart_mid_workflow(tmp_path):
    """Adapt, checkpoint, restart, keep adapting: results stay valid."""
    mesh = rect_tri(4)
    dm = distribute(mesh, partition(mesh, 2, method="rcb"))
    refine_distributed(dm, UniformSize(0.15))
    save_dmesh(dm, tmp_path / "ckpt")

    restarted = load_dmesh(tmp_path / "ckpt", model=mesh.model)
    refine_distributed(restarted, UniformSize(0.08))
    check_all(restarted)
    assert total_measure(restarted) == pytest.approx(1.0)
    # The restarted run refined beyond the checkpoint.
    assert (
        restarted.entity_counts()[:, 2].sum()
        > dm.entity_counts()[:, 2].sum()
    )


def test_multicriteria_after_serial_adaptation_3d():
    """The Table-II flow on a 3D mesh that went through serial adaptation."""
    mesh = box_tet(3)
    seed_ancestry(mesh, "part", lambda e: 0)
    shock = ShockPlaneSize(
        [1, 0, 0], 0.5, h_fine=0.18, h_coarse=0.4, width=0.1
    )
    adapt(mesh, shock, max_passes=3, do_coarsen=False)
    verify(mesh, check_volumes=True)

    dm = distribute(mesh, partition(mesh, 6, method="hypergraph", seed=4))
    before = imbalances(dm.entity_counts())
    stats = ParMA(dm).improve("Vtx = Edge > Rgn", tol=0.08)
    after = imbalances(dm.entity_counts())
    check_all(dm)
    assert after[0] <= max(before[0], 1.08) + 1e-9
    assert after[1] <= max(before[1], 1.08) + 1e-9


def test_two_level_distribution_counts():
    """Parts mapped 2-per-node: process-level loads aggregate correctly."""
    from repro.parallel import MachineTopology
    from repro.partition import node_entity_counts

    mesh = rect_tri(6)
    topo = MachineTopology(nodes=2, cores_per_node=2)
    dm = distribute(mesh, partition(mesh, 4, method="rcb"), topology=topo)
    per_node = node_entity_counts(dm)
    assert per_node.shape == (2, 4)
    assert per_node[:, 2].sum() == mesh.count(2)
    # Migration between on-node parts produces no off-node traffic.
    from repro.partition import migrate

    start_off = dm.counters.get("net.messages.off_node")
    element = next(dm.part(0).mesh.entities(2))
    migrate(dm, {0: {element: 1}})
    dm.verify()
    # The element bundle itself travelled on-node; only the link-rebuild
    # rendezvous (hash-homed) may cross nodes.
    assert dm.counters.get("net.messages.off_node") >= start_off
