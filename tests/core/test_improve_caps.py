"""Unit tests for the improvement driver's no-harm selection trimming."""

import numpy as np
import pytest

from repro.core.improve import _trim_by_higher_priority
from repro.mesh import rect_tri
from repro.partition import distribute


def make_case():
    """Two parts; part 0's boundary elements are trim candidates."""
    mesh = rect_tri(4)
    assignment = [
        0 if mesh.centroid(e)[0] < 0.5 else 1 for e in mesh.entities(2)
    ]
    dm = distribute(mesh, assignment)
    part = dm.part(0)
    boundary_elements = sorted(
        {
            element
            for facet in part.shared_entities(1)
            for element in part.mesh.up(facet)
        }
    )
    return dm, part, boundary_elements


def test_no_higher_dims_passes_through():
    dm, part, selected = make_case()
    counts = dm.entity_counts()
    means = counts.astype(float).mean(axis=0)
    kept = _trim_by_higher_priority(
        part, 1, selected, counts, means, 0.05, [], {}
    )
    assert kept == selected


def test_empty_selection_passes_through():
    dm, part, _ = make_case()
    counts = dm.entity_counts()
    means = counts.astype(float).mean(axis=0)
    assert _trim_by_higher_priority(
        part, 1, [], counts, means, 0.05, [0], {}
    ) == []


def test_zero_headroom_drops_everything():
    dm, part, selected = make_case()
    counts = dm.entity_counts().astype(float).copy()
    means = counts.mean(axis=0)
    counts[1, 0] = means[0] * 2  # candidate already far over in vertices
    kept = _trim_by_higher_priority(
        part, 1, selected, counts, means, 0.05, [0], {}
    )
    assert kept == []


def test_large_headroom_keeps_everything():
    dm, part, selected = make_case()
    counts = dm.entity_counts().astype(float).copy()
    means = counts.mean(axis=0).copy()
    means[0] = 10_000  # effectively unlimited vertex headroom
    kept = _trim_by_higher_priority(
        part, 1, selected, counts, means, 0.05, [0], {}
    )
    assert kept == selected


def test_charges_only_new_copies():
    """Entities already shared with the candidate cost nothing."""
    dm, part, selected = make_case()
    counts = dm.entity_counts().astype(float).copy()
    means = counts.mean(axis=0).copy()
    # Allow exactly the new vertices of the first element: its vertices not
    # already shared with part 1.
    first = selected[0]
    new_verts = [
        v
        for v in part.mesh.verts_of(first)
        if 1 not in part.remotes.get(v, {})
    ]
    means[0] = (counts[1, 0] + len(new_verts)) / 1.05
    kept = _trim_by_higher_priority(
        part, 1, selected, counts, means, 0.05, [0], {}
    )
    assert kept[:1] == [first]
    # The second element would need additional new vertices: dropped
    # unless it shares all of them with the first / the boundary.
    assert len(kept) <= len(selected)


def test_planned_accumulates_across_senders():
    dm, part, selected = make_case()
    counts = dm.entity_counts().astype(float).copy()
    means = counts.mean(axis=0).copy()
    means[0] = (counts[1, 0] + 4) / 1.05  # room for ~4 new vertices
    planned = {}
    first = _trim_by_higher_priority(
        part, 1, selected, counts, means, 0.05, [0], planned
    )
    assert planned[1][0] > 0
    # A second sender with the same budget sees it consumed.
    second = _trim_by_higher_priority(
        part, 1, selected, counts, means, 0.05, [0], planned
    )
    assert len(second) <= len(first)
