"""Tests for weighted diffusive balancing."""

import numpy as np
import pytest

from repro.core import part_weights, weighted_diffusion
from repro.field import ShockPlaneSize
from repro.mesh import rect_tri
from repro.partition import distribute
from repro.partitioners import partition


def tagged_dmesh(nparts=4, n=8, weight_fn=None):
    mesh = rect_tri(n)
    dm = distribute(mesh, partition(mesh, nparts, method="rcb"))
    for part in dm:
        tag = part.mesh.tag("w")
        for element in part.mesh.entities(2):
            value = weight_fn(part, element) if weight_fn else 1.0
            tag.set(element, value)
    return dm


def test_part_weights_default_one():
    mesh = rect_tri(4)
    dm = distribute(mesh, partition(mesh, 2, method="rcb"))
    loads = part_weights(dm, "missing-tag")
    assert loads.sum() == mesh.count(2)


def test_part_weights_sums_tag():
    dm = tagged_dmesh(weight_fn=lambda part, e: 2.0)
    loads = part_weights(dm, "w")
    assert loads.sum() == pytest.approx(2.0 * 128)


def test_uniform_weights_already_balanced():
    dm = tagged_dmesh()
    stats = weighted_diffusion(dm, "w", tol=0.10)
    assert stats.converged
    assert stats.elements_migrated == 0


def test_skewed_weights_balance():
    # Left-side elements are 8x heavier (a shock on the left boundary).
    dm = tagged_dmesh(
        nparts=4,
        weight_fn=lambda part, e: 8.0
        if part.mesh.centroid(e)[0] < 0.25
        else 1.0,
    )
    before = part_weights(dm, "w")
    assert before.max() / before.mean() > 1.5
    stats = weighted_diffusion(dm, "w", tol=0.15, max_iterations=30)
    after = part_weights(dm, "w")
    assert after.max() / after.mean() < before.max() / before.mean()
    assert after.max() / after.mean() <= 1.35
    dm.verify()
    assert "weighted diffusion" in stats.summary()


def test_weights_travel_with_elements():
    dm = tagged_dmesh(
        nparts=2,
        weight_fn=lambda part, e: 5.0 if part.pid == 0 else 1.0,
    )
    total_before = part_weights(dm, "w").sum()
    weighted_diffusion(dm, "w", tol=0.10, max_iterations=20)
    total_after = part_weights(dm, "w").sum()
    assert total_after == pytest.approx(total_before)
    dm.verify()


def test_predictive_weights_diffusion():
    """The predictive-balancing use case, executed diffusively."""
    from repro.core.predictive import predicted_element_weight

    mesh = rect_tri(10)
    dm = distribute(mesh, partition(mesh, 5, method="rcb"))
    shock = ShockPlaneSize([1, 0], 0.1, h_fine=0.02, h_coarse=0.2, width=0.06)
    for part in dm:
        tag = part.mesh.tag("pred")
        for e in part.mesh.entities(2):
            tag.set(e, predicted_element_weight(part.mesh, e, shock))
    before = part_weights(dm, "pred")
    stats = weighted_diffusion(dm, "pred", tol=0.10, max_iterations=30)
    after = part_weights(dm, "pred")
    excess_before = before.max() / before.mean() - 1.0
    excess_after = after.max() / after.mean() - 1.0
    assert excess_after < excess_before / 2
    dm.verify()
