"""Tests for the knapsack solver and maximal-independent-set selection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import independent_merges, knapsack, maximal_independent_set


# -- knapsack ------------------------------------------------------------------


def test_knapsack_trivial():
    assert knapsack([], [], 10) == (0.0, [])
    assert knapsack([5], [3.0], 0) == (0.0, [])


def test_knapsack_takes_everything_that_fits():
    value, chosen = knapsack([2, 3, 4], [2.0, 3.0, 4.0], 9)
    assert value == 9.0
    assert sorted(chosen) == [0, 1, 2]


def test_knapsack_classic_tradeoff():
    # Item 0 is heavy but valuable; optimal skips it for 1+2.
    value, chosen = knapsack([10, 6, 5], [11.0, 6.0, 6.0], 11)
    assert value == 12.0
    assert sorted(chosen) == [1, 2]


def test_knapsack_respects_capacity_exactly():
    value, chosen = knapsack([5, 5, 5], [1.0, 1.0, 1.0], 10)
    assert value == 2.0
    assert len(chosen) == 2


def test_knapsack_validation():
    with pytest.raises(ValueError):
        knapsack([1], [1.0, 2.0], 5)
    with pytest.raises(ValueError):
        knapsack([1], [1.0], -1)
    with pytest.raises(ValueError):
        knapsack([-1], [1.0], 5)


@settings(max_examples=30, deadline=None)
@given(
    weights=st.lists(st.integers(1, 20), min_size=1, max_size=8),
    capacity=st.integers(0, 60),
)
def test_knapsack_matches_bruteforce(weights, capacity):
    values = [float(w) for w in weights]
    best, chosen = knapsack(weights, values, capacity)
    # Brute force over all subsets.
    n = len(weights)
    brute = 0.0
    for mask in range(1 << n):
        w = sum(weights[i] for i in range(n) if mask >> i & 1)
        v = sum(values[i] for i in range(n) if mask >> i & 1)
        if w <= capacity:
            brute = max(brute, v)
    assert best == pytest.approx(brute)
    assert sum(weights[i] for i in chosen) <= capacity
    assert sum(values[i] for i in chosen) == pytest.approx(best)


def test_knapsack_scaling_path_stays_feasible():
    rng = np.random.default_rng(0)
    weights = rng.integers(1, 10_000, size=50).tolist()
    values = [float(w) for w in weights]
    capacity = 100_000
    best, chosen = knapsack(weights, values, capacity, max_table=10_000)
    assert sum(weights[i] for i in chosen) <= capacity
    assert best > 0


# -- MIS ---------------------------------------------------------------------------


def test_mis_empty():
    assert maximal_independent_set([], {}) == []


def test_mis_no_conflicts_takes_all():
    nodes = [1, 2, 3]
    assert sorted(maximal_independent_set(nodes, {n: set() for n in nodes})) == nodes


def test_mis_triangle_conflict():
    conflicts = {1: {2, 3}, 2: {1, 3}, 3: {1, 2}}
    result = maximal_independent_set([1, 2, 3], conflicts)
    assert len(result) == 1


def test_mis_priority_wins():
    conflicts = {1: {2}, 2: {1}, 3: set()}
    result = maximal_independent_set([1, 2, 3], conflicts, {1: 1.0, 2: 5.0, 3: 0.0})
    assert 2 in result and 1 not in result and 3 in result


def test_mis_is_maximal():
    # Path conflict graph 1-2-3-4-5: MIS must include non-adjacent nodes.
    conflicts = {1: {2}, 2: {1, 3}, 3: {2, 4}, 4: {3, 5}, 5: {4}}
    result = set(maximal_independent_set([1, 2, 3, 4, 5], conflicts))
    for node in [1, 2, 3, 4, 5]:
        assert node in result or conflicts[node] & result


# -- merge proposal selection --------------------------------------------------------


def test_independent_merges_no_conflict():
    proposals = {0: ([1], 10.0), 2: ([3], 8.0)}
    assert independent_merges(proposals) == {0: [1], 2: [3]}


def test_independent_merges_shared_donor():
    proposals = {0: ([1], 10.0), 2: ([1], 20.0)}
    assert independent_merges(proposals) == {2: [1]}


def test_independent_merges_receiver_is_donor_elsewhere():
    proposals = {0: ([1], 5.0), 1: ([2], 9.0)}
    # 1 cannot both donate to 0 and receive 2; higher weight wins.
    assert independent_merges(proposals) == {1: [2]}


def test_independent_merges_every_part_once():
    proposals = {
        0: ([1, 2], 12.0),
        3: ([2, 4], 11.0),
        5: ([6], 3.0),
    }
    chosen = independent_merges(proposals)
    used = []
    for receiver, donors in chosen.items():
        used.append(receiver)
        used.extend(donors)
    assert len(used) == len(set(used))
    assert 0 in chosen  # heaviest proposal survives
    assert 5 in chosen  # disjoint proposal survives
