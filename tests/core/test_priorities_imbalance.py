"""Tests for priority-list parsing and imbalance metrics."""

import numpy as np
import pytest

from repro.core import (
    balance_report,
    heavy_parts,
    imbalance_of,
    imbalance_percent,
    imbalances,
    light_parts,
    parse_priorities,
)
from repro.core.priorities import PriorityList


# -- priorities -----------------------------------------------------------------


def test_parse_single_type():
    pl = parse_priorities("Rgn")
    assert pl.levels == ((3,),)
    assert str(pl) == "Rgn"


def test_parse_table1_t1():
    pl = parse_priorities("Vtx > Rgn")
    assert pl.levels == ((0,), (3,))


def test_parse_table1_t2_equal_levels():
    pl = parse_priorities("Vtx = Edge > Rgn")
    assert pl.levels == ((0, 1), (3,))
    assert str(pl) == "Vtx = Edge > Rgn"


def test_parse_table1_t4():
    pl = parse_priorities("Edge = Face > Rgn")
    assert pl.levels == ((1, 2), (3,))


def test_parse_paper_example_three_levels():
    pl = parse_priorities("Rgn > Face = Edge > Vtx")
    assert pl.levels == ((3,), (1, 2), (0,))
    assert pl.all_dims() == [3, 1, 2, 0]


def test_parse_case_insensitive_aliases():
    pl = parse_priorities("vertex > REGION")
    assert pl.levels == ((0,), (3,))


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_priorities("Blob > Rgn")
    with pytest.raises(ValueError):
        parse_priorities("Vtx > > Rgn")
    with pytest.raises(ValueError):
        parse_priorities("")


def test_duplicate_type_rejected():
    with pytest.raises(ValueError):
        parse_priorities("Vtx > Vtx")
    with pytest.raises(ValueError):
        PriorityList(((0,), (0,)))


def test_equal_level_must_be_sorted():
    with pytest.raises(ValueError):
        PriorityList(((2, 1),))


def test_higher_and_lower_priority_dims():
    pl = parse_priorities("Rgn > Face = Edge > Vtx")
    assert pl.higher_priority_dims(3) == []
    assert pl.higher_priority_dims(1) == [3]
    assert pl.higher_priority_dims(0) == [3, 1, 2]
    assert pl.lower_priority_dims(3) == [1, 2, 0]
    assert pl.lower_priority_dims(0) == []
    with pytest.raises(ValueError):
        parse_priorities("Rgn").higher_priority_dims(0)
    with pytest.raises(ValueError):
        parse_priorities("Rgn").lower_priority_dims(0)


# -- imbalance metrics ---------------------------------------------------------


def test_imbalance_of_uniform_is_one():
    counts = np.full((4, 4), 10)
    assert imbalance_of(counts, 0) == 1.0
    assert (imbalances(counts) == 1.0).all()


def test_imbalance_of_peak():
    counts = np.array([[10, 0, 0, 0], [30, 0, 0, 0]])
    assert imbalance_of(counts, 0) == pytest.approx(1.5)
    assert imbalance_percent(1.5) == pytest.approx(50.0)


def test_imbalance_fixed_mean():
    counts = np.array([[10, 0, 0, 0], [30, 0, 0, 0]])
    assert imbalance_of(counts, 0, mean=10.0) == pytest.approx(3.0)


def test_imbalance_empty_dim():
    counts = np.zeros((3, 4))
    assert imbalance_of(counts, 2) == 1.0


def test_heavy_parts_ordered_heaviest_first():
    counts = np.array([[10], [30], [25], [9]]) * np.array([[1, 0, 0, 0]])
    heavy = heavy_parts(counts, 0, tol=0.05)
    assert heavy == [1, 2]  # mean 18.5, threshold 19.4


def test_light_parts():
    counts = np.array([[10, 0, 0, 0], [30, 0, 0, 0], [20, 0, 0, 0]])
    assert light_parts(counts, 0) == [0]


def test_balance_report_shape():
    counts = np.array([[576, 800, 400, 100], [600, 820, 420, 110]])
    report = balance_report(counts)
    assert set(report) == {"Vtx", "Edge", "Face", "Rgn"}
    assert report["Rgn"]["mean"] == pytest.approx(105.0)
    assert report["Rgn"]["imbalance_percent"] == pytest.approx(
        (110 / 105 - 1) * 100
    )


def test_paper_spike_arithmetic():
    """Section III-B: 576-vertex average, one part +324 => 56% imbalance."""
    nparts = 100
    counts = np.full((nparts, 4), 576)
    counts[7, 0] = 576 + 324
    mean = 576.0  # paper states the average explicitly
    imb = imbalance_of(counts, 0, mean=mean)
    assert imbalance_percent(imb) == pytest.approx(56.25)
