"""Tests for heavy part splitting and predictive balancing."""

import numpy as np
import pytest

from repro.core import (
    ParMA,
    heavy_part_splitting,
    predicted_element_weight,
    predicted_weights,
    predictive_balance,
    propose_merges,
    split_off_piece,
)
from repro.field import ShockPlaneSize, UniformSize
from repro.mesh import box_tet, rect_tri
from repro.partition import distribute
from repro.partitioners import partition


def spiked_dmesh(n=6, nparts=8):
    """A distribution with one huge spike and two empty parts."""
    mesh = box_tet(n)
    a = partition(mesh, nparts, method="rcb")
    a = np.where(a <= 2, 0, a)
    return distribute(mesh, a, nparts=nparts)


def test_propose_merges_light_parts_propose():
    dm = spiked_dmesh()
    counts = dm.entity_counts()[:, 3].astype(float)
    proposals = propose_merges(dm, counts, counts.mean())
    # The heavy part (0) has no capacity; it must not propose.
    assert 0 not in proposals
    for receiver, (donors, total) in proposals.items():
        assert counts[receiver] + total <= counts.mean()
        assert set(donors) <= dm.part(receiver).neighbors()


def test_split_off_piece_moves_roughly_requested():
    dm = spiked_dmesh()
    counts = dm.entity_counts()[:, 3]
    piece = int(counts[0] // 3)
    moved = split_off_piece(dm, 0, 1, piece)
    assert moved > 0
    assert abs(moved - piece) <= piece * 0.35
    dm.verify()


def test_split_off_piece_degenerate():
    dm = spiked_dmesh()
    assert split_off_piece(dm, 0, 1, 0) == 0
    assert split_off_piece(dm, 1, 0, 5) == 0  # part 1 is empty -> n <= 1


def test_heavy_part_splitting_removes_spike():
    dm = spiked_dmesh()
    stats = heavy_part_splitting(dm, tol=0.05)
    assert stats.initial_peak > 2.5
    assert stats.final_peak < stats.initial_peak / 2
    assert stats.splits_executed >= 1
    dm.verify()
    assert "heavy part splitting" in stats.summary()


def test_heavy_part_splitting_noop_when_balanced():
    mesh = box_tet(4)
    dm = distribute(mesh, partition(mesh, 4, method="rcb"))
    stats = heavy_part_splitting(dm, tol=0.10)
    assert stats.merges_executed == 0
    assert stats.splits_executed == 0


def test_composed_recipe_reaches_tolerance():
    dm = spiked_dmesh()
    balancer = ParMA(dm)
    split_stats, improve_stats = balancer.rebalance_spikes("Rgn", tol=0.05)
    final = balancer.imbalances()[3]
    assert final <= 1.15  # splitting + diffusion ends near tolerance
    dm.verify()


# -- predictive ----------------------------------------------------------------------


def test_predicted_weight_uniform_size_near_one():
    mesh = rect_tri(8)  # edges ~0.125-0.177
    size = UniformSize(0.15)
    weights = predicted_weights(mesh, size)
    assert weights.shape == (mesh.count(2),)
    assert 0.4 < weights.mean() < 2.5


def test_predicted_weight_scales_with_refinement():
    mesh = rect_tri(4)
    element = next(mesh.entities(2))
    w_coarse = predicted_element_weight(mesh, element, UniformSize(0.5))
    w_fine = predicted_element_weight(mesh, element, UniformSize(0.05))
    assert w_fine > w_coarse * 10


def test_predicted_weight_floor():
    mesh = rect_tri(2)
    element = next(mesh.entities(2))
    w = predicted_element_weight(mesh, element, UniformSize(100.0), floor=0.1)
    assert w == 0.1


def test_predictive_balance_moves_elements_toward_refined_zone():
    mesh = rect_tri(12)
    dm = distribute(mesh, partition(mesh, 4, method="rcb"))
    shock = ShockPlaneSize(
        normal=[1, 0], offset=0.5, h_fine=0.02, h_coarse=0.2, width=0.08
    )
    moved = predictive_balance(dm, shock)
    assert moved > 0
    dm.verify()
    # The actual contract: the *predicted* load is balanced after the move.
    loads = np.zeros(dm.nparts)
    for part in dm:
        for element in part.mesh.entities(2):
            loads[part.pid] += predicted_element_weight(
                part.mesh, element, shock
            )
    assert loads.max() / loads.mean() < 1.25


def test_predictive_balance_uniform_is_mild():
    mesh = rect_tri(8)
    dm = distribute(mesh, partition(mesh, 4, method="rcb"))
    moved = predictive_balance(dm, UniformSize(0.125))
    dm.verify()
    counts = dm.entity_counts()[:, 2].astype(float)
    assert counts.max() / counts.mean() < 1.2
