"""Tests for candidate selection, scheduling, and the improvement driver."""

import numpy as np
import pytest

from repro.core import (
    ParMA,
    candidate_parts,
    improve_partition,
    imbalance_of,
    migration_schedule,
    select_for_dimension,
)
from repro.mesh import box_tet, rect_tri
from repro.partition import distribute
from repro.partitioners import partition


def make_dmesh(n=8, nparts=4, method="hypergraph", seed=1, dim3=False):
    mesh = box_tet(n) if dim3 else rect_tri(n)
    return distribute(mesh, partition(mesh, nparts, method=method, seed=seed))


# -- candidates -----------------------------------------------------------------


def test_candidates_are_neighbors_only():
    dm = make_dmesh()
    counts = dm.entity_counts()
    for heavy in range(dm.nparts):
        cands = candidate_parts(dm, counts, heavy, 2)
        assert set(cands) <= dm.part(heavy).neighbors()


def test_candidates_absolute_vs_relative():
    dm = make_dmesh()
    counts = dm.entity_counts().astype(float).copy()
    heavy = 0
    neighbors = sorted(dm.part(heavy).neighbors())
    assert neighbors
    nb = neighbors[0]
    # Force nb above the (fixed) mean but below the heavy part:
    # relatively light only.
    means = counts.mean(axis=0)
    counts[heavy, 2] = 1000.0
    counts[nb, 2] = means[2] + 1
    rel = candidate_parts(dm, counts, heavy, 2, mode="relative", means=means)
    ab = candidate_parts(dm, counts, heavy, 2, mode="absolute", means=means)
    both = candidate_parts(dm, counts, heavy, 2, mode="both", means=means)
    assert nb in rel
    assert nb not in ab
    assert nb in both


def test_candidates_gated_by_lower_priority_load():
    dm = make_dmesh()
    counts = dm.entity_counts().astype(float).copy()
    heavy = 0
    nb = sorted(dm.part(heavy).neighbors())[0]
    counts[heavy, 2] = 1000.0
    # Make nb overloaded in the lower-priority dimension 0 in both senses.
    counts[nb, 0] = counts[:, 0].max() * 10
    counts[heavy, 0] = 0.0
    cands = candidate_parts(dm, counts, heavy, 2, lower_priority_dims=[0])
    assert nb not in cands


def test_candidates_gated_by_higher_priority_heaviness():
    dm = make_dmesh()
    counts = dm.entity_counts().astype(float).copy()
    heavy = 0
    nb = sorted(dm.part(heavy).neighbors())[0]
    counts[heavy, 2] = 1000.0
    counts[nb, 0] = counts[:, 0].mean() * 2  # heavy in dim 0
    cands = candidate_parts(dm, counts, heavy, 2, higher_priority_dims=[0])
    assert nb not in cands


def test_candidates_sorted_lightest_first():
    dm = make_dmesh()
    counts = dm.entity_counts().astype(float)
    heavy = int(np.argmax(counts[:, 2]))
    cands = candidate_parts(dm, counts, heavy, 2)
    loads = [counts[c, 2] for c in cands]
    assert loads == sorted(loads)


# -- schedule ----------------------------------------------------------------------


def test_schedule_empty_when_not_heavy():
    counts = np.array([[0, 0, 10, 0], [0, 0, 10, 0]])
    assert migration_schedule(counts, 0, [1], 2, mean=10.0) == {}


def test_schedule_caps_at_capacity():
    counts = np.array([[0, 0, 100, 0], [0, 0, 10, 0]])
    sched = migration_schedule(counts, 0, [1], 2, mean=55.0)
    assert sched == {1: 45}


def test_schedule_splits_proportionally():
    counts = np.array([[0, 0, 100, 0], [0, 0, 40, 0], [0, 0, 10, 0]])
    mean = 50.0
    sched = migration_schedule(counts, 0, [1, 2], 2, mean=mean)
    assert sched[2] == 4 * sched[1]  # capacities 10 vs 40
    assert sum(sched.values()) <= 100 - mean + 1


def test_schedule_relative_candidate_half_gap():
    counts = np.array([[0, 0, 100, 0], [0, 0, 60, 0]])
    sched = migration_schedule(counts, 0, [1], 2, mean=50.0)
    assert sched == {1: 20}  # (100 - 60) / 2


def test_schedule_minimum_one_unit():
    counts = np.array([[0, 0, 52, 0], [0, 0, 49, 0]])
    sched = migration_schedule(counts, 0, [1], 2, mean=50.0)
    assert sched == {1: 1} or sched == {1: 2}


# -- selection -----------------------------------------------------------------------


def test_selection_only_from_candidate_boundary():
    dm = make_dmesh(nparts=4)
    counts = dm.entity_counts()
    heavy = int(np.argmax(counts[:, 2]))
    part = dm.part(heavy)
    for cand in sorted(part.neighbors()):
        picks = select_for_dimension(part, cand, 2, quota=3, already=set())
        for element in picks:
            # Each pick must touch the boundary with the candidate.
            touches = any(
                cand in part.remotes.get(facet, {})
                for facet in part.mesh.down(element)
            )
            assert touches


def test_selection_respects_quota_and_already():
    dm = make_dmesh(nparts=2)
    part = dm.part(0)
    cand = 1
    already = set()
    first = select_for_dimension(part, cand, 2, quota=2, already=already)
    assert len(first) <= 2
    second = select_for_dimension(part, cand, 2, quota=2, already=already)
    assert not set(first) & set(second)


def test_vertex_selection_small_cavities_3d():
    dm = make_dmesh(n=4, nparts=4, dim3=True)
    heavy = int(np.argmax(dm.entity_counts()[:, 0]))
    part = dm.part(heavy)
    for cand in sorted(part.neighbors()):
        picks = select_for_dimension(part, cand, 0, quota=2, already=set())
        # All picked elements are regions.
        assert all(p.dim == 3 for p in picks)


# -- driver ------------------------------------------------------------------------


def test_improve_reduces_target_imbalance_2d():
    dm = make_dmesh(n=12, nparts=8)
    before = imbalance_of(dm.entity_counts(), 0)
    stats = improve_partition(dm, "Vtx > Face", tol=0.05)
    after = imbalance_of(dm.entity_counts(), 0)
    assert after <= before
    dm.verify()
    assert stats.total_migrated >= 0
    assert "Vtx" in stats.summary()


def test_improve_3d_vtx_rgn_to_tolerance():
    dm = make_dmesh(n=6, nparts=8, dim3=True)
    stats = improve_partition(dm, "Vtx > Rgn", tol=0.10)
    final = stats.final_imbalances
    assert final[0] <= stats.initial_imbalances[0] or final[0] <= 1.10
    dm.verify()


def test_improve_higher_priority_not_ruined():
    """Balancing a lower-priority type must not blow up the higher one."""
    dm = make_dmesh(n=6, nparts=8, dim3=True)
    improve_partition(dm, "Rgn", tol=0.05)
    rgn_after_first = imbalance_of(dm.entity_counts(), 3)
    stats = improve_partition(dm, "Rgn > Vtx", tol=0.05)
    rgn_final = imbalance_of(dm.entity_counts(), 3)
    # Allowed: slight growth within tolerance-ish; forbidden: a new spike.
    assert rgn_final <= max(rgn_after_first + 0.05, 1.10)
    dm.verify()


def test_improve_already_balanced_is_noop():
    dm = make_dmesh(n=8, nparts=2, method="rcb")
    counts_before = dm.entity_counts().copy()
    stats = improve_partition(dm, "Face", tol=0.25)
    assert stats.total_migrated == 0
    assert np.array_equal(dm.entity_counts(), counts_before)


def test_improve_accepts_parsed_priorities():
    from repro.core import parse_priorities

    dm = make_dmesh(n=6, nparts=4)
    stats = improve_partition(dm, parse_priorities("Face"), tol=0.20)
    assert stats.priorities == "Face"


def test_parma_facade():
    dm = make_dmesh(n=8, nparts=4)
    balancer = ParMA(dm)
    imb = balancer.imbalances()
    assert imb.shape == (4,)
    report = balancer.report()
    assert "Vtx" in report
    stats = balancer.improve("Vtx > Face", tol=0.10)
    assert stats.tolerance == 0.10
    dm.verify()
