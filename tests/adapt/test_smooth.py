"""Tests for vertex smoothing and quality optimization."""

import numpy as np
import pytest

from repro.adapt.smooth import (
    optimize_quality,
    smooth_distributed,
    smooth_pass,
    smooth_vertex,
)
from repro.mesh import box_tet, delaunay_rect, rect_tri
from repro.mesh.quality import worst_quality
from repro.mesh.verify import verify


def jittered_mesh(seed=3):
    return delaunay_rect(6, jitter=0.45, seed=seed)


def test_smooth_improves_jittered_mesh():
    mesh = jittered_mesh()
    before = worst_quality(mesh)
    moved = smooth_pass(mesh)
    assert moved > 0
    verify(mesh, check_volumes=True)
    assert worst_quality(mesh) >= before - 1e-12


def test_smooth_preserves_area():
    from repro.mesh.quality import measure

    mesh = jittered_mesh()
    before = sum(measure(mesh, f) for f in mesh.entities(2))
    smooth_pass(mesh)
    after = sum(measure(mesh, f) for f in mesh.entities(2))
    assert after == pytest.approx(before)


def test_model_vertices_never_move():
    mesh = rect_tri(3)
    corners = {
        v: mesh.coords(v)
        for v in mesh.entities(0)
        if mesh.classification(v).dim == 0
    }
    smooth_pass(mesh)
    for v, coords in corners.items():
        assert np.allclose(mesh.coords(v), coords)


def test_boundary_vertices_stay_on_their_model_entity():
    mesh = jittered_mesh()
    smooth_pass(mesh)
    for v in mesh.entities(0):
        gent = mesh.classification(v)
        if gent.dim < 2:
            shape = mesh.model.shape(gent)
            assert shape.contains(mesh.coords(v), tol=1e-9)


def test_smooth_vertex_rejects_quality_loss():
    # A structured mesh is near-optimal: guarded smoothing mostly no-ops
    # and never produces an invalid mesh.
    mesh = rect_tri(4)
    before = worst_quality(mesh)
    smooth_pass(mesh)
    verify(mesh, check_volumes=True)
    assert worst_quality(mesh) >= before - 1e-12


def test_smooth_3d():
    mesh = box_tet(3)
    before = worst_quality(mesh)
    smooth_pass(mesh)
    verify(mesh, check_volumes=True)
    assert worst_quality(mesh) >= before - 1e-12


def test_optimize_quality_driver():
    mesh = jittered_mesh(seed=9)
    stats = optimize_quality(mesh)
    verify(mesh, check_volumes=True)
    assert stats.final_worst >= stats.initial_worst
    assert "quality optimization" in stats.summary()


def test_optimize_improves_post_adaptation_quality():
    from repro.adapt import adapt
    from repro.field import SphereSize

    mesh = rect_tri(5)
    adapt(mesh, SphereSize([0.5, 0.5], 0.15, 0.04, 0.25), max_passes=5)
    before = worst_quality(mesh)
    stats = optimize_quality(mesh)
    verify(mesh, check_volumes=True)
    assert stats.final_worst > before


def test_smooth_distributed_keeps_copies_consistent():
    from repro.partition import distribute
    from repro.partitioners import partition

    mesh = jittered_rect = delaunay_rect(8, jitter=0.4, seed=5)
    dm = distribute(mesh, partition(mesh, 4, method="rcb"))
    moved = smooth_distributed(dm)
    assert moved > 0
    dm.verify()
    for part in dm:
        verify(part.mesh, check_classification=False, check_volumes=True)
    # Shared vertices untouched: coordinates still agree bit-for-bit.
    for part in dm:
        for ent, copies in part.remotes.items():
            if ent.dim != 0:
                continue
            for other_pid, other_ent in copies.items():
                assert np.array_equal(
                    part.mesh.coords(ent),
                    dm.part(other_pid).mesh.coords(other_ent),
                )
