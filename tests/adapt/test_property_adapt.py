"""Property-based tests: adaptation invariants under randomized inputs."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adapt import adapt, collapse_edge, split_edge
from repro.field import AnalyticSize, SphereSize, UniformSize
from repro.mesh import Ent, rect_tri
from repro.mesh.quality import measure
from repro.mesh.verify import verify


def total_area(mesh):
    return sum(measure(mesh, f) for f in mesh.entities(2))


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    cx=st.floats(0.1, 0.9),
    cy=st.floats(0.1, 0.9),
    radius=st.floats(0.05, 0.3),
    refinement=st.floats(1.5, 4.0),
)
def test_random_sphere_adaptation_preserves_validity(cx, cy, radius,
                                                     refinement):
    """Any sphere size field yields a valid mesh of unchanged area."""
    mesh = rect_tri(4)
    size = SphereSize([cx, cy], radius, h_fine=0.25 / refinement,
                      h_coarse=0.3)
    adapt(mesh, size, max_passes=4)
    verify(mesh, check_volumes=True)
    assert total_area(mesh) == pytest.approx(1.0)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(splits=st.lists(st.integers(0, 10_000), min_size=1, max_size=15))
def test_random_split_sequences(splits):
    """Splitting arbitrary live edges never invalidates the mesh."""
    mesh = rect_tri(3)
    for pick in splits:
        edges = [e for e in mesh.entities(1)]
        edge = edges[pick % len(edges)]
        split_edge(mesh, edge)
    verify(mesh, check_volumes=True)
    assert total_area(mesh) == pytest.approx(1.0)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 10_000)),
        min_size=1,
        max_size=20,
    )
)
def test_random_split_collapse_interleaving(ops):
    """Interleaved splits and (attempted) collapses keep the mesh valid.

    Collapses may be rejected (geometry/inversion guards); the property is
    that whatever subset succeeds leaves a valid, area-preserving mesh.
    """
    mesh = rect_tri(3)
    for is_split, pick in ops:
        edges = [e for e in mesh.entities(1)]
        edge = edges[pick % len(edges)]
        if is_split:
            split_edge(mesh, edge)
        else:
            collapse_edge(mesh, edge)
    verify(mesh, check_volumes=True)
    assert total_area(mesh) == pytest.approx(1.0)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    a=st.floats(0.05, 0.3),
    b=st.floats(1.0, 8.0),
)
def test_analytic_size_field_adaptation(a, b):
    """Smooth positive analytic size fields adapt without corruption."""
    mesh = rect_tri(4)
    size = AnalyticSize(lambda x: a + 0.2 * abs(np.sin(b * x[0])))
    adapt(mesh, size, max_passes=3)
    verify(mesh, check_volumes=True)
    assert total_area(mesh) == pytest.approx(1.0)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(h=st.floats(0.08, 0.6))
def test_uniform_adaptation_reaches_band(h):
    """Uniform targets converge with every edge inside the size band."""
    from repro.field import edge_size_ratio

    mesh = rect_tri(4)
    stats = adapt(mesh, UniformSize(h), max_passes=8)
    verify(mesh, check_volumes=True)
    if stats.converged:
        for edge in mesh.entities(1):
            ratio = edge_size_ratio(mesh, UniformSize(h), edge)
            assert ratio <= 1.5 + 1e-9
