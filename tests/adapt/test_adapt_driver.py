"""Tests for the adaptation driver, ancestry tracking, and estimation."""

import numpy as np
import pytest

from repro.adapt import (
    adapt,
    ancestry_counts,
    conformity,
    estimate_counts_by_label,
    estimate_element_count,
    estimation_error,
    seed_ancestry,
)
from repro.field import ShockPlaneSize, SphereSize, UniformSize
from repro.mesh import box_tet, rect_tri
from repro.mesh.verify import verify


def test_uniform_refinement_quadruples_2d():
    mesh = rect_tri(4)  # h = 0.25 axis edges
    stats = adapt(mesh, UniformSize(0.125), do_coarsen=False)
    verify(mesh, check_volumes=True)
    # Halving h in 2D roughly quadruples the element count.
    assert 3 * stats.initial_elements <= stats.final_elements
    assert stats.splits > 0
    assert stats.converged


def test_adapt_converges_to_conforming_band():
    mesh = rect_tri(6)
    shock = ShockPlaneSize([1, 0], 0.5, h_fine=0.04, h_coarse=0.2, width=0.08)
    adapt(mesh, shock, do_swap=True)
    verify(mesh, check_volumes=True)
    report = conformity(mesh, shock)
    assert report["in_band_fraction"] > 0.9


def test_adapt_refines_near_shock_only():
    mesh = rect_tri(8)
    shock = ShockPlaneSize([1, 0], 0.5, h_fine=0.03, h_coarse=0.15, width=0.05)
    adapt(mesh, shock)
    near = 0
    far = 0
    for f in mesh.entities(2):
        if abs(mesh.centroid(f)[0] - 0.5) < 0.1:
            near += 1
        elif abs(mesh.centroid(f)[0] - 0.5) > 0.3:
            far += 1
    assert near > far  # the band holds most of the elements


def test_coarsening_reduces_elements():
    mesh = rect_tri(8)  # h = 0.125
    stats = adapt(mesh, UniformSize(0.4), max_passes=6)
    verify(mesh, check_volumes=True)
    assert stats.final_elements < stats.initial_elements
    assert stats.collapses > 0


def test_adapt_3d_shock():
    mesh = box_tet(3)
    shock = ShockPlaneSize(
        [1, 0, 0], 0.5, h_fine=0.15, h_coarse=0.5, width=0.08
    )
    stats = adapt(mesh, shock, max_passes=4)
    verify(mesh, check_volumes=True)
    assert stats.final_elements > stats.initial_elements


def test_moving_sphere_refinement():
    mesh = rect_tri(6)
    ball = SphereSize([0.25, 0.5], radius=0.1, h_fine=0.04, h_coarse=0.2)
    adapt(mesh, ball, max_passes=6)
    count_at_first = mesh.count(2)
    # Move the particle and re-adapt: refinement follows it.
    adapt(mesh, ball.moved_to([0.75, 0.5]), max_passes=6)
    verify(mesh, check_volumes=True)
    fine_near_new = sum(
        1 for f in mesh.entities(2)
        if np.linalg.norm(mesh.centroid(f)[:2] - [0.75, 0.5]) < 0.1
    )
    fine_near_old = sum(
        1 for f in mesh.entities(2)
        if np.linalg.norm(mesh.centroid(f)[:2] - [0.25, 0.5]) < 0.1
    )
    assert fine_near_new > fine_near_old


def test_ancestry_partition_of_elements():
    mesh = rect_tri(4)
    seed_ancestry(mesh, "part", lambda e: e.idx % 4)
    shock = ShockPlaneSize([1, 0], 0.5, h_fine=0.05, h_coarse=0.2, width=0.1)
    adapt(mesh, shock, ancestry_tag="part")
    counts = ancestry_counts(mesh, "part")
    assert sum(counts.values()) == mesh.count(2)
    assert set(counts) <= {0, 1, 2, 3}


def test_ancestry_requires_tag():
    mesh = rect_tri(2)
    with pytest.raises(KeyError):
        ancestry_counts(mesh, "nope")


def test_estimate_element_count_tracks_reality():
    mesh = rect_tri(6)
    size = UniformSize(0.08)
    estimated = estimate_element_count(mesh, size)
    adapt(mesh, size)
    realized = mesh.count(2)
    assert 0.4 * realized <= estimated <= 2.5 * realized


def test_estimate_counts_by_label_and_error():
    mesh = rect_tri(4)
    seed_ancestry(mesh, "p", lambda e: 0 if mesh.centroid(e)[0] < 0.5 else 1)
    shock = ShockPlaneSize([1, 0], 0.25, h_fine=0.05, h_coarse=0.25, width=0.1)
    estimated = estimate_counts_by_label(mesh, shock, "p")
    adapt(mesh, shock, ancestry_tag="p")
    realized = ancestry_counts(mesh, "p")
    # The refined (left) side must dominate both forecast and reality.
    assert estimated[0] > estimated[1]
    assert realized[0] > realized[1]
    assert estimation_error(estimated, realized) < 1.0


def test_estimate_missing_tag():
    mesh = rect_tri(2)
    with pytest.raises(KeyError):
        estimate_counts_by_label(mesh, UniformSize(0.1), "nope")
