"""Tests for the edge split/collapse/swap primitives."""

import numpy as np
import pytest

from repro.adapt import (
    can_collapse_classification,
    collapse_edge,
    split_edge,
    swap_edge,
    swap_pass,
)
from repro.mesh import Ent, Mesh, TRI, box_tet, rect_tri
from repro.mesh.quality import measure
from repro.mesh.verify import verify


def test_split_interior_edge_2d():
    mesh = rect_tri(2)
    interior = next(
        e for e in mesh.entities(1) if mesh.classification(e).dim == 2
    )
    nf = mesh.count(2)
    mid = split_edge(mesh, interior)
    assert mesh.count(2) == nf + 2
    verify(mesh, check_volumes=True)
    assert mesh.classification(mid).dim == 2


def test_split_boundary_edge_2d_snaps_and_classifies():
    mesh = rect_tri(2)
    bottom = next(
        e for e in mesh.entities(1)
        if mesh.classification(e) == mesh.model.find(1, 0)
    )
    nf = mesh.count(2)
    mid = split_edge(mesh, bottom)
    assert mesh.count(2) == nf + 1  # boundary edge has one face
    assert mesh.classification(mid) == mesh.model.find(1, 0)
    assert mesh.coords(mid)[1] == 0.0  # snapped onto the bottom edge
    verify(mesh, check_volumes=True)


def test_split_preserves_area():
    mesh = rect_tri(3)
    before = sum(measure(mesh, f) for f in mesh.entities(2))
    for _ in range(5):
        edge = next(mesh.entities(1))
        split_edge(mesh, edge)
    after = sum(measure(mesh, f) for f in mesh.entities(2))
    assert after == pytest.approx(before)


def test_split_edge_3d():
    mesh = box_tet(2)
    nr = mesh.count(3)
    interior = next(
        e for e in mesh.entities(1) if mesh.classification(e).dim == 3
    )
    adjacent = len(mesh.adjacent(interior, 3))
    split_edge(mesh, interior)
    assert mesh.count(3) == nr + adjacent
    verify(mesh, check_volumes=True)


def test_split_propagates_ancestry():
    mesh = rect_tri(2)
    tag = mesh.tag("anc")
    for f in mesh.entities(2):
        tag.set(f, 42)
    edge = next(e for e in mesh.entities(1) if mesh.classification(e).dim == 2)
    split_edge(mesh, edge, ancestry_tag="anc")
    for f in mesh.entities(2):
        assert tag.get(f) == 42


def test_split_validation():
    mesh = rect_tri(1)
    with pytest.raises(ValueError):
        split_edge(mesh, next(mesh.entities(2)))
    with pytest.raises(KeyError):
        split_edge(mesh, Ent(1, 10_000))


def test_split_single_triangle_keeps_far_vertex():
    mesh = Mesh()
    a = mesh.create_vertex([0, 0])
    b = mesh.create_vertex([1, 0])
    c = mesh.create_vertex([0, 1])
    tri = mesh.create(TRI, [a, b, c])
    edge = mesh.find(1, [a, b])
    split_edge(mesh, edge, snap=False)
    assert mesh.count(2) == 2
    assert mesh.has(c)
    verify(mesh, check_classification=False, check_volumes=True)


# -- collapse --------------------------------------------------------------------


def test_collapse_interior_edge_reduces_elements():
    mesh = rect_tri(4)
    before = mesh.count(2)
    interior = next(
        e
        for e in mesh.entities(1)
        if mesh.classification(e).dim == 2
        and all(mesh.classification(v).dim == 2 for v in mesh.verts_of(e))
    )
    assert collapse_edge(mesh, interior)
    assert mesh.count(2) == before - 2
    verify(mesh, check_volumes=True)


def test_collapse_preserves_area():
    mesh = rect_tri(4)
    before = sum(measure(mesh, f) for f in mesh.entities(2))
    interior = next(
        e
        for e in mesh.entities(1)
        if all(mesh.classification(v).dim == 2 for v in mesh.verts_of(e))
    )
    assert collapse_edge(mesh, interior)
    after = sum(measure(mesh, f) for f in mesh.entities(2))
    assert after == pytest.approx(before)


def test_collapse_rejects_model_vertex_removal():
    mesh = rect_tri(1)
    # Every vertex is a model corner: no edge may collapse.
    for edge in mesh.entities(1):
        assert not collapse_edge(mesh, edge)
    verify(mesh)


def test_collapse_classification_rules():
    mesh = rect_tri(3)
    corner = next(
        v for v in mesh.entities(0) if mesh.classification(v).dim == 0
    )
    interior = next(
        v for v in mesh.entities(0) if mesh.classification(v).dim == 2
    )
    bedge = next(
        v for v in mesh.entities(0) if mesh.classification(v).dim == 1
    )
    assert not can_collapse_classification(mesh, corner, interior)
    assert can_collapse_classification(mesh, interior, corner)
    assert can_collapse_classification(mesh, interior, bedge)
    # Boundary vertex onto interior vertex would pull the boundary inward.
    assert not can_collapse_classification(mesh, bedge, interior)


def test_collapse_boundary_edge_along_model_edge():
    mesh = rect_tri(4)
    # An edge along the bottom between two bottom-classified vertices.
    bottom = mesh.model.find(1, 0)
    edge = next(
        e
        for e in mesh.entities(1)
        if mesh.classification(e) == bottom
        and all(mesh.classification(v) == bottom for v in mesh.verts_of(e))
    )
    assert collapse_edge(mesh, edge)
    verify(mesh, check_volumes=True)


def test_collapse_3d():
    mesh = box_tet(3)
    before = mesh.count(3)
    interior = next(
        e
        for e in mesh.entities(1)
        if all(mesh.classification(v).dim == 3 for v in mesh.verts_of(e))
    )
    assert collapse_edge(mesh, interior)
    assert mesh.count(3) < before
    verify(mesh, check_volumes=True)


def test_collapse_keep_endpoint():
    mesh = rect_tri(4)
    interior = next(
        e
        for e in mesh.entities(1)
        if all(mesh.classification(v).dim == 2 for v in mesh.verts_of(e))
    )
    a, b = mesh.verts_of(interior)
    assert collapse_edge(mesh, interior, keep=b)
    assert mesh.has(b)
    assert not mesh.has(a)
    with pytest.raises(ValueError):
        collapse_edge(mesh, interior)  # already dead


# -- swap -----------------------------------------------------------------------


def test_swap_improves_bad_pair():
    # Two skinny triangles over a flat quad; swapping the diagonal helps.
    mesh = Mesh()
    from repro.gmodel import rect_model

    mesh.model = rect_model((0.0, 0.0), (4.0, 1.0))
    a = mesh.create_vertex([0, 0.45])
    b = mesh.create_vertex([4, 0.55])
    c = mesh.create_vertex([2, 1.0])
    d = mesh.create_vertex([2, 0.0])
    t1 = mesh.create(TRI, [a, b, c])
    t2 = mesh.create(TRI, [b, a, d])
    mesh.classify_against(mesh.model)
    diagonal = mesh.find(1, [a, b])
    assert swap_edge(mesh, diagonal)
    assert mesh.find(1, [c, d]) is not None
    assert mesh.find(1, [a, b]) is None
    verify(mesh, check_volumes=True)


def test_swap_rejects_boundary_and_good_edges():
    mesh = rect_tri(2)
    boundary = next(
        e for e in mesh.entities(1) if mesh.classification(e).dim == 1
    )
    assert not swap_edge(mesh, boundary)


def test_swap_pass_never_reduces_worst_quality():
    from repro.mesh import delaunay_rect, worst_quality

    mesh = delaunay_rect(6, jitter=0.45, seed=5)
    before = worst_quality(mesh)
    swap_pass(mesh)
    verify(mesh, check_volumes=True)
    assert worst_quality(mesh) >= before - 1e-12
