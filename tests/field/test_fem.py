"""Tests for the distributed P1 Poisson solver."""

import numpy as np
import pytest

from repro.field.fem import PoissonProblem, solution_error
from repro.mesh import box_tet, rect_tri
from repro.partition import distribute
from repro.partitioners import partition


def dmesh_2d(n=8, parts=4, method="rcb"):
    mesh = rect_tri(n)
    return distribute(mesh, partition(mesh, parts, method=method))


def test_linear_solution_is_exact():
    dm = dmesh_2d()
    exact = lambda x: 2 * x[0] + 3 * x[1] - 1
    u, stats = PoissonProblem(dm, dirichlet=exact).solve()
    assert stats.converged
    assert solution_error(dm, u, exact) < 1e-10


def test_harmonic_quadratic_exact_at_nodes():
    dm = dmesh_2d()
    exact = lambda x: x[0] * x[0] - x[1] * x[1]
    u, stats = PoissonProblem(dm, dirichlet=exact).solve()
    assert solution_error(dm, u, exact) < 1e-9


def test_manufactured_rhs():
    """-u'' = 2 with u = x(1-x): exact at nodes on the structured grid."""
    dm = dmesh_2d()
    exact = lambda x: x[0] * (1 - x[0])
    u, stats = PoissonProblem(dm, f=lambda x: 2.0, dirichlet=exact).solve()
    assert solution_error(dm, u, exact) < 1e-9
    assert stats.iterations < 100


def test_solution_independent_of_partition():
    """The same system solved on different partitions agrees nodally."""
    mesh = rect_tri(6)
    exact = lambda x: x[0] * x[1]
    solutions = []
    for parts, method in ((1, "rcb"), (3, "rcb"), (4, "hypergraph")):
        dm = distribute(
            mesh, partition(mesh, parts, method=method), nparts=parts
        )
        u, _stats = PoissonProblem(dm, dirichlet=exact).solve()
        by_gid = {}
        for part in dm:
            field = u.on(part.pid)
            for v in part.mesh.entities(0):
                by_gid[part.gid(v)] = field.get_scalar(v)
        solutions.append(by_gid)
    for other in solutions[1:]:
        assert set(other) == set(solutions[0])
        for gid, value in solutions[0].items():
            assert other[gid] == pytest.approx(value, abs=1e-9)


def test_3d_linear_exact():
    mesh = box_tet(3)
    dm = distribute(mesh, partition(mesh, 3, method="rcb"))
    exact = lambda x: x[0] - 2 * x[1] + 0.5 * x[2]
    u, stats = PoissonProblem(dm, dirichlet=exact).solve()
    assert stats.converged
    assert solution_error(dm, u, exact) < 1e-9


def test_convergence_under_refinement():
    """Nodal error of a non-polynomial solution shrinks with h."""
    exact = lambda x: np.sin(np.pi * x[0]) * np.sinh(np.pi * x[1])
    errors = []
    for n in (4, 8, 16):
        dm = dmesh_2d(n=n, parts=2)
        u, _stats = PoissonProblem(dm, dirichlet=exact).solve(tol=1e-12)
        errors.append(
            solution_error(dm, u, exact)
            / max(abs(np.sinh(np.pi)), 1.0)
        )
    assert errors[1] < errors[0]
    assert errors[2] < errors[1]
    assert errors[2] < errors[0] / 4  # ~O(h^2)


def test_rejects_unsupported_dim():
    from repro.mesh import Mesh
    from repro.partition import DistributedMesh

    dm = DistributedMesh(1)
    with pytest.raises(ValueError):
        PoissonProblem(dm)


def test_dirichlet_values_pinned():
    dm = dmesh_2d(n=4, parts=2)
    g = lambda x: 7.0
    u, _stats = PoissonProblem(dm, dirichlet=g).solve()
    for part in dm:
        field = u.on(part.pid)
        for v in part.mesh.entities(0):
            gent = part.mesh.classification(v)
            if gent is not None and gent.dim < 2:
                assert field.get_scalar(v) == pytest.approx(7.0)
    # Constant boundary data + zero source => constant solution.
    exact = lambda x: 7.0
    assert solution_error(dm, u, exact) < 1e-10
