"""Tests for distributed dof numbering."""

import numpy as np
import pytest

from repro.field.dof import DofNumbering, dof_imbalance, dof_loads
from repro.mesh import box_tet, rect_tri
from repro.partition import distribute
from repro.partitioners import partition


def dmesh(n=6, parts=3, method="rcb"):
    mesh = rect_tri(n)
    return mesh, distribute(mesh, partition(mesh, parts, method=method))


def test_p1_total_equals_global_vertices():
    mesh, dm = dmesh()
    numbering = DofNumbering(dm, order=1)
    assert numbering.total == mesh.count(0)


def test_p2_total_equals_vertices_plus_edges():
    mesh, dm = dmesh()
    numbering = DofNumbering(dm, order=2)
    assert numbering.total == mesh.count(0) + mesh.count(1)


def test_p0_total_equals_elements():
    mesh, dm = dmesh()
    numbering = DofNumbering(dm, order=0)
    assert numbering.total == mesh.count(2)


def test_invalid_order_rejected():
    _mesh, dm = dmesh(n=2, parts=1)
    with pytest.raises(ValueError):
        DofNumbering(dm, order=3)


def test_shared_dofs_agree_across_copies():
    _mesh, dm = dmesh()
    numbering = DofNumbering(dm, order=2)
    checked = 0
    for part in dm:
        for ent, copies in part.remotes.items():
            if ent.dim > 1:
                continue
            mine = numbering.id_of(part.pid, ent)
            for other_pid, other_ent in copies.items():
                assert numbering.id_of(other_pid, other_ent) == mine
                checked += 1
    assert checked > 0


def test_ids_dense_and_unique():
    _mesh, dm = dmesh()
    numbering = DofNumbering(dm, order=1)
    seen = {}
    for part in dm:
        for v in part.mesh.entities(0):
            dof = numbering.id_of(part.pid, v)
            gid = part.gid(v)
            if gid in seen:
                assert seen[gid] == dof
            seen[gid] = dof
    assert sorted(set(seen.values())) == list(range(numbering.total))


def test_element_dofs_p2():
    _mesh, dm = dmesh(n=2, parts=1)
    numbering = DofNumbering(dm, order=2)
    part = dm.part(0)
    element = next(part.mesh.entities(2))
    dofs = numbering.element_dofs(0, element)
    assert len(dofs) == 6  # 3 vertex + 3 edge nodes
    assert len(set(dofs)) == 6


def test_element_dofs_p0():
    _mesh, dm = dmesh(n=2, parts=1)
    numbering = DofNumbering(dm, order=0)
    element = next(dm.part(0).mesh.entities(2))
    assert len(numbering.element_dofs(0, element)) == 1


def test_missing_dof_raises():
    _mesh, dm = dmesh(n=2, parts=1)
    numbering = DofNumbering(dm, order=1)
    edge = next(dm.part(0).mesh.entities(1))
    with pytest.raises(KeyError):
        numbering.id_of(0, edge)
    assert not numbering.has(0, edge)


def test_part_loads_match_entity_counts():
    _mesh, dm = dmesh()
    counts = dm.entity_counts()
    assert np.array_equal(dof_loads(dm, 1), counts[:, 0])
    assert np.array_equal(dof_loads(dm, 2), counts[:, 0] + counts[:, 1])


def test_parma_vtx_edge_balance_improves_p2_dof_imbalance():
    """The Table-II T2 priority list is exactly the P2 dof balance."""
    from repro.core import ParMA

    mesh = box_tet(6)
    dm = distribute(mesh, partition(mesh, 8, method="hypergraph", seed=1))
    before = dof_imbalance(dm, order=2)
    ParMA(dm).improve("Vtx = Edge > Rgn", tol=0.05)
    after = dof_imbalance(dm, order=2)
    assert after <= before + 1e-9
    dm.verify()


def test_3d_p2_counts():
    mesh = box_tet(2)
    dm = distribute(
        mesh, partition(mesh, 2, method="rcb"), nparts=2
    )
    numbering = DofNumbering(dm, order=2)
    assert numbering.total == mesh.count(0) + mesh.count(1)
    # A tet's P2 element dofs: 4 vertices + 6 edges.
    element = next(dm.part(0).mesh.entities(3))
    assert len(numbering.element_dofs(0, element)) == 10
