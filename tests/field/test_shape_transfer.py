"""Tests for shape functions, point location, size fields, and transfer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.field import (
    AnalyticSize,
    ElementLocator,
    Field,
    ShockPlaneSize,
    SphereSize,
    UniformSize,
    barycentric,
    contains_point,
    current_vertex_sizes,
    edge_size_ratio,
    interpolate,
    transfer_error,
    transfer_vertex_field,
)
from repro.mesh import box_tet, rect_tri

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def test_barycentric_tri_vertices_and_centroid():
    mesh = rect_tri(1)
    f = next(mesh.entities(2))
    verts = mesh.verts_of(f)
    for i, v in enumerate(verts):
        bary = barycentric(mesh, f, mesh.coords(v))
        expected = np.zeros(3)
        expected[i] = 1.0
        assert np.allclose(bary, expected)
    centroid = mesh.centroid(f)
    assert np.allclose(barycentric(mesh, f, centroid), [1 / 3] * 3)


def test_barycentric_tet():
    mesh = box_tet(1)
    r = next(mesh.entities(3))
    bary = barycentric(mesh, r, mesh.centroid(r))
    assert np.allclose(bary, [0.25] * 4)
    assert bary.sum() == pytest.approx(1.0)


def test_contains_point():
    mesh = rect_tri(1)
    f = next(mesh.entities(2))
    assert contains_point(mesh, f, mesh.centroid(f))
    assert not contains_point(mesh, f, [5.0, 5.0, 0.0])


def test_interpolate_linear_field_is_exact():
    mesh = rect_tri(2)
    field = Field(mesh, "u")
    field.set_from_coords(lambda x: 2 * x[0] + 3 * x[1] + 1)
    f = next(mesh.entities(2))
    x = mesh.centroid(f)
    value = interpolate(mesh, field, f, x)
    assert value[0] == pytest.approx(2 * x[0] + 3 * x[1] + 1)


@settings(max_examples=25, deadline=None)
@given(x=unit, y=unit)
def test_locator_finds_containing_element(x, y):
    mesh = rect_tri(3)
    locator = ElementLocator(mesh)
    element = locator.locate([x, y])
    assert element is not None
    assert contains_point(mesh, element, [x, y, 0.0], tol=1e-9)


def test_locator_outside_returns_none_and_nearest_works():
    mesh = rect_tri(2)
    locator = ElementLocator(mesh)
    assert locator.locate([5.0, 5.0]) is None
    assert locator.nearest([5.0, 5.0]) is not None


def test_locator_rejects_empty_mesh():
    from repro.mesh import Mesh

    with pytest.raises(ValueError):
        ElementLocator(Mesh())


def test_transfer_linear_field_exact():
    source = rect_tri(4)
    target = rect_tri(7)
    u = Field(source, "u")
    u.set_from_coords(lambda x: 4 * x[0] - 2 * x[1])
    transferred = transfer_vertex_field(source, u, target)
    err = transfer_error(
        target, transferred, lambda x: 4 * x[0] - 2 * x[1], norm="max"
    )
    assert err < 1e-9


def test_transfer_3d():
    source = box_tet(2)
    target = box_tet(3)
    u = Field(source, "u")
    u.set_from_coords(lambda x: x[0] + x[1] + x[2])
    transferred = transfer_vertex_field(source, u, target)
    err = transfer_error(
        target, transferred, lambda x: x[0] + x[1] + x[2], norm="l2"
    )
    assert err < 1e-9


def test_transfer_requires_vertex_field():
    source = rect_tri(2)
    with pytest.raises(ValueError):
        transfer_vertex_field(source, Field(source, "r", entity_dim=2), source)


# -- size fields ---------------------------------------------------------------


def test_uniform_size():
    s = UniformSize(0.25)
    assert s.value([0.3, 0.9]) == 0.25
    with pytest.raises(ValueError):
        UniformSize(0.0)


def test_analytic_size_positive_check():
    s = AnalyticSize(lambda x: x[0] - 10.0)
    with pytest.raises(ValueError):
        s.value([0.0, 0.0])


def test_shock_plane_size_band():
    s = ShockPlaneSize(normal=[1, 0, 0], offset=0.5, h_fine=0.01,
                       h_coarse=0.2, width=0.05)
    assert s.value([0.5, 0.3, 0.1]) == pytest.approx(0.01)
    far = s.value([0.0, 0.3, 0.1])
    assert far == pytest.approx(0.2, rel=1e-3)
    mid = s.value([0.53, 0.0, 0.0])
    assert 0.01 < mid < 0.2


def test_shock_plane_validation():
    with pytest.raises(ValueError):
        ShockPlaneSize([0, 0, 0], 0.0, 0.1, 0.2, 0.1)
    with pytest.raises(ValueError):
        ShockPlaneSize([1, 0, 0], 0.0, 0.3, 0.2, 0.1)  # fine > coarse
    with pytest.raises(ValueError):
        ShockPlaneSize([1, 0, 0], 0.0, 0.1, 0.2, -1.0)


def test_sphere_size_and_move():
    s = SphereSize(center=[0, 0], radius=0.1, h_fine=0.02, h_coarse=0.3)
    assert s.value([0.05, 0.0]) == 0.02
    assert s.value([5.0, 0.0]) == pytest.approx(0.3)
    moved = s.moved_to([1.0, 0.0])
    assert moved.value([1.0, 0.0]) == 0.02
    assert moved.value([0.0, 0.0]) == pytest.approx(0.3)


def test_edge_size_ratio():
    mesh = rect_tri(2)  # edges have length 0.5 (axis) or ~0.707 (diagonal)
    s = UniformSize(0.5)
    ratios = [edge_size_ratio(mesh, s, e) for e in mesh.entities(1)]
    assert min(ratios) == pytest.approx(1.0)
    assert max(ratios) == pytest.approx(np.sqrt(2) / 2 / 0.5)


def test_current_vertex_sizes():
    mesh = rect_tri(2)
    sizes = current_vertex_sizes(mesh)
    assert len(sizes) == mesh.count(0)
    assert all(0.4 < h < 0.8 for h in sizes.values())
