"""Tests for the Field container and manager."""

import numpy as np
import pytest

from repro.field import Field, FieldManager
from repro.mesh import Ent, rect_tri


@pytest.fixture
def mesh():
    return rect_tri(2)


def test_scalar_roundtrip(mesh):
    f = Field(mesh, "p")
    v = next(mesh.entities(0))
    f.set(v, 3.0)
    assert f.get_scalar(v) == 3.0
    assert f.get(v).shape == (1,)


def test_vector_field(mesh):
    f = Field(mesh, "vel", shape=3)
    v = next(mesh.entities(0))
    f.set(v, [1.0, 2.0, 3.0])
    assert np.allclose(f.get(v), [1, 2, 3])


def test_tensor_field(mesh):
    f = Field(mesh, "stress", shape=(2, 2))
    v = next(mesh.entities(0))
    f.set(v, [[1, 2], [3, 4]])
    assert f.get(v).shape == (2, 2)


def test_shape_mismatch_rejected(mesh):
    f = Field(mesh, "vel", shape=3)
    v = next(mesh.entities(0))
    with pytest.raises(ValueError):
        f.set(v, [1.0, 2.0])


def test_wrong_entity_dim_rejected(mesh):
    f = Field(mesh, "p", entity_dim=0)
    face = next(mesh.entities(2))
    with pytest.raises(ValueError):
        f.set(face, 1.0)


def test_dead_entity_rejected(mesh):
    f = Field(mesh, "p")
    with pytest.raises(KeyError):
        f.set(Ent(0, 10_000), 1.0)


def test_get_missing_raises(mesh):
    f = Field(mesh, "p")
    v = next(mesh.entities(0))
    with pytest.raises(KeyError):
        f.get(v)
    assert not f.has(v)


def test_values_are_copied(mesh):
    f = Field(mesh, "vel", shape=2)
    v = next(mesh.entities(0))
    src = np.array([1.0, 2.0])
    f.set(v, src)
    src[0] = 99.0
    assert f.get(v)[0] == 1.0
    out = f.get(v)
    out[1] = 99.0
    assert f.get(v)[1] == 2.0


def test_zero_all_and_len(mesh):
    f = Field(mesh, "p")
    f.zero_all()
    assert len(f) == mesh.count(0)
    assert f.norm("max") == 0.0


def test_set_from_coords(mesh):
    f = Field(mesh, "x")
    f.set_from_coords(lambda x: x[0])
    total = sum(f.get_scalar(v) for v in mesh.entities(0))
    # 9 grid vertices with x in {0, .5, 1} three times each.
    assert total == pytest.approx(4.5)


def test_set_all_with_entity_fn(mesh):
    f = Field(mesh, "area", entity_dim=2)
    f.set_all(lambda e: float(e.idx))
    assert f.get_scalar(next(mesh.entities(2))) == 0.0
    assert len(f) == mesh.count(2)


def test_region_field_on_face_mesh_rejected_entities(mesh):
    f = Field(mesh, "m", entity_dim=3)
    assert len(f) == 0  # fine to create; there are just no entities
    f.zero_all()
    assert len(f) == 0


def test_norms(mesh):
    f = Field(mesh, "p")
    verts = list(mesh.entities(0))
    f.set(verts[0], 3.0)
    f.set(verts[1], 4.0)
    assert f.norm("l2") == pytest.approx(5.0)
    assert f.norm("max") == pytest.approx(4.0)
    with pytest.raises(ValueError):
        f.norm("l7")


def test_get_scalar_rejects_vector_field(mesh):
    f = Field(mesh, "v", shape=2)
    v = next(mesh.entities(0))
    f.set(v, [1.0, 2.0])
    with pytest.raises(ValueError):
        f.get_scalar(v)


def test_manager_create_find_delete(mesh):
    mgr = FieldManager(mesh)
    f = mgr.create("p")
    assert mgr.create("p") is f
    assert mgr.find("p") is f
    assert "p" in mgr
    with pytest.raises(ValueError):
        mgr.create("p", shape=3)  # layout conflict
    mgr.delete("p")
    assert mgr.find("p") is None


def test_manager_names_sorted(mesh):
    mgr = FieldManager(mesh)
    mgr.create("b")
    mgr.create("a")
    assert list(mgr.names()) == ["a", "b"]
