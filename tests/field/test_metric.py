"""Tests for anisotropic metric fields and metric-driven adaptation."""

import numpy as np
import pytest

from repro.adapt import adapt
from repro.field.metric import (
    AnalyticMetric,
    MetricField,
    UniformMetric,
    boundary_layer_metric,
    mean_metric_edge_length,
)
from repro.mesh import rect_tri
from repro.mesh.quality import measure
from repro.mesh.verify import verify


def test_uniform_metric_matches_isotropic_size():
    metric = UniformMetric(0.25)
    assert metric.value([0.3, 0.7]) == pytest.approx(0.25)
    # An edge of length 0.25 has metric length 1.
    assert metric.metric_length(
        np.array([0.0, 0.0]), np.array([0.25, 0.0])
    ) == pytest.approx(1.0)


def test_uniform_metric_validation():
    with pytest.raises(ValueError):
        UniformMetric(0.0)


def test_analytic_metric_shape_check():
    bad = AnalyticMetric(lambda x: np.ones(3))
    with pytest.raises(ValueError):
        bad.matrix([0, 0])


def test_metric_length_directional():
    # Fine (0.1) along x, coarse (1.0) along y.
    metric = AnalyticMetric(lambda x: np.diag([1 / 0.1 ** 2, 1.0]))
    lx = metric.metric_length(np.zeros(2), np.array([0.5, 0.0]))
    ly = metric.metric_length(np.zeros(2), np.array([0.0, 0.5]))
    assert lx == pytest.approx(5.0)
    assert ly == pytest.approx(0.5)


def test_edge_target_turns_ratio_into_metric_length():
    from repro.field.sizefield import edge_size_ratio

    mesh = rect_tri(2)
    metric = UniformMetric(0.125)
    for edge in mesh.entities(1):
        a, b = mesh.verts_of(edge)
        expected = metric.metric_length(mesh.coords(a), mesh.coords(b))
        assert edge_size_ratio(mesh, metric, edge) == pytest.approx(expected)


def test_boundary_layer_metric_anisotropy():
    metric = boundary_layer_metric(
        wall_normal=[0, 1], wall_offset=0.0, h_normal=0.02, h_tangent=0.2
    )
    m_wall = metric.matrix(np.array([0.5, 0.0]))
    eigvals = np.sort(np.linalg.eigvalsh(m_wall))
    assert np.sqrt(1 / eigvals[0]) == pytest.approx(0.2, rel=1e-6)
    assert np.sqrt(1 / eigvals[1]) == pytest.approx(0.02, rel=1e-6)
    # Far from the wall the metric relaxes toward isotropy at h_tangent.
    m_far = metric.matrix(np.array([0.5, 10.0]))
    eig_far = np.sort(np.linalg.eigvalsh(m_far))
    assert np.sqrt(1 / eig_far[0]) == pytest.approx(0.2, rel=1e-3)
    assert np.sqrt(1 / eig_far[1]) == pytest.approx(0.2, rel=0.05)


def test_boundary_layer_validation():
    with pytest.raises(ValueError):
        boundary_layer_metric([0, 0], 0.0, 0.1, 0.2)
    with pytest.raises(ValueError):
        boundary_layer_metric([0, 1], 0.0, 0.3, 0.2)


def test_metric_adaptation_produces_anisotropic_elements():
    """Adapting to a boundary-layer metric stretches elements along x."""
    mesh = rect_tri(6)
    metric = boundary_layer_metric(
        wall_normal=[0, 1], wall_offset=0.0, h_normal=0.04, h_tangent=0.25,
        growth=1.0,
    )
    adapt(mesh, metric, max_passes=6, do_coarsen=True)
    verify(mesh, check_volumes=True)
    assert sum(measure(mesh, f) for f in mesh.entities(2)) == pytest.approx(1.0)

    # Near-wall edges: the short (y) edges outnumber and undercut the
    # long (x) edges — measure mean |dy| vs |dx| of wall-zone edges.
    dys, dxs = [], []
    for edge in mesh.entities(1):
        a, b = mesh.verts_of(edge)
        pa, pb = mesh.coords(a), mesh.coords(b)
        if max(pa[1], pb[1]) > 0.15:
            continue
        dxs.append(abs(pb[0] - pa[0]))
        dys.append(abs(pb[1] - pa[1]))
    vertical = [d for d in dys if d > 1e-12]
    assert vertical, "no wall-zone edges with vertical extent"
    # Vertical spacing is much finer than horizontal near the wall.
    assert np.mean(vertical) < 0.5 * np.mean([d for d in dxs if d > 1e-12])


def test_metric_conformity_measure():
    mesh = rect_tri(4)
    metric = UniformMetric(0.25)
    mean_length = mean_metric_edge_length(mesh, metric)
    assert 1.0 <= mean_length <= 1.45  # h=0.25 grid edges: 1.0-1.41
    from repro.mesh import Mesh

    assert mean_metric_edge_length(Mesh(), metric) == 0.0


def test_metric_base_class_abstract():
    with pytest.raises(NotImplementedError):
        MetricField().matrix([0, 0])
