"""Unit tests for the b-rep model topology."""

import pytest

from repro.gmodel import Model, ModelEntity, box_model, rect_model


def test_entity_handle_identity():
    assert ModelEntity(1, 3) == ModelEntity(1, 3)
    assert ModelEntity(1, 3) != ModelEntity(2, 3)
    assert repr(ModelEntity(2, 5)) == "G2_5"


def test_entity_dimension_validated():
    with pytest.raises(ValueError):
        ModelEntity(4, 0)
    with pytest.raises(ValueError):
        ModelEntity(-1, 0)


def test_add_is_idempotent():
    model = Model()
    a = model.add(0, 1)
    b = model.add(0, 1)
    assert a == b
    assert model.count(0) == 1


def test_adjacency_one_level():
    model = Model()
    v0 = model.add(0, 0)
    v1 = model.add(0, 1)
    e = model.add(1, 0)
    model.add_adjacency(e, v0)
    model.add_adjacency(e, v1)
    assert model.downward(e) == [v0, v1]
    assert model.upward(v0) == [e]


def test_adjacency_must_step_one_dimension():
    model = Model()
    v = model.add(0, 0)
    f = model.add(2, 0)
    with pytest.raises(ValueError):
        model.add_adjacency(f, v)


def test_adjacency_requires_known_entities():
    model = Model()
    e = model.add(1, 0)
    with pytest.raises(KeyError):
        model.downward(ModelEntity(2, 9))
    with pytest.raises(KeyError):
        model.add_adjacency(e, ModelEntity(0, 9))


def test_rect_model_counts():
    model = rect_model()
    assert model.count(0) == 4
    assert model.count(1) == 4
    assert model.count(2) == 1
    assert model.count(3) == 0
    assert model.dim() == 2
    model.check()


def test_rect_model_face_closure():
    model = rect_model()
    face = model.find(2, 0)
    closure = model.closure(face)
    assert len(closure) == 1 + 4 + 4


def test_box_model_counts():
    model = box_model()
    assert model.count(0) == 8
    assert model.count(1) == 12
    assert model.count(2) == 6
    assert model.count(3) == 1
    assert model.dim() == 3
    model.check()


def test_box_model_each_face_has_four_edges():
    model = box_model()
    for face in model.entities(2):
        assert len(model.downward(face)) == 4


def test_box_model_each_edge_bounds_two_faces():
    model = box_model()
    for edge in model.entities(1):
        assert len(model.upward(edge)) == 2


def test_box_model_each_vertex_bounds_three_edges():
    model = box_model()
    for vert in model.entities(0):
        assert len(model.upward(vert)) == 3


def test_multi_level_adjacency():
    model = box_model()
    region = model.find(3, 0)
    assert len(model.adjacent(region, 0)) == 8
    vert = model.find(0, 0)
    assert len(model.adjacent(vert, 2)) == 3
    assert model.adjacent(vert, 0) == [vert]


def test_check_detects_dangling_entity():
    model = Model()
    model.add(1, 0)  # an edge with no boundary vertices
    with pytest.raises(AssertionError):
        model.check()
