"""Tests for shape evaluators, classification, and snapping."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.gmodel import (
    BoxShape,
    PlanarPatchShape,
    PointShape,
    SegmentShape,
    box_model,
    classify_from_closure,
    classify_point,
    rect_model,
    snap_error,
    snap_to_entity,
)

coords = st.floats(min_value=-2.0, max_value=3.0, allow_nan=False)


def test_point_shape():
    p = PointShape([1.0, 2.0])
    assert p.contains([1.0, 2.0])
    assert not p.contains([1.1, 2.0])
    assert np.allclose(p.project([5.0, 5.0]), [1.0, 2.0])


def test_segment_projection_clamps():
    s = SegmentShape([0, 0], [1, 0])
    assert np.allclose(s.project([0.5, 1.0]), [0.5, 0.0])
    assert np.allclose(s.project([-3.0, 0.5]), [0.0, 0.0])
    assert np.allclose(s.project([9.0, -0.5]), [1.0, 0.0])
    assert s.contains([0.25, 0.0])
    assert not s.contains([0.25, 0.01])


def test_segment_degenerate_rejected():
    with pytest.raises(ValueError):
        SegmentShape([1, 1], [1, 1])


def test_planar_patch():
    patch = PlanarPatchShape(axis=2, value=1.0, lo=[0, 0, 1], hi=[2, 2, 1])
    assert patch.contains([1.0, 1.0, 1.0])
    assert not patch.contains([1.0, 1.0, 0.5])
    assert np.allclose(patch.project([3.0, 1.0, 0.0]), [2.0, 1.0, 1.0])


def test_box_shape_contains_and_project():
    box = BoxShape([0, 0, 0], [1, 1, 1])
    assert box.contains([0.5, 0.5, 0.5])
    assert box.contains([0, 0, 0])
    assert not box.contains([1.5, 0.5, 0.5])
    assert np.allclose(box.project([2, -1, 0.5]), [1, 0, 0.5])


def test_box_shape_validates_corners():
    with pytest.raises(ValueError):
        BoxShape([1, 1, 1], [0, 2, 2])


square_coord = st.one_of(
    st.just(0.0),
    st.just(1.0),
    st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
    st.floats(min_value=1.1, max_value=3.0, allow_nan=False),
    st.floats(min_value=-2.0, max_value=-0.1, allow_nan=False),
)


@given(x=square_coord, y=square_coord)
def test_rect_classification_dimension_rules(x, y):
    """Any point inside the unit square classifies; boundary gets dim<2."""
    model = rect_model()
    g = classify_point(model, [x, y], tol=1e-9)
    inside = 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0
    if not inside:
        assert g is None
        return
    on_x = x in (0.0, 1.0)
    on_y = y in (0.0, 1.0)
    if on_x and on_y:
        assert g.dim == 0
    elif on_x or on_y:
        assert g.dim == 1
    else:
        assert g.dim == 2


def test_rect_classification_specific_entities():
    model = rect_model()
    assert classify_point(model, [0.0, 0.0]).tag == 0  # corner (x-,y-)
    assert classify_point(model, [0.5, 0.0]) == model.find(1, 0)  # bottom
    assert classify_point(model, [1.0, 0.5]) == model.find(1, 1)  # right
    assert classify_point(model, [0.5, 0.5]) == model.find(2, 0)


def test_box_classification_dimensions():
    model = box_model()
    assert classify_point(model, [0, 0, 0]).dim == 0
    assert classify_point(model, [0.5, 0, 0]).dim == 1
    assert classify_point(model, [0.5, 0.5, 0]).dim == 2
    assert classify_point(model, [0.5, 0.5, 0.5]).dim == 3
    assert classify_point(model, [2, 0, 0]) is None


def test_classify_from_closure_face_dominates():
    model = rect_model()
    bottom = model.find(1, 0)
    face = model.find(2, 0)
    # Edge between a face-interior vertex and a boundary-edge vertex: face.
    assert classify_from_closure(model, [bottom, face]) == face
    # Edge along the bottom between two bottom-classified vertices: bottom.
    assert classify_from_closure(model, [bottom, bottom]) == bottom


def test_classify_from_closure_vertex_and_edge():
    model = rect_model()
    corner = model.find(0, 0)
    bottom = model.find(1, 0)
    assert classify_from_closure(model, [corner, bottom]) == bottom


def test_classify_from_closure_two_edges_of_one_face():
    model = rect_model()
    bottom = model.find(1, 0)
    right = model.find(1, 1)
    # A mesh edge crossing from the bottom to the right boundary is interior.
    assert classify_from_closure(model, [bottom, right]) == model.find(2, 0)


def test_classify_from_closure_rejects_empty():
    with pytest.raises(ValueError):
        classify_from_closure(rect_model(), [])


def test_snap_to_entity_projects():
    model = rect_model()
    bottom = model.find(1, 0)
    snapped = snap_to_entity(model, bottom, [0.5, 0.2])
    assert np.allclose(snapped, [0.5, 0.0])
    assert snap_error(model, bottom, [0.5, 0.2]) == pytest.approx(0.2)
    assert snap_error(model, bottom, snapped) == pytest.approx(0.0)


@given(x=coords, y=coords, z=coords)
def test_snap_idempotent_on_box_faces(x, y, z):
    model = box_model()
    face = model.find(2, 0)  # x == 0 face
    once = snap_to_entity(model, face, [x, y, z])
    twice = snap_to_entity(model, face, once)
    assert np.allclose(once, twice)
    assert once[0] == 0.0
