"""Tests for the cylinder b-rep (curved classification and snapping)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.gmodel import classify_point, snap_to_entity
from repro.gmodel.cylinder import (
    DiskShape,
    LateralShape,
    RimShape,
    SolidCylinderShape,
    cylinder_model,
)

angle = st.floats(0.0, 2 * np.pi)
height = st.floats(0.0, 1.0)


def test_model_topology():
    model = cylinder_model()
    assert model.count(0) == 2
    assert model.count(1) == 2
    assert model.count(2) == 3
    assert model.count(3) == 1
    model.check()
    # The lateral face is bounded by both rims.
    lateral = model.find(2, 2)
    assert len(model.downward(lateral)) == 2


def test_classification_by_region():
    model = cylinder_model(radius=1.0, height=2.0)
    assert classify_point(model, [0.0, 0.0, 1.0]).dim == 3
    assert classify_point(model, [0.5, 0.0, 1.0]).dim == 3


def test_classification_on_faces():
    model = cylinder_model()
    assert classify_point(model, [0.2, 0.1, 0.0]) == model.find(2, 0)
    assert classify_point(model, [0.2, 0.1, 1.0]) == model.find(2, 1)
    lateral_point = [1.0, 0.0, 0.5]
    assert classify_point(model, lateral_point) == model.find(2, 2)


def test_classification_on_rims():
    model = cylinder_model()
    theta = 1.1
    p = [np.cos(theta), np.sin(theta), 0.0]
    assert classify_point(model, p) == model.find(1, 0)
    p_top = [np.cos(theta), np.sin(theta), 1.0]
    assert classify_point(model, p_top) == model.find(1, 1)


def test_classification_outside():
    model = cylinder_model()
    assert classify_point(model, [2.0, 0.0, 0.5]) is None
    assert classify_point(model, [0.0, 0.0, 1.5]) is None


@given(theta=angle, z=height)
def test_lateral_snap_lands_on_wall(theta, z):
    model = cylinder_model()
    lateral = model.find(2, 2)
    # Perturb a wall point radially; snapping restores the radius.
    p = [1.3 * np.cos(theta), 1.3 * np.sin(theta), z]
    snapped = snap_to_entity(model, lateral, p)
    assert np.hypot(snapped[0], snapped[1]) == pytest.approx(1.0)
    assert snapped[2] == pytest.approx(z)


@given(theta=angle)
def test_rim_snap(theta):
    model = cylinder_model()
    rim = model.find(1, 0)
    p = [0.5 * np.cos(theta), 0.5 * np.sin(theta), 0.7]
    snapped = snap_to_entity(model, rim, p)
    assert np.hypot(snapped[0], snapped[1]) == pytest.approx(1.0)
    assert snapped[2] == pytest.approx(0.0)


def test_disk_projection_clamps_radius():
    disk = DiskShape(0.0, 1.0)
    assert np.allclose(disk.project([3.0, 0.0, 5.0]), [1.0, 0.0, 0.0])
    assert disk.contains([0.5, 0.5, 0.0])
    assert not disk.contains([0.5, 0.5, 0.2])


def test_lateral_axis_degenerate_point():
    lateral = LateralShape(1.0, 0.0, 1.0)
    snapped = lateral.project([0.0, 0.0, 0.5])
    assert np.hypot(snapped[0], snapped[1]) == pytest.approx(1.0)


def test_solid_contains():
    solid = SolidCylinderShape(1.0, 0.0, 2.0)
    assert solid.contains([0.5, 0.5, 1.0])
    assert not solid.contains([1.2, 0.0, 1.0])
    assert not solid.contains([0.0, 0.0, 2.5])


def test_shape_validation():
    with pytest.raises(ValueError):
        DiskShape(0.0, -1.0)
    with pytest.raises(ValueError):
        LateralShape(1.0, 1.0, 0.0)


def test_refinement_snaps_onto_curved_wall():
    """An edge classified on the lateral face splits onto the true wall."""
    from repro.adapt import split_edge
    from repro.mesh import TET, Mesh

    model = cylinder_model()
    mesh = Mesh(model)
    lateral = model.find(2, 2)
    region = model.find(3, 0)
    # A tet with one face's vertices on the wall (a chord of the circle).
    a = mesh.create_vertex([1.0, 0.0, 0.2], model.find(2, 2))
    b = mesh.create_vertex([0.0, 1.0, 0.2], model.find(2, 2))
    c = mesh.create_vertex([np.sqrt(0.5), np.sqrt(0.5), 0.8], lateral)
    d = mesh.create_vertex([0.0, 0.0, 0.5], region)
    tet = mesh.create(TET, [a, b, c, d], region)
    chord = mesh.find(1, [a, b])
    mesh.set_classification(chord, lateral)
    mid = split_edge(mesh, chord)
    # Without snapping the midpoint sits at radius ~0.707; with it: 1.
    assert np.hypot(*mesh.coords(mid)[:2]) == pytest.approx(1.0)
    assert mesh.classification(mid) == lateral
