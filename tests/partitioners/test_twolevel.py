"""Tests for two-level architecture-aware partitioning."""

import numpy as np
import pytest

from repro.mesh import box_tet, rect_tri
from repro.parallel import MachineTopology
from repro.partitioners import (
    boundary_locality,
    entity_counts_from_assignment,
    imbalance,
    partition,
    two_level_partition,
)


def test_part_count_and_block_mapping():
    mesh = rect_tri(8)
    topo = MachineTopology(nodes=3, cores_per_node=2)
    a = two_level_partition(mesh, topo, seed=1)
    assert set(a.tolist()) <= set(range(6))
    # Each node's parts form one contiguous id block (the topology's
    # block mapping): node of part p is p // cores.
    node_a = partition(mesh, 3, method="hypergraph", seed=1)
    for element in range(len(a)):
        assert a[element] // 2 == node_a[element]


def test_single_core_reduces_to_global_partition():
    mesh = rect_tri(6)
    topo = MachineTopology(nodes=4, cores_per_node=1)
    a = two_level_partition(mesh, topo, seed=2)
    base = partition(mesh, 4, method="hypergraph", seed=2)
    assert np.array_equal(a, base)


def test_balance_carries_through_both_levels():
    mesh = box_tet(6)
    topo = MachineTopology(nodes=2, cores_per_node=4)
    a = two_level_partition(mesh, topo, seed=1, eps=0.05)
    imb = imbalance(entity_counts_from_assignment(mesh, a, 8))
    assert imb[3] < 0.15


def test_locality_by_construction():
    """Two-level locality survives id permutations that destroy flat's."""
    mesh = box_tet(6)
    topo = MachineTopology(nodes=4, cores_per_node=4)
    a2 = two_level_partition(mesh, topo, seed=1)
    flat = partition(mesh, 16, method="hypergraph", seed=1)
    rng = np.random.default_rng(0)
    permuted = rng.permutation(16)[flat]

    loc2 = boundary_locality(mesh, a2, topo)
    locp = boundary_locality(mesh, permuted, topo)
    assert loc2["on_node_fraction"] > locp["on_node_fraction"] + 0.15
    # And it stays comparable to the (luckily-ordered) flat partition.
    locf = boundary_locality(mesh, flat, topo)
    assert loc2["on_node_fraction"] > locf["on_node_fraction"] - 0.10


def test_boundary_locality_extremes():
    mesh = rect_tri(4)
    one_node = MachineTopology(nodes=1, cores_per_node=4)
    a = partition(mesh, 4, method="rcb")
    loc = boundary_locality(mesh, a, one_node)
    assert loc["on_node_fraction"] == 1.0
    all_nodes = MachineTopology(nodes=4, cores_per_node=1)
    loc = boundary_locality(mesh, a, all_nodes)
    assert loc["on_node_fraction"] == 0.0


def test_boundary_locality_unpartitioned():
    mesh = rect_tri(3)
    topo = MachineTopology(nodes=2, cores_per_node=1)
    loc = boundary_locality(mesh, np.zeros(mesh.count(2), dtype=int), topo)
    assert loc["on_node_fraction"] == 1.0
    assert loc["off_node_copies"] == 0


def test_distributes_with_matching_topology():
    from repro.partition import distribute

    mesh = rect_tri(6)
    topo = MachineTopology(nodes=2, cores_per_node=3)
    a = two_level_partition(mesh, topo, seed=3)
    dm = distribute(mesh, a, nparts=6, topology=topo)
    dm.verify()
    # On-node migration generates no off-node element traffic.
    from repro.parallel import PerfCounters

    assert dm.entity_counts()[:, 2].sum() == mesh.count(2)
