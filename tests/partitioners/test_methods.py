"""Tests for the partitioning methods: RCB, RIB, FM, multilevel, PHG."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh import box_tet, rect_tri
from repro.partitioners import (
    cut_weight,
    dual_graph,
    entity_counts_from_assignment,
    fm_refine,
    imbalance,
    multilevel_bisect,
    partition,
    phg,
    rcb,
    rcb_points,
    recursive_bisection,
    rib_points,
)


def balance_ok(assignment, nparts, eps=0.12):
    sizes = np.bincount(assignment, minlength=nparts)
    return sizes.max() <= np.ceil(len(assignment) / nparts * (1 + eps))


# -- RCB / RIB -----------------------------------------------------------------


def test_rcb_points_exact_split():
    points = np.column_stack([np.arange(8, dtype=float), np.zeros(8)])
    a = rcb_points(points, 2)
    assert (a[:4] == a[0]).all()
    assert (a[4:] == a[4]).all()
    assert a[0] != a[4]


def test_rcb_respects_weights():
    points = np.column_stack([np.arange(4, dtype=float), np.zeros(4)])
    weights = np.array([3.0, 1.0, 1.0, 1.0])
    a = rcb_points(points, 2, weights)
    # The heavy first point alone balances the other three.
    assert (a == np.array([0, 1, 1, 1])).all() or (a == np.array([1, 0, 0, 0])).all()


@settings(max_examples=10, deadline=None)
@given(nparts=st.integers(min_value=1, max_value=7), seed=st.integers(0, 5))
def test_rcb_points_all_parts_used(nparts, seed):
    rng = np.random.default_rng(seed)
    points = rng.random((50, 3))
    a = rcb_points(points, nparts)
    assert set(a.tolist()) == set(range(nparts))
    assert balance_ok(a, nparts, eps=0.3)


def test_rib_points_splits_along_principal_axis():
    rng = np.random.default_rng(0)
    # Elongated diagonal cloud: RIB must cut across the diagonal.
    t = np.linspace(0, 1, 100)
    points = np.column_stack([t, t]) + rng.normal(0, 0.01, (100, 2))
    a = rib_points(points, 2)
    left = points[a == a[0]]
    right = points[a != a[0]]
    assert abs(len(left) - len(right)) <= 2
    assert left[:, 0].mean() != pytest.approx(right[:, 0].mean(), abs=0.05)


def test_rcb_mesh_interface():
    mesh = rect_tri(4)
    a = rcb(mesh, 4)
    assert len(a) == mesh.count(2)
    assert balance_ok(a, 4, eps=0.01)


def test_geometric_invalid_nparts():
    with pytest.raises(ValueError):
        rcb_points(np.zeros((4, 2)), 0)


# -- FM ---------------------------------------------------------------------------


def path_graph(n):
    xadj = [0]
    adjncy = []
    for i in range(n):
        if i > 0:
            adjncy.append(i - 1)
        if i < n - 1:
            adjncy.append(i + 1)
        xadj.append(len(adjncy))
    return np.asarray(xadj), np.asarray(adjncy)


def test_fm_improves_alternating_partition():
    xadj, adjncy = path_graph(16)
    weights = np.ones(16)
    bad = np.arange(16) % 2  # worst possible: cut at every edge
    refined = fm_refine(xadj, adjncy, weights, bad.astype(np.int64))
    before = cut_weight(xadj, adjncy, None, bad)
    after = cut_weight(xadj, adjncy, None, refined)
    assert after < before
    assert after <= 3
    sizes = np.bincount(refined, minlength=2)
    assert sizes.max() <= 16 * 0.5 * 1.05 + 1


def test_fm_keeps_optimal_partition():
    xadj, adjncy = path_graph(10)
    weights = np.ones(10)
    optimal = (np.arange(10) >= 5).astype(np.int64)
    refined = fm_refine(xadj, adjncy, weights, optimal)
    assert cut_weight(xadj, adjncy, None, refined) == 1


def test_fm_respects_balance_tolerance():
    xadj, adjncy = path_graph(20)
    weights = np.ones(20)
    side = (np.arange(20) >= 10).astype(np.int64)
    refined = fm_refine(xadj, adjncy, weights, side, eps=0.05)
    sizes = np.bincount(refined, minlength=2)
    assert sizes.max() <= 10 * 1.05 + 1e-9


# -- multilevel / recursive ---------------------------------------------------------


def test_multilevel_bisect_grid():
    mesh = rect_tri(8)
    graph = dual_graph(mesh)
    side = multilevel_bisect(
        graph.xadj, graph.adjncy, graph.weights.astype(float)
    )
    sizes = np.bincount(side, minlength=2)
    assert sizes.min() > 0
    assert sizes.max() <= graph.n * 0.5 * 1.05 + 1
    # A good bisection of a 2D grid cuts O(sqrt(n)) edges.
    cut = cut_weight(graph.xadj, graph.adjncy, None, side)
    assert cut <= 4 * np.sqrt(graph.n)


@settings(max_examples=6, deadline=None)
@given(nparts=st.integers(min_value=2, max_value=9))
def test_recursive_bisection_part_count_and_balance(nparts):
    mesh = rect_tri(8)
    graph = dual_graph(mesh)
    a = recursive_bisection(
        graph.xadj, graph.adjncy, graph.weights.astype(float), nparts
    )
    assert set(a.tolist()) == set(range(nparts))
    assert balance_ok(a, nparts)


def test_phg_balances_and_cuts():
    mesh = rect_tri(8)
    a = phg(mesh, 4, seed=2)
    assert balance_ok(a, 4)
    graph = dual_graph(mesh)
    # Must beat a random partition's cut by a wide margin.
    rng = np.random.default_rng(0)
    random_cut = graph.edge_cut(rng.integers(0, 4, graph.n))
    assert graph.edge_cut(a) < random_cut / 2


def test_phg_connectivity_refinement_does_not_hurt():
    from repro.partitioners import element_hypergraph

    mesh = rect_tri(8)
    raw = partition(mesh, 4, method="graph", seed=3)
    refined = phg(mesh, 4, seed=3)
    hg = element_hypergraph(mesh)
    assert hg.connectivity_cost(refined) <= hg.connectivity_cost(raw)


def test_partition_facade_methods():
    mesh = rect_tri(6)
    for method in ("hypergraph", "graph", "rcb", "rib"):
        a = partition(mesh, 3, method=method)
        assert len(a) == mesh.count(2)
        assert set(a.tolist()) <= {0, 1, 2}
    with pytest.raises(ValueError):
        partition(mesh, 3, method="magic")
    with pytest.raises(ValueError):
        partition(mesh, 0)


def test_partition_single_part():
    mesh = rect_tri(2)
    assert (partition(mesh, 1) == 0).all()


# -- assignment metrics ----------------------------------------------------------


def test_entity_counts_match_distribution():
    from repro.partition import distribute

    mesh = box_tet(2)
    a = partition(mesh, 3, method="rcb")
    counts = entity_counts_from_assignment(mesh, a)
    dm = distribute(mesh, a)
    assert np.array_equal(counts, dm.entity_counts())


def test_imbalance_metric():
    counts = np.array([[10, 0, 0, 0], [20, 0, 0, 0]])
    imb = imbalance(counts)
    assert imb[0] == pytest.approx(20 / 15 - 1)
    assert imb[1] == 0.0
    fixed = imbalance(counts, base_mean=np.array([10.0, 1, 1, 1]))
    assert fixed[0] == pytest.approx(1.0)


def test_3d_partition_quality_signature():
    """The PHG baseline balances regions but not vertices (T0 signature)."""
    mesh = box_tet(6)
    a = partition(mesh, 8, method="hypergraph", seed=1)
    imb = imbalance(entity_counts_from_assignment(mesh, a))
    assert imb[3] < 0.10  # regions tightly balanced
    assert imb[0] > imb[3]  # vertices worse than regions
