"""Tests for graph/hypergraph extraction and cut metrics."""

import numpy as np
import pytest

from repro.mesh import Mesh, box_tet, rect_tri
from repro.partitioners import dual_graph, element_centroids, element_hypergraph


def test_dual_graph_two_tris():
    mesh = rect_tri(1)
    graph = dual_graph(mesh)
    assert graph.n == 2
    assert graph.degree(0) == 1
    assert list(graph.neighbors(0)) == [1]
    assert list(graph.neighbors(1)) == [0]


def test_dual_graph_symmetry_and_degree_bound():
    mesh = rect_tri(4)
    graph = dual_graph(mesh)
    for i in range(graph.n):
        assert graph.degree(i) <= 3  # a triangle has three edges
        for j in graph.neighbors(i):
            assert i in graph.neighbors(int(j))


def test_dual_graph_3d_degree_bound():
    mesh = box_tet(2)
    graph = dual_graph(mesh)
    assert graph.n == mesh.count(3)
    assert max(graph.degree(i) for i in range(graph.n)) <= 4


def test_dual_graph_edge_count_matches_interior_facets():
    mesh = rect_tri(3)
    graph = dual_graph(mesh)
    interior_edges = sum(
        1 for e in mesh.entities(1) if len(mesh.up(e)) == 2
    )
    assert len(graph.adjncy) == 2 * interior_edges


def test_edge_cut():
    mesh = rect_tri(2)
    graph = dual_graph(mesh)
    same = np.zeros(graph.n, dtype=np.int64)
    assert graph.edge_cut(same) == 0
    alternating = np.arange(graph.n) % 2
    assert graph.edge_cut(alternating) > 0


def test_weights_default_and_custom():
    mesh = rect_tri(2)
    graph = dual_graph(mesh)
    assert (graph.weights == 1).all()
    custom = np.arange(graph.n)
    graph2 = dual_graph(mesh, custom)
    assert (graph2.weights == custom).all()
    with pytest.raises(ValueError):
        dual_graph(mesh, np.ones(3))


def test_dual_graph_requires_elements():
    with pytest.raises(ValueError):
        dual_graph(Mesh())


def test_hypergraph_shape():
    mesh = rect_tri(2)
    hg = element_hypergraph(mesh)
    assert hg.n == mesh.count(2)
    assert hg.nedges == mesh.count(0)
    # Every pin references a valid element.
    assert hg.pins.min() >= 0 and hg.pins.max() < hg.n


def test_hypergraph_connectivity_metric():
    mesh = rect_tri(2)
    hg = element_hypergraph(mesh)
    same = np.zeros(hg.n, dtype=np.int64)
    assert hg.connectivity_cost(same) == 0
    # Two halves: each vertex on the interface contributes 1.
    halves = (np.arange(hg.n) >= hg.n // 2).astype(np.int64)
    assert hg.connectivity_cost(halves) > 0


def test_element_centroids():
    mesh = rect_tri(1)
    elements, centroids = element_centroids(mesh)
    assert len(elements) == 2
    assert centroids.shape == (2, 3)
    assert np.allclose(centroids[0], [2 / 3, 1 / 3, 0])
