"""Mutation tests: corrupt the SoA arrays and prove ``verify`` catches it.

The verifier is what every other test trusts, so each representation
invariant gets a direct corruption injected behind the API (straight into
the core arrays) and an assertion that ``verify`` reports it *naming the
corrupted entity*.  Covers the four storage-level failure classes of the
CSR core: dangling handles inside adjacency rows, unsorted upward rows,
orphaned entities, and free-list corruption.
"""

import re

import pytest

from repro.mesh import rect_tri
from repro.mesh.verify import MeshInvalidError, verify


@pytest.fixture
def mesh():
    return rect_tri(3)


def test_clean_mesh_verifies(mesh):
    verify(mesh)


def test_detects_dangling_handle_in_csr_row(mesh):
    # Kill an edge behind the facade's back: faces whose downward rows
    # still reference it now hold a dangling handle.
    core = mesh.core
    victim = int(core.live_ids(1)[0])
    face = int(core.up_row(1, victim)[0])
    core.nup[1][victim] = 0  # sidestep the destroy-time guard
    core.destroy(1, victim)
    with pytest.raises(
        MeshInvalidError, match=rf"M2_{face}: dead downward entity {victim}\b"
    ):
        verify(mesh)


def test_detects_unsorted_upward_row(mesh):
    core = mesh.core
    vertex = next(
        int(v) for v in core.live_ids(0) if core.nup[0][v] >= 2
    )
    core.up[0][vertex, [0, 1]] = core.up[0][vertex, [1, 0]]
    with pytest.raises(
        MeshInvalidError,
        match=rf"M0_{vertex}: upward row not sorted ascending",
    ):
        verify(mesh)


def test_detects_orphan_vertex(mesh):
    orphan = mesh.create_vertex([9.0, 9.0, 0.0])
    with pytest.raises(
        MeshInvalidError,
        match=rf"M0_{orphan.idx}: dangles \(bounds nothing\)",
    ):
        verify(mesh)
    # Orphans are legal only when explicitly allowed (classification is
    # skipped too: the fresh vertex has no geometric home yet).
    verify(mesh, allow_dangling=True, check_classification=False)


def test_detects_live_entity_on_free_list(mesh):
    core = mesh.core
    victim = int(core.live_ids(0)[3])
    core.free[0].append(victim)
    with pytest.raises(
        MeshInvalidError, match=rf"M0_{victim}: live entity on the free-list"
    ):
        verify(mesh)


def test_detects_dead_slot_missing_from_free_list(mesh):
    # The inverse staleness: a slot dies but never reaches the free-list,
    # so its handle can never be recycled.
    core = mesh.core
    element = int(core.live_ids(2)[0])
    for edge in core.down_row(2, element):
        core.remove_up(1, edge, element)
    core.destroy(2, element)
    assert core.free[2].pop() == element
    with pytest.raises(
        MeshInvalidError,
        match=rf"M2_{element}: dead slot missing from the free-list",
    ):
        verify(mesh)


def test_detects_duplicate_free_list_entry(mesh):
    core = mesh.core
    element = int(core.live_ids(2)[0])
    for edge in core.down_row(2, element):
        core.remove_up(1, edge, element)
    core.destroy(2, element)
    core.free[2].append(element)
    with pytest.raises(
        MeshInvalidError, match=rf"M2_{element}: duplicated on the free-list"
    ):
        verify(mesh)


def test_error_message_names_every_entity(mesh):
    # Multiple corruptions: the report lists each by name, capped.
    core = mesh.core
    victims = [int(v) for v in core.live_ids(0)[:3]]
    for v in victims:
        core.free[0].append(v)
    with pytest.raises(MeshInvalidError) as excinfo:
        verify(mesh)
    named = set(re.findall(r"M0_(\d+): live entity", str(excinfo.value)))
    assert named == {str(v) for v in victims}
