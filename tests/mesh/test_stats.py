"""Tests for mesh statistics and memory estimation."""

import pytest

from repro.mesh import (
    Mesh,
    box_tet,
    edge_length_histogram,
    memory_estimate,
    mesh_stats,
    rect_tri,
)


def test_memory_estimate_positive_and_monotone():
    small = memory_estimate(rect_tri(2))
    large = memory_estimate(rect_tri(8))
    assert 0 < small["total_bytes"] < large["total_bytes"]
    assert small["adjacency_ids"] > 0
    assert small["total_bytes"] == (
        small["adjacency_bytes"] + small["coordinate_bytes"]
    )


def test_memory_estimate_empty_mesh():
    est = memory_estimate(Mesh())
    assert est["total_bytes"] == 0


def test_mesh_stats_structured_grid():
    stats = mesh_stats(rect_tri(4))
    assert stats.counts == (25, 56, 32, 0)
    # Structured grid interior vertices: 4 axis edges + 2 diagonals.
    assert stats.max_vertex_valence == 6
    assert 3.0 < stats.mean_vertex_valence < 6.0
    assert stats.min_edge_length == pytest.approx(0.25)
    assert stats.max_edge_length == pytest.approx(0.25 * 2 ** 0.5)
    assert "verts=25" in stats.summary()


def test_mesh_stats_3d():
    stats = mesh_stats(box_tet(2))
    assert stats.counts[3] == 48
    assert stats.max_vertex_valence > stats.counts[1] / stats.counts[0]


def test_mesh_stats_empty():
    stats = mesh_stats(Mesh())
    assert stats.mean_vertex_valence == 0.0
    assert stats.mean_edge_length == 0.0


def test_edge_length_histogram():
    hist = edge_length_histogram(rect_tri(4), bins=5)
    assert len(hist["counts"]) == 5
    assert len(hist["edges"]) == 6
    assert sum(hist["counts"]) == 56


def test_edge_length_histogram_empty():
    assert edge_length_histogram(Mesh()) == {"edges": [], "counts": []}
