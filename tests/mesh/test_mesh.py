"""Tests for the central Mesh class: creation, adjacency, modification."""

import numpy as np
import pytest

from repro.gmodel import ModelEntity, rect_model
from repro.mesh import EDGE, QUAD, TET, TRI, Ent, Mesh
from repro.mesh.verify import MeshInvalidError, verify


def two_tris():
    """Two triangles sharing an edge: the smallest interesting mesh."""
    mesh = Mesh()
    v = [
        mesh.create_vertex([0, 0]),
        mesh.create_vertex([1, 0]),
        mesh.create_vertex([1, 1]),
        mesh.create_vertex([0, 1]),
    ]
    t0 = mesh.create(TRI, [v[0], v[1], v[2]])
    t1 = mesh.create(TRI, [v[0], v[2], v[3]])
    return mesh, v, t0, t1


def single_tet():
    mesh = Mesh()
    v = [
        mesh.create_vertex([0, 0, 0]),
        mesh.create_vertex([1, 0, 0]),
        mesh.create_vertex([0, 1, 0]),
        mesh.create_vertex([0, 0, 1]),
    ]
    tet = mesh.create(TET, v)
    return mesh, v, tet


def test_create_vertex_and_coords():
    mesh = Mesh()
    v = mesh.create_vertex([1.5, 2.5])
    assert v == Ent(0, 0)
    assert np.allclose(mesh.coords(v), [1.5, 2.5, 0.0])
    mesh.set_coords(v, [3.0, 4.0, 5.0])
    assert np.allclose(mesh.coords(v), [3.0, 4.0, 5.0])


def test_triangle_creates_edges():
    mesh, v, t0, t1 = two_tris()
    assert mesh.count(0) == 4
    assert mesh.count(1) == 5  # 4 boundary + 1 shared diagonal
    assert mesh.count(2) == 2
    verify(mesh, check_classification=False)


def test_create_is_find_or_create():
    mesh, v, t0, _ = two_tris()
    again = mesh.create(TRI, [v[0], v[1], v[2]])
    assert again == t0
    # Same vertices in a different rotation also finds the entity.
    rotated = mesh.create(TRI, [v[1], v[2], v[0]])
    assert rotated == t0


def test_create_rejects_repeated_vertices():
    mesh = Mesh()
    a = mesh.create_vertex([0, 0])
    b = mesh.create_vertex([1, 0])
    with pytest.raises(ValueError):
        mesh.create(TRI, [a, b, a])


def test_create_rejects_wrong_vertex_count():
    mesh = Mesh()
    a = mesh.create_vertex([0, 0])
    b = mesh.create_vertex([1, 0])
    with pytest.raises(ValueError):
        mesh.create(TRI, [a, b])


def test_create_rejects_dead_vertex():
    mesh = Mesh()
    a = mesh.create_vertex([0, 0])
    b = mesh.create_vertex([1, 0])
    c = mesh.create_vertex([0, 1])
    mesh.destroy(c)
    with pytest.raises(KeyError):
        mesh.create(TRI, [a, b, c])


def test_downward_adjacency_order():
    mesh, v, t0, _ = two_tris()
    edges = mesh.down(t0)
    assert len(edges) == 3
    # Canonical edge order: (v0,v1), (v1,v2), (v2,v0).
    assert mesh.verts_of(edges[0]) == [v[0], v[1]]
    assert mesh.verts_of(edges[1]) == [v[1], v[2]]
    assert mesh.verts_of(edges[2]) == [v[2], v[0]]


def test_upward_adjacency():
    mesh, v, t0, t1 = two_tris()
    diagonal = mesh.find(1, [v[0], v[2]])
    assert diagonal is not None
    assert set(mesh.up(diagonal)) == {t0, t1}
    assert mesh.up(t0) == []


def test_vertex_to_faces_multilevel():
    mesh, v, t0, t1 = two_tris()
    assert set(mesh.adjacent(v[0], 2)) == {t0, t1}
    assert set(mesh.adjacent(v[1], 2)) == {t0}


def test_region_adjacency():
    mesh, v, tet = single_tet()
    assert mesh.count(1) == 6
    assert mesh.count(2) == 4
    assert len(mesh.adjacent(tet, 1)) == 6
    assert len(mesh.adjacent(tet, 0)) == 4
    assert mesh.adjacent(v[0], 3) == [tet]
    verify(mesh, check_classification=False)


def test_adjacent_same_dim_is_identity():
    mesh, _, t0, _ = two_tris()
    assert mesh.adjacent(t0, 2) == [t0]


def test_second_adjacent_via_edges():
    mesh, v, t0, t1 = two_tris()
    assert mesh.second_adjacent(t0, 1, 2) == [t1]
    assert mesh.second_adjacent(t1, 1, 2) == [t0]


def test_second_adjacent_excludes_self():
    mesh, v, t0, _ = two_tris()
    assert t0 not in mesh.second_adjacent(t0, 0, 2)


def test_destroy_face_cascade():
    mesh, v, t0, t1 = two_tris()
    mesh.destroy(t0, cascade=True)
    # The shared diagonal and all of t1's entities must survive.
    assert mesh.count(2) == 1
    assert mesh.count(1) == 3
    assert mesh.count(0) == 3  # v[1] was only used by t0
    verify(mesh, check_classification=False)


def test_destroy_without_cascade_leaves_boundary():
    mesh, v, t0, t1 = two_tris()
    mesh.destroy(t1)
    assert mesh.count(1) == 5  # edges retained
    verify(mesh, check_classification=False, allow_dangling=True)
    with pytest.raises(MeshInvalidError):
        verify(mesh, check_classification=False, allow_dangling=False)


def test_destroy_bounded_entity_rejected():
    mesh, v, t0, _ = two_tris()
    edge = mesh.down(t0)[0]
    with pytest.raises(ValueError):
        mesh.destroy(edge)
    with pytest.raises(ValueError):
        mesh.destroy(v[0])


def test_find_region_by_verts():
    mesh, v, tet = single_tet()
    assert mesh.find(3, v) == tet
    assert mesh.find(3, [v[0], v[1], v[2], mesh.create_vertex([9, 9, 9])]) is None


def test_counts_and_dim():
    mesh, *_ = two_tris()
    assert mesh.dim() == 2
    mesh3, *_ = single_tet()
    assert mesh3.dim() == 3
    assert Mesh().dim() == 0


def test_centroid():
    mesh, v, t0, _ = two_tris()
    assert np.allclose(mesh.centroid(t0), [2 / 3, 1 / 3, 0])


def test_classification_dimension_rule():
    mesh = Mesh()
    v = mesh.create_vertex([0, 0])
    face_g = ModelEntity(2, 0)
    vert_g = ModelEntity(0, 0)
    mesh.set_classification(v, face_g)  # vertex on model face: fine
    assert mesh.classification(v) == face_g
    mesh2, _, t0, _ = two_tris()
    with pytest.raises(ValueError):
        mesh2.set_classification(t0, vert_g)  # face on model vertex: no


def test_classify_against_model():
    mesh, v, t0, t1 = two_tris()
    model = rect_model()
    mesh.classify_against(model)
    assert mesh.classification(v[0]).dim == 0
    diagonal = mesh.find(1, [v[0], v[2]])
    assert mesh.classification(diagonal) == model.find(2, 0)
    verify(mesh)


def test_entity_counts_tuple():
    mesh, *_ = single_tet()
    assert mesh.entity_counts() == (4, 6, 4, 1)


def test_quad_mesh():
    mesh = Mesh()
    v = [mesh.create_vertex(p) for p in [(0, 0), (1, 0), (1, 1), (0, 1)]]
    q = mesh.create(QUAD, v)
    assert mesh.count(1) == 4
    assert mesh.etype(q) == QUAD
    assert mesh.type_name(q) == "quad"
    verify(mesh, check_classification=False)


def test_coords_view_is_readonly():
    mesh, *_ = two_tris()
    view = mesh.coords_view()
    with pytest.raises(ValueError):
        view[0, 0] = 99.0


def test_tag_shortcut_roundtrip():
    mesh, v, t0, _ = two_tris()
    tag = mesh.tag("weight")
    tag.set(t0, 2.5)
    assert mesh.tag("weight").get(t0) == 2.5


def test_destroy_drops_tag_and_set_membership():
    mesh, v, t0, t1 = two_tris()
    tag = mesh.tag("w")
    tag.set(t0, 1)
    group = mesh.sets.create("g")
    group.add(t0)
    mesh.destroy(t0, cascade=True)
    assert not tag.has(t0)
    assert t0 not in group
