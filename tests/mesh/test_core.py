"""Unit tests for the SoA/CSR mesh core and its handle free-list.

The facade tests exercise the core through ``Mesh``; these pin the core's
own contracts — handle recycling order, padded-row accessors, sorted upward
rows, CSR exports, and the vectorized gathers — plus the find-after-destroy
regression where a recycled handle must not resurrect stale lookups.
"""

import numpy as np
import pytest

from repro.mesh import EDGE, TRI, Mesh, rect_tri
from repro.mesh.core import MeshCore, first_occurrence_unique
from repro.mesh.topology import VERTEX


def test_first_occurrence_unique_orders_by_first_hit():
    ids = np.array([7, 3, 7, 1, 3, 9, 1])
    assert first_occurrence_unique(ids).tolist() == [7, 3, 1, 9]
    assert first_occurrence_unique(np.array([], dtype=np.int64)).tolist() == []


def test_create_and_row_accessors():
    core = MeshCore()
    v = [core.create(0, VERTEX, (), ()) for _ in range(3)]
    e01 = core.create(1, EDGE, (v[0], v[1]), ())
    tri = core.create(2, TRI, (v[0], v[1], v[2]), (e01,))
    assert core.verts_row(0, v[0]) == (v[0],)
    assert core.verts_row(2, tri) == (v[0], v[1], v[2])
    assert core.down_row(2, tri) == (e01,)
    core.add_up(1, e01, tri)
    assert core.up_row(1, e01) == [tri]


def test_handles_recycle_lifo():
    core = MeshCore()
    ids = [core.create(0, VERTEX, (), ()) for _ in range(4)]
    core.destroy(0, ids[1])
    core.destroy(0, ids[3])
    assert core.create(0, VERTEX, (), ()) == ids[3]
    assert core.create(0, VERTEX, (), ()) == ids[1]
    # Exhausted free-list: back to high-water appends.
    assert core.create(0, VERTEX, (), ()) == 4
    assert core.top[0] == 5


def test_upward_rows_stay_sorted():
    core = MeshCore()
    v = core.create(0, VERTEX, (), ())
    for upper in (5, 1, 9, 3):
        core.add_up(0, v, upper)
    assert core.up_row(0, v) == [1, 3, 5, 9]
    core.remove_up(0, v, 5)
    assert core.up_row(0, v) == [1, 3, 9]
    with pytest.raises(ValueError, match="does not bound 5"):
        core.remove_up(0, v, 5)


def test_live_ids_cache_invalidates():
    core = MeshCore()
    ids = [core.create(0, VERTEX, (), ()) for _ in range(3)]
    assert core.live_ids(0).tolist() == ids
    core.destroy(0, ids[1])
    assert core.live_ids(0).tolist() == [ids[0], ids[2]]


def test_csr_exports_match_rows():
    mesh = rect_tri(2)
    core = mesh.core
    ids, indptr, indices = core.downward_csr(2)
    for k, idx in enumerate(ids.tolist()):
        row = indices[indptr[k]:indptr[k + 1]].tolist()
        assert tuple(row) == core.down_row(2, idx)
    ids, indptr, indices = core.upward_csr(1)
    for k, idx in enumerate(ids.tolist()):
        row = indices[indptr[k]:indptr[k + 1]].tolist()
        assert row == core.up_row(1, idx)


def test_verts_matrix_matches_rows():
    mesh = rect_tri(2)
    core = mesh.core
    ids = core.live_ids(2)
    vmat = core.verts_matrix(2, ids)
    for k, idx in enumerate(ids.tolist()):
        assert tuple(vmat[k].tolist()) == core.verts_row(2, idx)


def test_append_block_matches_incremental():
    core = MeshCore()
    n = 5
    block = core.append_block(0, np.full(n, VERTEX), np.empty((n, 0), int),
                              np.empty((n, 0), int))
    assert block.tolist() == list(range(n))
    assert all(core.is_alive(0, i) for i in range(n))


# -- find-after-destroy regression ------------------------------------------


def test_find_after_destroy_with_recycled_handle():
    """A recycled handle must not resurrect the destroyed entity's lookup."""
    mesh = Mesh()
    v = [mesh.create_vertex([float(i), 0.0, 0.0]) for i in range(4)]
    edge_a = mesh.create(EDGE, [v[0], v[1]])
    assert mesh.find(1, [v[0], v[1]]) == edge_a

    mesh.destroy(edge_a)
    assert mesh.find(1, [v[0], v[1]]) is None

    # The freed handle is recycled for a *different* edge: lookups must
    # resolve the new identity only.
    edge_b = mesh.create(EDGE, [v[2], v[3]])
    assert edge_b.idx == edge_a.idx
    assert mesh.find(1, [v[2], v[3]]) == edge_b
    assert mesh.find(1, [v[0], v[1]]) is None


def test_find_region_is_indexed():
    # Regions ride the same sorted-vertex lookup as edges and faces (the
    # former O(n) scan); destroying must unindex them.
    from repro.mesh import box_tet

    mesh = box_tet(2)
    region = next(iter(mesh.entities(3)))
    verts = mesh.verts_of(region)
    assert mesh.find(3, verts) == region
    mesh.destroy(region, cascade=True)
    assert mesh.find(3, verts) is None


def test_create_existing_returns_same_entity():
    mesh = Mesh()
    v = [mesh.create_vertex([float(i), 0.0, 0.0]) for i in range(2)]
    edge_a = mesh.create(EDGE, [v[0], v[1]])
    assert mesh.create(EDGE, [v[1], v[0]]) == edge_a
