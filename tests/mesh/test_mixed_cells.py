"""Tests for mixed-face cell types: prisms, pyramids, and extrusion."""

import numpy as np
import pytest

from repro.mesh import Mesh, PRISM, PYRAMID, rect_tri
from repro.mesh.generate import extrude_to_prisms
from repro.mesh.quality import measure
from repro.mesh.verify import verify


def single_prism():
    mesh = Mesh()
    v = [
        mesh.create_vertex([0, 0, 0]),
        mesh.create_vertex([1, 0, 0]),
        mesh.create_vertex([0, 1, 0]),
        mesh.create_vertex([0, 0, 1]),
        mesh.create_vertex([1, 0, 1]),
        mesh.create_vertex([0, 1, 1]),
    ]
    return mesh, mesh.create(PRISM, v)


def single_pyramid():
    mesh = Mesh()
    v = [
        mesh.create_vertex([0, 0, 0]),
        mesh.create_vertex([1, 0, 0]),
        mesh.create_vertex([1, 1, 0]),
        mesh.create_vertex([0, 1, 0]),
        mesh.create_vertex([0.5, 0.5, 1]),
    ]
    return mesh, mesh.create(PYRAMID, v)


def test_prism_entity_counts():
    mesh, prism = single_prism()
    assert mesh.entity_counts() == (6, 9, 5, 1)
    verify(mesh, check_classification=False)
    faces = mesh.down(prism)
    sizes = sorted(len(mesh.verts_of(f)) for f in faces)
    assert sizes == [3, 3, 4, 4, 4]


def test_pyramid_entity_counts():
    mesh, pyramid = single_pyramid()
    assert mesh.entity_counts() == (5, 8, 5, 1)
    verify(mesh, check_classification=False)
    faces = mesh.down(pyramid)
    sizes = sorted(len(mesh.verts_of(f)) for f in faces)
    assert sizes == [3, 3, 3, 3, 4]


def test_prism_measure_is_volume():
    mesh, prism = single_prism()
    assert measure(mesh, prism) == pytest.approx(0.5)


def test_two_prisms_share_quad_face():
    mesh, _ = single_prism()
    v = list(mesh.entities(0))
    extra = [
        mesh.create_vertex([1, 1, 0]),
        mesh.create_vertex([1, 1, 1]),
    ]
    # Second prism on the quad face (v1, v2) x z: verts 1,6,2 / 4,7,5.
    mesh.create(PRISM, [v[1], extra[0], v[2], v[4], extra[1], v[5]])
    assert mesh.count(3) == 2
    shared = [f for f in mesh.entities(2) if len(mesh.up(f)) == 2]
    assert len(shared) == 1
    assert len(mesh.verts_of(shared[0])) == 4
    verify(mesh, check_classification=False)


def test_extrude_counts():
    base = rect_tri(2, classify=False)
    mesh = extrude_to_prisms(base, layers=3, height=1.5)
    assert mesh.count(3) == base.count(2) * 3
    assert mesh.count(0) == base.count(0) * 4
    verify(mesh, check_classification=False)
    zs = [mesh.coords(v)[2] for v in mesh.entities(0)]
    assert max(zs) == pytest.approx(1.5)


def test_extrude_volume_matches_base_area():
    base = rect_tri(3, classify=False)
    mesh = extrude_to_prisms(base, layers=2, height=2.0)
    volume = sum(measure(mesh, r) for r in mesh.entities(3))
    assert volume == pytest.approx(1.0 * 2.0)


def test_extrude_validation():
    base = rect_tri(2, classify=False)
    with pytest.raises(ValueError):
        extrude_to_prisms(base, layers=0)
    with pytest.raises(ValueError):
        extrude_to_prisms(Mesh())
    from repro.mesh import rect_quad

    with pytest.raises(ValueError):
        extrude_to_prisms(rect_quad(2, classify=False))


def test_prism_mesh_distributes_and_migrates():
    from repro.partition import distribute, migrate

    base = rect_tri(3, classify=False)
    mesh = extrude_to_prisms(base, layers=2)
    assignment = [
        0 if mesh.centroid(r)[2] < 0.5 else 1 for r in mesh.entities(3)
    ]
    dm = distribute(mesh, assignment)
    dm.verify()
    element = next(dm.part(0).mesh.entities(3))
    migrate(dm, {0: {element: 1}})
    dm.verify()
    assert dm.entity_counts()[:, 3].sum() == mesh.count(3)
