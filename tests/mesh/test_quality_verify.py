"""Tests for quality metrics and the mesh verifier."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mesh import TET, TRI, Mesh, rect_tri
from repro.mesh.quality import (
    mean_ratio_tet,
    mean_ratio_tri,
    measure,
    quality,
    quality_histogram,
    tet_volume,
    tri_area,
    worst_quality,
)
from repro.mesh.verify import MeshInvalidError, verify


def test_tri_area_signed():
    a, b, c = np.array([0, 0.0]), np.array([1, 0.0]), np.array([0, 1.0])
    assert tri_area(a, b, c) == pytest.approx(0.5)
    assert tri_area(a, c, b) == pytest.approx(-0.5)


def test_tet_volume_signed():
    a = np.array([0, 0, 0.0])
    b = np.array([1, 0, 0.0])
    c = np.array([0, 1, 0.0])
    d = np.array([0, 0, 1.0])
    assert tet_volume(a, b, c, d) == pytest.approx(1 / 6)
    assert tet_volume(a, c, b, d) == pytest.approx(-1 / 6)


def test_equilateral_tri_quality_is_one():
    a = np.array([0.0, 0.0])
    b = np.array([1.0, 0.0])
    c = np.array([0.5, math.sqrt(3) / 2])
    assert mean_ratio_tri(a, b, c) == pytest.approx(1.0)


def test_degenerate_tri_quality_is_zero():
    a = np.array([0.0, 0.0])
    b = np.array([1.0, 0.0])
    c = np.array([2.0, 0.0])
    assert mean_ratio_tri(a, b, c) == pytest.approx(0.0)


def test_regular_tet_quality_is_one():
    # Regular tet from alternating cube corners (positively oriented).
    a = np.array([0, 0, 0.0])
    b = np.array([1, 0, 1.0])
    c = np.array([1, 1, 0.0])
    d = np.array([0, 1, 1.0])
    assert mean_ratio_tet(a, b, c, d) == pytest.approx(1.0)


def test_inverted_tet_quality_negative():
    a = np.array([0, 0, 0.0])
    b = np.array([1, 0, 0.0])
    c = np.array([0, 1, 0.0])
    d = np.array([0, 0, -1.0])
    assert mean_ratio_tet(a, b, c, d) < 0


@given(
    st.floats(0.1, 2.0),
    st.floats(-1.0, 1.0),
    st.floats(0.1, 2.0),
)
def test_tri_quality_scale_invariant(scale, tx, ty):
    a = np.array([0.0, 0.0])
    b = np.array([1.0, 0.2])
    c = np.array([0.3, 0.9])
    t = np.array([tx, ty])
    q1 = mean_ratio_tri(a, b, c)
    q2 = mean_ratio_tri(scale * a + t, scale * b + t, scale * c + t)
    assert q1 == pytest.approx(q2, rel=1e-9)


def test_measure_edge_length():
    mesh = Mesh()
    a = mesh.create_vertex([0, 0])
    b = mesh.create_vertex([3, 4])
    c = mesh.create_vertex([0, 1])
    tri = mesh.create(TRI, [a, b, c])
    edge = mesh.down(tri)[0]
    assert measure(mesh, edge) == pytest.approx(5.0)


def test_quality_of_mesh_elements():
    mesh = rect_tri(2)
    for f in mesh.entities(2):
        assert 0 < quality(mesh, f) <= 1
    assert 0 < worst_quality(mesh) <= 1


def test_quality_histogram_sums_to_element_count():
    mesh = rect_tri(3)
    hist = quality_histogram(mesh, bins=5)
    assert sum(hist) == mesh.count(2)
    assert len(hist) == 5


def test_verify_accepts_valid_mesh():
    verify(rect_tri(3), check_volumes=True)


def test_verify_rejects_missing_classification():
    mesh = rect_tri(2, classify=False)
    # No model, so classification isn't required by default...
    verify(mesh)
    # ...but an explicit request fails.
    with pytest.raises(MeshInvalidError):
        verify(mesh, check_classification=True)


def test_verify_detects_inverted_element():
    mesh = Mesh()
    a = mesh.create_vertex([0, 0])
    b = mesh.create_vertex([1, 0])
    c = mesh.create_vertex([0, 1])
    mesh.create(TRI, [a, c, b])  # clockwise: negative area
    with pytest.raises(MeshInvalidError):
        verify(mesh, check_classification=False, check_volumes=True)


def test_verify_detects_corrupted_upward_link():
    mesh = rect_tri(1)
    # Break an upward link behind the store API's back.
    first_edge = int(mesh.core.live_ids(1)[0])
    mesh.core.nup[1][first_edge] = 0
    with pytest.raises(MeshInvalidError):
        verify(mesh)


def test_worst_quality_empty_mesh():
    assert worst_quality(Mesh()) == 1.0
