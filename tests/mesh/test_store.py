"""Tests for the per-dimension entity store."""

import pytest

from repro.mesh.store import EntityStore
from repro.mesh.topology import EDGE, TRI, VERTEX


def test_create_returns_sequential_ids():
    store = EntityStore(0)
    assert store.create(VERTEX, (0,), ()) == 0
    assert store.create(VERTEX, (1,), ()) == 1
    assert len(store) == 2


def test_type_dimension_enforced():
    store = EntityStore(0)
    with pytest.raises(ValueError):
        store.create(EDGE, (0, 1), ())


def test_vertex_count_enforced():
    store = EntityStore(1)
    with pytest.raises(ValueError):
        store.create(EDGE, (0,), (0,))


def test_accessors():
    store = EntityStore(1)
    idx = store.create(EDGE, (4, 7), (4, 7))
    assert store.etype(idx) == EDGE
    assert store.verts(idx) == (4, 7)
    assert store.down(idx) == (4, 7)
    assert store.up(idx) == []


def test_upward_links():
    store = EntityStore(1)
    idx = store.create(EDGE, (0, 1), (0, 1))
    store.add_up(idx, 5)
    store.add_up(idx, 9)
    assert store.up(idx) == [5, 9]
    assert store.up_count(idx) == 2
    store.remove_up(idx, 5)
    assert store.up(idx) == [9]
    with pytest.raises(ValueError):
        store.remove_up(idx, 5)


def test_destroy_requires_no_upward_users():
    store = EntityStore(1)
    idx = store.create(EDGE, (0, 1), (0, 1))
    store.add_up(idx, 3)
    with pytest.raises(ValueError):
        store.destroy(idx)
    store.remove_up(idx, 3)
    store.destroy(idx)
    assert not store.alive(idx)
    assert len(store) == 0


def test_ids_never_reused():
    store = EntityStore(0)
    a = store.create(VERTEX, (0,), ())
    store.destroy(a)
    b = store.create(VERTEX, (1,), ())
    assert b != a
    assert store.capacity == 2


def test_dead_access_raises():
    store = EntityStore(0)
    idx = store.create(VERTEX, (0,), ())
    store.destroy(idx)
    with pytest.raises(KeyError):
        store.verts(idx)
    with pytest.raises(KeyError):
        store.etype(idx)


def test_indices_iterates_live_only():
    store = EntityStore(0)
    ids = [store.create(VERTEX, (i,), ()) for i in range(5)]
    store.destroy(ids[1])
    store.destroy(ids[3])
    assert list(store.indices()) == [0, 2, 4]


def test_compact_map_densifies():
    store = EntityStore(0)
    for i in range(4):
        store.create(VERTEX, (i,), ())
    store.destroy(1)
    assert store.compact_map() == {0: 0, 2: 1, 3: 2}


def test_up_returns_copy():
    store = EntityStore(0)
    idx = store.create(VERTEX, (0,), ())
    store.add_up(idx, 1)
    up = store.up(idx)
    up.append(99)
    assert store.up(idx) == [1]
