"""Golden-topology differential: adjacency tables pinned as strict JSON.

The SoA/CSR core must reproduce the exact entity numbering, canonical
vertex orderings, downward/upward adjacency contents *and order*, and the
derived ``adjacent`` / ``second_adjacent`` answers of the reference build.
Each fixture mesh's full topology is serialized to a canonical table and
compared byte-for-byte against a committed JSON file, so any storage-layer
change that silently perturbs ordering or numbering fails loudly here.

Regenerate the fixtures (after an *intentional* ordering change) with::

    PYTHONPATH=src python tests/mesh/test_golden_topology.py --regen
"""

import json
from pathlib import Path

import pytest

from repro.mesh import Mesh, PRISM, PYRAMID, TYPE_NAMES, rect_tri

GOLDEN_DIR = Path(__file__).parent / "golden"


def simplex_mesh():
    """Small all-triangle mesh: rect_tri(2) — 9 verts, 16 edges, 8 tris."""
    return rect_tri(2)


def mixed_mesh():
    """A prism and a pyramid glued on a shared quad face."""
    mesh = Mesh()
    v = [
        mesh.create_vertex([0, 0, 0]),
        mesh.create_vertex([1, 0, 0]),
        mesh.create_vertex([0, 1, 0]),
        mesh.create_vertex([0, 0, 1]),
        mesh.create_vertex([1, 0, 1]),
        mesh.create_vertex([0, 1, 1]),
        mesh.create_vertex([0.5, -1, 0.5]),
    ]
    mesh.create(PRISM, [v[0], v[1], v[2], v[3], v[4], v[5]])
    # Pyramid whose base is the prism's (0,1,4,3) quad face.
    mesh.create(PYRAMID, [v[0], v[1], v[4], v[3], v[6]])
    return mesh


FIXTURES = {
    "simplex_rect_tri_2": simplex_mesh,
    "mixed_prism_pyramid": mixed_mesh,
}


def topology_table(mesh):
    """Canonical JSON-ready table of the mesh's full topology."""
    mesh_dim = mesh.dim()
    table = {"counts": list(mesh.entity_counts()), "dims": {}}
    for dim in range(4):
        rows = {}
        for ent in mesh.entities(dim):
            rows[str(ent.idx)] = {
                "type": TYPE_NAMES[mesh.etype(ent)],
                "verts": [v.idx for v in mesh.verts_of(ent)],
                "down": [d.idx for d in mesh.down(ent)],
                "up": [u.idx for u in mesh.up(ent)],
            }
        table["dims"][str(dim)] = rows
    # Derived traversals: every entity against every target dimension.
    adjacent = {}
    for dim in range(mesh_dim + 1):
        for ent in mesh.entities(dim):
            adjacent[f"{dim}.{ent.idx}"] = {
                str(target): [a.idx for a in mesh.adjacent(ent, target)]
                for target in range(mesh_dim + 1)
            }
    table["adjacent"] = adjacent
    # Element neighbors through vertices and facets (the ghosting and
    # migration bridge patterns).
    second = {}
    for ent in mesh.entities(mesh_dim):
        second[str(ent.idx)] = {
            "via_verts": [
                a.idx for a in mesh.second_adjacent(ent, 0, mesh_dim)
            ],
            "via_facets": [
                a.idx
                for a in mesh.second_adjacent(ent, mesh_dim - 1, mesh_dim)
            ],
        }
    table["second_adjacent"] = second
    return table


def canonical_json(table) -> str:
    return json.dumps(table, indent=1, sort_keys=True) + "\n"


@pytest.mark.parametrize("name", sorted(FIXTURES))
def test_topology_matches_golden(name):
    golden_path = GOLDEN_DIR / f"{name}.json"
    assert golden_path.exists(), (
        f"missing fixture {golden_path}; regenerate with --regen"
    )
    expected = golden_path.read_text()
    # The committed file must itself be canonical strict JSON.
    assert canonical_json(json.loads(expected)) == expected
    actual = canonical_json(topology_table(FIXTURES[name]()))
    assert actual == expected, (
        f"{name}: topology diverged from the golden table; if the change "
        "is intentional, regenerate with --regen"
    )


def test_golden_dir_has_no_strays():
    committed = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert committed == {f"{name}.json" for name in FIXTURES}


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN_DIR.mkdir(exist_ok=True)
        for name, build in FIXTURES.items():
            path = GOLDEN_DIR / f"{name}.json"
            path.write_text(canonical_json(topology_table(build())))
            print(f"wrote {path}")
    else:
        print(__doc__)
