"""Tests for mesh compaction and reordering."""

import numpy as np
import pytest

from repro.adapt import adapt
from repro.field import ShockPlaneSize
from repro.mesh import Ent, rect_tri, box_tet
from repro.mesh.quality import measure
from repro.mesh.reorder import bfs_element_order, compact, dead_fraction
from repro.mesh.verify import verify


def test_bfs_order_covers_all_elements():
    mesh = rect_tri(4)
    order = bfs_element_order(mesh)
    assert len(order) == mesh.count(2)
    assert len(set(order)) == len(order)


def test_bfs_neighbors_are_close_in_order():
    mesh = rect_tri(6)
    order = bfs_element_order(mesh)
    position = {e: i for i, e in enumerate(order)}
    gaps = []
    for e in order:
        for nb in mesh.second_adjacent(e, 1, 2):
            gaps.append(abs(position[e] - position[nb]))
    # BFS keeps dual-graph neighbors within a band ~ the frontier width.
    assert np.mean(gaps) < mesh.count(2) / 3


def test_compact_preserves_structure():
    mesh = rect_tri(4)
    new_mesh, emap, vmap = compact(mesh)
    assert new_mesh.entity_counts() == mesh.entity_counts()
    verify(new_mesh, check_volumes=True)
    # Coordinates preserved through the vertex map.
    for old, new in vmap.items():
        assert np.allclose(mesh.coords(old), new_mesh.coords(new))
    # Element vertex sets preserved through both maps.
    for old, new in emap.items():
        old_set = {vmap[v] for v in mesh.verts_of(old)}
        assert old_set == set(new_mesh.verts_of(new))


def test_compact_removes_dead_slots_after_adaptation():
    mesh = rect_tri(5)
    shock = ShockPlaneSize([1, 0], 0.5, h_fine=0.05, h_coarse=0.25, width=0.08)
    adapt(mesh, shock, max_passes=5)
    assert dead_fraction(mesh) > 0.1
    new_mesh, _emap, _vmap = compact(mesh)
    assert dead_fraction(new_mesh) == 0.0
    assert new_mesh.entity_counts() == mesh.entity_counts()
    verify(new_mesh, check_volumes=True)
    area_old = sum(measure(mesh, f) for f in mesh.entities(2))
    area_new = sum(measure(new_mesh, f) for f in new_mesh.entities(2))
    assert area_new == pytest.approx(area_old)


def test_compact_transfers_tags_and_sets():
    mesh = rect_tri(3)
    tag = mesh.tag("w")
    group = mesh.sets.create("g", ordered=True)
    for i, f in enumerate(mesh.entities(2)):
        tag.set(f, float(i))
        if i % 2 == 0:
            group.add(f)
    first_vert = next(mesh.entities(0))
    tag.set(first_vert, -1.0)

    new_mesh, emap, vmap = compact(mesh)
    new_tag = new_mesh.tags.find("w")
    assert new_tag is not None
    for old, new in emap.items():
        assert new_tag.get(new) == tag.get(old)
    assert new_tag.get(vmap[first_vert]) == -1.0
    new_group = new_mesh.sets.find("g")
    assert len(new_group) == len(group)


def test_compact_preserves_classification():
    mesh = rect_tri(3)
    new_mesh, _emap, vmap = compact(mesh)
    for old, new in vmap.items():
        assert new_mesh.classification(new) == mesh.classification(old)
    verify(new_mesh)  # classification check included (model present)


def test_compact_keep_order():
    mesh = rect_tri(2)
    new_mesh, emap, _vmap = compact(mesh, order="keep")
    # Identity permutation: element i maps to element i.
    for old, new in emap.items():
        assert old.idx == new.idx


def test_compact_3d():
    mesh = box_tet(2)
    new_mesh, _e, _v = compact(mesh)
    assert new_mesh.entity_counts() == mesh.entity_counts()
    verify(new_mesh, check_volumes=True)


def test_compact_invalid_order():
    with pytest.raises(ValueError):
        compact(rect_tri(1), order="random")


def test_dead_fraction_fresh_mesh():
    assert dead_fraction(rect_tri(2)) == 0.0
