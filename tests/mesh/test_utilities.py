"""Tests for the three common utilities (iterator, set, tag) and IO."""

import numpy as np
import pytest

from repro.mesh import TRI, Ent, Mesh, rect_tri
from repro.mesh.iterator import boundary_entities, classified_on, count, iterate
from repro.mesh.io import load_native, save_native, write_vtk
from repro.mesh.sets import EntitySet, SetManager
from repro.mesh.tag import Tag, TagManager


# -- tags --------------------------------------------------------------------


def test_tag_set_get_default():
    tag = Tag("w")
    e = Ent(2, 0)
    assert tag.get(e) is None
    assert tag.get(e, 7) == 7
    tag.set(e, 3.5)
    assert tag.get(e) == 3.5
    assert tag.has(e)
    assert e in tag


def test_tag_getitem_raises_on_missing():
    tag = Tag("w")
    with pytest.raises(KeyError):
        tag[Ent(0, 0)]


def test_tag_setitem_and_len():
    tag = Tag("w")
    tag[Ent(0, 0)] = 1
    tag[Ent(0, 1)] = 2
    assert len(tag) == 2
    tag.remove(Ent(0, 0))
    assert len(tag) == 1
    tag.clear()
    assert len(tag) == 0


def test_tag_items_sorted():
    tag = Tag("w")
    tag[Ent(1, 5)] = "b"
    tag[Ent(0, 2)] = "a"
    assert list(tag.items()) == [(Ent(0, 2), "a"), (Ent(1, 5), "b")]


def test_tag_manager_create_is_idempotent():
    mgr = TagManager()
    a = mgr.create("x")
    b = mgr.create("x")
    assert a is b
    assert "x" in mgr
    assert list(mgr.names()) == ["x"]


def test_tag_manager_delete_and_find():
    mgr = TagManager()
    mgr.create("x")
    assert mgr.find("x") is not None
    mgr.delete("x")
    assert mgr.find("x") is None
    mgr.delete("x")  # idempotent


def test_tag_manager_drop_entity():
    mgr = TagManager()
    t1, t2 = mgr.create("a"), mgr.create("b")
    e = Ent(0, 0)
    t1.set(e, 1)
    t2.set(e, 2)
    mgr.drop_entity(e)
    assert not t1.has(e) and not t2.has(e)


# -- sets ----------------------------------------------------------------------


def test_unordered_set_sorted_iteration():
    s = EntitySet("s")
    s.add(Ent(1, 3))
    s.add(Ent(0, 9))
    s.add(Ent(1, 3))  # duplicate ignored
    assert list(s) == [Ent(0, 9), Ent(1, 3)]
    assert len(s) == 2


def test_ordered_set_preserves_insertion():
    s = EntitySet("s", ordered=True)
    s.add(Ent(1, 3))
    s.add(Ent(0, 9))
    assert list(s) == [Ent(1, 3), Ent(0, 9)]


def test_set_remove_and_contains():
    s = EntitySet("s", ordered=True)
    e = Ent(2, 1)
    s.add(e)
    assert e in s
    s.remove(e)
    assert e not in s
    s.remove(e)  # idempotent


def test_set_manager():
    mgr = SetManager()
    a = mgr.create("g", ordered=True)
    assert mgr.create("g") is a  # ordered flag only applies at creation
    assert a.ordered
    e = Ent(0, 0)
    a.add(e)
    mgr.drop_entity(e)
    assert e not in a
    mgr.delete("g")
    assert mgr.find("g") is None


# -- iterators -------------------------------------------------------------------


def test_iterate_all_faces():
    mesh = rect_tri(2)
    assert count(iterate(mesh, 2)) == mesh.count(2)


def test_iterate_with_type_filter():
    mesh = rect_tri(2)
    assert count(iterate(mesh, 2, etype=TRI)) == mesh.count(2)
    from repro.mesh import QUAD

    assert count(iterate(mesh, 2, etype=QUAD)) == 0


def test_iterate_with_predicate():
    mesh = rect_tri(2)
    left = list(
        iterate(mesh, 0, where=lambda v: mesh.coords(v)[0] == 0.0)
    )
    assert len(left) == 3


def test_classified_on_model_edge():
    mesh = rect_tri(3)
    bottom = mesh.model.find(1, 0)
    edges = list(classified_on(mesh, 1, bottom))
    assert len(edges) == 3
    verts = list(classified_on(mesh, 0, bottom))
    assert len(verts) == 2  # interior vertices of the bottom edge only
    with_corners = list(classified_on(mesh, 0, bottom, closure=True))
    assert len(with_corners) == 4


def test_boundary_entities():
    mesh = rect_tri(2)
    bverts = list(boundary_entities(mesh, 0))
    assert len(bverts) == 8  # all but the single interior vertex
    bfaces = list(boundary_entities(mesh, 2))
    assert bfaces == []  # faces classify on the model face (same dim)


# -- IO -----------------------------------------------------------------------


def test_write_vtk(tmp_path):
    mesh = rect_tri(2)
    out = write_vtk(mesh, tmp_path / "mesh.vtk")
    text = out.read_text()
    assert "POINTS 9 double" in text
    assert "CELLS 8" in text
    assert text.count("\n5\n") + text.strip().endswith("5") >= 1  # VTK tri type


def test_write_vtk_with_cell_data(tmp_path):
    mesh = rect_tri(1)
    values = {f: float(i) for i, f in enumerate(mesh.entities(2))}
    text = write_vtk(mesh, tmp_path / "m.vtk", {"load": values}).read_text()
    assert "CELL_DATA 2" in text
    assert "SCALARS load double 1" in text


def test_native_roundtrip(tmp_path):
    mesh = rect_tri(3)
    path = save_native(mesh, tmp_path / "m.npz")
    loaded = load_native(path, model=mesh.model)
    assert loaded.entity_counts() == mesh.entity_counts()
    assert np.allclose(
        loaded.coords_view()[: loaded.count(0)],
        mesh.coords_view()[: mesh.count(0)],
    )
    # Classification restored.
    corners = [
        v for v in loaded.entities(0) if loaded.classification(v).dim == 0
    ]
    assert len(corners) == 4


def test_native_roundtrip_without_model(tmp_path):
    mesh = rect_tri(2, classify=False)
    path = save_native(mesh, tmp_path / "m.npz")
    loaded = load_native(path)
    assert loaded.entity_counts() == mesh.entity_counts()
    assert loaded.classification(Ent(0, 0)) is None


def test_write_vtk_3d(tmp_path):
    from repro.mesh import box_tet

    mesh = box_tet(1)
    text = write_vtk(mesh, tmp_path / "m3.vtk").read_text()
    assert "POINTS 8 double" in text
    assert "CELLS 6" in text
    lines = text.splitlines()
    types_at = lines.index("CELL_TYPES 6")
    assert lines[types_at + 1 : types_at + 7] == ["10"] * 6  # VTK_TETRA


def test_write_vtk_after_modification(tmp_path):
    """Dead entity slots must not leak into the export."""
    from repro.adapt import split_edge

    mesh = rect_tri(2)
    split_edge(mesh, next(mesh.entities(1)))
    text = write_vtk(mesh, tmp_path / "m.vtk").read_text()
    assert f"POINTS {mesh.count(0)} double" in text
    assert f"CELLS {mesh.count(2)}" in text
    # Connectivity references only exported (dense) point indices.
    lines = text.splitlines()
    start = next(i for i, l in enumerate(lines) if l.startswith("CELLS")) + 1
    for line in lines[start : start + mesh.count(2)]:
        ids = [int(x) for x in line.split()][1:]
        assert all(0 <= i < mesh.count(0) for i in ids)
