"""Tests for the canonical topology tables."""

import pytest

from repro.mesh.topology import (
    EDGE,
    HEX,
    PRISM,
    PYRAMID,
    QUAD,
    TET,
    TRI,
    TYPES,
    VERTEX,
    face_type_for_verts,
    type_info,
    types_of_dim,
)


def test_dimensions():
    assert type_info(VERTEX).dim == 0
    assert type_info(EDGE).dim == 1
    assert type_info(TRI).dim == 2
    assert type_info(QUAD).dim == 2
    for code in (TET, HEX, PRISM, PYRAMID):
        assert type_info(code).dim == 3


def test_vertex_counts():
    expected = {VERTEX: 1, EDGE: 2, TRI: 3, QUAD: 4, TET: 4, PYRAMID: 5,
                PRISM: 6, HEX: 8}
    for code, n in expected.items():
        assert type_info(code).nverts == n


def test_edge_counts():
    expected = {TRI: 3, QUAD: 4, TET: 6, PYRAMID: 8, PRISM: 9, HEX: 12}
    for code, n in expected.items():
        assert type_info(code).nedges == n


def test_face_counts():
    expected = {TET: 4, PYRAMID: 5, PRISM: 5, HEX: 6}
    for code, n in expected.items():
        assert type_info(code).nfaces == n


@pytest.mark.parametrize("code", [TRI, QUAD, TET, PYRAMID, PRISM, HEX])
def test_edges_reference_valid_local_vertices(code):
    info = type_info(code)
    for a, b in info.edges:
        assert 0 <= a < info.nverts
        assert 0 <= b < info.nverts
        assert a != b


@pytest.mark.parametrize("code", [TET, PYRAMID, PRISM, HEX])
def test_faces_reference_valid_local_vertices(code):
    info = type_info(code)
    for ftype, locals_ in info.faces:
        finfo = type_info(ftype)
        assert len(locals_) == finfo.nverts
        assert len(set(locals_)) == len(locals_)
        assert all(0 <= v < info.nverts for v in locals_)


@pytest.mark.parametrize("code", [TET, PYRAMID, PRISM, HEX])
def test_every_cell_edge_appears_in_exactly_two_faces(code):
    """Manifold cell boundary: each edge is shared by two of its faces."""
    info = type_info(code)
    edge_use = {tuple(sorted(e)): 0 for e in info.edges}
    for ftype, locals_ in info.faces:
        finfo = type_info(ftype)
        for a, b in finfo.edges:
            key = tuple(sorted((locals_[a], locals_[b])))
            assert key in edge_use, f"face edge {key} missing from cell edges"
            edge_use[key] += 1
    assert all(n == 2 for n in edge_use.values())


@pytest.mark.parametrize("code", [TET, PYRAMID, PRISM, HEX])
def test_face_vertex_union_covers_cell(code):
    info = type_info(code)
    union = set()
    for _ftype, locals_ in info.faces:
        union.update(locals_)
    assert union == set(range(info.nverts))


def test_downward_count():
    tet = type_info(TET)
    assert tet.downward_count(0) == 4
    assert tet.downward_count(1) == 6
    assert tet.downward_count(2) == 4
    with pytest.raises(ValueError):
        type_info(TRI).downward_count(2)


def test_types_of_dim():
    assert set(types_of_dim(2)) == {TRI, QUAD}
    assert set(types_of_dim(3)) == {TET, PYRAMID, PRISM, HEX}


def test_face_type_for_verts():
    assert face_type_for_verts(3) == TRI
    assert face_type_for_verts(4) == QUAD
    with pytest.raises(ValueError):
        face_type_for_verts(5)


def test_unknown_type_rejected():
    with pytest.raises(ValueError):
        type_info(99)


def test_names_unique():
    names = [info.name for info in TYPES.values()]
    assert len(names) == len(set(names))
