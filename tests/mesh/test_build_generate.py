"""Tests for bulk construction and the mesh generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gmodel import box_model, rect_model
from repro.mesh import (
    HEX,
    TET,
    TRI,
    Ent,
    Mesh,
    box_hex,
    box_tet,
    delaunay_rect,
    from_connectivity,
    rect_quad,
    rect_tri,
)
from repro.mesh.quality import measure, worst_quality
from repro.mesh.verify import verify


def test_from_connectivity_matches_incremental_path():
    coords = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
    cells = np.array([[0, 1, 2], [0, 2, 3]])
    bulk = from_connectivity(coords, cells, TRI)

    incr = Mesh()
    v = [incr.create_vertex(p) for p in coords]
    for cell in cells:
        incr.create(TRI, [v[i] for i in cell])

    assert bulk.entity_counts() == incr.entity_counts()
    for dim in range(3):
        bulk_sets = {
            tuple(sorted(x.idx for x in bulk.verts_of(e)))
            for e in bulk.entities(dim)
        }
        incr_sets = {
            tuple(sorted(x.idx for x in incr.verts_of(e)))
            for e in incr.entities(dim)
        }
        assert bulk_sets == incr_sets
    verify(bulk, check_classification=False)


def test_from_connectivity_tet_matches_incremental():
    coords = np.array(
        [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 1, 1]], dtype=float
    )
    cells = np.array([[0, 1, 2, 3], [1, 2, 3, 4]])
    bulk = from_connectivity(coords, cells, TET)
    incr = Mesh()
    v = [incr.create_vertex(p) for p in coords]
    for cell in cells:
        incr.create(TET, [v[i] for i in cell])
    assert bulk.entity_counts() == incr.entity_counts()
    verify(bulk, check_classification=False)


def test_from_connectivity_validates_shape():
    coords = np.zeros((3, 2))
    with pytest.raises(ValueError):
        from_connectivity(coords, np.array([[0, 1]]), TRI)
    with pytest.raises(ValueError):
        from_connectivity(coords, np.array([[0, 1, 5]]), TRI)


def test_from_connectivity_empty_elements():
    mesh = from_connectivity(np.zeros((4, 2)), np.zeros((0, 3), dtype=int), TRI)
    assert mesh.count(0) == 4
    assert mesh.count(2) == 0


def test_classify_requires_model():
    coords = np.array([[0, 0], [1, 0], [0, 1]], dtype=float)
    with pytest.raises(ValueError):
        from_connectivity(coords, np.array([[0, 1, 2]]), TRI, classify=True)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(min_value=1, max_value=5), m=st.integers(min_value=1, max_value=5))
def test_rect_tri_counts(n, m):
    """Structured counts follow Euler's formula for a disk (V - E + F = 1)."""
    mesh = rect_tri(n, m)
    nv, ne, nf, _ = mesh.entity_counts()
    assert nv == (n + 1) * (m + 1)
    assert nf == 2 * n * m
    assert nv - ne + nf == 1
    verify(mesh, check_volumes=True)


def test_rect_tri_classification_boundary():
    mesh = rect_tri(3)
    model = mesh.model
    corners = [v for v in mesh.entities(0) if mesh.classification(v).dim == 0]
    assert len(corners) == 4
    boundary_edges = [
        e for e in mesh.entities(1) if mesh.classification(e).dim == 1
    ]
    assert len(boundary_edges) == 4 * 3
    interior = [f for f in mesh.entities(2)
                if mesh.classification(f) != model.find(2, 0)]
    assert interior == []


def test_rect_quad_counts():
    mesh = rect_quad(3, 2)
    nv, ne, nf, _ = mesh.entity_counts()
    assert nv == 4 * 3
    assert nf == 6
    assert nv - ne + nf == 1
    verify(mesh)


@settings(max_examples=6, deadline=None)
@given(n=st.integers(min_value=1, max_value=3))
def test_box_tet_counts(n):
    mesh = box_tet(n)
    nv, ne, nf, nr = mesh.entity_counts()
    assert nv == (n + 1) ** 3
    assert nr == 6 * n ** 3
    # Euler characteristic of a ball: V - E + F - R = 1.
    assert nv - ne + nf - nr == 1
    verify(mesh)


def test_box_tet_positive_volumes():
    mesh = box_tet(2)
    for region in mesh.entities(3):
        assert measure(mesh, region) > 0
    assert worst_quality(mesh) > 0.1


def test_box_tet_volume_sums_to_domain():
    mesh = box_tet(2, lo=(0, 0, 0), hi=(2, 1, 1))
    total = sum(measure(mesh, r) for r in mesh.entities(3))
    assert total == pytest.approx(2.0)


def test_box_tet_classification():
    mesh = box_tet(2)
    model = mesh.model
    assert sum(1 for v in mesh.entities(0)
               if mesh.classification(v).dim == 0) == 8
    face_verts = [v for v in mesh.entities(0)
                  if mesh.classification(v).dim == 2]
    assert len(face_verts) == 6  # one interior grid point per box face
    verify(mesh)


def test_box_hex_counts():
    mesh = box_hex(2)
    nv, ne, nf, nr = mesh.entity_counts()
    assert nv == 27
    assert nr == 8
    assert ne == 54
    assert nf == 36
    assert nv - ne + nf - nr == 1
    verify(mesh)


def test_delaunay_rect_is_valid_and_classified():
    mesh = delaunay_rect(5, seed=3)
    verify(mesh, check_volumes=True)
    area = sum(measure(mesh, f) for f in mesh.entities(2))
    assert area == pytest.approx(1.0)


def test_delaunay_rect_deterministic_by_seed():
    a = delaunay_rect(4, seed=7)
    b = delaunay_rect(4, seed=7)
    assert a.entity_counts() == b.entity_counts()
    assert np.allclose(a.coords_view(), b.coords_view())


def test_generators_reject_degenerate_sizes():
    with pytest.raises(ValueError):
        rect_tri(0)
    with pytest.raises(ValueError):
        box_tet(1, 0)
    with pytest.raises(ValueError):
        delaunay_rect(1)


def test_custom_domain_bounds():
    mesh = rect_tri(2, lo=(-1.0, -2.0), hi=(3.0, 2.0))
    coords = np.asarray([mesh.coords(v) for v in mesh.entities(0)])
    assert coords[:, 0].min() == -1.0
    assert coords[:, 0].max() == 3.0
    assert coords[:, 1].min() == -2.0
    verify(mesh)
