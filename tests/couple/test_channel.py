"""Tests for repro.couple.channel: specs, frames, pipes, and the hub."""

import threading

import numpy as np
import pytest

from repro.couple import (
    Channel,
    ChannelClosedError,
    ChannelHub,
    ChannelSpec,
    CoupleError,
    FieldFrame,
    TransformSpec,
)
from repro.couple.channel import FRAME_SCHEMA


def spec(**kw):
    base = dict(name="link", src="a", dst="b")
    base.update(kw)
    return ChannelSpec(**base)


# -- specs -------------------------------------------------------------------


def test_channel_spec_validates():
    with pytest.raises(CoupleError):
        spec(src="a", dst="a")  # self-coupling
    with pytest.raises(CoupleError):
        spec(name="")
    with pytest.raises(CoupleError):
        spec(ncomp=0)
    with pytest.raises(CoupleError):
        spec(capacity=0)


def test_channel_spec_roundtrip():
    s = spec(
        ncomp=3,
        transforms=(
            TransformSpec(kind="scale", param=2.0),
            TransformSpec(kind="time-window", param=3),
        ),
    )
    again = ChannelSpec.from_dict(s.to_dict())
    assert again == s


def test_channel_spec_rejects_unknown_fields():
    with pytest.raises(CoupleError):
        ChannelSpec.from_dict({"name": "x", "src": "a", "dst": "b", "bogus": 1})


def test_transform_spec_validates():
    with pytest.raises(CoupleError):
        TransformSpec(kind="fourier")
    with pytest.raises(CoupleError):
        TransformSpec(kind="time-window", param=0)
    with pytest.raises(CoupleError):
        TransformSpec(kind="time-window", param=1.5)


# -- frames ------------------------------------------------------------------


def test_frame_roundtrip_and_digest():
    values = np.arange(6, dtype=float).reshape(3, 2)
    frame = FieldFrame(channel="link", kind="values", seq=4, values=values)
    blob = frame.encode()
    again = FieldFrame.decode(blob)
    assert again.channel == "link"
    assert again.kind == "values"
    assert again.seq == 4
    assert np.array_equal(again.values, values)
    assert again.digest() == frame.digest()
    # Byte determinism: encoding is a pure function of the payload.
    assert frame.encode() == blob


def test_frame_validates():
    good = np.zeros((2, 1))
    with pytest.raises(CoupleError):
        FieldFrame(channel="c", kind="noise", seq=0, values=good)
    with pytest.raises(CoupleError):
        FieldFrame(channel="c", kind="values", seq=-1, values=good)
    with pytest.raises(CoupleError):
        FieldFrame(channel="c", kind="values", seq=0, values=np.zeros(3))


def test_frame_decode_rejects_other_schemas():
    from repro.parallel.codec import dumps

    with pytest.raises(CoupleError):
        FieldFrame.decode(dumps({"schema": "repro.svc/1"}))
    assert FRAME_SCHEMA == "repro.couple/1"


# -- live channels -----------------------------------------------------------


def frame(seq=0, kind="values", n=2):
    return FieldFrame(
        channel="link", kind=kind, seq=seq, values=np.full((n, 1), float(seq))
    )


def test_channel_send_recv_fifo():
    chan = Channel(spec())
    chan.send("src", frame(0))
    chan.send("src", frame(1))
    assert chan.recv("dst").seq == 0
    assert chan.recv("dst").seq == 1


def test_channel_reverse_direction():
    chan = Channel(spec())
    chan.send("dst", frame(7, kind="points"))
    got = chan.recv("src")
    assert got.kind == "points" and got.seq == 7


def test_channel_recv_timeout():
    chan = Channel(spec())
    with pytest.raises(CoupleError):
        chan.recv("dst", timeout=0.05)


def test_channel_send_blocks_at_capacity_then_times_out():
    chan = Channel(spec(capacity=1))
    chan.send("src", frame(0))
    with pytest.raises(CoupleError):
        chan.send("src", frame(1), timeout=0.05)


def test_channel_close_drains_then_raises():
    chan = Channel(spec())
    chan.send("src", frame(0))
    chan.close()
    assert chan.recv("dst").seq == 0  # drained
    with pytest.raises(ChannelClosedError):
        chan.recv("dst", timeout=1.0)
    with pytest.raises(ChannelClosedError):
        chan.send("src", frame(1), timeout=1.0)


def test_channel_close_wakes_blocked_receiver():
    chan = Channel(spec())
    errors = []

    def wait():
        try:
            chan.recv("dst", timeout=30.0)
        except ChannelClosedError as exc:
            errors.append(exc)

    thread = threading.Thread(target=wait)
    thread.start()
    chan.close()
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert len(errors) == 1


def test_channel_threaded_exchange():
    chan = Channel(spec())
    seen = []

    def producer():
        for seq in range(8):
            chan.send("src", frame(seq), timeout=10.0)

    def consumer():
        for _ in range(8):
            seen.append(chan.recv("dst", timeout=10.0).seq)

    threads = [
        threading.Thread(target=producer),
        threading.Thread(target=consumer),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10.0)
    assert seen == list(range(8))


def test_channel_stats():
    chan = Channel(spec())
    chan.send("src", frame(0))
    chan.send("dst", frame(0, kind="points"))
    stats = chan.stats()
    assert stats["frames_fwd"] == 1 and stats["frames_rev"] == 1
    assert stats["bytes_fwd"] > 0 and stats["bytes_rev"] > 0


# -- the hub -----------------------------------------------------------------


def test_hub_ports_and_peers():
    hub = ChannelHub(
        [spec(name="ab"), ChannelSpec(name="bc", src="b", dst="c")]
    )
    assert hub.channel_names("b") == ["ab", "bc"]
    assert hub.peer_jobs("b") == ["a", "c"]
    ports = hub.ports_for("a")
    assert list(ports) == ["ab"]
    assert ports["ab"].role == "src"
    assert hub.ports_for("b")["ab"].role == "dst"


def test_hub_rejects_duplicate_channel_names():
    with pytest.raises(CoupleError):
        ChannelHub([spec(), spec()])


def test_hub_job_done_closes_bound_channels():
    hub = ChannelHub([spec()])
    src_port = hub.ports_for("a")["link"]
    hub.job_done("b")
    with pytest.raises(ChannelClosedError):
        src_port.send(frame(0), timeout=1.0)


def test_hub_endpoint_applies_transform_stages():
    hub = ChannelHub(
        [spec(transforms=(TransformSpec(kind="scale", param=2.0),))]
    )
    src = hub.ports_for("a")["link"]
    dst = hub.ports_for("b")["link"]
    src.send_values(0, np.ones((3, 1)))
    got = dst.recv(timeout=5.0)
    assert np.array_equal(got.values, np.full((3, 1), 2.0))
