"""Tests for the coupled service runtime: DAG rounds, co-scheduling,
dependency cancellation, and byte-identical coupled reports."""

import json

import pytest

from repro.couple import ChannelSpec, JobGraph
from repro.svc import JobSpec, JobSpecError, MeshJobService


def coupled_graph(steps=3, parts=2, mesh_n=6):
    return JobGraph(
        jobs=(
            JobSpec(
                name="coarse", workload="coupled", parts=parts,
                mesh_n=mesh_n, steps=steps, channels=("u-link",),
            ),
            JobSpec(
                name="fine", workload="coupled", parts=parts,
                mesh_n=mesh_n, steps=steps, channels=("u-link",),
            ),
        ),
        channels=(
            ChannelSpec(name="u-link", src="coarse", dst="fine", field="u"),
        ),
    )


def test_dependency_chain_runs_in_topo_rounds():
    service = MeshJobService()
    graph = JobGraph(
        jobs=(
            JobSpec(name="a", workload="noop"),
            JobSpec(name="b", workload="noop", deps=("a",)),
            JobSpec(name="c", workload="noop", deps=("b",)),
        )
    )
    report = json.loads(service.serve_graph(graph).to_json())
    assert [r["placed"] for r in report["rounds"]] == [["a"], ["b"], ["c"]]
    assert all(j["status"] == "completed" for j in report["jobs"])


def test_independent_jobs_share_a_round():
    service = MeshJobService()
    graph = JobGraph(
        jobs=(
            JobSpec(name="a", workload="noop"),
            JobSpec(name="b", workload="noop"),
            JobSpec(name="c", workload="noop", deps=("a", "b")),
        )
    )
    report = json.loads(service.serve_graph(graph).to_json())
    assert [r["placed"] for r in report["rounds"]] == [["a", "b"], ["c"]]


def test_dep_failure_cascades_to_cancellation():
    def boom(comm, mesh_n, steps):
        raise RuntimeError("boom")

    service = MeshJobService()
    graph = JobGraph(
        jobs=(
            JobSpec(name="a", workload=boom),
            JobSpec(name="b", workload="noop", deps=("a",)),
            JobSpec(name="c", workload="noop", deps=("b",)),
        )
    )
    report = json.loads(service.serve_graph(graph).to_json())
    statuses = {j["name"]: j["status"] for j in report["jobs"]}
    assert statuses == {"a": "failed", "b": "cancelled", "c": "cancelled"}
    messages = {j["name"]: j["message"] for j in report["jobs"]}
    assert "dependency 'a'" in messages["b"]
    assert "dependency 'b'" in messages["c"]


def test_coupled_pair_is_co_scheduled():
    service = MeshJobService()
    report = json.loads(service.serve_graph(coupled_graph()).to_json())
    assert [r["placed"] for r in report["rounds"]] == [["coarse", "fine"]]
    outputs = {j["name"]: j["output"] for j in report["jobs"]}
    assert outputs["coarse"]["role"] == "src"
    assert outputs["fine"]["role"] == "dst"
    # Both endpoints checksummed the same shipped frames.
    assert outputs["coarse"]["checksum"] == outputs["fine"]["checksum"]
    assert outputs["fine"]["frames"] == 3


def test_coupled_reports_byte_identical():
    def run():
        service = MeshJobService()
        return service.serve_graph(coupled_graph()).to_json()

    assert run() == run()


def test_coupled_pair_waits_for_shared_dep():
    service = MeshJobService()
    graph = JobGraph(
        jobs=(
            JobSpec(name="prep", workload="noop"),
            JobSpec(
                name="coarse", workload="coupled", parts=2, mesh_n=5,
                steps=2, deps=("prep",), channels=("u-link",),
            ),
            JobSpec(
                name="fine", workload="coupled", parts=2, mesh_n=5,
                steps=2, deps=("prep",), channels=("u-link",),
            ),
        ),
        channels=(
            ChannelSpec(name="u-link", src="coarse", dst="fine"),
        ),
    )
    report = json.loads(service.serve_graph(graph).to_json())
    assert [r["placed"] for r in report["rounds"]] == [
        ["prep"], ["coarse", "fine"],
    ]


def test_coupled_group_larger_than_machine_rejected():
    graph = JobGraph(
        jobs=(
            JobSpec(
                name="coarse", workload="coupled", parts=5, steps=2,
                channels=("u-link",),
            ),
            JobSpec(
                name="fine", workload="coupled", parts=5, steps=2,
                channels=("u-link",),
            ),
        ),
        channels=(ChannelSpec(name="u-link", src="coarse", dst="fine"),),
    )
    service = MeshJobService()  # 8 cores < 10 needed together
    with pytest.raises(JobSpecError, match="cores together"):
        service.serve_graph(graph)


def test_graph_must_fit_admission_queue():
    graph = JobGraph(
        jobs=(
            JobSpec(name="a", workload="noop"),
            JobSpec(name="b", workload="noop"),
        )
    )
    service = MeshJobService(capacity=1)
    with pytest.raises(JobSpecError, match="admitted"):
        service.serve_graph(graph)


def test_coupled_workload_requires_ports():
    service = MeshJobService()
    report = service.serve([JobSpec(name="solo", workload="coupled")])
    doc = json.loads(report.to_json())
    assert doc["jobs"][0]["status"] == "failed"
    assert "serve_graph" in doc["jobs"][0]["message"]


def test_plain_serve_unaffected_by_graph_machinery():
    service = MeshJobService()
    report = json.loads(
        service.serve(
            [
                JobSpec(name="s1", workload="stencil", parts=2, steps=2),
                JobSpec(name="s2", workload="allreduce", parts=2, steps=2),
            ]
        ).to_json()
    )
    assert all(j["status"] == "completed" for j in report["jobs"])
    assert [r["placed"] for r in report["rounds"]] == [["s1", "s2"]]
