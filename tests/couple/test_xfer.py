"""Tests for repro.couple.xfer: transformer stages and cross-mesh transfer.

The heart of this file is the bit-parity gate: the distributed
``transfer_between`` must reproduce the serial ``transfer_vertex_field``
output exactly — same bytes — at every part-count combination, because the
winner key ``(not contained, d2, gid, values)`` is partition-invariant.
"""

import numpy as np
import pytest

from repro.couple import (
    CoupleError,
    Interpolate,
    Scale,
    TimeWindow,
    TransformSpec,
    apply_stages,
    build_stages,
    transfer_between,
)
from repro.field import Field, transfer_vertex_field
from repro.mesh import rect_tri
from repro.mesh.generate import delaunay_rect
from repro.partition import distribute
from repro.partition.fieldsync import DistributedField
from repro.partitioners import partition


def front(x):
    x = np.asarray(x, dtype=float)
    return float(np.sin(3 * x[0]) + np.cos(2 * x[1]) + 0.5 * x[0] * x[1])


def make_distributed(mesh, nparts):
    return distribute(mesh, partition(mesh, nparts, method="rcb"))


# -- stages ------------------------------------------------------------------


def test_build_stages_order_and_kinds():
    stages = build_stages(
        (
            TransformSpec(kind="interpolate"),
            TransformSpec(kind="scale", param=3.0),
            TransformSpec(kind="time-window", param=2),
        )
    )
    assert [type(s) for s in stages] == [Interpolate, Scale, TimeWindow]


def test_scale_and_interpolate():
    values = np.arange(4, dtype=float).reshape(2, 2)
    assert np.array_equal(Interpolate().apply(values, 0), values)
    assert np.array_equal(Scale(2.0).apply(values, 0), 2.0 * values)


def test_time_window_moving_average():
    win = TimeWindow(2)
    a = np.full((2, 1), 1.0)
    b = np.full((2, 1), 3.0)
    c = np.full((2, 1), 5.0)
    assert np.array_equal(win.apply(a, 0), a)
    assert np.array_equal(win.apply(b, 1), np.full((2, 1), 2.0))
    assert np.array_equal(win.apply(c, 2), np.full((2, 1), 4.0))  # (3+5)/2


def test_time_window_rejects_bad_width():
    with pytest.raises(CoupleError):
        TimeWindow(0)


def test_apply_stages_chains_in_order():
    stages = build_stages(
        (
            TransformSpec(kind="scale", param=2.0),
            TransformSpec(kind="time-window", param=2),
        )
    )
    one = np.full((1, 1), 1.0)
    assert apply_stages(stages, one, 0)[0, 0] == 2.0
    # Second frame: scaled to 6, averaged with the previous scaled 2 -> 4.
    three = np.full((1, 1), 3.0)
    assert apply_stages(stages, three, 1)[0, 0] == 4.0


# -- cross-mesh transfer parity ---------------------------------------------


@pytest.mark.parametrize("nsrc", [1, 2, 4])
@pytest.mark.parametrize("ndst", [1, 2])
def test_transfer_between_matches_serial_bit_for_bit(nsrc, ndst):
    src = rect_tri(6)
    dst = delaunay_rect(8, seed=3)
    field = Field(src, "u", 0, 1)
    field.set_from_coords(front)
    serial = transfer_vertex_field(src, field, dst)

    src_d = make_distributed(src, nsrc)
    dst_d = make_distributed(dst, ndst)
    sfield = DistributedField(src_d, "u", 0, 1)
    sfield.set_from_coords(front)
    dfield, stats = transfer_between(src_d, sfield, dst_d)

    checked = 0
    for part in dst_d:
        ids = part.mesh.core.live_ids(0)
        gids = part.gids_of(0, ids)
        assert np.array_equal(
            dfield.on(part.pid).get_many(ids), serial.get_many(gids)
        )
        checked += len(ids)
    assert checked >= dst.count(0)
    assert stats.nsrc == nsrc and stats.ndst == ndst
    assert stats.sf_ops == 2
    assert stats.points == checked


def test_transfer_between_multicomponent():
    src = rect_tri(5)
    dst = rect_tri(7)

    def vec(x):
        return [front(x), -2.0 * front(x)]

    field = Field(src, "v", 0, 2)
    field.set_from_coords(vec)
    serial = transfer_vertex_field(src, field, dst)

    src_d = make_distributed(src, 2)
    dst_d = make_distributed(dst, 2)
    sfield = DistributedField(src_d, "v", 0, 2)
    sfield.set_from_coords(vec)
    dfield, _stats = transfer_between(src_d, sfield, dst_d)
    for part in dst_d:
        ids = part.mesh.core.live_ids(0)
        gids = part.gids_of(0, ids)
        assert np.array_equal(
            dfield.on(part.pid).get_many(ids), serial.get_many(gids)
        )


def test_transfer_between_deterministic_stats():
    src = rect_tri(5)
    dst = rect_tri(6)

    def run():
        src_d = make_distributed(src, 2)
        dst_d = make_distributed(dst, 2)
        sfield = DistributedField(src_d, "u", 0, 1)
        sfield.set_from_coords(front)
        _dfield, stats = transfer_between(src_d, sfield, dst_d)
        return stats.to_dict()

    assert run() == run()


def test_transfer_between_rejects_non_vertex_fields():
    src = rect_tri(3)
    dst = rect_tri(4)
    src_d = make_distributed(src, 1)
    dst_d = make_distributed(dst, 1)
    efield = DistributedField(src_d, "e", 2, 1)
    with pytest.raises(CoupleError):
        transfer_between(src_d, efield, dst_d)


def test_transfer_between_renames_output():
    src = rect_tri(3)
    dst = rect_tri(4)
    src_d = make_distributed(src, 1)
    dst_d = make_distributed(dst, 1)
    sfield = DistributedField(src_d, "u", 0, 1)
    sfield.set_from_coords(front)
    dfield, _ = transfer_between(src_d, sfield, dst_d, name="u_in")
    assert dfield.on(0).name == "u_in"
