"""Tests for repro.couple.graph: validation, topo order, peer groups."""

import pytest

from repro.couple import ChannelSpec, GraphError, JobGraph
from repro.svc import JobSpec


def jobs(*specs):
    return tuple(specs)


def test_valid_graph_and_topo_order():
    graph = JobGraph(
        jobs=jobs(
            JobSpec(name="c", workload="noop", deps=("a", "b")),
            JobSpec(name="b", workload="noop", deps=("a",)),
            JobSpec(name="a", workload="noop"),
        )
    )
    assert graph.topo_order() == ["a", "b", "c"]


def test_topo_order_sorted_ties():
    graph = JobGraph(
        jobs=jobs(
            JobSpec(name="z", workload="noop"),
            JobSpec(name="a", workload="noop"),
            JobSpec(name="m", workload="noop"),
        )
    )
    assert graph.topo_order() == ["a", "m", "z"]


def test_cycle_detected():
    with pytest.raises(GraphError, match="cycle"):
        JobGraph(
            jobs=jobs(
                JobSpec(name="a", workload="noop", deps=("b",)),
                JobSpec(name="b", workload="noop", deps=("a",)),
            )
        )


def test_unknown_dep_rejected():
    with pytest.raises(GraphError, match="unknown job"):
        JobGraph(jobs=jobs(JobSpec(name="a", workload="noop", deps=("x",))))


def test_duplicate_job_names_rejected():
    with pytest.raises(GraphError, match="duplicate job name"):
        JobGraph(
            jobs=jobs(
                JobSpec(name="a", workload="noop"),
                JobSpec(name="a", workload="noop"),
            )
        )


def coupled_pair(steps_b=2, bind_both=True):
    return jobs(
        JobSpec(
            name="a", workload="noop", steps=2, channels=("link",)
        ),
        JobSpec(
            name="b",
            workload="noop",
            steps=steps_b,
            channels=("link",) if bind_both else (),
        ),
    )


def test_channel_endpoints_validated():
    chan = ChannelSpec(name="link", src="a", dst="b")
    graph = JobGraph(jobs=coupled_pair(), channels=(chan,))
    assert graph.peer_groups() == [["a", "b"]]

    with pytest.raises(GraphError, match="unknown job"):
        JobGraph(
            jobs=jobs(JobSpec(name="a", workload="noop", channels=("link",))),
            channels=(chan,),
        )


def test_channel_steps_must_match():
    chan = ChannelSpec(name="link", src="a", dst="b")
    with pytest.raises(GraphError, match="different"):
        JobGraph(jobs=coupled_pair(steps_b=5), channels=(chan,))


def test_channel_binding_must_be_bidirectional():
    chan = ChannelSpec(name="link", src="a", dst="b")
    with pytest.raises(GraphError, match="does not list it"):
        JobGraph(jobs=coupled_pair(bind_both=False), channels=(chan,))
    # A job naming a channel it is not an endpoint of is also rejected.
    with pytest.raises(GraphError, match="unknown channel"):
        JobGraph(
            jobs=jobs(JobSpec(name="a", workload="noop", channels=("ghost",)))
        )


def test_coupled_jobs_cannot_be_dependent():
    chan = ChannelSpec(name="link", src="a", dst="b")
    with pytest.raises(GraphError, match="dependency path"):
        JobGraph(
            jobs=jobs(
                JobSpec(name="a", workload="noop", steps=2, channels=("link",)),
                JobSpec(
                    name="b",
                    workload="noop",
                    steps=2,
                    deps=("a",),
                    channels=("link",),
                ),
            ),
            channels=(chan,),
        )


def test_coupled_jobs_cannot_be_transitively_dependent():
    chan = ChannelSpec(name="link", src="a", dst="c")
    with pytest.raises(GraphError, match="dependency path"):
        JobGraph(
            jobs=jobs(
                JobSpec(name="a", workload="noop", channels=("link",)),
                JobSpec(name="b", workload="noop", deps=("a",)),
                JobSpec(
                    name="c", workload="noop", deps=("b",), channels=("link",)
                ),
            ),
            channels=(chan,),
        )


def test_peer_groups_union():
    graph = JobGraph(
        jobs=jobs(
            JobSpec(name="a", workload="noop", channels=("ab",)),
            JobSpec(name="b", workload="noop", channels=("ab", "bc")),
            JobSpec(name="c", workload="noop", channels=("bc",)),
            JobSpec(name="solo", workload="noop"),
        ),
        channels=(
            ChannelSpec(name="ab", src="a", dst="b"),
            ChannelSpec(name="bc", src="b", dst="c"),
        ),
    )
    assert graph.peer_groups() == [["a", "b", "c"], ["solo"]]


def test_dict_roundtrip():
    graph = JobGraph(
        jobs=jobs(
            JobSpec(name="a", workload="coupled", steps=3, channels=("link",)),
            JobSpec(name="b", workload="coupled", steps=3, channels=("link",)),
            JobSpec(name="post", workload="noop", deps=("a", "b")),
        ),
        channels=(ChannelSpec(name="link", src="a", dst="b"),),
    )
    again = JobGraph.from_dict(graph.to_dict())
    assert again.to_dict() == graph.to_dict()


def test_from_dict_rejects_unknown_fields_and_bad_jobs():
    with pytest.raises(GraphError):
        JobGraph.from_dict({"jobs": [], "bogus": 1})
    with pytest.raises(GraphError):
        JobGraph.from_dict({"jobs": [{"name": "a"}]})  # missing workload
    with pytest.raises(GraphError):
        JobGraph.from_dict(
            {
                "jobs": [{"name": "a", "workload": "noop"}],
                "channels": [{"name": "x"}],
            }
        )


def test_job_lookup():
    graph = JobGraph(jobs=jobs(JobSpec(name="a", workload="noop")))
    assert graph.job("a").name == "a"
    with pytest.raises(KeyError):
        graph.job("zzz")
