"""Tests for the solver-in-the-loop adaptive workload (repro.couple.loop)."""

import json

import pytest

from repro.couple import run_adapt_loop


def test_adapt_loop_monotone_and_parity():
    report = run_adapt_loop(n=6, cycles=3, parts=2)
    assert report["schema"] == "repro.couple.loop/1"
    assert len(report["records"]) == 3
    est = [rec["est_max"] for rec in report["records"]]
    # The loop's acceptance invariant: estimated error never increases.
    assert report["monotone_error"]
    assert all(b <= a for a, b in zip(est, est[1:]))
    # Refinement actually grows the mesh.
    elements = [rec["elements"] for rec in report["records"]]
    assert elements == sorted(elements)
    assert report["final_elements"] == elements[-1]
    # The built-in distributed-transfer parity self-check passed.
    assert report["distributed_transfer_matches"] is True


def test_adapt_loop_deterministic():
    a = run_adapt_loop(n=6, cycles=2, parts=2)
    b = run_adapt_loop(n=6, cycles=2, parts=2)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_adapt_loop_serial_parts():
    report = run_adapt_loop(n=5, cycles=2, parts=1)
    assert report["monotone_error"]
    # parts=1 skips the distributed self-check.
    assert "distributed_transfer_matches" not in report


def test_adapt_loop_validates_arguments():
    with pytest.raises(ValueError):
        run_adapt_loop(n=1)
    with pytest.raises(ValueError):
        run_adapt_loop(cycles=0)
    with pytest.raises(ValueError):
        run_adapt_loop(parts=0)
