"""Direct tests for public API members not covered elsewhere."""

import numpy as np
import pytest

from repro.mesh import Ent, rect_tri, box_tet
from repro.partition import distribute
from repro.partitioners import partition


def strips(mesh, nparts):
    return [
        min(int(mesh.centroid(e)[0] * nparts), nparts - 1)
        for e in mesh.entities(mesh.dim())
    ]


# -- adapt passes ---------------------------------------------------------------


def test_refine_pass_respects_max_splits():
    from repro.adapt import refine_pass
    from repro.field import UniformSize

    mesh = rect_tri(4)
    splits = refine_pass(mesh, UniformSize(0.05), max_splits=3)
    assert splits == 3


def test_coarsen_pass_respects_max_collapses():
    from repro.adapt import coarsen_pass
    from repro.field import UniformSize

    mesh = rect_tri(8)
    collapses = coarsen_pass(mesh, UniformSize(0.6), max_collapses=2)
    assert collapses <= 2


# -- dmesh helpers -----------------------------------------------------------------


def test_dmesh_helpers():
    mesh = rect_tri(4)
    dm = distribute(mesh, strips(mesh, 3))
    assert dm.total_owned(0) == mesh.count(0)
    neighbor_map = dm.neighbor_map()
    assert neighbor_map[0] == {1}
    assert neighbor_map[1] == {0, 2}
    assert dm.shared_entity_count(dim=0) > 0
    assert dm.shared_entity_count() >= dm.shared_entity_count(dim=0)
    # gid allocation: monotone, note_gid raises the floor.
    a = dm.alloc_gid(0)
    dm.note_gid(0, a + 100)
    assert dm.alloc_gid(0) == a + 101
    # add_part extends the auto topology.
    before = dm.nparts
    new = dm.add_part()
    assert new.pid == before
    assert dm.topology.total_cores >= dm.nparts
    with pytest.raises(ValueError):
        dm.part(dm.nparts)


def test_part_counters():
    mesh = rect_tri(3)
    dm = distribute(mesh, strips(mesh, 3))
    part = dm.part(1)
    assert part.entity_count(2) == part.mesh.count(2)
    assert part.entity_counts()[2] == part.entity_count(2)
    owned = part.owned_count(0)
    assert 0 < owned <= part.entity_count(0)
    v = next(part.shared_entities(0))
    assert part.has_gid(v)
    assert "Part(1" in repr(part)
    assert "DistributedMesh" in repr(dm)


def test_entity_key_shapes():
    from repro.partition.migration import entity_key

    mesh = rect_tri(2)
    dm = distribute(mesh, strips(mesh, 2))
    part = dm.part(0)
    v = next(part.mesh.entities(0))
    assert entity_key(part, v) == (part.gid(v),)
    e = next(part.mesh.entities(1))
    key = entity_key(part, e)
    assert len(key) == 2 and key == tuple(sorted(key))


def test_spawn_empty_part():
    from repro.partition import spawn_empty_part

    mesh = rect_tri(2)
    dm = distribute(mesh, strips(mesh, 2))
    pid = spawn_empty_part(dm)
    assert dm.part(pid).mesh.count(2) == 0


def test_default_owner_rule():
    from repro.partition import default_owner_rule

    assert default_owner_rule((3, 1, 7)) == 1


# -- ParMA facade -------------------------------------------------------------------


def test_parma_facade_split_and_predictive():
    from repro.core import ParMA
    from repro.field import UniformSize

    mesh = box_tet(4)
    assignment = np.where(np.asarray(strips(mesh, 4)) <= 1, 0, 2)
    dm = distribute(mesh, assignment, nparts=4)
    balancer = ParMA(dm)
    split_stats = balancer.split_heavy_parts(tol=0.10)
    assert split_stats.rounds >= 1
    moved = balancer.predictive_balance(UniformSize(0.25))
    assert moved >= 0
    dm.verify()


def test_is_lightly_loaded_modes():
    from repro.core import is_lightly_loaded

    counts = np.array([[0, 0, 0, 100], [0, 0, 0, 40], [0, 0, 0, 70]])
    # Part 1 below mean (70): absolutely light; part 2 at mean: not.
    assert is_lightly_loaded(counts, 1, 3, 0, mean=70.0, mode="absolute")
    assert not is_lightly_loaded(counts, 2, 3, 0, mean=70.0, mode="absolute")
    assert is_lightly_loaded(counts, 2, 3, 0, mean=70.0, mode="relative")
    assert is_lightly_loaded(counts, 2, 3, 0, mean=70.0, mode="both")
    with pytest.raises(ValueError):
        is_lightly_loaded(counts, 1, 3, 0, mean=70.0, mode="sideways")


def test_boundary_facet_count():
    from repro.core.selection import boundary_facet_count

    mesh = rect_tri(2)
    dm = distribute(mesh, strips(mesh, 2))
    part = dm.part(0)
    counts = [
        boundary_facet_count(part, e) for e in part.mesh.entities(2)
    ]
    assert max(counts) >= 1
    assert min(counts) >= 0


def test_element_size_helper():
    from repro.core.predictive import element_size

    mesh = rect_tri(2)
    element = next(mesh.entities(2))
    size = element_size(mesh, element)
    assert 0.25 < size < 0.71  # between axis and diagonal edge lengths


# -- multilevel internals -----------------------------------------------------------


def test_heavy_edge_matching_pairs_heavy_edges():
    from repro.partitioners import heavy_edge_matching

    # Path 0-1-2-3 with a heavy middle edge: 1 and 2 must match together.
    xadj = np.array([0, 1, 3, 5, 6])
    adjncy = np.array([1, 0, 2, 1, 3, 2])
    eweights = np.array([1.0, 1.0, 9.0, 9.0, 1.0, 1.0])
    rng = np.random.default_rng(0)
    mate = heavy_edge_matching(xadj, adjncy, eweights, rng)
    assert mate[1] == 2 and mate[2] == 1
    # Matching is an involution.
    for i, m in enumerate(mate):
        assert mate[m] == i


def test_greedy_grow_reaches_target_weight():
    from repro.partitioners import dual_graph, greedy_grow

    mesh = rect_tri(6)
    graph = dual_graph(mesh)
    rng = np.random.default_rng(1)
    side = greedy_grow(
        graph.xadj, graph.adjncy, graph.weights.astype(float), 0.5, rng
    )
    sizes = np.bincount(side, minlength=2)
    assert abs(sizes[0] - sizes[1]) <= 2
    # Side 0 is connected (grown by BFS): every side-0 node reaches the
    # seed through side-0 nodes.
    zero = set(np.flatnonzero(side == 0).tolist())
    frontier = {next(iter(zero))}
    seen = set(frontier)
    while frontier:
        nxt = set()
        for i in frontier:
            for j in graph.neighbors(i):
                if int(j) in zero and int(j) not in seen:
                    seen.add(int(j))
                    nxt.add(int(j))
        frontier = nxt
    assert seen == zero


def test_contract_merges_weights():
    from repro.partitioners import contract

    xadj = np.array([0, 1, 3, 4])
    adjncy = np.array([1, 0, 2, 1])
    weights = np.array([1, 2, 3])
    eweights = np.array([1.0, 1.0, 1.0, 1.0])
    mate = np.array([1, 0, 2])  # merge 0+1, keep 2
    cxadj, cadjncy, cweights, ceweights, cmap = contract(
        xadj, adjncy, weights, eweights, mate
    )
    assert len(cweights) == 2
    assert sorted(cweights.tolist()) == [3, 3]
    assert cmap[0] == cmap[1] != cmap[2]


def test_refine_connectivity_direct():
    from repro.partitioners import refine_connectivity, element_hypergraph

    mesh = rect_tri(6)
    assignment = partition(mesh, 3, method="rcb")
    refined, moves = refine_connectivity(mesh, assignment, passes=2)
    hg = element_hypergraph(mesh)
    assert hg.connectivity_cost(refined) <= hg.connectivity_cost(assignment)
    assert moves >= 0


# -- misc field/mesh -----------------------------------------------------------------


def test_field_ncomp():
    from repro.field import Field

    mesh = rect_tri(1)
    assert Field(mesh, "s").ncomp == 1
    assert Field(mesh, "m", shape=(2, 3)).ncomp == 6


def test_sizefield_vertex_and_edge_target():
    from repro.field import UniformSize

    mesh = rect_tri(2)
    size = UniformSize(0.3)
    v = next(mesh.entities(0))
    assert size.at_vertex(mesh, v) == 0.3
    e = next(mesh.entities(1))
    assert size.edge_target(mesh, e) == 0.3


def test_segment_param():
    from repro.gmodel import SegmentShape

    seg = SegmentShape([0, 0], [2, 0])
    assert seg.param([1.0, 5.0]) == pytest.approx(0.5)
    assert seg.param([-9.0, 0.0]) == 0.0
    assert seg.param([9.0, 0.0]) == 1.0


def test_perf_timers_snapshot():
    from repro.parallel import PerfCounters

    perf = PerfCounters()
    with perf.timer("t"):
        pass
    snap = perf.timers()
    assert "t" in snap and snap["t"].count == 1


# -- consolidated top-level API ---------------------------------------------------


def test_top_level_entry_points():
    """The one-true entry points are importable from ``repro`` directly."""
    import repro

    for name in (
        "spmd",
        "DistributedMesh",
        "DistributedField",
        "distribute",
        "migrate",
        "ghost_layer",
        "delete_ghosts",
        "synchronize",
        "accumulate",
        "ParMA",
        "Tracer",
        "StarForest",
        "Overlap",
    ):
        assert hasattr(repro, name), name
        assert name in repro.__all__, name
    # And they are the same objects the subpackages expose.
    from repro.partition import migrate as p_migrate

    assert repro.migrate is p_migrate


def test_top_level_stats_types():
    """Each distributed service's stats type is part of the pinned surface."""
    import repro
    from repro import obs

    for name in (
        "MigrateStats",
        "GhostStats",
        "GhostDeleteStats",
        "SyncStats",
        "AccumulateStats",
        "SFStats",
    ):
        assert getattr(repro, name) is getattr(obs, name)
        assert name in repro.__all__


def test_top_level_resilience_surface():
    """The resilience subsystem is part of the pinned public API."""
    import repro
    from repro import resilience

    for name in (
        "CheckpointManager",
        "CorruptCheckpointError",
        "FaultInjector",
        "FaultPlan",
        "InjectedRankFailure",
        "resilient_spmd",
    ):
        assert getattr(repro, name) is getattr(resilience, name)
        assert name in repro.__all__, name
    assert "resilience" in repro.__all__
    # CorruptCheckpointError is one class, wherever it is imported from.
    from repro.partition import CorruptCheckpointError as from_partition

    assert repro.CorruptCheckpointError is from_partition
    # RankFailure (structured SpmdError records) is pinned too.
    from repro.parallel import RankFailure

    assert repro.RankFailure is RankFailure
    assert "RankFailure" in repro.__all__


def test_resilience_subpackage_all():
    """Everything resilience.__all__ names resolves, and the core names are in."""
    from repro import resilience

    for name in resilience.__all__:
        assert hasattr(resilience, name), name
    for name in (
        "FaultSpec",
        "FaultPlanError",
        "FaultRecord",
        "InjectedFault",
        "CorruptedPayload",
        "NoCheckpointError",
        "CheckpointInfo",
        "RecoveryEvent",
        "RecoveryExhaustedError",
        "RecoveryReport",
        "classify_failure",
    ):
        assert name in resilience.__all__, name


def test_top_level_svc_surface():
    """The serving tier is part of the pinned public API."""
    import repro
    from repro import svc

    for name in (
        "AdmissionError",
        "JobFailure",
        "JobResult",
        "JobSpec",
        "MeshJobService",
        "RetryPolicy",
        "ServiceReport",
    ):
        assert getattr(repro, name) is getattr(svc, name)
        assert name in repro.__all__, name
    assert "svc" in repro.__all__
    # The typed machine-validation error rides along at the top level.
    from repro.parallel import TopologyError

    assert repro.TopologyError is TopologyError
    assert "TopologyError" in repro.__all__


def test_store_surface():
    """Snapshot-store entry points re-export from the top level."""
    import repro
    from repro import store

    for name in ("SnapshotStore", "SnapshotCache", "StoreStats"):
        assert getattr(repro, name) is getattr(store, name)
        assert name in repro.__all__, name
    assert "store" in repro.__all__


def test_store_subpackage_all():
    """Everything store.__all__ names resolves, and the core names are in."""
    from repro import store

    for name in store.__all__:
        assert hasattr(store, name), name
    for name in (
        "FORMAT",
        "CorruptSnapshotError",
        "SnapshotCache",
        "SnapshotState",
        "SnapshotStore",
        "StoreStats",
        "cache_key",
        "current_cache",
        "diff_states",
        "field_checksum",
        "install_cache",
        "owned_gid_set",
        "state_from_dmesh",
        "uninstall_cache",
    ):
        assert name in store.__all__, name
    assert store.FORMAT == "repro.store/1"


def test_svc_subpackage_all():
    """Everything svc.__all__ names resolves, and the core names are in."""
    from repro import svc

    for name in svc.__all__:
        assert hasattr(svc, name), name
    for name in (
        "SCHEMA",
        "AdmissionQueue",
        "GangScheduler",
        "JobSpecError",
        "JobStats",
        "Placement",
        "PlacementError",
        "PlacementRecord",
        "QueuedJob",
        "RoundRecord",
        "default_machine",
        "load_report",
        "load_specs",
    ):
        assert name in svc.__all__, name
    assert svc.SCHEMA == "repro.svc/1"


def test_top_level_couple_surface():
    """The coupling hub is part of the pinned public API."""
    import repro
    from repro import couple

    for name in (
        "ChannelSpec",
        "CoupleError",
        "JobGraph",
        "run_adapt_loop",
        "transfer_between",
    ):
        assert getattr(repro, name) is getattr(couple, name)
        assert name in repro.__all__, name
    assert "couple" in repro.__all__


def test_couple_subpackage_all():
    """Everything couple.__all__ names resolves, and the core names are in."""
    from repro import couple

    for name in couple.__all__:
        assert hasattr(couple, name), name
    for name in (
        "FRAME_SCHEMA",
        "Channel",
        "ChannelClosedError",
        "ChannelHub",
        "ChannelSpec",
        "CoupleError",
        "Endpoint",
        "FieldFrame",
        "GraphError",
        "JobGraph",
        "TransformSpec",
        "XferStats",
        "run_adapt_loop",
        "transfer_between",
    ):
        assert name in couple.__all__, name
    assert couple.FRAME_SCHEMA == "repro.couple/1"


def test_parallel_placement_surface():
    """The core-reservation API is exported from repro.parallel."""
    from repro import parallel

    for name in (
        "CoreLedger",
        "CoreSlot",
        "MachineTopology",
        "PlacedTopology",
        "TopologyError",
    ):
        assert hasattr(parallel, name), name
        assert name in parallel.__all__, name


def test_wire_codec_surface():
    """The binary wire codec knob is part of the pinned public API."""
    import repro
    from repro.parallel import CODECS, CodecError, Network, codec

    # CodecError is one class, importable from the top level too.
    assert repro.CodecError is CodecError
    assert "CodecError" in repro.__all__
    assert issubclass(CodecError, ValueError)
    # The codec registry and defaults.
    assert CODECS == ("binary", "pickle")
    assert Network(2).codec == "binary"
    # The knob threads from distribute through DistributedMesh.
    mesh = rect_tri(2)
    dm = distribute(mesh, strips(mesh, 2), codec="pickle")
    assert dm.codec == "pickle"
    with pytest.raises(ValueError):
        distribute(mesh, strips(mesh, 2), codec="gzip")
    # The wire-format module surface used by the services.
    for name in (
        "MAGIC",
        "VERSION",
        "dumps",
        "loads",
        "encode_element_batch",
        "decode_element_batch",
        "encode_value_batch",
        "decode_value_batch",
        "encode_int_rows",
        "decode_int_rows",
    ):
        assert hasattr(codec, name), name


def test_stats_carry_codec_counters():
    """Every comm-bearing stats record reports the codec counters, and they
    serialize through to_dict like the rest of the surface."""
    from repro import DistributedField, migrate, synchronize

    mesh = rect_tri(4)
    dm = distribute(mesh, strips(mesh, 2))
    element = next(dm.part(0).mesh.entities(2))
    mstats = migrate(dm, {0: {element: 1}})
    assert mstats.encoded_bytes > 0
    assert mstats.messages_coalesced >= 1
    df = DistributedField(dm, "u")
    df.set_from_coords(lambda x: x[0])
    sstats = synchronize(df)
    d = sstats.to_dict()
    assert d["encoded_bytes"] == sstats.encoded_bytes > 0
    assert d["messages_coalesced"] == sstats.messages_coalesced > 0


def test_services_return_typed_stats():
    """No caller can depend on the old bare-int returns anymore."""
    from repro import (
        AccumulateStats,
        DistributedField,
        GhostDeleteStats,
        GhostStats,
        MigrateStats,
        SyncStats,
        accumulate,
        delete_ghosts,
        distribute,
        ghost_layer,
        migrate,
        synchronize,
    )

    mesh = rect_tri(4)
    dm = distribute(mesh, strips(mesh, 2))
    element = next(dm.part(0).mesh.entities(2))
    mstats = migrate(dm, {0: {element: 1}})
    assert isinstance(mstats, MigrateStats) and not isinstance(mstats, int)
    assert mstats.elements_moved == 1
    assert sum(mstats.per_dimension) >= 1
    assert mstats.seconds >= 0.0
    assert "migrate" in mstats.summary()

    gstats = ghost_layer(dm)
    assert isinstance(gstats, GhostStats)
    assert gstats.ghosts_created > 0 and gstats.layers == 1
    dstats = delete_ghosts(dm)
    assert isinstance(dstats, GhostDeleteStats)
    assert dstats.entities_removed > 0

    df = DistributedField(dm, "u")
    df.set_from_coords(lambda x: x[0])
    sstats = synchronize(df)
    assert isinstance(sstats, SyncStats)
    assert sstats.values_sent > 0 and sstats.messages > 0
    astats = accumulate(df)
    assert isinstance(astats, AccumulateStats)
    assert astats.values_sent == astats.contributions + astats.synced
    # Stats serialize to plain JSON-safe dicts.
    for stats in (mstats, gstats, dstats, sstats, astats):
        d = stats.to_dict()
        assert isinstance(d, dict) and "messages" in d


def test_star_forest_surface():
    """StarForest, Overlap and SFStats are pinned, and every distributed
    service routes through the forest (sf_ops > 0 on its stats)."""
    import repro
    from repro import DistributedField, Overlap, SFStats, StarForest
    from repro.parallel import StarForest as p_StarForest
    from repro.parallel.sf import OPS, SFComm
    from repro.partition import Overlap as pt_Overlap

    assert StarForest is p_StarForest
    assert Overlap is pt_Overlap
    assert "StarForest" in repro.__all__ and "Overlap" in repro.__all__
    assert OPS == ("replace", "sum", "min", "max")

    # Overlap is frozen and validated.
    ov = Overlap(depth=2, bridge_dim=1, include_closure=False)
    with pytest.raises(Exception):
        ov.depth = 3
    with pytest.raises(ValueError):
        Overlap(depth=-1)
    assert Overlap.from_dict(ov.to_dict()) == ov

    # A depth-2 overlap builds and verifies, and every service reports the
    # star-forest operations it executed.
    from repro import (
        accumulate,
        delete_ghosts,
        distribute,
        ghost_layer,
        migrate,
        synchronize,
    )

    mesh = rect_tri(6)
    dm = distribute(mesh, strips(mesh, 3))
    gstats = ghost_layer(dm, overlap=Overlap(depth=2))
    dm.verify()
    assert gstats.layers == 2 and gstats.sf_ops == 2
    assert gstats.to_dict()["sf_ops"] == 2
    delete_ghosts(dm)
    element = next(dm.part(0).mesh.entities(2))
    assert migrate(dm, {0: {element: 1}}).sf_ops == 1
    df = DistributedField(dm, "u")
    df.set_from_coords(lambda x: x[0])
    assert synchronize(df).sf_ops == 1
    assert accumulate(df).sf_ops == 2

    # The raw primitive works standalone over SFComm, and returns SFStats.
    comm = SFComm(2)
    forest = StarForest(comm, name="t")
    forest.add_leaf(1, "a", 0, "r")
    got = {}
    stats = forest.bcast(lambda pid, h: 7, lambda pid, h, v: got.update({h: v}))
    assert isinstance(stats, SFStats)
    assert got == {"a": 7} and stats.nleaves == 1 and stats.supersteps == 1
