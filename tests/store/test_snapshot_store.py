"""Tests for `SnapshotStore`: epochs, parallel load, compaction, cache."""

import numpy as np
import pytest

from repro.mesh import rect_tri
from repro.obs import Tracer
from repro.parallel.perf import PerfCounters
from repro.partition import DistributedField, distribute, migrate
from repro.store import (
    CorruptSnapshotError,
    SnapshotCache,
    SnapshotStore,
    current_cache,
    field_checksum,
    install_cache,
    owned_gid_set,
    uninstall_cache,
)


def strips(mesh, nparts):
    return [
        min(int(mesh.centroid(e)[0] * nparts), nparts - 1)
        for e in mesh.entities(mesh.dim())
    ]


def make_dmesh(nparts=4, n=4):
    mesh = rect_tri(n)
    return distribute(mesh, strips(mesh, nparts)), mesh


def coord_field(dm, name="temp"):
    f = DistributedField(dm, name, 0, 1)
    for part in dm:
        local = f.on(part.pid)
        for v in part.mesh.entities(0):
            local.set(v, np.array([float(part.gid(v))]))
    return f


def parity(dm, fields):
    return (
        owned_gid_set(dm, dm.element_dim()),
        {
            name: round(field_checksum(dm, f), 9)
            for name, f in sorted(fields.items())
        },
    )


@pytest.mark.parametrize("target", [1, 2, 8])
def test_parallel_load_any_part_count(tmp_path, target):
    dm, mesh = make_dmesh(nparts=4, n=4)
    f = coord_field(dm)
    store = SnapshotStore(tmp_path / "st", chunk_records=16)
    store.save(dm, [f])
    expect = (owned_gid_set(dm, 2), round(field_checksum(dm, f), 9))
    dm2, fields, stats = store.load_at(nparts=target, model=mesh.model)
    dm2.verify()
    assert dm2.nparts == target
    assert owned_gid_set(dm2, 2) == expect[0]
    assert round(field_checksum(dm2, fields["temp"]), 9) == expect[1]
    assert stats.op == "load" and stats.nparts == target
    assert stats.chunks > 0 and stats.records > 0


def test_load_defaults_to_saved_nparts(tmp_path):
    dm, mesh = make_dmesh(nparts=3)
    store = SnapshotStore(tmp_path / "st")
    store.save(dm)
    dm2, _, _ = store.load_at(model=mesh.model)
    assert dm2.nparts == 3


def test_delta_chain_save_and_load(tmp_path):
    dm, mesh = make_dmesh(nparts=4, n=6)
    f = coord_field(dm)
    store = SnapshotStore(tmp_path / "st", chunk_records=16)
    e0 = store.save(dm, [f])
    assert e0.kind == "full"

    part0 = dm.part(0)
    elems = list(part0.mesh.entities(2))[:2]
    migrate(dm, {0: {e: 1 for e in elems}})
    e1 = store.save(dm, [f])
    assert e1.kind == "delta"
    # A pure migration changes nothing canonical: the delta is empty.
    assert e1.records == 0

    local = f.on(1)
    part1 = dm.part(1)
    dirtied = 0
    for v in part1.mesh.entities(0):
        if part1.owns(v) and not part1.is_ghost(v):
            local.set(v, np.array([999.0]))
            dirtied += 1
            if dirtied == 4:
                break
    e2 = store.save(dm, [f])
    assert e2.kind == "delta" and 0 < e2.records <= dirtied
    assert e2.payload_bytes < 0.25 * e0.payload_bytes

    want = parity(dm, {"temp": f})
    for target in (1, 3, 8):
        dm2, fields, stats = store.load_at(nparts=target, model=mesh.model)
        dm2.verify()
        assert parity(dm2, fields) == want
        assert stats.chain_length == 3


def test_full_every_caps_chain_length(tmp_path):
    dm, _ = make_dmesh(nparts=2, n=3)
    store = SnapshotStore(tmp_path / "st", full_every=2)
    kinds = [store.save(dm).kind for _ in range(5)]
    assert kinds == ["full", "delta", "full", "delta", "full"]


def test_compact_is_deterministic_and_equivalent(tmp_path):
    dm, mesh = make_dmesh(nparts=3, n=4)
    f = coord_field(dm)
    for root in ("a", "b"):
        store = SnapshotStore(tmp_path / root, chunk_records=16)
        store.save(dm, [f])
        local = f.on(0)
        part0 = dm.part(0)
        v = next(
            v for v in part0.mesh.entities(0)
            if part0.owns(v) and not part0.is_ghost(v)
        )
        local.set(v, np.array([5.5])) if root == "a" else None
        # both stores get the same final state: re-set deterministically
        local.set(v, np.array([5.5]))
        store.save(dm, [f])
        store.compact()
    tip_a = SnapshotStore(tmp_path / "a").tip()
    tip_b = SnapshotStore(tmp_path / "b").tip()
    assert tip_a.kind == tip_b.kind == "full"
    for chunk in sorted(p.name for p in tip_a.path.iterdir()):
        assert (tip_a.path / chunk).read_bytes() == (
            tip_b.path / chunk
        ).read_bytes()
    want = parity(dm, {"temp": f})
    dm2, fields, _ = SnapshotStore(tmp_path / "a").load_at(
        nparts=2, model=mesh.model
    )
    assert parity(dm2, fields) == want


def test_prune_compacts_surviving_delta(tmp_path):
    dm, mesh = make_dmesh(nparts=2, n=3)
    store = SnapshotStore(tmp_path / "st")
    for _ in range(4):
        store.save(dm)
    assert [e.kind for e in store.epochs()] == [
        "full", "delta", "delta", "delta"
    ]
    pruned = store.prune(2)
    assert pruned == [0, 1]
    kinds = {e.index: e.kind for e in store.epochs()}
    assert kinds == {2: "full", 3: "delta"}
    dm2, _, _ = store.load_at(model=mesh.model)
    assert owned_gid_set(dm2, 2) == owned_gid_set(dm, 2)
    assert store.prune(0) == []  # unlimited sentinel


def test_broken_chain_raises(tmp_path):
    import shutil

    dm, _ = make_dmesh(nparts=2, n=3)
    store = SnapshotStore(tmp_path / "st")
    store.save(dm)
    store.save(dm)
    shutil.rmtree(store.epochs()[0].path)
    with pytest.raises(CorruptSnapshotError):
        store.load_at(nparts=2)
    # ...but a fresh save recovers with a full epoch (corrupt parent).
    info = store.save(dm)
    assert info.kind == "full"


def test_counters_and_spans(tmp_path):
    dm, mesh = make_dmesh(nparts=2, n=3)
    counters = PerfCounters()
    tracer = Tracer(counters=counters)
    tracer.bind(pid=0, tid=0)
    store = SnapshotStore(tmp_path / "st", counters=counters, tracer=tracer)
    store.save(dm)
    assert counters.get("store.epochs.full") == 1
    assert counters.get("store.chunks.written") > 0
    assert counters.get("store.bytes.written") > 0
    dm2, _, stats = store.load_at(nparts=2, model=mesh.model, counters=counters)
    assert counters.get("store.chunks.read") >= stats.chunks > 0
    assert counters.get("store.records.loaded") > 0
    names = [s.name for root in tracer.roots for s in root.walk()]
    assert "store.save" in names and "store.load" in names
    assert "sf.bcast" in names  # the redistribution rides the star forest


def test_cache_hit_miss_and_warm_start(tmp_path):
    dm, _ = make_dmesh(nparts=4, n=4)
    counters = PerfCounters()
    cache = SnapshotCache(tmp_path / "cache", counters=counters)
    params = {"n": 4}
    assert cache.fetch("w", params, nparts=2) is None
    assert counters.get("store.cache.misses") == 1
    cache.put("w", params, dm)
    got = cache.fetch("w", params, nparts=2)
    assert got is not None
    assert counters.get("store.cache.hits") == 1
    dm2, _, _ = got
    assert owned_gid_set(dm2, 2) == owned_gid_set(dm, 2)

    calls = []

    def build():
        calls.append(1)
        return make_dmesh(nparts=2, n=5)[0], ()

    m1, _, warm1 = cache.warm_start("x", {"n": 5}, 2, build)
    m2, _, warm2 = cache.warm_start("x", {"n": 5}, 2, build)
    assert (warm1, warm2) == (False, True)
    assert len(calls) == 1  # geometry generation skipped on the hit
    assert owned_gid_set(m1, 2) == owned_gid_set(m2, 2)


def test_install_current_uninstall():
    assert current_cache() is None
    cache = SnapshotCache("/tmp/unused-cache-root")
    try:
        assert install_cache(cache) is cache
        assert current_cache() is cache
    finally:
        uninstall_cache()
    assert current_cache() is None
