"""Tests for the ``repro.store/1`` format layer: state, diff, chunks."""

import json

import numpy as np
import pytest

from repro.mesh import rect_tri
from repro.partition import DistributedField, distribute, migrate
from repro.store import (
    CorruptSnapshotError,
    apply_delta,
    diff_states,
    state_from_dmesh,
)
from repro.store.format import (
    load_chunk,
    read_epoch_manifest,
    write_epoch,
)


def strips(mesh, nparts):
    return [
        min(int(mesh.centroid(e)[0] * nparts), nparts - 1)
        for e in mesh.entities(mesh.dim())
    ]


def make_dmesh(nparts=3, n=4):
    mesh = rect_tri(n)
    return distribute(mesh, strips(mesh, nparts)), mesh


def coord_field(dm, name="temp"):
    f = DistributedField(dm, name, 0, 1)
    for part in dm:
        local = f.on(part.pid)
        for v in part.mesh.entities(0):
            local.set(v, np.array([float(part.gid(v))]))
    return f


def test_state_is_part_count_agnostic():
    mesh = rect_tri(4)
    states = []
    for nparts in (1, 2, 4):
        dm = distribute(mesh, strips(mesh, nparts))
        f = coord_field(dm)
        states.append(state_from_dmesh(dm, [f]))
    base = states[0]
    for other in states[1:]:
        assert other.verts == base.verts
        assert other.elems == base.elems
        assert other.tags == base.tags
        upserts, removed = diff_states(base, other)
        assert upserts.record_count() == 0
        assert not any(removed.values())


def test_pure_migration_diffs_to_zero():
    """Moving entities between parts changes nothing canonical.

    The mesh/tag columns are keyed by global identity, so a migration is
    invisible to the diff.  (Field values are runtime state: a value whose
    only holding part handed the entity away is dropped from the canonical
    state, which the diff records as a removal — also exercised here.)
    """
    dm, _ = make_dmesh(nparts=3, n=4)
    f = coord_field(dm)
    before = state_from_dmesh(dm, [f])
    part0 = dm.part(0)
    elems = list(part0.mesh.entities(2))[:2]
    migrate(dm, {0: {e: 1 for e in elems}})
    after = state_from_dmesh(dm, [f])
    upserts, removed = diff_states(before, after)
    assert upserts.record_count() == 0
    assert removed["verts"] == []
    assert removed["elems"] == []
    assert removed["tags"] == []
    # Only field values may drop, and only ones the migration orphaned.
    orphaned = removed.get("fields", {}).get("temp", [])
    assert all(
        tuple(key) not in {
            k for k in after.fields["temp"]
        }
        for key in orphaned
    )


def test_diff_then_apply_roundtrips():
    dm, _ = make_dmesh(nparts=2, n=4)
    f = coord_field(dm)
    before = state_from_dmesh(dm, [f])
    # Dirty a few owned field values and re-extract.
    part = dm.part(1)
    local = f.on(1)
    dirtied = 0
    for v in part.mesh.entities(0):
        if part.owns(v) and not part.is_ghost(v):
            local.set(v, np.array([123.5]))
            dirtied += 1
            if dirtied == 3:
                break
    after = state_from_dmesh(dm, [f])
    upserts, removed = diff_states(before, after)
    assert 0 < upserts.record_count() <= dirtied
    rebuilt = state_from_dmesh(dm, [f])  # independent copy of `after`
    apply_delta(before, upserts, removed)
    assert before.fields == {} or True  # structure compared below
    assert before.verts == rebuilt.verts
    assert before.elems == rebuilt.elems
    keys = set(before.fields["temp"])
    assert keys == set(rebuilt.fields["temp"])
    for key in keys:
        assert np.array_equal(before.fields["temp"][key],
                              rebuilt.fields["temp"][key])


def test_write_epoch_is_byte_deterministic(tmp_path):
    dm, _ = make_dmesh()
    f = coord_field(dm)
    state = state_from_dmesh(dm, [f])
    write_epoch(tmp_path / "a", state, chunk_records=16)
    write_epoch(tmp_path / "b", state, chunk_records=16)
    files_a = sorted(p.name for p in (tmp_path / "a").iterdir())
    files_b = sorted(p.name for p in (tmp_path / "b").iterdir())
    assert files_a == files_b
    for name in files_a:
        assert (tmp_path / "a" / name).read_bytes() == (
            tmp_path / "b" / name
        ).read_bytes()


def test_chunking_respects_chunk_records(tmp_path):
    dm, _ = make_dmesh(nparts=2, n=4)
    state = state_from_dmesh(dm)
    manifest = write_epoch(tmp_path / "ep", state, chunk_records=8)
    for section, chunks in manifest["sections"].items():
        for entry in chunks:
            assert entry["count"] <= 8
    total = sum(
        e["count"] for chunks in manifest["sections"].values()
        for e in chunks
    )
    assert total == state.record_count() == manifest["records"]


def test_corrupt_chunk_names_file_and_full_hashes(tmp_path):
    dm, _ = make_dmesh(nparts=2, n=3)
    state = state_from_dmesh(dm)
    manifest = write_epoch(tmp_path / "ep", state, chunk_records=64)
    entry = manifest["sections"]["elems"][0]
    chunk = tmp_path / "ep" / entry["file"]
    data = bytearray(chunk.read_bytes())
    data[0] ^= 0xFF
    chunk.write_bytes(bytes(data))
    with pytest.raises(CorruptSnapshotError) as err:
        load_chunk(tmp_path / "ep", entry)
    message = str(err.value)
    assert entry["file"] in message
    assert entry["sha256"] in message  # the full expected hash
    # ... and a full-length actual hash alongside it.
    assert message.count("sha256") >= 1
    hashes = [t for t in message.replace(":", " ").split() if len(t) == 64]
    assert len(hashes) >= 2


def test_manifest_validation(tmp_path):
    with pytest.raises(CorruptSnapshotError):
        read_epoch_manifest(tmp_path / "missing")
    bad = tmp_path / "bad"
    bad.mkdir()
    (bad / "manifest.json").write_text("{not json")
    with pytest.raises(CorruptSnapshotError):
        read_epoch_manifest(bad)
    (bad / "manifest.json").write_text(json.dumps({"format": "other/1"}))
    with pytest.raises(CorruptSnapshotError):
        read_epoch_manifest(bad)
