"""Tests for the Tracer core: spans, supersteps, matrices, timelines."""

import pytest

from repro import obs
from repro.mesh import rect_tri
from repro.obs.tracer import _NULL_CONTEXT, trace_span
from repro.parallel import Network, PerfCounters, spmd
from repro.partition import DistributedMesh, distribute, migrate


def strips(mesh, nparts):
    return [
        min(int(mesh.centroid(e)[0] * nparts), nparts - 1)
        for e in mesh.entities(mesh.dim())
    ]


def test_span_nesting_and_timing():
    t = obs.Tracer()
    with t.span("outer"):
        with t.span("inner", detail=7):
            pass
    assert len(t.roots) == 1
    outer = t.roots[0]
    assert outer.name == "outer"
    assert [c.name for c in outer.children] == ["inner"]
    inner = outer.children[0]
    assert inner.args == {"detail": 7}
    assert outer.seconds >= inner.seconds >= 0.0
    assert outer.t0 <= inner.t0 and inner.t1 <= outer.t1
    assert outer.find("inner") is inner
    assert [s.name for s in outer.walk()] == ["outer", "inner"]


def test_span_counter_deltas():
    perf = PerfCounters()
    t = obs.Tracer(counters=perf)
    perf.add("pre.existing", 5)
    with t.span("work"):
        perf.add("work.items", 3)
    span = t.roots[0]
    assert span.counter_deltas == {"work.items": 3}  # unchanged keys omitted


def test_network_exchange_closes_supersteps():
    t = obs.Tracer()
    net = Network(2, tracer=t)
    net.post(0, 1, 1, "hello")
    net.post(1, 0, 1, "world")
    net.exchange()
    net.exchange()  # empty superstep still closes
    assert t.superstep_count() == 2
    first = t.comm_matrix(superstep=0)
    assert set(first) == {(0, 1), (1, 0)}
    assert first[(0, 1)][0] == 1  # one message
    assert t.comm_matrix(superstep=1) == {}
    assert t.total_messages() == 2


def test_span_superstep_alignment():
    t = obs.Tracer()
    net = Network(2, tracer=t)
    net.exchange()
    with t.span("two-steps"):
        net.post(0, 1, 1, "x")
        net.exchange()
        net.exchange()
    span = t.roots[0]
    assert span.superstep_start == 1
    assert span.superstep_end == 3
    assert span.supersteps == 2


def test_disabled_tracer_records_nothing():
    t = obs.Tracer(enabled=False)
    ctx = t.span("ignored")
    assert ctx is _NULL_CONTEXT
    with ctx:
        pass
    t.on_message(0, 1, 10)
    t.end_superstep()
    t.record_value("series", 1.0)
    assert t.roots == []
    assert t.superstep_count() == 0
    assert t.timelines() == {}
    # trace_span shares one reentrant null context for tracer=None too.
    assert trace_span(None, "x") is _NULL_CONTEXT
    assert trace_span(t, "x") is _NULL_CONTEXT


def test_timelines_record_superstep_index():
    t = obs.Tracer()
    net = Network(2, tracer=t)
    t.record_value("imb", 1.5)
    net.exchange()
    t.record_value("imb", 1.2)
    assert t.timelines() == {"imb": [(0, 1.5), (1, 1.2)]}


def test_install_makes_constructors_pick_up_default():
    t = obs.install(obs.Tracer())
    try:
        dm = DistributedMesh(2)
        assert dm.tracer is t
    finally:
        obs.uninstall()
    assert obs.current() is None
    assert DistributedMesh(2).tracer is None


def test_spmd_binds_rank_as_tid():
    t = obs.Tracer()

    def program(comm):
        with t.span("step"):
            comm.barrier()
        return comm.rank

    assert spmd(3, program, tracer=t) == [0, 1, 2]
    ranks = sorted(root.tid for root in t.roots)
    assert ranks == [0, 1, 2]
    for root in t.roots:
        assert root.name == f"rank{root.tid}"
        assert [c.name for c in root.children] == ["step"]
        assert all(c.tid == root.tid for c in root.children)


def test_migration_spans_and_traffic():
    mesh = rect_tri(4)
    t = obs.Tracer()
    dm = distribute(mesh, strips(mesh, 2), tracer=t)
    element = next(dm.part(0).mesh.entities(2))
    migrate(dm, {0: {element: 1}})
    names = [s.name for root in t.roots for s in root.walk()]
    assert "migrate" in names and "migrate.pack" in names
    assert t.superstep_count() > 0
    assert t.total_messages() > 0


def test_reassigned_tracer_reaches_cached_networks():
    mesh = rect_tri(2)
    dm = distribute(mesh, strips(mesh, 2))
    dm.router().exchange()  # build and cache the networks, untraced
    t = obs.Tracer()
    dm.tracer = t
    router = dm.router()
    router.post(0, 1, 1, "late")
    router.exchange()
    assert t.superstep_count() == 1
    assert t.total_messages() == 1


def test_comm_matrix_totals_sum_supersteps():
    t = obs.Tracer()
    net = Network(2, tracer=t)
    for _ in range(3):
        net.post(0, 1, 1, "x")
        net.exchange()
    total = t.comm_matrix()
    assert total[(0, 1)][0] == 3
    per_step = t.supersteps()
    assert len(per_step) == 3
    assert all(m[(0, 1)][0] == 1 for m in per_step)


def test_invalid_superstep_index_raises():
    t = obs.Tracer()
    with pytest.raises(IndexError):
        t.comm_matrix(superstep=0)
