"""Exporter tests: Chrome trace schema, strict metrics JSON, text report."""

import json
import math

from repro import obs
from repro.mesh import rect_tri
from repro.parallel import PerfCounters
from repro.partition import DistributedField, distribute, migrate, synchronize


def strips(mesh, nparts):
    return [
        min(int(mesh.centroid(e)[0] * nparts), nparts - 1)
        for e in mesh.entities(mesh.dim())
    ]


def traced_workload():
    perf = PerfCounters()
    tracer = obs.Tracer(counters=perf)
    mesh = rect_tri(4)
    dm = distribute(mesh, strips(mesh, 3), counters=perf, tracer=tracer)
    element = next(dm.part(0).mesh.entities(2))
    migrate(dm, {0: {element: 1}})
    df = DistributedField(dm, "u")
    df.set_from_coords(lambda x: x[0])
    synchronize(df)
    return tracer, perf


def test_chrome_trace_schema():
    tracer, _perf = traced_workload()
    doc = obs.chrome_trace(tracer)
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    assert events, "workload must produce events"
    complete = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(complete) + len(meta) == len(events)
    for e in complete:
        # Required complete-event fields, all finite numbers.
        assert isinstance(e["name"], str) and e["cat"] == "repro"
        assert math.isfinite(e["ts"]) and e["ts"] >= 0.0
        assert math.isfinite(e["dur"]) and e["dur"] >= 0.0
        assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        assert e["args"]["superstep_end"] >= e["args"]["superstep_start"]
    # pid/tid carry the part/rank convention via metadata events.
    names = {(e["pid"], e["tid"], e["name"]): e["args"]["name"] for e in meta}
    for pid, tid in {(e["pid"], e["tid"]) for e in complete}:
        assert names[(pid, tid, "process_name")] == f"part {pid}"
        assert names[(pid, tid, "thread_name")] == f"rank {tid}"


def test_chrome_trace_nesting_containment():
    tracer, _perf = traced_workload()
    events = [
        e for e in obs.chrome_trace(tracer)["traceEvents"] if e["ph"] == "X"
    ]
    # Within one (pid, tid) lane the events are sorted by start, outer spans
    # first on ties; any event starting inside an earlier event must also end
    # inside it (proper nesting, what about:tracing requires to stack them).
    lanes = {}
    for e in events:
        lanes.setdefault((e["pid"], e["tid"]), []).append(e)
    for lane in lanes.values():
        stack = []
        for e in lane:
            while stack and e["ts"] >= stack[-1]["ts"] + stack[-1]["dur"]:
                stack.pop()
            if stack:
                outer = stack[-1]
                assert (
                    e["ts"] + e["dur"] <= outer["ts"] + outer["dur"] + 1e-3
                ), f"{e['name']} overflows {outer['name']}"
            stack.append(e)


def test_write_chrome_trace_round_trips(tmp_path):
    tracer, _perf = traced_workload()
    path = obs.write_chrome_trace(tracer, tmp_path / "t.trace.json")
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]


def test_metrics_dict_matrix_and_totals():
    tracer, perf = traced_workload()
    doc = obs.metrics_dict(tracer=tracer, counters=perf)
    assert doc["schema"] == "repro.obs.metrics/1"
    assert doc["supersteps"] == tracer.superstep_count() > 0
    rows = doc["comm_matrix"]
    assert rows and all(
        set(r) == {"superstep", "src", "dst", "messages", "bytes"}
        for r in rows
    )
    assert doc["comm_totals"]["messages"] == sum(r["messages"] for r in rows)
    assert doc["comm_totals"]["wire_bytes"] == sum(r["bytes"] for r in rows)
    assert max(r["superstep"] for r in rows) < doc["supersteps"]
    span_names = {s["name"] for s in doc["spans"]}
    assert {"distribute", "migrate", "synchronize"} <= span_names
    assert "net.exchanges" in doc["counters"]


def test_metrics_json_is_strict(tmp_path):
    tracer, perf = traced_workload()
    perf.register_timer("never.fired")  # min would be Infinity untreated
    path = obs.write_metrics(tmp_path / "m.json", tracer=tracer, counters=perf)
    text = path.read_text()
    assert "Infinity" not in text and "NaN" not in text
    doc = json.loads(text)
    assert doc["timers"]["never.fired"]["min"] is None
    assert doc["timers"]["never.fired"]["count"] == 0


def test_timer_stat_to_dict_regression():
    """A registered-but-never-fired timer must not leak float('inf')."""
    perf = PerfCounters()
    perf.register_timer("idle")
    with perf.timer("busy"):
        pass
    snap = perf.timers()
    assert snap["idle"].count == 0
    assert snap["idle"].min == float("inf")  # in-memory sentinel unchanged
    d = snap["idle"].to_dict()
    assert d["min"] is None and d["count"] == 0
    json.dumps(d, allow_nan=False)  # strict-JSON safe
    busy = snap["busy"].to_dict()
    assert busy["count"] == 1 and busy["min"] is not None
    json.dumps(busy, allow_nan=False)


def test_text_report_mentions_key_sections():
    tracer, perf = traced_workload()
    report = obs.text_report(tracer, counters=perf)
    assert "supersteps:" in report
    assert "migrate" in report
    assert "src -> dst" in report
    assert "net.exchanges" in report


def test_metrics_dict_counters_only():
    perf = PerfCounters()
    perf.add("a.b", 2)
    doc = obs.metrics_dict(counters=perf)
    assert "comm_matrix" not in doc
    assert doc["counters"] == {"a.b": 2}
