"""Two identical traced runs must produce identical communication metrics.

The simulated runtime is deterministic (sorted iteration, seeded
partitioners); the observability layer must preserve that: superstep counts,
per-superstep matrices, counter snapshots and timeline shapes may not vary
between runs, or traces would be useless as regression baselines.
"""

from repro import obs
from repro.core import ParMA
from repro.mesh import rect_tri
from repro.parallel import PerfCounters
from repro.partition import DistributedField, accumulate, distribute, ghost_layer
from repro.partition import delete_ghosts
from repro.partitioners import partition


def run_workload():
    perf = PerfCounters()
    tracer = obs.Tracer(counters=perf)
    mesh = rect_tri(6)
    assignment = partition(mesh, 4, method="hypergraph", seed=3)
    dm = distribute(mesh, assignment, counters=perf, tracer=tracer)
    ParMA(dm).improve("Vtx > Rgn", tol=0.05)
    ghost_layer(dm)
    delete_ghosts(dm)
    df = DistributedField(dm, "u")
    df.set_from_coords(lambda x: x[0] + x[1])
    accumulate(df)
    return tracer, perf


def test_two_runs_identical_comm_metrics():
    t1, p1 = run_workload()
    t2, p2 = run_workload()
    assert t1.superstep_count() == t2.superstep_count() > 0
    assert t1.supersteps() == t2.supersteps()  # every per-step matrix
    assert t1.comm_matrix() == t2.comm_matrix()
    assert p1.counters() == p2.counters()
    assert t1.timelines() == t2.timelines()


def test_two_runs_identical_span_structure():
    t1, _ = run_workload()
    t2, _ = run_workload()

    def shape(tracer):
        return [
            [
                (s.name, s.superstep_start, s.superstep_end)
                for s in root.walk()
            ]
            for root in tracer.roots
        ]

    assert shape(t1) == shape(t2)


def test_metrics_documents_identical_modulo_time():
    t1, p1 = run_workload()
    t2, p2 = run_workload()

    def strip_seconds(doc):
        def walk(span):
            span.pop("seconds")
            for child in span["children"]:
                walk(child)

        for span in doc["spans"]:
            walk(span)
        doc.pop("timers")
        return doc

    d1 = strip_seconds(obs.metrics_dict(tracer=t1, counters=p1))
    d2 = strip_seconds(obs.metrics_dict(tracer=t2, counters=p2))
    assert d1 == d2
