"""Each SPMD lint rule triggered on a deliberately-buggy fixture.

Every fixture is the *minimal* program exhibiting the hazard class the rule
exists for; a sibling "clean" fixture pins down that the rule does not fire
on the correct version of the same code.
"""

import json
import textwrap
from pathlib import Path

import repro
from repro.analysis.lint import (
    format_json,
    format_text,
    lint_source,
    run_paths,
)


def lint(code):
    return lint_source(textwrap.dedent(code))


def codes(code):
    return [f.code for f in lint(code)]


# -- SPMD001: collective inside a rank-dependent branch ----------------------


def test_spmd001_collective_in_rank_branch():
    buggy = """
    def prog(comm):
        if comm.rank == 0:
            comm.barrier()
    """
    assert "SPMD001" in codes(buggy)


def test_spmd001_exchange_in_rank_branch():
    buggy = """
    def superstep(net, rank):
        if rank % 2 == 0:
            net.exchange()
    """
    assert "SPMD001" in codes(buggy)


def test_spmd001_clean_when_every_rank_calls():
    clean = """
    def prog(comm):
        is_root = comm.rank == 0
        value = comm.bcast(42 if is_root else None)
        return value
    """
    assert "SPMD001" not in codes(clean)


def test_spmd001_point_to_point_in_branch_is_fine():
    clean = """
    def prog(comm):
        if comm.rank == 0:
            comm.send("x", dest=1)
    """
    assert "SPMD001" not in codes(clean)


def test_spmd001_local_alias_of_collective():
    # `b = world.bcast; b(x)` is the aliasing pattern that defeated the
    # original attribute-name match.
    buggy = """
    def prog(comm, data):
        b = comm.bcast
        if comm.rank == 0:
            b(data)
    """
    assert "SPMD001" in codes(buggy)


def test_spmd001_self_attribute_collective_alias():
    # A collective stashed on the instance in __init__ and called from a
    # different method.
    buggy = """
    class Runner:
        def __init__(self, world):
            self._sync = world.barrier

        def step(self, world):
            if world.rank == 0:
                self._sync()
    """
    assert "SPMD001" in codes(buggy)


def test_spmd001_plain_method_call_is_not_an_alias():
    clean = """
    class Runner:
        def __init__(self, world):
            self._log = world.logger

        def step(self, world):
            if world.rank == 0:
                self._log()
    """
    assert "SPMD001" not in codes(clean)


def test_spmd001_nested_function_resets_branch_context():
    clean = """
    def prog(comm):
        if comm.rank == 0:
            def helper(c):
                c.barrier()
    """
    # The nested function is defined, not called, in the branch.
    assert "SPMD001" not in codes(clean)


# -- SPMD002: posting driven by unordered iteration --------------------------


def test_spmd002_posting_over_set_literal():
    buggy = """
    def superstep(net):
        for dst in {3, 1, 2}:
            net.post(0, dst, 0, "payload")
    """
    assert "SPMD002" in codes(buggy)


def test_spmd002_posting_over_set_variable():
    buggy = """
    def superstep(net, neighbors):
        targets = set(neighbors)
        for dst in targets:
            net.post(0, dst, 0, "payload")
    """
    assert "SPMD002" in codes(buggy)


def test_spmd002_clean_when_sorted():
    clean = """
    def superstep(net, neighbors):
        for dst in sorted(set(neighbors)):
            net.post(0, dst, 0, "payload")
    """
    assert "SPMD002" not in codes(clean)


# -- SPMD003: mutating a received payload ------------------------------------


def test_spmd003_mutating_recv_result():
    buggy = """
    def prog(comm):
        data = comm.recv(source=0)
        data.append(99)
    """
    assert "SPMD003" in codes(buggy)


def test_spmd003_mutating_inbox_payload():
    buggy = """
    def superstep(router):
        inboxes = router.exchange()
        for src, tag, payload in inboxes[0]:
            payload["seen"] = True
    """
    assert "SPMD003" in codes(buggy)


def test_spmd003_clean_after_defensive_copy():
    clean = """
    def prog(comm):
        data = comm.recv(source=0)
        data = list(data)
        data.append(99)
    """
    assert "SPMD003" not in codes(clean)


def test_spmd003_fresh_comprehension_is_not_tainted():
    clean = """
    def superstep(router):
        inboxes = router.exchange()
        ordered = [payload for _s, _t, payload in inboxes[0]]
        ordered.append("mine")
    """
    assert "SPMD003" not in codes(clean)


def test_spmd003_alias_of_tainted_name_is_tainted():
    buggy = """
    def prog(comm):
        data = comm.recv(source=0)
        alias = data
        alias.update(x=1)
    """
    assert "SPMD003" in codes(buggy)


# -- SPMD004: mutable default argument ---------------------------------------


def test_spmd004_mutable_default():
    buggy = """
    def prog(comm, cache={}):
        cache[comm.rank] = 1
    """
    assert "SPMD004" in codes(buggy)


def test_spmd004_clean_none_default():
    clean = """
    def prog(comm, cache=None):
        cache = {} if cache is None else cache
    """
    assert "SPMD004" not in codes(clean)


# -- SPMD005: bare except ----------------------------------------------------


def test_spmd005_bare_except():
    buggy = """
    def prog(comm):
        try:
            comm.recv(source=0)
        except:
            pass
    """
    assert "SPMD005" in codes(buggy)


def test_spmd005_specific_except_is_fine():
    clean = """
    def prog(comm):
        try:
            comm.recv(source=0)
        except ValueError:
            pass
    """
    assert "SPMD005" not in codes(clean)


# -- SPMD006: implicit-Optional annotation -----------------------------------


def test_spmd006_implicit_optional():
    buggy = """
    def verify(mesh, check_classification: bool = None):
        pass
    """
    assert "SPMD006" in codes(buggy)


def test_spmd006_explicit_optional_is_fine():
    clean = """
    from typing import Optional

    def verify(mesh, check_classification: Optional[bool] = None):
        pass
    """
    assert "SPMD006" not in codes(clean)


# -- suppression, formatting, engine -----------------------------------------


def test_noqa_with_code_suppresses():
    suppressed = """
    def prog(comm):
        if comm.rank == 0:
            comm.barrier()  # noqa: SPMD001 - fixture exercises the hang path
    """
    assert "SPMD001" not in codes(suppressed)


def test_blanket_noqa_suppresses():
    suppressed = """
    def prog(comm, cache={}):  # noqa
        pass
    """
    assert codes(suppressed) == []


def test_noqa_other_code_does_not_suppress():
    buggy = """
    def prog(comm):
        if comm.rank == 0:
            comm.barrier()  # noqa: SPMD999
    """
    assert "SPMD001" in codes(buggy)


def test_bare_code_suppression_is_reported_as_spmd007():
    buggy = """
    def prog(comm):
        if comm.rank == 0:
            comm.barrier()  # noqa: SPMD001
    """
    result = codes(buggy)
    assert "SPMD001" not in result
    assert "SPMD007" in result


def test_justified_suppression_has_no_spmd007():
    suppressed = """
    def prog(comm):
        if comm.rank == 0:
            comm.barrier()  # noqa: SPMD001 - fixture exercises the hang path
    """
    assert codes(suppressed) == []


def test_file_level_noqa_header_suppresses_whole_file():
    suppressed = """\
    # repro: noqa - generated fixture file
    def prog(comm, cache={}):
        if comm.rank == 0:
            comm.barrier()
    """
    assert codes(suppressed) == []


def test_repro_noqa_below_header_window_does_not_suppress():
    buggy = "\n" * 6 + textwrap.dedent(
        """
        # repro: noqa - too late, not in the header
        def prog(comm, cache={}):
            pass
        """
    )
    assert "SPMD004" in [f.code for f in lint_source(buggy)]


def test_syntax_error_becomes_finding():
    assert codes("def broken(:") == ["SPMD000"]


def test_json_format_round_trips():
    findings = lint(
        """
        def prog(comm):
            data = comm.recv(source=0)
            data.append(1)
        """
    )
    decoded = json.loads(format_json(findings))
    assert decoded[0]["code"] == "SPMD003"
    assert decoded[0]["line"] == findings[0].line


def test_text_format_mentions_hint_and_count():
    findings = lint("def f(x=[]):\n    pass\n")
    text = format_text(findings)
    assert "SPMD004" in text and "hint:" in text and "1 finding(s)" in text


def test_package_tree_is_lint_clean():
    """Acceptance criterion: the shipped package has zero findings."""
    package_dir = Path(repro.__file__).resolve().parent
    findings = run_paths([package_dir])
    assert findings == [], "\n".join(f.format() for f in findings)
