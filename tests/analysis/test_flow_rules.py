"""Fixture corpus for the SPMD1xx flow rules.

Each fixture is a small SPMD program seeded with exactly the hazard (or
non-hazard) named by the test; assertions pin the *code and line* so a rule
regression cannot pass silently by firing somewhere else.
"""

import textwrap

from repro.analysis.flow import analyze_source


def analyze(src):
    return analyze_source(textwrap.dedent(src), path="fixture.py")


def hits(src):
    """(code, line) pairs, the corpus' assertion currency."""
    return [(f.code, f.line) for f in analyze(src)]


# ---------------------------------------------------------------------------
# SPMD101: collective under rank-divergent control flow
# ---------------------------------------------------------------------------


def test_collective_in_rank_branch_fires():
    src = """
    def run(world, data):
        if world.rank == 0:
            world.bcast(data)
    """
    assert hits(src) == [("SPMD101", 4)]


def test_aliased_collective_in_rank_branch_fires():
    # `b = world.bcast; b(x)` defeated the syntactic SPMD001 before the
    # taint lattice tracked bound collectives as COLL tokens.
    src = """
    def run(world, payload):
        b = world.bcast
        if world.rank == 0:
            b(payload)
    """
    assert hits(src) == [("SPMD101", 5)]


def test_rank_dependent_early_exit_fires_on_later_collective():
    src = """
    def run(world, data):
        if world.rank == 0:
            return None
        world.bcast(data)
    """
    assert hits(src) == [("SPMD101", 5)]


def test_cross_function_divergence_fires_at_call_site():
    # The callee's collectives are guarded by a parameter; the call site
    # binds that parameter to a rank predicate.  Neither function is buggy
    # alone — only the interprocedural summary sees the hazard.
    src = """
    def helper(world, flag):
        if flag:
            world.barrier()

    def run(world):
        helper(world, world.rank == 0)
    """
    assert hits(src) == [("SPMD101", 7)]


def test_collective_in_rank_bounded_loop_fires():
    src = """
    def run(world, data):
        for _ in range(world.rank):
            world.allreduce(data)
    """
    assert hits(src) == [("SPMD101", 4)]


def test_symmetric_branch_collectives_are_clean():
    # Both arms run the same collective sequence: every rank matches.
    src = """
    def run(world, data):
        if world.rank == 0:
            world.bcast(data)
        else:
            world.bcast(None)
    """
    assert hits(src) == []


def test_collective_outside_branch_is_clean():
    src = """
    def run(world, data):
        value = world.bcast(data)
        if world.rank == 0:
            log = value
        return value
    """
    assert hits(src) == []


# ---------------------------------------------------------------------------
# SPMD102: branch-inconsistent collective sequences
# ---------------------------------------------------------------------------


def test_reordered_collective_sequences_fire():
    src = """
    def run(world, x):
        if world.rank == 0:
            world.reduce(x)
            world.barrier()
        else:
            world.barrier()
            world.reduce(x)
    """
    assert hits(src) == [("SPMD102", 3)]


def test_unbalanced_collective_counts_fire():
    src = """
    def run(world, x):
        if world.rank == 0:
            world.allreduce(x)
            world.allreduce(x)
        else:
            world.allreduce(x)
    """
    assert hits(src) == [("SPMD102", 3)]


# ---------------------------------------------------------------------------
# SPMD103: nondeterminism into wire / report paths
# ---------------------------------------------------------------------------


def test_wall_clock_into_wire_fires():
    src = """
    import time

    def run(net, msg):
        stamp = time.time()
        net.send(0, (stamp, msg))
    """
    assert hits(src) == [("SPMD103", 6)]


def test_unseeded_random_into_wire_fires():
    src = """
    import random

    def run(net):
        net.post(0, random.random())
    """
    assert hits(src) == [("SPMD103", 5)]


def test_set_iteration_order_into_wire_fires():
    src = """
    def run(net, parts):
        targets = set(parts)
        for t in list(targets):
            net.send(t, "x")
    """
    assert hits(src) == [("SPMD103", 5)]


def test_nondeterministic_report_return_fires():
    src = """
    import time

    def make_report(stats):
        return {"wall": time.perf_counter(), "stats": stats}
    """
    assert hits(src) == [("SPMD103", 5)]


def test_sorted_iteration_launders_set_order():
    src = """
    def run(net, parts):
        targets = set(parts)
        for t in sorted(targets):
            net.send(t, "x")
    """
    assert hits(src) == []


def test_logical_counter_into_wire_is_clean():
    src = """
    def run(net, step, msg):
        net.send(0, (step, msg))
    """
    assert hits(src) == []


# ---------------------------------------------------------------------------
# SPMD104: stale-ghost read
# ---------------------------------------------------------------------------


def test_ghost_read_after_owner_mutation_fires():
    src = """
    def run(field, values):
        field.set_owned(values)
        return field.ghost_values()
    """
    assert hits(src) == [("SPMD104", 4)]


def test_ghost_read_after_synchronize_is_clean():
    src = """
    def run(field, sync, values):
        field.set_owned(values)
        sync.synchronize(field)
        return field.ghost_values()
    """
    assert hits(src) == []


def test_ghost_read_with_sync_on_one_path_only_fires():
    # The else path reaches the read without synchronizing; the dataflow
    # join keeps the DIRTY token because *some* path is stale.
    src = """
    def run(field, sync, values, fast):
        field.set_owned(values)
        if fast:
            sync.synchronize(field)
        return field.ghost_values()
    """
    assert hits(src) == [("SPMD104", 6)]


# ---------------------------------------------------------------------------
# SPMD105: rank-tainted value into shared state
# ---------------------------------------------------------------------------


def test_rank_value_into_module_container_fires():
    src = """
    CACHE = {}

    def run(world):
        CACHE[world.rank] = world.rank * 2
    """
    assert hits(src) == [("SPMD105", 5)]


def test_rank_value_into_class_attribute_fires():
    src = """
    class Registry:
        seen = []

        def record(self, world):
            self.seen.append(world.rank)
    """
    assert hits(src) == [("SPMD105", 6)]


def test_rank_value_in_local_is_clean():
    src = """
    def run(world):
        mine = world.rank * 2
        return mine
    """
    assert hits(src) == []


def test_instance_attribute_store_is_clean():
    # Plain per-instance state is not shared across rank threads (each rank
    # holds its own object); only class-level containers are.
    src = """
    class Worker:
        def __init__(self, world):
            self.rank = world.rank
    """
    assert hits(src) == []


# ---------------------------------------------------------------------------
# interactions and suppression
# ---------------------------------------------------------------------------


def test_noqa_with_justification_suppresses_flow_finding():
    src = """
    def run(world, data):
        if world.rank == 0:
            world.bcast(data)  # noqa: SPMD101 - fixture exercises the hang
    """
    assert hits(src) == []


def test_bare_code_noqa_is_reported_as_spmd007():
    src = """
    def run(world, data):
        if world.rank == 0:
            world.bcast(data)  # noqa: SPMD101
    """
    assert hits(src) == [("SPMD007", 4)]


def test_file_level_suppression_drops_everything():
    src = """\
    # repro: noqa - generated fixture
    def run(world, data):
        if world.rank == 0:
            world.bcast(data)
    """
    assert hits(src) == []


def test_syntax_error_reports_spmd000():
    assert [f.code for f in analyze("def broken(:\n")] == ["SPMD000"]


def test_multiple_hazards_report_in_line_order():
    src = """
    import time

    STATE = {}

    def run(world, net, data):
        STATE["who"] = world.rank
        if world.rank == 0:
            world.bcast(data)
        net.send(0, time.time())
    """
    assert hits(src) == [
        ("SPMD105", 7),
        ("SPMD101", 9),
        ("SPMD103", 10),
    ]
