"""The ``repro analyze`` surface: determinism, baseline, output formats.

The determinism tests are the analyzer eating its own cooking: the SPMD103
rule exists because nondeterministic reports hide regressions, so the
analyzer's *own* JSON report must be byte-identical across runs.
"""

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis.flow import (
    SCHEMA,
    analyze_paths,
    format_json,
    format_sarif,
    load_baseline,
    split_baselined,
    write_baseline,
)
from repro.analysis.flow.engine import main as analyze_main

BUGGY = textwrap.dedent(
    """
    import time

    def run(world, net, data):
        if world.rank == 0:
            world.bcast(data)
        net.send(0, time.time())
    """
)


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "buggy.py").write_text(BUGGY)
    (tmp_path / "clean.py").write_text(
        "def ok(world, data):\n    return world.bcast(data)\n"
    )
    return tmp_path


def test_two_runs_are_byte_identical(tree):
    first = format_json(analyze_paths([tree]))
    second = format_json(analyze_paths([tree]))
    assert first == second
    codes = [f["code"] for f in json.loads(first)["new"]]
    assert codes == ["SPMD101", "SPMD103"]


def test_json_report_is_sorted_by_location(tree):
    doc = json.loads(format_json(analyze_paths([tree])))
    locs = [(f["path"], f["line"], f["col"]) for f in doc["new"]]
    assert locs == sorted(locs)
    assert doc["schema"] == SCHEMA
    assert doc["counts"] == {"SPMD101": 1, "SPMD103": 1}


def test_baseline_round_trip(tree):
    findings = analyze_paths([tree])
    baseline_path = tree / "baseline.json"
    write_baseline(baseline_path, findings)

    doc = json.loads(baseline_path.read_text())
    assert doc["schema"] == SCHEMA
    # Paths are stored relative to the baseline file, so the committed
    # baseline matches however the analyzed paths were spelled.
    assert {e["path"] for e in doc["findings"]} == {"buggy.py"}

    baseline = load_baseline(baseline_path)
    new, old = split_baselined(findings, baseline, baseline_path.parent)
    assert new == [] and len(old) == len(findings)


def test_new_finding_not_in_baseline_is_reported(tree):
    baseline_path = tree / "baseline.json"
    write_baseline(baseline_path, analyze_paths([tree]))
    extra = tree / "extra.py"
    extra.write_text(
        "def late(world):\n"
        "    if world.rank == 1:\n"
        "        world.barrier()\n"
    )
    new, old = split_baselined(
        analyze_paths([tree]),
        load_baseline(baseline_path),
        baseline_path.parent,
    )
    assert [f.code for f in new] == ["SPMD101"]
    assert Path(new[0].path).name == "extra.py"


def test_baseline_schema_mismatch_is_rejected(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"schema": "other/9", "findings": []}))
    with pytest.raises(ValueError):
        load_baseline(bad)


def test_sarif_output_is_valid_and_deterministic(tree):
    findings = analyze_paths([tree])
    first = format_sarif(findings)
    assert first == format_sarif(analyze_paths([tree]))
    doc = json.loads(first)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-analyze"
    assert [r["ruleId"] for r in run["results"]] == ["SPMD101", "SPMD103"]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"SPMD101", "SPMD105"} <= rule_ids


def test_cli_exit_codes_and_baseline_gate(tree, capsys):
    baseline_path = tree / "baseline.json"
    assert analyze_main([str(tree)]) == 1  # findings, no baseline
    capsys.readouterr()
    assert (
        analyze_main(
            [str(tree), "--baseline", str(baseline_path), "--write-baseline"]
        )
        == 0
    )
    capsys.readouterr()
    # Baselined findings no longer fail the run.
    assert analyze_main([str(tree), "--baseline", str(baseline_path)]) == 0
    out = capsys.readouterr().out
    assert "0 new findings" in out and "2 baselined" in out


def test_cli_write_baseline_requires_baseline(tree, capsys):
    assert analyze_main([str(tree), "--write-baseline"]) == 2


def test_cli_json_two_invocations_byte_identical(tree, capsys):
    analyze_main([str(tree), "--format", "json"])
    first = capsys.readouterr().out
    analyze_main([str(tree), "--format", "json"])
    second = capsys.readouterr().out
    assert first == second


def test_package_tree_is_flow_clean():
    """Acceptance criterion: zero unbaselined findings on the package."""
    package_dir = Path(repro.__file__).resolve().parent
    findings = analyze_paths([package_dir])
    baseline_path = Path(__file__).resolve().parents[2] / (
        "analysis-baseline.json"
    )
    if baseline_path.exists():
        findings, _ = split_baselined(
            findings, load_baseline(baseline_path), baseline_path.parent
        )
    assert findings == [], "\n".join(f.format() for f in findings)
