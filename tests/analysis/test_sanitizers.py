"""Runtime-sanitizer tests: each sanitizer caught on a deliberately-buggy
rank program, plus freeze-proxy semantics."""

import pickle
import time

import pytest

from repro.analysis.sanitizers import (
    CollectiveMismatchError,
    DeadlockError,
    FrozenDict,
    FrozenList,
    FrozenSet,
    PayloadAliasError,
    freeze,
)
from repro.parallel import Network, PerfCounters, SpmdError, spmd, single_node
from repro.parallel.comm import CommWorld


def run(nranks, prog, **kw):
    kw.setdefault("counters", PerfCounters())
    kw.setdefault("timeout", 30.0)
    kw.setdefault("sanitize", True)
    return spmd(nranks, prog, **kw)


# -- freeze proxies ----------------------------------------------------------


def test_freeze_preserves_type_and_equality():
    frozen = freeze({"a": [1, 2], "b": {3}})
    assert isinstance(frozen, dict) and frozen == {"a": [1, 2], "b": {3}}
    assert isinstance(frozen["a"], list) and isinstance(frozen["b"], set)


def test_frozen_list_raises_on_every_mutator():
    frozen = freeze([1, 2, 3])
    assert isinstance(frozen, FrozenList)
    for attempt in (
        lambda: frozen.append(4),
        lambda: frozen.extend([4]),
        lambda: frozen.insert(0, 4),
        lambda: frozen.remove(1),
        lambda: frozen.pop(),
        lambda: frozen.sort(),
        lambda: frozen.reverse(),
        lambda: frozen.clear(),
        lambda: frozen.__setitem__(0, 9),
        lambda: frozen.__delitem__(0),
    ):
        with pytest.raises(PayloadAliasError):
            attempt()
    assert frozen == [1, 2, 3]


def test_frozen_dict_and_set_raise():
    fd = freeze({"k": 1})
    assert isinstance(fd, FrozenDict)
    with pytest.raises(PayloadAliasError):
        fd["k"] = 2
    with pytest.raises(PayloadAliasError):
        fd.update(k=2)
    fs = freeze({1, 2})
    assert isinstance(fs, FrozenSet)
    with pytest.raises(PayloadAliasError):
        fs.add(3)
    with pytest.raises(PayloadAliasError):
        fs.discard(1)


def test_freeze_is_recursive():
    frozen = freeze({"outer": [{"inner": [1]}]})
    with pytest.raises(PayloadAliasError):
        frozen["outer"][0]["inner"].append(2)


def test_frozen_containers_pickle_to_plain_types():
    thawed = pickle.loads(pickle.dumps(freeze({"a": [1], "b": {2}})))
    assert type(thawed) is dict
    assert type(thawed["a"]) is list and type(thawed["b"]) is set
    thawed["a"].append(99)  # a thawed copy is mutable again


def test_freeze_numpy_array_read_only():
    np = pytest.importorskip("numpy")
    original = np.arange(4)
    frozen = freeze(original)
    with pytest.raises(ValueError):
        frozen[0] = 9
    original[0] = 7  # the sender's own array stays writable
    assert frozen[0] == 7  # ... and the view shares the buffer


# -- alias sanitizer on the BSP network --------------------------------------


def test_network_alias_sanitizer_freezes_on_node_payloads():
    net = Network(
        2, topology=single_node(2), counters=PerfCounters(), sanitize=True
    )
    payload = {"k": [1, 2, 3]}
    net.post(0, 1, 0, payload)
    ((_, _, received),) = net.exchange()[1]
    assert received == payload
    with pytest.raises(PayloadAliasError):
        received["k"].append(4)
    assert payload == {"k": [1, 2, 3]}  # sender state intact


def test_network_off_node_copies_stay_mutable():
    # Flat topology: 0 and 1 are on different nodes, payload is pickled.
    net = Network(2, counters=PerfCounters(), sanitize=True)
    net.post(0, 1, 0, [1, 2])
    ((_, _, received),) = net.exchange()[1]
    received.append(3)  # a private copy: mutation is legal
    assert received == [1, 2, 3]


# -- alias sanitizer on the communicator -------------------------------------


def test_comm_alias_sanitizer_catches_receiver_mutation():
    def prog(comm):
        if comm.rank == 0:
            comm.send({"cells": [1, 2]}, dest=1)
        else:
            payload = comm.recv(source=0)
            payload["cells"].append(3)  # the bug: mutating an aliased payload

    with pytest.raises(SpmdError) as info:
        run(2, prog, topology=single_node(2))
    assert "PayloadAliasError" in str(info.value)


def test_comm_alias_sanitizer_defensive_copy_passes():
    def prog(comm):
        if comm.rank == 0:
            comm.send({"cells": [1, 2]}, dest=1)
            return None
        payload = dict(comm.recv(source=0))
        payload["mine"] = True  # shallow copy: top-level mutation is fine
        return payload

    results = run(2, prog, topology=single_node(2))
    assert results[1]["mine"] is True


# -- collective-order sanitizer ----------------------------------------------


def test_collective_mismatch_detected():
    def prog(comm):
        if comm.rank == 0:
            comm.bcast("x", root=0)
        else:
            comm.barrier()  # noqa: SPMD001 - deliberately mismatched fixture

    with pytest.raises(SpmdError) as info:
        run(2, prog)
    message = str(info.value)
    assert "CollectiveMismatchError" in message
    assert "bcast" in message and "barrier" in message


def test_matching_collectives_pass_under_sanitizer():
    def prog(comm):
        comm.barrier()
        total = comm.allreduce(comm.rank)
        return total

    assert run(4, prog) == [6, 6, 6, 6]


def test_collective_ledger_scoped_by_communicator_context():
    def prog(comm):
        # Sub-communicators run *different* collectives concurrently; their
        # distinct ctx ids must keep the ledger from cross-matching them.
        sub = comm.split(color=comm.rank % 2)
        if comm.rank % 2 == 0:
            return sub.allreduce(1)
        return sub.allgather(comm.rank)

    results = run(4, prog)
    assert results[0] == 2 and results[1] == [1, 3]


# -- deadlock detector -------------------------------------------------------


def test_deadlock_cycle_reported_instead_of_timeout():
    def prog(comm):
        # Every rank receives from its successor; nobody ever sends.
        comm.recv(source=(comm.rank + 1) % comm.size, tag=7)

    start = time.perf_counter()
    with pytest.raises(SpmdError) as info:
        run(3, prog, timeout=60.0)
    elapsed = time.perf_counter() - start
    assert elapsed < 10.0  # detected, not timed out
    message = str(info.value)
    assert "DeadlockError" in message and "waits for rank" in message


def test_two_rank_recv_recv_deadlock():
    def prog(comm):
        comm.recv(source=1 - comm.rank)

    with pytest.raises(SpmdError) as info:
        run(2, prog, timeout=60.0)
    assert "deadlock detected" in str(info.value)


def test_send_before_recv_is_not_a_deadlock():
    def prog(comm):
        comm.send(comm.rank, dest=1 - comm.rank)
        return comm.recv(source=1 - comm.rank)

    assert run(2, prog) == [1, 0]


def test_sanitizers_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    world = CommWorld(2, counters=PerfCounters())
    assert world.sanitize is False


def test_env_var_enables_sanitizers(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    world = CommWorld(2, counters=PerfCounters())
    assert world.sanitize is True
