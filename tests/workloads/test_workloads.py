"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.field import MinSize, UniformSize
from repro.mesh.quality import measure, worst_quality
from repro.mesh.verify import verify
from repro.workloads import (
    aaa_mesh,
    accelerator_mesh,
    particle_positions,
    scramjet_case,
    scramjet_mesh,
    shock_size,
    shock_train,
    track_particle,
    wing_case,
    wing_mesh,
)


def test_aaa_mesh_valid_and_nonuniform():
    mesh = aaa_mesh(n=4, seed=1)
    verify(mesh, check_volumes=True)
    assert mesh.count(3) == 6 * 4 * 4 ** 3
    # The bulge makes mid-vessel elements larger than end elements.
    volumes_mid = []
    volumes_end = []
    for r in mesh.entities(3):
        x = mesh.centroid(r)[0]
        v = measure(mesh, r)
        if 3.5 < x < 4.5:
            volumes_mid.append(v)
        elif x < 1.0:
            volumes_end.append(v)
    assert np.mean(volumes_mid) > 2 * np.mean(volumes_end)


def test_aaa_mesh_curved_centerline():
    mesh = aaa_mesh(n=3, curvature=0.8, jitter=0.0)
    ys = [mesh.coords(v)[1] for v in mesh.entities(0)]
    assert max(ys) > 1.0  # the bend pushes the vessel off-axis


def test_aaa_mesh_deterministic():
    a = aaa_mesh(n=3, seed=5)
    b = aaa_mesh(n=3, seed=5)
    assert np.allclose(a.coords_view(), b.coords_view())


def test_aaa_mesh_validates_n():
    with pytest.raises(ValueError):
        aaa_mesh(n=1)


def test_wing_case():
    mesh, size = wing_case(n=6)
    verify(mesh, check_volumes=True)
    # The shock band requests fine size near its plane, coarse far away.
    fine = size.value([0.55 * np.cos(np.radians(30)) * 1.0, 0.0, 0.1])
    assert size.value([0.0, 0.0, 0.1]) > 2 * size.h_fine
    assert size.h_fine == pytest.approx((1 / 6) / 4)


def test_wing_mesh_thin_box():
    mesh = wing_mesh(n=8)
    zs = [mesh.coords(v)[2] for v in mesh.entities(0)]
    assert max(zs) == pytest.approx(0.25)


def test_scramjet_case_and_shock_train():
    mesh, size = scramjet_case(n=6, reflections=3)
    verify(mesh, check_volumes=True)
    assert isinstance(size, MinSize)
    assert len(size.fields) == 3
    # Somewhere in the channel the field requests fine resolution.
    xs = np.linspace(0.2, 3.8, 80)
    values = [size.value([x, 0.5]) for x in xs]
    assert min(values) < 0.1
    assert max(values) > 0.12


def test_shock_train_validation():
    with pytest.raises(ValueError):
        shock_train(0.1, reflections=0)


def test_accelerator_positions():
    pos = particle_positions(3)
    assert len(pos) == 3
    assert pos[0][0] < pos[1][0] < pos[2][0]
    assert all(y == 0.5 for _x, y in pos)
    with pytest.raises(ValueError):
        particle_positions(0)


def test_track_particle_moves_refinement():
    mesh = accelerator_mesh(n=4)
    history = track_particle(mesh, steps=2, refinement=3.0, max_passes=4)
    verify(mesh, check_volumes=True)
    assert len(history) == 2
    # After the final step, refinement concentrates at the final position.
    final = history[-1]
    assert final.refined_near_particle > 0
    first_zone_now = sum(
        1
        for f in mesh.entities(2)
        if np.linalg.norm(mesh.centroid(f)[:2] - history[0].position) < 0.25
    )
    assert final.refined_near_particle > first_zone_now
