"""Tests for the checkpoint/restart recovery driver.

The acceptance bar for the resilience subsystem: a run with an injected
mid-run rank crash must recover to exactly the final partition statistics
of the fault-free run, and identical (workload, seed, fault plan) runs
must produce byte-identical recovery reports and observability metrics.
"""

import json

import pytest

from repro import obs
from repro.mesh import rect_tri
from repro.parallel import PerfCounters
from repro.partition import distribute, migrate
from repro.resilience import (
    CheckpointManager,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedRankFailure,
    RecoveryExhaustedError,
    classify_failure,
    resilient_spmd,
)

NPARTS = 4
NSTEPS = 3


def build():
    """Strip-partitioned triangle mesh with its own counter registry."""
    mesh = rect_tri(6)
    assignment = [
        min(int(mesh.centroid(e)[0] * NPARTS), NPARTS - 1)
        for e in mesh.entities(2)
    ]
    return distribute(mesh, assignment, counters=PerfCounters())


def step(dmesh, i):
    """Migrate every element to its centroid-strip owner (x / y alternate).

    The destination is a pure function of coordinates, so the final
    partition is invariant under checkpoint/restore relabeling.
    """
    axis = i % 2
    plan = {}
    for part in dmesh:
        moves = {}
        for element in part.mesh.entities(2):
            if element in part.ghosts:
                continue
            dest = min(
                int(part.mesh.centroid(element)[axis] * NPARTS), NPARTS - 1
            )
            if dest != part.pid:
                moves[element] = dest
        plan[part.pid] = moves
    migrate(dmesh, plan)


def crash_plan(superstep, rank=1, count=1):
    return FaultPlan(
        specs=(
            FaultSpec(
                kind="crash", rank=rank, superstep=superstep, count=count
            ),
        ),
        seed=7,
    )


def run(tmp_path, name, faults=None, tracer=None, max_retries=3):
    manager = CheckpointManager(tmp_path / name, keep=3)
    dmesh, report = resilient_spmd(
        build, step, NSTEPS, checkpoints=manager, checkpoint_every=1,
        faults=faults, max_retries=max_retries, tracer=tracer,
    )
    dmesh.verify()
    return dmesh, report


def mid_superstep(tmp_path):
    """Superstep index roughly halfway through a clean run."""
    probe = FaultInjector(FaultPlan())
    run(tmp_path, "probe", faults=probe)
    assert probe.superstep > 2
    return probe.superstep // 2


def test_injected_crash_recovers_to_fault_free_result(tmp_path):
    _, baseline = run(tmp_path, "base")
    assert baseline.recoveries == [] and baseline.faults == []

    mid = mid_superstep(tmp_path)
    _, chaos = run(tmp_path, "chaos", faults=crash_plan(mid))
    assert len(chaos.recoveries) == 1
    event = chaos.recoveries[0]
    assert event.kind == "injected"
    assert event.exc_type == "InjectedRankFailure"
    assert chaos.step_attempts == NSTEPS + 1
    assert [f["kind"] for f in chaos.faults] == ["crash"]
    # The recovered run ends exactly where the fault-free run ends.
    assert chaos.final_owned_totals == baseline.final_owned_totals
    assert chaos.final_entity_counts == baseline.final_entity_counts


def test_recovery_report_is_byte_deterministic(tmp_path):
    mid = mid_superstep(tmp_path)
    _, rep1 = run(tmp_path, "a", faults=crash_plan(mid))
    _, rep2 = run(tmp_path, "b", faults=crash_plan(mid))
    doc1 = json.dumps(rep1.to_dict(), sort_keys=True)
    doc2 = json.dumps(rep2.to_dict(), sort_keys=True)
    assert doc1 == doc2
    assert "seconds" not in doc1  # no wall time in the document


def test_metrics_documents_identical_modulo_time(tmp_path):
    mid = mid_superstep(tmp_path)

    def strip_seconds(doc):
        def walk(span):
            span.pop("seconds")
            for child in span["children"]:
                walk(child)

        for span in doc["spans"]:
            walk(span)
        doc.pop("timers")
        return doc

    docs = []
    for name in ("m1", "m2"):
        perf = PerfCounters()
        tracer = obs.Tracer(counters=perf)
        run(tmp_path, name, faults=crash_plan(mid), tracer=tracer)
        docs.append(
            strip_seconds(obs.metrics_dict(tracer=tracer, counters=perf))
        )
    assert docs[0] == docs[1]


def test_real_failure_propagates_unwrapped(tmp_path):
    def bad_step(dmesh, i):
        if i == 1:
            raise ValueError("genuine workload bug")
        step(dmesh, i)

    manager = CheckpointManager(tmp_path / "ck")
    with pytest.raises(ValueError, match="genuine workload bug"):
        resilient_spmd(build, bad_step, NSTEPS, checkpoints=manager)


def test_retries_exhausted_raises_with_report(tmp_path):
    mid = mid_superstep(tmp_path)
    with pytest.raises(RecoveryExhaustedError) as info:
        run(tmp_path, "x", faults=crash_plan(mid, count=-1), max_retries=2)
    report = info.value.report
    assert len(report.recoveries) == 2
    assert info.value.__cause__ is not None


def test_corrupt_payload_classified_as_collateral(tmp_path):
    plan = FaultPlan(
        specs=(FaultSpec(kind="corrupt", src=0),), seed=5
    )
    _, report = run(tmp_path, "c", faults=plan)
    assert len(report.recoveries) == 1
    event = report.recoveries[0]
    assert event.kind == "collateral"
    assert event.exc_type != "InjectedRankFailure"
    assert [f["kind"] for f in report.faults] == ["corrupt"]
    # Still converges to the fault-free result.
    _, baseline = run(tmp_path, "base")
    assert report.final_owned_totals == baseline.final_owned_totals


def test_classify_failure_direct():
    injector = FaultInjector(FaultPlan())
    assert classify_failure(InjectedRankFailure(0), injector, 0) == "injected"
    assert classify_failure(ValueError("x"), injector, 0) == "real"
    assert classify_failure(ValueError("x"), None, 0) == "real"
    injector.records.append(None)  # any recorded injection since the mark
    assert classify_failure(ValueError("x"), injector, 0) == "collateral"
    assert classify_failure(ValueError("x"), injector, 1) == "real"


def test_obs_counters_and_spans_record_recovery(tmp_path):
    mid = mid_superstep(tmp_path)
    perf = PerfCounters()
    tracer = obs.Tracer(counters=perf)
    run(tmp_path, "t", faults=crash_plan(mid), tracer=tracer)
    counters = perf.counters()
    assert counters["resilience.failures"] == 1
    assert counters["resilience.recoveries"] == 1
    assert counters["resilience.checkpoints"] == NSTEPS
    names = {
        span.name for root in tracer.roots for span in root.walk()
    }
    assert "resilience.epoch" in names
    assert "resilience.recover" in names
    assert "resilience.recoveries" in tracer.timelines()


def test_checkpoint_cadence_still_checkpoints_last_step(tmp_path):
    manager = CheckpointManager(tmp_path / "ck", keep=10)
    _, report = resilient_spmd(
        build, step, NSTEPS, checkpoints=manager, checkpoint_every=2
    )
    # Steps 0..2: checkpoint after step 1 (cadence) and step 2 (final).
    assert report.checkpoints_written == 2
    assert [info.step for info in manager.checkpoints()] == [1, 2]


def test_argument_validation(tmp_path):
    manager = CheckpointManager(tmp_path / "ck")
    with pytest.raises(ValueError):
        resilient_spmd(build, step, -1, checkpoints=manager)
    with pytest.raises(ValueError):
        resilient_spmd(
            build, step, 1, checkpoints=manager, checkpoint_every=0
        )


def test_zero_steps_returns_initial_mesh(tmp_path):
    manager = CheckpointManager(tmp_path / "ck")
    dmesh, report = resilient_spmd(build, step, 0, checkpoints=manager)
    assert report.steps == 0 and report.step_attempts == 0
    assert dmesh.nparts == NPARTS
    assert report.final_owned_totals[2] == 72  # 2 * 6 * 6 triangles
