"""Tests for the rotated, hash-validated checkpoint manager."""

import numpy as np
import pytest

from repro.mesh import rect_tri
from repro.partition import DistributedField, distribute
from repro.resilience import (
    CheckpointManager,
    CorruptCheckpointError,
    NoCheckpointError,
)


def strips(mesh, nparts):
    return [
        min(int(mesh.centroid(e)[0] * nparts), nparts - 1)
        for e in mesh.entities(mesh.dim())
    ]


def make_dmesh(nparts=3, n=4):
    mesh = rect_tri(n)
    return distribute(mesh, strips(mesh, nparts)), mesh


def test_save_restore_roundtrip(tmp_path):
    dm, mesh = make_dmesh()
    manager = CheckpointManager(tmp_path / "ck")
    info = manager.save(dm, step=5)
    assert info.index == 0 and info.step == 5
    restored, fields, rinfo = manager.restore(model=mesh.model)
    restored.verify()
    assert rinfo.index == 0 and rinfo.step == 5
    assert np.array_equal(restored.entity_counts(), dm.entity_counts())
    assert fields == {}


def test_restore_prefers_newest(tmp_path):
    dm, mesh = make_dmesh()
    manager = CheckpointManager(tmp_path / "ck")
    manager.save(dm, step=0)
    manager.save(dm, step=1)
    _, _, info = manager.restore(model=mesh.model)
    assert info.step == 1 and info.index == 1


def test_rotation_keeps_last_k(tmp_path):
    dm, _ = make_dmesh(nparts=2, n=2)
    manager = CheckpointManager(tmp_path / "ck", keep=2)
    for step in range(5):
        manager.save(dm, step=step)
    infos = manager.checkpoints()
    assert [info.index for info in infos] == [3, 4]
    assert [info.step for info in infos] == [3, 4]


def test_rotation_disabled_with_keep_zero(tmp_path):
    dm, _ = make_dmesh(nparts=2, n=2)
    manager = CheckpointManager(tmp_path / "ck", keep=0)
    for step in range(4):
        manager.save(dm, step=step)
    assert len(manager.checkpoints()) == 4


def test_restore_falls_back_past_corrupt_checkpoint(tmp_path):
    dm, mesh = make_dmesh()
    manager = CheckpointManager(tmp_path / "ck")
    manager.save(dm, step=0)
    newest = manager.save(dm, step=1)
    # Flip bytes in a part file of the newest checkpoint.
    part_file = newest.path / "part0.npz"
    part_file.write_bytes(b"garbage" + part_file.read_bytes()[7:])
    assert not manager.validate(newest)
    restored, _, info = manager.restore(model=mesh.model)
    restored.verify()
    assert info.step == 0  # fell back one epoch, not the whole run


def test_restore_raises_when_nothing_valid(tmp_path):
    dm, _ = make_dmesh(nparts=2, n=2)
    manager = CheckpointManager(tmp_path / "ck")
    info = manager.save(dm, step=0)
    (info.path / "manifest.json").write_text("{broken")
    with pytest.raises(NoCheckpointError) as err:
        manager.restore()
    assert "skipped corrupt" in str(err.value)


def test_empty_directory_raises(tmp_path):
    manager = CheckpointManager(tmp_path / "ck")
    assert manager.latest() is None
    with pytest.raises(NoCheckpointError):
        manager.restore()


def test_stale_tmp_staging_is_ignored(tmp_path):
    """A crash mid-save leaves only a .tmp directory — never restorable."""
    dm, mesh = make_dmesh()
    manager = CheckpointManager(tmp_path / "ck")
    manager.save(dm, step=0)
    # Simulate a crash mid-save: a half-written staging directory.
    staging = manager.root / "ckpt-000001.tmp"
    staging.mkdir()
    (staging / "manifest.json").write_text("{}")
    infos = manager.checkpoints()
    assert [info.index for info in infos] == [0]
    _, _, info = manager.restore(model=mesh.model)
    assert info.index == 0
    # The next save claims index 1 regardless of the stale staging dir.
    info = manager.save(dm, step=1)
    assert info.index == 1


def test_fields_roundtrip_through_manager(tmp_path):
    dm, mesh = make_dmesh()
    field = DistributedField(dm, "u")
    field.set_from_coords(lambda x: 3.0 * x[0] - x[1])
    manager = CheckpointManager(tmp_path / "ck")
    manager.save(dm, step=0, fields=[field])
    restored, fields, _ = manager.restore(model=mesh.model)
    assert set(fields) == {"u"}
    ref = fields["u"]
    for part in restored:
        f = ref.fields[part.pid]
        for v in part.mesh.entities(0):
            x = part.mesh.coords(v)
            assert f.get(v) == pytest.approx(3.0 * x[0] - x[1])


def test_ghost_config_reapplied_on_restore(tmp_path):
    from repro.partition import Overlap, ghost_layer

    dm, mesh = make_dmesh()
    ghost_layer(dm, overlap=Overlap(depth=1, bridge_dim=0))
    ghosted_counts = dm.entity_counts().copy()
    manager = CheckpointManager(
        tmp_path / "ck", ghost_config=Overlap(depth=1, bridge_dim=0)
    )
    assert manager.ghost_config == {
        "overlap": {"depth": 1, "bridge_dim": 0, "include_closure": True},
        "tags": [],
    }
    manager.save(dm, step=0)
    restored, _, _ = manager.restore(model=mesh.model)
    restored.verify()
    # entity_counts excludes ghosts; compare total live entities instead.
    total = lambda d: sum(
        part.mesh.count(dim) for part in d for dim in range(3)
    )
    assert total(restored) == total(dm)
    assert any(part.ghosts for part in restored)
    assert np.array_equal(restored.entity_counts(), ghosted_counts)


def test_legacy_ghost_config_manifest_still_restores(tmp_path):
    """Manifests written before the Overlap API restore without warnings."""
    import warnings

    from repro.partition import ghost_layer

    dm, mesh = make_dmesh()
    ghost_layer(dm)
    manager = CheckpointManager(
        tmp_path / "ck", ghost_config={"bridge_dim": 0, "layers": 1}
    )
    # The legacy dict is normalized to the overlap form at construction.
    assert manager.ghost_config["overlap"]["depth"] == 1
    manager.save(dm, step=0)
    # Rewrite the manifest's ghost_config back to the legacy spelling, as an
    # old on-disk checkpoint would carry it.
    import json

    ckpt = manager.latest().path
    manifest_path = ckpt / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["extra"]["ghost_config"] = {"bridge_dim": 0, "layers": 1}
    manifest_path.write_text(json.dumps(manifest, indent=1, sort_keys=True))
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        restored, _, _ = manager.restore(model=mesh.model)
    assert any(part.ghosts for part in restored)


def test_restore_at_different_part_count(tmp_path):
    dm, mesh = make_dmesh(nparts=3, n=4)
    manager = CheckpointManager(tmp_path / "ck")
    manager.save(dm, step=0)
    wider, _, _ = manager.restore(model=mesh.model, nparts=5)
    wider.verify()
    assert wider.nparts == 5
    for dim in range(3):
        assert wider.total_owned(dim) == dm.total_owned(dim)


def test_keep_must_be_nonnegative(tmp_path):
    with pytest.raises(ValueError):
        CheckpointManager(tmp_path / "ck", keep=-1)
