"""Restore-at-different-part-count under depth-k ghost overlaps.

The canonical snapshot state excludes ghosts, so a checkpoint of a
ghosted distribution records only owned entities; the manager re-applies
its ``ghost_config`` after the restore.  Both backends deal elements in
the same contiguous sorted-gid blocks, so restoring the same checkpoint
through ``dmesh`` and ``store`` must agree part-for-part — owned gid
sets *and* the regenerated ghost layer.
"""

import numpy as np
import pytest

from repro.mesh import rect_tri
from repro.partition import (
    DistributedField,
    Overlap,
    distribute,
    ghost_layer,
)
from repro.resilience import CheckpointManager
from repro.store import SnapshotStore, field_checksum, owned_gid_set


def strips(mesh, nparts):
    return [
        min(int(mesh.centroid(e)[0] * nparts), nparts - 1)
        for e in mesh.entities(mesh.dim())
    ]


def make_dmesh(nparts=4, n=4):
    mesh = rect_tri(n)
    return distribute(mesh, strips(mesh, nparts)), mesh


def part_signature(dmesh):
    """Per-part (owned element gids, ghost count) — order matters."""
    out = []
    for part in dmesh:
        owned = tuple(sorted(
            part.gid(e)
            for e in part.mesh.entities(2)
            if e not in part.ghosts
        ))
        out.append((owned, len(part.ghosts)))
    return out


@pytest.mark.parametrize("codec", ["binary", "pickle"])
@pytest.mark.parametrize("depth", [2, 3])
def test_store_load_then_reghost(tmp_path, depth, codec):
    dm, mesh = make_dmesh(nparts=4, n=5)
    overlap = Overlap(depth=depth, bridge_dim=0)
    ghost_layer(dm, overlap=overlap)
    f = DistributedField(dm, "u", 0, 1)
    for part in dm:
        local = f.on(part.pid)
        for v in part.mesh.entities(0):
            if not part.is_ghost(v):
                local.set(v, np.array([float(part.gid(v))]))
    store = SnapshotStore(tmp_path / "st", chunk_records=32)
    store.save(dm, [f])
    want_elems = owned_gid_set(dm, 2)
    want_sum = round(field_checksum(dm, f), 9)
    for target in (2, 6):
        dm2, fields, _ = store.load_at(
            nparts=target, model=mesh.model, codec=codec
        )
        ghost_layer(dm2, overlap=overlap)
        dm2.verify()
        assert owned_gid_set(dm2, 2) == want_elems
        assert round(field_checksum(dm2, fields["u"]), 9) == want_sum
        assert all(part.ghosts for part in dm2)


@pytest.mark.parametrize("depth", [2, 3])
def test_backends_agree_on_reghosted_restore(tmp_path, depth):
    dm, mesh = make_dmesh(nparts=4, n=4)
    overlap = Overlap(depth=depth, bridge_dim=0)
    ghost_layer(dm, overlap=overlap)
    signatures = {}
    for backend in ("dmesh", "store"):
        manager = CheckpointManager(
            tmp_path / backend, ghost_config=overlap, backend=backend
        )
        manager.save(dm, step=0)
        restored, _, _ = manager.restore(model=mesh.model, nparts=3)
        restored.verify()
        assert restored.nparts == 3
        assert owned_gid_set(restored, 2) == owned_gid_set(dm, 2)
        signatures[backend] = part_signature(restored)
    assert signatures["dmesh"] == signatures["store"]


def test_deeper_overlap_ghosts_more(tmp_path):
    dm, mesh = make_dmesh(nparts=4, n=5)
    store = SnapshotStore(tmp_path / "st")
    store.save(dm)
    totals = []
    for depth in (2, 3):
        dm2, _, _ = store.load_at(nparts=3, model=mesh.model)
        ghost_layer(dm2, overlap=Overlap(depth=depth, bridge_dim=0))
        dm2.verify()
        totals.append(sum(len(part.ghosts) for part in dm2))
    assert totals[1] > totals[0] > 0


def test_manager_overlap_restore_matches_fresh_ghosting(tmp_path):
    """Restoring at another part count then re-ghosting must equal
    loading un-ghosted at that count and ghosting by hand."""
    dm, mesh = make_dmesh(nparts=4, n=4)
    overlap = Overlap(depth=2, bridge_dim=0)
    ghost_layer(dm, overlap=overlap)
    manager = CheckpointManager(
        tmp_path / "ck", ghost_config=overlap, backend="store"
    )
    manager.save(dm, step=0)
    restored, _, _ = manager.restore(model=mesh.model, nparts=2)

    reference, _, _ = SnapshotStore(
        tmp_path / "ck", prefix=CheckpointManager.PREFIX
    ).load_at(nparts=2, model=mesh.model)
    ghost_layer(reference, overlap=overlap)
    assert part_signature(restored) == part_signature(reference)
    assert np.array_equal(
        restored.entity_counts(), reference.entity_counts()
    )
