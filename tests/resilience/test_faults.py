"""Tests for the deterministic fault injector and its runtime hooks."""

import json

import pytest

from repro.parallel import PerfCounters, SpmdError, spmd
from repro.parallel.network import Network
from repro.resilience import (
    CorruptedPayload,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedFault,
    InjectedRankFailure,
)


def make_net(nparts, plan):
    injector = FaultInjector(plan)
    net = Network(nparts, counters=PerfCounters(), fault_injector=injector)
    return net, injector


def plan_of(*specs, seed=0):
    return FaultPlan(specs=tuple(specs), seed=seed)


# -- plan construction / validation ------------------------------------------


def test_plan_json_roundtrip():
    plan = plan_of(
        FaultSpec(kind="crash", rank=1, superstep=4),
        FaultSpec(kind="drop", src=0, dst=2, probability=0.5, count=-1),
        seed=42,
    )
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan


def test_plan_from_json_file(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(
        json.dumps({"seed": 3, "faults": [{"kind": "drop", "src": 1}]})
    )
    plan = FaultPlan.from_json(path)
    assert plan.seed == 3
    assert plan.specs[0].kind == "drop" and plan.specs[0].src == 1


@pytest.mark.parametrize(
    "doc",
    [
        {"faults": [{"kind": "teleport"}]},  # unknown kind
        {"faults": [{"kind": "crash"}]},  # crash needs rank
        {"faults": [{"kind": "slow", "rank": 0}]},  # slow needs superstep
        {"faults": [{"kind": "drop", "probability": 0.0}]},
        {"faults": [{"kind": "drop", "probability": 1.5}]},
        {"faults": [{"kind": "drop", "count": 0}]},
        {"faults": [{"kind": "delay", "delay": 0}]},
        {"faults": [{"kind": "drop", "banana": 1}]},  # unknown field
        {"faults": [{}]},  # missing kind
        {"typo": []},  # unknown top-level key
    ],
)
def test_plan_validation_rejects(doc):
    with pytest.raises(FaultPlanError):
        FaultPlan.from_dict(doc)


def test_plan_rejects_bad_json_text():
    with pytest.raises(FaultPlanError):
        FaultPlan.from_json("{not json")


# -- message faults on the network -------------------------------------------


def test_drop_discards_message():
    net, injector = make_net(2, plan_of(FaultSpec(kind="drop", src=0, dst=1)))
    net.post(0, 1, 0, "lost")
    net.post(0, 1, 1, "kept")  # count=1: only the first matching is dropped
    inbox = net.exchange()[1]
    assert [payload for _, _, payload in inbox] == ["kept"]
    assert [r.kind for r in injector.records] == ["drop"]


def test_duplicate_delivers_twice():
    net, injector = make_net(2, plan_of(FaultSpec(kind="duplicate", dst=1)))
    net.post(0, 1, 7, "msg")
    inbox = net.exchange()[1]
    assert [payload for _, _, payload in inbox] == ["msg", "msg"]
    assert injector.stats() == {"duplicate": 1}


def test_delay_holds_message_for_n_supersteps():
    net, injector = make_net(
        2, plan_of(FaultSpec(kind="delay", src=0, delay=2))
    )
    net.post(0, 1, 0, "late")
    assert net.exchange()[1] == []  # superstep 0: held
    assert net.exchange()[1] == []  # superstep 1: still held
    inbox = net.exchange()[1]  # superstep 2: released
    assert [payload for _, _, payload in inbox] == ["late"]
    assert [r.kind for r in injector.records] == ["delay"]


def test_corrupt_replaces_payload_with_sentinel():
    net, _ = make_net(2, plan_of(FaultSpec(kind="corrupt", dst=1)))
    net.post(0, 1, 0, [1, 2, 3])
    (_, _, payload), = net.exchange()[1]
    assert isinstance(payload, CorruptedPayload)
    assert "list" in repr(payload)
    with pytest.raises(TypeError):
        list(payload)


def test_superstep_filter_targets_exact_exchange():
    net, injector = make_net(
        2, plan_of(FaultSpec(kind="drop", superstep=1, count=-1))
    )
    net.post(0, 1, 0, "a")
    assert len(net.exchange()[1]) == 1  # superstep 0: untouched
    net.post(0, 1, 0, "b")
    assert net.exchange()[1] == []  # superstep 1: dropped
    net.post(0, 1, 0, "c")
    assert len(net.exchange()[1]) == 1  # superstep 2: untouched
    assert injector.superstep == 3


def test_probability_draws_are_seeded():
    def run(seed):
        net, injector = make_net(
            2,
            plan_of(
                FaultSpec(kind="drop", probability=0.5, count=-1), seed=seed
            ),
        )
        for i in range(20):
            net.post(0, 1, i, i)
        delivered = [tag for _, tag, _ in net.exchange()[1]]
        return delivered, [r.to_dict() for r in injector.records]

    assert run(11) == run(11)  # same seed: identical trajectory
    assert run(11)[0] != run(12)[0]  # different seed: different trajectory


# -- crash faults -------------------------------------------------------------


def test_crash_raises_at_scheduled_superstep():
    net, injector = make_net(
        2, plan_of(FaultSpec(kind="crash", rank=1, superstep=1))
    )
    net.post(0, 1, 0, "ok")
    assert len(net.exchange()[1]) == 1  # superstep 0 passes
    with pytest.raises(InjectedRankFailure) as info:
        net.exchange()  # superstep 1 crashes
    assert info.value.rank == 1
    assert info.value.superstep == 1
    assert isinstance(info.value, InjectedFault)
    assert info.value.injected_fault is True
    assert [r.kind for r in injector.records] == ["crash"]


def test_crash_without_superstep_fires_at_rank_start():
    plan = plan_of(FaultSpec(kind="crash", rank=1))
    injector = FaultInjector(plan)

    def prog(comm):
        return comm.rank

    with pytest.raises(SpmdError) as info:
        spmd(
            3, prog, counters=PerfCounters(), timeout=5.0,
            fault_injector=injector,
        )
    err = info.value
    assert len(err.records) == 1
    record = err.records[0]
    assert record.rank == 1
    assert record.injected is True
    assert record.exc_type == "InjectedRankFailure"
    assert err.injected_only


def test_consumed_crash_does_not_refire():
    """One-shot crash budgets persist across reuse of the injector."""
    plan = plan_of(FaultSpec(kind="crash", rank=0, superstep=0))
    injector = FaultInjector(plan)
    net = Network(2, counters=PerfCounters(), fault_injector=injector)
    with pytest.raises(InjectedRankFailure):
        net.exchange()
    # Fresh network, same injector (the recovery driver's re-attach): the
    # budget is spent, so the superstep counter moves on without a crash.
    net2 = Network(2, counters=PerfCounters(), fault_injector=injector)
    net2.post(0, 1, 0, "after")
    assert len(net2.exchange()[1]) == 1


def test_fastpath_unchanged_without_injector():
    net = Network(2, counters=PerfCounters())
    assert net.fault_injector is None
    net.post(0, 1, 0, "x")
    assert len(net.exchange()[1]) == 1
