"""CheckpointManager with the ``repro.store/1`` backend + mixed dirs."""

import logging

import numpy as np
import pytest

from repro.mesh import rect_tri
from repro.partition import DistributedField, distribute
from repro.resilience import (
    CheckpointManager,
    NoCheckpointError,
    resilient_spmd,
)
from repro.store import owned_gid_set, field_checksum
from repro.store.format import FORMAT as STORE_FORMAT


def strips(mesh, nparts):
    return [
        min(int(mesh.centroid(e)[0] * nparts), nparts - 1)
        for e in mesh.entities(mesh.dim())
    ]


def make_dmesh(nparts=3, n=4):
    mesh = rect_tri(n)
    return distribute(mesh, strips(mesh, nparts)), mesh


def test_store_backend_roundtrip(tmp_path):
    dm, mesh = make_dmesh()
    manager = CheckpointManager(tmp_path / "ck", backend="store")
    info = manager.save(dm, step=5)
    assert info.index == 0 and info.step == 5
    assert manager._entry_format(info.path) == STORE_FORMAT
    restored, fields, rinfo = manager.restore(model=mesh.model)
    restored.verify()
    assert rinfo.index == 0 and rinfo.step == 5
    assert np.array_equal(restored.entity_counts().sum(axis=0),
                          dm.entity_counts().sum(axis=0))
    assert fields == {}


def test_store_backend_writes_deltas_and_rotates(tmp_path):
    dm, mesh = make_dmesh(nparts=2, n=3)
    manager = CheckpointManager(tmp_path / "ck", keep=2, backend="store")
    for step in range(5):
        manager.save(dm, step=step)
    infos = manager.checkpoints()
    assert [info.index for info in infos] == [3, 4]
    assert [info.step for info in infos] == [3, 4]
    # Rotation compacted the oldest survivor, so its chain is intact.
    store = manager._store()
    kinds = {e.index: e.kind for e in store.epochs()}
    assert kinds[3] == "full"
    restored, _, rinfo = manager.restore(model=mesh.model)
    restored.verify()
    assert rinfo.step == 4


def test_store_backend_restore_at_other_part_count(tmp_path):
    dm, mesh = make_dmesh(nparts=4, n=4)
    f = DistributedField(dm, "temp", 0, 1)
    for part in dm:
        local = f.on(part.pid)
        for v in part.mesh.entities(0):
            local.set(v, np.array([float(part.gid(v))]))
    manager = CheckpointManager(tmp_path / "ck", backend="store")
    manager.save(dm, step=0, fields=[f])
    for target in (1, 2, 8):
        restored, fields, _ = manager.restore(model=mesh.model, nparts=target)
        restored.verify()
        assert restored.nparts == target
        assert owned_gid_set(restored, 2) == owned_gid_set(dm, 2)
        assert abs(
            field_checksum(restored, fields["temp"])
            - field_checksum(dm, f)
        ) < 1e-9


def test_mixed_format_directory_restores_both_ways(tmp_path):
    dm, mesh = make_dmesh(nparts=2, n=3)
    legacy = CheckpointManager(tmp_path / "ck", keep=0, backend="dmesh")
    legacy.save(dm, step=0)
    modern = CheckpointManager(tmp_path / "ck", keep=0, backend="store")
    modern.save(dm, step=1)
    # Newest wins regardless of which backend the reading manager uses.
    for manager in (legacy, modern):
        restored, _, info = manager.restore(model=mesh.model)
        restored.verify()
        assert info.step == 1
        assert all(manager.validate(i) for i in manager.checkpoints())


def test_corrupt_store_epoch_skipped_and_logged(tmp_path, caplog):
    dm, mesh = make_dmesh(nparts=2, n=3)
    manager = CheckpointManager(tmp_path / "ck", keep=0, backend="store")
    manager.save(dm, step=0)
    info = manager.save(dm, step=1)
    chunk = sorted(info.path.glob("*.bin"))[0]
    data = bytearray(chunk.read_bytes())
    data[-1] ^= 0xFF
    chunk.write_bytes(bytes(data))
    assert not manager.validate(info)
    with caplog.at_level(logging.WARNING, "repro.resilience.checkpoint"):
        restored, _, rinfo = manager.restore(model=mesh.model)
    assert rinfo.step == 0
    assert any(
        "skipping corrupt checkpoint" in rec.getMessage()
        for rec in caplog.records
    )
    restored.verify()


def test_keep_zero_is_documented_unlimited_sentinel(tmp_path):
    """Regression for the keep=0 docstring/behavior mismatch.

    ``keep=0`` is the explicit unlimited sentinel: every checkpoint is
    retained, in both backends, and the docstring says so.
    """
    dm, _ = make_dmesh(nparts=2, n=2)
    for backend in ("dmesh", "store"):
        manager = CheckpointManager(
            tmp_path / backend, keep=0, backend=backend
        )
        for step in range(4):
            manager.save(dm, step=step)
        assert [i.index for i in manager.checkpoints()] == [0, 1, 2, 3]
    assert "unlimited" in CheckpointManager.__doc__
    with pytest.raises(ValueError):
        CheckpointManager(tmp_path / "neg", keep=-1)
    with pytest.raises(ValueError):
        CheckpointManager(tmp_path / "bad", backend="nope")


def test_resilient_spmd_with_store_backend(tmp_path):
    mesh = rect_tri(3)

    def build():
        return distribute(mesh, strips(mesh, 2))

    seen = []

    def step(dmesh, i):
        seen.append(i)

    manager = CheckpointManager(tmp_path / "ck", keep=2, backend="store")
    dmesh, report = resilient_spmd(build, step, 4, checkpoints=manager)
    dmesh.verify()
    assert seen == [0, 1, 2, 3]
    assert report.steps == 4 and report.checkpoints_written > 0
    infos = manager.checkpoints()
    assert infos and all(
        manager._entry_format(i.path) == STORE_FORMAT for i in infos
    )


def test_empty_store_dir_raises_no_checkpoint(tmp_path):
    manager = CheckpointManager(tmp_path / "ck", backend="store")
    with pytest.raises(NoCheckpointError):
        manager.restore()
