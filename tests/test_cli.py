"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_info_rect(capsys):
    assert main(["info", "--kind", "rect", "--n", "3"]) == 0
    out = capsys.readouterr().out
    assert "verts=16" in out
    assert "mesh verified" in out


def test_info_box(capsys):
    assert main(["info", "--kind", "box", "--n", "2"]) == 0
    assert "regions=48" in capsys.readouterr().out


def test_info_saves_vtk(tmp_path, capsys):
    out_file = tmp_path / "m.vtk"
    assert main(["info", "--kind", "rect", "--n", "2",
                 "--save", str(out_file)]) == 0
    assert out_file.exists()
    assert "DATASET UNSTRUCTURED_GRID" in out_file.read_text()


def test_partition_reports_balance(capsys):
    assert main([
        "partition", "--kind", "box", "--n", "3", "--parts", "4",
        "--method", "rcb",
    ]) == 0
    out = capsys.readouterr().out
    assert "edge cut" in out
    assert "imbalance%" in out
    assert "Rgn" in out


def test_partition_saves_part_field(tmp_path, capsys):
    out_file = tmp_path / "p.vtk"
    assert main([
        "partition", "--kind", "rect", "--n", "4", "--parts", "2",
        "--method", "rcb", "--save", str(out_file),
    ]) == 0
    text = out_file.read_text()
    assert "SCALARS part double 1" in text


def test_balance_runs_parma(capsys):
    assert main([
        "balance", "--kind", "box", "--n", "4", "--parts", "4",
        "--method", "hypergraph", "--priorities", "Vtx > Rgn",
        "--tol", "0.10",
    ]) == 0
    out = capsys.readouterr().out
    assert "before ParMA" in out
    assert "after ParMA" in out
    assert "ParMA improvement [Vtx > Rgn]" in out


def test_bench_hint(capsys):
    assert main(["bench"]) == 0
    assert "pytest benchmarks/" in capsys.readouterr().out


def test_unknown_kind_fails():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["info", "--kind", "sphere"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_lint_clean_package(capsys):
    assert main(["lint"]) == 0
    assert "clean: 0 findings" in capsys.readouterr().out


def test_lint_reports_findings_on_buggy_file(tmp_path, capsys):
    buggy = tmp_path / "buggy.py"
    buggy.write_text(
        "def prog(comm):\n"
        "    if comm.rank == 0:\n"
        "        comm.barrier()\n"
    )
    assert main(["lint", str(buggy)]) == 1
    out = capsys.readouterr().out
    assert "SPMD001" in out and "1 finding(s)" in out


def test_lint_json_format(tmp_path, capsys):
    import json

    buggy = tmp_path / "buggy.py"
    buggy.write_text("def f(x=[]):\n    pass\n")
    assert main(["lint", str(buggy), "--format=json"]) == 1
    decoded = json.loads(capsys.readouterr().out)
    assert decoded[0]["code"] == "SPMD004"


def test_trace_runs_script_and_writes_artifacts(tmp_path, capsys):
    import json

    script = tmp_path / "workload.py"
    script.write_text(
        "from repro.mesh import rect_tri\n"
        "from repro.partition import distribute, migrate\n"
        "from repro.partitioners import partition\n"
        "m = rect_tri(4)\n"
        "dm = distribute(m, partition(m, 2, method='rcb'))\n"
        "elem = next(dm.part(0).mesh.entities(2))\n"
        "migrate(dm, {0: {elem: 1}})\n"
    )
    out_dir = tmp_path / "trace-out"
    assert main(["trace", str(script), "--out", str(out_dir)]) == 0

    trace = json.loads((out_dir / "workload.trace.json").read_text())
    names = {e.get("name") for e in trace["traceEvents"]}
    assert "migrate" in names and "distribute" in names

    metrics = json.loads((out_dir / "workload.metrics.json").read_text())
    assert metrics["schema"] == "repro.obs.metrics/1"
    assert metrics["supersteps"] > 0
    assert metrics["comm_matrix"]

    out = capsys.readouterr().out
    assert "workload.trace.json" in out


def test_trace_missing_script_fails(tmp_path, capsys):
    assert main(["trace", str(tmp_path / "nope.py")]) == 2
    assert "no such script" in capsys.readouterr().err


def test_balance_with_sanitize(capsys):
    assert (
        main(
            [
                "balance",
                "--kind",
                "rect",
                "--n",
                "5",
                "--parts",
                "3",
                "--sanitize",
            ]
        )
        == 0
    )
    assert "after ParMA" in capsys.readouterr().out


# -- chaos ------------------------------------------------------------------


CHAOS_SCRIPT = """
from repro.mesh import rect_tri
from repro.parallel import PerfCounters
from repro.partition import distribute, migrate

NPARTS = 3
NSTEPS = 2


def build():
    m = rect_tri(4)
    assignment = [
        min(int(m.centroid(e)[0] * NPARTS), NPARTS - 1)
        for e in m.entities(2)
    ]
    return distribute(m, assignment, counters=PerfCounters())


def step(dmesh, i):
    plan = {}
    for part in dmesh:
        moves = {}
        for e in part.mesh.entities(2):
            dest = min(
                int(part.mesh.centroid(e)[i % 2] * NPARTS), NPARTS - 1
            )
            if dest != part.pid:
                moves[e] = dest
        plan[part.pid] = moves
    migrate(dmesh, plan)
"""


def test_chaos_runs_workload_and_writes_report(tmp_path, capsys):
    import json

    script = tmp_path / "workload.py"
    script.write_text(CHAOS_SCRIPT)
    out_dir = tmp_path / "chaos-out"
    assert main(["chaos", str(script), "--out", str(out_dir)]) == 0

    report = json.loads((out_dir / "workload.resilience.json").read_text())
    assert report["schema"] == "repro.resilience.report/1"
    assert report["steps"] == 2 and report["recoveries"] == []
    assert (out_dir / "checkpoints").is_dir()
    assert (out_dir / "workload.metrics.json").exists()
    assert "steps completed" in capsys.readouterr().out


def test_chaos_recovers_from_fault_plan(tmp_path, capsys):
    import json

    script = tmp_path / "workload.py"
    script.write_text(CHAOS_SCRIPT)
    plan = tmp_path / "plan.json"
    plan.write_text(json.dumps(
        {"seed": 1, "faults": [{"kind": "crash", "rank": 1, "superstep": 3}]}
    ))
    out_dir = tmp_path / "out"
    assert main([
        "chaos", str(script), "--faults", str(plan), "--out", str(out_dir),
    ]) == 0
    report = json.loads((out_dir / "workload.resilience.json").read_text())
    assert len(report["recoveries"]) == 1
    assert report["recoveries"][0]["kind"] == "injected"
    assert [f["kind"] for f in report["faults"]] == ["crash"]


def test_chaos_missing_script_fails(tmp_path, capsys):
    assert main(["chaos", str(tmp_path / "nope.py")]) == 2
    assert "no such script" in capsys.readouterr().err


def test_chaos_script_without_contract_fails(tmp_path, capsys):
    script = tmp_path / "bad.py"
    script.write_text("x = 1\n")
    assert main(["chaos", str(script), "--steps", "1"]) == 2
    assert "must define build()" in capsys.readouterr().err


def test_chaos_requires_steps(tmp_path, capsys):
    script = tmp_path / "nosteps.py"
    script.write_text(
        "def build():\n    pass\n\n"
        "def step(dmesh, i):\n    pass\n"
    )
    assert main(["chaos", str(script)]) == 2
    assert "NSTEPS" in capsys.readouterr().err


def test_chaos_bad_plan_fails(tmp_path, capsys):
    script = tmp_path / "workload.py"
    script.write_text(CHAOS_SCRIPT)
    plan = tmp_path / "plan.json"
    plan.write_text('{"faults": [{"kind": "teleport"}]}')
    assert main(["chaos", str(script), "--faults", str(plan)]) == 2
    assert "bad fault plan" in capsys.readouterr().err
