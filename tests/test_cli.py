"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_info_rect(capsys):
    assert main(["info", "--kind", "rect", "--n", "3"]) == 0
    out = capsys.readouterr().out
    assert "verts=16" in out
    assert "mesh verified" in out


def test_info_box(capsys):
    assert main(["info", "--kind", "box", "--n", "2"]) == 0
    assert "regions=48" in capsys.readouterr().out


def test_info_saves_vtk(tmp_path, capsys):
    out_file = tmp_path / "m.vtk"
    assert main(["info", "--kind", "rect", "--n", "2",
                 "--save", str(out_file)]) == 0
    assert out_file.exists()
    assert "DATASET UNSTRUCTURED_GRID" in out_file.read_text()


def test_partition_reports_balance(capsys):
    assert main([
        "partition", "--kind", "box", "--n", "3", "--parts", "4",
        "--method", "rcb",
    ]) == 0
    out = capsys.readouterr().out
    assert "edge cut" in out
    assert "imbalance%" in out
    assert "Rgn" in out


def test_partition_saves_part_field(tmp_path, capsys):
    out_file = tmp_path / "p.vtk"
    assert main([
        "partition", "--kind", "rect", "--n", "4", "--parts", "2",
        "--method", "rcb", "--save", str(out_file),
    ]) == 0
    text = out_file.read_text()
    assert "SCALARS part double 1" in text


def test_balance_runs_parma(capsys):
    assert main([
        "balance", "--kind", "box", "--n", "4", "--parts", "4",
        "--method", "hypergraph", "--priorities", "Vtx > Rgn",
        "--tol", "0.10",
    ]) == 0
    out = capsys.readouterr().out
    assert "before ParMA" in out
    assert "after ParMA" in out
    assert "ParMA improvement [Vtx > Rgn]" in out


def test_bench_hint(capsys):
    assert main(["bench"]) == 0
    assert "pytest benchmarks/" in capsys.readouterr().out


def test_unknown_kind_fails():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["info", "--kind", "sphere"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_lint_clean_package(capsys):
    assert main(["lint"]) == 0
    assert "clean: 0 findings" in capsys.readouterr().out


def test_lint_reports_findings_on_buggy_file(tmp_path, capsys):
    buggy = tmp_path / "buggy.py"
    buggy.write_text(
        "def prog(comm):\n"
        "    if comm.rank == 0:\n"
        "        comm.barrier()\n"
    )
    assert main(["lint", str(buggy)]) == 1
    out = capsys.readouterr().out
    assert "SPMD001" in out and "1 finding(s)" in out


def test_lint_json_format(tmp_path, capsys):
    import json

    buggy = tmp_path / "buggy.py"
    buggy.write_text("def f(x=[]):\n    pass\n")
    assert main(["lint", str(buggy), "--format=json"]) == 1
    decoded = json.loads(capsys.readouterr().out)
    assert decoded[0]["code"] == "SPMD004"


def test_trace_runs_script_and_writes_artifacts(tmp_path, capsys):
    import json

    script = tmp_path / "workload.py"
    script.write_text(
        "from repro.mesh import rect_tri\n"
        "from repro.partition import distribute, migrate\n"
        "from repro.partitioners import partition\n"
        "m = rect_tri(4)\n"
        "dm = distribute(m, partition(m, 2, method='rcb'))\n"
        "elem = next(dm.part(0).mesh.entities(2))\n"
        "migrate(dm, {0: {elem: 1}})\n"
    )
    out_dir = tmp_path / "trace-out"
    assert main(["trace", str(script), "--out", str(out_dir)]) == 0

    trace = json.loads((out_dir / "workload.trace.json").read_text())
    names = {e.get("name") for e in trace["traceEvents"]}
    assert "migrate" in names and "distribute" in names

    metrics = json.loads((out_dir / "workload.metrics.json").read_text())
    assert metrics["schema"] == "repro.obs.metrics/1"
    assert metrics["supersteps"] > 0
    assert metrics["comm_matrix"]

    out = capsys.readouterr().out
    assert "workload.trace.json" in out


def test_trace_missing_script_fails(tmp_path, capsys):
    assert main(["trace", str(tmp_path / "nope.py")]) == 2
    assert "no such script" in capsys.readouterr().err


def test_balance_with_sanitize(capsys):
    assert (
        main(
            [
                "balance",
                "--kind",
                "rect",
                "--n",
                "5",
                "--parts",
                "3",
                "--sanitize",
            ]
        )
        == 0
    )
    assert "after ParMA" in capsys.readouterr().out
