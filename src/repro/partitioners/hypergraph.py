"""Multilevel hypergraph partitioner — the Zoltan PHG substitute (test T0).

"Hypergraph-based methods can further optimize the partition boundaries at
the cost of increased run-time over the graph-based methods" (paper, Section
III).  This implementation follows that structure:

1. a multilevel recursive bisection of the element dual graph produces the
   initial k-way partition (the graph phase), then
2. a greedy **connectivity refinement** pass walks the boundary elements and
   moves any whose reassignment lowers the hypergraph (λ-1) connectivity
   metric without violating element balance — the hyperedge-aware phase PHG
   adds over pure graph methods, and the reason it is slower.

The result matches the paper's baseline signature: tight element (region)
balance, optimized boundaries, but no control whatsoever over vertex/edge
balance — the spikes ParMA then removes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..mesh.mesh import Mesh
from .bisection import recursive_bisection
from .graph import dual_graph, element_hypergraph


def _connectivity_gain(hg, assignment, pins_of_element, element, to, counts):
    """Change in the λ-1 metric if ``element`` moves to part ``to``."""
    frm = assignment[element]
    gain = 0
    for j in pins_of_element[element]:
        cnt = counts[j]
        if cnt.get(frm, 0) == 1:
            gain += 1  # part frm disappears from hyperedge j
        if cnt.get(to, 0) == 0:
            gain -= 1  # part to newly appears in hyperedge j
    return gain


def refine_connectivity(
    mesh: Mesh,
    assignment: np.ndarray,
    eps: float = 0.05,
    passes: int = 2,
    weights: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, int]:
    """Greedy λ-1 refinement; returns (assignment, moves made)."""
    hg = element_hypergraph(mesh, weights)
    assignment = assignment.copy()
    nparts = int(assignment.max()) + 1

    # Per-element pin membership and per-hyperedge part counts.
    pins_of_element = [[] for _ in range(hg.n)]
    for j in range(hg.nedges):
        for p in hg.pins[hg.eptr[j]: hg.eptr[j + 1]]:
            pins_of_element[int(p)].append(j)
    counts = []
    for j in range(hg.nedges):
        cnt: dict = {}
        for p in hg.pins[hg.eptr[j]: hg.eptr[j + 1]]:
            part = int(assignment[p])
            cnt[part] = cnt.get(part, 0) + 1
        counts.append(cnt)

    part_weight = np.zeros(nparts)
    np.add.at(part_weight, assignment, hg.weights.astype(float))
    max_weight = hg.weights.sum() / nparts * (1.0 + eps)

    graph = dual_graph(mesh)
    total_moves = 0
    for _pass in range(passes):
        moves = 0
        for i in range(hg.n):
            frm = int(assignment[i])
            neighbor_parts = {
                int(assignment[j]) for j in graph.neighbors(i)
            } - {frm}
            if not neighbor_parts:
                continue
            best_to = -1
            best_gain = 0
            for to in sorted(neighbor_parts):
                if part_weight[to] + hg.weights[i] > max_weight:
                    continue
                gain = _connectivity_gain(
                    hg, assignment, pins_of_element, i, to, counts
                )
                if gain > best_gain:
                    best_gain = gain
                    best_to = to
            if best_to >= 0:
                for j in pins_of_element[i]:
                    cnt = counts[j]
                    cnt[frm] -= 1
                    if cnt[frm] == 0:
                        del cnt[frm]
                    cnt[best_to] = cnt.get(best_to, 0) + 1
                part_weight[frm] -= hg.weights[i]
                part_weight[best_to] += hg.weights[i]
                assignment[i] = best_to
                moves += 1
        total_moves += moves
        if moves == 0:
            break
    return assignment, total_moves


def phg(
    mesh: Mesh,
    nparts: int,
    eps: float = 0.05,
    seed: int = 0,
    weights: Optional[np.ndarray] = None,
    refine_passes: int = 2,
) -> np.ndarray:
    """Partition a mesh's elements with the PHG-style pipeline."""
    graph = dual_graph(mesh, weights)
    assignment = recursive_bisection(
        graph.xadj, graph.adjncy, graph.weights.astype(float), nparts,
        eps=eps, seed=seed,
    )
    if refine_passes > 0 and nparts > 1:
        assignment, _moves = refine_connectivity(
            mesh, assignment, eps=eps, passes=refine_passes, weights=weights
        )
    return assignment
