"""Local (per-part) partitioning: split every part of a distribution in place.

The paper's largest runs create their partitions this way: "This partition is
created by locally partitioning each part of a 16,384 part mesh with Zoltan
Hypergraph to 96 parts" (Section III-A) — cheap, embarrassingly parallel,
but blind to anything outside each part, which is why "the initial peak
vertex imbalance of the 1.5M part mesh is 54% while the initial peak vertex
imbalance of the 16,384 part mesh is 9%".  Reproducing that imbalance growth
is one of the benchmark targets.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ..mesh.entity import Ent
from ..partition.dmesh import DistributedMesh
from ..partition.migration import migrate
from .bisection import recursive_bisection
from .graph import dual_graph


def local_partition(
    dmesh: DistributedMesh,
    factor: int,
    eps: float = 0.05,
    seed: int = 0,
) -> DistributedMesh:
    """Split every non-empty part into ``factor`` subparts, in place.

    Subpart 0 stays on the original part id; the rest move to freshly
    created parts.  One collective migration executes all moves.  Returns
    the same (mutated) distributed mesh for chaining.
    """
    if factor < 1:
        raise ValueError(f"split factor must be >= 1, got {factor}")
    if factor == 1:
        return dmesh
    for part in dmesh:
        if part.ghosts:
            raise ValueError("delete ghosts before local partitioning")

    dim = dmesh.element_dim()
    plan: Dict[int, Dict[Ent, int]] = {}
    original_pids = [part.pid for part in dmesh if part.mesh.count(dim) > 0]
    for pid in original_pids:
        part = dmesh.part(pid)
        graph = dual_graph(part.mesh)
        pieces = min(factor, graph.n)  # cannot split finer than one element
        local = recursive_bisection(
            graph.xadj,
            graph.adjncy,
            graph.weights.astype(float),
            pieces,
            eps=eps,
            seed=seed + pid,
        )
        new_pids = [pid] + [dmesh.add_part().pid for _ in range(pieces - 1)]
        moves = {
            element: new_pids[local[i]]
            for i, element in enumerate(graph.elements)
            if local[i] != 0
        }
        if moves:
            plan[pid] = moves
    migrate(dmesh, plan)
    return dmesh
