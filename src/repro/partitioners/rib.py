"""Recursive inertial bisection (RIB).

A geometric partitioner like RCB, but each bisection cuts perpendicular to
the principal axis of the point set's inertia tensor instead of a coordinate
axis, which follows the domain's actual orientation (better for slanted or
elongated geometry).  Same interface as :mod:`repro.partitioners.rcb`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..mesh.mesh import Mesh
from .graph import element_centroids


def rib_points(
    points: np.ndarray,
    nparts: int,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """RIB assignment of weighted points to ``nparts`` parts."""
    points = np.asarray(points, dtype=float)
    n = len(points)
    if nparts < 1:
        raise ValueError(f"need at least one part, got {nparts}")
    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (n,):
            raise ValueError("weights must have one entry per point")
    assignment = np.zeros(n, dtype=np.int64)
    _rib_recurse(points, weights, np.arange(n), 0, nparts, assignment)
    return assignment


def _principal_axis(points: np.ndarray, weights: np.ndarray) -> np.ndarray:
    center = np.average(points, axis=0, weights=weights)
    centered = points - center
    inertia = (centered * weights[:, None]).T @ centered
    _eigvals, eigvecs = np.linalg.eigh(inertia)
    return eigvecs[:, -1]  # largest-variance direction


def _rib_recurse(points, weights, ids, first_part, nparts, assignment) -> None:
    if nparts == 1 or len(ids) == 0:
        assignment[ids] = first_part
        return
    left_parts = nparts // 2
    target = left_parts / nparts

    subset = points[ids]
    wsub = weights[ids]
    if len(ids) == 1 or np.allclose(subset, subset[0]):
        projection = np.zeros(len(ids))
    else:
        axis = _principal_axis(subset, wsub)
        projection = subset @ axis
    order = ids[np.argsort(projection, kind="stable")]

    cum = np.cumsum(weights[order])
    split = int(np.searchsorted(cum, target * cum[-1], side="left")) + 1
    split = min(max(split, 1), len(order) - 1)

    _rib_recurse(points, weights, order[:split], first_part, left_parts,
                 assignment)
    _rib_recurse(points, weights, order[split:], first_part + left_parts,
                 nparts - left_parts, assignment)


def rib(
    mesh: Mesh,
    nparts: int,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """RIB assignment of a mesh's elements (by centroid)."""
    _elements, centroids = element_centroids(mesh)
    return rib_points(centroids, nparts, weights)
