"""Multilevel two-way graph bisection (the METIS/Chaco scheme).

Three phases: **coarsen** by heavy-edge matching until the graph is small,
**bisect** the coarsest graph by greedy graph growing from a pseudo-
peripheral seed, and **uncoarsen** by projecting the side assignment back up
the hierarchy with an FM refinement pass at each level.  Node and edge
weights are carried through contraction so balance and cut are measured on
the original graph's terms throughout.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .fm import cut_weight, fm_refine


def heavy_edge_matching(
    xadj: np.ndarray,
    adjncy: np.ndarray,
    eweights: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Greedy heavy-edge matching; returns each node's mate (or itself)."""
    n = len(xadj) - 1
    mate = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for i in order:
        if mate[i] != -1:
            continue
        best = -1
        best_w = -1.0
        for k in range(xadj[i], xadj[i + 1]):
            j = int(adjncy[k])
            if mate[j] == -1 and j != i and eweights[k] > best_w:
                best = j
                best_w = float(eweights[k])
        if best == -1:
            mate[i] = i
        else:
            mate[i] = best
            mate[best] = i
    return mate


def contract(
    xadj: np.ndarray,
    adjncy: np.ndarray,
    weights: np.ndarray,
    eweights: np.ndarray,
    mate: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Contract matched pairs; returns (xadj, adjncy, weights, eweights, cmap)."""
    n = len(weights)
    cmap = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for i in range(n):
        if cmap[i] != -1:
            continue
        j = int(mate[i])
        cmap[i] = next_id
        if j != i:
            cmap[j] = next_id
        next_id += 1

    cweights = np.zeros(next_id, dtype=weights.dtype)
    np.add.at(cweights, cmap, weights)

    edge_accum: dict = {}
    for i in range(n):
        ci = cmap[i]
        for k in range(xadj[i], xadj[i + 1]):
            cj = cmap[int(adjncy[k])]
            if ci == cj:
                continue
            key = (ci, cj)
            edge_accum[key] = edge_accum.get(key, 0.0) + float(eweights[k])

    cxadj = np.zeros(next_id + 1, dtype=np.int64)
    for ci, _cj in edge_accum:
        cxadj[ci + 1] += 1
    np.cumsum(cxadj, out=cxadj)
    cadjncy = np.zeros(int(cxadj[-1]), dtype=np.int64)
    ceweights = np.zeros(int(cxadj[-1]))
    cursor = cxadj[:-1].copy()
    for (ci, cj), w in sorted(edge_accum.items()):
        cadjncy[cursor[ci]] = cj
        ceweights[cursor[ci]] = w
        cursor[ci] += 1
    return cxadj, cadjncy, cweights, ceweights, cmap


def greedy_grow(
    xadj: np.ndarray,
    adjncy: np.ndarray,
    weights: np.ndarray,
    ratio: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Grow side 0 by BFS from a pseudo-peripheral seed to the target weight."""
    n = len(weights)
    side = np.ones(n, dtype=np.int64)
    total = float(weights.sum())
    target = total * ratio

    # Pseudo-peripheral seed: BFS twice from a random start.
    start = int(rng.integers(n))
    for _ in range(2):
        dist = np.full(n, -1)
        dist[start] = 0
        queue = [start]
        head = 0
        while head < len(queue):
            i = queue[head]
            head += 1
            for k in range(xadj[i], xadj[i + 1]):
                j = int(adjncy[k])
                if dist[j] == -1:
                    dist[j] = dist[i] + 1
                    queue.append(j)
        start = queue[-1]

    grown = 0.0
    dist = np.full(n, -1)
    dist[start] = 0
    queue = [start]
    head = 0
    while head < len(queue) and grown < target:
        i = queue[head]
        head += 1
        if side[i] == 1:
            side[i] = 0
            grown += float(weights[i])
        for k in range(xadj[i], xadj[i + 1]):
            j = int(adjncy[k])
            if dist[j] == -1:
                dist[j] = dist[i] + 1
                queue.append(j)
    # Disconnected leftovers: sweep any unreached nodes if still underweight.
    if grown < target:
        for i in range(n):
            if grown >= target:
                break
            if side[i] == 1:
                side[i] = 0
                grown += float(weights[i])
    return side


def multilevel_bisect(
    xadj: np.ndarray,
    adjncy: np.ndarray,
    weights: np.ndarray,
    eweights: Optional[np.ndarray] = None,
    ratio: float = 0.5,
    eps: float = 0.05,
    seed: int = 0,
    coarse_limit: int = 120,
    fm_passes: int = 4,
) -> np.ndarray:
    """Two-way multilevel bisection; returns a 0/1 side per node."""
    rng = np.random.default_rng(seed)
    if eweights is None:
        eweights = np.ones(len(adjncy))
    return _bisect_level(
        xadj, adjncy, weights, eweights, ratio, eps, rng, coarse_limit,
        fm_passes,
    )


def _bisect_level(
    xadj, adjncy, weights, eweights, ratio, eps, rng, coarse_limit, fm_passes
) -> np.ndarray:
    n = len(weights)
    if n <= coarse_limit or len(adjncy) == 0:
        side = greedy_grow(xadj, adjncy, weights, ratio, rng)
        return fm_refine(
            xadj, adjncy, weights, side, eweights, ratio, eps, fm_passes
        )

    mate = heavy_edge_matching(xadj, adjncy, eweights, rng)
    if (mate == np.arange(n)).all():
        # Matching made no progress (e.g. edgeless graph): bisect directly.
        side = greedy_grow(xadj, adjncy, weights, ratio, rng)
        return fm_refine(
            xadj, adjncy, weights, side, eweights, ratio, eps, fm_passes
        )
    cxadj, cadjncy, cweights, ceweights, cmap = contract(
        xadj, adjncy, weights, eweights, mate
    )
    coarse_side = _bisect_level(
        cxadj, cadjncy, cweights, ceweights, ratio, eps, rng, coarse_limit,
        fm_passes,
    )
    side = coarse_side[cmap]
    return fm_refine(
        xadj, adjncy, weights, side, eweights, ratio, eps, fm_passes
    )
