"""Recursive k-way partitioning driven by two-way bisection.

Splits the node set into ``nparts`` pieces by recursive application of a
two-way method (multilevel by default), handling arbitrary (non-power-of-2)
part counts by biasing each bisection's target ratio.  This is the driver
behind both the "graph" and "hypergraph" methods of the Zoltan-like facade.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .multilevel import multilevel_bisect

Bisector = Callable[..., np.ndarray]


def _subgraph(xadj, adjncy, eweights, ids):
    """Extract the induced subgraph of ``ids`` (renumbered 0..len-1)."""
    remap = -np.ones(len(xadj) - 1, dtype=np.int64)
    remap[ids] = np.arange(len(ids))
    sub_xadj = [0]
    sub_adjncy = []
    sub_ew = []
    for i in ids:
        for k in range(xadj[i], xadj[i + 1]):
            j = remap[int(adjncy[k])]
            if j >= 0:
                sub_adjncy.append(j)
                sub_ew.append(float(eweights[k]) if eweights is not None else 1.0)
        sub_xadj.append(len(sub_adjncy))
    return (
        np.asarray(sub_xadj, dtype=np.int64),
        np.asarray(sub_adjncy, dtype=np.int64),
        np.asarray(sub_ew),
    )


def recursive_bisection(
    xadj: np.ndarray,
    adjncy: np.ndarray,
    weights: np.ndarray,
    nparts: int,
    eweights: Optional[np.ndarray] = None,
    eps: float = 0.05,
    seed: int = 0,
    bisector: Bisector = multilevel_bisect,
) -> np.ndarray:
    """Partition a CSR graph into ``nparts``; returns a part id per node."""
    if nparts < 1:
        raise ValueError(f"need at least one part, got {nparts}")
    n = len(weights)
    assignment = np.zeros(n, dtype=np.int64)
    if nparts == 1:
        return assignment
    # Imbalance compounds multiplicatively down the recursion, so each level
    # gets the tolerance that makes the leaves land within the overall eps.
    levels = int(np.ceil(np.log2(nparts)))
    eps_level = (1.0 + eps) ** (1.0 / levels) - 1.0
    _recurse(
        xadj, adjncy, weights, eweights, np.arange(n), 0, nparts, eps_level,
        seed, bisector, assignment,
    )
    return assignment


def _recurse(
    xadj, adjncy, weights, eweights, ids, first_part, nparts, eps, seed,
    bisector, assignment,
) -> None:
    if nparts == 1 or len(ids) == 0:
        assignment[ids] = first_part
        return
    left_parts = nparts // 2
    ratio = left_parts / nparts
    sub_xadj, sub_adjncy, sub_ew = _subgraph(xadj, adjncy, eweights, ids)
    side = bisector(
        sub_xadj, sub_adjncy, weights[ids], sub_ew,
        ratio=ratio, eps=eps, seed=seed,
    )
    left_ids = ids[side == 0]
    right_ids = ids[side == 1]
    if len(left_ids) == 0 or len(right_ids) == 0:
        # Degenerate bisection (tiny or pathological graph): split by order.
        half = max(1, int(round(len(ids) * ratio)))
        left_ids, right_ids = ids[:half], ids[half:]
    _recurse(
        xadj, adjncy, weights, eweights, left_ids, first_part, left_parts,
        eps, seed * 2 + 1, bisector, assignment,
    )
    _recurse(
        xadj, adjncy, weights, eweights, right_ids, first_part + left_parts,
        nparts - left_parts, eps, seed * 2 + 2, bisector, assignment,
    )
