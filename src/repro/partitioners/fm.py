"""Fiduccia–Mattheyses (FM) refinement for two-way partitions.

The boundary-refinement engine of the multilevel partitioner: given a CSR
graph with node and edge weights and a 0/1 side assignment, FM repeatedly
moves the boundary node with the best cut-gain whose move keeps both sides
within the balance tolerance, locks it, and at the end of each pass rolls
back to the best prefix seen — the classic hill-climbing-with-lookahead that
escapes local minima a greedy pass cannot.
"""

from __future__ import annotations

import heapq
from typing import Optional, Tuple

import numpy as np


def cut_weight(
    xadj: np.ndarray,
    adjncy: np.ndarray,
    eweights: Optional[np.ndarray],
    side: np.ndarray,
) -> float:
    """Total weight of edges crossing the two sides."""
    src = np.repeat(np.arange(len(xadj) - 1), np.diff(xadj))
    crossing = side[src] != side[adjncy]
    if eweights is None:
        return float(crossing.sum()) / 2.0
    return float(eweights[crossing].sum()) / 2.0


def _gains(xadj, adjncy, eweights, side) -> np.ndarray:
    """FM gain of every node: external minus internal incident edge weight."""
    n = len(xadj) - 1
    src = np.repeat(np.arange(n), np.diff(xadj))
    w = eweights if eweights is not None else np.ones(len(adjncy))
    external = np.where(side[src] != side[adjncy], w, 0.0)
    internal = np.where(side[src] == side[adjncy], w, 0.0)
    gains = np.zeros(n)
    np.add.at(gains, src, external - internal)
    return gains


def fm_refine(
    xadj: np.ndarray,
    adjncy: np.ndarray,
    weights: np.ndarray,
    side: np.ndarray,
    eweights: Optional[np.ndarray] = None,
    ratio: float = 0.5,
    eps: float = 0.05,
    passes: int = 4,
) -> np.ndarray:
    """Refine a two-way partition in place-and-return.

    ``ratio`` is side 0's target weight fraction; both sides may exceed
    their targets by the factor ``1 + eps``.  Stops early when a full pass
    yields no improvement.
    """
    n = len(weights)
    side = np.asarray(side, dtype=np.int64).copy()
    total = float(weights.sum())
    # Allow at least one max-weight cell of slack beyond the tolerance, the
    # standard FM relaxation without which a perfectly balanced partition
    # could never move anything at tight eps.
    slack = float(weights.max()) if n else 0.0
    max_side = (
        max(total * ratio * (1.0 + eps), total * ratio + slack),
        max(total * (1.0 - ratio) * (1.0 + eps), total * (1.0 - ratio) + slack),
    )

    for _pass in range(passes):
        gains = _gains(xadj, adjncy, eweights, side)
        heap = [(-gains[i], i) for i in range(n)]
        heapq.heapify(heap)
        locked = np.zeros(n, dtype=bool)
        side_weight = [
            float(weights[side == 0].sum()),
            float(weights[side == 1].sum()),
        ]

        targets = (total * ratio, total * (1.0 - ratio))

        def balance_metric() -> float:
            return max(
                side_weight[0] / targets[0] if targets[0] else 1.0,
                side_weight[1] / targets[1] if targets[1] else 1.0,
            )

        # A prefix only counts as "best" if it is at least as balanced as
        # the tolerance (or as the input, when the input starts outside it).
        acceptable = max(1.0 + eps, balance_metric())

        moves = []
        improvement = 0.0
        best_improvement = 0.0
        best_prefix = 0
        while heap:
            neg_gain, i = heapq.heappop(heap)
            if locked[i] or -neg_gain != gains[i]:
                continue  # stale heap entry
            frm = int(side[i])
            to = 1 - frm
            if side_weight[to] + weights[i] > max_side[to]:
                locked[i] = True  # infeasible this pass
                continue
            # Apply the move.
            locked[i] = True
            side[i] = to
            side_weight[frm] -= weights[i]
            side_weight[to] += weights[i]
            improvement += gains[i]
            moves.append(i)
            if improvement > best_improvement and balance_metric() <= acceptable:
                best_improvement = improvement
                best_prefix = len(moves)
            # Update neighbor gains.
            for k in range(xadj[i], xadj[i + 1]):
                j = int(adjncy[k])
                if locked[j]:
                    continue
                w = float(eweights[k]) if eweights is not None else 1.0
                # j's edge to i flipped internal<->external.
                gains[j] += 2.0 * w if side[j] != to else -2.0 * w
                heapq.heappush(heap, (-gains[j], j))

        # Roll back everything after the best prefix.
        for i in moves[best_prefix:]:
            side[i] = 1 - side[i]
        if best_improvement <= 0.0:
            break
    return side
