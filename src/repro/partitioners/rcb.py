"""Recursive coordinate bisection (RCB) — the fast geometric partitioner.

"Faster partition computation is available through geometric methods, and
for certain applications are desirable.  However, as they do not account for
mesh connectivity information, the quality of partition boundaries can be
poor" (paper, Section III).  RCB recursively splits the element centroid set
at the weighted median along the longest axis of the current bounding box,
honouring arbitrary target part counts (not just powers of two).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..mesh.mesh import Mesh
from .graph import element_centroids


def rcb_points(
    points: np.ndarray,
    nparts: int,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """RCB assignment of weighted points to ``nparts`` parts."""
    points = np.asarray(points, dtype=float)
    n = len(points)
    if nparts < 1:
        raise ValueError(f"need at least one part, got {nparts}")
    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (n,):
            raise ValueError("weights must have one entry per point")
    assignment = np.zeros(n, dtype=np.int64)
    _rcb_recurse(points, weights, np.arange(n), 0, nparts, assignment)
    return assignment


def _rcb_recurse(points, weights, ids, first_part, nparts, assignment) -> None:
    if nparts == 1 or len(ids) == 0:
        assignment[ids] = first_part
        return
    left_parts = nparts // 2
    target = left_parts / nparts  # weighted fraction on the left side

    box = points[ids]
    spans = box.max(axis=0) - box.min(axis=0)
    axis = int(np.argmax(spans))
    order = ids[np.argsort(points[ids, axis], kind="stable")]

    cum = np.cumsum(weights[order])
    total = cum[-1]
    # First index where the left side reaches its weight target.
    split = int(np.searchsorted(cum, target * total, side="left")) + 1
    split = min(max(split, 1), len(order) - 1)

    _rcb_recurse(points, weights, order[:split], first_part, left_parts,
                 assignment)
    _rcb_recurse(points, weights, order[split:], first_part + left_parts,
                 nparts - left_parts, assignment)


def rcb(
    mesh: Mesh,
    nparts: int,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """RCB assignment of a mesh's elements (by centroid)."""
    _elements, centroids = element_centroids(mesh)
    return rcb_points(centroids, nparts, weights)
