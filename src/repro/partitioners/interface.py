"""Zoltan-like partitioning facade and partition quality metrics.

One entry point, :func:`partition`, selecting by method name — the way
applications call Zoltan — plus :func:`entity_counts_from_assignment`, which
evaluates the per-part entity counts (the paper's balance metrics, with
part-boundary entities counted on every holding part) directly from an
assignment without building the distributed mesh, so baseline partitions can
be scored cheaply.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..mesh.entity import Ent
from ..mesh.mesh import Mesh
from .bisection import recursive_bisection
from .graph import dual_graph
from .hypergraph import phg
from .rcb import rcb
from .rib import rib


def _graph_method(mesh, nparts, eps, seed, weights):
    graph = dual_graph(mesh, weights)
    return recursive_bisection(
        graph.xadj, graph.adjncy, graph.weights.astype(float), nparts,
        eps=eps, seed=seed,
    )


def partition(
    mesh: Mesh,
    nparts: int,
    method: str = "hypergraph",
    eps: float = 0.05,
    seed: int = 0,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Partition a mesh's elements; returns a part id per element (id order).

    Methods: ``hypergraph`` (PHG substitute — multilevel + connectivity
    refinement), ``graph`` (multilevel recursive bisection), ``rcb`` and
    ``rib`` (geometric).
    """
    if nparts < 1:
        raise ValueError(f"need at least one part, got {nparts}")
    if method == "hypergraph":
        return phg(mesh, nparts, eps=eps, seed=seed, weights=weights)
    if method == "graph":
        return _graph_method(mesh, nparts, eps, seed, weights)
    if method == "rcb":
        return rcb(mesh, nparts, weights)
    if method == "rib":
        return rib(mesh, nparts, weights)
    raise ValueError(
        f"unknown method {method!r}; pick hypergraph, graph, rcb or rib"
    )


def entity_counts_from_assignment(
    mesh: Mesh, assignment: np.ndarray, nparts: Optional[int] = None
) -> np.ndarray:
    """Per-part entity counts ``(nparts, 4)`` implied by an assignment.

    An entity of dimension d < D is counted on every part holding an
    adjacent element (it would be duplicated there after distribution);
    elements are counted on their assigned part.  Matches
    ``DistributedMesh.entity_counts()`` after ``distribute``.
    """
    dim = mesh.dim()
    elements = list(mesh.entities(dim))
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (len(elements),):
        raise ValueError("assignment must have one entry per element")
    if nparts is None:
        nparts = int(assignment.max()) + 1 if len(assignment) else 1
    part_of = {e.idx: int(p) for e, p in zip(elements, assignment)}

    counts = np.zeros((nparts, 4), dtype=np.int64)
    np.add.at(counts[:, dim], assignment, 1)
    for d in range(dim):
        store = mesh._stores[d]
        for idx in store.indices():
            holders = {
                part_of[e.idx] for e in mesh.adjacent(Ent(d, idx), dim)
            }
            for p in holders:
                counts[p, d] += 1
    return counts


def imbalance(counts: np.ndarray, base_mean: Optional[np.ndarray] = None):
    """Peak imbalance per entity dimension: ``max / mean - 1`` (fractions).

    ``base_mean`` optionally fixes the means (the paper computes all
    imbalance ratios against the T0 partition's means so tests are
    comparable).
    """
    counts = np.asarray(counts, dtype=float)
    mean = counts.mean(axis=0) if base_mean is None else np.asarray(base_mean)
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.where(mean > 0, counts.max(axis=0) / mean - 1.0, 0.0)
    return result
