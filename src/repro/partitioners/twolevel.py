"""Two-level, architecture-aware mesh partitioning (paper Section II-D).

"The partitioned mesh representation of PUMI is under improvement towards a
hybrid mesh partitioning algorithm which involves first partitioning a mesh
into nodes and subsequently to the cores on the nodes.  Part handles
assigned to threads on the same node shared memory should result in faster
communications and reduced memory usage."

:func:`two_level_partition` implements exactly that: a global partition to
``nodes`` pieces, then an independent partition of each node's piece to its
``cores_per_node`` cores, with the final part id ``node * cores + core`` —
the block mapping the machine topology assumes.  The payoff is *locality by
construction*: every intra-node interface created by the second phase is an
on-node part boundary (implicit, shared memory), so the fraction of shared
entity copies that must live in distributed memory is bounded by the
first-phase cut, no matter how many cores each node has.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..mesh.entity import Ent
from ..mesh.mesh import Mesh
from ..parallel.topology import MachineTopology
from .bisection import recursive_bisection
from .graph import dual_graph
from .interface import partition


def two_level_partition(
    mesh: Mesh,
    topology: MachineTopology,
    method: str = "hypergraph",
    eps: float = 0.05,
    seed: int = 0,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Partition elements to ``topology.total_cores`` parts, node-first.

    Phase 1 partitions globally to ``topology.nodes`` pieces with ``method``;
    phase 2 partitions each piece's induced dual graph to
    ``topology.cores_per_node`` parts.  Returns the flat assignment with
    part id ``node * cores_per_node + core`` (block mapping).
    """
    nodes = topology.nodes
    cores = topology.cores_per_node
    node_assignment = partition(
        mesh, nodes, method=method, eps=eps, seed=seed, weights=weights
    )
    if cores == 1:
        return node_assignment.copy()

    graph = dual_graph(mesh, weights)
    final = np.zeros(graph.n, dtype=np.int64)
    for node in range(nodes):
        ids = np.flatnonzero(node_assignment == node)
        if len(ids) == 0:
            continue
        sub_xadj, sub_adjncy, sub_ew = _induced(graph, ids)
        pieces = min(cores, len(ids))
        local = recursive_bisection(
            sub_xadj,
            sub_adjncy,
            graph.weights[ids].astype(float),
            pieces,
            eweights=sub_ew,
            eps=eps,
            seed=seed + 1 + node,
        )
        final[ids] = node * cores + local
    return final


def _induced(graph, ids):
    remap = -np.ones(graph.n, dtype=np.int64)
    remap[ids] = np.arange(len(ids))
    xadj = [0]
    adjncy = []
    for i in ids:
        for j in graph.neighbors(int(i)):
            k = remap[int(j)]
            if k >= 0:
                adjncy.append(int(k))
        xadj.append(len(adjncy))
    return (
        np.asarray(xadj, dtype=np.int64),
        np.asarray(adjncy, dtype=np.int64),
        np.ones(len(adjncy)),
    )


def boundary_locality(
    mesh: Mesh,
    assignment: np.ndarray,
    topology: MachineTopology,
) -> Dict[str, float]:
    """How architecture-friendly a partition's boundaries are.

    Classifies every shared entity *copy* (an entity counted once per
    holding part beyond the first) as on-node — all holders on one node,
    "implicit in shared memory" per the paper — or off-node.  Returns the
    copy counts and the on-node fraction, the quantity two-level
    partitioning maximizes.
    """
    dim = mesh.dim()
    elements = list(mesh.entities(dim))
    part_of = {e.idx: int(p) for e, p in zip(mesh.entities(dim), assignment)}

    on_node = 0
    off_node = 0
    for d in range(dim):
        store = mesh._stores[d]
        for idx in store.indices():
            holders = {
                part_of[e.idx] for e in mesh.adjacent(Ent(d, idx), dim)
            }
            if len(holders) < 2:
                continue
            copies = len(holders) - 1
            holder_nodes = {topology.node_of(p) for p in holders}
            if len(holder_nodes) == 1:
                on_node += copies
            else:
                off_node += copies
    total = on_node + off_node
    return {
        "on_node_copies": float(on_node),
        "off_node_copies": float(off_node),
        "on_node_fraction": on_node / total if total else 1.0,
    }
