"""Baseline partitioners: geometric, graph, and hypergraph methods.

The comparators of the paper's Section III: Zoltan-PHG-style hypergraph
partitioning (test T0), multilevel graph bisection, RCB/RIB geometric
methods, and the local (per-part) partitioning used to reach extreme part
counts.
"""

from .bisection import recursive_bisection
from .fm import cut_weight, fm_refine
from .graph import (
    ElementGraph,
    ElementHypergraph,
    dual_graph,
    element_centroids,
    element_hypergraph,
)
from .hypergraph import phg, refine_connectivity
from .interface import entity_counts_from_assignment, imbalance, partition
from .local import local_partition
from .multilevel import (
    contract,
    greedy_grow,
    heavy_edge_matching,
    multilevel_bisect,
)
from .rcb import rcb, rcb_points
from .twolevel import boundary_locality, two_level_partition
from .rib import rib, rib_points

__all__ = [
    "ElementGraph",
    "ElementHypergraph",
    "boundary_locality",
    "contract",
    "cut_weight",
    "dual_graph",
    "element_centroids",
    "element_hypergraph",
    "entity_counts_from_assignment",
    "fm_refine",
    "greedy_grow",
    "heavy_edge_matching",
    "imbalance",
    "local_partition",
    "multilevel_bisect",
    "partition",
    "phg",
    "rcb",
    "rcb_points",
    "recursive_bisection",
    "refine_connectivity",
    "rib",
    "rib_points",
    "two_level_partition",
]
