"""Graph and hypergraph extraction from meshes.

The graph/hypergraph-based partitioners the paper compares against (Zoltan
PHG) operate on the element connectivity of the mesh:

* the **dual graph** has one node per element and an edge between elements
  sharing a facet (dimension ``d-1`` entity) — the classic METIS/Chaco input;
* the **element hypergraph** has one node per element and one hyperedge per
  mesh vertex, containing the elements adjacent to that vertex — the Zoltan
  PHG input, whose connectivity metric models communication volume better.

Both are returned in CSR-like NumPy form for speed, with helpers to compute
cut metrics for a given assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..mesh.entity import Ent
from ..mesh.mesh import Mesh


@dataclass
class ElementGraph:
    """CSR dual graph over a mesh's top-dimension elements.

    ``elements[i]`` is the mesh entity of node ``i``; ``xadj``/``adjncy``
    is the CSR adjacency; ``weights`` the node (element) weights.
    """

    elements: List[Ent]
    xadj: np.ndarray
    adjncy: np.ndarray
    weights: np.ndarray

    @property
    def n(self) -> int:
        return len(self.elements)

    def neighbors(self, i: int) -> np.ndarray:
        return self.adjncy[self.xadj[i]: self.xadj[i + 1]]

    def degree(self, i: int) -> int:
        return int(self.xadj[i + 1] - self.xadj[i])

    def edge_cut(self, assignment: np.ndarray) -> int:
        """Number of graph edges crossing parts under ``assignment``."""
        src = np.repeat(np.arange(self.n), np.diff(self.xadj))
        return int((assignment[src] != assignment[self.adjncy]).sum()) // 2


@dataclass
class ElementHypergraph:
    """Element hypergraph: one hyperedge (pin list) per mesh vertex."""

    elements: List[Ent]
    #: CSR over hyperedges: pins[eptr[j]:eptr[j+1]] are the elements of
    #: hyperedge j.
    eptr: np.ndarray
    pins: np.ndarray
    weights: np.ndarray

    @property
    def n(self) -> int:
        return len(self.elements)

    @property
    def nedges(self) -> int:
        return len(self.eptr) - 1

    def connectivity_cost(self, assignment: np.ndarray) -> int:
        """The (lambda - 1) connectivity metric Zoltan PHG minimizes."""
        total = 0
        for j in range(self.nedges):
            pin_parts = assignment[self.pins[self.eptr[j]: self.eptr[j + 1]]]
            total += len(np.unique(pin_parts)) - 1
        return total


def dual_graph(
    mesh: Mesh,
    weights: Optional[np.ndarray] = None,
) -> ElementGraph:
    """Facet-dual graph of the mesh's top-dimension elements.

    Built directly from the core SoA arrays: interior facets are the live
    ``dim-1`` entities with exactly two upward users (``core.nup``), and
    both directed edges of each such facet are emitted in facet-id order,
    then stably bucketed by source element — bit-identical CSR to the old
    per-entity facade walk, without any per-facet Python dispatch.
    """
    dim = mesh.dim()
    if dim < 1:
        raise ValueError("mesh has no elements")
    elements = list(mesh.entities(dim))
    core = mesh.core
    eids = core.live_ids(dim)
    nelem = len(eids)
    index = np.full(int(eids.max()) + 1 if nelem else 1, -1, dtype=np.int64)
    index[eids] = np.arange(nelem, dtype=np.int64)

    fids = core.live_ids(dim - 1)
    interior = fids[core.nup[dim - 1][fids] == 2]
    ups = index[core.up[dim - 1][interior, :2].astype(np.int64)]
    # Interleave (a->b, b->a) in facet order so a stable sort by source
    # reproduces each element's legacy facet-ordered neighbor list.
    m = len(interior)
    src = np.empty(2 * m, dtype=np.int64)
    dst = np.empty(2 * m, dtype=np.int64)
    src[0::2], dst[0::2] = ups[:, 0], ups[:, 1]
    src[1::2], dst[1::2] = ups[:, 1], ups[:, 0]
    order = np.argsort(src, kind="stable")
    adjncy = dst[order]
    degrees = np.bincount(src, minlength=nelem).astype(np.int64)
    xadj = np.zeros(nelem + 1, dtype=np.int64)
    np.cumsum(degrees, out=xadj[1:])

    if weights is None:
        weights = np.ones(nelem, dtype=np.int64)
    else:
        weights = np.asarray(weights)
        if weights.shape != (nelem,):
            raise ValueError("weights must have one entry per element")
    return ElementGraph(elements, xadj, adjncy, weights)


def element_hypergraph(
    mesh: Mesh,
    weights: Optional[np.ndarray] = None,
) -> ElementHypergraph:
    """Vertex hyperedges over the mesh's top-dimension elements."""
    dim = mesh.dim()
    if dim < 1:
        raise ValueError("mesh has no elements")
    elements = list(mesh.entities(dim))
    core = mesh.core
    eids = core.live_ids(dim)
    nelem = len(eids)

    # Invert the element->vertex SoA rows: a stable sort of the flattened
    # (vertex, element) incidence by vertex groups pins per hyperedge with
    # elements ascending inside each — one vectorized pass instead of an
    # upward adjacency walk per mesh vertex.
    nv = core.nverts[dim][eids].astype(np.int64)
    flat_verts = core.gather_verts(dim, eids).astype(np.int64)
    flat_elems = np.repeat(np.arange(nelem, dtype=np.int64), nv)
    order = np.argsort(flat_verts, kind="stable")
    sorted_verts = flat_verts[order]
    pins = flat_elems[order]
    # Hyperedge boundaries: positions where the owning vertex changes.
    # Vertices with no element (none in practice) simply emit no edge,
    # matching the old walk's skip of empty adjacencies.
    counts = np.bincount(sorted_verts)
    counts = counts[counts > 0]
    eptr = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=eptr[1:])

    if weights is None:
        weights = np.ones(nelem, dtype=np.int64)
    else:
        weights = np.asarray(weights)
        if weights.shape != (nelem,):
            raise ValueError("weights must have one entry per element")
    return ElementHypergraph(elements, eptr, pins, weights)


def element_centroids(mesh: Mesh) -> Tuple[List[Ent], np.ndarray]:
    """Elements (id order) and their centroid coordinates, vectorized."""
    dim = mesh.dim()
    elements = list(mesh.entities(dim))
    core = mesh.core
    eids = core.live_ids(dim)
    nv = core.nverts[dim][eids].astype(np.int64)
    corner_coords = mesh.coords_view()[core.gather_verts(dim, eids)]
    indptr = np.zeros(len(eids) + 1, dtype=np.int64)
    np.cumsum(nv, out=indptr[1:])
    sums = np.add.reduceat(corner_coords, indptr[:-1], axis=0)
    centroids = sums / nv[:, None]
    return elements, centroids
