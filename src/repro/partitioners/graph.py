"""Graph and hypergraph extraction from meshes.

The graph/hypergraph-based partitioners the paper compares against (Zoltan
PHG) operate on the element connectivity of the mesh:

* the **dual graph** has one node per element and an edge between elements
  sharing a facet (dimension ``d-1`` entity) — the classic METIS/Chaco input;
* the **element hypergraph** has one node per element and one hyperedge per
  mesh vertex, containing the elements adjacent to that vertex — the Zoltan
  PHG input, whose connectivity metric models communication volume better.

Both are returned in CSR-like NumPy form for speed, with helpers to compute
cut metrics for a given assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..mesh.entity import Ent
from ..mesh.mesh import Mesh


@dataclass
class ElementGraph:
    """CSR dual graph over a mesh's top-dimension elements.

    ``elements[i]`` is the mesh entity of node ``i``; ``xadj``/``adjncy``
    is the CSR adjacency; ``weights`` the node (element) weights.
    """

    elements: List[Ent]
    xadj: np.ndarray
    adjncy: np.ndarray
    weights: np.ndarray

    @property
    def n(self) -> int:
        return len(self.elements)

    def neighbors(self, i: int) -> np.ndarray:
        return self.adjncy[self.xadj[i]: self.xadj[i + 1]]

    def degree(self, i: int) -> int:
        return int(self.xadj[i + 1] - self.xadj[i])

    def edge_cut(self, assignment: np.ndarray) -> int:
        """Number of graph edges crossing parts under ``assignment``."""
        src = np.repeat(np.arange(self.n), np.diff(self.xadj))
        return int((assignment[src] != assignment[self.adjncy]).sum()) // 2


@dataclass
class ElementHypergraph:
    """Element hypergraph: one hyperedge (pin list) per mesh vertex."""

    elements: List[Ent]
    #: CSR over hyperedges: pins[eptr[j]:eptr[j+1]] are the elements of
    #: hyperedge j.
    eptr: np.ndarray
    pins: np.ndarray
    weights: np.ndarray

    @property
    def n(self) -> int:
        return len(self.elements)

    @property
    def nedges(self) -> int:
        return len(self.eptr) - 1

    def connectivity_cost(self, assignment: np.ndarray) -> int:
        """The (lambda - 1) connectivity metric Zoltan PHG minimizes."""
        total = 0
        for j in range(self.nedges):
            pin_parts = assignment[self.pins[self.eptr[j]: self.eptr[j + 1]]]
            total += len(np.unique(pin_parts)) - 1
        return total


def dual_graph(
    mesh: Mesh,
    weights: Optional[np.ndarray] = None,
) -> ElementGraph:
    """Facet-dual graph of the mesh's top-dimension elements."""
    dim = mesh.dim()
    if dim < 1:
        raise ValueError("mesh has no elements")
    elements = list(mesh.entities(dim))
    index = {e.idx: i for i, e in enumerate(elements)}

    pair_lists: List[List[int]] = [[] for _ in elements]
    facet_store = mesh._stores[dim - 1]
    for facet_idx in facet_store.indices():
        ups = facet_store.up(facet_idx)
        if len(ups) == 2:
            a, b = index[ups[0]], index[ups[1]]
            pair_lists[a].append(b)
            pair_lists[b].append(a)

    degrees = np.asarray([len(p) for p in pair_lists], dtype=np.int64)
    xadj = np.zeros(len(elements) + 1, dtype=np.int64)
    np.cumsum(degrees, out=xadj[1:])
    adjncy = np.fromiter(
        (n for p in pair_lists for n in p), dtype=np.int64, count=int(xadj[-1])
    )
    if weights is None:
        weights = np.ones(len(elements), dtype=np.int64)
    else:
        weights = np.asarray(weights)
        if weights.shape != (len(elements),):
            raise ValueError("weights must have one entry per element")
    return ElementGraph(elements, xadj, adjncy, weights)


def element_hypergraph(
    mesh: Mesh,
    weights: Optional[np.ndarray] = None,
) -> ElementHypergraph:
    """Vertex hyperedges over the mesh's top-dimension elements."""
    dim = mesh.dim()
    if dim < 1:
        raise ValueError("mesh has no elements")
    elements = list(mesh.entities(dim))
    index = {e.idx: i for i, e in enumerate(elements)}

    eptr_list = [0]
    pins_list: List[int] = []
    for v in mesh.entities(0):
        adjacent = mesh.adjacent(v, dim)
        if not adjacent:
            continue
        pins_list.extend(index[e.idx] for e in adjacent)
        eptr_list.append(len(pins_list))

    if weights is None:
        weights = np.ones(len(elements), dtype=np.int64)
    else:
        weights = np.asarray(weights)
        if weights.shape != (len(elements),):
            raise ValueError("weights must have one entry per element")
    return ElementHypergraph(
        elements,
        np.asarray(eptr_list, dtype=np.int64),
        np.asarray(pins_list, dtype=np.int64),
        weights,
    )


def element_centroids(mesh: Mesh) -> Tuple[List[Ent], np.ndarray]:
    """Elements (id order) and their centroid coordinates, vectorized."""
    dim = mesh.dim()
    elements = list(mesh.entities(dim))
    store = mesh._stores[dim]
    coords = mesh.coords_view()
    centroids = np.asarray(
        [coords[list(store.verts(e.idx))].mean(axis=0) for e in elements]
    )
    return elements, centroids
