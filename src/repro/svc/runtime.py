"""The mesh-job service: admission, gang scheduling, supervised execution.

:class:`MeshJobService` is the serving tier over the simulated machine: it
admits :class:`~repro.svc.JobSpec` submissions through a bounded
:class:`~repro.svc.AdmissionQueue`, carves a core-set per job with the
locality-aware :class:`~repro.svc.GangScheduler`, and executes jobs in
deterministic **scheduling rounds**:

1. advance the logical scheduler tick (priority aging);
2. pop schedulable jobs (fair-share order) and place their gangs until the
   machine is full or the queue is empty;
3. run the whole wave concurrently — one thread per job, each job in its
   **own isolated SPMD world** (private :class:`~repro.parallel.CommWorld`
   built on the job's :class:`~repro.parallel.PlacedTopology`, private
   counter registry, private tracer, optional private fault injector);
4. join the wave, then release core-sets and settle outcomes in placement
   order: completed jobs are finalized, retryable failures (classified via
   :func:`repro.resilience.classify_failure` — injected/collateral faults
   retry, real bugs fail fast unless the policy says otherwise) are
   re-queued for a later round.

The round barrier is what makes the service *reproducible*: which jobs run
together, where each gang lands, and every retry decision depend only on
the submission sequence and the seed — never on thread timing — so two
identical runs produce byte-identical ``repro.svc/1`` reports.  Inside a
round, jobs genuinely run concurrently.

Deadlines are enforced by cooperative cancellation: each attempt arms a
timer that sets the job's cancel event; the executor aborts the world and
the blocked ranks wake with ``CommAbortedError`` (see
``spmd(..., cancel=...)``).  Observability: service-level gauges (queue
depth, running jobs, core utilization) land on the service tracer's
timelines, ``svc.*`` counters on its registry, and job latencies are kept
for :meth:`MeshJobService.latency_stats` / the metrics export.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..obs.stats import LatencyStats
from ..obs.tracer import Tracer
from ..parallel.executor import SpmdError, spmd
from ..parallel.perf import PerfCounters
from ..parallel.topology import MachineTopology
from ..resilience.faults import FaultInjector
from ..resilience.recovery import REAL, classify_failure
from ..workloads.jobs import job_workload
from .job import (
    CANCELLED,
    DEADLINE,
    FAILED,
    JobFailure,
    JobResult,
    JobSpec,
    JobSpecError,
    JobStats,
    PlacementRecord,
)
from .placement import GangScheduler, Placement
from .queue import AdmissionError, AdmissionQueue, QueuedJob
from .report import RoundRecord, ServiceReport

__all__ = ["MeshJobService", "default_machine"]


def default_machine() -> MachineTopology:
    """The default serving machine: 2 nodes x 4 cores (8 processing units)."""
    return MachineTopology(nodes=2, cores_per_node=4)


class MeshJobService:
    """Multi-tenant gang-scheduled mesh-job service (see module docstring).

    Parameters
    ----------
    machine:
        The shared machine jobs are placed onto (default: 2x4 cores).
    capacity:
        Admission queue bound; submissions beyond it raise
        :class:`~repro.svc.AdmissionError`.
    aging:
        Priority points a pending job gains per scheduling round waited
        (fair-share aging; 0 disables).
    seed:
        Seed for the scheduler's deterministic tie-breaks.
    timeout:
        Per-receive deadlock timeout handed to each job's SPMD world.
    join_grace:
        Seconds the executor waits for rank threads after an abort before
        abandoning them (see ``spmd(..., join_grace=...)``).
    tracer:
        Service-level observability hook; defaults to a fresh
        :class:`~repro.obs.Tracer` over the service counter registry.
    """

    def __init__(
        self,
        machine: Optional[MachineTopology] = None,
        *,
        capacity: int = 64,
        aging: int = 1,
        seed: int = 0,
        timeout: Optional[float] = 30.0,
        join_grace: float = 2.0,
        tracer: Optional[Tracer] = None,
        snapshot_cache: Optional[Any] = None,
    ) -> None:
        self.machine = machine if machine is not None else default_machine()
        self.seed = seed
        self.timeout = timeout
        self.join_grace = join_grace
        self.counters = PerfCounters()
        self.tracer = tracer if tracer is not None else Tracer(
            counters=self.counters
        )
        # Warm-start support: a SnapshotCache (or a directory path to
        # build one over) charged to this service's counters, installed
        # process-wide so cache-aware workloads (``mesh-warm``) discover
        # it.  ``store.cache.hits``/``.misses`` then land in this
        # service's report counters.
        self.snapshot_cache = None
        if snapshot_cache is not None:
            from ..store.cache import SnapshotCache, install_cache

            if isinstance(snapshot_cache, SnapshotCache):
                self.snapshot_cache = snapshot_cache
                # Adopt the cache: hit/miss counters must show up in this
                # service's report regardless of who built the instance.
                self.snapshot_cache.counters = self.counters
            else:
                self.snapshot_cache = SnapshotCache(
                    snapshot_cache, counters=self.counters
                )
            install_cache(self.snapshot_cache)
        self.scheduler = GangScheduler(self.machine, seed=seed)
        self.queue = AdmissionQueue(capacity=capacity, aging=aging)
        self._entries: Dict[str, QueuedJob] = {}
        self._fns: Dict[str, Callable[..., Any]] = {}
        self._injectors: Dict[str, Optional[FaultInjector]] = {}
        self._placements: Dict[str, List[PlacementRecord]] = {}
        self._seconds: Dict[str, float] = {}
        self._order: List[str] = []  # submission order, for the report
        self._outcomes: Dict[str, Union[JobResult, JobFailure]] = {}
        self._rounds: List[RoundRecord] = []
        # Channel hub for coupled job graphs; installed by serve_graph().
        self._hub: Optional[Any] = None

    # -- admission ---------------------------------------------------------

    def submit(self, spec: JobSpec) -> int:
        """Admit one job; returns its queue ticket.

        Raises :class:`~repro.svc.job.JobSpecError` for duplicate names or
        unknown workloads, :class:`~repro.svc.PlacementError` for gangs
        larger than the machine, and :class:`~repro.svc.AdmissionError`
        when the queue is full (nothing is recorded in that case — the
        caller owns resubmission).
        """
        if spec.name in self._entries:
            raise JobSpecError(
                f"job name {spec.name!r} already submitted to this service"
            )
        self.scheduler.check(spec)
        fn = (
            spec.workload
            if callable(spec.workload)
            else self._resolve(spec.workload)
        )
        ticket = self.queue.submit(spec)  # may raise AdmissionError
        self._entries[spec.name] = QueuedJob(
            ticket=ticket, spec=spec, submitted_tick=0
        )
        self._fns[spec.name] = fn
        self._injectors[spec.name] = (
            FaultInjector(spec.fault_plan) if spec.fault_plan else None
        )
        self._placements[spec.name] = []
        self._seconds[spec.name] = 0.0
        self._order.append(spec.name)
        self.counters.add("svc.jobs.submitted")
        return ticket

    @staticmethod
    def _resolve(name: str) -> Callable[..., Any]:
        try:
            return job_workload(name)
        except KeyError as exc:
            raise JobSpecError(str(exc)) from None

    def cancel(self, name: str) -> bool:
        """Cancel a *pending* job; True when it was removed from the queue.

        A cancelled job still appears in the report with status
        ``cancelled``.  Jobs already running in the current round are not
        interruptible from here — use a deadline for that.
        """
        if not self.queue.cancel(name):
            return False
        self.counters.add("svc.jobs.cancelled")
        self._outcomes[name] = JobFailure(
            name=name,
            status=CANCELLED,
            attempts=0,
            placements=(),
            message="cancelled while pending",
        )
        return True

    # -- dependency / coupling helpers --------------------------------------

    def _deps_ready(self, spec: JobSpec) -> bool:
        """True when every dependency has settled successfully."""
        return all(
            dep in self._outcomes and self._outcomes[dep].ok
            for dep in spec.deps
        )

    def _doomed_dep(self, spec: JobSpec) -> Optional[str]:
        """First dependency that can no longer succeed, or None.

        A dependency is doomed when it settled unsuccessfully (failed,
        cancelled, deadline) or was never submitted to this service.
        """
        for dep in spec.deps:
            outcome = self._outcomes.get(dep)
            if outcome is not None and not outcome.ok:
                return dep
            if outcome is None and dep not in self._entries:
                return dep
        return None

    def _peer_names(self, name: str) -> Tuple[str, ...]:
        """Transitive channel-coupled peers of ``name`` (sorted), sans self."""
        if self._hub is None:
            return ()
        seen = {name}
        frontier = [name]
        while frontier:
            fresh: List[str] = []
            for job in frontier:
                for peer in self._hub.peer_jobs(job):
                    if peer not in seen:
                        seen.add(peer)
                        fresh.append(peer)
            frontier = fresh
        seen.discard(name)
        return tuple(sorted(seen))

    def _cancel_pending(self, name: str, message: str) -> None:
        """Drop a pending job with a deterministic cancellation outcome."""
        if not self.queue.cancel(name):  # pragma: no cover - caller checks
            return
        self.counters.add("svc.jobs.cancelled")
        self._outcomes[name] = JobFailure(
            name=name,
            status=CANCELLED,
            attempts=0,
            placements=tuple(self._placements.get(name, ())),
            message=message,
        )
        spec = self._entries[name].spec
        if self._hub is not None and spec.channels:
            self._hub.job_done(name)

    # -- the service loop --------------------------------------------------

    def run_round(self) -> Optional[RoundRecord]:
        """Execute one scheduling round; None when the queue is empty."""
        if self.queue.depth == 0:
            return None
        self.queue.tick()

        # Dependency sweep: cancel pending jobs whose deps can no longer
        # succeed (iterated to a fixpoint so cancellation cascades through
        # dependency chains deterministically).
        changed = True
        while changed:
            changed = False
            for name in self.queue.pending_names():
                doomed = self._doomed_dep(self._entries[name].spec)
                if doomed is not None:
                    self._cancel_pending(
                        name, f"dependency {doomed!r} did not complete"
                    )
                    changed = True

        # Build the wave: pop + place until the machine is full.  Placement
        # grants happen in pop order, which is the deterministic fair-share
        # order — this *is* the placement trace.  A coupled job is popped
        # only when its whole peer group is simultaneously schedulable, and
        # the peers are co-popped into the same wave (gang-of-gangs).
        wave: List[Tuple[QueuedJob, Placement]] = []
        placed_names: set = set()
        while True:
            # Snapshots for the predicate: the queue lock is not reentrant,
            # so the predicate must not call queue methods itself.
            pending = set(self.queue.pending_names())
            used, total = self.scheduler.utilization()
            free = total - used

            def schedulable(spec: JobSpec) -> bool:
                if not self._deps_ready(spec):
                    return False
                need = spec.parts
                for peer in self._peer_names(spec.name):
                    if peer in placed_names or peer in self._outcomes:
                        continue
                    if peer not in pending:
                        return False
                    peer_spec = self._entries[peer].spec
                    if not self._deps_ready(peer_spec):
                        return False
                    need += peer_spec.parts
                return need <= free

            entry = self.queue.pop_schedulable(schedulable)
            if entry is None:
                break
            group = [entry]
            for peer in self._peer_names(entry.spec.name):
                if peer in placed_names or peer in self._outcomes:
                    continue
                peer_entry = self.queue.pop_named(peer)
                if peer_entry is not None:
                    group.append(peer_entry)
            for member in group:
                placement = self.scheduler.place(member.spec)
                assert placement is not None  # schedulable() reserved room
                self._placements[member.spec.name].append(
                    PlacementRecord(
                        round=len(self._rounds),
                        slots=placement.slots,
                        node_local=placement.node_local,
                    )
                )
                wave.append((member, placement))
                placed_names.add(member.spec.name)

        # Unschedulable remainder: an empty wave with jobs still pending
        # means no pending job can ever run (missing peer, impossible
        # coupling) — cancel deterministically instead of spinning.
        if not wave:
            for name in self.queue.pending_names():
                self._cancel_pending(
                    name,
                    "unschedulable: dependency or coupled peer cannot be "
                    "satisfied",
                )

        used, total = self.scheduler.utilization()
        record = RoundRecord(
            index=len(self._rounds),
            placed=[entry.spec.name for entry, _p in wave],
            cores_in_use=used,
            total_cores=total,
            queue_depth_after=self.queue.depth,
        )
        self._rounds.append(record)
        self.counters.add("svc.rounds")
        self.tracer.record_value("svc.queue.depth", self.queue.depth)
        self.tracer.record_value("svc.running.jobs", len(wave))
        self.tracer.record_value(
            "svc.core.utilization", used / total if total else 0.0
        )

        # Run the wave concurrently: one supervisor thread per job, each
        # job in its own isolated SPMD world.
        outcomes: Dict[str, Tuple[str, Any]] = {}
        lock = threading.Lock()

        def supervise(entry: QueuedJob, placement: Placement) -> None:
            outcome = self._run_attempt(entry, placement)
            with lock:
                outcomes[entry.spec.name] = outcome

        threads = [
            threading.Thread(
                target=supervise,
                args=(entry, placement),
                name=f"svc-job-{entry.spec.name}",
                daemon=True,
            )
            for entry, placement in wave
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Settle in placement order: release core-sets, finalize or retry.
        for entry, placement in wave:
            self.scheduler.release(placement)
            self._settle(entry, outcomes[entry.spec.name])
            # A coupled job that settled terminally (not a retry-requeue)
            # releases its channel endpoints so peers never block on it.
            if (
                self._hub is not None
                and entry.spec.channels
                and entry.spec.name in self._outcomes
            ):
                self._hub.job_done(entry.spec.name)
        return record

    def run_until_idle(self, max_rounds: int = 10_000) -> int:
        """Run rounds until the queue drains; returns rounds executed."""
        executed = 0
        while self.queue.depth > 0:
            if executed >= max_rounds:
                raise RuntimeError(
                    f"service did not drain within {max_rounds} rounds"
                )
            if self.run_round() is None:
                break
            executed += 1
        return executed

    def serve(self, specs: List[JobSpec]) -> ServiceReport:
        """Submit ``specs`` (draining on backpressure) and run to idle.

        Convenience driver for the CLI and tests: when admission hits the
        queue bound, a round is executed to drain capacity and the
        submission is retried — so the outcome is deterministic even when
        the job list exceeds the queue capacity.
        """
        for spec in specs:
            while True:
                try:
                    self.submit(spec)
                    break
                except AdmissionError:
                    if self.run_round() is None:  # pragma: no cover - guard
                        raise
        self.run_until_idle()
        return self.report()

    def serve_graph(self, graph) -> ServiceReport:
        """Run a :class:`~repro.couple.JobGraph` (deps DAG + channels) to idle.

        Installs a :class:`~repro.couple.channel.ChannelHub` over the
        graph's channels, submits every job up front (dependency gating and
        peer co-scheduling need the full graph pending, so the graph must
        fit the admission queue), and runs rounds until the queue drains.
        The hub is torn down afterwards even on error.
        """
        from ..couple.channel import ChannelHub

        graph.validate()
        total = self.machine.total_cores
        for group in graph.peer_groups():
            if len(group) < 2:
                continue
            need = sum(graph.job(name).parts for name in group)
            if need > total:
                raise JobSpecError(
                    f"coupled jobs {group} need {need} cores together but "
                    f"the machine only has {total}"
                )
        if len(graph.jobs) > self.queue.capacity:
            raise JobSpecError(
                f"graph has {len(graph.jobs)} jobs but the admission queue "
                f"holds {self.queue.capacity}; a job graph must be admitted "
                f"whole"
            )
        self._hub = ChannelHub(graph.channels, counters=self.counters)
        try:
            for spec in graph.jobs:
                self.submit(spec)
            self.run_until_idle()
        finally:
            self._hub.close_all()
        return self.report()

    # -- one attempt -------------------------------------------------------

    def _run_attempt(
        self, entry: QueuedJob, placement: Placement
    ) -> Tuple[str, Any]:
        """Run one attempt of one job in its own world; classify the outcome.

        Returns ``(kind, payload)`` where kind is ``"ok"``, ``"deadline"``,
        or ``"failed"`` (payload: result / None / (exc, retryable)).
        """
        spec = entry.spec
        fn = self._fns[spec.name]
        injector = self._injectors[spec.name]
        records_before = injector.record_count() if injector else 0
        job_counters = PerfCounters()
        job_tracer = Tracer(counters=job_counters)
        cancel = threading.Event()
        timer: Optional[threading.Timer] = None
        if spec.deadline is not None:
            timer = threading.Timer(spec.deadline, cancel.set)
            timer.daemon = True
            timer.start()
        started = time.perf_counter()
        try:
            args: List[Any] = [spec.mesh_n, spec.steps]
            if spec.channels and self._hub is not None:
                # Coupled jobs receive their channel endpoints as a third
                # workload argument: {channel name: Endpoint}.
                args.append(self._hub.ports_for(spec.name))
            with self.tracer.span(
                "svc.job", job=spec.name, attempt=entry.attempt
            ):
                results = spmd(
                    spec.parts,
                    fn,
                    *args,
                    topology=placement.topology(self.machine),
                    counters=job_counters,
                    timeout=self.timeout,
                    tracer=job_tracer,
                    fault_injector=injector,
                    cancel=cancel,
                    join_grace=self.join_grace,
                )
        except SpmdError as exc:
            self._seconds[spec.name] += time.perf_counter() - started
            if cancel.is_set():
                return ("deadline", None)
            kind = classify_failure(exc, injector, records_before)
            retryable = kind != REAL or spec.retry.retry_real
            return ("failed", (exc, retryable))
        except Exception as exc:  # noqa: BLE001 - defensive: setup errors
            self._seconds[spec.name] += time.perf_counter() - started
            return ("failed", (exc, spec.retry.retry_real))
        finally:
            if timer is not None:
                timer.cancel()
        self._seconds[spec.name] += time.perf_counter() - started
        stats = JobStats.from_counters(job_counters)
        return ("ok", (results, stats))

    def _settle(
        self, entry: QueuedJob, outcome: Tuple[str, Any]
    ) -> None:
        """Finalize a completed/failed attempt or requeue a retryable one."""
        spec = entry.spec
        injector = self._injectors[spec.name]
        injected = injector.record_count() if injector else 0
        kind, payload = outcome
        placements = tuple(self._placements[spec.name])
        if kind == "ok":
            results, stats = payload
            self._outcomes[spec.name] = JobResult(
                name=spec.name,
                attempts=entry.attempt,
                placements=placements,
                stats=stats,
                output=results[0] if results else None,
                injected_faults=injected,
                seconds=self._seconds[spec.name],
            )
            self.counters.add("svc.jobs.completed")
            return
        if kind == "deadline":
            self._outcomes[spec.name] = JobFailure(
                name=spec.name,
                status=DEADLINE,
                attempts=entry.attempt,
                placements=placements,
                exc_type="DeadlineExceeded",
                message="deadline exceeded; job cancelled cooperatively",
                injected_faults=injected,
                seconds=self._seconds[spec.name],
            )
            self.counters.add("svc.jobs.deadline")
            return
        exc, retryable = payload
        if retryable and entry.attempt <= spec.retry.max_retries:
            self.counters.add("svc.jobs.retried")
            self.queue.requeue(entry, attempt=entry.attempt + 1)
            return
        failed_ranks: Tuple[int, ...] = ()
        message = f"{type(exc).__name__}: {exc}"
        if isinstance(exc, SpmdError):
            failed_ranks = tuple(r.rank for r in exc.records)
            first = exc.records[0]
            message = f"rank {first.rank} {first.exc_type}: {first.message}"
        self._outcomes[spec.name] = JobFailure(
            name=spec.name,
            status=FAILED,
            attempts=entry.attempt,
            placements=placements,
            exc_type=type(exc).__name__,
            message=message,
            injected_faults=injected,
            failed_ranks=failed_ranks,
            seconds=self._seconds[spec.name],
        )
        self.counters.add("svc.jobs.failed")

    # -- results & reporting -----------------------------------------------

    def outcome(self, name: str) -> Union[JobResult, JobFailure]:
        """The finished outcome of job ``name`` (KeyError while pending)."""
        return self._outcomes[name]

    def outcomes(self) -> List[Union[JobResult, JobFailure]]:
        """Finished outcomes in submission order."""
        return [
            self._outcomes[name]
            for name in self._order
            if name in self._outcomes
        ]

    def latencies(self) -> List[float]:
        """Per-job total execution seconds (finished jobs, submission order)."""
        return [
            self._seconds[name]
            for name in self._order
            if name in self._outcomes
        ]

    def latency_stats(self) -> LatencyStats:
        return LatencyStats.from_samples(self.latencies())

    def report(self) -> ServiceReport:
        """The deterministic ``repro.svc/1`` report for jobs settled so far."""
        jobs = [
            self._outcomes[name].to_dict(wall_free=True)
            for name in self._order
            if name in self._outcomes
        ]
        return ServiceReport.build(
            seed=self.seed,
            machine=self.machine,
            queue_capacity=self.queue.capacity,
            queue_aging=self.queue.aging,
            rejections=self.queue.rejections,
            jobs=jobs,
            rounds=self._rounds,
            placement_trace=self.scheduler.trace,
        )

    def write_metrics(self, path) -> None:
        """Export the service tracer/counters plus latency percentiles."""
        from ..obs import write_metrics

        write_metrics(
            path,
            tracer=self.tracer,
            counters=self.counters,
            extra={"service_latency": self.latency_stats().to_dict()},
        )

    def __repr__(self) -> str:
        return (
            f"MeshJobService({self.machine.describe()}; "
            f"queue={self.queue.depth}/{self.queue.capacity}, "
            f"finished={len(self._outcomes)})"
        )
