"""Job specifications and typed outcomes for the mesh-job service.

A :class:`JobSpec` is the unit of admission: everything the service needs
to place, run, supervise, and retry one SPMD mesh job — the workload (a
registered name from :mod:`repro.workloads.jobs` or a rank callable), the
gang size (``parts``), the scheduling inputs (tenant, priority, deadline),
the :class:`RetryPolicy`, and an optional deterministic
:class:`~repro.resilience.FaultPlan` to execute the job under.

Outcomes are typed: :class:`JobResult` for a completed job (with
:class:`JobStats` communication accounting from the job's *private* counter
registry) and :class:`JobFailure` for everything else.  Both serialize to
strict-JSON dicts; wall-clock seconds are reported separately so the
service report can stay byte-deterministic (see :mod:`repro.svc.report`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..resilience.faults import FaultPlan

__all__ = [
    "JobFailure",
    "JobResult",
    "JobSpec",
    "JobSpecError",
    "JobStats",
    "PlacementRecord",
    "RetryPolicy",
    "load_specs",
]

#: Terminal job states a service run can report.
COMPLETED = "completed"
FAILED = "failed"
DEADLINE = "deadline"
CANCELLED = "cancelled"


class JobSpecError(ValueError):
    """A job specification failed validation."""


@dataclass(frozen=True)
class RetryPolicy:
    """How failures are retried.

    ``max_retries`` bounds re-execution attempts beyond the first.  By
    default only failures *attributable to the job's fault plan* (injected
    or collateral, per :func:`repro.resilience.classify_failure`) are
    retried — a genuine workload bug fails fast, exactly like
    :func:`~repro.resilience.resilient_spmd`.  ``retry_real`` widens the
    policy to any failure.
    """

    max_retries: int = 0
    retry_real: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise JobSpecError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {"max_retries": self.max_retries, "retry_real": self.retry_real}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "RetryPolicy":
        unknown = set(doc) - {"max_retries", "retry_real"}
        if unknown:
            raise JobSpecError(
                f"unknown retry-policy field(s): {sorted(unknown)}"
            )
        return cls(
            max_retries=int(doc.get("max_retries", 0)),
            retry_real=bool(doc.get("retry_real", False)),
        )


@dataclass(frozen=True)
class JobSpec:
    """One mesh job: workload, gang size, and scheduling inputs.

    ``workload`` is a registered name (see
    :func:`repro.workloads.job_workload_names`) or a rank callable
    ``fn(comm, mesh_n, steps) -> dict``.  ``parts`` is the gang size: the
    number of simulated ranks, each pinned to one reserved processing unit
    of the service's machine.  ``deadline`` (wall seconds per attempt)
    triggers cooperative cancellation; ``None`` means no deadline.
    """

    name: str
    workload: Union[str, Callable[..., Any]]
    parts: int = 1
    mesh_n: int = 4
    steps: int = 1
    tenant: str = "default"
    priority: int = 0
    deadline: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    fault_plan: Optional[FaultPlan] = None
    #: Names of jobs that must complete successfully before this one runs.
    deps: Tuple[str, ...] = ()
    #: Names of coupling channels this job is an endpoint of; the service
    #: co-schedules all endpoints of a channel into one round and passes
    #: the job's ports as a third workload argument.
    channels: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise JobSpecError(f"job name must be a non-empty string, got {self.name!r}")
        if not (isinstance(self.workload, str) or callable(self.workload)):
            raise JobSpecError(
                f"workload must be a registry name or callable, "
                f"got {self.workload!r}"
            )
        if self.parts < 1:
            raise JobSpecError(f"parts must be >= 1, got {self.parts}")
        if self.mesh_n < 1:
            raise JobSpecError(f"mesh_n must be >= 1, got {self.mesh_n}")
        if self.steps < 1:
            raise JobSpecError(f"steps must be >= 1, got {self.steps}")
        if not self.tenant or not isinstance(self.tenant, str):
            raise JobSpecError(
                f"tenant must be a non-empty string, got {self.tenant!r}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise JobSpecError(
                f"deadline must be positive seconds, got {self.deadline}"
            )
        object.__setattr__(self, "deps", tuple(self.deps))
        object.__setattr__(self, "channels", tuple(self.channels))
        for dep in self.deps:
            if not dep or not isinstance(dep, str):
                raise JobSpecError(
                    f"deps must be non-empty job names, got {dep!r}"
                )
            if dep == self.name:
                raise JobSpecError(
                    f"job {self.name!r} cannot depend on itself"
                )
        if len(set(self.deps)) != len(self.deps):
            raise JobSpecError(f"job {self.name!r} lists duplicate deps")
        for chan in self.channels:
            if not chan or not isinstance(chan, str):
                raise JobSpecError(
                    f"channels must be non-empty channel names, got {chan!r}"
                )
        if len(set(self.channels)) != len(self.channels):
            raise JobSpecError(f"job {self.name!r} lists duplicate channels")

    @property
    def workload_name(self) -> str:
        """The workload's reportable name (registry key or qualname)."""
        if isinstance(self.workload, str):
            return self.workload
        return getattr(self.workload, "__qualname__", repr(self.workload))

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "workload": self.workload_name,
            "parts": self.parts,
            "mesh_n": self.mesh_n,
            "steps": self.steps,
            "tenant": self.tenant,
            "priority": self.priority,
            "deadline": self.deadline,
            "retry": self.retry.to_dict(),
        }
        if self.fault_plan is not None:
            doc["fault_plan"] = self.fault_plan.to_dict()
        if self.deps:
            doc["deps"] = list(self.deps)
        if self.channels:
            doc["channels"] = list(self.channels)
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "JobSpec":
        known = {
            "name", "workload", "parts", "mesh_n", "steps", "tenant",
            "priority", "deadline", "retry", "fault_plan", "deps",
            "channels",
        }
        unknown = set(doc) - known
        if unknown:
            raise JobSpecError(f"unknown job field(s): {sorted(unknown)}")
        if "name" not in doc or "workload" not in doc:
            raise JobSpecError("a job needs at least 'name' and 'workload'")
        retry = doc.get("retry")
        fault_plan = doc.get("fault_plan")
        deadline = doc.get("deadline")
        return cls(
            name=str(doc["name"]),
            workload=doc["workload"],
            parts=int(doc.get("parts", 1)),
            mesh_n=int(doc.get("mesh_n", 4)),
            steps=int(doc.get("steps", 1)),
            tenant=str(doc.get("tenant", "default")),
            priority=int(doc.get("priority", 0)),
            deadline=float(deadline) if deadline is not None else None,
            retry=(
                RetryPolicy.from_dict(retry)
                if isinstance(retry, dict)
                else (retry if isinstance(retry, RetryPolicy) else RetryPolicy())
            ),
            fault_plan=(
                FaultPlan.from_dict(fault_plan)
                if isinstance(fault_plan, dict)
                else fault_plan
            ),
            deps=tuple(str(d) for d in doc.get("deps", ())),
            channels=tuple(str(c) for c in doc.get("channels", ())),
        )


@dataclass(frozen=True)
class JobStats:
    """Communication accounting of the job's *successful* attempt.

    Sourced from the job's private counter registry so concurrent jobs
    never contaminate each other, and only from the attempt that completed
    — traffic posted by a crashing attempt before the abort propagates is
    timing-dependent, so counting it would break report determinism.
    """

    messages_self: int = 0
    messages_on_node: int = 0
    messages_off_node: int = 0
    off_node_bytes: int = 0

    @property
    def messages(self) -> int:
        return self.messages_self + self.messages_on_node + self.messages_off_node

    def to_dict(self) -> Dict[str, Any]:
        return {
            "messages_self": self.messages_self,
            "messages_on_node": self.messages_on_node,
            "messages_off_node": self.messages_off_node,
            "off_node_bytes": self.off_node_bytes,
            "messages": self.messages,
        }

    @classmethod
    def from_counters(cls, counters) -> "JobStats":
        snap = counters.counters()
        return cls(
            messages_self=int(snap.get("comm.messages.self", 0)),
            messages_on_node=int(snap.get("comm.messages.on_node", 0)),
            messages_off_node=int(snap.get("comm.messages.off_node", 0)),
            off_node_bytes=int(snap.get("comm.bytes.off_node", 0)),
        )


@dataclass(frozen=True)
class PlacementRecord:
    """Where one attempt ran: the round it was scheduled in and its slots."""

    round: int
    slots: Tuple[Tuple[int, int], ...]
    node_local: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "round": self.round,
            "slots": [[node, core] for node, core in self.slots],
            "node_local": self.node_local,
        }


@dataclass(frozen=True)
class JobResult:
    """A completed job: output, per-attempt placements, comm stats."""

    name: str
    attempts: int
    placements: Tuple[PlacementRecord, ...]
    stats: JobStats
    output: Any = None
    injected_faults: int = 0
    seconds: float = 0.0  # wall clock; excluded from deterministic dicts

    status: str = COMPLETED

    @property
    def ok(self) -> bool:
        return True

    def to_dict(self, wall_free: bool = True) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "status": self.status,
            "attempts": self.attempts,
            "placements": [p.to_dict() for p in self.placements],
            "stats": self.stats.to_dict(),
            "output": self.output,
            "injected_faults": self.injected_faults,
        }
        if not wall_free:
            doc["seconds"] = self.seconds
        return doc


@dataclass(frozen=True)
class JobFailure:
    """A job that did not complete: failed, cancelled, or past deadline."""

    name: str
    status: str  # FAILED | DEADLINE | CANCELLED
    attempts: int
    placements: Tuple[PlacementRecord, ...]
    exc_type: str = ""
    message: str = ""
    injected_faults: int = 0
    failed_ranks: Tuple[int, ...] = ()
    seconds: float = 0.0  # wall clock; excluded from deterministic dicts

    @property
    def ok(self) -> bool:
        return False

    def to_dict(self, wall_free: bool = True) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "status": self.status,
            "attempts": self.attempts,
            "placements": [p.to_dict() for p in self.placements],
            "exc_type": self.exc_type,
            "message": self.message,
            "injected_faults": self.injected_faults,
            "failed_ranks": list(self.failed_ranks),
        }
        if not wall_free:
            doc["seconds"] = self.seconds
        return doc


def load_specs(doc: Union[Dict[str, Any], List[Any]]) -> List[JobSpec]:
    """Parse a jobs document: either ``[{...}, ...]`` or ``{"jobs": [...]}``."""
    if isinstance(doc, dict):
        jobs = doc.get("jobs")
        if not isinstance(jobs, list):
            raise JobSpecError("jobs document must contain a 'jobs' list")
    elif isinstance(doc, list):
        jobs = doc
    else:
        raise JobSpecError(
            f"jobs document must be a list or mapping, got {type(doc).__name__}"
        )
    specs = [JobSpec.from_dict(entry) for entry in jobs]
    names = [spec.name for spec in specs]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        raise JobSpecError(f"duplicate job name(s): {dupes}")
    return specs
