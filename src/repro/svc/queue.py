"""Bounded admission queue with fair-share priority aging.

Admission control is the service's backpressure valve: the queue holds at
most ``capacity`` pending jobs and :meth:`AdmissionQueue.submit` raises a
typed :class:`AdmissionError` once it is full — callers must drain (run a
scheduling round) before resubmitting, exactly the contract a saturated
multi-tenant service gives its clients.

Scheduling order is deterministic and starvation-free:

* each pending job's **effective priority** is its static priority plus
  ``aging`` per scheduler tick spent waiting (priority aging), so a
  low-priority job eventually outbids a stream of high-priority arrivals;
* among equal effective priorities, the **fair-share** rule prefers the
  tenant with the fewest jobs served so far;
* remaining ties break by admission order (lowest ticket).

Everything is driven by the service's logical tick counter — never wall
time — which is what keeps two identical runs byte-identical.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .job import JobSpec

__all__ = ["AdmissionError", "AdmissionQueue", "QueuedJob"]


class AdmissionError(RuntimeError):
    """The admission queue is full; drain before resubmitting.

    Carries ``capacity`` and ``depth`` so callers (and tests) can assert
    the backpressure point.
    """

    def __init__(self, capacity: int, depth: int, job: str) -> None:
        super().__init__(
            f"admission queue full ({depth}/{capacity}); "
            f"job {job!r} rejected — drain a scheduling round and resubmit"
        )
        self.capacity = capacity
        self.depth = depth
        self.job = job


@dataclass(frozen=True)
class QueuedJob:
    """One pending entry: spec plus admission bookkeeping."""

    ticket: int
    spec: JobSpec
    submitted_tick: int
    attempt: int = 1  # 1 for fresh submissions, >1 for service retries

    def effective_priority(self, tick: int, aging: int) -> int:
        return self.spec.priority + aging * max(tick - self.submitted_tick, 0)


class AdmissionQueue:
    """Bounded, deterministic pending-job store (see module docstring)."""

    def __init__(self, capacity: int = 64, aging: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        if aging < 0:
            raise ValueError(f"aging must be >= 0, got {aging}")
        self.capacity = capacity
        self.aging = aging
        self._lock = threading.Lock()
        self._pending: List[QueuedJob] = []
        self._next_ticket = 0
        self._tick = 0
        self._served: Dict[str, int] = {}  # tenant -> jobs handed out
        self._rejections = 0

    # -- admission ---------------------------------------------------------

    def submit(self, spec: JobSpec) -> int:
        """Admit ``spec``; returns its ticket or raises :class:`AdmissionError`."""
        with self._lock:
            if len(self._pending) >= self.capacity:
                self._rejections += 1
                raise AdmissionError(self.capacity, len(self._pending), spec.name)
            ticket = self._next_ticket
            self._next_ticket += 1
            self._pending.append(
                QueuedJob(ticket=ticket, spec=spec, submitted_tick=self._tick)
            )
            return ticket

    def requeue(self, entry: QueuedJob, attempt: int) -> None:
        """Re-admit a retried job, bypassing the capacity check.

        A retry is not new demand — the job already holds an admission slot
        conceptually — so backpressure never blocks recovery.  The original
        ticket is kept (preserving the deterministic tie-break) while the
        submission tick resets so aging restarts from the retry round.
        """
        with self._lock:
            self._pending.append(
                QueuedJob(
                    ticket=entry.ticket,
                    spec=entry.spec,
                    submitted_tick=self._tick,
                    attempt=attempt,
                )
            )

    def cancel(self, name: str) -> bool:
        """Drop a pending job by name; True when something was removed."""
        with self._lock:
            kept = [q for q in self._pending if q.spec.name != name]
            removed = len(kept) != len(self._pending)
            self._pending = kept
            return removed

    # -- scheduling --------------------------------------------------------

    def tick(self) -> int:
        """Advance the logical scheduler clock (one per scheduling round)."""
        with self._lock:
            self._tick += 1
            return self._tick

    def pop_schedulable(
        self, fits: Callable[[JobSpec], bool]
    ) -> Optional[QueuedJob]:
        """Remove and return the best pending job that currently fits.

        Order: highest effective priority, then least-served tenant, then
        lowest ticket.  Jobs that do not fit the free core-set right now
        are skipped (they keep aging), so one giant job cannot block the
        queue while smaller jobs could run — but aging guarantees it is
        not starved forever, because once its effective priority leads,
        ties cannot resurrect skipped competitors of lower priority.
        """
        with self._lock:
            candidates: List[Tuple[Tuple[int, int, int], int]] = []
            for index, entry in enumerate(self._pending):
                if not fits(entry.spec):
                    continue
                rank = (
                    -entry.effective_priority(self._tick, self.aging),
                    self._served.get(entry.spec.tenant, 0),
                    entry.ticket,
                )
                candidates.append((rank, index))
            if not candidates:
                return None
            _rank, index = min(candidates)
            entry = self._pending.pop(index)
            self._served[entry.spec.tenant] = (
                self._served.get(entry.spec.tenant, 0) + 1
            )
            return entry

    def pop_named(self, name: str) -> Optional[QueuedJob]:
        """Remove and return a specific pending job by name.

        Used by the coupled scheduler to co-pop a popped job's channel
        peers into the same wave; counts against the tenant's fair share
        exactly like :meth:`pop_schedulable`.
        """
        with self._lock:
            for index, entry in enumerate(self._pending):
                if entry.spec.name == name:
                    self._pending.pop(index)
                    self._served[entry.spec.tenant] = (
                        self._served.get(entry.spec.tenant, 0) + 1
                    )
                    return entry
            return None

    # -- introspection -----------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def rejections(self) -> int:
        with self._lock:
            return self._rejections

    def pending_names(self) -> List[str]:
        with self._lock:
            return [entry.spec.name for entry in self._pending]

    def served_by_tenant(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._served)

    def __len__(self) -> int:
        return self.depth

    def __repr__(self) -> str:
        return (
            f"AdmissionQueue(depth={self.depth}/{self.capacity}, "
            f"aging={self.aging})"
        )
