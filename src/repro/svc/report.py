"""Deterministic service report: the ``repro.svc/1`` JSON document.

The report is the service's reproducibility contract: it contains
*everything decidable from the job list, the machine, and the seed* — job
outcomes, per-attempt placements, the full placement trace, per-round
utilization, queue counters — and **nothing wall-clock**.  Two runs of the
same submissions on the same seed must produce byte-identical
:meth:`ServiceReport.to_json` output; that property is CI-enforced.

Wall-time observables (job latency percentiles, service wall time) are
real and useful — they are exported through the metrics document
(:func:`repro.obs.write_metrics`) and the throughput benchmark instead,
where nondeterminism is expected.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Union

from ..parallel.topology import MachineTopology

__all__ = ["SCHEMA", "RoundRecord", "ServiceReport", "load_report"]

#: Schema tag of the report document.
SCHEMA = "repro.svc/1"


@dataclass
class RoundRecord:
    """One scheduling round: what ran and how full the machine was."""

    index: int
    placed: List[str] = field(default_factory=list)
    cores_in_use: int = 0
    total_cores: int = 0
    queue_depth_after: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "round": self.index,
            "placed": list(self.placed),
            "cores_in_use": self.cores_in_use,
            "total_cores": self.total_cores,
            "queue_depth_after": self.queue_depth_after,
        }


@dataclass
class ServiceReport:
    """Wall-time-free summary of one service run (see module docstring)."""

    seed: int = 0
    machine: Dict[str, int] = field(default_factory=dict)
    queue: Dict[str, int] = field(default_factory=dict)
    jobs: List[Dict[str, Any]] = field(default_factory=list)
    rounds: List[Dict[str, Any]] = field(default_factory=list)
    placement_trace: List[Dict[str, Any]] = field(default_factory=list)
    totals: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        *,
        seed: int,
        machine: MachineTopology,
        queue_capacity: int,
        queue_aging: int,
        rejections: int,
        jobs: List[Dict[str, Any]],
        rounds: List[RoundRecord],
        placement_trace: List[Dict[str, Any]],
    ) -> "ServiceReport":
        totals = {
            "submitted": len(jobs),
            "completed": sum(1 for j in jobs if j["status"] == "completed"),
            "failed": sum(1 for j in jobs if j["status"] == "failed"),
            "deadline": sum(1 for j in jobs if j["status"] == "deadline"),
            "cancelled": sum(1 for j in jobs if j["status"] == "cancelled"),
            "retries": sum(max(j["attempts"] - 1, 0) for j in jobs),
            "rejections": rejections,
            "rounds": len(rounds),
        }
        return cls(
            seed=seed,
            machine={
                "nodes": machine.nodes,
                "cores_per_node": machine.cores_per_node,
                "total_cores": machine.total_cores,
            },
            queue={"capacity": queue_capacity, "aging": queue_aging},
            jobs=jobs,
            rounds=[r.to_dict() for r in rounds],
            placement_trace=list(placement_trace),
            totals=totals,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "seed": self.seed,
            "machine": dict(self.machine),
            "queue": dict(self.queue),
            "totals": dict(self.totals),
            "rounds": list(self.rounds),
            "jobs": list(self.jobs),
            "placement_trace": list(self.placement_trace),
        }

    def to_json(self) -> str:
        """Byte-stable strict JSON (sorted keys, no NaN, trailing newline)."""
        return (
            json.dumps(
                self.to_dict(), indent=1, sort_keys=True, allow_nan=False
            )
            + "\n"
        )

    def write(self, path) -> None:
        from pathlib import Path

        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json())

    def job(self, name: str) -> Dict[str, Any]:
        """The report entry for job ``name``."""
        for entry in self.jobs:
            if entry["name"] == name:
                return entry
        raise KeyError(f"no job {name!r} in report")

    def summary(self) -> str:
        lines = [
            f"service run: {self.totals.get('submitted', 0)} job(s) over "
            f"{self.totals.get('rounds', 0)} round(s) on "
            f"{self.machine.get('nodes', '?')}x"
            f"{self.machine.get('cores_per_node', '?')} cores "
            f"(seed {self.seed})",
            f"  completed {self.totals.get('completed', 0)}"
            f"  failed {self.totals.get('failed', 0)}"
            f"  deadline {self.totals.get('deadline', 0)}"
            f"  cancelled {self.totals.get('cancelled', 0)}"
            f"  retries {self.totals.get('retries', 0)}"
            f"  rejections {self.totals.get('rejections', 0)}",
        ]
        for entry in self.jobs:
            placements = entry.get("placements", [])
            where = ""
            if placements:
                last = placements[-1]
                kind = "node-local" if last["node_local"] else "spanning"
                where = (
                    f" [{kind} round {last['round']}, "
                    f"{len(last['slots'])} core(s)]"
                )
            lines.append(
                f"  {entry['name']}: {entry['status']} "
                f"(attempt(s) {entry['attempts']}){where}"
            )
        return "\n".join(lines)


def load_report(text_or_path: Union[str, "Any"]) -> ServiceReport:
    """Parse a ``repro.svc/1`` JSON document back into a report."""
    from pathlib import Path

    if isinstance(text_or_path, (str, Path)) and str(text_or_path).lstrip().startswith("{"):
        doc = json.loads(str(text_or_path))
    else:
        doc = json.loads(Path(text_or_path).read_text())
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"not a {SCHEMA} document: schema={doc.get('schema')!r}"
        )
    return ServiceReport(
        seed=doc["seed"],
        machine=doc["machine"],
        queue=doc["queue"],
        jobs=doc["jobs"],
        rounds=doc["rounds"],
        placement_trace=doc["placement_trace"],
        totals=doc["totals"],
    )
