"""repro.svc — the multi-tenant mesh-job serving tier.

The ROADMAP's north star is a system serving heavy concurrent traffic, but
``spmd(...)`` runs exactly one workload at a time.  This subsystem is the
missing layer between callers and the simulated machine:

* :class:`JobSpec` / :class:`JobResult` / :class:`JobFailure` — typed job
  descriptions (workload, gang size, tenant, priority, deadline,
  :class:`RetryPolicy`, optional fault plan) and outcomes
  (:mod:`repro.svc.job`);
* :class:`AdmissionQueue` — bounded admission with typed
  :class:`AdmissionError` backpressure, fair-share priority aging, and
  cancellation (:mod:`repro.svc.queue`);
* :class:`GangScheduler` — all-or-nothing, locality-aware core-set
  placement over :class:`~repro.parallel.MachineTopology` (node-local
  preferred, spanning fallback, seeded deterministic tie-breaks) with a
  byte-stable placement trace (:mod:`repro.svc.placement`);
* :class:`MeshJobService` — the service loop: deterministic scheduling
  rounds of concurrently executing, world-isolated SPMD jobs, cooperative
  deadline cancellation, fault-classified retries, and service gauges
  (:mod:`repro.svc.runtime`);
* :class:`ServiceReport` — the wall-time-free ``repro.svc/1`` JSON
  document; identical submissions + seed produce byte-identical reports
  (:mod:`repro.svc.report`).

Operationally: ``python -m repro serve --jobs jobs.json`` runs a job file,
``python -m repro submit --workload stencil --parts 4`` runs a one-shot
job; see the README "Serving mesh jobs" quickstart.
"""

from .job import (
    JobFailure,
    JobResult,
    JobSpec,
    JobSpecError,
    JobStats,
    PlacementRecord,
    RetryPolicy,
    load_specs,
)
from .placement import GangScheduler, Placement, PlacementError
from .queue import AdmissionError, AdmissionQueue, QueuedJob
from .report import SCHEMA, RoundRecord, ServiceReport, load_report
from .runtime import MeshJobService, default_machine

__all__ = [
    "SCHEMA",
    "AdmissionError",
    "AdmissionQueue",
    "GangScheduler",
    "JobFailure",
    "JobResult",
    "JobSpec",
    "JobSpecError",
    "JobStats",
    "MeshJobService",
    "Placement",
    "PlacementError",
    "PlacementRecord",
    "QueuedJob",
    "RetryPolicy",
    "RoundRecord",
    "ServiceReport",
    "default_machine",
    "load_report",
    "load_specs",
]
