"""Locality-aware gang placement over the simulated machine.

The gang scheduler carves a *core-set* out of the shared
:class:`~repro.parallel.MachineTopology` for each job: every rank of the
gang gets one processing unit, and all of them are granted (or none) — an
SPMD job cannot run partially, which is the "gang" in gang scheduling.

Placement policy, mirroring the paper's architecture-aware mapping (ranks
fill a node before spilling) and Mohanamuraly et al.'s hardware-locality
partitioning:

1. **Node-local first**: if any node has enough free cores for the whole
   gang, choose the *best-fit* such node (fewest free cores — keeps big
   holes open for big gangs).
2. **Spanning fallback**: otherwise take cores from the nodes with the
   most free cores first (*worst-fit* across nodes minimizes the number of
   nodes spanned), until the gang is covered.
3. Ties at either step break through one seeded ``random.Random`` — so the
   policy has no accidental node-0 bias, yet identical submission
   sequences under the same seed yield **byte-identical placement
   traces**.

Reservations always take the lowest-numbered free cores of a chosen node
(see :class:`~repro.parallel.CoreLedger`), which keeps slot lists
deterministic too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..parallel.topology import (
    CoreSlot,
    MachineTopology,
    PlacedTopology,
    TopologyError,
)
from .job import JobSpec

__all__ = ["GangScheduler", "Placement", "PlacementError"]


class PlacementError(TopologyError):
    """A job can never be placed on this machine (gang > total cores)."""


@dataclass(frozen=True)
class Placement:
    """A granted core-set: one slot per gang rank, in rank order."""

    job: str
    slots: Tuple[CoreSlot, ...]

    @property
    def node_local(self) -> bool:
        """True when the whole gang shares one node's memory."""
        return len({node for node, _core in self.slots}) == 1

    @property
    def nodes(self) -> List[int]:
        return sorted({node for node, _core in self.slots})

    def topology(self, machine: MachineTopology) -> PlacedTopology:
        """The job-local machine view the SPMD world runs under."""
        return PlacedTopology(machine, self.slots)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job": self.job,
            "slots": [[node, core] for node, core in self.slots],
            "node_local": self.node_local,
        }


class GangScheduler:
    """All-or-nothing core-set allocation with a deterministic trace."""

    def __init__(self, machine: MachineTopology, seed: int = 0) -> None:
        self.machine = machine
        self.seed = seed
        self.ledger = machine.ledger()
        self._rng = random.Random(seed)
        #: Deterministic event log: every grant and release, in order.
        self.trace: List[Dict[str, Any]] = []

    # -- admission-time validation ----------------------------------------

    def check(self, spec: JobSpec) -> None:
        """Reject jobs that can never fit, at admission time."""
        if spec.parts > self.machine.total_cores:
            raise PlacementError(
                f"job {spec.name!r} wants {spec.parts} core(s) but the "
                f"machine only has {self.machine.total_cores}"
            )

    def fits(self, spec: JobSpec) -> bool:
        """Whether the gang fits the *currently free* core-set."""
        return spec.parts <= self.ledger.free_cores()

    # -- placement ---------------------------------------------------------

    def _pick(self, candidates: List[int]) -> int:
        """Seeded deterministic tie-break among equally good nodes."""
        if len(candidates) == 1:
            return candidates[0]
        return self._rng.choice(sorted(candidates))

    def place(self, spec: JobSpec) -> Optional[Placement]:
        """Grant a core-set for ``spec``'s gang, or None if it cannot fit now."""
        self.check(spec)
        want = spec.parts
        if want > self.ledger.free_cores():
            return None

        slots: List[CoreSlot] = []
        free = {
            node: self.ledger.free_on(node)
            for node in range(self.machine.nodes)
        }

        # 1. Node-local: best-fit node that holds the whole gang.
        hosts = [n for n, k in free.items() if k >= want]
        if hosts:
            tightest = min(free[n] for n in hosts)
            node = self._pick([n for n in hosts if free[n] == tightest])
            slots = self.ledger.reserve_on(node, want)
        else:
            # 2. Spanning: widest nodes first, fewest nodes spanned.
            remaining = want
            while remaining > 0:
                open_nodes = [n for n, k in free.items() if k > 0]
                widest = max(free[n] for n in open_nodes)
                node = self._pick(
                    [n for n in open_nodes if free[n] == widest]
                )
                take = min(free[node], remaining)
                slots.extend(self.ledger.reserve_on(node, take))
                free[node] -= take
                remaining -= take

        placement = Placement(job=spec.name, slots=tuple(slots))
        self.trace.append({"event": "place", **placement.to_dict()})
        return placement

    def release(self, placement: Placement) -> None:
        """Return a gang's core-set to the free pool."""
        self.ledger.release(placement.slots)
        self.trace.append(
            {
                "event": "release",
                "job": placement.job,
                "slots": [[node, core] for node, core in placement.slots],
            }
        )

    # -- introspection -----------------------------------------------------

    def utilization(self) -> Tuple[int, int]:
        """``(cores in use, total cores)`` right now."""
        return self.ledger.used_cores(), self.ledger.total_cores

    def __repr__(self) -> str:
        used, total = self.utilization()
        return f"GangScheduler({used}/{total} cores in use, seed={self.seed})"
