"""Checkpoint/restart recovery driver for the simulated runtime.

:func:`resilient_spmd` runs a step-structured workload over a
:class:`~repro.partition.dmesh.DistributedMesh` in *checkpoint epochs*:
execute a step, checkpoint every ``checkpoint_every`` steps, and when a
step dies classify the failure —

* **injected** — the exception is an
  :class:`~repro.resilience.faults.InjectedFault` (or an
  :class:`~repro.parallel.SpmdError` whose structured records are all
  injected): the fault plan killed us on purpose;
* **collateral** — an ordinary exception, but the fault injector recorded
  at least one injection (drop/corrupt/delay) during the failed epoch, so
  the crash is attributed to the plan;
* **real** — no injection can explain it: re-raised immediately, exactly
  as an unharnessed run would fail.

Injected and collateral failures trigger recovery: restore from the newest
valid checkpoint (the manager transparently falls back past corrupt ones),
rewind the step counter to the checkpointed epoch, re-attach the tracer and
the *same* fault injector (consumed one-shot faults do not re-fire, which
is what makes re-execution converge), and retry with bounded attempts and
optional exponential backoff.  Every fault and recovery lands in the
:class:`RecoveryReport` — a deterministic, JSON-safe document — and on the
attached :class:`~repro.obs.Tracer` as spans and timeline samples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..obs.tracer import Tracer, current as current_tracer, trace_span
from ..parallel.executor import SpmdError
from ..partition.dmesh import DistributedMesh
from .checkpoint import CheckpointManager, NoCheckpointError
from .faults import FaultInjector, FaultPlan

__all__ = [
    "RecoveryEvent",
    "RecoveryExhaustedError",
    "RecoveryReport",
    "classify_failure",
    "resilient_spmd",
]

#: Failure classes returned by :func:`classify_failure`.
INJECTED, COLLATERAL, REAL = "injected", "collateral", "real"


class RecoveryExhaustedError(RuntimeError):
    """Recovery gave up: the retry budget ran out."""

    def __init__(self, message: str, report: "RecoveryReport") -> None:
        super().__init__(message)
        self.report = report


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery: which step failed, how it was classified, the rewind."""

    step: int
    attempt: int
    kind: str  # "injected" | "collateral"
    exc_type: str
    message: str
    resumed_at: int  # step index execution resumed from (0 = cold restart)
    checkpoint_index: int  # -1 when no checkpoint existed yet

    def to_dict(self) -> Dict[str, Any]:
        return {
            "step": self.step,
            "attempt": self.attempt,
            "kind": self.kind,
            "exc_type": self.exc_type,
            "message": self.message,
            "resumed_at": self.resumed_at,
            "checkpoint_index": self.checkpoint_index,
        }


@dataclass
class RecoveryReport:
    """Deterministic summary of one resilient run (no wall-clock times)."""

    steps: int = 0
    step_attempts: int = 0
    checkpoints_written: int = 0
    recoveries: List[RecoveryEvent] = field(default_factory=list)
    faults: List[Dict[str, Any]] = field(default_factory=list)
    final_entity_counts: List[List[int]] = field(default_factory=list)
    final_owned_totals: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """Strict-JSON document; byte-stable for identical runs."""
        return {
            "schema": "repro.resilience.report/1",
            "steps": self.steps,
            "step_attempts": self.step_attempts,
            "checkpoints_written": self.checkpoints_written,
            "recoveries": [event.to_dict() for event in self.recoveries],
            "faults": list(self.faults),
            "final_entity_counts": self.final_entity_counts,
            "final_owned_totals": self.final_owned_totals,
        }

    def summary(self) -> str:
        lines = [
            f"steps completed      {self.steps}"
            f"  (attempts {self.step_attempts})",
            f"checkpoints written  {self.checkpoints_written}",
            f"faults injected      {len(self.faults)}",
            f"recoveries           {len(self.recoveries)}",
        ]
        for event in self.recoveries:
            lines.append(
                f"  step {event.step} attempt {event.attempt}: "
                f"{event.kind} {event.exc_type} -> resumed at step "
                f"{event.resumed_at}"
            )
        if self.final_owned_totals:
            v, e, f_, r = self.final_owned_totals
            lines.append(
                f"final owned entities Vtx {v}  Edge {e}  Face {f_}  Rgn {r}"
            )
        return "\n".join(lines)


def classify_failure(
    exc: BaseException,
    injector: Optional[FaultInjector] = None,
    records_before: int = 0,
) -> str:
    """Attribute a failure: ``injected``, ``collateral``, or ``real``.

    ``records_before`` is the injector's record count at epoch start; any
    injection since then makes an otherwise-ordinary exception collateral
    damage of the plan (e.g. a corrupted payload blowing up downstream).
    """
    if getattr(exc, "injected_fault", False):
        return INJECTED
    if isinstance(exc, SpmdError) and exc.records and exc.injected_only:
        return INJECTED
    if injector is not None and injector.record_count() > records_before:
        return COLLATERAL
    return REAL


def _attach(
    dmesh: DistributedMesh,
    injector: Optional[FaultInjector],
    tracer: Optional[Tracer],
) -> None:
    dmesh.fault_injector = injector
    if tracer is not None:
        dmesh.tracer = tracer


def resilient_spmd(
    build: Callable[[], DistributedMesh],
    step: Callable[[DistributedMesh, int], Any],
    nsteps: int,
    *,
    checkpoints: CheckpointManager,
    checkpoint_every: int = 1,
    faults: Optional[Union[FaultPlan, FaultInjector]] = None,
    max_retries: int = 3,
    backoff: float = 0.0,
    tracer: Optional[Tracer] = None,
) -> Tuple[DistributedMesh, RecoveryReport]:
    """Run ``step(dmesh, i)`` for ``i in range(nsteps)`` with recovery.

    Parameters
    ----------
    build:
        Zero-argument factory for the initial distributed mesh.  Also the
        cold-restart path when a failure precedes the first checkpoint.
    step:
        One workload epoch.  Must be deterministic given the mesh state —
        that is what makes recovery reproduce the fault-free result.
    nsteps:
        Number of epochs.
    checkpoints:
        The :class:`CheckpointManager` owning the checkpoint directory.
    checkpoint_every:
        Checkpoint cadence in epochs (the final epoch always checkpoints).
    faults:
        A :class:`FaultPlan` (an injector is built from it) or a live
        :class:`FaultInjector`; attached to the mesh's part networks.
        ``None`` runs fault-free under the identical code path.
    max_retries:
        Total recovery budget across the run.
    backoff:
        Base seconds for exponential backoff between retries
        (``backoff * 2**(retry-1)``); 0 disables sleeping (deterministic
        tests).
    tracer:
        Observability hook; ``None`` resolves to the installed default.
        Epochs run inside ``resilience.epoch`` spans, recoveries inside
        ``resilience.recover`` spans, and each recovery is sampled onto
        the ``resilience.recoveries`` timeline.

    Returns ``(final_dmesh, report)``.  Real failures propagate unchanged;
    an exhausted retry budget raises :class:`RecoveryExhaustedError` with
    the partial report attached.
    """
    if nsteps < 0:
        raise ValueError(f"nsteps must be >= 0, got {nsteps}")
    if checkpoint_every < 1:
        raise ValueError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    if isinstance(faults, FaultPlan):
        injector: Optional[FaultInjector] = FaultInjector(faults)
    else:
        injector = faults
    tracer = tracer if tracer is not None else current_tracer()

    dmesh = build()
    model = dmesh.model
    counters = dmesh.counters
    # Observability counters go to the tracer's registry when it has one
    # (that is the registry the metrics document reads); the mesh's own
    # registry is used for the restore path either way.
    obs_counters = (
        tracer.counters
        if tracer is not None and tracer.counters is not None
        else counters
    )
    _attach(dmesh, injector, tracer)

    report = RecoveryReport()
    retries = 0
    i = 0
    while i < nsteps:
        records_before = injector.record_count() if injector else 0
        report.step_attempts += 1
        try:
            with trace_span(tracer, "resilience.epoch", step=i):
                step(dmesh, i)
                if (i + 1) % checkpoint_every == 0 or i + 1 == nsteps:
                    checkpoints.save(dmesh, step=i)
                    report.checkpoints_written += 1
                    obs_counters.add("resilience.checkpoints")
            i += 1
        except Exception as exc:  # noqa: BLE001 - classified below
            kind = classify_failure(exc, injector, records_before)
            if kind == REAL:
                raise
            retries += 1
            obs_counters.add("resilience.failures")
            if retries > max_retries:
                _finalize(report, dmesh, injector, nsteps_done=i)
                raise RecoveryExhaustedError(
                    f"recovery exhausted after {max_retries} retries; "
                    f"last failure at step {i}: "
                    f"{type(exc).__name__}: {exc}",
                    report,
                ) from exc
            if backoff > 0:
                time.sleep(backoff * (2 ** (retries - 1)))
            with trace_span(
                tracer, "resilience.recover", step=i, attempt=retries
            ):
                try:
                    dmesh, _fields, info = checkpoints.restore(
                        model=model, counters=counters
                    )
                    resumed_at = info.step + 1
                    checkpoint_index = info.index
                except NoCheckpointError:
                    dmesh = build()
                    resumed_at = 0
                    checkpoint_index = -1
                _attach(dmesh, injector, tracer)
            report.recoveries.append(
                RecoveryEvent(
                    step=i,
                    attempt=retries,
                    kind=kind,
                    exc_type=type(exc).__name__,
                    message=str(exc),
                    resumed_at=resumed_at,
                    checkpoint_index=checkpoint_index,
                )
            )
            obs_counters.add("resilience.recoveries")
            if tracer is not None and tracer.enabled:
                tracer.record_value("resilience.recoveries", retries)
            i = resumed_at

    _finalize(report, dmesh, injector, nsteps_done=nsteps)
    return dmesh, report


def _finalize(
    report: RecoveryReport,
    dmesh: DistributedMesh,
    injector: Optional[FaultInjector],
    nsteps_done: int,
) -> None:
    report.steps = nsteps_done
    if injector is not None:
        report.faults = [record.to_dict() for record in injector.records]
    report.final_entity_counts = [
        [int(c) for c in row] for row in dmesh.entity_counts()
    ]
    report.final_owned_totals = [dmesh.total_owned(d) for d in range(4)]
