"""Checkpoint lifecycle management: rotation, validation, fallback restore.

:class:`CheckpointManager` wraps the ``repro.dmesh/2`` on-disk format of
:mod:`repro.partition.io` with the operational policy a long run needs:

* **atomic epochs** — each checkpoint is staged in a ``*.tmp`` directory
  and renamed into place only after every part file and the hashed
  manifest are durably written, so a crash mid-checkpoint never leaves a
  half-written "latest";
* **rotation** — keep the last ``keep`` checkpoints, delete older ones;
* **validated restore with fallback** — :meth:`restore` walks checkpoints
  newest-first, skipping any that fail SHA-256 / schema validation
  (:class:`CorruptCheckpointError`), and raises :class:`NoCheckpointError`
  only when none survive;
* **complete state** — mesh topology, tags and distributed-field values
  round-trip through the checkpoint; the ghost configuration is recorded
  in the manifest and re-applied after restore (ghosts themselves are
  reconstructible runtime state);
* **restart at a different scale** — ``restore(nparts=K)`` regroups the
  snapshot onto ``K`` parts through the migration rendezvous, the DMPlex
  result that makes checkpoint/restart independent of job width.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..gmodel.model import Model
from ..parallel.perf import PerfCounters
from ..parallel.topology import MachineTopology
from ..partition.dmesh import DistributedMesh
from ..partition.fieldsync import DistributedField
from ..partition.ghosting import Overlap, ghost_layer
from ..partition.io import (
    CorruptCheckpointError,
    load_checkpoint,
    read_manifest,
    save_dmesh,
)

__all__ = [
    "CheckpointInfo",
    "CheckpointManager",
    "CorruptCheckpointError",
    "NoCheckpointError",
]


class NoCheckpointError(RuntimeError):
    """No valid checkpoint is available to restore from."""


def _normalize_ghost_config(config: Any) -> Dict[str, Any]:
    """Canonicalize any accepted ghost-config spelling.

    Returns ``{"overlap": <overlap dict>, "tags": [names...]}`` — the only
    form written to manifests.  Legacy manifests/configs with
    ``bridge_dim``/``layers`` keys map onto the same shape, so restoring an
    old checkpoint never trips the :func:`ghost_layer` deprecation shim.
    """
    if isinstance(config, Overlap):
        return {"overlap": config.to_dict(), "tags": []}
    if not isinstance(config, dict):
        raise TypeError(
            f"ghost_config must be an Overlap or a dict, "
            f"got {type(config).__name__}"
        )
    config = dict(config)
    tags = list(config.pop("tags", ()))
    if "overlap" in config:
        overlap = Overlap.coerce(config.pop("overlap"))
        if config:
            raise ValueError(
                f"unexpected ghost_config keys: {sorted(config)}"
            )
    else:
        unknown = set(config) - {"bridge_dim", "layers"}
        if unknown:
            raise ValueError(
                f"unexpected ghost_config keys: {sorted(unknown)}"
            )
        overlap = Overlap(
            depth=int(config.get("layers", 1)),
            bridge_dim=int(config.get("bridge_dim", 0)),
        )
    return {"overlap": overlap.to_dict(), "tags": tags}


@dataclass(frozen=True)
class CheckpointInfo:
    """One on-disk checkpoint: monotone index, workload step, location."""

    index: int
    step: int
    path: Path


class CheckpointManager:
    """Owns a directory of rotated, hash-validated checkpoints.

    Parameters
    ----------
    root:
        Directory holding the checkpoints (created if needed).  Each
        checkpoint is a subdirectory ``ckpt-<index>`` in ``repro.dmesh/2``
        format.
    keep:
        Retain at most this many checkpoints; older ones are deleted after
        each successful :meth:`save`.  ``0`` disables rotation.
    ghost_config:
        Optional ghost configuration recorded in every manifest and
        re-applied by :meth:`restore`, so ghosted workloads resume with
        their halo already rebuilt.  Accepts an
        :class:`~repro.partition.ghosting.Overlap`, a dict
        ``{"overlap": Overlap | overlap-dict, "tags": [...]}``, or the
        legacy keyword dict (``bridge_dim``, ``layers``, ``tags``); all
        forms are normalized to the overlap form in the manifest.
    """

    PREFIX = "ckpt-"

    def __init__(
        self,
        root: Union[str, Path],
        keep: int = 3,
        ghost_config: Optional[Any] = None,
    ) -> None:
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.ghost_config = (
            _normalize_ghost_config(ghost_config) if ghost_config else None
        )

    # -- enumeration --------------------------------------------------------

    def checkpoints(self) -> List[CheckpointInfo]:
        """All checkpoints on disk, oldest first.

        Steps are read from manifests; a checkpoint whose manifest is
        unreadable is listed with ``step=-1`` (restore will skip it).
        """
        infos: List[CheckpointInfo] = []
        for entry in sorted(self.root.iterdir()):
            if not entry.is_dir() or not entry.name.startswith(self.PREFIX):
                continue
            if entry.name.endswith(".tmp"):
                continue  # a crash mid-save left this; never valid
            try:
                index = int(entry.name[len(self.PREFIX):])
            except ValueError:
                continue
            try:
                manifest = read_manifest(entry)
                step = int(manifest.get("extra", {}).get("step", -1))
            except CorruptCheckpointError:
                step = -1
            infos.append(CheckpointInfo(index=index, step=step, path=entry))
        infos.sort(key=lambda info: info.index)
        return infos

    def latest(self) -> Optional[CheckpointInfo]:
        infos = self.checkpoints()
        return infos[-1] if infos else None

    # -- writing ------------------------------------------------------------

    def save(
        self,
        dmesh: DistributedMesh,
        step: int,
        fields: Sequence[DistributedField] = (),
    ) -> CheckpointInfo:
        """Write one checkpoint of ``dmesh`` (plus ``fields``) atomically.

        The checkpoint becomes visible only via the final directory rename;
        rotation then prunes old checkpoints down to ``keep``.
        """
        latest = self.latest()
        index = latest.index + 1 if latest is not None else 0
        name = f"{self.PREFIX}{index:06d}"
        final = self.root / name
        staging = self.root / (name + ".tmp")
        if staging.exists():
            shutil.rmtree(staging)
        extra: Dict[str, Any] = {"step": int(step), "index": index}
        if self.ghost_config is not None:
            extra["ghost_config"] = self.ghost_config
        save_dmesh(dmesh, staging, fields=fields, extra=extra)
        os.replace(staging, final)
        self._rotate()
        return CheckpointInfo(index=index, step=int(step), path=final)

    def _rotate(self) -> None:
        if self.keep <= 0:
            return
        infos = self.checkpoints()
        for info in infos[: max(0, len(infos) - self.keep)]:
            shutil.rmtree(info.path, ignore_errors=True)

    # -- reading ------------------------------------------------------------

    def validate(self, info: CheckpointInfo) -> bool:
        """True when ``info`` passes full integrity validation."""
        try:
            load_checkpoint(info.path)
        except CorruptCheckpointError:
            return False
        return True

    def restore(
        self,
        model: Optional[Model] = None,
        topology: Optional[MachineTopology] = None,
        counters: Optional[PerfCounters] = None,
        nparts: Optional[int] = None,
    ) -> Tuple[DistributedMesh, Dict[str, DistributedField], CheckpointInfo]:
        """Restore from the newest valid checkpoint.

        Walks checkpoints newest-first and skips (does not delete) any that
        fail validation, so one corrupt epoch costs one epoch of progress,
        not the run.  Re-applies the recorded ghost configuration.  Returns
        ``(dmesh, fields_by_name, info)``; raises :class:`NoCheckpointError`
        when no checkpoint survives.
        """
        skipped: List[str] = []
        for info in reversed(self.checkpoints()):
            try:
                dmesh, fields, manifest = load_checkpoint(
                    info.path,
                    model=model,
                    topology=topology,
                    counters=counters,
                    nparts=nparts,
                )
            except CorruptCheckpointError as exc:
                skipped.append(f"{info.path.name}: {exc}")
                continue
            ghost_config = manifest.get("extra", {}).get("ghost_config")
            if ghost_config:
                normalized = _normalize_ghost_config(ghost_config)
                ghost_layer(
                    dmesh,
                    overlap=Overlap.from_dict(normalized["overlap"]),
                    tags=tuple(normalized["tags"]),
                )
            return dmesh, fields, info
        detail = ("; skipped corrupt: " + ", ".join(skipped)) if skipped else ""
        raise NoCheckpointError(
            f"no valid checkpoint under {self.root}{detail}"
        )
