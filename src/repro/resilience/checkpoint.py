"""Checkpoint lifecycle management: rotation, validation, fallback restore.

:class:`CheckpointManager` wraps the ``repro.dmesh/2`` on-disk format of
:mod:`repro.partition.io` with the operational policy a long run needs:

* **atomic epochs** — each checkpoint is staged in a ``*.tmp`` directory
  and renamed into place only after every part file and the hashed
  manifest are durably written, so a crash mid-checkpoint never leaves a
  half-written "latest";
* **rotation** — keep the last ``keep`` checkpoints, delete older ones;
* **validated restore with fallback** — :meth:`restore` walks checkpoints
  newest-first, skipping any that fail SHA-256 / schema validation
  (:class:`CorruptCheckpointError`), and raises :class:`NoCheckpointError`
  only when none survive;
* **complete state** — mesh topology, tags and distributed-field values
  round-trip through the checkpoint; the ghost configuration is recorded
  in the manifest and re-applied after restore (ghosts themselves are
  reconstructible runtime state);
* **restart at a different scale** — ``restore(nparts=K)`` regroups the
  snapshot onto ``K`` parts through the migration rendezvous, the DMPlex
  result that makes checkpoint/restart independent of job width;
* **pluggable epoch format** — ``backend="store"`` writes chunked
  ``repro.store/1`` epochs (:class:`~repro.store.SnapshotStore`):
  differential after the first full snapshot, chunk-parallel to restore,
  compacted before rotation ever deletes a delta's ancestors.  Restore
  dispatches *per checkpoint* on the on-disk format, so directories
  holding a mix of legacy ``repro.dmesh/2`` and store epochs restore
  correctly with either backend setting — switching backends mid-run is
  safe in both directions.
"""

from __future__ import annotations

import json
import logging
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..gmodel.model import Model
from ..parallel.perf import PerfCounters
from ..parallel.topology import MachineTopology
from ..partition.dmesh import DistributedMesh
from ..partition.fieldsync import DistributedField
from ..partition.ghosting import Overlap, ghost_layer
from ..partition.io import (
    FORMAT as DMESH_FORMAT,
    CorruptCheckpointError,
    load_checkpoint,
    read_manifest,
    save_dmesh,
)
from ..store.format import FORMAT as STORE_FORMAT, MANIFEST as _MANIFEST
from ..store.snapshot import SnapshotStore

__all__ = [
    "CheckpointInfo",
    "CheckpointManager",
    "CorruptCheckpointError",
    "NoCheckpointError",
]

logger = logging.getLogger("repro.resilience.checkpoint")

#: Accepted values for :class:`CheckpointManager`'s ``backend``.
BACKENDS = ("dmesh", "store")


class NoCheckpointError(RuntimeError):
    """No valid checkpoint is available to restore from."""


def _normalize_ghost_config(config: Any) -> Dict[str, Any]:
    """Canonicalize any accepted ghost-config spelling.

    Returns ``{"overlap": <overlap dict>, "tags": [names...]}`` — the only
    form written to manifests.  Legacy manifests/configs with
    ``bridge_dim``/``layers`` keys map onto the same shape, so restoring an
    old checkpoint never trips the :func:`ghost_layer` deprecation shim.
    """
    if isinstance(config, Overlap):
        return {"overlap": config.to_dict(), "tags": []}
    if not isinstance(config, dict):
        raise TypeError(
            f"ghost_config must be an Overlap or a dict, "
            f"got {type(config).__name__}"
        )
    config = dict(config)
    tags = list(config.pop("tags", ()))
    if "overlap" in config:
        overlap = Overlap.coerce(config.pop("overlap"))
        if config:
            raise ValueError(
                f"unexpected ghost_config keys: {sorted(config)}"
            )
    else:
        unknown = set(config) - {"bridge_dim", "layers"}
        if unknown:
            raise ValueError(
                f"unexpected ghost_config keys: {sorted(unknown)}"
            )
        overlap = Overlap(
            depth=int(config.get("layers", 1)),
            bridge_dim=int(config.get("bridge_dim", 0)),
        )
    return {"overlap": overlap.to_dict(), "tags": tags}


@dataclass(frozen=True)
class CheckpointInfo:
    """One on-disk checkpoint: monotone index, workload step, location."""

    index: int
    step: int
    path: Path


class CheckpointManager:
    """Owns a directory of rotated, hash-validated checkpoints.

    Parameters
    ----------
    root:
        Directory holding the checkpoints (created if needed).  Each
        checkpoint is a subdirectory ``ckpt-<index>`` in the backend's
        format.
    keep:
        Retain the last ``keep`` checkpoints; older ones are deleted after
        each successful :meth:`save`.  ``keep=0`` is the explicit
        *unlimited* sentinel: rotation is disabled and every checkpoint is
        retained (use ``keep=1`` for "only the latest").
    backend:
        On-disk epoch format for new checkpoints: ``"dmesh"`` (default)
        writes whole-state ``repro.dmesh/2`` directories; ``"store"``
        writes chunked ``repro.store/1`` epochs, differential against the
        previous store epoch when one exists.  Reading always dispatches
        on each checkpoint's own manifest, so either setting restores
        directories containing a mix of both formats.
    ghost_config:
        Optional ghost configuration recorded in every manifest and
        re-applied by :meth:`restore`, so ghosted workloads resume with
        their halo already rebuilt.  Accepts an
        :class:`~repro.partition.ghosting.Overlap`, a dict
        ``{"overlap": Overlap | overlap-dict, "tags": [...]}``, or the
        legacy keyword dict (``bridge_dim``, ``layers``, ``tags``); all
        forms are normalized to the overlap form in the manifest.
    """

    PREFIX = "ckpt-"

    def __init__(
        self,
        root: Union[str, Path],
        keep: int = 3,
        ghost_config: Optional[Any] = None,
        backend: str = "dmesh",
    ) -> None:
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r} (expected one of {BACKENDS})"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.backend = backend
        self.ghost_config = (
            _normalize_ghost_config(ghost_config) if ghost_config else None
        )

    def _store(self) -> SnapshotStore:
        """The ``repro.store/1`` view of this directory (shared prefix)."""
        return SnapshotStore(self.root, prefix=self.PREFIX)

    @staticmethod
    def _entry_format(path: Path) -> Optional[str]:
        """The format id a checkpoint directory claims, or ``None``."""
        try:
            manifest = json.loads((path / _MANIFEST).read_text())
        except (OSError, ValueError):
            return None
        if isinstance(manifest, dict):
            fmt = manifest.get("format")
            return fmt if isinstance(fmt, str) else None
        return None

    # -- enumeration --------------------------------------------------------

    def checkpoints(self) -> List[CheckpointInfo]:
        """All checkpoints on disk, oldest first (both formats).

        Steps are read from manifests; a checkpoint whose manifest is
        unreadable is listed with ``step=-1`` (restore will skip it).
        """
        infos: List[CheckpointInfo] = []
        for entry in sorted(self.root.iterdir()):
            if not entry.is_dir() or not entry.name.startswith(self.PREFIX):
                continue
            if entry.name.endswith(".tmp"):
                continue  # a crash mid-save left this; never valid
            try:
                index = int(entry.name[len(self.PREFIX):])
            except ValueError:
                continue
            step = -1
            try:
                manifest = json.loads((entry / _MANIFEST).read_text())
                if isinstance(manifest, dict) and manifest.get(
                    "format"
                ) in (DMESH_FORMAT, STORE_FORMAT):
                    step = int(manifest.get("extra", {}).get("step", -1))
            except (OSError, ValueError, TypeError):
                pass
            infos.append(CheckpointInfo(index=index, step=step, path=entry))
        infos.sort(key=lambda info: info.index)
        return infos

    def latest(self) -> Optional[CheckpointInfo]:
        infos = self.checkpoints()
        return infos[-1] if infos else None

    # -- writing ------------------------------------------------------------

    def save(
        self,
        dmesh: DistributedMesh,
        step: int,
        fields: Sequence[DistributedField] = (),
    ) -> CheckpointInfo:
        """Write one checkpoint of ``dmesh`` (plus ``fields``) atomically.

        The checkpoint becomes visible only via the final directory rename;
        rotation then prunes old checkpoints down to ``keep``.
        """
        latest = self.latest()
        index = latest.index + 1 if latest is not None else 0
        name = f"{self.PREFIX}{index:06d}"
        final = self.root / name
        extra: Dict[str, Any] = {"step": int(step), "index": index}
        if self.ghost_config is not None:
            extra["ghost_config"] = self.ghost_config
        if self.backend == "store":
            self._store().save(dmesh, fields, extra=extra, index=index)
        else:
            staging = self.root / (name + ".tmp")
            if staging.exists():
                shutil.rmtree(staging)
            save_dmesh(dmesh, staging, fields=fields, extra=extra)
            os.replace(staging, final)
        self._rotate()
        return CheckpointInfo(index=index, step=int(step), path=final)

    def _rotate(self) -> None:
        if self.keep <= 0:
            return  # keep=0: the documented unlimited sentinel
        infos = self.checkpoints()
        cut = infos[: max(0, len(infos) - self.keep)]
        if not cut:
            return
        # A surviving store delta must not lose its ancestors: compact the
        # oldest survivor into a full epoch before deleting anything.
        survivors = infos[len(cut):]
        if survivors and self._entry_format(survivors[0].path) == STORE_FORMAT:
            try:
                self._store().compact(survivors[0].index)
            except CorruptCheckpointError:
                pass  # restore will skip it and fall back; nothing to save
        for info in cut:
            shutil.rmtree(info.path, ignore_errors=True)

    # -- reading ------------------------------------------------------------

    def validate(self, info: CheckpointInfo) -> bool:
        """True when ``info`` passes full integrity validation."""
        try:
            if self._entry_format(info.path) == STORE_FORMAT:
                self._store().materialize(info.index)
            else:
                load_checkpoint(info.path)
        except CorruptCheckpointError:
            return False
        return True

    def restore(
        self,
        model: Optional[Model] = None,
        topology: Optional[MachineTopology] = None,
        counters: Optional[PerfCounters] = None,
        nparts: Optional[int] = None,
    ) -> Tuple[DistributedMesh, Dict[str, DistributedField], CheckpointInfo]:
        """Restore from the newest valid checkpoint.

        Walks checkpoints newest-first and skips (does not delete) any that
        fail validation — logging exactly which checkpoint it skipped and
        why — so one corrupt epoch costs one epoch of progress, not the
        run.  Each checkpoint restores through its own on-disk format
        (``repro.dmesh/2`` whole-state load or ``repro.store/1`` parallel
        load).  Re-applies the recorded ghost configuration.  Returns
        ``(dmesh, fields_by_name, info)``; raises :class:`NoCheckpointError`
        when no checkpoint survives.
        """
        skipped: List[str] = []
        for info in reversed(self.checkpoints()):
            try:
                if self._entry_format(info.path) == STORE_FORMAT:
                    dmesh, fields, stats = self._store().load_at(
                        nparts=nparts,
                        epoch=info.index,
                        model=model,
                        topology=topology,
                        counters=counters,
                    )
                    extra = stats.extra
                else:
                    dmesh, fields, manifest = load_checkpoint(
                        info.path,
                        model=model,
                        topology=topology,
                        counters=counters,
                        nparts=nparts,
                    )
                    extra = manifest.get("extra", {})
            except CorruptCheckpointError as exc:
                logger.warning(
                    "restore: skipping corrupt checkpoint %s: %s",
                    info.path.name,
                    exc,
                )
                skipped.append(f"{info.path.name}: {exc}")
                continue
            ghost_config = extra.get("ghost_config")
            if ghost_config:
                normalized = _normalize_ghost_config(ghost_config)
                ghost_layer(
                    dmesh,
                    overlap=Overlap.from_dict(normalized["overlap"]),
                    tags=tuple(normalized["tags"]),
                )
            return dmesh, fields, info
        detail = ("; skipped corrupt: " + ", ".join(skipped)) if skipped else ""
        raise NoCheckpointError(
            f"no valid checkpoint under {self.root}{detail}"
        )
