"""Resilience component: deterministic fault injection + checkpoint/restart.

The simulated runtime makes failures *schedulable*: a seeded
:class:`FaultPlan` names exactly which messages to drop, duplicate, delay
or corrupt and which ranks to crash at which superstep, and the
:class:`FaultInjector` executes the plan deterministically through hooks in
:class:`~repro.parallel.network.Network` and the
:func:`~repro.parallel.executor.spmd` executor.  On the recovery side,
:class:`CheckpointManager` rotates atomic, hash-validated ``repro.dmesh/2``
checkpoints (tags, fields, ghost configuration included), and
:func:`resilient_spmd` runs a workload in checkpoint epochs, classifying
failures as injected vs. real and restarting from the newest valid
checkpoint — including onto a different part count via the migration
rendezvous.

The three layers compose but stand alone: inject faults without recovery
to harden an algorithm, or checkpoint without faults for plain
restartability.
"""

from ..partition.io import CorruptCheckpointError
from .checkpoint import CheckpointInfo, CheckpointManager, NoCheckpointError
from .faults import (
    ENDPOINT_KINDS,
    MESSAGE_KINDS,
    CorruptedPayload,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultRecord,
    FaultSpec,
    InjectedFault,
    InjectedRankFailure,
)
from .recovery import (
    RecoveryEvent,
    RecoveryExhaustedError,
    RecoveryReport,
    classify_failure,
    resilient_spmd,
)

__all__ = [
    "CheckpointInfo",
    "CheckpointManager",
    "CorruptCheckpointError",
    "CorruptedPayload",
    "ENDPOINT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultRecord",
    "FaultSpec",
    "InjectedFault",
    "InjectedRankFailure",
    "MESSAGE_KINDS",
    "NoCheckpointError",
    "RecoveryEvent",
    "RecoveryExhaustedError",
    "RecoveryReport",
    "classify_failure",
    "resilient_spmd",
]
