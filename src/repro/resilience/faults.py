"""Deterministic fault injection for the simulated message-passing runtime.

Half-million-core Blue Gene/Q runs — the scale the paper's infrastructure
targets — treat rank failure and partial I/O as routine events, yet a clean
simulation never exercises those paths.  This module makes failure a
first-class, *reproducible* input: a :class:`FaultPlan` is a declarative,
JSON-loadable list of :class:`FaultSpec` entries (rank crashes at a chosen
superstep, message drop/duplicate/delay, payload corruption, slow ranks)
plus a seed, and a :class:`FaultInjector` executes the plan through hooks in
:meth:`repro.parallel.network.Network.post` /
:meth:`~repro.parallel.network.Network.exchange` and the
:func:`~repro.parallel.executor.spmd` executor.

Determinism contract: the same plan + seed + workload produces the same
failure trajectory.  Probabilistic faults draw from one seeded
``random.Random`` in posting order (which the BSP drivers make
deterministic), crashes fire at exact superstep indices, and every injection
is appended to :attr:`FaultInjector.records` so recovery drivers can
classify failures and observability can report them.

Fault kinds
-----------
``crash``
    Raise :class:`InjectedRankFailure` for ``rank`` when the network
    completes superstep ``superstep`` (the BSP equivalent of the rank's
    process dying mid-superstep).  With ``superstep`` omitted the crash
    instead fires when an ``spmd`` job starts that rank's thread.
``drop``
    Silently discard a posted message (lost wire packet).
``duplicate``
    Deliver a posted message twice (retransmission bug).
``delay``
    Hold a posted message back ``delay`` supersteps before delivery
    (violates BSP timing the way a congested link would).
``corrupt``
    Replace the payload with a :class:`CorruptedPayload` sentinel, so the
    receiver fails when it tries to use the message (bit-flipped wire data).
``slow``
    Busy the whole exchange for ``seconds`` when completing ``superstep``
    (a straggling rank; perturbs wall time, never results).

Message faults (``drop``/``duplicate``/``delay``/``corrupt``) select
messages by optional ``src``/``dst``/``superstep`` filters, fire with
``probability`` (seeded), and are limited to ``count`` injections
(``-1`` = unlimited).
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "CorruptedPayload",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultRecord",
    "FaultSpec",
    "InjectedFault",
    "InjectedRankFailure",
]

#: Fault kinds applied to individual posted messages.
MESSAGE_KINDS = ("drop", "duplicate", "delay", "corrupt")
#: Fault kinds applied to an endpoint (rank / part).
ENDPOINT_KINDS = ("crash", "slow")
VALID_KINDS = MESSAGE_KINDS + ENDPOINT_KINDS


class FaultPlanError(ValueError):
    """A fault plan failed validation (unknown kind, bad field, ...)."""


class InjectedFault(RuntimeError):
    """Base class of every failure raised by the injector.

    The class attribute ``injected_fault`` lets layers that must not import
    this module (the executor) classify exceptions without an isinstance
    check: ``getattr(exc, "injected_fault", False)``.
    """

    injected_fault = True


class InjectedRankFailure(InjectedFault):
    """A rank was killed by the fault plan."""

    def __init__(self, rank: int, superstep: Optional[int] = None) -> None:
        self.rank = rank
        self.superstep = superstep
        where = (
            f"at superstep {superstep}" if superstep is not None
            else "at rank start"
        )
        super().__init__(f"injected crash of rank {rank} {where}")


class CorruptedPayload:
    """Sentinel replacing a corrupted message payload.

    Any receiver that unpacks or calls the payload fails with an ordinary
    ``TypeError`` — exactly what bit-flipped wire data produces — while the
    injector's record trail still identifies the failure as injected.
    """

    def __init__(self, original_type: str = "?") -> None:
        self.original_type = original_type

    def __repr__(self) -> str:
        return f"CorruptedPayload(was {self.original_type})"

    def __iter__(self):
        raise TypeError(
            f"payload corrupted by fault injection (was {self.original_type})"
        )


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault.  See the module docstring for kind semantics."""

    kind: str
    rank: Optional[int] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    superstep: Optional[int] = None
    probability: float = 1.0
    count: int = 1
    delay: int = 1
    seconds: float = 0.0

    def validate(self) -> None:
        if self.kind not in VALID_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(VALID_KINDS)}"
            )
        if self.kind in ENDPOINT_KINDS and self.rank is None:
            raise FaultPlanError(f"{self.kind} fault needs a 'rank'")
        if self.kind == "slow" and self.superstep is None:
            raise FaultPlanError("slow fault needs a 'superstep'")
        if not 0.0 < self.probability <= 1.0:
            raise FaultPlanError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        if self.count == 0 or self.count < -1:
            raise FaultPlanError(
                f"count must be positive or -1 (unlimited), got {self.count}"
            )
        if self.kind == "delay" and self.delay < 1:
            raise FaultPlanError(f"delay must be >= 1, got {self.delay}")
        if self.seconds < 0:
            raise FaultPlanError(f"seconds must be >= 0, got {self.seconds}")

    def matches_message(self, src: int, dst: int, superstep: int) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and (self.superstep is None or self.superstep == superstep)
        )

    def to_dict(self) -> Dict[str, Any]:
        """Compact dict form: defaults omitted (stable for JSON round-trip)."""
        defaults = FaultSpec(kind=self.kind)
        out: Dict[str, Any] = {"kind": self.kind}
        for name, value in asdict(self).items():
            if name != "kind" and value != getattr(defaults, name):
                out[name] = value
        return out


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered list of faults — the declarative chaos scenario."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for spec in self.specs:
            spec.validate()

    # -- construction -------------------------------------------------------

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(doc, dict):
            raise FaultPlanError(f"fault plan must be an object, got {doc!r}")
        unknown = set(doc) - {"seed", "faults"}
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan keys {sorted(unknown)}; "
                "expected 'seed' and 'faults'"
            )
        specs = []
        allowed = set(FaultSpec.__dataclass_fields__)
        for i, raw in enumerate(doc.get("faults", [])):
            if not isinstance(raw, dict):
                raise FaultPlanError(f"fault #{i} must be an object")
            bad = set(raw) - allowed
            if bad:
                raise FaultPlanError(
                    f"fault #{i}: unknown keys {sorted(bad)}; "
                    f"allowed: {sorted(allowed)}"
                )
            if "kind" not in raw:
                raise FaultPlanError(f"fault #{i} is missing 'kind'")
            specs.append(FaultSpec(**raw))
        return cls(specs=tuple(specs), seed=int(doc.get("seed", 0)))

    @classmethod
    def from_json(cls, text_or_path: Union[str, Path]) -> "FaultPlan":
        """Parse a plan from a JSON string or a path to a JSON file."""
        if isinstance(text_or_path, Path):
            text = text_or_path.read_text()
        else:
            text = text_or_path
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_dict(doc)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)


@dataclass(frozen=True)
class FaultRecord:
    """One executed injection, in trajectory order."""

    kind: str
    superstep: int
    rank: Optional[int] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {k: v for k, v in asdict(self).items() if v not in (None, "")}


class FaultInjector:
    """Executes a :class:`FaultPlan` against the runtime's hook points.

    One injector instance carries the whole trajectory: the global superstep
    counter (incremented by every :meth:`Network.exchange
    <repro.parallel.network.Network.exchange>` it is attached to), the
    per-spec remaining-injection budgets, the seeded RNG, delayed messages
    in flight, and the append-only :attr:`records` trail.  Attach the same
    injector across checkpoint/restore cycles so consumed one-shot faults
    do not re-fire on re-execution — that is what makes recovery converge.

    Thread-safe: ``spmd`` rank threads may post through a hooked network
    concurrently.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._remaining: List[int] = [spec.count for spec in plan.specs]
        self._superstep = 0
        self._delayed: List[Tuple[int, int, int, int, Any]] = []
        self._lock = threading.Lock()
        #: Executed injections, in order.  Append-only.
        self.records: List[FaultRecord] = []

    # -- introspection ------------------------------------------------------

    @property
    def superstep(self) -> int:
        """Index of the superstep currently being assembled."""
        return self._superstep

    def record_count(self) -> int:
        with self._lock:
            return len(self.records)

    def stats(self) -> Dict[str, int]:
        """Injection counts by kind (for metrics documents)."""
        with self._lock:
            out: Dict[str, int] = {}
            for record in self.records:
                out[record.kind] = out.get(record.kind, 0) + 1
            return out

    # -- internal helpers ---------------------------------------------------

    def _consume(self, index: int) -> bool:
        """Use one injection budget of spec ``index`` (caller holds lock)."""
        left = self._remaining[index]
        if left == 0:
            return False
        if left > 0:
            self._remaining[index] = left - 1
        return True

    def _roll(self, spec: FaultSpec) -> bool:
        return spec.probability >= 1.0 or self._rng.random() < spec.probability

    def _record(self, record: FaultRecord) -> None:
        self.records.append(record)

    # -- network hooks ------------------------------------------------------

    def on_post(
        self, src: int, dst: int, tag: int, payload: Any
    ) -> List[Tuple[int, int, int, Any]]:
        """Filter one posted message; returns the messages to enqueue.

        Called by :meth:`Network.post`.  May return zero (drop/delay), one
        (pass-through or corrupt) or two (duplicate) messages.
        """
        with self._lock:
            step = self._superstep
            out = [(src, dst, tag, payload)]
            for i, spec in enumerate(self.plan.specs):
                if spec.kind not in MESSAGE_KINDS:
                    continue
                if self._remaining[i] == 0:
                    continue
                if not spec.matches_message(src, dst, step):
                    continue
                if not self._roll(spec):
                    continue
                if not self._consume(i):
                    continue
                if spec.kind == "drop":
                    self._record(
                        FaultRecord("drop", step, src=src, dst=dst)
                    )
                    return []
                if spec.kind == "duplicate":
                    out.append((src, dst, tag, payload))
                    self._record(
                        FaultRecord("duplicate", step, src=src, dst=dst)
                    )
                elif spec.kind == "delay":
                    release = step + spec.delay
                    self._delayed.append((release, src, dst, tag, payload))
                    self._record(
                        FaultRecord(
                            "delay", step, src=src, dst=dst,
                            detail=f"released at superstep {release}",
                        )
                    )
                    return []
                elif spec.kind == "corrupt":
                    corrupted = CorruptedPayload(type(payload).__name__)
                    out = [(s, d, t, corrupted) for s, d, t, _p in out]
                    self._record(
                        FaultRecord("corrupt", step, src=src, dst=dst)
                    )
            return out

    def on_exchange(self) -> List[Tuple[int, int, int, Any]]:
        """Superstep-boundary hook, called at the start of every exchange.

        Fires any ``crash``/``slow`` fault scheduled for the superstep now
        completing, and returns delayed messages whose release superstep has
        arrived (the caller enqueues them into this exchange).
        """
        sleep_for = 0.0
        with self._lock:
            step = self._superstep
            for i, spec in enumerate(self.plan.specs):
                if spec.superstep != step or self._remaining[i] == 0:
                    continue
                if spec.kind == "crash" and self._consume(i):
                    self._record(
                        FaultRecord("crash", step, rank=spec.rank)
                    )
                    raise InjectedRankFailure(spec.rank, superstep=step)
                if spec.kind == "slow" and self._consume(i):
                    self._record(
                        FaultRecord(
                            "slow", step, rank=spec.rank,
                            detail=f"{spec.seconds}s",
                        )
                    )
                    sleep_for += spec.seconds
            released = [
                (src, dst, tag, payload)
                for when, src, dst, tag, payload in self._delayed
                if when <= step
            ]
            self._delayed = [
                item for item in self._delayed if item[0] > step
            ]
        if sleep_for > 0:
            time.sleep(sleep_for)
        return released

    def end_superstep(self) -> None:
        """Advance the superstep counter (end of every exchange)."""
        with self._lock:
            self._superstep += 1

    # -- executor hook ------------------------------------------------------

    def on_rank_start(self, rank: int) -> None:
        """Crash hook for ``spmd`` rank threads (specs without a superstep)."""
        with self._lock:
            for i, spec in enumerate(self.plan.specs):
                if (
                    spec.kind == "crash"
                    and spec.rank == rank
                    and spec.superstep is None
                    and self._remaining[i] != 0
                    and self._consume(i)
                ):
                    self._record(
                        FaultRecord("crash", self._superstep, rank=rank)
                    )
                    raise InjectedRankFailure(rank)

    def __repr__(self) -> str:
        return (
            f"FaultInjector({len(self.plan.specs)} specs, "
            f"superstep={self._superstep}, records={len(self.records)})"
        )
