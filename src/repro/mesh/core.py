"""Array-native mesh storage: structure-of-arrays topology with CSR kernels.

:class:`MeshCore` replaces the object-per-entity stores with a handful of
NumPy index arrays per dimension — the DMPlex-style representation (Knepley
et al.) where topology, adjacency and per-entity columns are all flat arrays
indexed by integer entity handles:

* ``etype[d]``   — int16 type codes,
* ``alive[d]``   — liveness bitmap,
* ``verts[d]``   — padded canonical vertex-id rows (``nverts[d]`` counts),
* ``down[d]``    — padded one-level downward rows (``ndown[d]`` counts),
* ``up[d]``      — padded one-level upward rows (``nup[d]`` counts), each
  row kept **sorted ascending** so membership tests and removals are
  binary searches and wire traversals are deterministic,
* ``free[d]``    — LIFO free-list of dead slots; :meth:`create` pops it, so
  handles **are reused** (unlike the legacy object store).  Consumers that
  key external state by handle must register a destroy listener on the
  owning :class:`~repro.mesh.mesh.Mesh` to evict stale entries eagerly.

Padded fixed-stride rows are the mutable-topology variant of CSR: every
row's prefix is the CSR segment and the count array is the (implicit)
indptr diff.  :meth:`downward_csr` / :meth:`upward_csr` emit true
``(indptr, indices)`` pairs for batch consumers.

The legacy per-object :class:`repro.mesh.store.EntityStore` is retained
unchanged as the baseline for ``benchmarks/bench_mesh_core.py`` and its
standalone tests; the live mesh is backed exclusively by this module via
the :class:`DimStore` facade views.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from .topology import type_info

#: Padded row widths per dimension: canonical vertices (hex has 8) and
#: one-level downward entities (hex has 6 faces).  Upward rows grow
#: dynamically with vertex/edge valence.
VERT_WIDTH = (1, 2, 4, 8)
DOWN_WIDTH = (0, 2, 4, 6)

_ID = np.int32
_INITIAL = 16


def first_occurrence_unique(ids: np.ndarray) -> np.ndarray:
    """Unique ids in order of first occurrence (stable dedupe, vectorized)."""
    if len(ids) == 0:
        return ids
    uniq, first = np.unique(ids, return_index=True)
    return uniq[np.argsort(first, kind="stable")]


class MeshCore:
    """SoA topology storage for all four dimensions of one mesh part."""

    def __init__(self) -> None:
        self.etype: List[np.ndarray] = []
        self.alive: List[np.ndarray] = []
        self.nverts: List[np.ndarray] = []
        self.verts: List[np.ndarray] = []
        self.ndown: List[np.ndarray] = []
        self.down: List[np.ndarray] = []
        self.nup: List[np.ndarray] = []
        self.up: List[np.ndarray] = []
        #: LIFO free-lists of dead slots, per dimension.
        self.free: List[List[int]] = [[] for _ in range(4)]
        self.n_alive = [0, 0, 0, 0]
        #: Slot high-water mark per dimension (== total ids ever in use).
        self.top = [0, 0, 0, 0]
        self._version = [0, 0, 0, 0]
        self._live_cache: List[Tuple[int, np.ndarray]] = [(-1, np.empty(0, _ID))] * 4
        for d in range(4):
            self._alloc(d, _INITIAL)

    def _alloc(self, d: int, cap: int) -> None:
        self.etype.append(np.zeros(cap, dtype=np.int16))
        self.alive.append(np.zeros(cap, dtype=bool))
        self.nverts.append(np.zeros(cap, dtype=np.int8))
        self.verts.append(np.zeros((cap, VERT_WIDTH[d]), dtype=_ID))
        self.ndown.append(np.zeros(cap, dtype=np.int8))
        self.down.append(np.zeros((cap, max(DOWN_WIDTH[d], 1)), dtype=_ID))
        self.nup.append(np.zeros(cap, dtype=np.int32))
        self.up.append(np.zeros((cap, 4), dtype=_ID))

    # -- growth ------------------------------------------------------------

    def _grow(self, d: int, need: int) -> None:
        cap = len(self.etype[d])
        if need <= cap:
            return
        new = max(2 * cap, need)

        def grown(arr: np.ndarray) -> np.ndarray:
            shape = (new,) + arr.shape[1:]
            out = np.zeros(shape, dtype=arr.dtype)
            out[:cap] = arr
            return out

        self.etype[d] = grown(self.etype[d])
        self.alive[d] = grown(self.alive[d])
        self.nverts[d] = grown(self.nverts[d])
        self.verts[d] = grown(self.verts[d])
        self.ndown[d] = grown(self.ndown[d])
        self.down[d] = grown(self.down[d])
        self.nup[d] = grown(self.nup[d])
        self.up[d] = grown(self.up[d])

    def _grow_up_width(self, d: int, need: int) -> None:
        width = self.up[d].shape[1]
        if need <= width:
            return
        new = max(2 * width, need)
        out = np.zeros((len(self.up[d]), new), dtype=_ID)
        out[:, :width] = self.up[d]
        self.up[d] = out

    # -- creation / destruction --------------------------------------------

    def create(
        self,
        dim: int,
        etype: int,
        verts: Sequence[int],
        down: Sequence[int],
    ) -> int:
        """Allocate one entity; reuses a freed slot when one is available."""
        if self.free[dim]:
            idx = self.free[dim].pop()
        else:
            idx = self.top[dim]
            self._grow(dim, idx + 1)
            self.top[dim] = idx + 1
        if dim == 0:
            verts = (idx,)
        self.etype[dim][idx] = etype
        self.alive[dim][idx] = True
        nv = len(verts)
        self.nverts[dim][idx] = nv
        self.verts[dim][idx, :nv] = verts
        nd = len(down)
        self.ndown[dim][idx] = nd
        if nd:
            self.down[dim][idx, :nd] = down
        self.nup[dim][idx] = 0
        self.n_alive[dim] += 1
        self._version[dim] += 1
        return idx

    def append_block(
        self,
        dim: int,
        etypes: np.ndarray,
        verts: np.ndarray,
        down: np.ndarray,
    ) -> np.ndarray:
        """Bulk-append ``len(etypes)`` entities at the top; returns their ids.

        Used by :func:`repro.mesh.build.from_connectivity`; block appends
        never consult the free-list (bulk construction happens on fresh
        meshes where it is empty anyway).
        """
        n = len(etypes)
        start = self.top[dim]
        self._grow(dim, start + n)
        ids = np.arange(start, start + n, dtype=_ID)
        self.etype[dim][start : start + n] = etypes
        self.alive[dim][start : start + n] = True
        if dim == 0:
            self.nverts[dim][start : start + n] = 1
            self.verts[dim][start : start + n, 0] = ids
        else:
            self.nverts[dim][start : start + n] = verts.shape[1]
            self.verts[dim][start : start + n, : verts.shape[1]] = verts
        if down is not None and down.size:
            self.ndown[dim][start : start + n] = down.shape[1]
            self.down[dim][start : start + n, : down.shape[1]] = down
        self.top[dim] = start + n
        self.n_alive[dim] += n
        self._version[dim] += 1
        return ids

    def destroy(self, dim: int, idx: int) -> None:
        """Mark ``idx`` dead and push its slot onto the free-list."""
        self.check(dim, idx)
        if self.nup[dim][idx]:
            raise ValueError(
                f"cannot destroy dim-{dim} entity {idx}: still bounds "
                f"{int(self.nup[dim][idx])} higher entities"
            )
        self.alive[dim][idx] = False
        self.nverts[dim][idx] = 0
        self.ndown[dim][idx] = 0
        self.n_alive[dim] -= 1
        self.free[dim].append(int(idx))
        self._version[dim] += 1

    # -- per-entity accessors ----------------------------------------------

    def is_alive(self, dim: int, idx: int) -> bool:
        return 0 <= idx < self.top[dim] and bool(self.alive[dim][idx])

    def check(self, dim: int, idx: int) -> None:
        if not self.is_alive(dim, idx):
            raise KeyError(f"dim-{dim} entity {idx} does not exist")

    def verts_row(self, dim: int, idx: int) -> Tuple[int, ...]:
        return tuple(self.verts[dim][idx, : self.nverts[dim][idx]].tolist())

    def down_row(self, dim: int, idx: int) -> Tuple[int, ...]:
        return tuple(self.down[dim][idx, : self.ndown[dim][idx]].tolist())

    def up_row(self, dim: int, idx: int) -> List[int]:
        return self.up[dim][idx, : self.nup[dim][idx]].tolist()

    def add_up(self, dim: int, idx: int, upper: int) -> None:
        """Insert ``upper`` into the sorted upward row of ``idx``."""
        n = int(self.nup[dim][idx])
        self._grow_up_width(dim, n + 1)
        row = self.up[dim][idx]
        pos = int(np.searchsorted(row[:n], upper))
        row[pos + 1 : n + 1] = row[pos:n]
        row[pos] = upper
        self.nup[dim][idx] = n + 1

    def remove_up(self, dim: int, idx: int, upper: int) -> None:
        n = int(self.nup[dim][idx])
        row = self.up[dim][idx]
        pos = int(np.searchsorted(row[:n], upper))
        if pos >= n or row[pos] != upper:
            raise ValueError(f"dim-{dim} entity {idx} does not bound {upper}")
        row[pos : n - 1] = row[pos + 1 : n]
        self.nup[dim][idx] = n - 1

    # -- batch kernels ------------------------------------------------------

    def live_ids(self, dim: int) -> np.ndarray:
        """Live entity ids of one dimension, ascending (cached per version)."""
        version, cached = self._live_cache[dim]
        if version != self._version[dim]:
            cached = np.nonzero(self.alive[dim][: self.top[dim]])[0].astype(_ID)
            self._live_cache[dim] = (self._version[dim], cached)
        return cached

    def gather_verts(self, dim: int, ids: np.ndarray) -> np.ndarray:
        """Concatenated canonical vertex ids of ``ids``, row-major order."""
        return self._concat_ragged(self.verts[dim], self.nverts[dim], ids)

    def gather_down(self, dim: int, ids: np.ndarray) -> np.ndarray:
        """Concatenated one-level downward ids of ``ids``, row-major order."""
        return self._concat_ragged(self.down[dim], self.ndown[dim], ids)

    def gather_up(self, dim: int, ids: np.ndarray) -> np.ndarray:
        """Concatenated one-level upward ids of ``ids``, row-major order."""
        return self._concat_ragged(self.up[dim], self.nup[dim], ids)

    @staticmethod
    def _concat_ragged(rows: np.ndarray, counts: np.ndarray, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=_ID)
        if len(ids) == 0:
            return np.empty(0, dtype=_ID)
        n = counts[ids]
        width = int(n.max()) if len(n) else 0
        if width == 0:
            return np.empty(0, dtype=_ID)
        if (n == width).all():
            return rows[ids, :width].reshape(-1)
        mask = np.arange(width) < n[:, None]
        return rows[ids][:, :width][mask]

    def verts_matrix(self, dim: int, ids: np.ndarray) -> np.ndarray:
        """``(len(ids), nverts)`` vertex-id matrix for uniform-type ids."""
        ids = np.asarray(ids, dtype=_ID)
        if len(ids) == 0:
            return np.empty((0, 0), dtype=_ID)
        width = int(self.nverts[dim][ids[0]])
        return self.verts[dim][ids, :width]

    def downward_csr(self, dim: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """True-CSR ``(ids, indptr, indices)`` of live downward adjacency."""
        ids = self.live_ids(dim)
        counts = self.ndown[dim][ids].astype(np.int64)
        indptr = np.zeros(len(ids) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return ids, indptr, self.gather_down(dim, ids)

    def upward_csr(self, dim: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """True-CSR ``(ids, indptr, indices)`` of live upward adjacency."""
        ids = self.live_ids(dim)
        counts = self.nup[dim][ids].astype(np.int64)
        indptr = np.zeros(len(ids) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return ids, indptr, self.gather_up(dim, ids)

    def bulk_add_up(
        self, dim: int, lower_ids: np.ndarray, upper_ids: np.ndarray
    ) -> None:
        """Record ``upper_ids[k]`` as an upward user of ``lower_ids[k]``, bulk.

        ``upper_ids`` must arrive grouped in ascending order per lower id
        when sorted stably by lower id (true for construction order, where
        uppers are appended ascending) so rows come out sorted.
        """
        if len(lower_ids) == 0:
            return
        order = np.argsort(lower_ids, kind="stable")
        lo = np.asarray(lower_ids, dtype=np.int64)[order]
        hi = np.asarray(upper_ids, dtype=_ID)[order]
        counts = np.bincount(lo, minlength=self.top[dim])
        self._grow_up_width(dim, int(counts.max()) + int(self.nup[dim].max()))
        starts = np.zeros(len(counts), dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        col = self.nup[dim][lo] + (np.arange(len(lo)) - starts[lo])
        self.up[dim][lo, col] = hi
        self.nup[dim][: len(counts)] += counts.astype(np.int32)

    # -- compat helpers -----------------------------------------------------

    def compact_map(self, dim: int) -> Dict[int, int]:
        live = self.live_ids(dim)
        return dict(zip(live.tolist(), range(len(live))))

    def stores(self) -> List["DimStore"]:
        return [DimStore(self, d) for d in range(4)]


class DimStore:
    """Per-dimension facade over :class:`MeshCore`.

    Exposes the exact API of the legacy :class:`repro.mesh.store.EntityStore`
    so partition/adapt/io consumers that take a per-dimension store keep
    working unchanged; hot paths bypass it and hit the core arrays.
    """

    __slots__ = ("core", "dim")

    def __init__(self, core: MeshCore, dim: int) -> None:
        self.core = core
        self.dim = dim

    # -- creation / destruction -------------------------------------------

    def create(
        self, etype: int, verts: Tuple[int, ...], down: Tuple[int, ...]
    ) -> int:
        info = type_info(etype)
        if info.dim != self.dim:
            raise ValueError(
                f"type {info.name} has dim {info.dim}, store holds dim {self.dim}"
            )
        if self.dim > 0 and len(verts) != info.nverts:
            raise ValueError(
                f"{info.name} needs {info.nverts} vertices, got {len(verts)}"
            )
        return self.core.create(self.dim, etype, verts, down)

    def destroy(self, idx: int) -> None:
        self.core.destroy(self.dim, idx)

    # -- accessors ---------------------------------------------------------

    def alive(self, idx: int) -> bool:
        return self.core.is_alive(self.dim, idx)

    def etype(self, idx: int) -> int:
        self._check(idx)
        return int(self.core.etype[self.dim][idx])

    def verts(self, idx: int) -> Tuple[int, ...]:
        self._check(idx)
        return self.core.verts_row(self.dim, idx)

    def down(self, idx: int) -> Tuple[int, ...]:
        self._check(idx)
        return self.core.down_row(self.dim, idx)

    def up(self, idx: int) -> List[int]:
        self._check(idx)
        return self.core.up_row(self.dim, idx)

    def add_up(self, idx: int, upper: int) -> None:
        self._check(idx)
        self.core.add_up(self.dim, idx, upper)

    def remove_up(self, idx: int, upper: int) -> None:
        self._check(idx)
        self.core.remove_up(self.dim, idx, upper)

    def up_count(self, idx: int) -> int:
        self._check(idx)
        return int(self.core.nup[self.dim][idx])

    # -- iteration / size --------------------------------------------------

    def __len__(self) -> int:
        return self.core.n_alive[self.dim]

    @property
    def capacity(self) -> int:
        """Slot high-water mark (live + dead + reusable)."""
        return self.core.top[self.dim]

    def indices(self) -> Iterator[int]:
        return iter(self.core.live_ids(self.dim).tolist())

    def compact_map(self) -> Dict[int, int]:
        return self.core.compact_map(self.dim)

    def _check(self, idx: int) -> None:
        self.core.check(self.dim, idx)
