"""Iterator component: filtered traversal over ranges of mesh entities.

The first of the paper's three common utilities: "(i) Iterator: component for
iterating over a range of data".  These are thin, composable generators over
a mesh's per-dimension stores, with the filters the rest of the repository
needs: by entity type, by geometric classification, by predicate.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from ..gmodel.model import ModelEntity
from .entity import Ent
from .mesh import Mesh


def iterate(
    mesh: Mesh,
    dim: int,
    etype: Optional[int] = None,
    where: Optional[Callable[[Ent], bool]] = None,
) -> Iterator[Ent]:
    """Live entities of ``dim``, optionally filtered by type and predicate."""
    for ent in mesh.entities(dim):
        if etype is not None and mesh.etype(ent) != etype:
            continue
        if where is not None and not where(ent):
            continue
        yield ent


def classified_on(
    mesh: Mesh, dim: int, gent: ModelEntity, closure: bool = False
) -> Iterator[Ent]:
    """Entities of ``dim`` classified on model entity ``gent``.

    With ``closure`` also yields entities classified on any model entity in
    ``gent``'s closure (e.g. all boundary vertices of a model face including
    its edges and corners).
    """
    if closure:
        if mesh.model is None:
            raise ValueError("closure filtering requires the mesh's model")
        allowed = set(mesh.model.closure(gent))
    else:
        allowed = {gent}
    for ent in mesh.entities(dim):
        if mesh.classification(ent) in allowed:
            yield ent


def boundary_entities(mesh: Mesh, dim: int) -> Iterator[Ent]:
    """Entities of ``dim`` classified on a model entity of lower dimension
    than the mesh (i.e. on the domain boundary)."""
    mesh_dim = mesh.dim()
    for ent in mesh.entities(dim):
        gent = mesh.classification(ent)
        if gent is not None and gent.dim < mesh_dim:
            yield ent


def count(iterator: Iterator[Ent]) -> int:
    """Number of entities an iterator yields (consumes it)."""
    return sum(1 for _ in iterator)
