"""Mesh input/output: VTK legacy export and a native snapshot format.

VTK legacy ASCII is the exchange format for visualizing results (ParaView
renders the figures corresponding to the paper's mesh images); the native
format is a compact ``.npz`` snapshot preserving coordinates, connectivity,
classification and element-dimension tags, sufficient to round-trip the
meshes used by benchmarks without regenerating them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..gmodel.model import Model, ModelEntity
from .build import from_connectivity
from .entity import Ent
from .mesh import Mesh
from .topology import VTK_TYPES, type_info


def write_vtk(
    mesh: Mesh,
    path: Union[str, Path],
    cell_data: Optional[Dict[str, Dict[Ent, float]]] = None,
) -> Path:
    """Write the mesh's top-dimension elements as a VTK legacy file.

    ``cell_data`` maps field name → (element → value); missing elements
    default to 0.
    """
    path = Path(path)
    dim = mesh.dim()
    vert_map = mesh._stores[0].compact_map()
    elements = list(mesh.entities(dim))

    lines = [
        "# vtk DataFile Version 3.0",
        "repro mesh",
        "ASCII",
        "DATASET UNSTRUCTURED_GRID",
        f"POINTS {len(vert_map)} double",
    ]
    coords = mesh.coords_view()
    for idx in mesh._stores[0].indices():
        x, y, z = coords[idx]
        lines.append(f"{x} {y} {z}")

    total_ints = sum(
        1 + len(mesh._stores[dim].verts(e.idx)) for e in elements
    )
    lines.append(f"CELLS {len(elements)} {total_ints}")
    for ent in elements:
        verts = mesh._stores[dim].verts(ent.idx)
        lines.append(
            f"{len(verts)} " + " ".join(str(vert_map[v]) for v in verts)
        )
    lines.append(f"CELL_TYPES {len(elements)}")
    for ent in elements:
        lines.append(str(VTK_TYPES[mesh.etype(ent)]))

    if cell_data:
        lines.append(f"CELL_DATA {len(elements)}")
        for name, values in cell_data.items():
            lines.append(f"SCALARS {name} double 1")
            lines.append("LOOKUP_TABLE default")
            for ent in elements:
                lines.append(str(float(values.get(ent, 0.0))))

    path.write_text("\n".join(lines) + "\n")
    return path


def save_native(mesh: Mesh, path: Union[str, Path]) -> Path:
    """Snapshot the mesh (single element type) to a ``.npz`` file."""
    path = Path(path)
    dim = mesh.dim()
    store = mesh._stores[dim]
    elements = list(store.indices())
    etypes = {store.etype(i) for i in elements}
    if len(etypes) > 1:
        raise ValueError("native format supports single-element-type meshes")
    etype = etypes.pop() if etypes else None

    vert_map = mesh._stores[0].compact_map()
    coords = mesh.coords_view()[list(vert_map.keys())]
    conn = np.asarray(
        [[vert_map[v] for v in store.verts(i)] for i in elements],
        dtype=np.int64,
    )
    gclass = [
        (vert_map[idx], gent.dim, gent.tag)
        for idx, gent in sorted(mesh._gclass[0].items())
        if idx in vert_map
    ]
    meta = {"etype": etype, "dim": dim, "has_model": mesh.model is not None}
    np.savez_compressed(
        path,
        coords=coords,
        conn=conn,
        vclass=np.asarray(gclass, dtype=np.int64).reshape(-1, 3),
        meta=json.dumps(meta),
    )
    return path


def load_native(path: Union[str, Path], model: Optional[Model] = None) -> Mesh:
    """Rebuild a mesh from :func:`save_native` output.

    Passing the original ``model`` restores full classification (vertices
    from the snapshot, the rest re-derived); otherwise the mesh loads
    unclassified.
    """
    data = np.load(Path(path), allow_pickle=False)
    meta = json.loads(str(data["meta"]))
    mesh = from_connectivity(
        data["coords"],
        data["conn"],
        int(meta["etype"]),
        model=model,
        classify=False,
    )
    if model is not None:
        from .build import classify_cheap

        classify_cheap(mesh, model)
    return mesh
