"""Mesh input/output: VTK legacy export and a native snapshot format.

VTK legacy ASCII is the exchange format for visualizing results (ParaView
renders the figures corresponding to the paper's mesh images); the native
format is a compact ``.npz`` snapshot preserving coordinates, connectivity,
classification and element-dimension tags, sufficient to round-trip the
meshes used by benchmarks without regenerating them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..gmodel.model import Model, ModelEntity
from .build import from_connectivity
from .entity import Ent
from .mesh import Mesh
from .topology import VTK_TYPES, type_info


def write_vtk(
    mesh: Mesh,
    path: Union[str, Path],
    cell_data: Optional[Dict[str, Dict[Ent, float]]] = None,
) -> Path:
    """Write the mesh's top-dimension elements as a VTK legacy file.

    ``cell_data`` maps field name → (element → value); missing elements
    default to 0.
    """
    path = Path(path)
    dim = mesh.dim()
    core = mesh.core
    live_verts = core.live_ids(0)
    local_of = np.zeros(max(core.top[0], 1), dtype=np.int64)
    local_of[live_verts] = np.arange(len(live_verts))
    elem_ids = core.live_ids(dim)

    lines = [
        "# vtk DataFile Version 3.0",
        "repro mesh",
        "ASCII",
        "DATASET UNSTRUCTURED_GRID",
        f"POINTS {len(live_verts)} double",
    ]
    for x, y, z in mesh.coords_view()[live_verts].tolist():
        lines.append(f"{x} {y} {z}")

    nverts = core.nverts[dim][elem_ids]
    total_ints = int(len(elem_ids) + nverts.sum(dtype=np.int64))
    mapped = local_of[core.verts[dim][elem_ids]].tolist()
    lines.append(f"CELLS {len(elem_ids)} {total_ints}")
    for n, row in zip(nverts.tolist(), mapped):
        lines.append(f"{n} " + " ".join(str(v) for v in row[:n]))
    lines.append(f"CELL_TYPES {len(elem_ids)}")
    for etype in core.etype[dim][elem_ids].tolist():
        lines.append(str(VTK_TYPES[etype]))

    if cell_data:
        lines.append(f"CELL_DATA {len(elem_ids)}")
        for name, values in cell_data.items():
            lines.append(f"SCALARS {name} double 1")
            lines.append("LOOKUP_TABLE default")
            for idx in elem_ids.tolist():
                lines.append(str(float(values.get(Ent(dim, idx), 0.0))))

    path.write_text("\n".join(lines) + "\n")
    return path


def save_native(mesh: Mesh, path: Union[str, Path]) -> Path:
    """Snapshot the mesh (single element type) to a ``.npz`` file."""
    path = Path(path)
    dim = mesh.dim()
    core = mesh.core
    elem_ids = core.live_ids(dim)
    etypes = np.unique(core.etype[dim][elem_ids])
    if len(etypes) > 1:
        raise ValueError("native format supports single-element-type meshes")
    etype = int(etypes[0]) if len(etypes) else None

    live_verts = core.live_ids(0)
    local_of = np.zeros(max(core.top[0], 1), dtype=np.int64)
    local_of[live_verts] = np.arange(len(live_verts))
    alive = np.zeros(max(core.top[0], 1), dtype=bool)
    alive[live_verts] = True
    coords = mesh.coords_view()[live_verts]
    if len(elem_ids):
        conn = local_of[core.verts_matrix(dim, elem_ids)].astype(np.int64)
    else:
        conn = np.empty((0, 0), dtype=np.int64)
    gclass = [
        (int(local_of[idx]), gent.dim, gent.tag)
        for idx, gent in sorted(mesh._gclass[0].items())
        if idx < len(alive) and alive[idx]
    ]
    meta = {"etype": etype, "dim": dim, "has_model": mesh.model is not None}
    np.savez_compressed(
        path,
        coords=coords,
        conn=conn,
        vclass=np.asarray(gclass, dtype=np.int64).reshape(-1, 3),
        meta=json.dumps(meta),
    )
    return path


def load_native(path: Union[str, Path], model: Optional[Model] = None) -> Mesh:
    """Rebuild a mesh from :func:`save_native` output.

    Passing the original ``model`` restores full classification (vertices
    from the snapshot, the rest re-derived); otherwise the mesh loads
    unclassified.
    """
    data = np.load(Path(path), allow_pickle=False)
    meta = json.loads(str(data["meta"]))
    mesh = from_connectivity(
        data["coords"],
        data["conn"],
        int(meta["etype"]),
        model=model,
        classify=False,
    )
    if model is not None:
        from .build import classify_cheap

        classify_cheap(mesh, model)
    return mesh
