"""Mesh validity verification.

``verify`` walks the whole representation and checks the invariants the rest
of the code relies on; every mesh-modifying operation's tests call it.  The
checks mirror PUMI's ``apf::verify``:

* downward/upward consistency (i is in up(j) iff j is in down(i)),
* canonical vertex tuples agree with downward entities' vertices,
* no dangling entities (every edge/face below the mesh dimension bounds
  something, unless ``allow_dangling``),
* geometric classification dimension >= entity dimension, and classification
  present when the mesh carries a model,
* for simplex elements, strictly positive measure (no inverted elements)
  when ``check_volumes`` is set.
"""

from __future__ import annotations

from typing import List, Optional

from .entity import Ent
from .mesh import Mesh
from .quality import measure
from .topology import TET, TRI, type_info


class MeshInvalidError(AssertionError):
    """The mesh violates a representation invariant."""


def verify(
    mesh: Mesh,
    allow_dangling: bool = False,
    check_classification: Optional[bool] = None,
    check_volumes: bool = False,
) -> None:
    """Raise :class:`MeshInvalidError` on the first violated invariant."""
    errors: List[str] = []
    if check_classification is None:
        check_classification = mesh.model is not None
    mesh_dim = mesh.dim()

    for dim in range(mesh_dim + 1):
        store = mesh._stores[dim]
        below = mesh._stores[dim - 1] if dim > 0 else None
        above = mesh._stores[dim + 1] if dim < 3 else None
        for idx in store.indices():
            ent = Ent(dim, idx)
            info = type_info(store.etype(idx))
            if info.dim != dim:
                errors.append(f"{ent}: type {info.name} in dim-{dim} store")
                continue
            verts = store.verts(idx)
            if len(verts) != info.nverts:
                errors.append(
                    f"{ent}: {len(verts)} vertices, expected {info.nverts}"
                )
            if dim > 0:
                down = store.down(idx)
                expected = info.downward_count(dim - 1)
                if len(down) != expected:
                    errors.append(
                        f"{ent}: {len(down)} downward entities, "
                        f"expected {expected}"
                    )
                down_verts = set()
                for j in down:
                    if not below.alive(j):
                        errors.append(f"{ent}: dead downward entity {j}")
                        continue
                    if idx not in below._up[j]:
                        errors.append(
                            f"{ent}: missing upward link from M{dim-1}_{j}"
                        )
                    down_verts.update(below.verts(j) if dim > 1 else (j,))
                if down_verts and down_verts != set(verts):
                    errors.append(
                        f"{ent}: downward closure vertices {sorted(down_verts)}"
                        f" != canonical vertices {sorted(verts)}"
                    )
            if above is not None and dim < mesh_dim and not allow_dangling:
                if store.up_count(idx) == 0:
                    errors.append(f"{ent}: dangles (bounds nothing)")
            for upper in (store.up(idx) if dim < 3 else []):
                if not above.alive(upper):
                    errors.append(f"{ent}: dead upward entity {upper}")
                elif idx not in above._down[upper]:
                    errors.append(
                        f"{ent}: upward link to M{dim+1}_{upper} not reciprocated"
                    )
            if check_classification:
                gent = mesh.classification(ent)
                if gent is None:
                    errors.append(f"{ent}: unclassified")
                elif gent.dim < dim:
                    errors.append(
                        f"{ent}: classified on lower-dimension {gent}"
                    )
            if check_volumes and info.code in (TRI, TET) and dim == mesh_dim:
                size = measure(mesh, ent)
                if size <= 0.0:
                    errors.append(f"{ent}: non-positive measure {size}")
            if errors and len(errors) >= 20:
                break
        if errors and len(errors) >= 20:
            break

    if errors:
        summary = "\n  ".join(errors[:20])
        raise MeshInvalidError(
            f"mesh verification failed ({len(errors)}+ issue(s)):\n  {summary}"
        )
