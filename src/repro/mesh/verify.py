"""Mesh validity verification.

``verify`` walks the whole representation and checks the invariants the rest
of the code relies on; every mesh-modifying operation's tests call it.  The
checks mirror PUMI's ``apf::verify``, applied to the SoA core arrays:

* downward/upward consistency (i is in up(j) iff j is in down(i)),
* upward rows sorted strictly ascending (the core's CSR row invariant),
* canonical vertex tuples agree with downward entities' vertices,
* no dangling entities (every edge/face below the mesh dimension bounds
  something, unless ``allow_dangling``),
* free-list consistency: the free-list holds exactly the dead slots below
  the high-water mark, each once — a corrupt free-list would hand out live
  or out-of-range handles,
* geometric classification dimension >= entity dimension, and classification
  present when the mesh carries a model,
* for simplex elements, strictly positive measure (no inverted elements)
  when ``check_volumes`` is set.
"""

from __future__ import annotations

from typing import List, Optional

from .entity import Ent
from .mesh import Mesh
from .quality import measure
from .topology import TET, TRI, type_info

_MAX_ERRORS = 20


class MeshInvalidError(AssertionError):
    """The mesh violates a representation invariant."""


def _check_free_lists(mesh: Mesh, errors: List[str]) -> None:
    core = mesh.core
    for dim in range(4):
        top = core.top[dim]
        free = core.free[dim]
        seen = set()
        for idx in free:
            if not 0 <= idx < top:
                errors.append(
                    f"M{dim}_{idx}: free-list entry out of range (top={top})"
                )
            elif core.alive[dim][idx]:
                errors.append(f"M{dim}_{idx}: live entity on the free-list")
            if idx in seen:
                errors.append(f"M{dim}_{idx}: duplicated on the free-list")
            seen.add(idx)
        dead = set(
            i for i in range(top) if not core.alive[dim][i]
        )
        for idx in sorted(dead - seen):
            errors.append(f"M{dim}_{idx}: dead slot missing from the free-list")


def verify(
    mesh: Mesh,
    allow_dangling: bool = False,
    check_classification: Optional[bool] = None,
    check_volumes: bool = False,
) -> None:
    """Raise :class:`MeshInvalidError` on the first violated invariant."""
    errors: List[str] = []
    if check_classification is None:
        check_classification = mesh.model is not None
    mesh_dim = mesh.dim()
    core = mesh.core

    _check_free_lists(mesh, errors)

    for dim in range(mesh_dim + 1):
        for idx in core.live_ids(dim).tolist():
            ent = Ent(dim, idx)
            info = type_info(int(core.etype[dim][idx]))
            if info.dim != dim:
                errors.append(f"{ent}: type {info.name} in dim-{dim} store")
                continue
            verts = core.verts_row(dim, idx)
            if len(verts) != info.nverts:
                errors.append(
                    f"{ent}: {len(verts)} vertices, expected {info.nverts}"
                )
            if dim > 0:
                down = core.down_row(dim, idx)
                expected = info.downward_count(dim - 1)
                if len(down) != expected:
                    errors.append(
                        f"{ent}: {len(down)} downward entities, "
                        f"expected {expected}"
                    )
                down_verts = set()
                for j in down:
                    if not core.is_alive(dim - 1, j):
                        errors.append(f"{ent}: dead downward entity {j}")
                        continue
                    if idx not in core.up_row(dim - 1, j):
                        errors.append(
                            f"{ent}: missing upward link from M{dim-1}_{j}"
                        )
                    down_verts.update(
                        core.verts_row(dim - 1, j) if dim > 1 else (j,)
                    )
                if down_verts and down_verts != set(verts):
                    errors.append(
                        f"{ent}: downward closure vertices {sorted(down_verts)}"
                        f" != canonical vertices {sorted(verts)}"
                    )
            if dim < mesh_dim and not allow_dangling:
                if not core.nup[dim][idx]:
                    errors.append(f"{ent}: dangles (bounds nothing)")
            if dim < 3:
                uppers = core.up_row(dim, idx)
                if any(b <= a for a, b in zip(uppers, uppers[1:])):
                    errors.append(
                        f"{ent}: upward row not sorted ascending: {uppers}"
                    )
                for upper in uppers:
                    if not core.is_alive(dim + 1, upper):
                        errors.append(f"{ent}: dead upward entity {upper}")
                    elif idx not in core.down_row(dim + 1, upper):
                        errors.append(
                            f"{ent}: upward link to M{dim+1}_{upper} not reciprocated"
                        )
            if check_classification:
                gent = mesh.classification(ent)
                if gent is None:
                    errors.append(f"{ent}: unclassified")
                elif gent.dim < dim:
                    errors.append(
                        f"{ent}: classified on lower-dimension {gent}"
                    )
            if check_volumes and info.code in (TRI, TET) and dim == mesh_dim:
                size = measure(mesh, ent)
                if size <= 0.0:
                    errors.append(f"{ent}: non-positive measure {size}")
            if errors and len(errors) >= _MAX_ERRORS:
                break
        if errors and len(errors) >= _MAX_ERRORS:
            break

    if errors:
        summary = "\n  ".join(errors[:_MAX_ERRORS])
        raise MeshInvalidError(
            f"mesh verification failed ({len(errors)}+ issue(s)):\n  {summary}"
        )
