"""Mesh compaction and cache-friendly reordering.

Two pressures motivate rebuilding a mesh's storage:

* destroyed handles are recycled through the core's free-list, but the
  high-water mark only grows — long adaptation runs still accumulate
  capacity and lose creation-order locality;
* iteration order follows creation order, which after heavy modification
  correlates poorly with spatial locality — the cache issue the
  algorithm-oriented mesh database literature the paper cites addresses.

:func:`compact` rebuilds a mesh with dense ids ordered either by current id
(``"keep"``) or by a breadth-first traversal of the element dual graph
(``"bfs"``), which clusters neighboring elements — and through them their
vertices — in memory.  Tags, sets and classification are carried over;
returns the new mesh plus old→new element and vertex maps so callers can
remap external references.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Tuple

from .entity import Ent
from .mesh import Mesh


def bfs_element_order(mesh: Mesh) -> list:
    """Elements in breadth-first dual-graph order (all components)."""
    dim = mesh.dim()
    order = []
    seen = set()
    for seed in mesh.entities(dim):
        if seed in seen:
            continue
        queue = deque([seed])
        seen.add(seed)
        while queue:
            element = queue.popleft()
            order.append(element)
            for neighbor in mesh.second_adjacent(element, dim - 1, dim):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
    return order


def compact(
    mesh: Mesh, order: str = "bfs"
) -> Tuple[Mesh, Dict[Ent, Ent], Dict[Ent, Ent]]:
    """Rebuild ``mesh`` densely; returns (new mesh, element map, vertex map).

    ``order``: ``"bfs"`` (spatial clustering) or ``"keep"`` (current id
    order).  The maps send old handles to new handles.  Tags and sets are
    transferred for every surviving entity; classification always is.
    """
    dim = mesh.dim()
    if order == "bfs":
        elements = bfs_element_order(mesh)
    elif order == "keep":
        elements = list(mesh.entities(dim))
    else:
        raise ValueError(f"unknown order {order!r} (use 'bfs' or 'keep')")

    new_mesh = Mesh(mesh.model)
    vertex_map: Dict[Ent, Ent] = {}
    element_map: Dict[Ent, Ent] = {}
    for element in elements:
        new_verts = []
        for v in mesh.verts_of(element):
            nv = vertex_map.get(v)
            if nv is None:
                nv = new_mesh.create_vertex(
                    mesh.coords(v), mesh.classification(v)
                )
                vertex_map[v] = nv
            new_verts.append(nv)
        new_element = new_mesh.create(
            mesh.etype(element), new_verts, mesh.classification(element)
        )
        new_mesh.classify_closure_missing(new_element)
        element_map[element] = new_element

    # Isolated vertices (no elements) survive too.
    for v in mesh.entities(0):
        if v not in vertex_map and not mesh.up(v):
            vertex_map[v] = new_mesh.create_vertex(
                mesh.coords(v), mesh.classification(v)
            )

    _transfer_entity_data(mesh, new_mesh, vertex_map, element_map)
    return new_mesh, element_map, vertex_map


def _entity_map(mesh, new_mesh, vertex_map, ent) -> Ent:
    """Map any old entity to its new counterpart via vertex identity."""
    if ent.dim == 0:
        return vertex_map[ent]
    new_verts = [vertex_map[v] for v in mesh.verts_of(ent)]
    found = new_mesh.find(ent.dim, new_verts)
    if found is None:
        raise KeyError(f"{ent} has no counterpart in the compacted mesh")
    return found


def _transfer_entity_data(mesh, new_mesh, vertex_map, element_map) -> None:
    for name in mesh.tags.names():
        old_tag = mesh.tags.find(name)
        new_tag = new_mesh.tag(name)
        for ent, value in old_tag.items():
            if not mesh.has(ent):
                continue
            try:
                new_tag.set(_entity_map(mesh, new_mesh, vertex_map, ent), value)
            except KeyError:
                continue  # entity of a dimension not present anymore
    for name in mesh.sets.names():
        old_set = mesh.sets.find(name)
        new_set = new_mesh.sets.create(name, ordered=old_set.ordered)
        for ent in old_set:
            if not mesh.has(ent):
                continue
            try:
                new_set.add(_entity_map(mesh, new_mesh, vertex_map, ent))
            except KeyError:
                continue


def dead_fraction(mesh: Mesh) -> float:
    """Fraction of allocated entity slots that are dead (worth compacting)."""
    alive = sum(len(mesh._stores[d]) for d in range(4))
    capacity = sum(mesh._stores[d].capacity for d in range(4))
    if capacity == 0:
        return 0.0
    return 1.0 - alive / capacity
