"""The mesh: a complete topological representation with O(1) adjacency.

"The minimal requirement of any such mesh representation is complete
representation with which the complexity of any mesh adjacency interrogation
is O(1) (i.e., not a function of mesh size)" (paper, Section I).
:class:`Mesh` satisfies this over an array-native core
(:class:`repro.mesh.core.MeshCore`): per-dimension SoA arrays holding
one-level downward and upward adjacencies plus canonical vertex tuples;
every adjacency query — any (d, d') pair, upward or downward, one or many
levels — resolves by walking only the entities local to the query.

The mesh also carries the other per-entity state PUMI maintains:

* **geometric classification** — the association of each mesh entity to the
  highest-level geometric model entity it partly represents,
* **tags** and **sets** — the common utilities of Section II,
* dynamic modification — entities can be created and destroyed at any time
  (edge splits, collapses, migration), with upward users checked so the
  representation can never dangle.

Entity ids ARE reused (the core keeps a free-list per dimension), so any
component that keys external state by handle must register a destroy
listener via :meth:`Mesh.add_destroy_listener` to evict stale entries the
moment an entity dies — the partition and field layers do exactly that.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..gmodel.classify import classify_from_closure, classify_point
from ..gmodel.model import Model, ModelEntity
from .core import MeshCore, first_occurrence_unique
from .entity import Ent
from .sets import SetManager
from .tag import TagManager
from .topology import (
    EDGE,
    TRI,
    VERTEX,
    TypeInfo,
    type_info,
)

_INITIAL_VERTEX_CAPACITY = 16


class Mesh:
    """An unstructured mesh with full one-level adjacency (serial part).

    A distributed mesh is a collection of these, one per part, linked by the
    partition layer (:mod:`repro.partition`).
    """

    def __init__(self, model: Optional[Model] = None) -> None:
        #: The geometric model this mesh discretizes (may be None).
        self.model = model
        #: Array-native topology storage (SoA/CSR; see repro.mesh.core).
        self.core = MeshCore()
        #: EntityStore-compatible per-dimension views over the core.
        self._stores = self.core.stores()
        self._coords = np.zeros((_INITIAL_VERTEX_CAPACITY, 3), dtype=float)
        #: find-by-vertices lookup for edges/faces/regions (sorted vert tuples).
        self._lookup: Tuple[Dict[Tuple[int, ...], int], ...] = ({}, {}, {})
        self._gclass: List[Dict[int, ModelEntity]] = [{}, {}, {}, {}]
        #: Tag component (arbitrary user data per entity).
        self.tags = TagManager()
        #: Set component (named entity groups).
        self.sets = SetManager()
        self._destroy_listeners: List[Any] = []

    # ------------------------------------------------------------------
    # destroy listeners (handle-reuse safety)
    # ------------------------------------------------------------------

    def add_destroy_listener(self, fn: Callable[[Ent], None]) -> None:
        """Call ``fn(ent)`` whenever an entity is destroyed.

        Because the core free-list reuses handles, any map keyed by
        :class:`Ent` outside the mesh (partition gids, field columns) must
        evict entries eagerly or a recycled handle would alias stale state.
        Bound methods are held weakly so listeners never keep their owner
        alive.
        """
        try:
            self._destroy_listeners.append(weakref.WeakMethod(fn))
        except TypeError:
            self._destroy_listeners.append(lambda: fn)

    def _notify_destroy(self, ent: Ent) -> None:
        dead = False
        for ref in self._destroy_listeners:
            fn = ref()
            if fn is None:
                dead = True
            else:
                fn(ent)
        if dead:
            self._destroy_listeners = [
                ref for ref in self._destroy_listeners if ref() is not None
            ]

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------

    def create_vertex(
        self,
        xyz: Sequence[float],
        classification: Optional[ModelEntity] = None,
    ) -> Ent:
        """Create a vertex at ``xyz`` (2D points get z=0)."""
        idx = self.core.create(0, VERTEX, (), ())
        if idx >= len(self._coords):
            grown = np.zeros((max(2 * len(self._coords), idx + 1), 3))
            grown[: len(self._coords)] = self._coords
            self._coords = grown
        point = np.asarray(xyz, dtype=float)
        self._coords[idx] = 0.0
        self._coords[idx, : point.shape[0]] = point
        ent = Ent(0, idx)
        if classification is not None:
            self.set_classification(ent, classification)
        return ent

    def create(
        self,
        etype: int,
        verts: Sequence[Ent],
        classification: Optional[ModelEntity] = None,
    ) -> Ent:
        """Find or create the entity of type ``etype`` on ``verts``.

        Intermediate bounding entities (edges of a face, faces of a region)
        are found or created recursively, so callers may build a mesh from
        element-to-vertex connectivity alone — the usual PUMI workflow.
        ``classification``, when given, applies only to the entity itself
        (not to auto-created intermediates; see :meth:`classify_against`).
        """
        info = type_info(etype)
        if info.dim == 0:
            raise ValueError("use create_vertex for vertices")
        vert_ids = tuple(self._vert_id(v) for v in verts)
        if len(vert_ids) != info.nverts:
            raise ValueError(
                f"{info.name} needs {info.nverts} vertices, got {len(vert_ids)}"
            )
        if len(set(vert_ids)) != len(vert_ids):
            raise ValueError(f"{info.name} has repeated vertices: {vert_ids}")
        key = tuple(sorted(vert_ids))
        existing = self._lookup[info.dim - 1].get(key)
        if existing is not None:
            return Ent(info.dim, existing)
        down_ids = self._build_downward(info, vert_ids)
        idx = self.core.create(info.dim, etype, vert_ids, down_ids)
        core = self.core
        for down_idx in down_ids:
            core.add_up(info.dim - 1, down_idx, idx)
        self._lookup[info.dim - 1][key] = idx
        ent = Ent(info.dim, idx)
        if classification is not None:
            self.set_classification(ent, classification)
        return ent

    def _build_downward(
        self, info: TypeInfo, vert_ids: Tuple[int, ...]
    ) -> Tuple[int, ...]:
        """Find-or-create the one-level boundary of a new entity."""
        vert_ents = [Ent(0, v) for v in vert_ids]
        if info.dim == 1:
            return vert_ids
        if info.dim == 2:
            return tuple(
                self.create(EDGE, (vert_ents[a], vert_ents[b])).idx
                for a, b in info.edges
            )
        return tuple(
            self.create(ftype, [vert_ents[i] for i in locals_]).idx
            for ftype, locals_ in info.faces
        )

    # ------------------------------------------------------------------
    # destruction
    # ------------------------------------------------------------------

    def destroy(self, ent: Ent, cascade: bool = False) -> None:
        """Destroy ``ent``; with ``cascade`` also remove orphaned boundary.

        Raises if higher-dimension entities still use ``ent`` — the complete
        representation must never dangle.
        """
        core = self.core
        core.check(ent.dim, ent.idx)
        if core.nup[ent.dim][ent.idx]:
            raise ValueError(f"cannot destroy {ent}: higher entities remain")
        down_ids = core.down_row(ent.dim, ent.idx)
        if ent.dim >= 1:
            self._lookup[ent.dim - 1].pop(
                tuple(sorted(core.verts_row(ent.dim, ent.idx))), None
            )
        core.destroy(ent.dim, ent.idx)
        self._gclass[ent.dim].pop(ent.idx, None)
        self.tags.drop_entity(ent)
        self.sets.drop_entity(ent)
        self._notify_destroy(ent)
        if ent.dim > 0:
            below = ent.dim - 1
            for down_idx in down_ids:
                core.remove_up(below, down_idx, ent.idx)
            if cascade:
                for down_idx in down_ids:
                    if core.is_alive(below, down_idx) and not core.nup[below][down_idx]:
                        self.destroy(Ent(below, down_idx), cascade=True)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def has(self, ent: Ent) -> bool:
        """Whether ``ent`` refers to a live entity of this mesh."""
        return 0 <= ent.dim <= 3 and self.core.is_alive(ent.dim, ent.idx)

    def find(self, dim: int, verts: Sequence[Ent]) -> Optional[Ent]:
        """The live entity of ``dim`` on exactly these vertices, or None.

        O(1): every non-vertex dimension keeps a sorted-vertex-tuple lookup
        (regions included — no neighbourhood scan).
        """
        if not 1 <= dim <= 3:
            raise ValueError(f"find() supports dims 1..3, got {dim}")
        vert_ids = tuple(sorted(self._vert_id(v) for v in verts))
        idx = self._lookup[dim - 1].get(vert_ids)
        return Ent(dim, idx) if idx is not None else None

    def count(self, dim: int) -> int:
        """Number of live entities of dimension ``dim`` — O(1)."""
        return self.core.n_alive[dim]

    def entities(self, dim: int) -> Iterator[Ent]:
        """Live entities of one dimension in ascending id order."""
        for idx in self.core.live_ids(dim).tolist():
            yield Ent(dim, idx)

    def entity_ids(self, dim: int) -> np.ndarray:
        """Live entity ids of one dimension, ascending (array fast path)."""
        return self.core.live_ids(dim)

    def etype(self, ent: Ent) -> int:
        self.core.check(ent.dim, ent.idx)
        return int(self.core.etype[ent.dim][ent.idx])

    def type_name(self, ent: Ent) -> str:
        return type_info(self.etype(ent)).name

    def dim(self) -> int:
        """The mesh dimension: highest dimension with live entities."""
        for dim in (3, 2, 1, 0):
            if self.core.n_alive[dim]:
                return dim
        return 0

    # -- adjacency ---------------------------------------------------------

    def verts_of(self, ent: Ent) -> List[Ent]:
        """Canonical-order bounding vertices of ``ent``."""
        if ent.dim == 0:
            self.core.check(0, ent.idx)
            return [ent]
        self.core.check(ent.dim, ent.idx)
        return [Ent(0, v) for v in self.core.verts_row(ent.dim, ent.idx)]

    def down(self, ent: Ent) -> List[Ent]:
        """One-level downward adjacency in canonical order."""
        if ent.dim == 0:
            return []
        self.core.check(ent.dim, ent.idx)
        return [Ent(ent.dim - 1, i) for i in self.core.down_row(ent.dim, ent.idx)]

    def up(self, ent: Ent) -> List[Ent]:
        """One-level upward adjacency (ascending id order)."""
        if ent.dim == 3:
            return []
        self.core.check(ent.dim, ent.idx)
        return [Ent(ent.dim + 1, i) for i in self.core.up_row(ent.dim, ent.idx)]

    def adjacent(self, ent: Ent, dim: int) -> List[Ent]:
        """All entities of dimension ``dim`` adjacent to ``ent``.

        Complexity is proportional to the local neighbourhood only — the
        complete-representation guarantee.  ``dim == ent.dim`` returns
        ``[ent]`` for uniformity.  Order is first-occurrence of the
        frontier walk, hop by hop.
        """
        if dim == ent.dim:
            return [ent]
        return [Ent(dim, i) for i in self._adjacent_ids(ent, dim)]

    def _adjacent_ids(self, ent: Ent, dim: int) -> List[int]:
        """Integer-handle adjacency walk (no Ent churn in the hops)."""
        core = self.core
        core.check(ent.dim, ent.idx)
        if dim < ent.dim:
            if dim == 0:
                return list(core.verts_row(ent.dim, ent.idx))
            frontier = list(core.down_row(ent.dim, ent.idx))
            at = ent.dim - 1
            while frontier and at != dim:
                nxt: List[int] = []
                seen = set()
                for idx in frontier:
                    for lower in core.down_row(at, idx):
                        if lower not in seen:
                            seen.add(lower)
                            nxt.append(lower)
                frontier = nxt
                at -= 1
            return frontier
        frontier = core.up_row(ent.dim, ent.idx)
        at = ent.dim + 1
        while frontier and at != dim:
            nxt = []
            seen = set()
            for idx in frontier:
                for upper in core.up_row(at, idx):
                    if upper not in seen:
                        seen.add(upper)
                        nxt.append(upper)
            frontier = nxt
            at += 1
        return frontier

    def second_adjacent(self, ent: Ent, bridge_dim: int, target_dim: int) -> List[Ent]:
        """Entities of ``target_dim`` sharing a ``bridge_dim`` entity with ``ent``.

        The classic second-order adjacency, e.g. face-neighbour regions via
        ``bridge_dim=2``; ``ent`` itself is excluded.
        """
        if bridge_dim == ent.dim:
            bridges = [ent.idx]
        else:
            bridges = self._adjacent_ids(ent, bridge_dim)
        out: List[int] = []
        seen = {ent.idx} if target_dim == ent.dim else set()
        for bridge in bridges:
            targets = (
                [bridge]
                if target_dim == bridge_dim
                else self._adjacent_ids(Ent(bridge_dim, bridge), target_dim)
            )
            for other in targets:
                if other not in seen:
                    seen.add(other)
                    out.append(other)
        return [Ent(target_dim, i) for i in out]

    # -- coordinates ---------------------------------------------------------

    def coords(self, ent: Ent) -> np.ndarray:
        """Coordinates of a vertex (copy; 3-vector, z=0 for 2D meshes)."""
        if ent.dim != 0:
            raise ValueError(f"only vertices carry coordinates, got {ent}")
        self.core.check(0, ent.idx)
        return self._coords[ent.idx].copy()

    def set_coords(self, ent: Ent, xyz: Sequence[float]) -> None:
        if ent.dim != 0:
            raise ValueError(f"only vertices carry coordinates, got {ent}")
        self.core.check(0, ent.idx)
        point = np.asarray(xyz, dtype=float)
        self._coords[ent.idx, : point.shape[0]] = point

    def centroid(self, ent: Ent) -> np.ndarray:
        """Average of ``ent``'s vertex coordinates."""
        if ent.dim == 0:
            return self.coords(ent)
        self.core.check(ent.dim, ent.idx)
        ids = self.core.verts[ent.dim][ent.idx, : self.core.nverts[ent.dim][ent.idx]]
        return self._coords[ids].mean(axis=0)

    def coords_view(self) -> np.ndarray:
        """Read-only view of the raw coordinate array (rows = vertex ids)."""
        view = self._coords[: self.core.top[0]]
        view.flags.writeable = False
        return view

    # -- classification ------------------------------------------------------

    def classification(self, ent: Ent) -> Optional[ModelEntity]:
        """Geometric classification of ``ent`` (None when unset)."""
        return self._gclass[ent.dim].get(ent.idx)

    def set_classification(self, ent: Ent, gent: ModelEntity) -> None:
        if gent.dim < ent.dim:
            raise ValueError(
                f"{ent} cannot be classified on lower-dimension {gent}"
            )
        self.core.check(ent.dim, ent.idx)
        self._gclass[ent.dim][ent.idx] = gent

    def classify_against(self, model: Optional[Model] = None, tol: float = 1e-9) -> None:
        """(Re)classify every entity against a geometric model.

        Vertices classify by point location; higher entities by the closure
        rule over their vertices' classifications.
        """
        model = model if model is not None else self.model
        if model is None:
            raise ValueError("no geometric model to classify against")
        self.model = model
        for vert in self.entities(0):
            gent = classify_point(model, self.coords(vert), tol)
            if gent is None:
                raise ValueError(
                    f"vertex {vert} at {self.coords(vert)} lies outside the model"
                )
            self.set_classification(vert, gent)
        for dim in range(1, self.dim() + 1):
            for ent in self.entities(dim):
                gents = [self.classification(v) for v in self.verts_of(ent)]
                self.set_classification(ent, classify_from_closure(model, gents))

    def classify_closure_missing(self, ent: Ent) -> None:
        """Fill missing classification on ``ent``'s closure (incl. itself).

        Used by mesh modification: a newly created element's auto-created
        boundary entities inherit classification from their vertices via the
        closure rule.  Entities with unclassified vertices are skipped.
        """
        if self.model is None:
            return
        for d in range(1, ent.dim + 1):
            for sub in self.adjacent(ent, d):
                if self.classification(sub) is not None:
                    continue
                gents = [self.classification(v) for v in self.verts_of(sub)]
                if any(g is None for g in gents):
                    continue
                self.set_classification(
                    sub, classify_from_closure(self.model, gents)
                )

    # -- misc -----------------------------------------------------------------

    def tag(self, name: str):
        """Get or create the tag ``name`` (shortcut to the tag manager)."""
        return self.tags.create(name)

    def entity_counts(self) -> Tuple[int, int, int, int]:
        """(vertices, edges, faces, regions) — the paper's balance metrics."""
        return (self.count(0), self.count(1), self.count(2), self.count(3))

    def __repr__(self) -> str:
        v, e, f, r = self.entity_counts()
        return f"Mesh(verts={v}, edges={e}, faces={f}, regions={r})"

    def _vert_id(self, v: Any) -> int:
        if isinstance(v, Ent):
            if v.dim != 0:
                raise ValueError(f"expected a vertex handle, got {v}")
            if not self.core.is_alive(0, v.idx):
                raise KeyError(f"vertex {v.idx} does not exist")
            return v.idx
        raise TypeError(f"expected an Ent vertex handle, got {type(v).__name__}")


def _ordered_unique(items: Iterator[Ent]) -> List[Ent]:
    """First-occurrence dedupe; array inputs take the vectorized path."""
    if isinstance(items, np.ndarray):
        return first_occurrence_unique(items).tolist()
    seen: set = set()
    out: List[Ent] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out
