"""The mesh: a complete topological representation with O(1) adjacency.

"The minimal requirement of any such mesh representation is complete
representation with which the complexity of any mesh adjacency interrogation
is O(1) (i.e., not a function of mesh size)" (paper, Section I).
:class:`Mesh` satisfies this with four per-dimension entity stores holding
one-level downward and upward adjacencies plus canonical vertex tuples;
every adjacency query — any (d, d') pair, upward or downward, one or many
levels — resolves by walking only the entities local to the query.

The mesh also carries the other per-entity state PUMI maintains:

* **geometric classification** — the association of each mesh entity to the
  highest-level geometric model entity it partly represents,
* **tags** and **sets** — the common utilities of Section II,
* dynamic modification — entities can be created and destroyed at any time
  (edge splits, collapses, migration), with upward users checked so the
  representation can never dangle.

Entity ids are never reused (see :mod:`repro.mesh.store`), so handles held
across modification either stay valid or refer to provably-dead entities.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..gmodel.classify import classify_from_closure, classify_point
from ..gmodel.model import Model, ModelEntity
from .entity import Ent
from .sets import SetManager
from .store import EntityStore
from .tag import TagManager
from .topology import (
    EDGE,
    TRI,
    VERTEX,
    TypeInfo,
    type_info,
)

_INITIAL_VERTEX_CAPACITY = 16


class Mesh:
    """An unstructured mesh with full one-level adjacency (serial part).

    A distributed mesh is a collection of these, one per part, linked by the
    partition layer (:mod:`repro.partition`).
    """

    def __init__(self, model: Optional[Model] = None) -> None:
        #: The geometric model this mesh discretizes (may be None).
        self.model = model
        self._stores = [EntityStore(d) for d in range(4)]
        self._coords = np.zeros((_INITIAL_VERTEX_CAPACITY, 3), dtype=float)
        #: find-by-vertices lookup for edges and faces (sorted vert tuples).
        self._lookup: Tuple[Dict[Tuple[int, ...], int], ...] = ({}, {})
        self._gclass: List[Dict[int, ModelEntity]] = [{}, {}, {}, {}]
        #: Tag component (arbitrary user data per entity).
        self.tags = TagManager()
        #: Set component (named entity groups).
        self.sets = SetManager()

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------

    def create_vertex(
        self,
        xyz: Sequence[float],
        classification: Optional[ModelEntity] = None,
    ) -> Ent:
        """Create a vertex at ``xyz`` (2D points get z=0)."""
        store = self._stores[0]
        idx = store.create(VERTEX, (store.capacity,), ())
        if idx >= len(self._coords):
            grown = np.zeros((max(2 * len(self._coords), idx + 1), 3))
            grown[: len(self._coords)] = self._coords
            self._coords = grown
        point = np.asarray(xyz, dtype=float)
        self._coords[idx, : point.shape[0]] = point
        ent = Ent(0, idx)
        if classification is not None:
            self.set_classification(ent, classification)
        return ent

    def create(
        self,
        etype: int,
        verts: Sequence[Ent],
        classification: Optional[ModelEntity] = None,
    ) -> Ent:
        """Find or create the entity of type ``etype`` on ``verts``.

        Intermediate bounding entities (edges of a face, faces of a region)
        are found or created recursively, so callers may build a mesh from
        element-to-vertex connectivity alone — the usual PUMI workflow.
        ``classification``, when given, applies only to the entity itself
        (not to auto-created intermediates; see :meth:`classify_against`).
        """
        info = type_info(etype)
        if info.dim == 0:
            raise ValueError("use create_vertex for vertices")
        vert_ids = tuple(self._vert_id(v) for v in verts)
        if len(vert_ids) != info.nverts:
            raise ValueError(
                f"{info.name} needs {info.nverts} vertices, got {len(vert_ids)}"
            )
        if len(set(vert_ids)) != len(vert_ids):
            raise ValueError(f"{info.name} has repeated vertices: {vert_ids}")
        existing = self.find(info.dim, verts)
        if existing is not None:
            return existing
        down_ids = self._build_downward(info, vert_ids)
        store = self._stores[info.dim]
        idx = store.create(etype, vert_ids, down_ids)
        below = self._stores[info.dim - 1]
        for down_idx in down_ids:
            below.add_up(down_idx, idx)
        if info.dim <= 2:
            self._lookup[info.dim - 1][tuple(sorted(vert_ids))] = idx
        ent = Ent(info.dim, idx)
        if classification is not None:
            self.set_classification(ent, classification)
        return ent

    def _build_downward(
        self, info: TypeInfo, vert_ids: Tuple[int, ...]
    ) -> Tuple[int, ...]:
        """Find-or-create the one-level boundary of a new entity."""
        vert_ents = [Ent(0, v) for v in vert_ids]
        if info.dim == 1:
            return vert_ids
        if info.dim == 2:
            return tuple(
                self.create(EDGE, (vert_ents[a], vert_ents[b])).idx
                for a, b in info.edges
            )
        return tuple(
            self.create(ftype, [vert_ents[i] for i in locals_]).idx
            for ftype, locals_ in info.faces
        )

    # ------------------------------------------------------------------
    # destruction
    # ------------------------------------------------------------------

    def destroy(self, ent: Ent, cascade: bool = False) -> None:
        """Destroy ``ent``; with ``cascade`` also remove orphaned boundary.

        Raises if higher-dimension entities still use ``ent`` — the complete
        representation must never dangle.
        """
        store = self._stores[ent.dim]
        if store.up_count(ent.idx):
            raise ValueError(f"cannot destroy {ent}: higher entities remain")
        down_ids = store.down(ent.idx)
        if ent.dim in (1, 2):
            self._lookup[ent.dim - 1].pop(
                tuple(sorted(store.verts(ent.idx))), None
            )
        store.destroy(ent.idx)
        self._gclass[ent.dim].pop(ent.idx, None)
        self.tags.drop_entity(ent)
        self.sets.drop_entity(ent)
        if ent.dim > 0:
            below = self._stores[ent.dim - 1]
            for down_idx in down_ids:
                below.remove_up(down_idx, ent.idx)
            if cascade:
                for down_idx in down_ids:
                    lower = Ent(ent.dim - 1, down_idx)
                    if below.alive(down_idx) and below.up_count(down_idx) == 0:
                        self.destroy(lower, cascade=True)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def has(self, ent: Ent) -> bool:
        """Whether ``ent`` refers to a live entity of this mesh."""
        return 0 <= ent.dim <= 3 and self._stores[ent.dim].alive(ent.idx)

    def find(self, dim: int, verts: Sequence[Ent]) -> Optional[Ent]:
        """The live entity of ``dim`` on exactly these vertices, or None."""
        vert_ids = tuple(sorted(self._vert_id(v) for v in verts))
        if dim in (1, 2):
            idx = self._lookup[dim - 1].get(vert_ids)
            return Ent(dim, idx) if idx is not None else None
        if dim == 3:
            # Regions have no lookup table; search the first vertex's regions.
            first = Ent(0, vert_ids[0])
            for reg in self.adjacent(first, 3):
                if tuple(sorted(self._stores[3].verts(reg.idx))) == vert_ids:
                    return reg
            return None
        raise ValueError(f"find() supports dims 1..3, got {dim}")

    def count(self, dim: int) -> int:
        """Number of live entities of dimension ``dim`` — O(1)."""
        return len(self._stores[dim])

    def entities(self, dim: int) -> Iterator[Ent]:
        """Live entities of one dimension in ascending id order."""
        for idx in self._stores[dim].indices():
            yield Ent(dim, idx)

    def etype(self, ent: Ent) -> int:
        return self._stores[ent.dim].etype(ent.idx)

    def type_name(self, ent: Ent) -> str:
        return type_info(self.etype(ent)).name

    def dim(self) -> int:
        """The mesh dimension: highest dimension with live entities."""
        for dim in (3, 2, 1, 0):
            if self.count(dim):
                return dim
        return 0

    # -- adjacency ---------------------------------------------------------

    def verts_of(self, ent: Ent) -> List[Ent]:
        """Canonical-order bounding vertices of ``ent``."""
        if ent.dim == 0:
            self._stores[0]._check(ent.idx)
            return [ent]
        return [Ent(0, v) for v in self._stores[ent.dim].verts(ent.idx)]

    def down(self, ent: Ent) -> List[Ent]:
        """One-level downward adjacency in canonical order."""
        if ent.dim == 0:
            return []
        return [Ent(ent.dim - 1, i) for i in self._stores[ent.dim].down(ent.idx)]

    def up(self, ent: Ent) -> List[Ent]:
        """One-level upward adjacency."""
        if ent.dim == 3:
            return []
        return [Ent(ent.dim + 1, i) for i in self._stores[ent.dim].up(ent.idx)]

    def adjacent(self, ent: Ent, dim: int) -> List[Ent]:
        """All entities of dimension ``dim`` adjacent to ``ent``.

        Complexity is proportional to the local neighbourhood only — the
        complete-representation guarantee.  ``dim == ent.dim`` returns
        ``[ent]`` for uniformity.
        """
        if dim == ent.dim:
            return [ent]
        if dim < ent.dim:
            if dim == 0:
                return self.verts_of(ent)
            frontier = self.down(ent)
            while frontier and frontier[0].dim != dim:
                frontier = _ordered_unique(
                    lower for item in frontier for lower in self.down(item)
                )
            return frontier
        frontier = self.up(ent)
        while frontier and frontier[0].dim != dim:
            frontier = _ordered_unique(
                upper for item in frontier for upper in self.up(item)
            )
        return frontier

    def second_adjacent(self, ent: Ent, bridge_dim: int, target_dim: int) -> List[Ent]:
        """Entities of ``target_dim`` sharing a ``bridge_dim`` entity with ``ent``.

        The classic second-order adjacency, e.g. face-neighbour regions via
        ``bridge_dim=2``; ``ent`` itself is excluded.
        """
        result: List[Ent] = []
        seen = {ent}
        for bridge in self.adjacent(ent, bridge_dim):
            for other in self.adjacent(bridge, target_dim):
                if other not in seen:
                    seen.add(other)
                    result.append(other)
        return result

    # -- coordinates ---------------------------------------------------------

    def coords(self, ent: Ent) -> np.ndarray:
        """Coordinates of a vertex (copy; 3-vector, z=0 for 2D meshes)."""
        if ent.dim != 0:
            raise ValueError(f"only vertices carry coordinates, got {ent}")
        self._stores[0]._check(ent.idx)
        return self._coords[ent.idx].copy()

    def set_coords(self, ent: Ent, xyz: Sequence[float]) -> None:
        if ent.dim != 0:
            raise ValueError(f"only vertices carry coordinates, got {ent}")
        self._stores[0]._check(ent.idx)
        point = np.asarray(xyz, dtype=float)
        self._coords[ent.idx, : point.shape[0]] = point

    def centroid(self, ent: Ent) -> np.ndarray:
        """Average of ``ent``'s vertex coordinates."""
        ids = [v.idx for v in self.verts_of(ent)]
        return self._coords[ids].mean(axis=0)

    def coords_view(self) -> np.ndarray:
        """Read-only view of the raw coordinate array (rows = vertex ids)."""
        view = self._coords[: self._stores[0].capacity]
        view.flags.writeable = False
        return view

    # -- classification ------------------------------------------------------

    def classification(self, ent: Ent) -> Optional[ModelEntity]:
        """Geometric classification of ``ent`` (None when unset)."""
        return self._gclass[ent.dim].get(ent.idx)

    def set_classification(self, ent: Ent, gent: ModelEntity) -> None:
        if gent.dim < ent.dim:
            raise ValueError(
                f"{ent} cannot be classified on lower-dimension {gent}"
            )
        self._stores[ent.dim]._check(ent.idx)
        self._gclass[ent.dim][ent.idx] = gent

    def classify_against(self, model: Optional[Model] = None, tol: float = 1e-9) -> None:
        """(Re)classify every entity against a geometric model.

        Vertices classify by point location; higher entities by the closure
        rule over their vertices' classifications.
        """
        model = model if model is not None else self.model
        if model is None:
            raise ValueError("no geometric model to classify against")
        self.model = model
        for vert in self.entities(0):
            gent = classify_point(model, self.coords(vert), tol)
            if gent is None:
                raise ValueError(
                    f"vertex {vert} at {self.coords(vert)} lies outside the model"
                )
            self.set_classification(vert, gent)
        for dim in range(1, self.dim() + 1):
            for ent in self.entities(dim):
                gents = [self.classification(v) for v in self.verts_of(ent)]
                self.set_classification(ent, classify_from_closure(model, gents))

    def classify_closure_missing(self, ent: Ent) -> None:
        """Fill missing classification on ``ent``'s closure (incl. itself).

        Used by mesh modification: a newly created element's auto-created
        boundary entities inherit classification from their vertices via the
        closure rule.  Entities with unclassified vertices are skipped.
        """
        if self.model is None:
            return
        for d in range(1, ent.dim + 1):
            for sub in self.adjacent(ent, d):
                if self.classification(sub) is not None:
                    continue
                gents = [self.classification(v) for v in self.verts_of(sub)]
                if any(g is None for g in gents):
                    continue
                self.set_classification(
                    sub, classify_from_closure(self.model, gents)
                )

    # -- misc -----------------------------------------------------------------

    def tag(self, name: str):
        """Get or create the tag ``name`` (shortcut to the tag manager)."""
        return self.tags.create(name)

    def entity_counts(self) -> Tuple[int, int, int, int]:
        """(vertices, edges, faces, regions) — the paper's balance metrics."""
        return (self.count(0), self.count(1), self.count(2), self.count(3))

    def __repr__(self) -> str:
        v, e, f, r = self.entity_counts()
        return f"Mesh(verts={v}, edges={e}, faces={f}, regions={r})"

    def _vert_id(self, v: Any) -> int:
        if isinstance(v, Ent):
            if v.dim != 0:
                raise ValueError(f"expected a vertex handle, got {v}")
            if not self._stores[0].alive(v.idx):
                raise KeyError(f"vertex {v.idx} does not exist")
            return v.idx
        raise TypeError(f"expected an Ent vertex handle, got {type(v).__name__}")


def _ordered_unique(items: Iterator[Ent]) -> List[Ent]:
    seen: set = set()
    out: List[Ent] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out
