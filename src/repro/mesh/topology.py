"""Canonical topology tables for mesh entity types.

The unstructured mesh representation is "defined as a boundary representation
using the base topological entities of vertex (0D), edge (1D), face (2D),
region (3D)" (paper, Section II).  This module fixes the canonical ordering
of every supported cell type's bounding entities — which vertices form its
edges, which vertices form each of its faces — matching the conventions of
classic mesh databases (and of VTK, which `repro.mesh.io` targets).

Supported types: VERTEX, EDGE, TRI, QUAD, TET, HEX, PRISM (wedge), PYRAMID.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Entity type codes.  Stable small ints; order groups types by dimension.
VERTEX = 0
EDGE = 1
TRI = 2
QUAD = 3
TET = 4
PYRAMID = 5
PRISM = 6
HEX = 7

#: Human-readable names for messages and IO.
TYPE_NAMES = {
    VERTEX: "vertex",
    EDGE: "edge",
    TRI: "tri",
    QUAD: "quad",
    TET: "tet",
    PYRAMID: "pyramid",
    PRISM: "prism",
    HEX: "hex",
}

#: VTK legacy cell-type ids (for repro.mesh.io).
VTK_TYPES = {
    VERTEX: 1,
    EDGE: 3,
    TRI: 5,
    QUAD: 9,
    TET: 10,
    PYRAMID: 14,
    PRISM: 13,
    HEX: 12,
}


@dataclass(frozen=True)
class TypeInfo:
    """Topology of one entity type in canonical vertex ordering."""

    code: int
    dim: int
    nverts: int
    #: Bounding edges as pairs of local vertex indices.
    edges: Tuple[Tuple[int, int], ...]
    #: Bounding faces as (face type, local vertex indices); empty below 3D.
    faces: Tuple[Tuple[int, Tuple[int, ...]], ...]

    @property
    def name(self) -> str:
        return TYPE_NAMES[self.code]

    @property
    def nedges(self) -> int:
        return len(self.edges)

    @property
    def nfaces(self) -> int:
        return len(self.faces)

    def downward_count(self, dim: int) -> int:
        """Number of bounding entities of dimension ``dim``."""
        if dim == self.dim - 1:
            if self.dim == 1:
                return self.nverts
            if self.dim == 2:
                return self.nedges
            return self.nfaces
        if dim == 0:
            return self.nverts
        if dim == 1:
            return self.nedges
        raise ValueError(f"no downward entities of dim {dim} for {self.name}")


TYPES: Dict[int, TypeInfo] = {
    VERTEX: TypeInfo(VERTEX, 0, 1, (), ()),
    EDGE: TypeInfo(EDGE, 1, 2, (), ()),
    TRI: TypeInfo(
        TRI, 2, 3,
        edges=((0, 1), (1, 2), (2, 0)),
        faces=(),
    ),
    QUAD: TypeInfo(
        QUAD, 2, 4,
        edges=((0, 1), (1, 2), (2, 3), (3, 0)),
        faces=(),
    ),
    TET: TypeInfo(
        TET, 3, 4,
        edges=((0, 1), (1, 2), (2, 0), (0, 3), (1, 3), (2, 3)),
        faces=(
            (TRI, (0, 2, 1)),
            (TRI, (0, 1, 3)),
            (TRI, (1, 2, 3)),
            (TRI, (2, 0, 3)),
        ),
    ),
    PYRAMID: TypeInfo(
        PYRAMID, 3, 5,
        edges=((0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4), (2, 4), (3, 4)),
        faces=(
            (QUAD, (0, 3, 2, 1)),
            (TRI, (0, 1, 4)),
            (TRI, (1, 2, 4)),
            (TRI, (2, 3, 4)),
            (TRI, (3, 0, 4)),
        ),
    ),
    PRISM: TypeInfo(
        PRISM, 3, 6,
        edges=(
            (0, 1), (1, 2), (2, 0),
            (3, 4), (4, 5), (5, 3),
            (0, 3), (1, 4), (2, 5),
        ),
        faces=(
            (TRI, (0, 2, 1)),
            (TRI, (3, 4, 5)),
            (QUAD, (0, 1, 4, 3)),
            (QUAD, (1, 2, 5, 4)),
            (QUAD, (2, 0, 3, 5)),
        ),
    ),
    HEX: TypeInfo(
        HEX, 3, 8,
        edges=(
            (0, 1), (1, 2), (2, 3), (3, 0),
            (4, 5), (5, 6), (6, 7), (7, 4),
            (0, 4), (1, 5), (2, 6), (3, 7),
        ),
        faces=(
            (QUAD, (0, 3, 2, 1)),
            (QUAD, (4, 5, 6, 7)),
            (QUAD, (0, 1, 5, 4)),
            (QUAD, (1, 2, 6, 5)),
            (QUAD, (2, 3, 7, 6)),
            (QUAD, (3, 0, 4, 7)),
        ),
    ),
}


def type_info(code: int) -> TypeInfo:
    """Topology table of entity type ``code``; raises on unknown codes."""
    try:
        return TYPES[code]
    except KeyError:
        raise ValueError(f"unknown entity type code {code}") from None


def types_of_dim(dim: int) -> Tuple[int, ...]:
    """All entity type codes of topological dimension ``dim``."""
    return tuple(code for code, info in TYPES.items() if info.dim == dim)


def face_type_for_verts(nverts: int) -> int:
    """Face type implied by a vertex count (3 → TRI, 4 → QUAD)."""
    if nverts == 3:
        return TRI
    if nverts == 4:
        return QUAD
    raise ValueError(f"no face type with {nverts} vertices")
