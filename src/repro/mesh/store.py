"""Per-dimension entity storage with one-level adjacency.

Each :class:`EntityStore` owns all entities of one topological dimension of a
mesh: their type codes, canonical vertex tuples, one-level downward adjacency
(ids into the store one dimension below) and one-level upward adjacency (ids
one dimension above).  Together the four stores of a mesh realize the
*complete representation* the paper requires: every adjacency of an entity is
reachable in time proportional to the answer's size, never to the mesh size.

Ids are allocated monotonically and never reused: destroying an entity marks
its slot dead.  Stale handles therefore can never alias a later entity — a
deliberate safety choice for a simulator that performs heavy mesh
modification (the cost is that id ranges are not compacted until
:meth:`EntityStore.compact_map` is consulted by the IO layer).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .topology import type_info


class EntityStore:
    """Container of all mesh entities of one dimension."""

    def __init__(self, dim: int) -> None:
        self.dim = dim
        self._etype: List[int] = []
        self._verts: List[Tuple[int, ...]] = []
        self._down: List[Tuple[int, ...]] = []
        self._up: List[List[int]] = []
        self._alive: List[bool] = []
        self._n_alive = 0

    # -- creation / destruction -------------------------------------------

    def create(
        self,
        etype: int,
        verts: Tuple[int, ...],
        down: Tuple[int, ...],
    ) -> int:
        """Append a live entity; returns its id."""
        info = type_info(etype)
        if info.dim != self.dim:
            raise ValueError(
                f"type {info.name} has dim {info.dim}, store holds dim {self.dim}"
            )
        if len(verts) != info.nverts:
            raise ValueError(
                f"{info.name} needs {info.nverts} vertices, got {len(verts)}"
            )
        idx = len(self._etype)
        self._etype.append(etype)
        self._verts.append(tuple(verts))
        self._down.append(tuple(down))
        self._up.append([])
        self._alive.append(True)
        self._n_alive += 1
        return idx

    def destroy(self, idx: int) -> None:
        """Mark ``idx`` dead.  The caller must have cleared upward users."""
        self._check(idx)
        if self._up[idx]:
            raise ValueError(
                f"cannot destroy dim-{self.dim} entity {idx}: still bounds "
                f"{len(self._up[idx])} higher entities"
            )
        self._alive[idx] = False
        self._n_alive -= 1
        # Release adjacency memory for the dead slot.
        self._verts[idx] = ()
        self._down[idx] = ()

    # -- accessors ---------------------------------------------------------

    def alive(self, idx: int) -> bool:
        return 0 <= idx < len(self._alive) and self._alive[idx]

    def etype(self, idx: int) -> int:
        self._check(idx)
        return self._etype[idx]

    def verts(self, idx: int) -> Tuple[int, ...]:
        """Canonical-order vertex ids of entity ``idx``."""
        self._check(idx)
        return self._verts[idx]

    def down(self, idx: int) -> Tuple[int, ...]:
        """One-level downward adjacency (ids of dimension ``dim - 1``)."""
        self._check(idx)
        return self._down[idx]

    def up(self, idx: int) -> List[int]:
        """One-level upward adjacency (ids of dimension ``dim + 1``)."""
        self._check(idx)
        return list(self._up[idx])

    def add_up(self, idx: int, upper: int) -> None:
        self._check(idx)
        self._up[idx].append(upper)

    def remove_up(self, idx: int, upper: int) -> None:
        self._check(idx)
        try:
            self._up[idx].remove(upper)
        except ValueError:
            raise ValueError(
                f"dim-{self.dim} entity {idx} does not bound {upper}"
            ) from None

    def up_count(self, idx: int) -> int:
        self._check(idx)
        return len(self._up[idx])

    # -- iteration / size ----------------------------------------------------

    def __len__(self) -> int:
        """Number of *live* entities."""
        return self._n_alive

    @property
    def capacity(self) -> int:
        """Total slots ever allocated (live + dead)."""
        return len(self._etype)

    def indices(self) -> Iterator[int]:
        """Live ids in ascending order."""
        for idx, alive in enumerate(self._alive):
            if alive:
                yield idx

    def compact_map(self) -> Dict[int, int]:
        """Mapping live id → dense 0-based index (for IO/export)."""
        return {idx: pos for pos, idx in enumerate(self.indices())}

    def _check(self, idx: int) -> None:
        if not self.alive(idx):
            raise KeyError(f"dim-{self.dim} entity {idx} does not exist")
