"""Mesh component: complete unstructured mesh representation and utilities.

Reproduces the "Mesh" box of PUMI's software structure (Fig. 1): entity
stores with O(1) adjacency, geometric classification, the iterator/set/tag
common utilities, generators, quality, verification, and IO.
"""

from .build import classify_cheap, from_connectivity
from .entity import Ent, edge, face, region, vert
from .generate import (
    box_hex,
    box_tet,
    delaunay_rect,
    extrude_to_prisms,
    rect_quad,
    rect_tri,
)
from .io import load_native, save_native, write_vtk
from .iterator import boundary_entities, classified_on, count, iterate
from .core import MeshCore, first_occurrence_unique
from .mesh import Mesh
from .quality import (
    mean_ratio_tet,
    mean_ratio_tri,
    measure,
    quality,
    quality_histogram,
    tet_volume,
    tri_area,
    worst_quality,
)
from .reorder import bfs_element_order, compact, dead_fraction
from .sets import EntitySet, SetManager
from .stats import MeshStats, edge_length_histogram, memory_estimate, mesh_stats
from .store import EntityStore
from .tag import Tag, TagManager
from .topology import (
    EDGE,
    HEX,
    PRISM,
    PYRAMID,
    QUAD,
    TET,
    TRI,
    TYPE_NAMES,
    VERTEX,
    TypeInfo,
    face_type_for_verts,
    type_info,
    types_of_dim,
)
from .verify import MeshInvalidError, verify

__all__ = [
    "EDGE",
    "Ent",
    "EntitySet",
    "EntityStore",
    "MeshCore",
    "HEX",
    "Mesh",
    "MeshInvalidError",
    "MeshStats",
    "PRISM",
    "PYRAMID",
    "QUAD",
    "SetManager",
    "TET",
    "TRI",
    "TYPE_NAMES",
    "Tag",
    "TagManager",
    "TypeInfo",
    "VERTEX",
    "bfs_element_order",
    "boundary_entities",
    "box_hex",
    "box_tet",
    "classified_on",
    "classify_cheap",
    "compact",
    "dead_fraction",
    "count",
    "delaunay_rect",
    "edge_length_histogram",
    "edge",
    "extrude_to_prisms",
    "face",
    "face_type_for_verts",
    "first_occurrence_unique",
    "from_connectivity",
    "iterate",
    "load_native",
    "mean_ratio_tet",
    "mean_ratio_tri",
    "measure",
    "memory_estimate",
    "mesh_stats",
    "quality",
    "quality_histogram",
    "rect_quad",
    "rect_tri",
    "region",
    "save_native",
    "tet_volume",
    "tri_area",
    "type_info",
    "types_of_dim",
    "vert",
    "verify",
    "worst_quality",
    "write_vtk",
]
