"""Tag component: attach arbitrary user data to arbitrary mesh entities.

One of the three common utilities the paper requires of both the geometric
model and the mesh: "(iii) Tag: component for attaching arbitrary user data
to arbitrary data or set with common tagging requirements" (Section II,
citing the ITAPS/MOAB interfaces).  Tags are named, sparse maps from entity
handle to any Python value; the owning mesh drops a destroyed entity's data
from every tag so no stale values survive mesh modification.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

from .entity import Ent


class Tag:
    """One named tag: a sparse entity → value map."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._data: Dict[Ent, Any] = {}

    def set(self, ent: Ent, value: Any) -> None:
        self._data[ent] = value

    def get(self, ent: Ent, default: Any = None) -> Any:
        return self._data.get(ent, default)

    def __getitem__(self, ent: Ent) -> Any:
        try:
            return self._data[ent]
        except KeyError:
            raise KeyError(f"tag {self.name!r} has no value on {ent}") from None

    def __setitem__(self, ent: Ent, value: Any) -> None:
        self._data[ent] = value

    def has(self, ent: Ent) -> bool:
        return ent in self._data

    def __contains__(self, ent: Ent) -> bool:
        return ent in self._data

    def remove(self, ent: Ent) -> None:
        self._data.pop(ent, None)

    def clear(self) -> None:
        self._data.clear()

    def items(self) -> Iterator[Tuple[Ent, Any]]:
        return iter(sorted(self._data.items()))

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"Tag({self.name!r}, {len(self._data)} values)"


class TagManager:
    """Registry of all tags on one mesh."""

    def __init__(self) -> None:
        self._tags: Dict[str, Tag] = {}

    def create(self, name: str) -> Tag:
        """Get or create the tag named ``name``."""
        tag = self._tags.get(name)
        if tag is None:
            tag = self._tags[name] = Tag(name)
        return tag

    def find(self, name: str) -> Optional[Tag]:
        return self._tags.get(name)

    def delete(self, name: str) -> None:
        self._tags.pop(name, None)

    def names(self) -> Iterator[str]:
        return iter(sorted(self._tags))

    def drop_entity(self, ent: Ent) -> None:
        """Remove ``ent``'s value from every tag (called on entity destroy)."""
        for tag in self._tags.values():
            tag.remove(ent)

    def __contains__(self, name: str) -> bool:
        return name in self._tags

    def __len__(self) -> int:
        return len(self._tags)
