"""Vectorized bulk mesh construction from element connectivity.

Creating entities one at a time through :meth:`repro.mesh.mesh.Mesh.create`
is the right interface for mesh *modification*, but constructing a
multi-hundred-thousand-element mesh that way is dominated by per-entity
Python overhead.  :func:`from_connectivity` instead derives all intermediate
entities (unique edges, unique faces) with NumPy ``sort``/``unique`` passes —
the guide-recommended vectorization — and block-appends them into the SoA
core (:class:`repro.mesh.core.MeshCore`), producing a mesh identical to the
incremental path (verified by the test suite).

Orientation note: the canonical vertex order of each auto-derived edge/face
is taken from its first occurrence in element order, matching what the
incremental path produces when elements are created in the same order.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..gmodel.model import Model
from .entity import Ent
from .mesh import Mesh
from .topology import EDGE, TRI, VERTEX, type_info


def from_connectivity(
    coords: np.ndarray,
    elements: np.ndarray,
    etype: int,
    model: Optional[Model] = None,
    classify: bool = False,
) -> Mesh:
    """Build a mesh of one element type from vertex coords + connectivity.

    Parameters
    ----------
    coords:
        ``(nverts, 2 or 3)`` float array of vertex locations.
    elements:
        ``(nelems, nverts_per_elem)`` int array of vertex indices in the
        canonical order of ``etype``.
    etype:
        The element type code (``TRI``, ``QUAD``, ``TET``, ``HEX``, ...).
    model, classify:
        Optional geometric model; with ``classify=True`` every entity is
        geometrically classified (vertices by location, the rest by closure).
    """
    info = type_info(etype)
    coords = np.asarray(coords, dtype=float)
    elements = np.asarray(elements, dtype=np.int64)
    if elements.ndim != 2 or elements.shape[1] != info.nverts:
        raise ValueError(
            f"{info.name} connectivity must be (ne, {info.nverts}), "
            f"got {elements.shape}"
        )
    if elements.size and (elements.min() < 0 or elements.max() >= len(coords)):
        raise ValueError("element connectivity references unknown vertices")

    mesh = Mesh(model)
    core = mesh.core

    # Vertices: one block append plus the coordinate columns.
    nverts = len(coords)
    core.append_block(0, np.full(nverts, VERTEX, dtype=np.int16), None, None)
    mesh._coords = np.zeros((max(nverts, 1), 3), dtype=float)
    mesh._coords[:nverts, : coords.shape[1]] = coords

    if len(elements) == 0:
        return mesh

    # Unique edges across all elements.
    edge_locals = np.asarray(info.edges, dtype=np.int64)  # (ne_per, 2)
    elem_edge_verts = elements[:, edge_locals]  # (ne, ne_per, 2)
    flat_edges = elem_edge_verts.reshape(-1, 2)
    edge_keys = np.sort(flat_edges, axis=1)
    unique_edge_keys, first_occurrence, edge_inverse = np.unique(
        edge_keys, axis=0, return_index=True, return_inverse=True
    )
    edge_canonical = flat_edges[first_occurrence]  # orientation of first use

    edge_ids = core.append_block(
        1,
        np.full(len(unique_edge_keys), EDGE, dtype=np.int16),
        edge_canonical,
        edge_canonical,
    )
    lookup_edges = mesh._lookup[0]
    for eid, key in enumerate(map(tuple, unique_edge_keys.tolist())):
        lookup_edges[key] = eid
    core.bulk_add_up(0, edge_canonical.reshape(-1), np.repeat(edge_ids, 2))

    if info.dim == 2:
        # Elements are the faces; their downward entities are the edges.
        elem_edges = edge_inverse.reshape(len(elements), -1)
        face_ids = core.append_block(
            2,
            np.full(len(elements), etype, dtype=np.int16),
            elements,
            elem_edges,
        )
        lookup_faces = mesh._lookup[1]
        face_keys = np.sort(elements, axis=1)
        for fid, key in enumerate(map(tuple, face_keys.tolist())):
            lookup_faces[key] = fid
        core.bulk_add_up(
            1, elem_edges.reshape(-1), np.repeat(face_ids, elem_edges.shape[1])
        )
    else:
        # Unique faces across all elements (tets: all faces are triangles;
        # mixed-face cells like prisms use a per-face-type pass).
        face_specs = info.faces
        face_sizes = {len(locals_) for _ftype, locals_ in face_specs}
        if len(face_sizes) != 1:
            return _from_connectivity_mixed_faces(mesh, info, etype, elements)
        (face_size,) = face_sizes
        ftype = face_specs[0][0]
        face_locals = np.asarray(
            [locals_ for _ft, locals_ in face_specs], dtype=np.int64
        )
        elem_face_verts = elements[:, face_locals]  # (ne, nf_per, fs)
        flat_faces = elem_face_verts.reshape(-1, face_size)
        face_keys = np.sort(flat_faces, axis=1)
        unique_face_keys, first_face, face_inverse = np.unique(
            face_keys, axis=0, return_index=True, return_inverse=True
        )
        face_canonical = flat_faces[first_face]

        # Each unique face's downward edges: a sorted join against the
        # lexicographically-sorted unique edge keys (no per-key dict walk).
        finfo = type_info(ftype)
        face_edge_locals = np.asarray(finfo.edges, dtype=np.int64)
        face_edge_verts = face_canonical[:, face_edge_locals]  # (nf, fe, 2)
        fe_keys = np.sort(face_edge_verts, axis=2).reshape(-1, 2)
        span = np.int64(len(coords))
        edge_codes = unique_edge_keys[:, 0] * span + unique_edge_keys[:, 1]
        face_edge_ids = np.searchsorted(
            edge_codes, fe_keys[:, 0] * span + fe_keys[:, 1]
        ).reshape(len(face_canonical), -1)

        face_ids = core.append_block(
            2,
            np.full(len(unique_face_keys), ftype, dtype=np.int16),
            face_canonical,
            face_edge_ids,
        )
        lookup_faces = mesh._lookup[1]
        for fid, key in enumerate(map(tuple, unique_face_keys.tolist())):
            lookup_faces[key] = fid
        core.bulk_add_up(
            1,
            face_edge_ids.reshape(-1),
            np.repeat(face_ids, face_edge_ids.shape[1]),
        )

        elem_faces = face_inverse.reshape(len(elements), -1)
        region_ids = core.append_block(
            3,
            np.full(len(elements), etype, dtype=np.int16),
            elements,
            elem_faces,
        )
        lookup_regions = mesh._lookup[2]
        region_keys = np.sort(elements, axis=1)
        for rid, key in enumerate(map(tuple, region_keys.tolist())):
            lookup_regions[key] = rid
        core.bulk_add_up(
            2, elem_faces.reshape(-1), np.repeat(region_ids, elem_faces.shape[1])
        )

    if classify:
        if model is None:
            raise ValueError("classify=True requires a geometric model")
        classify_cheap(mesh, model)
    return mesh


def _from_connectivity_mixed_faces(mesh, info, etype, elements):
    """Fallback for cell types with mixed face shapes (prism, pyramid)."""
    for row in elements.tolist():
        mesh.create(etype, [Ent(0, v) for v in row])
    return mesh


def classify_cheap(mesh: Mesh, model: Model, tol: float = 1e-9) -> None:
    """Classify all entities against ``model``, fast-pathing the interior.

    Vertices classify by point location.  A higher entity with any vertex
    classified on the model's top-dimension entity must itself be interior,
    which skips the full closure rule for the vast majority of entities; only
    entities entirely on the domain boundary take the general path.
    """
    from ..gmodel.classify import classify_from_closure, classify_point

    mesh.model = model
    top_dim = model.dim()
    for v in mesh.entities(0):
        gent = classify_point(model, mesh.coords(v), tol)
        if gent is None:
            raise ValueError(f"vertex {v} lies outside the model")
        mesh.set_classification(v, gent)
    for dim in range(1, mesh.dim() + 1):
        for ent in mesh.entities(dim):
            gents = [mesh.classification(v) for v in mesh.verts_of(ent)]
            interior = next((g for g in gents if g.dim == top_dim), None)
            if interior is not None:
                mesh.set_classification(ent, interior)
            else:
                mesh.set_classification(
                    ent, classify_from_closure(model, gents)
                )
