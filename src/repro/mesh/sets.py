"""Set component: group arbitrary mesh entities under a name.

The second common utility of Section II: "(ii) Set: component for grouping
arbitrary data with common set requirements".  Sets may be *ordered* (a list
preserving insertion order, allowing duplicates to be rejected explicitly) or
*unordered* (a mathematical set).  Like tags, set membership of a destroyed
entity is dropped by the owning mesh.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from .entity import Ent


class EntitySet:
    """A named group of entity handles."""

    def __init__(self, name: str, ordered: bool = False) -> None:
        self.name = name
        self.ordered = ordered
        self._list: List[Ent] = []
        self._members: Set[Ent] = set()

    def add(self, ent: Ent) -> None:
        """Insert ``ent``; duplicates are ignored (set semantics)."""
        if ent in self._members:
            return
        self._members.add(ent)
        if self.ordered:
            self._list.append(ent)

    def remove(self, ent: Ent) -> None:
        if ent not in self._members:
            return
        self._members.discard(ent)
        if self.ordered:
            self._list.remove(ent)

    def __contains__(self, ent: Ent) -> bool:
        return ent in self._members

    def __iter__(self) -> Iterator[Ent]:
        """Insertion order when ordered, (dim, id) order otherwise."""
        if self.ordered:
            return iter(list(self._list))
        return iter(sorted(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def clear(self) -> None:
        self._members.clear()
        self._list.clear()

    def __repr__(self) -> str:
        kind = "ordered" if self.ordered else "unordered"
        return f"EntitySet({self.name!r}, {kind}, {len(self)} members)"


class SetManager:
    """Registry of all entity sets on one mesh."""

    def __init__(self) -> None:
        self._sets: Dict[str, EntitySet] = {}

    def create(self, name: str, ordered: bool = False) -> EntitySet:
        """Get or create the set ``name``; ``ordered`` applies on creation."""
        eset = self._sets.get(name)
        if eset is None:
            eset = self._sets[name] = EntitySet(name, ordered)
        return eset

    def find(self, name: str) -> Optional[EntitySet]:
        return self._sets.get(name)

    def delete(self, name: str) -> None:
        self._sets.pop(name, None)

    def names(self) -> Iterator[str]:
        return iter(sorted(self._sets))

    def drop_entity(self, ent: Ent) -> None:
        for eset in self._sets.values():
            eset.remove(ent)

    def __contains__(self, name: str) -> bool:
        return name in self._sets

    def __len__(self) -> int:
        return len(self._sets)
