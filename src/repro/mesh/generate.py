"""Mesh generators for structured and semi-structured test domains.

Real PUMI consumes meshes from external generators (Simmetrix, Gmsh) — none
are available offline, so these generators provide the meshes every example,
test, and benchmark uses:

* :func:`rect_tri` / :func:`rect_quad` — structured 2D grids of a rectangle,
* :func:`box_tet` / :func:`box_hex` — structured 3D grids of a box (tets via
  the 6-tet Kuhn subdivision of each cell),
* :func:`delaunay_rect` — an irregular triangulation of a rectangle from a
  jittered grid (exercises non-uniform connectivity),
* all classified against the matching analytic b-rep model.
"""

from __future__ import annotations

from itertools import permutations
from typing import Optional, Tuple

import numpy as np

from ..gmodel.model import Model
from ..gmodel.shapes import box_model, rect_model
from .build import from_connectivity
from .mesh import Mesh
from .topology import HEX, QUAD, TET, TRI


def _grid_points_2d(nx: int, ny: int, lo, hi) -> np.ndarray:
    xs = np.linspace(lo[0], hi[0], nx + 1)
    ys = np.linspace(lo[1], hi[1], ny + 1)
    gx, gy = np.meshgrid(xs, ys, indexing="ij")
    return np.column_stack([gx.ravel(), gy.ravel()])


def rect_tri(
    nx: int,
    ny: Optional[int] = None,
    lo: Tuple[float, float] = (0.0, 0.0),
    hi: Tuple[float, float] = (1.0, 1.0),
    model: Optional[Model] = None,
    classify: bool = True,
) -> Mesh:
    """Structured triangle mesh of a rectangle: ``2 * nx * ny`` triangles.

    Each grid cell splits along its (+,+) diagonal; triangles are oriented
    counter-clockwise.
    """
    ny = nx if ny is None else ny
    if nx < 1 or ny < 1:
        raise ValueError("need at least one cell per direction")
    coords = _grid_points_2d(nx, ny, lo, hi)

    def vid(i: int, j: int) -> int:
        return i * (ny + 1) + j

    cells = []
    for i in range(nx):
        for j in range(ny):
            v00, v10 = vid(i, j), vid(i + 1, j)
            v01, v11 = vid(i, j + 1), vid(i + 1, j + 1)
            cells.append((v00, v10, v11))
            cells.append((v00, v11, v01))
    if model is None and classify:
        model = rect_model(lo, hi)
    return from_connectivity(
        coords, np.asarray(cells), TRI, model=model, classify=classify
    )


def rect_quad(
    nx: int,
    ny: Optional[int] = None,
    lo: Tuple[float, float] = (0.0, 0.0),
    hi: Tuple[float, float] = (1.0, 1.0),
    model: Optional[Model] = None,
    classify: bool = True,
) -> Mesh:
    """Structured quadrilateral mesh of a rectangle: ``nx * ny`` quads."""
    ny = nx if ny is None else ny
    if nx < 1 or ny < 1:
        raise ValueError("need at least one cell per direction")
    coords = _grid_points_2d(nx, ny, lo, hi)

    def vid(i: int, j: int) -> int:
        return i * (ny + 1) + j

    cells = []
    for i in range(nx):
        for j in range(ny):
            cells.append((vid(i, j), vid(i + 1, j), vid(i + 1, j + 1), vid(i, j + 1)))
    if model is None and classify:
        model = rect_model(lo, hi)
    return from_connectivity(
        coords, np.asarray(cells), QUAD, model=model, classify=classify
    )


def _grid_points_3d(nx, ny, nz, lo, hi) -> np.ndarray:
    xs = np.linspace(lo[0], hi[0], nx + 1)
    ys = np.linspace(lo[1], hi[1], ny + 1)
    zs = np.linspace(lo[2], hi[2], nz + 1)
    gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
    return np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])


def _perm_parity(p) -> int:
    inversions = sum(
        1 for i in range(len(p)) for j in range(i + 1, len(p)) if p[i] > p[j]
    )
    return inversions % 2


#: The six tetrahedra of the Kuhn subdivision of a unit cell, as chains
#: 0 → step → step → 7 over corner codes (bit k set = +1 in axis k).
#: Odd-parity chains have their middle vertices swapped so every tet has
#: positive volume.
_KUHN_TETS = tuple(
    (0, 1 << p[0], (1 << p[0]) | (1 << p[1]), 7)
    if _perm_parity(p) == 0
    else (0, (1 << p[0]) | (1 << p[1]), 1 << p[0], 7)
    for p in permutations(range(3))
)


def box_tet(
    nx: int,
    ny: Optional[int] = None,
    nz: Optional[int] = None,
    lo: Tuple[float, float, float] = (0.0, 0.0, 0.0),
    hi: Tuple[float, float, float] = (1.0, 1.0, 1.0),
    model: Optional[Model] = None,
    classify: bool = True,
) -> Mesh:
    """Structured tetrahedral mesh of a box: ``6 * nx * ny * nz`` tets.

    Every cell uses the same Kuhn subdivision, so neighbouring cells'
    diagonals agree and the mesh is conforming.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    if min(nx, ny, nz) < 1:
        raise ValueError("need at least one cell per direction")
    coords = _grid_points_3d(nx, ny, nz, lo, hi)

    def vid(i: int, j: int, k: int) -> int:
        return (i * (ny + 1) + j) * (nz + 1) + k

    cells = []
    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                corner = {}
                for code in range(8):
                    corner[code] = vid(
                        i + (code & 1), j + (code >> 1 & 1), k + (code >> 2 & 1)
                    )
                for tet in _KUHN_TETS:
                    cells.append(tuple(corner[c] for c in tet))
    if model is None and classify:
        model = box_model(lo, hi)
    return from_connectivity(
        coords, np.asarray(cells), TET, model=model, classify=classify
    )


def box_hex(
    nx: int,
    ny: Optional[int] = None,
    nz: Optional[int] = None,
    lo: Tuple[float, float, float] = (0.0, 0.0, 0.0),
    hi: Tuple[float, float, float] = (1.0, 1.0, 1.0),
    model: Optional[Model] = None,
    classify: bool = True,
) -> Mesh:
    """Structured hexahedral mesh of a box: ``nx * ny * nz`` hexes."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    if min(nx, ny, nz) < 1:
        raise ValueError("need at least one cell per direction")
    coords = _grid_points_3d(nx, ny, nz, lo, hi)

    def vid(i, j, k):
        return (i * (ny + 1) + j) * (nz + 1) + k

    cells = []
    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                cells.append((
                    vid(i, j, k), vid(i + 1, j, k),
                    vid(i + 1, j + 1, k), vid(i, j + 1, k),
                    vid(i, j, k + 1), vid(i + 1, j, k + 1),
                    vid(i + 1, j + 1, k + 1), vid(i, j + 1, k + 1),
                ))
    if model is None and classify:
        model = box_model(lo, hi)
    return from_connectivity(
        coords, np.asarray(cells), HEX, model=model, classify=classify
    )


def extrude_to_prisms(
    mesh2d: Mesh,
    layers: int = 1,
    height: float = 1.0,
) -> Mesh:
    """Extrude a triangle mesh into ``layers`` layers of prisms (wedges).

    Exercises the mixed-face cell path of the representation: every prism
    has two triangular and three quadrilateral faces.  The extruded mesh is
    left unclassified (no analytic b-rep is built for the swept solid).
    """
    from .topology import PRISM, TRI as TRI_CODE

    if layers < 1:
        raise ValueError("need at least one layer")
    if mesh2d.dim() != 2:
        raise ValueError("extrusion needs a 2D mesh")
    for face in mesh2d.entities(2):
        if mesh2d.etype(face) != TRI_CODE:
            raise ValueError("extrusion supports triangle meshes")

    mesh = Mesh()
    base_verts = list(mesh2d.entities(0))
    index = {v: i for i, v in enumerate(base_verts)}
    dz = height / layers
    rings = []
    for k in range(layers + 1):
        ring = []
        for v in base_verts:
            x, y, _z = mesh2d.coords(v)
            ring.append(mesh.create_vertex([x, y, k * dz]))
        rings.append(ring)
    for k in range(layers):
        lower, upper = rings[k], rings[k + 1]
        for face in mesh2d.entities(2):
            a, b, c = (index[v] for v in mesh2d.verts_of(face))
            mesh.create(
                PRISM,
                [lower[a], lower[b], lower[c], upper[a], upper[b], upper[c]],
            )
    return mesh


def delaunay_rect(
    nx: int,
    ny: Optional[int] = None,
    lo: Tuple[float, float] = (0.0, 0.0),
    hi: Tuple[float, float] = (1.0, 1.0),
    jitter: float = 0.35,
    seed: int = 0,
    model: Optional[Model] = None,
    classify: bool = True,
) -> Mesh:
    """Irregular Delaunay triangulation of a jittered grid.

    Interior grid points are perturbed by up to ``jitter`` of the cell size;
    boundary points stay exactly on the rectangle so classification works.
    """
    from scipy.spatial import Delaunay

    ny = nx if ny is None else ny
    if nx < 2 or ny < 2:
        raise ValueError("need at least two cells per direction")
    points = _grid_points_2d(nx, ny, lo, hi).reshape(nx + 1, ny + 1, 2)
    rng = np.random.default_rng(seed)
    hx = (hi[0] - lo[0]) / nx
    hy = (hi[1] - lo[1]) / ny
    noise = rng.uniform(-jitter, jitter, size=(nx - 1, ny - 1, 2))
    points[1:-1, 1:-1, 0] += noise[:, :, 0] * hx
    points[1:-1, 1:-1, 1] += noise[:, :, 1] * hy
    flat = points.reshape(-1, 2)
    tri = Delaunay(flat)
    cells = tri.simplices.astype(np.int64)
    # Delaunay output is CCW already; drop degenerate slivers if any.
    a, b, c = flat[cells[:, 0]], flat[cells[:, 1]], flat[cells[:, 2]]
    area2 = (b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1]) - (
        b[:, 1] - a[:, 1]
    ) * (c[:, 0] - a[:, 0])
    cells = cells[np.abs(area2) > 1e-14]
    if model is None and classify:
        model = rect_model(lo, hi)
    return from_connectivity(flat, cells, TRI, model=model, classify=classify)
