"""Mesh statistics and memory-usage estimation.

PUMI's parallel control includes a "memory usage counter" (Section II-D);
for a distributed mesh the peak *per-process* memory decides whether a part
fits, which is why partitions for adaptation "require, at a minimum, that
the resulting adapted mesh fits within memory" (Section III).  This module
estimates a mesh's storage footprint from its entity counts and adjacency
sizes, and summarizes the structural statistics (valences, edge lengths)
used to sanity-check generated and adapted meshes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .entity import Ent
from .mesh import Mesh

#: Bytes per stored integer id in the SoA core arrays (int32 columns).
_BYTES_PER_ID = 4
#: Bytes per vertex coordinate row (3 float64).
_BYTES_PER_COORD = 24


def memory_estimate(mesh: Mesh) -> Dict[str, int]:
    """Approximate storage footprint of the representation, in bytes.

    Counts the adjacency ids each store holds (downward, upward, vertex
    tuples) plus the coordinate array; tags/sets/fields are excluded (they
    are user data, not representation).
    """
    core = mesh.core
    ids = 0
    for dim in range(4):
        live = core.live_ids(dim)
        if len(live):
            ids += int(core.nverts[dim][live].sum(dtype=np.int64))
            ids += int(core.ndown[dim][live].sum(dtype=np.int64))
            ids += int(core.nup[dim][live].sum(dtype=np.int64))
    coords = mesh.count(0) * _BYTES_PER_COORD
    adjacency = ids * _BYTES_PER_ID
    return {
        "adjacency_ids": ids,
        "adjacency_bytes": adjacency,
        "coordinate_bytes": coords,
        "total_bytes": adjacency + coords,
    }


@dataclass
class MeshStats:
    """Structural summary of one mesh."""

    counts: tuple
    mean_vertex_valence: float
    max_vertex_valence: int
    mean_edge_length: float
    min_edge_length: float
    max_edge_length: float
    memory_bytes: int

    def summary(self) -> str:
        v, e, f, r = self.counts
        return (
            f"verts={v} edges={e} faces={f} regions={r}; "
            f"valence mean {self.mean_vertex_valence:.1f} / "
            f"max {self.max_vertex_valence}; "
            f"edge length [{self.min_edge_length:.4g}, "
            f"{self.max_edge_length:.4g}] mean {self.mean_edge_length:.4g}; "
            f"~{self.memory_bytes / 1e6:.2f} MB"
        )


def mesh_stats(mesh: Mesh) -> MeshStats:
    """Compute the structural summary (O(mesh size))."""
    core = mesh.core
    valences = core.nup[0][core.live_ids(0)]
    coords = mesh.coords_view()
    edges = core.verts[1][core.live_ids(1), :2]
    lengths = np.linalg.norm(coords[edges[:, 0]] - coords[edges[:, 1]], axis=1)
    return MeshStats(
        counts=mesh.entity_counts(),
        mean_vertex_valence=float(np.mean(valences)) if len(valences) else 0.0,
        max_vertex_valence=int(np.max(valences)) if len(valences) else 0,
        mean_edge_length=float(np.mean(lengths)) if len(lengths) else 0.0,
        min_edge_length=float(np.min(lengths)) if len(lengths) else 0.0,
        max_edge_length=float(np.max(lengths)) if len(lengths) else 0.0,
        memory_bytes=memory_estimate(mesh)["total_bytes"],
    )


def edge_length_histogram(mesh: Mesh, bins: int = 10) -> Dict[str, list]:
    """Histogram of edge lengths: {'edges': [...bin edges...], 'counts': [...]}."""
    coords = mesh.coords_view()
    core = mesh.core
    edges = core.verts[1][core.live_ids(1), :2]
    lengths = np.linalg.norm(coords[edges[:, 0]] - coords[edges[:, 1]], axis=1)
    if not len(lengths):
        return {"edges": [], "counts": []}
    counts, edges = np.histogram(lengths, bins=bins)
    return {"edges": edges.tolist(), "counts": counts.tolist()}
