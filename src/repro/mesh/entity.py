"""Mesh entity handles.

"A mesh entity is uniquely identified by its handle and denoted by M^d_i,
where d is dimension (0 <= d <= 3) and i is an id" (paper, Section II).
:class:`Ent` is exactly that handle: a named tuple ``(dim, idx)``.  Handles
are value objects — cheap to copy, hashable, usable as dict keys and in sets,
and ordered first by dimension then by id, which gives every algorithm in the
repository a deterministic iteration order.
"""

from __future__ import annotations

from typing import NamedTuple


class Ent(NamedTuple):
    """Handle of one mesh entity: dimension ``dim`` and id ``idx``."""

    dim: int
    idx: int

    def __repr__(self) -> str:
        return f"M{self.dim}_{self.idx}"


def vert(idx: int) -> Ent:
    """Vertex handle shortcut."""
    return Ent(0, idx)


def edge(idx: int) -> Ent:
    """Edge handle shortcut."""
    return Ent(1, idx)


def face(idx: int) -> Ent:
    """Face handle shortcut."""
    return Ent(2, idx)


def region(idx: int) -> Ent:
    """Region handle shortcut."""
    return Ent(3, idx)
