"""Element geometric measures and quality metrics.

Mesh adaptation and verification need signed measures (area/volume) to detect
inversion, and scale-invariant shape-quality metrics to reject slivers.  The
quality metric used is the *mean ratio* family: 1 for the equilateral
simplex, → 0 as the element degenerates, negative when inverted.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from .entity import Ent
from .mesh import Mesh
from .topology import QUAD, TET, TRI


def tri_area(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> float:
    """Signed area of triangle abc (positive when counter-clockwise in xy)."""
    return 0.5 * float(
        (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
    )


def tet_volume(a, b, c, d) -> float:
    """Signed volume of tet abcd (positive for right-handed orientation)."""
    return float(np.linalg.det(np.stack([b - a, c - a, d - a]))) / 6.0


def measure(mesh: Mesh, ent: Ent) -> float:
    """Signed size of an element: length, area, or volume."""
    pts = [mesh.coords(v) for v in mesh.verts_of(ent)]
    if ent.dim == 1:
        return float(np.linalg.norm(pts[1] - pts[0]))
    etype = mesh.etype(ent)
    if etype == TRI:
        return tri_area(*pts)
    if etype == QUAD:
        return tri_area(pts[0], pts[1], pts[2]) + tri_area(pts[0], pts[2], pts[3])
    if etype == TET:
        return tet_volume(*pts)
    # General polyhedra: fan decomposition from the centroid over faces.
    centroid = np.mean(pts, axis=0)
    total = 0.0
    for face in mesh.down(ent):
        fpts = [mesh.coords(v) for v in mesh.verts_of(face)]
        for i in range(1, len(fpts) - 1):
            total += abs(tet_volume(centroid, fpts[0], fpts[i], fpts[i + 1]))
    return total


def mean_ratio_tri(a, b, c) -> float:
    """Mean-ratio quality of a triangle: 1 equilateral, <=0 degenerate."""
    area = tri_area(a, b, c)
    lengths2 = (
        float((b - a) @ (b - a))
        + float((c - b) @ (c - b))
        + float((a - c) @ (a - c))
    )
    if lengths2 == 0.0:
        return 0.0
    return 4.0 * math.sqrt(3.0) * area / lengths2


def mean_ratio_tet(a, b, c, d) -> float:
    """Mean-ratio quality of a tet: 1 equilateral, <=0 degenerate/inverted."""
    volume = tet_volume(a, b, c, d)
    edges = [b - a, c - a, d - a, c - b, d - b, d - c]
    lengths2 = sum(float(e @ e) for e in edges)
    if lengths2 == 0.0:
        return 0.0
    # Normalized so the regular tet scores exactly 1.
    return 12.0 * (3.0 * abs(volume)) ** (2.0 / 3.0) / lengths2 * math.copysign(
        1.0, volume
    )


def quality(mesh: Mesh, ent: Ent) -> float:
    """Shape quality of an element (mean ratio for simplices)."""
    pts = [mesh.coords(v) for v in mesh.verts_of(ent)]
    etype = mesh.etype(ent)
    if etype == TRI:
        return mean_ratio_tri(*pts)
    if etype == TET:
        return mean_ratio_tet(*pts)
    raise ValueError(f"no quality metric for {mesh.type_name(ent)} elements")


def worst_quality(mesh: Mesh) -> float:
    """Minimum element quality over the mesh (1.0 for an empty mesh)."""
    dim = mesh.dim()
    worst = 1.0
    for ent in mesh.entities(dim):
        worst = min(worst, quality(mesh, ent))
    return worst


def quality_histogram(mesh: Mesh, bins: int = 10) -> List[int]:
    """Histogram of element qualities over [0, 1] (out-of-range clamps)."""
    counts = [0] * bins
    dim = mesh.dim()
    for ent in mesh.entities(dim):
        q = min(max(quality(mesh, ent), 0.0), 1.0)
        counts[min(int(q * bins), bins - 1)] += 1
    return counts
