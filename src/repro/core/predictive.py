"""Predictive load balancing for mesh adaptation.

"Large imbalance spikes are also observed when predictively load balancing
for mesh adaptation based on the estimated target mesh resolution at each
mesh vertex" (paper, Section III-B).  Before adapting, each element's
post-adaptation load is estimated as ``(h_current / h_target)^d`` — the
number of target-size elements that will replace it — and the partition is
rebalanced under those weights, so that after adaptation the element counts
come out even (avoiding the Fig. 13 histogram).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..field.sizefield import SizeField
from ..mesh.entity import Ent
from ..mesh.mesh import Mesh
from ..partition.dmesh import DistributedMesh
from ..partition.migration import migrate
from ..partitioners.rcb import rcb_points


def element_size(mesh: Mesh, element: Ent) -> float:
    """Current resolution of an element: mean edge length."""
    edges = mesh.adjacent(element, 1)
    total = 0.0
    for e in edges:
        a, b = mesh.verts_of(e)
        total += float(np.linalg.norm(mesh.coords(a) - mesh.coords(b)))
    return total / len(edges)


def predicted_element_weight(
    mesh: Mesh, element: Ent, size: SizeField, floor: float = 0.1
) -> float:
    """Estimated number of post-adaptation elements replacing ``element``."""
    h_now = element_size(mesh, element)
    h_target = size.value(mesh.centroid(element))
    weight = (h_now / h_target) ** mesh.dim()
    return max(weight, floor)


def predicted_weights(mesh: Mesh, size: SizeField) -> np.ndarray:
    """Predicted weight of every element (id order)."""
    dim = mesh.dim()
    return np.asarray(
        [predicted_element_weight(mesh, e, size) for e in mesh.entities(dim)]
    )


def predictive_balance(
    dmesh: DistributedMesh,
    size: SizeField,
    assigner: Optional[Callable[[np.ndarray, int, np.ndarray], np.ndarray]] = None,
) -> int:
    """Rebalance the distributed mesh under predicted adaptation weights.

    Gathers every element's centroid and predicted weight (the simulation's
    stand-in for the parallel gather), computes a weighted geometric
    repartition (RCB by default, matching predictive balancing practice —
    geometric methods are the fast choice here), and migrates the diff.
    Returns the number of elements moved.
    """
    if assigner is None:
        def assigner(points, nparts, weights):
            return rcb_points(points, nparts, weights)

    dim = dmesh.element_dim()
    holders: List[Tuple[int, Ent]] = []
    points: List[np.ndarray] = []
    weights: List[float] = []
    for part in dmesh:
        mesh = part.mesh
        for element in mesh.entities(dim):
            if part.is_ghost(element):
                continue
            holders.append((part.pid, element))
            points.append(mesh.centroid(element))
            weights.append(predicted_element_weight(mesh, element, size))

    assignment = assigner(
        np.asarray(points), dmesh.nparts, np.asarray(weights)
    )
    plan: Dict[int, Dict[Ent, int]] = {}
    for (pid, element), target in zip(holders, assignment):
        if int(target) != pid:
            plan.setdefault(pid, {})[element] = int(target)
    return migrate(dmesh, plan).elements_moved
