"""ParMA multi-criteria greedy diffusive partition improvement.

The driver of Section III-A: "The ParMA partition improvement procedure
traverses the priority list in order of decreasing priority.  For each mesh
entity type the migration schedule is computed, regions are selected for
migration, and the regions are migrated.  These three steps form one
iteration.  When the application defined imbalance is achieved, or the
maximum number of iterations is reached, the next mesh entity type is
processed."

Per iteration, every heavy part (in the balanced entity type) selects
candidate neighbors (:mod:`repro.core.candidates`), computes per-candidate
quotas (:mod:`repro.core.schedule`), picks elements/cavities with the
adjacency-based rules (:mod:`repro.core.selection`), and one collective
migration applies all moves.  Priority protection is enforced through
candidate gating: a candidate may not be heavy in a higher-priority type nor
loaded in lower-priority ones, so improving the current type cannot create
spikes in the types already balanced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

import numpy as np

from ..mesh.entity import Ent
from ..obs.tracer import trace_span
from ..partition.dmesh import DistributedMesh
from ..partition.migration import migrate
from .candidates import candidate_parts
from .imbalance import ENTITY_NAMES, heavy_parts, imbalance_of, imbalances
from .priorities import PriorityList, parse_priorities
from .schedule import migration_schedule
from .selection import select_for_dimension


@dataclass
class DimensionStats:
    """Outcome of balancing one entity dimension."""

    dim: int
    iterations: int = 0
    elements_migrated: int = 0
    initial_imbalance: float = 1.0
    final_imbalance: float = 1.0
    converged: bool = False

    @property
    def name(self) -> str:
        return ENTITY_NAMES[self.dim]


@dataclass
class ImproveStats:
    """Outcome of one multi-criteria improvement run."""

    priorities: str
    tolerance: float
    initial_imbalances: np.ndarray = field(default_factory=lambda: np.ones(4))
    final_imbalances: np.ndarray = field(default_factory=lambda: np.ones(4))
    initial_boundary_entities: int = 0
    final_boundary_entities: int = 0
    per_dimension: List[DimensionStats] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def total_migrated(self) -> int:
        return sum(d.elements_migrated for d in self.per_dimension)

    def summary(self) -> str:
        lines = [
            f"ParMA improvement [{self.priorities}] tol={self.tolerance:.0%} "
            f"in {self.seconds:.2f}s, {self.total_migrated} elements migrated"
        ]
        for stat in self.per_dimension:
            lines.append(
                f"  {stat.name}: {100 * (stat.initial_imbalance - 1):.2f}% -> "
                f"{100 * (stat.final_imbalance - 1):.2f}% in "
                f"{stat.iterations} iteration(s)"
                + ("" if stat.converged else " (max iterations)")
            )
        lines.append(
            f"  boundary entity copies: {self.initial_boundary_entities} -> "
            f"{self.final_boundary_entities}"
        )
        return "\n".join(lines)


def _trim_by_higher_priority(
    part, cand, selected, counts, means, tol, higher_dims, planned
):
    """Keep only the selection prefix whose migration cannot spike a
    higher-priority (already balanced) entity type on the candidate.

    For each protected dimension the candidate has a headroom of
    ``mean * (1 + tol) - count - already planned``; each kept element
    charges exactly the closure entities of that dimension that the
    candidate does not yet hold (i.e. the copies migration will create).
    Elements are dropped from the first one that would overdraw any
    protected dimension.  ``planned[cand][d]`` accumulates the charges so
    several heavy parts sending to one candidate in the same iteration
    share the same headroom.
    """
    if not higher_dims or not selected:
        return selected
    pending = planned.setdefault(cand, {})
    budgets = {
        d: float(means[d]) * (1.0 + tol)
        - float(counts[cand, d])
        - pending.get(d, 0.0)
        for d in higher_dims
    }
    mesh = part.mesh
    added = {d: set() for d in higher_dims}
    kept = []
    for element in selected:
        trial = {}
        fits = True
        for d in higher_dims:
            new = [
                ent
                for ent in mesh.adjacent(element, d)
                if ent not in added[d]
                and cand not in part.remotes.get(ent, {})
            ]
            if len(added[d]) + len(new) > budgets[d]:
                fits = False
                break
            trial[d] = new
        if not fits:
            break
        for d in higher_dims:
            added[d].update(trial[d])
        kept.append(element)
    for d in higher_dims:
        pending[d] = pending.get(d, 0.0) + len(added[d])
    return kept


def improve_partition(
    dmesh: DistributedMesh,
    priorities: Union[str, PriorityList],
    tol: float = 0.05,
    max_iterations: int = 24,
    candidate_mode: str = "both",
    selection_rule=select_for_dimension,
) -> ImproveStats:
    """Run multi-criteria partition improvement in place; returns statistics.

    ``priorities`` is a Table-I-style string (``"Vtx = Edge > Rgn"``) or a
    parsed :class:`~repro.core.priorities.PriorityList`.  ``tol`` is the
    application-defined imbalance (0.05 = the paper's 5%).
    ``candidate_mode`` and ``selection_rule`` exist for the ablation
    benchmarks; the defaults are the paper's algorithm.
    """
    plist = (
        parse_priorities(priorities) if isinstance(priorities, str) else priorities
    )
    start = time.perf_counter()
    stats = ImproveStats(priorities=str(plist), tolerance=tol)
    stats.initial_imbalances = imbalances(dmesh.entity_counts())
    stats.initial_boundary_entities = dmesh.shared_entity_count()
    elem_dim = dmesh.element_dim()
    tracer = dmesh.tracer
    if tracer is not None and not tracer.enabled:
        tracer = None

    with trace_span(tracer, "improve_partition", priorities=str(plist)):
        _improve_body(
            dmesh, plist, tol, max_iterations, candidate_mode,
            selection_rule, stats, elem_dim, tracer,
        )

    stats.final_imbalances = imbalances(dmesh.entity_counts())
    stats.final_boundary_entities = dmesh.shared_entity_count()
    stats.seconds = time.perf_counter() - start
    dmesh.counters.add("parma.improve.runs")
    return stats


def _improve_body(
    dmesh, plist, tol, max_iterations, candidate_mode, selection_rule,
    stats, elem_dim, tracer,
):
    for level in plist.levels:
        for dim in level:
            higher = plist.higher_priority_dims(dim)
            lower = plist.lower_priority_dims(dim)
            dstat = DimensionStats(dim=dim)
            dstat.initial_imbalance = imbalance_of(dmesh.entity_counts(), dim)
            series = f"imbalance[{ENTITY_NAMES[dim]}]"
            with trace_span(tracer, f"improve.{ENTITY_NAMES[dim]}", dim=dim):
                for _iteration in range(max_iterations):
                    counts = dmesh.entity_counts()
                    means = counts.astype(float).mean(axis=0)
                    current = imbalance_of(counts, dim, float(means[dim]))
                    if tracer is not None:
                        tracer.record_value(series, current)
                    if current <= 1.0 + tol:
                        dstat.converged = True
                        break
                    plan: Dict[int, Dict[Ent, int]] = {}
                    planned: Dict[int, Dict[int, float]] = {}
                    heavies = heavy_parts(counts, dim, tol, float(means[dim]))
                    for heavy in heavies:
                        part = dmesh.part(heavy)
                        cands = candidate_parts(
                            dmesh, counts, heavy, dim,
                            lower_priority_dims=lower,
                            higher_priority_dims=higher,
                            tol=tol,
                            means=means,
                            mode=candidate_mode,
                        )
                        if not cands:
                            continue
                        schedule = migration_schedule(
                            counts, heavy, cands, dim, float(means[dim]), tol
                        )
                        already: Set[Ent] = set()
                        moves: Dict[Ent, int] = {}
                        for cand in sorted(schedule):
                            selected = selection_rule(
                                part, cand, dim, schedule[cand], already
                            )
                            selected = _trim_by_higher_priority(
                                part, cand, selected, counts, means, tol,
                                higher, planned,
                            )
                            for element in selected:
                                moves[element] = cand
                        # Never empty the part entirely (its id must
                        # survive); anything finer is the candidate
                        # gate's business.
                        max_send = int(counts[heavy, elem_dim]) - 1
                        if max_send <= 0:
                            continue
                        if len(moves) > max_send:
                            moves = dict(sorted(moves.items())[:max_send])
                        if moves:
                            plan[heavy] = moves
                    if not plan:
                        break  # diffusion is stuck (nothing selected)
                    dstat.elements_migrated += migrate(
                        dmesh, plan
                    ).elements_moved
                    dstat.iterations += 1
                else:
                    # Loop exhausted max_iterations without converging.
                    pass
            final = imbalance_of(dmesh.entity_counts(), dim)
            if tracer is not None:
                tracer.record_value(series, final)
            dstat.final_imbalance = final
            if final <= 1.0 + tol:
                dstat.converged = True
            stats.per_dimension.append(dstat)
