"""Maximal independent set of conflicting merges (Luby-style).

After each part proposes the neighbor set it would like to merge, "a set of
these merges that can be performed without conflicts, i.e. a part is merged
only once, are found by solving for the maximal independent set" (paper,
Section III-B).  Two merge proposals conflict when they touch any common
part (as receiver or donor).  The selection is a deterministic greedy MIS
with priority = proposal weight (heavier merges first, id tie-break) —
equivalent to one-round-per-pick Luby with those priorities.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple


def maximal_independent_set(
    nodes: Sequence[Hashable],
    conflicts: Dict[Hashable, Set[Hashable]],
    priority: Optional[Dict[Hashable, float]] = None,
) -> List[Hashable]:
    """Greedy MIS over a conflict graph, highest priority first.

    ``conflicts[n]`` lists the nodes that cannot coexist with ``n``.  The
    result is maximal: every excluded node conflicts with a chosen one.
    """
    if priority is None:
        priority = {n: 0.0 for n in nodes}
    order = sorted(nodes, key=lambda n: (-priority.get(n, 0.0), repr(n)))
    chosen: List[Hashable] = []
    blocked: Set[Hashable] = set()
    for node in order:
        if node in blocked:
            continue
        chosen.append(node)
        blocked.add(node)
        blocked.update(conflicts.get(node, ()))
    return chosen


def independent_merges(
    proposals: Dict[int, Tuple[Sequence[int], float]],
) -> Dict[int, List[int]]:
    """Select a conflict-free subset of merge proposals.

    ``proposals[receiver] = (donors, weight)``.  A part may appear in at
    most one selected merge, in any role.  Returns
    ``{receiver: donors}`` for the chosen proposals, preferring heavier
    merges.
    """
    touched: Dict[int, List[int]] = {}
    for receiver, (donors, _weight) in proposals.items():
        for part in [receiver, *donors]:
            touched.setdefault(part, []).append(receiver)

    conflicts: Dict[int, Set[int]] = {r: set() for r in proposals}
    for _part, receivers in touched.items():
        for a in receivers:
            for b in receivers:
                if a != b:
                    conflicts[a].add(b)

    priority = {r: proposals[r][1] for r in proposals}
    chosen = maximal_independent_set(list(proposals), conflicts, priority)
    return {r: list(proposals[r][0]) for r in sorted(chosen)}
