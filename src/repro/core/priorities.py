"""Priority lists for multi-criteria partition improvement.

"An application executing the multi-criteria partition improvement procedure
provides a priority list of mesh entity types to be balanced such that the
imbalance of higher priority entity types is not increased while balancing a
lower priority type" (paper, Section III-A).  Lists are written exactly as
in Table I — e.g. ``"Vtx = Edge > Rgn"`` — with ``>`` separating priority
levels and ``=`` joining equal-priority types.  "If multiple mesh entity
types share equal priority then those entities are traversed in order of
increasing topological dimension."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .imbalance import ENTITY_DIMS, ENTITY_NAMES


@dataclass(frozen=True)
class PriorityList:
    """Parsed priority list: levels of entity dimensions, highest first."""

    #: Each level is a tuple of entity dimensions, sorted ascending (the
    #: traversal order for equal priorities).
    levels: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        seen = set()
        for level in self.levels:
            if not level:
                raise ValueError("empty priority level")
            for dim in level:
                if dim not in ENTITY_NAMES:
                    raise ValueError(f"unknown entity dimension {dim}")
                if dim in seen:
                    raise ValueError(
                        f"{ENTITY_NAMES[dim]} appears twice in the priority list"
                    )
                seen.add(dim)
            if tuple(sorted(level)) != level:
                raise ValueError(
                    "equal-priority entities must be listed in increasing "
                    "topological dimension"
                )

    def all_dims(self) -> List[int]:
        """Every balanced dimension, traversal order (level, then dim asc)."""
        return [dim for level in self.levels for dim in level]

    def higher_priority_dims(self, dim: int) -> List[int]:
        """Dimensions in strictly higher-priority levels than ``dim``'s."""
        result: List[int] = []
        for level in self.levels:
            if dim in level:
                return result
            result.extend(level)
        raise ValueError(f"dimension {dim} is not in the priority list")

    def lower_priority_dims(self, dim: int) -> List[int]:
        """Dimensions in strictly lower-priority levels than ``dim``'s."""
        found = False
        result: List[int] = []
        for level in self.levels:
            if found:
                result.extend(level)
            elif dim in level:
                found = True
        if not found:
            raise ValueError(f"dimension {dim} is not in the priority list")
        return result

    def __str__(self) -> str:
        return " > ".join(
            " = ".join(ENTITY_NAMES[d] for d in level) for level in self.levels
        )


def parse_priorities(spec: str) -> PriorityList:
    """Parse a Table-I-style priority string, e.g. ``"Vtx = Edge > Rgn"``.

    Names are case-insensitive; ``Vtx``/``Vertex``, ``Edge``, ``Face``,
    ``Rgn``/``Region`` are accepted.
    """
    aliases = {
        "vtx": 0, "vertex": 0, "vertices": 0,
        "edge": 1, "edges": 1,
        "face": 2, "faces": 2,
        "rgn": 3, "region": 3, "regions": 3, "elem": 3,
    }
    levels: List[Tuple[int, ...]] = []
    for chunk in spec.split(">"):
        names = [token.strip().lower() for token in chunk.split("=")]
        dims = []
        for name in names:
            if not name:
                raise ValueError(f"malformed priority list: {spec!r}")
            if name not in aliases:
                raise ValueError(
                    f"unknown entity type {name!r} in priority list {spec!r}"
                )
            dims.append(aliases[name])
        levels.append(tuple(sorted(dims)))
    if not levels:
        raise ValueError(f"empty priority list: {spec!r}")
    return PriorityList(tuple(levels))
