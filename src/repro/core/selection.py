"""Mesh element selection for migration (Section III-A-2 of the paper).

The rules decide *which* elements a heavy part ships to a candidate so the
target entity type's count drops without roughening the part boundary:

* **element (region) balance** — traverse the facets classified on the part
  boundary with the candidate and select adjacent elements that have more
  facets on the part boundary than on the part interior (Fig. 9): migrating
  them shrinks both the load and the boundary.
* **edge balance** (3D) — traverse part-boundary edges shared with the
  candidate that bound at most two local faces; the elements bounded by the
  edge form a small cavity whose migration removes the edge from this part
  with minimal side effects (Fig. 10a); edges bounding three or more faces
  are skipped because migrating their larger cavity would grow the boundary
  (Fig. 10b).
* **vertex balance** — Zhou's rule: part-boundary vertices shared with the
  candidate whose local element cavity is small (at most ``max_cavity``)
  are selected with their cavity, removing the vertex from this part.

Facet balance uses the element rule (facet counts track element counts
through the same boundary-shape mechanism), gated by the facet quota.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..mesh.entity import Ent
from ..partition.part import Part


def boundary_facet_count(part: Part, element: Ent) -> int:
    """Facets of ``element`` on any part boundary."""
    return sum(
        1 for facet in part.mesh.down(element) if part.is_shared(facet)
    )


def select_elements_by_boundary_rule(
    part: Part,
    candidate: int,
    quota: int,
    already: Set[Ent],
) -> List[Ent]:
    """Fig. 9 rule: elements with more boundary facets than interior ones.

    Selection is tiered: the strict rule (boundary > interior facets, which
    smooths the part boundary) runs first; if the quota is unmet — a flat
    boundary has no such elements — any element touching the candidate
    through a facet qualifies, so diffusion always makes progress.
    """
    mesh = part.mesh
    dim = mesh.dim()
    picks: List[Ent] = []

    def scan(strict: bool) -> None:
        for facet in part.shared_entities(dim - 1):
            if len(picks) >= quota:
                return
            if candidate not in part.remotes[facet]:
                continue
            for element in mesh.up(facet):
                if element in already or part.is_ghost(element):
                    continue
                if strict:
                    nfacets = len(mesh.down(element))
                    boundary = boundary_facet_count(part, element)
                    if boundary <= nfacets - boundary:
                        continue
                picks.append(element)
                already.add(element)
                if len(picks) >= quota:
                    return

    scan(strict=True)
    if len(picks) < quota:
        scan(strict=False)
    return picks


def _greedy_cavities(
    part: Part,
    quota: int,
    already: Set[Ent],
    keyed_cavities,
) -> List[Ent]:
    """Take cavities smallest-key first until ``quota`` keys are removed.

    ``keyed_cavities`` yields ``(sort_key, cavity_elements)``; cavities
    overlapping an earlier selection are skipped whole (a cavity only
    removes its key entity if it leaves together).
    """
    picks: List[Ent] = []
    removed = 0
    for _key, cavity in sorted(keyed_cavities, key=lambda kc: kc[0]):
        if removed >= quota:
            break
        if not cavity or any(e in already for e in cavity):
            continue
        picks.extend(cavity)
        already.update(cavity)
        removed += 1
    return picks


def select_edge_cavities(
    part: Part,
    candidate: int,
    quota: int,
    already: Set[Ent],
) -> List[Ent]:
    """Fig. 10 rule: cavities of part-boundary edges, fewest-local-faces first.

    Edges bounding two local faces cost one region and no boundary growth
    (Fig. 10a); each additional face makes the cavity's migration roughen
    the boundary more (Fig. 10b), so edges are taken in increasing order of
    local face count — the strict <=2 preference with a graded fallback that
    keeps diffusion from stalling on smooth boundaries.
    """
    mesh = part.mesh
    dim = mesh.dim()
    if dim < 3:
        # In 2D edges are facets; the boundary rule covers them.
        return select_elements_by_boundary_rule(part, candidate, quota, already)

    def cavities():
        for edge in part.shared_entities(1):
            if candidate not in part.remotes[edge]:
                continue
            local_faces = sum(
                1 for f in mesh.up(edge) if not part.is_ghost(f)
            )
            cavity = [
                r for r in mesh.adjacent(edge, dim) if not part.is_ghost(r)
            ]
            yield (local_faces, edge), cavity

    return _greedy_cavities(part, quota, already, cavities())


def select_vertex_cavities(
    part: Part,
    candidate: int,
    quota: int,
    already: Set[Ent],
) -> List[Ent]:
    """Zhou's rule: element cavities around boundary vertices, smallest first.

    Migrating a vertex's whole local cavity removes the vertex from this
    part; taking the smallest cavities first sheds the most vertices per
    migrated element (the "small number of mesh elements" the paper's
    Section III-A-1 prescribes).
    """
    mesh = part.mesh
    dim = mesh.dim()

    def cavities():
        for vert in part.shared_entities(0):
            if candidate not in part.remotes[vert]:
                continue
            cavity = [
                e for e in mesh.adjacent(vert, dim) if not part.is_ghost(e)
            ]
            yield (len(cavity), vert), cavity

    return _greedy_cavities(part, quota, already, cavities())


def select_for_dimension(
    part: Part,
    candidate: int,
    dim: int,
    quota: int,
    already: Set[Ent],
) -> List[Ent]:
    """Dispatch to the selection rule for the entity dimension balanced."""
    mesh_dim = part.mesh.dim()
    if quota <= 0:
        return []
    if dim >= mesh_dim - 1:
        return select_elements_by_boundary_rule(part, candidate, quota, already)
    if dim == 1:
        return select_edge_cavities(part, candidate, quota, already)
    if dim == 0:
        return select_vertex_cavities(part, candidate, quota, already)
    raise ValueError(
        f"no selection rule for dim {dim} in a {mesh_dim}D mesh"
    )
