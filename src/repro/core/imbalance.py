"""Entity imbalance metrics — the quantities ParMA controls.

The paper measures partition quality as, per entity type, the ratio of the
peak per-part entity count to the mean ("Imb.%" columns of Table II);
"peaks determine performance; valleys may leave a process idle ... while
peaks will leave the majority of processes idle or exhaust available
memory" (Section III).  Part-boundary entities are counted on every part
holding them, matching the dof-duplication cost of the analysis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

#: Entity-type names used in priority strings and reports (paper notation).
ENTITY_NAMES = {0: "Vtx", 1: "Edge", 2: "Face", 3: "Rgn"}
ENTITY_DIMS = {name: dim for dim, name in ENTITY_NAMES.items()}


def imbalance_of(counts: np.ndarray, dim: int, mean: Optional[float] = None) -> float:
    """Peak imbalance of one entity dimension: ``max / mean``.

    1.0 means perfect balance; the paper's "Imb.%" is ``100 * (value - 1)``.
    ``mean`` optionally fixes the normalization (Table II normalizes every
    test by the T0 partition's means).
    """
    column = np.asarray(counts, dtype=float)[:, dim]
    if mean is None:
        mean = float(column.mean())
    if mean <= 0:
        return 1.0
    return float(column.max()) / mean


def imbalances(
    counts: np.ndarray, means: Optional[Sequence[float]] = None
) -> np.ndarray:
    """Peak imbalance for all four entity dimensions."""
    return np.asarray(
        [
            imbalance_of(counts, d, None if means is None else float(means[d]))
            for d in range(4)
        ]
    )


def imbalance_percent(value: float) -> float:
    """Convert a max/mean ratio to the paper's percentage convention."""
    return 100.0 * (value - 1.0)


def heavy_parts(
    counts: np.ndarray, dim: int, tol: float, mean: Optional[float] = None
) -> List[int]:
    """Parts whose ``dim`` count exceeds ``mean * (1 + tol)``, heaviest first."""
    column = np.asarray(counts, dtype=float)[:, dim]
    if mean is None:
        mean = float(column.mean())
    over = [
        (float(column[p]), p)
        for p in range(len(column))
        if column[p] > mean * (1.0 + tol)
    ]
    over.sort(key=lambda item: (-item[0], item[1]))
    return [p for _load, p in over]


def light_parts(
    counts: np.ndarray, dim: int, mean: Optional[float] = None
) -> List[int]:
    """Parts whose ``dim`` count is below the mean (absolutely light)."""
    column = np.asarray(counts, dtype=float)[:, dim]
    if mean is None:
        mean = float(column.mean())
    return [p for p in range(len(column)) if column[p] < mean]


def balance_report(
    counts: np.ndarray, means: Optional[Sequence[float]] = None
) -> Dict[str, Dict[str, float]]:
    """Table-II-shaped report: per entity type, mean and imbalance percent."""
    counts = np.asarray(counts, dtype=float)
    report: Dict[str, Dict[str, float]] = {}
    for dim, name in ENTITY_NAMES.items():
        mean = (
            float(counts[:, dim].mean()) if means is None else float(means[dim])
        )
        report[name] = {
            "mean": mean,
            "imbalance_percent": imbalance_percent(
                imbalance_of(counts, dim, mean)
            ),
        }
    return report
