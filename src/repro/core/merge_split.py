"""ParMA heavy part splitting (Section III-B).

Iterative diffusion cannot remove large imbalance spikes — e.g. the
post-adaptation partitions of Fig. 13 with peaks over 400% — because a spike
surrounded by other loaded parts has nowhere to diffuse.  Heavy part
splitting is the "more directed, and aggressive" approach the paper
describes:

1. every light part independently solves a **0-1 knapsack** over its
   neighbors to find the largest donor set it could absorb while staying
   below the average element count;
2. a **maximal independent set** of these merge proposals (each part merged
   at most once) is executed, emptying the donor parts;
3. the **heavy parts are split** into the emptied parts, one average-sized
   piece at a time (each piece carved out by a graph bisection of the heavy
   part's dual graph), "until there are either no heavy parts or empty
   parts remaining".

"As needed, heavy part splitting is followed by iterative partition
improvement" — the caller composes :func:`heavy_part_splitting` with
:func:`repro.core.improve.improve_partition`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..mesh.entity import Ent
from ..obs.tracer import trace_span
from ..partition.dmesh import DistributedMesh
from ..partition.migration import migrate
from ..partition.multipart import merge_parts
from ..partitioners.graph import dual_graph
from ..partitioners.multilevel import multilevel_bisect
from .knapsack import knapsack
from .mis import independent_merges


@dataclass
class SplitStats:
    """Outcome of one heavy-part-splitting run."""

    rounds: int = 0
    merges_executed: int = 0
    splits_executed: int = 0
    initial_peak: float = 1.0
    final_peak: float = 1.0
    seconds: float = 0.0

    def summary(self) -> str:
        return (
            f"heavy part splitting: peak {100 * (self.initial_peak - 1):.1f}% "
            f"-> {100 * (self.final_peak - 1):.1f}% in {self.rounds} round(s) "
            f"({self.merges_executed} merges, {self.splits_executed} splits, "
            f"{self.seconds:.2f}s)"
        )


def _element_counts(dmesh: DistributedMesh) -> np.ndarray:
    dim = dmesh.element_dim()
    return dmesh.entity_counts()[:, dim].astype(float)


def propose_merges(
    dmesh: DistributedMesh, counts: np.ndarray, average: float
) -> Dict[int, Tuple[List[int], float]]:
    """Per-part knapsack merge proposals: ``{receiver: (donors, total)}``."""
    proposals: Dict[int, Tuple[List[int], float]] = {}
    for part in dmesh:
        pid = part.pid
        capacity = int(average - counts[pid])
        if capacity <= 0:
            continue
        neighbors = sorted(
            nb for nb in part.neighbors() if counts[nb] > 0
        )
        if not neighbors:
            continue
        weights = [int(counts[nb]) for nb in neighbors]
        values = [float(counts[nb]) for nb in neighbors]
        total, chosen = knapsack(weights, values, capacity)
        if chosen:
            donors = [neighbors[i] for i in chosen]
            proposals[pid] = (donors, total)
    return proposals


def split_off_piece(
    dmesh: DistributedMesh, heavy_pid: int, target_pid: int, piece: int
) -> int:
    """Bisect ``heavy_pid``'s elements and migrate ~``piece`` to ``target_pid``.

    The piece is carved with a multilevel bisection of the part's dual
    graph, so it leaves as one connected, boundary-friendly chunk.  Returns
    elements moved.
    """
    part = dmesh.part(heavy_pid)
    dim = dmesh.element_dim()
    if piece <= 0 or part.mesh.count(dim) <= 1:
        return 0
    graph = dual_graph(part.mesh)
    ratio = min(max(piece / graph.n, 1.0 / graph.n), 1.0 - 1.0 / graph.n)
    side = multilevel_bisect(
        graph.xadj,
        graph.adjncy,
        graph.weights.astype(float),
        ratio=1.0 - ratio,  # side 1 is the piece that leaves
        seed=heavy_pid,
    )
    moves = {
        element: target_pid
        for element, s in zip(graph.elements, side)
        if s == 1
    }
    if not moves or len(moves) == graph.n:
        return 0
    return migrate(dmesh, {heavy_pid: moves}).elements_moved


def heavy_part_splitting(
    dmesh: DistributedMesh,
    tol: float = 0.05,
    max_rounds: int = 4,
) -> SplitStats:
    """Run merge + split rounds until no heavy parts (or no progress)."""
    start = time.perf_counter()
    stats = SplitStats()
    counts = _element_counts(dmesh)
    average = counts.mean()
    stats.initial_peak = counts.max() / average if average > 0 else 1.0
    tracer = dmesh.tracer
    if tracer is not None and not tracer.enabled:
        tracer = None
    if tracer is not None:
        tracer.record_value("imbalance[split.peak]", stats.initial_peak)

    with trace_span(tracer, "heavy_part_splitting", tol=tol):
        for _round in range(max_rounds):
            counts = _element_counts(dmesh)
            average = counts.mean()
            heavies = [
                p for p in np.argsort(-counts)
                if counts[p] > average * (1.0 + tol)
            ]
            if not heavies:
                break
            stats.rounds += 1

            # Phase 1+2: knapsack proposals, conflict-free subset, execution.
            with trace_span(tracer, "split.merge_phase"):
                proposals = propose_merges(dmesh, counts, average)
                # Parts that must split cannot also be donors or receivers.
                busy = set(int(h) for h in heavies)
                proposals = {
                    r: (donors, w)
                    for r, (donors, w) in proposals.items()
                    if r not in busy and not busy.intersection(donors)
                }
                merges = independent_merges(proposals)
                # Parts already empty (donors of earlier rounds, or empty
                # from the start) are split targets too.
                empties: List[int] = [
                    int(p) for p in np.flatnonzero(counts == 0)
                ]
                for receiver in sorted(merges):
                    for donor in merges[receiver]:
                        merge_parts(dmesh, donor, receiver)
                        if donor not in empties:
                            empties.append(donor)
                        stats.merges_executed += 1

            if not empties:
                break  # nothing to split into: diffusion must take over

            # Phase 3: split heavy parts into the emptied parts.
            with trace_span(tracer, "split.split_phase"):
                for heavy in map(int, heavies):
                    while empties:
                        counts = _element_counts(dmesh)
                        if counts[heavy] <= average * (1.0 + tol):
                            break
                        piece = int(min(average, counts[heavy] - average))
                        if piece < 1:
                            break
                        target = empties.pop(0)
                        moved = split_off_piece(dmesh, heavy, target, piece)
                        if moved == 0:
                            empties.insert(0, target)
                            break
                        stats.splits_executed += 1
                    if not empties:
                        break

            if tracer is not None:
                counts = _element_counts(dmesh)
                average = counts.mean()
                peak = counts.max() / average if average > 0 else 1.0
                tracer.record_value("imbalance[split.peak]", peak)

    counts = _element_counts(dmesh)
    average = counts.mean()
    stats.final_peak = counts.max() / average if average > 0 else 1.0
    if tracer is not None:
        tracer.record_value("imbalance[split.peak]", stats.final_peak)
    stats.seconds = time.perf_counter() - start
    dmesh.counters.add("parma.split.runs")
    return stats
