"""Weighted diffusive balancing: application-defined element costs.

Graph partitioners "explicitly account for application defined imbalance
criteria via graph node weights" (paper, Section III); ParMA-style diffusion
supports the same through an element weight tag.  The canonical use is
predictive balancing (weights = estimated post-adaptation element counts,
:mod:`repro.core.predictive`) executed *diffusively* on the existing
distribution instead of by a from-scratch geometric repartition — far
cheaper when the partition is already mostly right.

:func:`weighted_diffusion` balances the per-part total element weight to a
tolerance using the same heavy-part/candidate/schedule machinery as the
entity-count improvement, with selection accumulating weight until each
candidate's quota is filled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Set

import numpy as np

from ..mesh.entity import Ent
from ..partition.dmesh import DistributedMesh
from ..partition.migration import migrate
from .selection import select_elements_by_boundary_rule


@dataclass
class WeightedStats:
    """Outcome of one weighted diffusion run."""

    iterations: int = 0
    elements_migrated: int = 0
    initial_imbalance: float = 1.0
    final_imbalance: float = 1.0
    converged: bool = False
    seconds: float = 0.0

    def summary(self) -> str:
        return (
            f"weighted diffusion: {100 * (self.initial_imbalance - 1):.1f}% "
            f"-> {100 * (self.final_imbalance - 1):.1f}% in "
            f"{self.iterations} iteration(s), "
            f"{self.elements_migrated} elements ({self.seconds:.2f}s)"
            + ("" if self.converged else " [not converged]")
        )


def part_weights(dmesh: DistributedMesh, weight_tag: str) -> np.ndarray:
    """Total element weight per part (missing tag values default to 1)."""
    dim = dmesh.element_dim()
    loads = np.zeros(dmesh.nparts)
    for part in dmesh:
        tag = part.mesh.tags.find(weight_tag)
        for element in part.mesh.entities(dim):
            if part.is_ghost(element):
                continue
            value = tag.get(element) if tag is not None else None
            loads[part.pid] += float(value) if value is not None else 1.0
    return loads


def weighted_diffusion(
    dmesh: DistributedMesh,
    weight_tag: str,
    tol: float = 0.05,
    max_iterations: int = 24,
) -> WeightedStats:
    """Diffuse element *weight* from heavy parts to light neighbors.

    Elements travel with their weight-tag values (migration does not move
    tags, so the plan carries them explicitly and re-tags on arrival).
    """
    start = time.perf_counter()
    dim = dmesh.element_dim()
    stats = WeightedStats()
    loads = part_weights(dmesh, weight_tag)
    mean = loads.mean()
    stats.initial_imbalance = loads.max() / mean if mean > 0 else 1.0

    for _iteration in range(max_iterations):
        loads = part_weights(dmesh, weight_tag)
        mean = loads.mean()
        if mean <= 0 or loads.max() / mean <= 1.0 + tol:
            stats.converged = True
            break

        plan: Dict[int, Dict[Ent, int]] = {}
        carried: Dict[int, Dict[int, float]] = {}  # pid -> {element gid: w}
        order = [
            p for p in np.argsort(-loads) if loads[p] > mean * (1.0 + tol)
        ]
        for heavy in map(int, order):
            part = dmesh.part(heavy)
            tag = part.mesh.tags.find(weight_tag)
            neighbors = sorted(
                nb for nb in part.neighbors()
                if loads[nb] < mean or loads[nb] < loads[heavy]
            )
            if not neighbors:
                continue
            excess = loads[heavy] - mean
            already: Set[Ent] = set()
            moves: Dict[Ent, int] = {}
            weights_out: Dict[int, float] = {}
            for cand in sorted(neighbors, key=lambda p: (loads[p], p)):
                capacity = (
                    mean - loads[cand]
                    if loads[cand] < mean
                    else (loads[heavy] - loads[cand]) / 2.0
                )
                budget = min(excess, max(capacity, 0.0))
                if budget <= 0:
                    continue
                shed = 0.0
                # Pull elements until the weight budget is filled.
                while shed < budget:
                    picked = select_elements_by_boundary_rule(
                        part, cand, quota=4, already=already
                    )
                    if not picked:
                        break
                    for element in picked:
                        value = (
                            float(tag.get(element))
                            if tag is not None and tag.has(element)
                            else 1.0
                        )
                        moves[element] = cand
                        weights_out[part.gid(element)] = value
                        shed += value
                        if shed >= budget:
                            break
                excess -= shed
                if excess <= 0:
                    break
            if moves:
                plan[heavy] = moves
                for element, cand in moves.items():
                    carried.setdefault(cand, {})[part.gid(element)] = (
                        weights_out[part.gid(element)]
                    )
        if not plan:
            break
        stats.elements_migrated += migrate(dmesh, plan).elements_moved
        stats.iterations += 1
        # Re-tag migrated elements on their new parts.
        for pid, values in carried.items():
            part = dmesh.part(pid)
            tag = part.mesh.tag(weight_tag)
            for gid, value in values.items():
                landed = part.by_gid(dim, gid)
                if landed is not None:
                    tag.set(landed, value)

    loads = part_weights(dmesh, weight_tag)
    mean = loads.mean()
    stats.final_imbalance = loads.max() / mean if mean > 0 else 1.0
    if stats.final_imbalance <= 1.0 + tol:
        stats.converged = True
    stats.seconds = time.perf_counter() - start
    return stats
