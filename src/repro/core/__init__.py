"""ParMA: dynamic load balancing through direct use of mesh adjacencies.

The paper's core contribution (Section III): multi-criteria greedy diffusive
partition improvement and heavy part splitting, built on the distributed
mesh's constant-time adjacency and partition-model information instead of a
separate graph data structure.
"""

from .balancer import ParMA
from .candidates import candidate_parts, is_lightly_loaded
from .imbalance import (
    ENTITY_DIMS,
    ENTITY_NAMES,
    balance_report,
    heavy_parts,
    imbalance_of,
    imbalance_percent,
    imbalances,
    light_parts,
)
from .improve import DimensionStats, ImproveStats, improve_partition
from .knapsack import knapsack
from .merge_split import (
    SplitStats,
    heavy_part_splitting,
    propose_merges,
    split_off_piece,
)
from .mis import independent_merges, maximal_independent_set
from .predictive import (
    predicted_element_weight,
    predicted_weights,
    predictive_balance,
)
from .priorities import PriorityList, parse_priorities
from .schedule import migration_schedule
from .weighted import WeightedStats, part_weights, weighted_diffusion
from .selection import (
    select_edge_cavities,
    select_elements_by_boundary_rule,
    select_for_dimension,
    select_vertex_cavities,
)

__all__ = [
    "ENTITY_DIMS",
    "ENTITY_NAMES",
    "DimensionStats",
    "ImproveStats",
    "ParMA",
    "PriorityList",
    "SplitStats",
    "balance_report",
    "candidate_parts",
    "heavy_part_splitting",
    "heavy_parts",
    "imbalance_of",
    "imbalance_percent",
    "imbalances",
    "independent_merges",
    "improve_partition",
    "is_lightly_loaded",
    "knapsack",
    "light_parts",
    "maximal_independent_set",
    "migration_schedule",
    "parse_priorities",
    "predicted_element_weight",
    "predicted_weights",
    "predictive_balance",
    "propose_merges",
    "select_edge_cavities",
    "select_elements_by_boundary_rule",
    "select_for_dimension",
    "select_vertex_cavities",
    "split_off_piece",
    "WeightedStats",
    "part_weights",
    "weighted_diffusion",
]
