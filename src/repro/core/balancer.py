"""ParMA facade: the public entry point for dynamic load balancing.

Bundles the Section III procedures behind one object so applications write

    balancer = ParMA(dmesh)
    balancer.improve("Vtx = Edge > Rgn", tol=0.05)

mirroring how ParMA slots into a PUMI-based simulation workflow.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..field.sizefield import SizeField
from ..partition.dmesh import DistributedMesh
from .imbalance import balance_report, imbalances
from .improve import ImproveStats, improve_partition
from .merge_split import SplitStats, heavy_part_splitting
from .predictive import predictive_balance
from .priorities import PriorityList


class ParMA:
    """Partitioning using Mesh Adjacencies, bound to one distributed mesh."""

    def __init__(self, dmesh: DistributedMesh) -> None:
        self.dmesh = dmesh

    # -- measurements -----------------------------------------------------

    def imbalances(self) -> np.ndarray:
        """Current peak imbalance (max/mean) per entity dimension."""
        return imbalances(self.dmesh.entity_counts())

    def report(self, means=None):
        """Table-II-shaped balance report (optionally with fixed means)."""
        return balance_report(self.dmesh.entity_counts(), means)

    # -- procedures ----------------------------------------------------------

    def improve(
        self,
        priorities: Union[str, PriorityList],
        tol: float = 0.05,
        max_iterations: int = 24,
        **kwargs,
    ) -> ImproveStats:
        """Multi-criteria diffusive partition improvement (Section III-A)."""
        return improve_partition(
            self.dmesh, priorities, tol=tol, max_iterations=max_iterations,
            **kwargs,
        )

    def split_heavy_parts(
        self, tol: float = 0.05, max_rounds: int = 4
    ) -> SplitStats:
        """Heavy part splitting (Section III-B)."""
        return heavy_part_splitting(self.dmesh, tol=tol, max_rounds=max_rounds)

    def rebalance_spikes(
        self,
        priorities: Union[str, PriorityList] = "Rgn",
        tol: float = 0.05,
    ) -> tuple:
        """Splitting followed by diffusion, the paper's composed recipe."""
        split_stats = self.split_heavy_parts(tol=tol)
        improve_stats = self.improve(priorities, tol=tol)
        return split_stats, improve_stats

    def predictive_balance(self, size: SizeField, **kwargs) -> int:
        """Pre-adaptation balancing under predicted element weights."""
        return predictive_balance(self.dmesh, size, **kwargs)
