"""Candidate-part selection for diffusive improvement.

"The ParMA algorithm reduces entity imbalance by migrating a small number of
mesh elements from heavily loaded parts to the lightly loaded neighboring
parts, which are called candidate parts.  There are two categories for
candidate parts: absolutely lightly loaded, and relatively lightly loaded."
(paper, Section III-A-1).

A neighbor is **absolutely** light when its count is below the global mean
(or the application threshold), **relatively** light when its count is below
the heavy part's.  "A candidate part must be lightly loaded, either
absolutely or relatively, for all lesser priority mesh entity types then the
mesh entity type being balanced."  To honour the no-harm rule for higher
priority types, a candidate additionally must not itself be heavy in any
higher-priority dimension.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..partition.dmesh import DistributedMesh


def is_lightly_loaded(
    counts: np.ndarray,
    pid: int,
    dim: int,
    heavy_pid: int,
    mean: float,
    mode: str = "both",
) -> bool:
    """Whether ``pid`` is lightly loaded in ``dim`` relative to ``heavy_pid``.

    ``mode`` selects the category: ``"absolute"``, ``"relative"``, or
    ``"both"`` (either suffices — the paper's full rule).
    """
    load = float(counts[pid, dim])
    absolute = load < mean
    relative = load < float(counts[heavy_pid, dim])
    if mode == "absolute":
        return absolute
    if mode == "relative":
        return relative
    if mode == "both":
        return absolute or relative
    raise ValueError(f"unknown candidate mode {mode!r}")


def candidate_parts(
    dmesh: DistributedMesh,
    counts: np.ndarray,
    heavy_pid: int,
    dim: int,
    lower_priority_dims: Sequence[int] = (),
    higher_priority_dims: Sequence[int] = (),
    tol: float = 0.05,
    means: Optional[Sequence[float]] = None,
    mode: str = "both",
) -> List[int]:
    """Candidate parts for unloading ``heavy_pid``'s ``dim`` entities.

    Returns neighboring parts, lightest in ``dim`` first, that are

    * lightly loaded in ``dim`` (per ``mode``),
    * lightly loaded in every lower-priority dimension, and
    * not heavy (above ``mean * (1 + tol)``) in any higher-priority one.
    """
    counts = np.asarray(counts, dtype=float)
    if means is None:
        means = counts.mean(axis=0)
    result: List[int] = []
    for nb in sorted(dmesh.part(heavy_pid).neighbors()):
        if not is_lightly_loaded(
            counts, nb, dim, heavy_pid, float(means[dim]), mode
        ):
            continue
        # Lesser-priority gate: the candidate must not become (or be) a
        # spike in any lower-priority type — below the application spike
        # threshold mean*(1+tol), or at least below the heavy part.  (A
        # strictly-below-mean reading deadlocks whenever every neighbor
        # sits at the mean, which is the normal balanced state.)
        if not all(
            counts[nb, d] < float(means[d]) * (1.0 + tol)
            or counts[nb, d] < counts[heavy_pid, d]
            for d in lower_priority_dims
        ):
            continue
        # Higher-priority gate (the no-harm rule): receiving load must not
        # turn the candidate into a spike in an already-balanced type, so
        # only candidates strictly below the mean there may receive.
        if any(
            counts[nb, d] >= float(means[d])
            for d in higher_priority_dims
        ):
            continue
        result.append(nb)
    result.sort(key=lambda p: (counts[p, dim], p))
    return result
