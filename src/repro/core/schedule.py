"""Migration schedule: how much load each heavy part sheds to each candidate.

ParMA "uses constant time mesh adjacency queries ... to determine how much
load must be migrated, the migration schedule" (paper, Section III).  The
schedule computed here brings every heavy part down toward the mean by
distributing its excess over its candidate parts proportionally to each
candidate's capacity: an absolutely light candidate can absorb up to
``mean - load``; a merely relatively light one up to half the gap to the
heavy part (so diffusion never overshoots into a new spike).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


def migration_schedule(
    counts: np.ndarray,
    heavy_pid: int,
    candidates: Sequence[int],
    dim: int,
    mean: float,
    tol: float = 0.05,
) -> Dict[int, int]:
    """Per-candidate quota of ``dim`` entities to send from ``heavy_pid``.

    The total never exceeds the heavy part's excess above the mean, and each
    candidate's quota never exceeds its absorption capacity.  Quotas are at
    least 1 for every candidate retained (a zero quota drops the candidate).
    """
    counts = np.asarray(counts, dtype=float)
    load = float(counts[heavy_pid, dim])
    excess = load - mean
    if excess <= 0 or not candidates:
        return {}

    capacities: List[float] = []
    for cand in candidates:
        cand_load = float(counts[cand, dim])
        if cand_load < mean:
            capacity = mean - cand_load
        else:
            capacity = max((load - cand_load) / 2.0, 0.0)
        capacities.append(capacity)
    total_capacity = sum(capacities)
    if total_capacity <= 0:
        return {}

    budget = min(excess, total_capacity)
    schedule: Dict[int, int] = {}
    for cand, capacity in zip(candidates, capacities):
        quota = int(round(budget * capacity / total_capacity))
        if quota >= 1:
            schedule[cand] = quota
    if not schedule:
        # Excess too small to round anywhere: send one unit to the best
        # candidate so tiny spikes still diffuse.
        best = max(
            range(len(candidates)), key=lambda i: (capacities[i], -candidates[i])
        )
        if capacities[best] > 0:
            schedule[candidates[best]] = 1
    return schedule
