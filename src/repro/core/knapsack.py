"""0-1 knapsack solver (exact dynamic program).

Heavy part splitting "begins by independently solving the 0-1 knapsack
problem on each part to determine the largest set of neighboring parts which
can be merged while keeping the total number of elements less than the
average" (paper, Section III-B, citing Kellerer/Pferschy/Pisinger).

Weights here are element counts (thousands), so the classic O(n * capacity)
table is exact and fast at the part counts involved.  A capacity-scaling
fallback keeps pathological capacities bounded.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def knapsack(
    weights: Sequence[int],
    values: Sequence[float],
    capacity: int,
    max_table: int = 2_000_000,
) -> Tuple[float, List[int]]:
    """Maximize total value with total weight <= capacity.

    Returns ``(best value, chosen item indices)``.  When the exact DP table
    would exceed ``max_table`` cells, weights and capacity are scaled down
    (making the solution conservative: never overweight, possibly slightly
    sub-optimal).
    """
    n = len(weights)
    if n != len(values):
        raise ValueError("weights and values must have equal length")
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")
    weights = [int(w) for w in weights]
    if any(w < 0 for w in weights):
        raise ValueError("negative item weight")
    if n == 0 or capacity == 0:
        return 0.0, []

    scale = 1
    while n * (capacity // scale + 1) > max_table:
        scale *= 2
    if scale > 1:
        # Round weights UP so the scaled solution never exceeds capacity.
        weights = [-(-w // scale) for w in weights]
        capacity = capacity // scale

    table = np.zeros((n + 1, capacity + 1))
    for i in range(1, n + 1):
        w = weights[i - 1]
        v = values[i - 1]
        table[i] = table[i - 1]
        if w <= capacity:
            candidate = table[i - 1, : capacity - w + 1] + v
            improved = candidate > table[i, w:]
            table[i, w:][improved] = candidate[improved]

    chosen: List[int] = []
    remaining = capacity
    for i in range(n, 0, -1):
        if table[i, remaining] != table[i - 1, remaining]:
            chosen.append(i - 1)
            remaining -= weights[i - 1]
    chosen.reverse()
    return float(table[n, capacity]), chosen
