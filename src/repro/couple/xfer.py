"""Distributed cross-mesh solution transfer and transformer stages.

The data-motion core of the coupling hub.  :func:`transfer_between` moves a
vertex field from one distributed mesh onto the vertices of another — the
two meshes partitioned independently, at independent part counts — through
a *cross-world* star forest: source and target gangs join one synthetic
communicator of ``nsrc + ndst`` parts (the arXiv 1506.06194 pattern of
expressing overlap data motion over PetscSF), and the exchange is two
forest operations:

1. **points broadcast** — each target part's query coordinates (its local
   vertices) are roots broadcast to every source part;
2. **winner reduce** — each source part batch-locates every query point
   over its SoA element arrays (:class:`~repro.field.shape.BatchLocator`
   with element *global ids* as order keys) and contributes a winner key
   ``(not contained, centroid distance^2, gid, value)`` per point; a
   ``min`` reduce over the transpose forest elects the global winner.

Because global ids equal the serial mesh's element ids and the winner key
is a pure function of geometry, the elected element — and therefore every
interpolated bit — is exactly what serial
:func:`~repro.field.transfer.transfer_vertex_field` produces, at any part
count.  That bit-parity is the subsystem's acceptance gate.

Also here: the composable transformer stages channels declare
(:class:`Interpolate` / :class:`Scale` / :class:`TimeWindow`), applied by
the hub between communicator groups in the InterscaleHUB style.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..field.shape import BatchLocator
from ..obs.stats import CommProbe
from ..obs.tracer import Tracer, trace_span
from ..parallel.perf import GLOBAL, PerfCounters
from ..parallel.sf import SFComm, StarForest
from ..partition.dmesh import DistributedMesh
from ..partition.fieldsync import DistributedField
from .channel import CoupleError, TransformSpec

__all__ = [
    "Interpolate",
    "Scale",
    "TimeWindow",
    "XferStats",
    "apply_stages",
    "build_stages",
    "transfer_between",
]


# ---------------------------------------------------------------------------
# transformer stages
# ---------------------------------------------------------------------------


class Interpolate:
    """Marker stage: cross-mesh interpolation happens at the sampling side.

    Declaring it on a channel documents that the values entering the
    channel are already interpolated onto the receiver's query points; the
    stage itself is the identity.
    """

    kind = "interpolate"

    def apply(self, values: np.ndarray, seq: int) -> np.ndarray:
        return values


class Scale:
    """Multiply every component by a constant factor (unit conversion)."""

    kind = "scale"

    def __init__(self, factor: float) -> None:
        self.factor = float(factor)

    def apply(self, values: np.ndarray, seq: int) -> np.ndarray:
        return values * self.factor


class TimeWindow:
    """Moving average over the last ``width`` frames (by arrival order).

    The standard rate-adapting stage between solvers advancing at
    different cadences: the receiver sees a smoothed signal.  The window
    history is per-stage state, so each job run starts fresh; the mean is
    a fixed-axis reduction over a stacked array — deterministic.
    """

    kind = "time-window"

    def __init__(self, width: int) -> None:
        if width < 1:
            raise CoupleError(f"time-window width must be >= 1, got {width}")
        self.width = int(width)
        self._history: Deque[np.ndarray] = deque(maxlen=self.width)

    def apply(self, values: np.ndarray, seq: int) -> np.ndarray:
        self._history.append(np.asarray(values, dtype=float))
        return np.stack(list(self._history), axis=0).mean(axis=0)


def build_stages(transforms: Sequence[TransformSpec]) -> List[Any]:
    """Instantiate the stage pipeline a channel spec declares."""
    stages: List[Any] = []
    for spec in transforms:
        if spec.kind == "interpolate":
            stages.append(Interpolate())
        elif spec.kind == "scale":
            stages.append(Scale(spec.param))
        elif spec.kind == "time-window":
            stages.append(TimeWindow(int(spec.param)))
        else:  # pragma: no cover - TransformSpec already validates
            raise CoupleError(f"unknown transform kind {spec.kind!r}")
    return stages


def apply_stages(
    stages: Sequence[Any], values: np.ndarray, seq: int
) -> np.ndarray:
    """Run ``values`` through the stage pipeline in declaration order."""
    for stage in stages:
        values = stage.apply(values, seq)
    return values


# ---------------------------------------------------------------------------
# cross-mesh transfer
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class XferStats:
    """Byte-deterministic accounting of one cross-mesh transfer."""

    points: int
    contained: int
    nsrc: int
    ndst: int
    sf_ops: int
    messages: int
    wire_bytes: int
    supersteps: int
    encoded_bytes: int

    def to_dict(self) -> Dict[str, int]:
        return {
            "points": self.points,
            "contained": self.contained,
            "nsrc": self.nsrc,
            "ndst": self.ndst,
            "sf_ops": self.sf_ops,
            "messages": self.messages,
            "wire_bytes": self.wire_bytes,
            "supersteps": self.supersteps,
            "encoded_bytes": self.encoded_bytes,
        }


def transfer_between(
    src_dmesh: DistributedMesh,
    src_field: DistributedField,
    dst_dmesh: DistributedMesh,
    name: Optional[str] = None,
    counters: Optional[PerfCounters] = None,
    tracer: Optional[Tracer] = None,
) -> Tuple[DistributedField, XferStats]:
    """Interpolate ``src_field`` onto every vertex of ``dst_dmesh``.

    Serial-equivalent to ``transfer_vertex_field(serial_src, field,
    serial_dst)`` bit-for-bit (see module docstring), at any combination
    of part counts.  Every target part fills *all* of its local vertices —
    shared copies are computed identically on every residence part, so the
    result needs no ownership synchronization.

    Returns ``(dst_field, stats)``.
    """
    if src_field.entity_dim != 0:
        raise CoupleError("cross-mesh transfer supports vertex fields")
    nsrc = src_dmesh.nparts
    ndst = dst_dmesh.nparts
    counters = counters if counters is not None else GLOBAL
    comm = SFComm(nsrc + ndst, counters=counters, tracer=tracer)
    probe = CommProbe(counters)
    out_name = name if name is not None else src_field.name
    dst_field = DistributedField(
        dst_dmesh, out_name, 0, src_field.on(0).shape
    )

    with trace_span(tracer, "couple.xfer", field=out_name):
        # Target query points: every part's local vertex coordinates.
        dst_ids: Dict[int, np.ndarray] = {}
        dst_points: Dict[int, np.ndarray] = {}
        for part in dst_dmesh:
            ids = part.mesh.core.live_ids(0)
            dst_ids[part.pid] = ids
            dst_points[part.pid] = np.array(part.mesh.coords_view()[ids])

        # Phase 1: broadcast each target part's points to every source part.
        points_sf = StarForest(comm, name="couple.points")
        for t in range(ndst):
            for s in range(nsrc):
                points_sf.add_leaf(s, t, nsrc + t, t)
        received: Dict[int, Dict[int, np.ndarray]] = {
            s: {} for s in range(nsrc)
        }

        def deliver_points(s: int, t: int, pts: np.ndarray) -> None:
            received[s][t] = np.asarray(pts, dtype=float)

        points_sf.bcast(
            lambda _rpid, t: dst_points[t],
            leaf_set=deliver_points,
        )

        # Local batch location on every source part: one locator over the
        # part's SoA arrays, element gids as partition-invariant order keys.
        samples: Dict[Tuple[int, int], Tuple[np.ndarray, ...]] = {}
        for s in range(nsrc):
            part = src_dmesh.part(s)
            dim = part.mesh.dim()
            elem_ids = part.mesh.core.live_ids(dim)
            locator = BatchLocator(
                part.mesh, order=part.gids_of(dim, elem_ids)
            )
            field = src_field.on(s)
            for t in range(ndst):
                values, rows, contained, d2 = locator.sample_full(
                    received[s][t], field
                )
                samples[(s, t)] = (
                    values, locator.order[rows], contained, d2
                )

        # Phase 2: transpose reduce — every source part contributes one
        # winner key per query point; min elects the global winner.
        values_sf = StarForest(comm, name="couple.values")
        npoints = 0
        for t in range(ndst):
            n = len(dst_points[t])
            npoints += n
            for j in range(n):
                for s in range(nsrc):
                    values_sf.add_leaf(s, (t, j), nsrc + t, (t, j))

        def winner_key(s: int, handle: Tuple[int, int]) -> Tuple[Any, ...]:
            t, j = handle
            values, gids, contained, d2 = samples[(s, t)]
            return (
                int(not contained[j]),
                float(d2[j]),
                int(gids[j]),
                tuple(float(v) for v in values[j]),
            )

        winners: Dict[int, List[Optional[Tuple[Any, ...]]]] = {
            t: [None] * len(dst_points[t]) for t in range(ndst)
        }

        def set_winner(
            _rpid: int, handle: Tuple[int, int], combined: Tuple[Any, ...]
        ) -> None:
            t, j = handle
            winners[t][j] = combined

        values_sf.reduce(winner_key, set_winner, op="min")

        # Write-back: one scatter per target part.
        contained_total = 0
        for t in range(ndst):
            rows = winners[t]
            if any(row is None for row in rows):  # pragma: no cover - guard
                raise CoupleError(
                    f"target part {t} has unlocated query points"
                )
            contained_total += sum(1 for row in rows if row[0] == 0)
            values = np.array([row[3] for row in rows], dtype=float)
            dst_field.on(t).set_many(dst_ids[t], values)

        counters.add("couple.xfer.ops")
        counters.add("couple.xfer.points", npoints)

    stats = XferStats(
        points=npoints,
        contained=contained_total,
        nsrc=nsrc,
        ndst=ndst,
        sf_ops=2,
        messages=probe.messages(),
        wire_bytes=probe.wire_bytes(),
        supersteps=probe.supersteps(),
        encoded_bytes=probe.encoded_bytes(),
    )
    return dst_field, stats
