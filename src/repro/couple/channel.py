"""Typed inter-job channels carrying binary-codec field frames.

The coupling hub's transport layer.  A :class:`ChannelSpec` declares one
directed coupling between two jobs of a service job graph — the source job
produces field frames, the destination consumes them, and an optional chain
of :class:`TransformSpec` stages (scale / time-window / interpolate, in the
EBRAINS-InterscaleHUB style) is applied to forward values in between.

Frames are byte-deterministic: a :class:`FieldFrame` encodes through the
coalesced binary codec (:func:`repro.parallel.codec.dumps`) with the fixed
``repro.couple/1`` wire schema, so the byte stream on a channel is a pure
function of the workload's data — two identical coupled runs ship identical
bytes, which is what keeps the service report byte-identical too.

A :class:`Channel` is the live bidirectional pipe (bounded deques, condition
variables) between two *concurrently running* gangs; :class:`Endpoint` is
one job's role-typed view of it, and :class:`ChannelHub` owns the channels
of one job graph, hands each job its ports, and closes a job's channels
when it settles so a surviving peer fails fast instead of blocking forever.
"""

from __future__ import annotations

import threading
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..parallel.codec import dumps, loads
from ..parallel.perf import GLOBAL, PerfCounters

__all__ = [
    "FRAME_SCHEMA",
    "TRANSFORM_KINDS",
    "Channel",
    "ChannelClosedError",
    "ChannelHub",
    "ChannelSpec",
    "CoupleError",
    "Endpoint",
    "FieldFrame",
    "TransformSpec",
]

#: Wire schema tag of every frame on every channel.
FRAME_SCHEMA = "repro.couple/1"

#: Transformer stages a channel may declare, applied in order to forward
#: ("values") frames: ``interpolate`` marks the cross-mesh interpolation
#: (performed by the sampling side; identity on the frame), ``scale``
#: multiplies by ``param``, ``time-window`` averages the last ``param``
#: frames (a moving window in sequence numbers).
TRANSFORM_KINDS = ("interpolate", "scale", "time-window")

#: Frame kinds: ``points`` (query coordinates, dst -> src handshake),
#: ``values`` (sampled field data, src -> dst).
FRAME_KINDS = ("points", "values")


class CoupleError(RuntimeError):
    """A coupling-layer failure (bad spec, closed channel, timeout)."""


class ChannelClosedError(CoupleError):
    """The peer's job settled and the channel was drained."""


@dataclass(frozen=True)
class TransformSpec:
    """One declarative transformer stage of a channel."""

    kind: str
    param: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in TRANSFORM_KINDS:
            raise CoupleError(
                f"unknown transform kind {self.kind!r}; "
                f"expected one of {TRANSFORM_KINDS}"
            )
        if self.kind == "time-window" and (
            self.param < 1 or self.param != int(self.param)
        ):
            raise CoupleError(
                f"time-window width must be a positive integer, "
                f"got {self.param}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "param": self.param}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TransformSpec":
        unknown = set(doc) - {"kind", "param"}
        if unknown:
            raise CoupleError(f"unknown transform field(s): {sorted(unknown)}")
        if "kind" not in doc:
            raise CoupleError("a transform needs a 'kind'")
        return cls(kind=str(doc["kind"]), param=float(doc.get("param", 1.0)))


@dataclass(frozen=True)
class ChannelSpec:
    """One directed coupling: ``src`` job's field flows to the ``dst`` job."""

    name: str
    src: str
    dst: str
    field: str = "u"
    ncomp: int = 1
    transforms: Tuple[TransformSpec, ...] = ()
    capacity: int = 64

    def __post_init__(self) -> None:
        for attr in ("name", "src", "dst", "field"):
            value = getattr(self, attr)
            if not value or not isinstance(value, str):
                raise CoupleError(
                    f"channel {attr} must be a non-empty string, got {value!r}"
                )
        if self.src == self.dst:
            raise CoupleError(
                f"channel {self.name!r} couples job {self.src!r} to itself"
            )
        if self.ncomp < 1:
            raise CoupleError(f"ncomp must be >= 1, got {self.ncomp}")
        if self.capacity < 1:
            raise CoupleError(f"capacity must be >= 1, got {self.capacity}")
        object.__setattr__(self, "transforms", tuple(self.transforms))

    def jobs(self) -> Tuple[str, str]:
        return (self.src, self.dst)

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "src": self.src,
            "dst": self.dst,
            "field": self.field,
            "ncomp": self.ncomp,
            "capacity": self.capacity,
        }
        if self.transforms:
            doc["transforms"] = [t.to_dict() for t in self.transforms]
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ChannelSpec":
        known = {"name", "src", "dst", "field", "ncomp", "transforms",
                 "capacity"}
        unknown = set(doc) - known
        if unknown:
            raise CoupleError(f"unknown channel field(s): {sorted(unknown)}")
        for key in ("name", "src", "dst"):
            if key not in doc:
                raise CoupleError(f"a channel needs '{key}'")
        transforms = doc.get("transforms", [])
        if not isinstance(transforms, (list, tuple)):
            raise CoupleError("channel transforms must be a list")
        return cls(
            name=str(doc["name"]),
            src=str(doc["src"]),
            dst=str(doc["dst"]),
            field=str(doc.get("field", "u")),
            ncomp=int(doc.get("ncomp", 1)),
            transforms=tuple(
                t if isinstance(t, TransformSpec) else TransformSpec.from_dict(t)
                for t in transforms
            ),
            capacity=int(doc.get("capacity", 64)),
        )


@dataclass(frozen=True)
class FieldFrame:
    """One unit of channel traffic: a batch of field values or points."""

    channel: str
    kind: str
    seq: int
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.kind not in FRAME_KINDS:
            raise CoupleError(
                f"unknown frame kind {self.kind!r}; expected {FRAME_KINDS}"
            )
        if self.seq < 0:
            raise CoupleError(f"frame seq must be >= 0, got {self.seq}")
        values = np.ascontiguousarray(self.values, dtype=float)
        if values.ndim != 2:
            raise CoupleError(
                f"frame values must be 2-D (n, ncomp), got {values.shape}"
            )
        object.__setattr__(self, "values", values)

    @property
    def ncomp(self) -> int:
        return int(self.values.shape[1])

    def digest(self) -> int:
        """CRC-32 of the canonical payload bytes (deterministic)."""
        return zlib.crc32(self.values.tobytes())

    def encode(self) -> bytes:
        """The frame's ``repro.couple/1`` binary wire form."""
        return dumps(
            {
                "schema": FRAME_SCHEMA,
                "channel": self.channel,
                "kind": self.kind,
                "seq": self.seq,
                "values": self.values,
            }
        )

    @classmethod
    def decode(cls, blob: bytes) -> "FieldFrame":
        doc = loads(blob)
        if not isinstance(doc, dict) or doc.get("schema") != FRAME_SCHEMA:
            raise CoupleError(
                f"not a {FRAME_SCHEMA} frame: "
                f"{doc.get('schema') if isinstance(doc, dict) else type(blob)}"
            )
        return cls(
            channel=str(doc["channel"]),
            kind=str(doc["kind"]),
            seq=int(doc["seq"]),
            values=doc["values"],
        )


class _Direction:
    """One direction of a channel: a bounded deque of encoded frames."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.frames: Deque[bytes] = deque()
        self.cond = threading.Condition()
        self.closed = False
        self.sent_frames = 0
        self.sent_bytes = 0

    def put(self, blob: bytes, timeout: Optional[float]) -> None:
        with self.cond:
            if not self.cond.wait_for(
                lambda: self.closed or len(self.frames) < self.capacity,
                timeout=timeout,
            ):
                raise CoupleError("channel send timed out (peer not draining)")
            if self.closed:
                raise ChannelClosedError("cannot send on a closed channel")
            self.frames.append(blob)
            self.sent_frames += 1
            self.sent_bytes += len(blob)
            self.cond.notify_all()

    def get(self, timeout: Optional[float]) -> bytes:
        with self.cond:
            if not self.cond.wait_for(
                lambda: self.closed or self.frames, timeout=timeout
            ):
                raise CoupleError("channel recv timed out (peer not sending)")
            if self.frames:
                blob = self.frames.popleft()
                self.cond.notify_all()
                return blob
            raise ChannelClosedError(
                "channel closed by peer and fully drained"
            )

    def close(self) -> None:
        with self.cond:
            self.closed = True
            self.cond.notify_all()


class Channel:
    """The live bidirectional pipe declared by one :class:`ChannelSpec`.

    ``fwd`` carries src→dst traffic (sampled values), ``rev`` dst→src (the
    query-point handshake).  Send/recv are thread-safe and blocking with a
    timeout; a closed channel drains its remaining frames, then raises
    :class:`ChannelClosedError` — waking any peer blocked on it.
    """

    def __init__(
        self, spec: ChannelSpec, counters: Optional[PerfCounters] = None
    ) -> None:
        self.spec = spec
        self.counters = counters if counters is not None else GLOBAL
        self._fwd = _Direction(spec.capacity)
        self._rev = _Direction(spec.capacity)

    def _dir(self, sender_role: str) -> _Direction:
        return self._fwd if sender_role == "src" else self._rev

    def send(
        self, sender_role: str, frame: FieldFrame,
        timeout: Optional[float] = None,
    ) -> int:
        """Encode and enqueue ``frame``; returns the wire byte count."""
        blob = frame.encode()
        self._dir(sender_role).put(blob, timeout)
        self.counters.add("couple.frames.sent")
        self.counters.add("couple.bytes.sent", len(blob))
        return len(blob)

    def recv(
        self, receiver_role: str, timeout: Optional[float] = None
    ) -> FieldFrame:
        """Dequeue and decode the next frame addressed to ``receiver_role``."""
        sender = "src" if receiver_role == "dst" else "dst"
        blob = self._dir(sender).get(timeout)
        self.counters.add("couple.frames.received")
        return FieldFrame.decode(blob)

    def close(self) -> None:
        self._fwd.close()
        self._rev.close()

    @property
    def closed(self) -> bool:
        return self._fwd.closed and self._rev.closed

    def stats(self) -> Dict[str, int]:
        """Deterministic per-channel traffic accounting."""
        return {
            "frames_fwd": self._fwd.sent_frames,
            "bytes_fwd": self._fwd.sent_bytes,
            "frames_rev": self._rev.sent_frames,
            "bytes_rev": self._rev.sent_bytes,
        }


class Endpoint:
    """One job's role-typed view of a channel.

    The ``src`` endpoint's :meth:`send_values` applies the channel's
    declared transformer stages (in order) before the frame is encoded —
    the InterscaleHUB pattern of transformation *between* the communicator
    groups — so workloads push raw samples and the spec decides what the
    peer sees.  Stage state (the time-window history) lives on the
    endpoint, created fresh per job run.
    """

    def __init__(self, channel: Channel, role: str) -> None:
        if role not in ("src", "dst"):
            raise CoupleError(f"endpoint role must be src/dst, got {role!r}")
        self.channel = channel
        self.role = role
        from .xfer import build_stages  # local: avoid import cycle

        self._stages = build_stages(channel.spec.transforms)

    @property
    def spec(self) -> ChannelSpec:
        return self.channel.spec

    def send(self, frame: FieldFrame, timeout: Optional[float] = None) -> int:
        return self.channel.send(self.role, frame, timeout=timeout)

    def recv(self, timeout: Optional[float] = None) -> FieldFrame:
        return self.channel.recv(self.role, timeout=timeout)

    def send_points(
        self, points: np.ndarray, timeout: Optional[float] = None
    ) -> int:
        """dst -> src handshake: ship the query coordinates (seq 0)."""
        frame = FieldFrame(
            channel=self.spec.name, kind="points", seq=0,
            values=np.asarray(points, dtype=float),
        )
        return self.send(frame, timeout=timeout)

    def send_values(
        self, seq: int, values: np.ndarray, timeout: Optional[float] = None
    ) -> FieldFrame:
        """src -> dst data: apply the transform stages, frame, send.

        Returns the (transformed) frame actually shipped so the sender can
        record its digest.
        """
        from .xfer import apply_stages

        out = apply_stages(self._stages, np.asarray(values, dtype=float), seq)
        frame = FieldFrame(
            channel=self.spec.name, kind="values", seq=seq, values=out
        )
        self.send(frame, timeout=timeout)
        return frame


class ChannelHub:
    """The channels of one job graph, keyed for per-job port lookup.

    Built by :meth:`repro.svc.MeshJobService.serve_graph`; each scheduled
    job receives ``ports_for(job)`` — ``{channel name: Endpoint}`` — as the
    extra argument of its rank program.  When a job settles, the service
    calls :meth:`job_done`, closing every channel it touches: a peer still
    running drains the remaining frames and then observes
    :class:`ChannelClosedError` instead of blocking forever.
    """

    def __init__(
        self,
        specs: Sequence[ChannelSpec],
        counters: Optional[PerfCounters] = None,
    ) -> None:
        names = [spec.name for spec in specs]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise CoupleError(f"duplicate channel name(s): {dupes}")
        self.channels: Dict[str, Channel] = {
            spec.name: Channel(spec, counters=counters) for spec in specs
        }
        self._by_job: Dict[str, List[str]] = {}
        for spec in specs:
            self._by_job.setdefault(spec.src, []).append(spec.name)
            self._by_job.setdefault(spec.dst, []).append(spec.name)

    def channel_names(self, job: str) -> List[str]:
        """Names of channels binding ``job``, sorted."""
        return sorted(self._by_job.get(job, []))

    def peer_jobs(self, job: str) -> List[str]:
        """The jobs coupled to ``job`` through any channel, sorted."""
        peers = set()
        for name in self._by_job.get(job, []):
            spec = self.channels[name].spec
            peers.update(spec.jobs())
        peers.discard(job)
        return sorted(peers)

    def ports_for(self, job: str) -> Dict[str, Endpoint]:
        """``{channel name: Endpoint}`` for every channel binding ``job``."""
        ports: Dict[str, Endpoint] = {}
        for name in self.channel_names(job):
            channel = self.channels[name]
            role = "src" if channel.spec.src == job else "dst"
            ports[name] = Endpoint(channel, role)
        return ports

    def job_done(self, job: str) -> None:
        """Close every channel bound to a settled job."""
        for name in self.channel_names(job):
            self.channels[name].close()

    def close_all(self) -> None:
        for channel in self.channels.values():
            channel.close()

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-channel traffic accounting, name-sorted (deterministic)."""
        return {
            name: self.channels[name].stats()
            for name in sorted(self.channels)
        }
