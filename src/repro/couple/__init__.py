"""repro.couple: co-simulation coupling hub.

Cross-mesh field exchange between concurrently running svc jobs:

* :mod:`~repro.couple.channel` — typed channels carrying binary-codec
  field frames (``repro.couple/1``) between job endpoints;
* :mod:`~repro.couple.xfer` — distributed cross-mesh solution transfer
  over a cross-world star forest, bit-identical to serial
  :func:`~repro.field.transfer.transfer_vertex_field`;
* :mod:`~repro.couple.graph` — validated job graphs (deps DAG + channel
  couplings) consumed by :meth:`repro.svc.MeshJobService.serve_graph`;
* :mod:`~repro.couple.loop` — the solver-in-the-loop adaptive workload
  (solve -> estimate -> adapt -> transfer -> rebalance).
"""

from .channel import (
    FRAME_SCHEMA,
    Channel,
    ChannelClosedError,
    ChannelHub,
    ChannelSpec,
    CoupleError,
    Endpoint,
    FieldFrame,
    TransformSpec,
)
from .graph import GraphError, JobGraph
from .loop import run_adapt_loop
from .xfer import (
    Interpolate,
    Scale,
    TimeWindow,
    XferStats,
    apply_stages,
    build_stages,
    transfer_between,
)

__all__ = [
    "FRAME_SCHEMA",
    "Channel",
    "ChannelClosedError",
    "ChannelHub",
    "ChannelSpec",
    "CoupleError",
    "Endpoint",
    "FieldFrame",
    "GraphError",
    "Interpolate",
    "JobGraph",
    "Scale",
    "TimeWindow",
    "TransformSpec",
    "XferStats",
    "apply_stages",
    "build_stages",
    "run_adapt_loop",
    "transfer_between",
]
