"""Solver-in-the-loop adaptive workload: solve -> estimate -> adapt ->
transfer -> rebalance.

:func:`run_adapt_loop` drives the closed loop the coupling hub exists to
serve: each cycle "solves" (samples an analytic front onto the vertex
field), estimates a per-element interpolation error, converts the worst
elements into a refinement size field, adapts the mesh, transfers the
pre-adapt solution onto the adapted mesh (the :mod:`repro.field.transfer`
batch kernel), and rebalances the adapted mesh with ParMA.  The estimated
error is monotonically non-increasing across cycles — refinement splits
exactly the elements that carry the peak error while untouched elements
reproduce their error bit-for-bit — which is the loop's acceptance
invariant.

On the first cycle the loop also runs the *distributed* transfer
(:func:`~repro.couple.xfer.transfer_between`) over independently
partitioned source/target meshes and records whether it matched the serial
kernel bit-for-bit — a built-in self-check of the subsystem's parity gate.

Everything is deterministic: the report carries no wall-clock and two runs
produce byte-identical documents.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

from ..adapt import adapt
from ..core.balancer import ParMA
from ..field.field import Field
from ..field.sizefield import AnalyticSize
from ..field.transfer import transfer_vertex_field
from ..mesh.build import from_connectivity
from ..mesh.mesh import Mesh
from ..obs.tracer import Tracer, trace_span
from ..parallel.perf import GLOBAL, PerfCounters
from ..partition.distribute import distribute
from ..partition.fieldsync import DistributedField
from ..partitioners import partition
from .xfer import transfer_between

__all__ = ["run_adapt_loop"]

LOOP_SCHEMA = "repro.couple.loop/1"

#: Fraction of the peak element error above which an element is refined.
FLAG_FRACTION = 0.3
#: Target size of a refined element relative to its current longest edge.
REFINE_FACTOR = 0.45
#: Size prescribed away from flagged elements — large enough that nothing
#: outside the flagged set ever refines.
H_COARSE = 10.0


def _front(x: np.ndarray) -> Any:
    """The manufactured solution: a tanh front across ``x + y = 1``."""
    x = np.asarray(x, dtype=float)
    if x.ndim == 1:
        return float(np.tanh(8.0 * (x[0] + x[1] - 1.0)))
    return np.tanh(8.0 * (x[..., 0] + x[..., 1] - 1.0))


def _solve(mesh: Mesh, name: str) -> Field:
    """Sample the manufactured solution onto a fresh vertex field."""
    field = Field(mesh, name, 0, 1)
    field.set_from_coords(_front)
    return field


def _estimate(mesh: Mesh, field: Field) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-element error: |exact(centroid) - mean(vertex values)|.

    Vectorized over the core SoA arrays; returns ``(err, centroids, pts)``
    with ``pts`` the ``(ne, nverts, 3)`` element corner coordinates.
    """
    dim = mesh.dim()
    eids = mesh.core.live_ids(dim)
    verts = mesh.core.verts_matrix(dim, eids)
    pts = mesh.coords_view()[verts]
    centroids = pts.mean(axis=1)
    vert_vals = field.get_many(verts.reshape(-1)).reshape(verts.shape)
    err = np.abs(_front(centroids) - vert_vals.mean(axis=1))
    return err, centroids, pts


def _refine_size(
    err: np.ndarray, centroids: np.ndarray, pts: np.ndarray
) -> Tuple[AnalyticSize, int]:
    """Size field refining the flagged (high-error) elements only.

    Near a flagged element's centroid (within its own diameter) the target
    size is ``REFINE_FACTOR`` times its longest edge; everywhere else the
    target is ``H_COARSE``, so only flagged elements trip the refinement
    band.  Returns ``(size_field, flagged_count)``.
    """
    flagged = err >= FLAG_FRACTION * err.max()
    fc = np.ascontiguousarray(centroids[flagged])
    fpts = pts[flagged]
    nv = fpts.shape[1]
    h = np.zeros(len(fpts), dtype=float)
    for a in range(nv):
        for b in range(a + 1, nv):
            edge = np.linalg.norm(fpts[:, a] - fpts[:, b], axis=1)
            h = np.maximum(h, edge)
    tree = cKDTree(fc)

    def size_fn(x: np.ndarray) -> float:
        d, i = tree.query(np.asarray(x, dtype=float)[: fc.shape[1]])
        if d <= h[i]:
            return REFINE_FACTOR * h[i]
        return H_COARSE

    return AnalyticSize(size_fn), int(flagged.sum())


def _snapshot(mesh: Mesh, field: Field) -> Tuple[Mesh, Field]:
    """Standalone copy of ``mesh`` + ``field`` with dense serial ids.

    Adaptation mutates the mesh in place; the transfer needs the pre-adapt
    mesh as an independent source.  Vertex/element creation order follows
    live-id order, so the copy's ids are the rank of the original ids —
    deterministic, and shared by every :func:`distribute` of the copy (the
    global ids the cross-part winner rule keys on).
    """
    dim = mesh.dim()
    vids = mesh.core.live_ids(0)
    eids = mesh.core.live_ids(dim)
    coords = np.array(mesh.coords_view()[vids])
    conn = mesh.core.verts_matrix(dim, eids)
    pos = np.full(int(vids.max()) + 1, -1, dtype=np.int64)
    pos[vids] = np.arange(len(vids))
    etype = int(mesh.core.etype[dim][eids[0]])
    snap = from_connectivity(coords, pos[conn], etype)
    out = Field(snap, field.name, 0, field.shape)
    out.set_many(np.arange(len(vids)), field.get_many(vids))
    return snap, out


def _checksum(mesh: Mesh, field: Field) -> int:
    """CRC32 of the field values in vertex-id order (bit-level identity)."""
    ids = mesh.core.live_ids(0)
    return zlib.crc32(np.ascontiguousarray(field.get_many(ids)).tobytes())


def _distributed_matches(
    snap: Mesh,
    snap_field: Field,
    mesh: Mesh,
    serial_out: Field,
    parts: int,
    counters: PerfCounters,
    tracer: Optional[Tracer],
) -> bool:
    """Re-run the transfer distributed at ``parts`` parts; bitwise compare."""
    src_d = distribute(snap, partition(snap, parts, method="rcb"),
                       counters=counters, tracer=tracer)
    dst_d = distribute(mesh, partition(mesh, parts, method="rcb"),
                       counters=counters, tracer=tracer)
    sfield = DistributedField(src_d, snap_field.name, 0, snap_field.shape)
    sfield.set_from_coords(_front)
    dfield, _stats = transfer_between(
        src_d, sfield, dst_d, counters=counters, tracer=tracer
    )
    for part in dst_d:
        ids = part.mesh.core.live_ids(0)
        gids = part.gids_of(0, ids)
        if not np.array_equal(
            dfield.on(part.pid).get_many(ids), serial_out.get_many(gids)
        ):
            return False
    return True


def run_adapt_loop(
    n: int = 8,
    cycles: int = 3,
    parts: int = 2,
    field_name: str = "u",
    counters: Optional[PerfCounters] = None,
    tracer: Optional[Tracer] = None,
) -> Dict[str, Any]:
    """Run ``cycles`` adapt-loop cycles on a ``rect_tri(n)`` mesh.

    Returns a deterministic ``repro.couple.loop/1`` report: per-cycle
    element/error/transfer/balance records plus the loop invariants
    (``monotone_error``, ``distributed_transfer_matches``).
    """
    from ..mesh.generate import rect_tri

    if n < 2:
        raise ValueError(f"adapt loop needs n >= 2, got {n}")
    if cycles < 1:
        raise ValueError(f"adapt loop needs cycles >= 1, got {cycles}")
    if parts < 1:
        raise ValueError(f"adapt loop needs parts >= 1, got {parts}")
    counters = counters if counters is not None else GLOBAL

    mesh = rect_tri(n)
    dim = mesh.dim()
    records = []
    est_history = []
    dist_matches = None

    with trace_span(tracer, "couple.loop", n=n, cycles=cycles):
        for cycle in range(cycles):
            field = _solve(mesh, field_name)
            err, centroids, pts = _estimate(mesh, field)
            est_max = float(err.max())
            est_l2 = float(np.sqrt((err ** 2).mean()))
            est_history.append(est_max)

            size, flagged = _refine_size(err, centroids, pts)
            snap, snap_field = _snapshot(mesh, field)
            stats = adapt(
                mesh, size, max_passes=2, do_coarsen=False, do_swap=False
            )

            transferred = transfer_vertex_field(snap, snap_field, mesh)
            checksum = _checksum(mesh, transferred)
            if cycle == 0 and parts > 1:
                dist_matches = _distributed_matches(
                    snap, snap_field, mesh, transferred, parts,
                    counters, tracer,
                )

            bal_d = distribute(
                mesh, partition(mesh, parts, method="rcb"),
                counters=counters, tracer=tracer,
            )
            parma = ParMA(bal_d)
            imb_before = float(parma.imbalances()[dim])
            priorities = "Face" if dim == 2 else "Rgn"
            parma.improve(priorities, tol=0.05)
            imb_after = float(parma.imbalances()[dim])

            records.append({
                "cycle": cycle,
                "elements": int(len(mesh.core.live_ids(dim))),
                "vertices": int(len(mesh.core.live_ids(0))),
                "est_max": est_max,
                "est_l2": est_l2,
                "flagged": flagged,
                "splits": stats.splits,
                "transfer_checksum": checksum,
                "imbalance_before": round(imb_before, 9),
                "imbalance_after": round(imb_after, 9),
            })
            counters.add("couple.loop.cycles")

    monotone = all(
        later <= earlier + 1e-15
        for earlier, later in zip(est_history, est_history[1:])
    )
    report: Dict[str, Any] = {
        "schema": LOOP_SCHEMA,
        "n": n,
        "cycles": cycles,
        "parts": parts,
        "field": field_name,
        "records": records,
        "monotone_error": monotone,
        "final_elements": int(len(mesh.core.live_ids(dim))),
        "final_vertices": int(len(mesh.core.live_ids(0))),
    }
    if dist_matches is not None:
        report["distributed_transfer_matches"] = bool(dist_matches)
    return report
