"""Job graphs: jobs + dependencies + channels, validated and serializable.

A :class:`JobGraph` is the unit the coupled service consumes
(:meth:`repro.svc.MeshJobService.serve_graph`): a set of
:class:`~repro.svc.JobSpec` entries whose ``deps`` edges form a DAG, plus
the :class:`~repro.couple.channel.ChannelSpec` couplings between jobs that
must run *concurrently*.  Validation enforces exactly the invariants the
scheduler's determinism relies on:

* job names unique; every ``deps`` and channel endpoint names a job in the
  graph; no job depends on itself;
* the dependency relation is acyclic (Kahn's algorithm with name-sorted
  tie-breaks, so :meth:`topo_order` is deterministic);
* channel endpoints are distinct jobs with equal ``steps`` (one frame per
  step is the coupling cadence) and consistent ``channels`` bindings;
* no dependency path connects two channel-coupled jobs — coupled peers are
  co-scheduled into one round, which a dependency between them would make
  unsatisfiable.

The JSON document form mirrors the jobs file the ``serve`` CLI verb
accepts, with a ``channels`` section added::

    {"jobs": [...], "channels": [{"name": ..., "src": ..., "dst": ...}]}
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Set, Tuple

from ..svc.job import JobSpec, JobSpecError, load_specs
from .channel import ChannelSpec, CoupleError

__all__ = ["GraphError", "JobGraph"]


class GraphError(ValueError):
    """A job graph failed validation."""


@dataclass(frozen=True)
class JobGraph:
    """A validated DAG of jobs with channel couplings."""

    jobs: Tuple[JobSpec, ...]
    channels: Tuple[ChannelSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "jobs", tuple(self.jobs))
        object.__setattr__(self, "channels", tuple(self.channels))
        self.validate()

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        names = [spec.name for spec in self.jobs]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise GraphError(f"duplicate job name(s): {dupes}")
        known = set(names)

        for spec in self.jobs:
            for dep in spec.deps:
                if dep == spec.name:
                    raise GraphError(f"job {spec.name!r} depends on itself")
                if dep not in known:
                    raise GraphError(
                        f"job {spec.name!r} depends on unknown job {dep!r}"
                    )

        channel_names = [c.name for c in self.channels]
        cdupes = sorted(
            {n for n in channel_names if channel_names.count(n) > 1}
        )
        if cdupes:
            raise GraphError(f"duplicate channel name(s): {cdupes}")
        by_name = {spec.name: spec for spec in self.jobs}
        for chan in self.channels:
            for end in chan.jobs():
                if end not in known:
                    raise GraphError(
                        f"channel {chan.name!r} binds unknown job {end!r}"
                    )
            if by_name[chan.src].steps != by_name[chan.dst].steps:
                raise GraphError(
                    f"channel {chan.name!r} couples jobs with different "
                    f"steps ({by_name[chan.src].steps} vs "
                    f"{by_name[chan.dst].steps}); coupled jobs exchange one "
                    f"frame per step"
                )
            for end in chan.jobs():
                if chan.name not in by_name[end].channels:
                    raise GraphError(
                        f"job {end!r} is an endpoint of channel "
                        f"{chan.name!r} but does not list it in 'channels'"
                    )
        for spec in self.jobs:
            for cname in spec.channels:
                chan = next(
                    (c for c in self.channels if c.name == cname), None
                )
                if chan is None:
                    raise GraphError(
                        f"job {spec.name!r} binds unknown channel {cname!r}"
                    )
                if spec.name not in chan.jobs():
                    raise GraphError(
                        f"job {spec.name!r} binds channel {cname!r} but is "
                        f"not one of its endpoints"
                    )

        self.topo_order()  # raises on cycles

        reach = self._reachability()
        for chan in self.channels:
            if chan.dst in reach[chan.src] or chan.src in reach[chan.dst]:
                raise GraphError(
                    f"channel {chan.name!r} couples jobs connected by a "
                    f"dependency path; coupled jobs must be co-schedulable"
                )

    def _reachability(self) -> Dict[str, Set[str]]:
        """``{job: set of jobs reachable through deps edges}``."""
        deps = {spec.name: set(spec.deps) for spec in self.jobs}
        reach: Dict[str, Set[str]] = {}

        def visit(name: str) -> Set[str]:
            if name in reach:
                return reach[name]
            reach[name] = set()  # placeholder; cycles caught by topo_order
            acc: Set[str] = set()
            for dep in deps[name]:
                acc.add(dep)
                acc |= visit(dep)
            reach[name] = acc
            return acc

        for name in deps:
            visit(name)
        return reach

    def topo_order(self) -> List[str]:
        """Kahn topological order with name-sorted ties (deterministic)."""
        indeg = {spec.name: len(spec.deps) for spec in self.jobs}
        dependents: Dict[str, List[str]] = {n: [] for n in indeg}
        for spec in self.jobs:
            for dep in spec.deps:
                dependents[dep].append(spec.name)
        ready = sorted(n for n, d in indeg.items() if d == 0)
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            fresh = []
            for child in dependents[name]:
                indeg[child] -= 1
                if indeg[child] == 0:
                    fresh.append(child)
            ready = sorted(ready + fresh)
        if len(order) != len(indeg):
            stuck = sorted(n for n, d in indeg.items() if d > 0)
            raise GraphError(f"dependency cycle through job(s): {stuck}")
        return order

    # -- lookups ------------------------------------------------------------

    def job(self, name: str) -> JobSpec:
        for spec in self.jobs:
            if spec.name == name:
                return spec
        raise KeyError(f"no job {name!r} in graph")

    def peer_groups(self) -> List[List[str]]:
        """Connected components under channel coupling, each name-sorted.

        Jobs in one group must be gang-scheduled into the same round.
        """
        parent: Dict[str, str] = {spec.name: spec.name for spec in self.jobs}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for chan in self.channels:
            ra, rb = find(chan.src), find(chan.dst)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)
        groups: Dict[str, List[str]] = {}
        for name in parent:
            groups.setdefault(find(name), []).append(name)
        return sorted(sorted(members) for members in groups.values())

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"jobs": [spec.to_dict() for spec in self.jobs]}
        if self.channels:
            doc["channels"] = [chan.to_dict() for chan in self.channels]
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "JobGraph":
        if not isinstance(doc, dict):
            raise GraphError(
                f"a job graph document must be a mapping, "
                f"got {type(doc).__name__}"
            )
        unknown = set(doc) - {"jobs", "channels"}
        if unknown:
            raise GraphError(f"unknown graph field(s): {sorted(unknown)}")
        try:
            jobs = load_specs({"jobs": doc.get("jobs", [])})
        except JobSpecError as exc:
            raise GraphError(str(exc)) from None
        channels_doc = doc.get("channels", [])
        if not isinstance(channels_doc, list):
            raise GraphError("graph 'channels' must be a list")
        try:
            channels = tuple(
                c if isinstance(c, ChannelSpec) else ChannelSpec.from_dict(c)
                for c in channels_doc
            )
        except CoupleError as exc:
            raise GraphError(str(exc)) from None
        return cls(jobs=tuple(jobs), channels=channels)
