"""repro — a Python reproduction of PUMI + ParMA.

Reimplements the systems of Seol, Smith, Ibanez & Shephard, *A Parallel
Unstructured Mesh Infrastructure* (SC 2012): PUMI's complete unstructured
mesh representation, geometric model interface, fields, partition model and
distributed-mesh services, plus ParMA's mesh-adjacency-driven dynamic load
balancing — all on a simulated message-passing substrate suitable for a
single machine.

Quick start::

    from repro import mesh, partitioners, partition, core

    m = mesh.box_tet(10)                                  # generate
    assignment = partitioners.partition(m, 16)            # PHG baseline
    dm = partition.distribute(m, assignment)              # distributed mesh
    core.ParMA(dm).improve("Vtx > Rgn", tol=0.05)         # ParMA balances

Subpackages
-----------
``repro.parallel``
    Simulated MPI (thread SPMD + collectives), BSP network, machine
    topology, routing, performance counters.
``repro.gmodel``
    Non-manifold b-rep geometric model, shapes, classification, snapping.
``repro.mesh``
    The complete mesh representation, generators, quality, verification, IO.
``repro.field``
    Fields, shape functions, size fields, mesh-to-mesh transfer.
``repro.partition``
    Parts, partition model, migration, ghosting, distributed fields.
``repro.partitioners``
    Baseline partitioners (RCB, RIB, multilevel graph, PHG-style hypergraph,
    local partitioning).
``repro.adapt``
    Size-field-driven refinement/coarsening/swapping.
``repro.core``
    ParMA: multi-criteria partition improvement and heavy part splitting.
``repro.workloads``
    Synthetic stand-ins for the paper's evaluation meshes.
``repro.analysis``
    SPMD correctness tooling: the ``python -m repro lint`` AST lint and the
    runtime sanitizers (alias freeze proxies, collective-order checking,
    deadlock detection) used by ``spmd(..., sanitize=True)``.
``repro.obs``
    Observability: superstep tracing (Chrome trace export), per-superstep
    part-to-part communication matrices, typed operation statistics, and
    the ``python -m repro trace`` workload runner.
``repro.resilience``
    Deterministic fault injection (seeded ``FaultPlan`` executed against
    the network/executor hook points), rotated hash-validated checkpoints
    (``CheckpointManager``), and the ``resilient_spmd`` checkpoint/restart
    recovery driver behind ``python -m repro chaos``.
``repro.store``
    Parallel incremental snapshot I/O: the chunked, part-count-agnostic
    ``repro.store/1`` epoch format with SHA-256 chunk manifests,
    differential epochs with deterministic compaction, star-forest
    repartition-on-load (``SnapshotStore``), and the content-addressed
    ``SnapshotCache`` the serving tier uses to warm-start jobs from a
    shared base mesh (``python -m repro snapshot``).
``repro.svc``
    The multi-tenant mesh-job serving tier: bounded admission with
    backpressure and fair-share priority aging, locality-aware gang
    scheduling of core-sets over the simulated machine, deterministic
    rounds of concurrently executing world-isolated SPMD jobs with
    deadlines and fault-classified retries, and the byte-deterministic
    ``repro.svc/1`` service report behind ``python -m repro serve``.
``repro.couple``
    The co-simulation coupling hub: typed inter-job channels carrying
    binary ``repro.couple/1`` field frames with transformer stages,
    service job graphs (dependencies + co-scheduled channel peers) run
    by ``MeshJobService.serve_graph``, the distributed cross-mesh
    transfer ``transfer_between`` (bit-identical to the serial path),
    and the solver-in-the-loop adaptive driver ``run_adapt_loop``
    behind ``python -m repro couple``.

The one-true entry points are re-exported at the top level, so a driver
script needs only ``import repro``:

    ``spmd``, ``DistributedMesh``, ``distribute``, ``migrate``,
    ``ghost_layer``, ``delete_ghosts``, ``synchronize``, ``accumulate``,
    ``DistributedField``, ``ParMA``, ``Tracer``, ``StarForest``, ``Overlap``

plus the typed statistics each distributed service returns
(``MigrateStats``, ``GhostStats``, ``GhostDeleteStats``, ``SyncStats``,
``AccumulateStats``, ``SFStats``) and the resilience surface (``FaultPlan``,
``FaultInjector``, ``InjectedRankFailure``, ``CheckpointManager``,
``CorruptCheckpointError``, ``resilient_spmd``, ``RankFailure``).
"""

from . import (
    adapt,
    core,
    couple,
    field,
    gmodel,
    mesh,
    obs,
    parallel,
    partition,
    partitioners,
    resilience,
    store,
    svc,
    workloads,
)
from .core import ParMA
from .couple import (
    ChannelSpec,
    CoupleError,
    JobGraph,
    run_adapt_loop,
    transfer_between,
)
from .obs import (
    AccumulateStats,
    GhostDeleteStats,
    GhostStats,
    MigrateStats,
    SFStats,
    SyncStats,
    Tracer,
)
from .parallel import (
    CodecError,
    RankFailure,
    StarForest,
    TopologyError,
    spmd,
)
from .partition import (
    DistributedField,
    DistributedMesh,
    Overlap,
    accumulate,
    delete_ghosts,
    distribute,
    ghost_layer,
    migrate,
    synchronize,
)
from .resilience import (
    CheckpointManager,
    CorruptCheckpointError,
    FaultInjector,
    FaultPlan,
    InjectedRankFailure,
    resilient_spmd,
)
from .store import (
    SnapshotCache,
    SnapshotStore,
    StoreStats,
)
from .svc import (
    AdmissionError,
    JobFailure,
    JobResult,
    JobSpec,
    MeshJobService,
    RetryPolicy,
    ServiceReport,
)

__version__ = "1.0.0"

__all__ = [
    "adapt",
    "core",
    "couple",
    "field",
    "gmodel",
    "mesh",
    "obs",
    "parallel",
    "partition",
    "partitioners",
    "resilience",
    "store",
    "svc",
    "workloads",
    "AccumulateStats",
    "AdmissionError",
    "ChannelSpec",
    "CheckpointManager",
    "CodecError",
    "CorruptCheckpointError",
    "CoupleError",
    "DistributedField",
    "DistributedMesh",
    "FaultInjector",
    "FaultPlan",
    "GhostDeleteStats",
    "GhostStats",
    "InjectedRankFailure",
    "JobFailure",
    "JobGraph",
    "JobResult",
    "JobSpec",
    "MeshJobService",
    "MigrateStats",
    "Overlap",
    "ParMA",
    "RankFailure",
    "RetryPolicy",
    "SFStats",
    "ServiceReport",
    "SnapshotCache",
    "SnapshotStore",
    "StarForest",
    "StoreStats",
    "SyncStats",
    "TopologyError",
    "Tracer",
    "accumulate",
    "delete_ghosts",
    "distribute",
    "ghost_layer",
    "migrate",
    "resilient_spmd",
    "run_adapt_loop",
    "spmd",
    "synchronize",
    "transfer_between",
    "__version__",
]
