"""Degree-of-freedom numbering over a distributed mesh.

The paper's motivating example for multi-criteria balance: "one step in a
multi-physics analysis may be using a cell centered FV method where work
load balance is based on the mesh regions only, while another step may be
using second order FE on the same mesh where vertex and edge balance is
more important to scaling than region balance" (Section I).

:class:`DofNumbering` assigns globally consistent dof ids for the standard
Lagrange families:

* ``order=1`` — one dof per vertex,
* ``order=2`` — one per vertex plus one per edge (the quadratic nodes),
* ``order=0`` — one per element (the FV/cell-centered case).

Owned entities receive the ids (numbered by owner part, then owner-local
order); copies learn their ids through one neighbor exchange, exactly the
way an FE code builds its parallel dof maps.  The per-part dof count —
including duplicated boundary dofs — is the load ParMA's priority lists
balance, and :func:`dof_loads` exposes it for direct comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..mesh.entity import Ent
from ..partition.dmesh import DistributedMesh

_TAG_DOF = 41

#: entity dimensions carrying dofs, per polynomial order.
_ORDER_DIMS = {0: None, 1: (0,), 2: (0, 1)}


class DofNumbering:
    """Globally consistent dof ids for one Lagrange order."""

    def __init__(self, dmesh: DistributedMesh, order: int = 1) -> None:
        if order not in _ORDER_DIMS:
            raise ValueError(f"unsupported order {order} (use 0, 1 or 2)")
        self.dmesh = dmesh
        self.order = order
        self.dims: Tuple[int, ...] = (
            (dmesh.element_dim(),)
            if order == 0
            else _ORDER_DIMS[order]
        )
        #: per part: entity -> global dof id.
        self._ids: Dict[int, Dict[Ent, int]] = {p.pid: {} for p in dmesh}
        self.total = 0
        self._number()

    def _number(self) -> None:
        dmesh = self.dmesh
        # Phase 1: owners number their entities (deterministic order).
        next_id = 0
        for part in dmesh:
            ids = self._ids[part.pid]
            for dim in self.dims:
                for ent in part.mesh.entities(dim):
                    if part.is_ghost(ent) or not part.owns(ent):
                        continue
                    ids[ent] = next_id
                    next_id += 1
        self.total = next_id

        # Phase 2: owners tell every copy its id (one exchange).
        router = dmesh.router()
        for part in dmesh:
            ids = self._ids[part.pid]
            for ent in sorted(part.remotes):
                if ent.dim not in self.dims or ent not in ids:
                    continue
                for other_pid, other_ent in sorted(part.remotes[ent].items()):
                    router.post(
                        part.pid, other_pid, _TAG_DOF, (other_ent, ids[ent])
                    )
        inboxes = router.exchange()
        for pid in sorted(inboxes):
            ids = self._ids[pid]
            for _src, _tag, (ent, dof) in inboxes[pid]:
                ids[ent] = dof

    # -- queries ---------------------------------------------------------

    def id_of(self, pid: int, ent: Ent) -> int:
        """Global dof id of an entity on a part."""
        try:
            return self._ids[pid][ent]
        except KeyError:
            raise KeyError(
                f"part {pid}: {ent} carries no dof (order {self.order})"
            ) from None

    def has(self, pid: int, ent: Ent) -> bool:
        return ent in self._ids[pid]

    def element_dofs(self, pid: int, element: Ent) -> List[int]:
        """The element's dof ids in canonical order (vertices, then edges)."""
        part = self.dmesh.part(pid)
        mesh = part.mesh
        dofs: List[int] = []
        if self.order == 0:
            return [self.id_of(pid, element)]
        for v in mesh.verts_of(element):
            dofs.append(self.id_of(pid, v))
        if self.order == 2:
            for e in mesh.adjacent(element, 1):
                dofs.append(self.id_of(pid, e))
        return dofs

    def part_dof_count(self, pid: int) -> int:
        """Dofs present on a part (boundary dofs counted here AND on the
        other holders — the duplication that drives Vtx/Edge balancing)."""
        return len(self._ids[pid])

    def loads(self) -> np.ndarray:
        """Per-part dof counts (the balance metric for this order)."""
        return np.asarray(
            [self.part_dof_count(p.pid) for p in self.dmesh]
        )


def dof_loads(dmesh: DistributedMesh, order: int) -> np.ndarray:
    """Per-part dof counts without keeping the numbering around."""
    return DofNumbering(dmesh, order).loads()


def dof_imbalance(dmesh: DistributedMesh, order: int) -> float:
    """Peak dof imbalance (max/mean) for one discretization order."""
    loads = dof_loads(dmesh, order).astype(float)
    mean = loads.mean()
    return float(loads.max()) / mean if mean > 0 else 1.0
