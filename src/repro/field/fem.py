"""A distributed P1 finite-element Poisson solver.

The purpose of the whole infrastructure — "the parallel unstructured mesh
data structures and services needed by the developers of PDE solution
procedures" (paper, Section I) — is exercised end-to-end here: linear
Lagrange assembly over each part's own elements, owner-summed shared dofs,
synchronized copies, and a conjugate-gradient solve whose every global
reduction counts owned entities exactly once.

Solves  -Δu = f  on the meshed domain with Dirichlet data ``g`` on the
geometric boundary (vertices classified on model entities of dimension
below the mesh's).  Supports 2D triangle and 3D tetrahedron meshes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..mesh.entity import Ent
from ..mesh.quality import measure
from ..partition.dmesh import DistributedMesh
from ..partition.fieldsync import DistributedField, accumulate, synchronize

Coefficient = Callable[[np.ndarray], float]


def _p1_gradients_tri(points: List[np.ndarray]) -> Tuple[np.ndarray, float]:
    """Gradients of the three barycentric functions and the signed area."""
    a, b, c = (p[:2] for p in points)
    area2 = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
    grads = np.array(
        [
            [b[1] - c[1], c[0] - b[0]],
            [c[1] - a[1], a[0] - c[0]],
            [a[1] - b[1], b[0] - a[0]],
        ]
    ) / area2
    return grads, abs(area2) / 2.0


def _p1_gradients_tet(points: List[np.ndarray]) -> Tuple[np.ndarray, float]:
    """Gradients of the four barycentric functions and the volume."""
    a = points[0]
    mat = np.stack([points[1] - a, points[2] - a, points[3] - a])
    volume = float(np.linalg.det(mat)) / 6.0
    inv = np.linalg.inv(mat)
    grads_bcd = inv.T  # rows: gradients of λ1, λ2, λ3
    grad_a = -grads_bcd.sum(axis=0)
    return np.vstack([grad_a, grads_bcd]), abs(volume)


@dataclass
class PoissonStats:
    iterations: int
    residual: float
    converged: bool


class PoissonProblem:
    """-Δu = f with Dirichlet boundary data, assembled per part."""

    def __init__(
        self,
        dmesh: DistributedMesh,
        f: Optional[Coefficient] = None,
        dirichlet: Optional[Coefficient] = None,
    ) -> None:
        self.dmesh = dmesh
        self.f = f if f is not None else (lambda x: 0.0)
        self.g = dirichlet if dirichlet is not None else (lambda x: 0.0)
        self.dim = dmesh.element_dim()
        if self.dim not in (2, 3):
            raise ValueError("Poisson solver supports 2D/3D simplex meshes")
        #: Per-part sparse stiffness rows: pid -> {vi: {vj: K}}.
        self._rows: Dict[int, Dict[Ent, Dict[Ent, float]]] = {}
        #: Per-part load vector contributions.
        self._load: Dict[int, Dict[Ent, float]] = {}
        #: Per-part constrained (Dirichlet) vertices.
        self._fixed: Dict[int, Dict[Ent, float]] = {}
        self._assemble()

    # -- assembly -----------------------------------------------------------

    def _assemble(self) -> None:
        for part in self.dmesh:
            mesh = part.mesh
            rows: Dict[Ent, Dict[Ent, float]] = {}
            load: Dict[Ent, float] = {}
            for element in mesh.entities(self.dim):
                if part.is_ghost(element):
                    continue
                verts = mesh.verts_of(element)
                points = [mesh.coords(v) for v in verts]
                if self.dim == 2:
                    grads, size = _p1_gradients_tri(points)
                else:
                    grads, size = _p1_gradients_tet(points)
                local = size * (grads @ grads.T)
                centroid = np.mean(points, axis=0)
                f_value = float(self.f(centroid)) * size / len(verts)
                for i, vi in enumerate(verts):
                    row = rows.setdefault(vi, {})
                    for j, vj in enumerate(verts):
                        row[vj] = row.get(vj, 0.0) + float(local[i, j])
                    load[vi] = load.get(vi, 0.0) + f_value
            fixed: Dict[Ent, float] = {}
            for v in mesh.entities(0):
                gent = mesh.classification(v)
                if gent is not None and gent.dim < self.dim:
                    fixed[v] = float(self.g(mesh.coords(v)))
            self._rows[part.pid] = rows
            self._load[part.pid] = load
            self._fixed[part.pid] = fixed

    # -- distributed vector algebra --------------------------------------------

    def _new_field(self, name: str) -> DistributedField:
        field = DistributedField(self.dmesh, name)
        field.zero_all()
        return field

    def matvec(self, x: DistributedField, out_name: str) -> DistributedField:
        """y = A x on the free dofs (Dirichlet rows/columns eliminated).

        The Dirichlet data enters the system through the lifted right-hand
        side (:meth:`rhs`), so the operator here is the symmetric
        interior-interior block — fixed rows pass ``x`` through unchanged
        and fixed columns contribute nothing.
        """
        y = self._new_field(out_name)
        for part in self.dmesh:
            xs = x.on(part.pid)
            ys = y.on(part.pid)
            fixed = self._fixed[part.pid]
            for vi, row in self._rows[part.pid].items():
                if vi in fixed:
                    continue
                total = 0.0
                for vj, k in row.items():
                    if vj in fixed:
                        continue
                    total += k * xs.get_scalar(vj)
                ys.set(vi, ys.get_scalar(vi) + total)
        accumulate(y)
        # Identity rows: owners stamp x's value, then copies follow.
        for part in self.dmesh:
            xs = x.on(part.pid)
            ys = y.on(part.pid)
            for vi in self._fixed[part.pid]:
                ys.set(vi, xs.get_scalar(vi))
        synchronize(y)
        return y

    def dot(self, a: DistributedField, b: DistributedField) -> float:
        """Global inner product counting every owned vertex exactly once."""
        total = 0.0
        for part in self.dmesh:
            fa = a.on(part.pid)
            fb = b.on(part.pid)
            for v in part.mesh.entities(0):
                if part.is_ghost(v) or not part.owns(v):
                    continue
                total += fa.get_scalar(v) * fb.get_scalar(v)
        return total

    def axpy(self, alpha: float, x: DistributedField, y: DistributedField) -> None:
        """y += alpha * x on every part (copies stay consistent)."""
        for part in self.dmesh:
            fx = x.on(part.pid)
            fy = y.on(part.pid)
            for v in part.mesh.entities(0):
                fy.set(v, fy.get_scalar(v) + alpha * fx.get_scalar(v))

    def rhs(self) -> DistributedField:
        """Assembled load vector with Dirichlet lifting applied."""
        b = self._new_field("rhs")
        for part in self.dmesh:
            fb = b.on(part.pid)
            fixed = self._fixed[part.pid]
            load = self._load[part.pid]
            for vi, row in self._rows[part.pid].items():
                if vi in fixed:
                    continue
                value = load.get(vi, 0.0)
                for vj, k in row.items():
                    if vj in fixed:
                        value -= k * fixed[vj]
                fb.set(vi, fb.get_scalar(vi) + value)
        accumulate(b)
        for part in self.dmesh:
            fb = b.on(part.pid)
            for vi, g in self._fixed[part.pid].items():
                fb.set(vi, g)
        synchronize(b)
        return b

    # -- solver ----------------------------------------------------------------

    def solve(
        self, tol: float = 1e-10, max_iterations: int = 500
    ) -> Tuple[DistributedField, PoissonStats]:
        """Conjugate gradients; returns (solution field, stats)."""
        u = self._new_field("u")
        for part in self.dmesh:
            fu = u.on(part.pid)
            for vi, g in self._fixed[part.pid].items():
                fu.set(vi, g)
        synchronize(u)

        b = self.rhs()
        au = self.matvec(u, "au")
        r = self._new_field("r")
        self.axpy(1.0, b, r)
        self.axpy(-1.0, au, r)
        # Dirichlet rows are exact already: zero their residual.
        for part in self.dmesh:
            fr = r.on(part.pid)
            for vi in self._fixed[part.pid]:
                fr.set(vi, 0.0)

        p = self._new_field("p")
        self.axpy(1.0, r, p)
        rr = self.dot(r, r)
        b_norm = max(np.sqrt(self.dot(b, b)), 1e-300)

        iterations = 0
        for iterations in range(1, max_iterations + 1):
            if np.sqrt(rr) / b_norm <= tol:
                break
            ap = self.matvec(p, "ap")
            for part in self.dmesh:
                fap = ap.on(part.pid)
                for vi in self._fixed[part.pid]:
                    fap.set(vi, 0.0)
            pap = self.dot(p, ap)
            if pap <= 0:
                break
            alpha = rr / pap
            self.axpy(alpha, p, u)
            self.axpy(-alpha, ap, r)
            rr_new = self.dot(r, r)
            beta = rr_new / rr
            for part in self.dmesh:
                fp = p.on(part.pid)
                fr = r.on(part.pid)
                for v in part.mesh.entities(0):
                    fp.set(v, fr.get_scalar(v) + beta * fp.get_scalar(v))
            rr = rr_new

        residual = float(np.sqrt(rr) / b_norm)
        return u, PoissonStats(
            iterations=iterations,
            residual=residual,
            converged=residual <= tol,
        )


def solution_error(
    dmesh: DistributedMesh,
    u: DistributedField,
    exact: Coefficient,
) -> float:
    """Max nodal error of a solution field against an exact function."""
    worst = 0.0
    for part in dmesh:
        field = u.on(part.pid)
        for v in part.mesh.entities(0):
            diff = abs(field.get_scalar(v) - float(exact(part.mesh.coords(v))))
            worst = max(worst, diff)
    return worst
