"""Linear Lagrange shape functions and point location for simplices.

The minimum the field layer needs from a shape-function system: evaluate a
vertex field anywhere inside an element (for solution transfer), and compute
the barycentric coordinates of a point with respect to a triangle or
tetrahedron (for locating points in a mesh).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..mesh.entity import Ent
from ..mesh.mesh import Mesh
from ..mesh.topology import TET, TRI


def barycentric_tri(
    pts: Sequence[np.ndarray], x: Sequence[float]
) -> np.ndarray:
    """Barycentric coordinates of ``x`` in triangle ``pts`` (3 points, 2D)."""
    a, b, c = (np.asarray(p, dtype=float)[:2] for p in pts)
    x = np.asarray(x, dtype=float)[:2]
    mat = np.column_stack([b - a, c - a])
    det = np.linalg.det(mat)
    if abs(det) < 1e-300:
        raise ValueError("degenerate triangle")
    uv = np.linalg.solve(mat, x - a)
    return np.array([1.0 - uv[0] - uv[1], uv[0], uv[1]])


def barycentric_tet(
    pts: Sequence[np.ndarray], x: Sequence[float]
) -> np.ndarray:
    """Barycentric coordinates of ``x`` in tetrahedron ``pts`` (4 points)."""
    a, b, c, d = (np.asarray(p, dtype=float)[:3] for p in pts)
    x = np.asarray(x, dtype=float)[:3]
    mat = np.column_stack([b - a, c - a, d - a])
    det = np.linalg.det(mat)
    if abs(det) < 1e-300:
        raise ValueError("degenerate tetrahedron")
    uvw = np.linalg.solve(mat, x - a)
    return np.array([1.0 - uvw.sum(), uvw[0], uvw[1], uvw[2]])


def barycentric(mesh: Mesh, element: Ent, x: Sequence[float]) -> np.ndarray:
    """Barycentric coordinates of ``x`` in a TRI or TET element."""
    pts = [mesh.coords(v) for v in mesh.verts_of(element)]
    etype = mesh.etype(element)
    if etype == TRI:
        return barycentric_tri(pts, x)
    if etype == TET:
        return barycentric_tet(pts, x)
    raise ValueError(
        f"barycentric coordinates support tri/tet, got {mesh.type_name(element)}"
    )


def contains_point(
    mesh: Mesh, element: Ent, x: Sequence[float], tol: float = 1e-10
) -> bool:
    """Whether ``x`` lies inside (or on the boundary of) the element."""
    try:
        bary = barycentric(mesh, element, x)
    except ValueError:
        return False
    return bool(np.all(bary >= -tol))


def interpolate(mesh: Mesh, field, element: Ent, x: Sequence[float]) -> np.ndarray:
    """Linear interpolation of a vertex field at point ``x`` in an element."""
    if field.entity_dim != 0:
        raise ValueError("interpolation requires a vertex field")
    bary = barycentric(mesh, element, x)
    verts = mesh.verts_of(element)
    return sum(w * field.get(v) for w, v in zip(bary, verts))


def _bary_tri_batch(pts: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Barycentric coordinates for a batch of (triangle, point) pairs.

    ``pts`` is ``(n, 3, 3)`` vertex coordinates, ``x`` is ``(n, 3)``.
    Closed-form Cramer solve with purely elementwise operations, so each
    row's floats depend only on that row — a pair computed in any batch
    (or serially via :func:`barycentric_tri`) produces identical bits.
    """
    a = pts[:, 0, :2]
    e1 = pts[:, 1, :2] - a
    e2 = pts[:, 2, :2] - a
    r = x[:, :2] - a
    det = e1[:, 0] * e2[:, 1] - e2[:, 0] * e1[:, 1]
    safe = np.where(np.abs(det) < 1e-300, 1.0, det)
    u = (r[:, 0] * e2[:, 1] - e2[:, 0] * r[:, 1]) / safe
    v = (e1[:, 0] * r[:, 1] - r[:, 0] * e1[:, 1]) / safe
    bary = np.stack([1.0 - u - v, u, v], axis=1)
    bary[np.abs(det) < 1e-300] = -np.inf  # degenerate: contains nothing
    return bary


def _bary_tet_batch(pts: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Barycentric coordinates for a batch of (tetrahedron, point) pairs.

    ``pts`` is ``(n, 4, 3)``, ``x`` is ``(n, 3)``.  Cramer's rule on the
    3x3 edge matrix, elementwise per row (see :func:`_bary_tri_batch`).
    """
    a = pts[:, 0]
    e1 = pts[:, 1] - a
    e2 = pts[:, 2] - a
    e3 = pts[:, 3] - a
    r = x - a

    def det3(c0, c1, c2):
        return (
            c0[:, 0] * (c1[:, 1] * c2[:, 2] - c2[:, 1] * c1[:, 2])
            - c1[:, 0] * (c0[:, 1] * c2[:, 2] - c2[:, 1] * c0[:, 2])
            + c2[:, 0] * (c0[:, 1] * c1[:, 2] - c1[:, 1] * c0[:, 2])
        )

    det = det3(e1, e2, e3)
    safe = np.where(np.abs(det) < 1e-300, 1.0, det)
    u = det3(r, e2, e3) / safe
    v = det3(e1, r, e3) / safe
    w = det3(e1, e2, r) / safe
    bary = np.stack([1.0 - u - v - w, u, v, w], axis=1)
    bary[np.abs(det) < 1e-300] = -np.inf
    return bary


class BatchLocator:
    """Vectorized point location with a partition-invariant winner rule.

    The batch engine behind :func:`repro.field.transfer_vertex_field` and
    the cross-mesh transfer of :mod:`repro.couple.xfer`.  For each query
    point the *winner* element minimizes the lexicographic key
    ``(not contained, centroid distance^2, order key)`` over the mesh's
    elements, where the order key defaults to the element id.  The key is a
    pure function of geometry plus the caller-supplied order array, so a
    mesh split across parts (with global ids as order keys) elects exactly
    the same winner — and therefore bit-identical interpolated values — as
    the serial mesh.  Simplex (tri/tet) meshes only.
    """

    def __init__(
        self,
        mesh: Mesh,
        candidates: int = 12,
        order: Optional[np.ndarray] = None,
    ) -> None:
        from scipy.spatial import cKDTree

        self.mesh = mesh
        dim = mesh.dim()
        self.dim = dim
        core = mesh.core
        ids = core.live_ids(dim)
        if len(ids) == 0:
            raise ValueError("cannot locate points in an empty mesh")
        etypes = {mesh.etype(Ent(dim, int(i))) for i in ids[:1]} | {
            mesh.etype(Ent(dim, int(ids[-1])))
        }
        if not etypes <= {TRI, TET}:
            raise ValueError("batch location supports tri/tet meshes")
        self.ids = ids
        #: ``(nelem, nverts)`` vertex ids per element (uniform type).
        self.verts = core.verts_matrix(dim, ids)
        if self.verts.shape[1] not in (3, 4):
            raise ValueError("batch location supports tri/tet meshes")
        coords = mesh.coords_view()
        #: ``(nelem, nverts, 3)`` element vertex coordinates.
        self.pts = coords[self.verts]
        self.centroids = self.pts.mean(axis=1)
        self.order = (
            ids.astype(np.int64)
            if order is None
            else np.asarray(order, dtype=np.int64)
        )
        if self.order.shape != (len(ids),):
            raise ValueError("order must have one key per element")
        self._tree = cKDTree(self.centroids)
        self._candidates = min(candidates, len(ids))

    def _bary(self, rows: np.ndarray, x: np.ndarray) -> np.ndarray:
        pts = self.pts[rows]
        if pts.shape[1] == 3:
            return _bary_tri_batch(pts, x)
        return _bary_tet_batch(pts, x)

    def _d2(self, rows: np.ndarray, x: np.ndarray) -> np.ndarray:
        diff = self.centroids[rows] - x
        return (diff * diff).sum(axis=-1)

    def _brute(
        self, x: np.ndarray, tol: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Exhaustive winner election for a (small) batch of points."""
        n = len(x)
        nelem = len(self.ids)
        rows = np.broadcast_to(
            np.arange(nelem), (n, nelem)
        ).reshape(-1)
        reps = np.repeat(x, nelem, axis=0)
        bary = self._bary(rows, reps).reshape(n, nelem, -1)
        d2 = self._d2(rows, reps).reshape(n, nelem)
        nc = ~(bary >= -tol).all(axis=2)
        return self._pick(
            np.broadcast_to(np.arange(nelem), (n, nelem)), nc, d2
        )

    def locate(
        self, points: np.ndarray, tol: float = 1e-10
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Winner election for ``points`` (``(n, 3)`` or ``(n, dim)``).

        Returns ``(rows, bary, contained, d2)``: the winner element row
        (index into :attr:`ids`), its barycentric coordinates (raw —
        callers clip for out-of-mesh points), the containment flags, and
        the winner's squared centroid distance (the second component of
        the winner key; :mod:`repro.couple.xfer` reduces it across parts).
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError("points must be a 2-D array")
        x = np.zeros((len(points), 3))
        x[:, : points.shape[1]] = points
        n = len(x)
        if n == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, self.pts.shape[1])),
                np.empty(0, dtype=bool),
                np.empty(0),
            )
        k = self._candidates
        _dists, cols = self._tree.query(x, k=k)
        cols = np.asarray(cols).reshape(n, k)  # k == 1 squeezes; normalize
        flat = cols.reshape(-1)
        reps = np.repeat(x, k, axis=0)
        bary = self._bary(flat, reps).reshape(n, k, -1)
        d2 = self._d2(flat, reps).reshape(n, k)
        nc = ~(bary >= -tol).all(axis=2)

        rows, win_nc, win_d2 = self._pick(cols, nc, d2)
        # Widen to an exhaustive scan when the top-k window cannot prove
        # the global winner: no containing candidate found, or the best
        # key ties the window boundary (an equal-distance element outside
        # the window could win the order tie-break).
        if k < len(self.ids):
            boundary = d2.max(axis=1)
            widen = win_nc | (win_d2 >= boundary)
            if widen.any():
                idx = np.nonzero(widen)[0]
                b_rows, b_nc, b_d2 = self._brute(x[idx], tol)
                rows[idx] = b_rows
                win_nc[idx] = b_nc
                win_d2[idx] = b_d2
        win_bary = self._bary(rows, x)
        contained = ~win_nc
        return rows, win_bary, contained, win_d2

    def _pick(
        self, cols: np.ndarray, nc: np.ndarray, d2: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Row-wise lexicographic argmin of ``(nc, d2, order[col])``."""
        order = self.order[cols]
        m1 = nc == nc.min(axis=1, keepdims=True)
        d2m = np.where(m1, d2, np.inf)
        m2 = d2m == d2m.min(axis=1, keepdims=True)
        ordm = np.where(m1 & m2, order, np.iinfo(np.int64).max)
        win = ordm.argmin(axis=1)
        take = np.arange(len(cols))
        return (
            cols[take, win].astype(np.int64),
            nc[take, win],
            d2[take, win],
        )

    def sample(
        self, points: np.ndarray, field, tol: float = 1e-10
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Interpolate a vertex ``field`` at ``points``; vectorized.

        Inside points use the winner's raw barycentric weights; outside
        points clamp to the nearest element's interpolant (weights clipped
        to ``>= 0`` and renormalized) — the same fallback as the scalar
        path.  Returns ``(values, contained)`` with ``values`` of shape
        ``(n, ncomp)``.
        """
        values, _rows, contained, _d2 = self.sample_full(points, field, tol)
        return values, contained

    def sample_full(
        self, points: np.ndarray, field, tol: float = 1e-10
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`sample` plus the winner rows and key distances.

        Returns ``(values, rows, contained, d2)``; the extra arrays let the
        distributed transfer build its cross-part winner-reduce keys
        ``(not contained, d2, order[row])`` without re-running location.
        """
        if field.entity_dim != 0:
            raise ValueError("interpolation requires a vertex field")
        rows, bary, contained, d2 = self.locate(points, tol=tol)
        clipped = np.clip(bary, 0.0, None)
        clipped = clipped / clipped.sum(axis=1, keepdims=True)
        weights = np.where(contained[:, None], bary, clipped)
        verts = self.verts[rows]
        vals = field.get_many(verts.reshape(-1)).reshape(
            len(rows), verts.shape[1], -1
        )
        values = (weights[:, :, None] * vals).sum(axis=1)
        return values, rows, contained, d2


class ElementLocator:
    """Point-in-mesh queries accelerated by a centroid KD-tree.

    Candidate elements are taken in order of centroid distance; the first
    containing element wins.  ``nearest`` falls back to the closest centroid
    when the point is (numerically) outside the mesh.
    """

    def __init__(self, mesh: Mesh, candidates: int = 12) -> None:
        from scipy.spatial import cKDTree

        self.mesh = mesh
        self.elements: List[Ent] = list(mesh.entities(mesh.dim()))
        if not self.elements:
            raise ValueError("cannot locate points in an empty mesh")
        centroids = np.asarray([mesh.centroid(e) for e in self.elements])
        self._tree = cKDTree(centroids)
        self._candidates = min(candidates, len(self.elements))

    def locate(self, x: Sequence[float], tol: float = 1e-10) -> Optional[Ent]:
        """The element containing ``x``, or None if outside the mesh."""
        x3 = np.zeros(3)
        x = np.asarray(x, dtype=float)
        x3[: x.shape[0]] = x
        _dists, idxs = self._tree.query(x3, k=self._candidates)
        for idx in np.atleast_1d(idxs):
            element = self.elements[int(idx)]
            if contains_point(self.mesh, element, x3, tol):
                return element
        # Widen to an exhaustive scan before giving up (rare, small meshes).
        for element in self.elements:
            if contains_point(self.mesh, element, x3, tol):
                return element
        return None

    def nearest(self, x: Sequence[float]) -> Ent:
        """The element whose centroid is closest to ``x`` (never None)."""
        x3 = np.zeros(3)
        x = np.asarray(x, dtype=float)
        x3[: x.shape[0]] = x
        _dist, idx = self._tree.query(x3, k=1)
        return self.elements[int(idx)]
