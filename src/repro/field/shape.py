"""Linear Lagrange shape functions and point location for simplices.

The minimum the field layer needs from a shape-function system: evaluate a
vertex field anywhere inside an element (for solution transfer), and compute
the barycentric coordinates of a point with respect to a triangle or
tetrahedron (for locating points in a mesh).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..mesh.entity import Ent
from ..mesh.mesh import Mesh
from ..mesh.topology import TET, TRI


def barycentric_tri(
    pts: Sequence[np.ndarray], x: Sequence[float]
) -> np.ndarray:
    """Barycentric coordinates of ``x`` in triangle ``pts`` (3 points, 2D)."""
    a, b, c = (np.asarray(p, dtype=float)[:2] for p in pts)
    x = np.asarray(x, dtype=float)[:2]
    mat = np.column_stack([b - a, c - a])
    det = np.linalg.det(mat)
    if abs(det) < 1e-300:
        raise ValueError("degenerate triangle")
    uv = np.linalg.solve(mat, x - a)
    return np.array([1.0 - uv[0] - uv[1], uv[0], uv[1]])


def barycentric_tet(
    pts: Sequence[np.ndarray], x: Sequence[float]
) -> np.ndarray:
    """Barycentric coordinates of ``x`` in tetrahedron ``pts`` (4 points)."""
    a, b, c, d = (np.asarray(p, dtype=float)[:3] for p in pts)
    x = np.asarray(x, dtype=float)[:3]
    mat = np.column_stack([b - a, c - a, d - a])
    det = np.linalg.det(mat)
    if abs(det) < 1e-300:
        raise ValueError("degenerate tetrahedron")
    uvw = np.linalg.solve(mat, x - a)
    return np.array([1.0 - uvw.sum(), uvw[0], uvw[1], uvw[2]])


def barycentric(mesh: Mesh, element: Ent, x: Sequence[float]) -> np.ndarray:
    """Barycentric coordinates of ``x`` in a TRI or TET element."""
    pts = [mesh.coords(v) for v in mesh.verts_of(element)]
    etype = mesh.etype(element)
    if etype == TRI:
        return barycentric_tri(pts, x)
    if etype == TET:
        return barycentric_tet(pts, x)
    raise ValueError(
        f"barycentric coordinates support tri/tet, got {mesh.type_name(element)}"
    )


def contains_point(
    mesh: Mesh, element: Ent, x: Sequence[float], tol: float = 1e-10
) -> bool:
    """Whether ``x`` lies inside (or on the boundary of) the element."""
    try:
        bary = barycentric(mesh, element, x)
    except ValueError:
        return False
    return bool(np.all(bary >= -tol))


def interpolate(mesh: Mesh, field, element: Ent, x: Sequence[float]) -> np.ndarray:
    """Linear interpolation of a vertex field at point ``x`` in an element."""
    if field.entity_dim != 0:
        raise ValueError("interpolation requires a vertex field")
    bary = barycentric(mesh, element, x)
    verts = mesh.verts_of(element)
    return sum(w * field.get(v) for w, v in zip(bary, verts))


class ElementLocator:
    """Point-in-mesh queries accelerated by a centroid KD-tree.

    Candidate elements are taken in order of centroid distance; the first
    containing element wins.  ``nearest`` falls back to the closest centroid
    when the point is (numerically) outside the mesh.
    """

    def __init__(self, mesh: Mesh, candidates: int = 12) -> None:
        from scipy.spatial import cKDTree

        self.mesh = mesh
        self.elements: List[Ent] = list(mesh.entities(mesh.dim()))
        if not self.elements:
            raise ValueError("cannot locate points in an empty mesh")
        centroids = np.asarray([mesh.centroid(e) for e in self.elements])
        self._tree = cKDTree(centroids)
        self._candidates = min(candidates, len(self.elements))

    def locate(self, x: Sequence[float], tol: float = 1e-10) -> Optional[Ent]:
        """The element containing ``x``, or None if outside the mesh."""
        x3 = np.zeros(3)
        x = np.asarray(x, dtype=float)
        x3[: x.shape[0]] = x
        _dists, idxs = self._tree.query(x3, k=self._candidates)
        for idx in np.atleast_1d(idxs):
            element = self.elements[int(idx)]
            if contains_point(self.mesh, element, x3, tol):
                return element
        # Widen to an exhaustive scan before giving up (rare, small meshes).
        for element in self.elements:
            if contains_point(self.mesh, element, x3, tol):
                return element
        return None

    def nearest(self, x: Sequence[float]) -> Ent:
        """The element whose centroid is closest to ``x`` (never None)."""
        x3 = np.zeros(3)
        x = np.asarray(x, dtype=float)
        x3[: x.shape[0]] = x
        _dist, idx = self._tree.query(x3, k=1)
        return self.elements[int(idx)]
