"""Isotropic size fields driving mesh adaptation.

A size field prescribes the desired local edge length h(x) over the domain.
Adaptation refines edges longer than their prescribed size and coarsens
edges much shorter than it.  The fields here model the paper's adaptation
scenarios:

* :class:`UniformSize` — uniform target resolution,
* :class:`ShockPlaneSize` — fine resolution in a band around a planar shock
  front (the ONERA M6 scenario of Fig. 13, where the size field comes from
  the hessian of the mach number around the shock),
* :class:`SphereSize` — fine resolution near a moving point (the particle
  tracking scenario of Fig. 8),
* :class:`AnalyticSize` — any callable h(x).

Also here: :func:`edge_size_ratio` (how far each edge is from its target)
and :func:`current_vertex_sizes` (the mesh's existing resolution, the
starting point for predictive load-balance estimates).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Sequence

import numpy as np

from ..mesh.entity import Ent
from ..mesh.mesh import Mesh


class SizeField:
    """Base class: subclasses implement ``value(x) -> float``."""

    def value(self, x: Sequence[float]) -> float:
        raise NotImplementedError

    def at_vertex(self, mesh: Mesh, v: Ent) -> float:
        return self.value(mesh.coords(v))

    def edge_target(self, mesh: Mesh, edge: Ent) -> float:
        """Prescribed size for an edge.

        The minimum of the sizes at both endpoints and the midpoint —
        sampling the midpoint keeps refinement from aliasing past bands
        narrower than the current edge length (a shock thinner than h).
        """
        a, b = mesh.verts_of(edge)
        mid = 0.5 * (mesh.coords(a) + mesh.coords(b))
        return min(
            self.at_vertex(mesh, a),
            self.at_vertex(mesh, b),
            self.value(mid),
        )


class UniformSize(SizeField):
    """Constant target size everywhere."""

    def __init__(self, h: float) -> None:
        if h <= 0:
            raise ValueError(f"size must be positive, got {h}")
        self.h = float(h)

    def value(self, x: Sequence[float]) -> float:
        return self.h


class AnalyticSize(SizeField):
    """Target size from an arbitrary callable ``h(x)``."""

    def __init__(self, fn: Callable[[np.ndarray], float]) -> None:
        self.fn = fn

    def value(self, x: Sequence[float]) -> float:
        h = float(self.fn(np.asarray(x, dtype=float)))
        if h <= 0:
            raise ValueError(f"size field returned non-positive size {h}")
        return h


class ShockPlaneSize(SizeField):
    """Fine size in a Gaussian band around the plane ``normal . x = offset``.

    ``h(x) = h_fine + (h_coarse - h_fine) * (1 - exp(-(d/width)^2))`` where
    ``d`` is the distance to the plane — the analytic stand-in for a
    hessian-of-mach-number size field around a shock front.
    """

    def __init__(
        self,
        normal: Sequence[float],
        offset: float,
        h_fine: float,
        h_coarse: float,
        width: float,
    ) -> None:
        self.normal = np.asarray(normal, dtype=float)
        norm = np.linalg.norm(self.normal)
        if norm == 0:
            raise ValueError("plane normal must be nonzero")
        self.normal = self.normal / norm
        self.offset = float(offset) / norm
        if not 0 < h_fine <= h_coarse:
            raise ValueError("need 0 < h_fine <= h_coarse")
        if width <= 0:
            raise ValueError("band width must be positive")
        self.h_fine = float(h_fine)
        self.h_coarse = float(h_coarse)
        self.width = float(width)

    def value(self, x: Sequence[float]) -> float:
        x = np.asarray(x, dtype=float)
        n = min(len(self.normal), x.shape[0])
        d = float(self.normal[:n] @ x[:n]) - self.offset
        blend = 1.0 - math.exp(-((d / self.width) ** 2))
        return self.h_fine + (self.h_coarse - self.h_fine) * blend


class SphereSize(SizeField):
    """Fine size inside a sphere around ``center`` (a tracked particle)."""

    def __init__(
        self,
        center: Sequence[float],
        radius: float,
        h_fine: float,
        h_coarse: float,
    ) -> None:
        self.center = np.asarray(center, dtype=float)
        if radius <= 0:
            raise ValueError("radius must be positive")
        if not 0 < h_fine <= h_coarse:
            raise ValueError("need 0 < h_fine <= h_coarse")
        self.radius = float(radius)
        self.h_fine = float(h_fine)
        self.h_coarse = float(h_coarse)

    def value(self, x: Sequence[float]) -> float:
        x = np.asarray(x, dtype=float)
        n = min(len(self.center), x.shape[0])
        d = float(np.linalg.norm(x[:n] - self.center[:n]))
        if d <= self.radius:
            return self.h_fine
        # Smooth growth back to coarse over one radius.
        t = min((d - self.radius) / self.radius, 1.0)
        return self.h_fine + (self.h_coarse - self.h_fine) * t

    def moved_to(self, center: Sequence[float]) -> "SphereSize":
        """The same field around a new particle position."""
        return SphereSize(center, self.radius, self.h_fine, self.h_coarse)


class MinSize(SizeField):
    """Pointwise minimum of several size fields (overlapping features)."""

    def __init__(self, fields: Sequence[SizeField]) -> None:
        if not fields:
            raise ValueError("need at least one size field")
        self.fields = list(fields)

    def value(self, x: Sequence[float]) -> float:
        return min(f.value(x) for f in self.fields)


def edge_size_ratio(mesh: Mesh, size: SizeField, edge: Ent) -> float:
    """Current length of ``edge`` divided by its prescribed size.

    > 1 means too long (refine); << 1 means too short (coarsen candidate).
    """
    a, b = mesh.verts_of(edge)
    length = float(np.linalg.norm(mesh.coords(a) - mesh.coords(b)))
    return length / size.edge_target(mesh, edge)


def current_vertex_sizes(mesh: Mesh) -> Dict[Ent, float]:
    """Existing resolution at each vertex: mean adjacent edge length."""
    sizes: Dict[Ent, float] = {}
    for v in mesh.entities(0):
        edges = mesh.up(v)
        if not edges:
            sizes[v] = 0.0
            continue
        total = 0.0
        for e in edges:
            a, b = mesh.verts_of(e)
            total += float(np.linalg.norm(mesh.coords(a) - mesh.coords(b)))
        sizes[v] = total / len(edges)
    return sizes
