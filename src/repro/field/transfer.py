"""Mesh-to-mesh solution transfer.

One of the FASTMath services the paper's introduction lists.  Given a vertex
field on a source mesh and a (different) target mesh of the same domain,
:func:`transfer_vertex_field` evaluates the source solution at every target
vertex by point location plus linear interpolation — the standard transfer
for linear Lagrange fields.  Points that fall (numerically) outside the
source mesh take the value of the nearest source element's interpolant,
clamped to that element.

The hot path is vectorized: :class:`~repro.field.shape.BatchLocator` locates
every target vertex in one batch over the core's SoA coordinate/connectivity
arrays and interpolates with fixed-axis reductions, so the result is
byte-deterministic and — because the locator's winner rule depends only on
geometry and element order keys — identical to what the distributed transfer
in :mod:`repro.couple.xfer` produces.  The original per-vertex loop is kept
as :func:`transfer_vertex_field_loop` as the A/B reference for
``benchmarks/bench_transfer.py``.
"""

from __future__ import annotations

from typing import Optional

from ..mesh.mesh import Mesh
from .field import Field
from .shape import BatchLocator, ElementLocator, barycentric, interpolate

import numpy as np


def transfer_vertex_field(
    source_mesh: Mesh,
    source_field: Field,
    target_mesh: Mesh,
    target_name: Optional[str] = None,
) -> Field:
    """Interpolate ``source_field`` onto the vertices of ``target_mesh``."""
    if source_field.entity_dim != 0:
        raise ValueError("transfer supports vertex fields")
    locator = BatchLocator(source_mesh)
    name = target_name if target_name is not None else source_field.name
    out = Field(target_mesh, name, 0, source_field.shape)
    ids = target_mesh.core.live_ids(0)
    if len(ids) == 0:
        return out
    points = target_mesh.coords_view()[ids]
    values, _contained = locator.sample(points, source_field)
    out.set_many(ids, values)
    return out


def transfer_vertex_field_loop(
    source_mesh: Mesh,
    source_field: Field,
    target_mesh: Mesh,
    target_name: Optional[str] = None,
) -> Field:
    """Per-vertex reference implementation (frozen for A/B benchmarking)."""
    if source_field.entity_dim != 0:
        raise ValueError("transfer supports vertex fields")
    locator = ElementLocator(source_mesh)
    name = target_name if target_name is not None else source_field.name
    out = Field(target_mesh, name, 0, source_field.shape)
    for v in target_mesh.entities(0):
        x = target_mesh.coords(v)
        element = locator.locate(x)
        if element is None:
            element = locator.nearest(x)
            bary = np.clip(barycentric(source_mesh, element, x), 0.0, None)
            bary = bary / bary.sum()
            verts = source_mesh.verts_of(element)
            value = sum(w * source_field.get(sv) for w, sv in zip(bary, verts))
        else:
            value = interpolate(source_mesh, source_field, element, x)
        out.set(v, value)
    return out


def transfer_error(
    mesh: Mesh, field: Field, exact, norm: str = "max"
) -> float:
    """Error of a vertex field against an exact function of coordinates."""
    worst = 0.0
    total = 0.0
    count = 0
    for v in mesh.entities(0):
        diff = float(
            np.abs(field.get(v) - np.asarray(exact(mesh.coords(v)))).max()
        )
        worst = max(worst, diff)
        total += diff * diff
        count += 1
    if norm == "max":
        return worst
    if norm == "l2":
        return (total / max(count, 1)) ** 0.5
    raise ValueError(f"unknown norm {norm!r}")
