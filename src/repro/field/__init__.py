"""Field component: tensor quantities over mesh entities, size fields,
shape functions, and mesh-to-mesh transfer.

Reproduces the "Field" box of PUMI's software structure (Fig. 1).  The
owner-to-copy synchronization of distributed fields lives in
:mod:`repro.partition.fieldsync` because it needs the partition model.
"""

from .dof import DofNumbering, dof_imbalance, dof_loads
from .fem import PoissonProblem, PoissonStats, solution_error
from .field import Field, FieldManager
from .metric import (
    AnalyticMetric,
    MetricField,
    UniformMetric,
    boundary_layer_metric,
    mean_metric_edge_length,
)
from .shape import (
    BatchLocator,
    ElementLocator,
    barycentric,
    barycentric_tet,
    barycentric_tri,
    contains_point,
    interpolate,
)
from .sizefield import (
    AnalyticSize,
    MinSize,
    ShockPlaneSize,
    SizeField,
    SphereSize,
    UniformSize,
    current_vertex_sizes,
    edge_size_ratio,
)
from .transfer import (
    transfer_error,
    transfer_vertex_field,
    transfer_vertex_field_loop,
)

__all__ = [
    "AnalyticMetric",
    "AnalyticSize",
    "BatchLocator",
    "DofNumbering",
    "ElementLocator",
    "Field",
    "FieldManager",
    "MetricField",
    "MinSize",
    "PoissonProblem",
    "PoissonStats",
    "ShockPlaneSize",
    "SizeField",
    "SphereSize",
    "UniformSize",
    "UniformMetric",
    "barycentric",
    "boundary_layer_metric",
    "barycentric_tet",
    "barycentric_tri",
    "contains_point",
    "current_vertex_sizes",
    "dof_imbalance",
    "dof_loads",
    "edge_size_ratio",
    "interpolate",
    "mean_metric_edge_length",
    "solution_error",
    "transfer_error",
    "transfer_vertex_field",
    "transfer_vertex_field_loop",
]
