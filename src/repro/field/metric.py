"""Anisotropic metric fields for directional mesh adaptation.

The paper's adaptation lineage is anisotropic (it cites Alauzet, Li, Seol &
Shephard, "Parallel anisotropic 3D mesh adaptation by mesh modification"):
the target is not a scalar size h(x) but a symmetric positive-definite
metric M(x) whose unit balls prescribe different edge lengths in different
directions — boundary layers and shocks want fine resolution across the
feature and coarse along it.

:class:`MetricField` plugs into the existing isotropic machinery through a
small trick: the adaptation driver refines edges with
``length / edge_target > ratio``, and an edge's length *in the metric* is
``sqrt(e^T M e)``; setting ``edge_target = physical_length / metric_length``
makes the existing ratio exactly the metric length, so refinement and
coarsening become metric-driven with no driver changes.

Provided metrics: :class:`AnalyticMetric` (any callable M(x)) and
:func:`boundary_layer_metric` (fine across a wall, coarse along it — the
canonical anisotropic use case).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..mesh.entity import Ent
from ..mesh.mesh import Mesh
from .sizefield import SizeField


class MetricField(SizeField):
    """Base: subclasses provide ``matrix(x) -> (d, d) SPD array``."""

    def matrix(self, x: Sequence[float]) -> np.ndarray:
        raise NotImplementedError

    def metric_length(self, a: np.ndarray, b: np.ndarray) -> float:
        """Length of segment ab in the metric (3-point Simpson sampling).

        Sampling both endpoints as well as the midpoint keeps steep metric
        gradients (a boundary layer thinner than the edge) from being
        aliased away, the same reason the isotropic
        :meth:`SizeField.edge_target` samples the midpoint.
        """
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        mid = 0.5 * (a + b)
        lengths = []
        for point, weight in ((a, 1.0), (mid, 4.0), (b, 1.0)):
            m = self.matrix(point)
            d = m.shape[0]
            e = (b - a)[:d]
            value = float(e @ m @ e)
            if value < 0:
                raise ValueError("metric is not positive semi-definite")
            lengths.append(weight * np.sqrt(value))
        return sum(lengths) / 6.0

    # -- SizeField protocol ---------------------------------------------

    def value(self, x: Sequence[float]) -> float:
        """Isotropic fallback: the size along the metric's stiffest axis."""
        m = self.matrix(x)
        eigmax = float(np.linalg.eigvalsh(m)[-1])
        if eigmax <= 0:
            raise ValueError("metric has no positive eigenvalue")
        return 1.0 / np.sqrt(eigmax)

    def edge_target(self, mesh: Mesh, edge: Ent) -> float:
        """Target making ``length / target`` equal the metric length."""
        a, b = mesh.verts_of(edge)
        pa = mesh.coords(a)
        pb = mesh.coords(b)
        length = float(np.linalg.norm(pb - pa))
        metric = self.metric_length(pa, pb)
        if metric <= 1e-300:
            return float("inf")  # zero metric length: never refine
        return length / metric


class AnalyticMetric(MetricField):
    """Metric from an arbitrary callable ``M(x)``."""

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray]) -> None:
        self.fn = fn

    def matrix(self, x: Sequence[float]) -> np.ndarray:
        m = np.asarray(self.fn(np.asarray(x, dtype=float)), dtype=float)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ValueError(f"metric must be square, got shape {m.shape}")
        return m


class UniformMetric(MetricField):
    """Isotropic metric requesting size ``h`` everywhere (sanity anchor)."""

    def __init__(self, h: float, dim: int = 2) -> None:
        if h <= 0:
            raise ValueError("size must be positive")
        self.h = float(h)
        self.dim = dim

    def matrix(self, x: Sequence[float]) -> np.ndarray:
        return np.eye(self.dim) / self.h ** 2


def boundary_layer_metric(
    wall_normal: Sequence[float],
    wall_offset: float,
    h_normal: float,
    h_tangent: float,
    growth: float = 3.0,
    dim: int = 2,
) -> AnalyticMetric:
    """Boundary-layer metric: ``h_normal`` across the wall, ``h_tangent``
    along it, with the normal size relaxing exponentially away from the wall
    (distance scale ``growth * h_tangent``).
    """
    n = np.asarray(wall_normal, dtype=float)[:dim]
    norm = np.linalg.norm(n)
    if norm == 0:
        raise ValueError("wall normal must be nonzero")
    n = n / norm
    if not 0 < h_normal <= h_tangent:
        raise ValueError("need 0 < h_normal <= h_tangent")
    scale = growth * h_tangent

    def matrix(x: np.ndarray) -> np.ndarray:
        d = abs(float(n @ x[:dim]) - wall_offset)
        blend = 1.0 - np.exp(-d / scale)
        h_n = h_normal + (h_tangent - h_normal) * blend
        # M = n n^T / h_n^2 + (I - n n^T) / h_t^2.
        nnt = np.outer(n, n)
        return nnt / h_n ** 2 + (np.eye(dim) - nnt) / h_tangent ** 2

    return AnalyticMetric(matrix)


def mean_metric_edge_length(mesh: Mesh, metric: MetricField) -> float:
    """Average metric length over all edges (1.0 = perfectly conforming)."""
    total = 0.0
    count = 0
    for edge in mesh.entities(1):
        a, b = mesh.verts_of(edge)
        total += metric.metric_length(mesh.coords(a), mesh.coords(b))
        count += 1
    return total / count if count else 0.0
