"""Fields: tensor quantities distributed over mesh entities.

"The fields are tensor quantities that define the distributions of the
physical parameters of the PDE over domain (mesh and geometric model)
entities" (paper, Section II).  A :class:`Field` associates a fixed-shape
NumPy value with entities of one dimension of one mesh — most commonly
scalars or vectors on vertices (linear Lagrange dofs), but any entity
dimension works (e.g. per-region material ids, per-edge fluxes).

Storage is structure-of-arrays: one ``(capacity, ncomp)`` value matrix
indexed by entity handle plus a set-mask, so batch reads/writes
(:meth:`Field.get_many` / :meth:`Field.set_many`) are single NumPy gathers
and the owner→copy sync path can ship whole columns.  The field registers a
destroy listener on its mesh: when an entity dies its value is evicted
immediately, so a recycled handle never inherits a stale value.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from ..mesh.entity import Ent
from ..mesh.mesh import Mesh

Shape = Union[int, Tuple[int, ...]]


class Field:
    """A named tensor field over the entities of one dimension of a mesh."""

    def __init__(
        self,
        mesh: Mesh,
        name: str,
        entity_dim: int = 0,
        shape: Shape = 1,
    ) -> None:
        if not 0 <= entity_dim <= 3:
            raise ValueError(f"entity dimension must be 0..3, got {entity_dim}")
        self.mesh = mesh
        self.name = name
        self.entity_dim = entity_dim
        self.shape: Tuple[int, ...] = (
            (shape,) if isinstance(shape, int) else tuple(shape)
        )
        self._values = np.zeros((16, self.ncomp), dtype=float)
        self._mask = np.zeros(16, dtype=bool)
        self._count = 0
        mesh.add_destroy_listener(self._entity_destroyed)

    @property
    def ncomp(self) -> int:
        return int(np.prod(self.shape))

    # -- storage -----------------------------------------------------------

    def _ensure(self, idx: int) -> None:
        if idx >= len(self._mask):
            cap = max(2 * len(self._mask), idx + 1)
            values = np.zeros((cap, self.ncomp), dtype=float)
            values[: len(self._mask)] = self._values
            mask = np.zeros(cap, dtype=bool)
            mask[: len(self._mask)] = self._mask
            self._values = values
            self._mask = mask

    def _entity_destroyed(self, ent: Ent) -> None:
        if ent.dim == self.entity_dim and ent.idx < len(self._mask):
            if self._mask[ent.idx]:
                self._mask[ent.idx] = False
                self._count -= 1

    def _coerce(self, value) -> np.ndarray:
        arr = np.asarray(value, dtype=float)
        if arr.shape == () and self.shape == (1,):
            arr = arr.reshape(1)
        if arr.shape != self.shape:
            raise ValueError(
                f"field {self.name!r} expects shape {self.shape}, "
                f"got {arr.shape}"
            )
        return arr

    def _check_ent(self, ent: Ent) -> None:
        if ent.dim != self.entity_dim:
            raise ValueError(
                f"field {self.name!r} lives on dim-{self.entity_dim} "
                f"entities, got {ent}"
            )
        if not self.mesh.has(ent):
            raise KeyError(f"{ent} is not a live entity of the field's mesh")

    # -- per-entity access -------------------------------------------------

    def set(self, ent: Ent, value) -> None:
        self._check_ent(ent)
        self._ensure(ent.idx)
        self._values[ent.idx] = self._coerce(value).reshape(-1)
        if not self._mask[ent.idx]:
            self._mask[ent.idx] = True
            self._count += 1

    def get(self, ent: Ent) -> np.ndarray:
        self._check_ent(ent)
        if ent.idx >= len(self._mask) or not self._mask[ent.idx]:
            raise KeyError(f"field {self.name!r} has no value on {ent}")
        return self._values[ent.idx].reshape(self.shape).copy()

    def get_scalar(self, ent: Ent) -> float:
        """Value of a 1-component field as a plain float."""
        if self.shape != (1,):
            raise ValueError(f"field {self.name!r} is not scalar")
        return float(self.get(ent)[0])

    def has(self, ent: Ent) -> bool:
        return (
            ent.dim == self.entity_dim
            and ent.idx < len(self._mask)
            and bool(self._mask[ent.idx])
        )

    def remove(self, ent: Ent) -> None:
        if ent.dim == self.entity_dim and ent.idx < len(self._mask):
            if self._mask[ent.idx]:
                self._mask[ent.idx] = False
                self._count -= 1

    # -- batch access ------------------------------------------------------

    def set_many(self, ids: np.ndarray, values: np.ndarray) -> None:
        """Assign ``values[k]`` (flattened components) to handle ``ids[k]``.

        Vectorized: one scatter into the value matrix.  Callers are trusted
        to pass live handles of the field's dimension.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) == 0:
            return
        self._ensure(int(ids.max()))
        values = np.asarray(values, dtype=float).reshape(len(ids), self.ncomp)
        self._values[ids] = values
        fresh = ~self._mask[ids]
        if fresh.any():
            self._mask[ids] = True
            # Recount exactly: ids may contain duplicates.
            self._count = int(self._mask.sum())

    def get_many(self, ids: np.ndarray) -> np.ndarray:
        """``(len(ids), ncomp)`` value matrix for an array of handles."""
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) == 0:
            return np.empty((0, self.ncomp), dtype=float)
        if int(ids.max()) >= len(self._mask) or not self._mask[ids].all():
            missing = next(
                i for i in ids.tolist()
                if i >= len(self._mask) or not self._mask[i]
            )
            raise KeyError(
                f"field {self.name!r} has no value on "
                f"{Ent(self.entity_dim, missing)}"
            )
        return self._values[ids].copy()

    def set_ids(self) -> np.ndarray:
        """Handles currently carrying a value, ascending."""
        return np.nonzero(self._mask)[0]

    # -- whole-field assignment --------------------------------------------

    def zero_all(self) -> None:
        """Set the field to zero on every live entity of its dimension."""
        ids = self.mesh.entity_ids(self.entity_dim)
        if len(ids) == 0:
            return
        self._ensure(int(ids.max()))
        self._values[ids] = 0.0
        self._mask[ids] = True
        self._count = int(self._mask.sum())

    def set_all(self, fn) -> None:
        """Assign ``fn(ent) -> value`` on every live entity."""
        for ent in self.mesh.entities(self.entity_dim):
            self.set(ent, fn(ent))

    def set_from_coords(self, fn) -> None:
        """Assign ``fn(xyz) -> value`` on every vertex (vertex fields only)."""
        if self.entity_dim != 0:
            raise ValueError("set_from_coords applies to vertex fields")
        ids = self.mesh.entity_ids(0)
        if len(ids) == 0:
            return
        self._ensure(int(ids.max()))
        coords = self.mesh._coords
        for i in ids.tolist():
            self._values[i] = self._coerce(fn(coords[i].copy())).reshape(-1)
        self._mask[ids] = True
        self._count = int(self._mask.sum())

    # -- iteration / aggregates --------------------------------------------

    def items(self) -> Iterator[Tuple[Ent, np.ndarray]]:
        dim = self.entity_dim
        for idx in self.set_ids().tolist():
            yield Ent(dim, idx), self._values[idx].reshape(self.shape).copy()

    def entities(self) -> Iterator[Ent]:
        dim = self.entity_dim
        return iter(Ent(dim, idx) for idx in self.set_ids().tolist())

    def __len__(self) -> int:
        return self._count

    def norm(self, kind: str = "l2") -> float:
        """Aggregate norm over all stored values (``l2`` or ``max``)."""
        if not self._count:
            return 0.0
        stacked = self._values[self._mask]
        if kind == "l2":
            return float(np.sqrt((stacked ** 2).sum()))
        if kind == "max":
            return float(np.abs(stacked).max())
        raise ValueError(f"unknown norm kind {kind!r}")

    def __repr__(self) -> str:
        return (
            f"Field({self.name!r}, dim={self.entity_dim}, "
            f"shape={self.shape}, {self._count} values)"
        )


class FieldManager:
    """Registry of the fields attached to one mesh."""

    def __init__(self, mesh: Mesh) -> None:
        self.mesh = mesh
        self._fields: Dict[str, Field] = {}

    def create(
        self, name: str, entity_dim: int = 0, shape: Shape = 1
    ) -> Field:
        existing = self._fields.get(name)
        if existing is not None:
            if existing.entity_dim != entity_dim or existing.shape != (
                (shape,) if isinstance(shape, int) else tuple(shape)
            ):
                raise ValueError(
                    f"field {name!r} already exists with a different layout"
                )
            return existing
        field = Field(self.mesh, name, entity_dim, shape)
        self._fields[name] = field
        return field

    def find(self, name: str) -> Optional[Field]:
        return self._fields.get(name)

    def delete(self, name: str) -> None:
        self._fields.pop(name, None)

    def names(self) -> Iterator[str]:
        return iter(sorted(self._fields))

    def __contains__(self, name: str) -> bool:
        return name in self._fields
