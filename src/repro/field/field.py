"""Fields: tensor quantities distributed over mesh entities.

"The fields are tensor quantities that define the distributions of the
physical parameters of the PDE over domain (mesh and geometric model)
entities" (paper, Section II).  A :class:`Field` associates a fixed-shape
NumPy value with entities of one dimension of one mesh — most commonly
scalars or vectors on vertices (linear Lagrange dofs), but any entity
dimension works (e.g. per-region material ids, per-edge fluxes).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from ..mesh.entity import Ent
from ..mesh.mesh import Mesh

Shape = Union[int, Tuple[int, ...]]


class Field:
    """A named tensor field over the entities of one dimension of a mesh."""

    def __init__(
        self,
        mesh: Mesh,
        name: str,
        entity_dim: int = 0,
        shape: Shape = 1,
    ) -> None:
        if not 0 <= entity_dim <= 3:
            raise ValueError(f"entity dimension must be 0..3, got {entity_dim}")
        self.mesh = mesh
        self.name = name
        self.entity_dim = entity_dim
        self.shape: Tuple[int, ...] = (
            (shape,) if isinstance(shape, int) else tuple(shape)
        )
        self._data: Dict[Ent, np.ndarray] = {}

    @property
    def ncomp(self) -> int:
        return int(np.prod(self.shape))

    def _coerce(self, value) -> np.ndarray:
        arr = np.asarray(value, dtype=float)
        if arr.shape == () and self.shape == (1,):
            arr = arr.reshape(1)
        if arr.shape != self.shape:
            raise ValueError(
                f"field {self.name!r} expects shape {self.shape}, "
                f"got {arr.shape}"
            )
        return arr.copy()

    def _check_ent(self, ent: Ent) -> None:
        if ent.dim != self.entity_dim:
            raise ValueError(
                f"field {self.name!r} lives on dim-{self.entity_dim} "
                f"entities, got {ent}"
            )
        if not self.mesh.has(ent):
            raise KeyError(f"{ent} is not a live entity of the field's mesh")

    def set(self, ent: Ent, value) -> None:
        self._check_ent(ent)
        self._data[ent] = self._coerce(value)

    def get(self, ent: Ent) -> np.ndarray:
        self._check_ent(ent)
        try:
            return self._data[ent].copy()
        except KeyError:
            raise KeyError(
                f"field {self.name!r} has no value on {ent}"
            ) from None

    def get_scalar(self, ent: Ent) -> float:
        """Value of a 1-component field as a plain float."""
        if self.shape != (1,):
            raise ValueError(f"field {self.name!r} is not scalar")
        return float(self.get(ent)[0])

    def has(self, ent: Ent) -> bool:
        return ent in self._data

    def remove(self, ent: Ent) -> None:
        self._data.pop(ent, None)

    def zero_all(self) -> None:
        """Set the field to zero on every live entity of its dimension."""
        zero = np.zeros(self.shape)
        for ent in self.mesh.entities(self.entity_dim):
            self._data[ent] = zero.copy()

    def set_all(self, fn) -> None:
        """Assign ``fn(ent) -> value`` on every live entity."""
        for ent in self.mesh.entities(self.entity_dim):
            self._data[ent] = self._coerce(fn(ent))

    def set_from_coords(self, fn) -> None:
        """Assign ``fn(xyz) -> value`` on every vertex (vertex fields only)."""
        if self.entity_dim != 0:
            raise ValueError("set_from_coords applies to vertex fields")
        for v in self.mesh.entities(0):
            self._data[v] = self._coerce(fn(self.mesh.coords(v)))

    def items(self) -> Iterator[Tuple[Ent, np.ndarray]]:
        return iter(sorted(self._data.items()))

    def entities(self) -> Iterator[Ent]:
        return iter(sorted(self._data))

    def __len__(self) -> int:
        return len(self._data)

    def norm(self, kind: str = "l2") -> float:
        """Aggregate norm over all stored values (``l2`` or ``max``)."""
        if not self._data:
            return 0.0
        stacked = np.stack(list(self._data.values()))
        if kind == "l2":
            return float(np.sqrt((stacked ** 2).sum()))
        if kind == "max":
            return float(np.abs(stacked).max())
        raise ValueError(f"unknown norm kind {kind!r}")

    def __repr__(self) -> str:
        return (
            f"Field({self.name!r}, dim={self.entity_dim}, "
            f"shape={self.shape}, {len(self._data)} values)"
        )


class FieldManager:
    """Registry of the fields attached to one mesh."""

    def __init__(self, mesh: Mesh) -> None:
        self.mesh = mesh
        self._fields: Dict[str, Field] = {}

    def create(
        self, name: str, entity_dim: int = 0, shape: Shape = 1
    ) -> Field:
        existing = self._fields.get(name)
        if existing is not None:
            if existing.entity_dim != entity_dim or existing.shape != (
                (shape,) if isinstance(shape, int) else tuple(shape)
            ):
                raise ValueError(
                    f"field {name!r} already exists with a different layout"
                )
            return existing
        field = Field(self.mesh, name, entity_dim, shape)
        self._fields[name] = field
        return field

    def find(self, name: str) -> Optional[Field]:
        return self._fields.get(name)

    def delete(self, name: str) -> None:
        self._fields.pop(name, None)

    def names(self) -> Iterator[str]:
        return iter(sorted(self._fields))

    def __contains__(self, name: str) -> bool:
        return name in self._fields
