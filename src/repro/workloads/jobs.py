"""Job-spec adapters: named SPMD rank programs the serving tier can run.

The mesh-job service (:mod:`repro.svc`) accepts :class:`~repro.svc.JobSpec`
entries from JSON, so workloads must be addressable by *name*.  This module
is that registry: each entry maps a name to a rank program
``fn(comm, mesh_n, steps) -> dict`` that runs on every rank of the job's
gang and returns a JSON-safe, deterministic result (rank 0's return value
becomes the job's ``output`` in the service report, so determinism here is
what makes two identical service runs byte-identical).

Registered workloads
--------------------
``stencil``
    1-D Jacobi halo exchange: each rank owns ``mesh_n`` cells and trades
    boundary values with its neighbours for ``steps`` sweeps — the
    communication shape of a partitioned mesh smoothing pass.
``allreduce``
    ``steps`` rounds of global reduction over per-rank partial sums — the
    collective-heavy load balancing control pattern.
``mesh-stats``
    Rank 0 generates a triangular mesh and partitions it across the gang
    (RCB); counts are scattered and the gang computes the element
    imbalance collectively — a miniature of the paper's Table-II pipeline.
``mesh-warm``
    ``mesh-stats`` behind the snapshot cache: rank 0 warm-starts the base
    mesh from the installed :class:`~repro.store.SnapshotCache` (building
    and publishing it on the first miss), restored at the gang's size by
    the parallel loader.  The output's ``warm`` flag records whether
    geometry generation was skipped.
``noop``
    Barrier and return; the minimal schedulable gang.
``block``
    Every rank blocks on a receive that never arrives.  Exists for
    deadline/cancellation testing: only cooperative cancellation (or the
    world's receive timeout) ends it.
``adapt-loop``
    The solver-in-the-loop adaptive cycle (:mod:`repro.couple.loop`):
    solve -> error-estimate -> adapt -> transfer -> ParMA rebalance, run
    ``steps`` cycles on rank 0 with the gang size as the part count; the
    per-cycle summary is scattered and checksum-joined across the gang.
``coupled``
    One endpoint of a two-mesh coupling (requires a channel binding and a
    peer job — run it through :meth:`repro.svc.MeshJobService.serve_graph`).
    The ``dst`` role ships its query points, then receives one transformed
    field frame per step; the ``src`` role samples a moving front over its
    own mesh at the peer's points and ships the frames.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

__all__ = ["JOB_WORKLOADS", "job_workload", "job_workload_names"]

#: A rank program: ``fn(comm, mesh_n, steps) -> JSON-safe dict``.
JobWorkload = Callable[..., Dict[str, Any]]


def stencil_job(comm, mesh_n: int, steps: int) -> Dict[str, Any]:
    """1-D Jacobi sweeps with halo exchange between neighbouring ranks."""
    rank, size = comm.rank, comm.size
    cells: List[float] = [
        float(rank * mesh_n + i) for i in range(max(mesh_n, 1))
    ]
    for sweep in range(max(steps, 1)):
        left = rank - 1
        right = rank + 1
        if left >= 0:
            comm.send(cells[0], left, tag=10 + sweep)
        if right < size:
            comm.send(cells[-1], right, tag=10 + sweep)
        lo = comm.recv(source=left, tag=10 + sweep) if left >= 0 else cells[0]
        hi = (
            comm.recv(source=right, tag=10 + sweep)
            if right < size
            else cells[-1]
        )
        padded = [lo] + cells + [hi]
        cells = [
            (padded[i - 1] + padded[i] + padded[i + 1]) / 3.0
            for i in range(1, len(padded) - 1)
        ]
    checksum = comm.allreduce(sum(cells))
    return {
        "workload": "stencil",
        "cells_per_rank": len(cells),
        "sweeps": max(steps, 1),
        "checksum": round(checksum, 9),
    }


def allreduce_job(comm, mesh_n: int, steps: int) -> Dict[str, Any]:
    """Repeated global reductions over per-rank partial sums."""
    rank, size = comm.rank, comm.size
    total = 0.0
    for round_ in range(max(steps, 1)):
        partial = sum(
            float((rank + 1) * (i + round_ + 1)) for i in range(max(mesh_n, 1))
        )
        total += comm.allreduce(partial)
    peak = comm.allreduce(total, op=max)
    return {
        "workload": "allreduce",
        "rounds": max(steps, 1),
        "ranks": size,
        "total": round(total, 9),
        "peak": round(peak, 9),
    }


def mesh_stats_job(comm, mesh_n: int, steps: int) -> Dict[str, Any]:
    """Partition a generated mesh across the gang and score the balance."""
    rank, size = comm.rank, comm.size
    if rank == 0:
        from ..mesh import rect_tri
        from ..partitioners import partition

        mesh = rect_tri(max(mesh_n, 2))
        assignment = partition(mesh, size, method="rcb", seed=0)
        counts = [0] * size
        for part in assignment:
            counts[int(part)] += 1
        payload: Any = [
            {"elements": mesh.count(2), "count": count} for count in counts
        ]
    else:
        payload = None
    mine = comm.scatter(payload, root=0)
    local = int(mine["count"])
    heaviest = comm.allreduce(local, op=max)
    total = comm.allreduce(local)
    mean = total / size
    imbalance = heaviest / mean if mean else 1.0
    return {
        "workload": "mesh-stats",
        "elements": int(mine["elements"]),
        "parts": size,
        "heaviest": heaviest,
        "imbalance_pct": round((imbalance - 1.0) * 100.0, 4),
    }


def mesh_warm_job(comm, mesh_n: int, steps: int) -> Dict[str, Any]:
    """``mesh-stats`` via the snapshot cache: skip geometry on a hit.

    With no cache installed this degrades to the cold path every time, so
    the workload is runnable in any service configuration.
    """
    rank, size = comm.rank, comm.size
    if rank == 0:
        from ..mesh import rect_tri
        from ..partition import distribute
        from ..partitioners import partition
        from ..store.cache import current_cache

        n = max(mesh_n, 2)

        def build():
            mesh = rect_tri(n)
            assignment = partition(mesh, size, method="rcb", seed=0)
            return distribute(mesh, [int(a) for a in assignment]), ()

        cache = current_cache()
        if cache is None:
            dmesh, _fields = build()
            warm = False
        else:
            dmesh, _fields, warm = cache.warm_start(  # noqa: SPMD101 — the store redistributes over its own nested BSP world, not the gang communicator; the scatter below rejoins every rank
                "mesh-warm", {"n": n}, size, build
            )
        dim = dmesh.element_dim()
        counts = dmesh.entity_counts()
        elements = int(counts[:, dim].sum())
        payload: Any = [
            {"elements": elements, "count": int(c), "warm": bool(warm)}
            for c in counts[:, dim]
        ]
    else:
        payload = None
    mine = comm.scatter(payload, root=0)
    local = int(mine["count"])
    heaviest = comm.allreduce(local, op=max)
    total = comm.allreduce(local)
    mean = total / size
    imbalance = heaviest / mean if mean else 1.0
    return {
        "workload": "mesh-warm",
        "elements": int(mine["elements"]),
        "parts": size,
        "heaviest": heaviest,
        "imbalance_pct": round((imbalance - 1.0) * 100.0, 4),
        "warm": bool(mine["warm"]),
    }


def noop_job(comm, mesh_n: int, steps: int) -> Dict[str, Any]:
    """The minimal gang: synchronize and report the world shape."""
    comm.barrier()
    return {"workload": "noop", "ranks": comm.size}


def block_job(comm, mesh_n: int, steps: int) -> Dict[str, Any]:
    """Block forever on a receive that never arrives (cancellation target).

    Uses a wildcard-source receive so the deadlock sanitizer (which only
    tracks concrete-source waits) lets it block under ``sanitize=True`` too.
    """
    comm.recv(tag=424242)
    return {"workload": "block"}  # pragma: no cover - unreachable


def adapt_loop_job(comm, mesh_n: int, steps: int) -> Dict[str, Any]:
    """Solver-in-the-loop adaptivity: rank 0 drives, the gang checksums.

    ``mesh_n`` sizes the initial mesh, ``steps`` is the cycle count, and
    the gang size is the part count the loop rebalances at.
    """
    rank, size = comm.rank, comm.size
    if rank == 0:
        from ..couple.loop import run_adapt_loop
        from ..parallel.perf import PerfCounters

        report = run_adapt_loop(  # noqa: SPMD101 — the loop distributes over its own nested BSP worlds, not the gang communicator; the scatter below rejoins every rank
            n=max(mesh_n, 4),
            cycles=max(steps, 1),
            parts=size,
            counters=PerfCounters(),
        )
        summary = {
            "workload": "adapt-loop",
            "cycles": report["cycles"],
            "parts": report["parts"],
            "final_elements": report["final_elements"],
            "final_vertices": report["final_vertices"],
            "monotone_error": report["monotone_error"],
            "est_max": [
                round(rec["est_max"], 12) for rec in report["records"]
            ],
            "transfer_checksums": [
                rec["transfer_checksum"] for rec in report["records"]
            ],
        }
        if "distributed_transfer_matches" in report:
            summary["distributed_transfer_matches"] = report[
                "distributed_transfer_matches"
            ]
        payload: Any = [dict(summary) for _ in range(size)]
    else:
        payload = None
    mine = dict(comm.scatter(payload, root=0))
    agreed = comm.allreduce(int(mine["final_elements"]), op=max)
    mine["final_elements"] = agreed
    return mine


def coupled_job(comm, mesh_n: int, steps: int, ports=None) -> Dict[str, Any]:
    """One endpoint of a two-mesh coupling over a svc channel.

    Requires exactly one bound channel (``ports`` is injected by the
    service for jobs submitted through ``serve_graph``).  The coarse
    ``src`` job answers the fine ``dst`` job's query points with one
    sampled field frame per step; the digests of the shipped/received
    frames are the byte-determinism witness in the job output.
    """
    rank, size = comm.rank, comm.size
    if ports is None or len(ports) != 1:
        raise ValueError(
            "the 'coupled' workload needs exactly one bound channel; "
            "submit it through MeshJobService.serve_graph"
        )
    if rank == 0:
        import zlib

        import numpy as np

        from ..field.field import Field
        from ..field.shape import BatchLocator
        from ..mesh import rect_tri

        (endpoint,) = ports.values()
        nsteps = max(steps, 1)
        crc = 0
        if endpoint.role == "src":
            mesh = rect_tri(max(mesh_n, 2))
            handshake = endpoint.recv(timeout=60.0)
            points = handshake.values
            locator = BatchLocator(mesh)
            ids = mesh.core.live_ids(0)
            coords = mesh.coords_view()[ids]
            field = Field(mesh, endpoint.spec.field, 0, endpoint.spec.ncomp)
            for step in range(nsteps):
                phase = 0.25 * step
                vals = np.tanh(
                    6.0 * (coords[:, 0] + coords[:, 1] - 1.0 - phase)
                )
                field.set_many(ids, np.repeat(
                    vals[:, None], endpoint.spec.ncomp, axis=1
                ))
                sampled, _contained = locator.sample(points, field)
                shipped = endpoint.send_values(step, sampled, timeout=60.0)
                crc = zlib.crc32(shipped.values.tobytes(), crc)
        else:
            mesh = rect_tri(2 * max(mesh_n, 2))
            ids = mesh.core.live_ids(0)
            points = np.array(mesh.coords_view()[ids])
            endpoint.send_points(points, timeout=60.0)
            field = Field(mesh, endpoint.spec.field, 0, endpoint.spec.ncomp)
            for _step in range(nsteps):
                frame = endpoint.recv(timeout=60.0)
                field.set_many(ids, frame.values)
                crc = zlib.crc32(frame.values.tobytes(), crc)
        payload: Any = [
            {
                "workload": "coupled",
                "role": endpoint.role,
                "channel": endpoint.spec.name,
                "vertices": int(len(ids)),
                "frames": nsteps,
                "checksum": crc,
            }
            for _ in range(size)
        ]
    else:
        payload = None
    mine = dict(comm.scatter(payload, root=0))
    agreed = comm.allreduce(int(mine["checksum"]), op=max)
    mine["checksum"] = agreed
    return mine


#: Name -> rank program registry consumed by :mod:`repro.svc`.
JOB_WORKLOADS: Dict[str, JobWorkload] = {
    "stencil": stencil_job,
    "allreduce": allreduce_job,
    "mesh-stats": mesh_stats_job,
    "mesh-warm": mesh_warm_job,
    "noop": noop_job,
    "block": block_job,
    "adapt-loop": adapt_loop_job,
    "coupled": coupled_job,
}


def job_workload_names() -> List[str]:
    """Registered workload names, sorted."""
    return sorted(JOB_WORKLOADS)


def job_workload(name: str) -> JobWorkload:
    """Look up a registered rank program by name."""
    try:
        return JOB_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown job workload {name!r}; registered: "
            f"{', '.join(job_workload_names())}"
        ) from None
