"""AAA-surrogate workload: a curved, bulged vessel tetrahedral mesh.

Table II's experiments run on a 133M-element tetrahedral mesh of an
abdominal aorta aneurysm (AAA) model.  No patient geometry or industrial
mesh generator is available offline, so this surrogate produces a mesh with
the same *partitioning-relevant* characteristics: an elongated, curved,
non-uniform 3D tet mesh whose cross-section bulges in the middle (the
aneurysm sac).  The construction maps a structured box tet mesh through a
smooth vessel transformation — centerline curvature, radius modulation, and
a mild jitter that breaks the structured symmetry so partition boundaries
behave like those of an unstructured mesh.

After the coordinate transformation the attached box b-rep remains the
topological classification (which PUMI-style bookkeeping needs); its shape
evaluators no longer describe the deformed geometry, so this workload is
used for partitioning studies, not adaptation with snapping.
"""

from __future__ import annotations

import numpy as np

from ..mesh.generate import box_tet
from ..mesh.mesh import Mesh


def aaa_mesh(
    n: int = 8,
    aspect: int = 4,
    length: float = 8.0,
    radius: float = 1.0,
    bulge: float = 1.2,
    curvature: float = 0.8,
    jitter: float = 0.15,
    seed: int = 0,
) -> Mesh:
    """Build the AAA-surrogate mesh: ``6 * aspect * n^3`` tetrahedra.

    Parameters mirror the anatomy: ``bulge`` scales the mid-vessel radius
    growth (the aneurysm), ``curvature`` bends the centerline, ``jitter``
    perturbs interior vertices by a fraction of the local spacing.
    """
    if n < 2:
        raise ValueError("need at least two cells across the vessel")
    mesh = box_tet(
        aspect * n, n, n,
        lo=(0.0, -0.5, -0.5),
        hi=(length, 0.5, 0.5),
    )
    rng = np.random.default_rng(seed)

    store = mesh._stores[0]
    coords = mesh._coords
    h = 1.0 / n  # cross-section spacing before deformation
    for idx in store.indices():
        x, y, z = coords[idx]
        t = x / length
        # Aneurysm sac: radius grows smoothly in the middle of the vessel.
        r = radius * (1.0 + bulge * np.exp(-(((t - 0.5) / 0.15) ** 2)))
        # Centerline curvature: a gentle S-bend.
        cy = curvature * np.sin(2.0 * np.pi * t)
        cz = 0.5 * curvature * np.sin(np.pi * t)
        new = np.array([x, cy + 2.0 * r * y, cz + 2.0 * r * z])
        gdim = mesh.classification(_ent0(idx)).dim if mesh.model else 3
        if jitter > 0 and gdim == 3:  # keep the surface smooth
            new += rng.uniform(-jitter * h, jitter * h, size=3)
        coords[idx] = new
    return mesh


def _ent0(idx: int):
    from ..mesh.entity import Ent

    return Ent(0, idx)
