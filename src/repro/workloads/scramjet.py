"""Scramjet-surrogate workload: 2D channel with an oblique shock train.

Fig. 7 of the paper shows initial and adapted meshes for "a supersonic flow
past a scramjet": the adapted mesh concentrates resolution along the
reflected oblique shocks inside the inlet channel.  The surrogate is a long
2D channel triangulated irregularly, with a size field that is the pointwise
minimum of several crossing shock-plane bands — the shock train pattern that
drives the same adaptation behaviour.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..field.sizefield import MinSize, ShockPlaneSize, SizeField
from ..mesh.generate import delaunay_rect
from ..mesh.mesh import Mesh

#: Channel domain: length 4, height 1.
_LO = (0.0, 0.0)
_HI = (4.0, 1.0)


def scramjet_mesh(n: int = 10, seed: int = 2) -> Mesh:
    """Irregular triangulation of the inlet channel, ~``8 * n^2`` triangles."""
    return delaunay_rect(4 * n, n, lo=_LO, hi=_HI, seed=seed)


def shock_train(
    mesh_scale: float,
    refinement: float = 4.0,
    reflections: int = 3,
    angle_deg: float = 25.0,
) -> SizeField:
    """Size field of ``reflections`` oblique shocks bouncing down the channel.

    Each shock is a planar band tilted alternately up/down, spaced along the
    channel the way an inlet shock train reflects between the walls.
    """
    if reflections < 1:
        raise ValueError("need at least one shock")
    angle = math.radians(angle_deg)
    length = _HI[0] - _LO[0]
    fields: List[SizeField] = []
    for k in range(reflections):
        sign = 1.0 if k % 2 == 0 else -1.0
        normal = (math.cos(angle), sign * math.sin(angle))
        anchor_x = length * (k + 1.0) / (reflections + 1.0)
        anchor_y = 0.0 if sign > 0 else 1.0
        offset = normal[0] * anchor_x + normal[1] * anchor_y
        fields.append(
            ShockPlaneSize(
                normal=normal,
                offset=offset,
                h_fine=mesh_scale / refinement,
                h_coarse=mesh_scale,
                width=0.75 * mesh_scale,
            )
        )
    return MinSize(fields)


def scramjet_case(
    n: int = 10, refinement: float = 4.0, reflections: int = 3
) -> Tuple[Mesh, SizeField]:
    """The full Fig.-7 scenario: channel mesh plus its shock-train field."""
    mesh = scramjet_mesh(n)
    return mesh, shock_train(1.0 / n, refinement, reflections)
