"""Workload generators standing in for the paper's evaluation meshes.

Each module documents what the paper used, what is built instead, and why
the substitution preserves the behaviour the experiment measures (see
DESIGN.md's substitution table).
"""

from .aaa import aaa_mesh
from .accelerator import (
    TrackStats,
    accelerator_mesh,
    particle_positions,
    particle_size,
    track_particle,
)
from .jobs import JOB_WORKLOADS, job_workload, job_workload_names
from .scramjet import scramjet_case, scramjet_mesh, shock_train
from .wing import shock_size, wing_case, wing_mesh

__all__ = [
    "JOB_WORKLOADS",
    "TrackStats",
    "aaa_mesh",
    "accelerator_mesh",
    "job_workload",
    "job_workload_names",
    "particle_positions",
    "particle_size",
    "scramjet_case",
    "scramjet_mesh",
    "shock_size",
    "shock_train",
    "track_particle",
    "wing_case",
    "wing_mesh",
]
