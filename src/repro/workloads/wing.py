"""ONERA-M6-surrogate workload: wing-like box with a shock-plane size field.

Fig. 13 of the paper shows the element imbalance of a 1024-part mesh around
an ONERA M6 wing after adapting to "a size field computed from the hessian
of the mach number" that resolves a shock front — with no load balancing
applied first.  The surrogate: a flat box domain (the flow volume over the
wing planform) and an analytic oblique shock-plane size field whose band
sweeps across it at the lambda-shock angle, concentrating refinement in a
thin slab exactly like the hessian field does.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..field.sizefield import MinSize, ShockPlaneSize, SizeField, UniformSize
from ..mesh.generate import box_tet
from ..mesh.mesh import Mesh

#: Domain of the flow box: unit span and chord, thin vertical extent.
_LO = (0.0, 0.0, 0.0)
_HI = (1.0, 1.0, 0.25)


def wing_mesh(n: int = 12) -> Mesh:
    """Flow-box tet mesh over the wing planform: ``6 * n * n * ceil(n/4)``."""
    nz = max(n // 4, 1)
    return box_tet(n, n, nz, lo=_LO, hi=_HI)


def shock_size(
    mesh_scale: float,
    refinement: float = 4.0,
    angle_deg: float = 30.0,
    position: float = 0.55,
    width_fraction: float = 0.5,
) -> SizeField:
    """Oblique shock-front size field for the wing flow box.

    ``mesh_scale`` is the current coarse resolution h; the band requests
    ``h / refinement`` within a slab of width ``width_fraction * h`` whose
    normal is tilted ``angle_deg`` from the chordwise axis — the swept
    lambda-shock of the M6 test case.
    """
    angle = math.radians(angle_deg)
    normal = (math.cos(angle), math.sin(angle), 0.0)
    offset = position * math.cos(angle) + 0.5 * math.sin(angle)
    return ShockPlaneSize(
        normal=normal,
        offset=offset,
        h_fine=mesh_scale / refinement,
        h_coarse=mesh_scale,
        width=width_fraction * mesh_scale,
    )


def wing_case(
    n: int = 12, refinement: float = 4.0
) -> Tuple[Mesh, SizeField]:
    """The full Fig.-13 scenario: mesh plus its shock size field."""
    mesh = wing_mesh(n)
    return mesh, shock_size(1.0 / n, refinement=refinement)
