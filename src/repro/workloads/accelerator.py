"""Accelerator-surrogate workload: refinement tracking moving particles.

Fig. 8 of the paper shows "three adapted meshes tracking the motion of
particles through a linear accelerator": as the particle bunch advances, the
refined zone must move with it — the canonical repeated-adaptation workload
whose load distribution shifts every step (and therefore needs dynamic
balancing between steps).

The surrogate is a long 2D waveguide with a spherical refinement zone that
advances along the axis; :func:`track_particle` replays the paper's
sequence, re-adapting at each position and reporting per-step statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..adapt.adapt import AdaptStats, adapt
from ..field.sizefield import SizeField, SphereSize
from ..mesh.generate import rect_tri
from ..mesh.mesh import Mesh

#: Waveguide domain: length 4, height 1.
_LO = (0.0, 0.0)
_HI = (4.0, 1.0)


def accelerator_mesh(n: int = 8) -> Mesh:
    """Structured triangulation of the waveguide: ``8 * n^2`` triangles."""
    return rect_tri(4 * n, n, lo=_LO, hi=_HI)


def particle_positions(steps: int = 3) -> List[Tuple[float, float]]:
    """Bunch centers for each adaptation step, marching down the axis."""
    if steps < 1:
        raise ValueError("need at least one step")
    length = _HI[0] - _LO[0]
    return [
        (_LO[0] + length * (k + 1.0) / (steps + 1.0), 0.5 * (_LO[1] + _HI[1]))
        for k in range(steps)
    ]


def particle_size(
    center: Tuple[float, float],
    mesh_scale: float,
    refinement: float = 4.0,
    radius: float = 0.25,
) -> SizeField:
    """Refined ball around the particle bunch."""
    return SphereSize(
        center=center,
        radius=radius,
        h_fine=mesh_scale / refinement,
        h_coarse=mesh_scale,
    )


@dataclass
class TrackStats:
    """Per-step outcome of the particle-tracking adaptation sequence."""

    position: Tuple[float, float]
    adapt_stats: AdaptStats
    elements: int
    refined_near_particle: int


def track_particle(
    mesh: Mesh,
    steps: int = 3,
    mesh_scale: Optional[float] = None,
    refinement: float = 4.0,
    radius: float = 0.25,
    max_passes: int = 6,
) -> List[TrackStats]:
    """Adapt ``mesh`` through the particle sequence (Fig. 8's three meshes).

    Between steps the old refined zone coarsens back while the new one
    refines — the churn that motivates dynamic load balancing each step.
    """
    if mesh_scale is None:
        # Infer the coarse scale from the current mean edge length.
        lengths = []
        for edge in mesh.entities(1):
            a, b = mesh.verts_of(edge)
            lengths.append(float(np.linalg.norm(mesh.coords(a) - mesh.coords(b))))
        mesh_scale = float(np.mean(lengths))

    history: List[TrackStats] = []
    for center in particle_positions(steps):
        size = particle_size(center, mesh_scale, refinement, radius)
        stats = adapt(mesh, size, max_passes=max_passes)
        near = sum(
            1
            for f in mesh.entities(mesh.dim())
            if np.linalg.norm(mesh.centroid(f)[:2] - center) < radius
        )
        history.append(
            TrackStats(
                position=center,
                adapt_stats=stats,
                elements=mesh.count(mesh.dim()),
                refined_near_particle=near,
            )
        )
    return history
